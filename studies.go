package parabit

import (
	"fmt"

	"parabit/internal/experiments"
)

// StudyBreakdown is one scheme's execution-time split for a case study:
// the structured form of the paper's Fig. 14 stacked bars, for
// programmatic use (the text tables come from RunExperiment).
type StudyBreakdown struct {
	// Scheme names the execution: "PIM", "ISC", "ParaBit",
	// "ParaBit-ReAlloc" or "ParaBit-LocFree".
	Scheme string
	// OperandMoveSeconds is SSD-to-memory operand movement (baselines).
	OperandMoveSeconds float64
	// BitwiseSeconds is compute time (DRAM, FPGA or in-flash).
	BitwiseSeconds float64
	// ResultMoveSeconds is result shipping to the host (ParaBit schemes).
	ResultMoveSeconds float64
	// TotalSeconds runs phases back to back; PipelinedSeconds overlaps
	// compute with result movement (the paper's "+Res-Move").
	TotalSeconds     float64
	PipelinedSeconds float64
	// ReallocatedGB is the logical operand volume reallocated (§5.4's
	// endurance input).
	ReallocatedGB float64
}

func toBreakdowns(rows []experiments.Breakdown) []StudyBreakdown {
	out := make([]StudyBreakdown, len(rows))
	for i, b := range rows {
		out[i] = StudyBreakdown{
			Scheme:             b.Scheme,
			OperandMoveSeconds: b.OpeMove,
			BitwiseSeconds:     b.Bitwise,
			ResultMoveSeconds:  b.ResMove,
			TotalSeconds:       b.Total,
			PipelinedSeconds:   b.TotalPipe,
			ReallocatedGB:      b.ReallocGB,
		}
	}
	return out
}

// SegmentationStudy plans the §5.3.1 image-segmentation case study at
// paper scale for the given image count (the paper sweeps 10,000 to
// 200,000), returning one breakdown per scheme in the order PIM, ISC,
// ParaBit-ReAlloc, ParaBit, ParaBit-LocFree.
func SegmentationStudy(images int) ([]StudyBreakdown, error) {
	if images <= 0 {
		return nil, fmt.Errorf("parabit: image count %d", images)
	}
	return toBreakdowns(experiments.SegmentationStudy(experiments.DefaultEnv(), images)), nil
}

// BitmapStudy plans the §5.3.2 bitmap-index case study for m months of
// daily activity over 800 million users (the paper sweeps m = 1 to 12).
func BitmapStudy(months int) ([]StudyBreakdown, error) {
	if months <= 0 {
		return nil, fmt.Errorf("parabit: month count %d", months)
	}
	return toBreakdowns(experiments.BitmapStudy(experiments.DefaultEnv(), months)), nil
}

// EncryptionStudy plans the §5.3.3 image-encryption case study for the
// given image count (the paper sweeps 5,000 to 100,000).
func EncryptionStudy(images int) ([]StudyBreakdown, error) {
	if images <= 0 {
		return nil, fmt.Errorf("parabit: image count %d", images)
	}
	return toBreakdowns(experiments.EncryptionStudy(experiments.DefaultEnv(), images)), nil
}
