package parabit

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"parabit/internal/sched"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

// ColumnStore is a bitmap-index-style store built on a ParaBit device:
// named bit columns of a fixed width, with bulk AND/OR/XOR queries that
// execute inside the SSD. It is the downstream-facing shape of the
// paper's bitmap-index case study (§5.3.2): columns are laid out so that
// page i of every column lives on the same plane, and a query over any
// set of columns runs as per-plane location-free chained reductions —
// no operand ever crosses the host link; only result pages do.
// ColumnStore is safe for concurrent use: the catalog below is guarded by
// its own mutex, and all device work goes through the device's command
// scheduler, so concurrent Puts and queries batch onto shared issue
// instants and execute with plane parallelism.
type ColumnStore struct {
	dev *Device
	// bits is the column width; pages is its page count.
	bits  int
	pages int
	// mu guards columns and nextLPN.
	mu sync.RWMutex
	// columns maps a name to its pages' LPNs (pages[i] on plane i%P).
	columns map[string][]uint64 // guarded by mu
	nextLPN uint64              // guarded by mu
}

// Store errors.
var (
	// ErrColumnExists reports a Put with a name already present.
	ErrColumnExists = errors.New("parabit: column already exists")
	// ErrNoColumn reports a query naming an absent column.
	ErrNoColumn = errors.New("parabit: no such column")
	// ErrColumnWidth reports column data of the wrong length.
	ErrColumnWidth = errors.New("parabit: column data has wrong width")
	// ErrQueryShape reports a query over fewer than two columns.
	ErrQueryShape = errors.New("parabit: query needs at least two columns")
)

// NewColumnStore builds a store of columns with the given width in bits
// (rounded up to whole pages internally; queries report exactly `bits`).
func NewColumnStore(dev *Device, bitWidth int) (*ColumnStore, error) {
	if bitWidth <= 0 {
		return nil, fmt.Errorf("parabit: column width %d", bitWidth)
	}
	pageBits := dev.PageSize() * 8
	return &ColumnStore{
		dev:     dev,
		bits:    bitWidth,
		pages:   (bitWidth + pageBits - 1) / pageBits,
		columns: make(map[string][]uint64),
	}, nil
}

// Bits returns the column width.
func (cs *ColumnStore) Bits() int { return cs.bits }

// Columns returns the stored column names, sorted.
func (cs *ColumnStore) Columns() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]string, 0, len(cs.columns))
	for name := range cs.columns {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Put stores a new column. data is the packed little-endian bit vector;
// it must hold exactly Bits() bits (rounded up to whole bytes).
func (cs *ColumnStore) Put(name string, data []byte) error {
	wantBytes := (cs.bits + 7) / 8
	if len(data) != wantBytes {
		return fmt.Errorf("%w: %d bytes, want %d", ErrColumnWidth, len(data), wantBytes)
	}
	// Reserve the name and its LPNs under the catalog lock, then write
	// outside it so concurrent Puts batch on the device. A placeholder
	// keeps a racing Put of the same name out until we commit or fail.
	cs.mu.Lock()
	if _, ok := cs.columns[name]; ok {
		cs.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrColumnExists, name)
	}
	cs.columns[name] = nil
	lpns := make([]uint64, cs.pages)
	for p := range lpns {
		lpns[p] = cs.nextLPN
		cs.nextLPN++
	}
	cs.mu.Unlock()

	ps := cs.dev.PageSize()
	tickets := make([]*sched.Ticket, cs.pages)
	for p := 0; p < cs.pages; p++ {
		page := make([]byte, ps)
		start := p * ps
		if start < len(data) {
			copy(page, data[start:])
		}
		// Page p of every column shares plane p: cross-column chains
		// stay location-free. The page writes are submitted together and
		// issue as one batch, so they land on their planes in parallel.
		tickets[p] = cs.dev.sched.Submit(sched.Command{
			Kind: sched.KindWriteOnPlane, Plane: p, LPN: lpns[p], Data: page,
		})
	}
	var firstErr error
	for _, t := range tickets {
		if r := t.Wait(); r.Err != nil && firstErr == nil {
			firstErr = r.Err
		}
	}
	cs.mu.Lock()
	if firstErr != nil {
		delete(cs.columns, name)
	} else {
		cs.columns[name] = lpns
	}
	cs.mu.Unlock()
	return firstErr
}

// Delete removes a column, trimming its pages.
func (cs *ColumnStore) Delete(name string) error {
	cs.mu.Lock()
	lpns, ok := cs.columns[name]
	if !ok {
		cs.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoColumn, name)
	}
	delete(cs.columns, name)
	cs.mu.Unlock()
	cs.dev.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
		for _, lpn := range lpns {
			dev.FTL().Trim(lpn)
		}
	})
	return nil
}

// QueryResult is the outcome of a column query.
type QueryResult struct {
	// Data is the packed result column (Bits() bits).
	Data []byte
	// Count is the number of set bits in the result.
	Count int
	// Latency is the modeled in-SSD time for the whole query, including
	// shipping result pages to the host.
	Latency time.Duration
}

// And intersects the named columns in-flash (e.g. "users active on every
// listed day").
func (cs *ColumnStore) And(names ...string) (QueryResult, error) { return cs.query(And, names) }

// Or unions the named columns in-flash.
func (cs *ColumnStore) Or(names ...string) (QueryResult, error) { return cs.query(Or, names) }

// Xor computes the symmetric difference chain of the named columns
// in-flash (e.g. change detection between snapshots).
func (cs *ColumnStore) Xor(names ...string) (QueryResult, error) { return cs.query(Xor, names) }

func (cs *ColumnStore) query(op Op, names []string) (QueryResult, error) {
	if len(names) < 2 {
		return QueryResult{}, ErrQueryShape
	}
	cs.mu.RLock()
	cols := make([][]uint64, len(names))
	for i, name := range names {
		lpns := cs.columns[name]
		if lpns == nil { // absent, or a Put still in flight
			cs.mu.RUnlock()
			return QueryResult{}, fmt.Errorf("%w: %q", ErrNoColumn, name)
		}
		cols[i] = lpns
	}
	cs.mu.RUnlock()
	ps := cs.dev.PageSize()
	out := make([]byte, cs.pages*ps)
	// Page position p across all columns reduces on its own plane; the
	// positions are independent and submitted together, so they issue in
	// one batch and the device's plane parallelism applies across them.
	tickets := make([]*sched.Ticket, cs.pages)
	for p := 0; p < cs.pages; p++ {
		lpns := make([]uint64, len(cols))
		for i := range cols {
			lpns[i] = cols[i][p]
		}
		tickets[p] = cs.dev.sched.Submit(sched.Command{
			Kind:   sched.KindReduce,
			LPNs:   lpns,
			Op:     op.latch(),
			Scheme: LocationFree.ssd(),
			ToHost: true,
		})
	}
	var start, latest sim.Time
	for p, t := range tickets {
		r := t.Wait()
		if r.Err != nil {
			return QueryResult{}, r.Err
		}
		copy(out[p*ps:], r.Data)
		if p == 0 || r.Start < start {
			start = r.Start
		}
		if r.HostDone > latest {
			latest = r.HostDone
		}
	}
	// Trim to the declared width and count.
	res := QueryResult{
		Data:    out[:(cs.bits+7)/8],
		Latency: time.Duration(latest - start),
	}
	// Mask tail bits beyond the width before counting.
	if rem := cs.bits % 8; rem != 0 {
		res.Data[len(res.Data)-1] &= byte(1<<rem) - 1
	}
	for _, b := range res.Data {
		res.Count += bits.OnesCount8(b)
	}
	return res, nil
}
