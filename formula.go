package parabit

import (
	"time"

	"parabit/internal/nvme"
	"parabit/internal/sched"
)

// Operand names a byte range of logical pages participating in a formula.
// Offset and Length are in bytes, sector-aligned (512 B on standard
// pages); Length 0 means one whole page.
type Operand struct {
	LPN    uint64
	Offset int
	Length int
}

// Term is one bitwise batch: first ? second.
type Term struct {
	First, Second Operand
	Op            Op
}

// Formula is a chain of terms combined left to right:
// term[0] combine[0] term[1] combine[1] term[2] ...
// It mirrors the NVMe batch encoding of §4.3.1: Execute lowers it to the
// vendor-field command stream, the device firmware parses it back into
// batches, and the batches execute under the chosen scheme.
type Formula struct {
	Terms   []Term
	Combine []Op
}

func (f Formula) wire(pageSize int) nvme.Formula {
	var out nvme.Formula
	for _, t := range f.Terms {
		out.Terms = append(out.Terms, nvme.Term{
			M:  operandWire(t.First, pageSize),
			N:  operandWire(t.Second, pageSize),
			Op: t.Op.latch(),
		})
	}
	for _, c := range f.Combine {
		out.Combine = append(out.Combine, c.latch())
	}
	return out
}

func operandWire(o Operand, pageSize int) nvme.Operand {
	length := o.Length
	if length == 0 {
		length = pageSize
	}
	return nvme.Operand{LBA: o.LPN, Offset: o.Offset, Length: length}
}

// FormulaResult is the outcome of a formula execution: the final result
// pages and the modeled latencies.
type FormulaResult struct {
	Pages       [][]byte
	Latency     time.Duration // last result page in the controller buffer
	HostLatency time.Duration // last result byte delivered to the host
}

// Execute runs the formula on the device under the scheme. Results ship
// to the host.
func (d *Device) Execute(f Formula, scheme Scheme) (FormulaResult, error) {
	r := d.sched.Submit(sched.Command{
		Kind:    sched.KindFormula,
		Formula: f.wire(d.PageSize()),
		Scheme:  scheme.ssd(),
	}).Wait()
	if r.Err != nil {
		return FormulaResult{}, r.Err
	}
	return FormulaResult{
		Pages:       r.Pages,
		Latency:     r.Done.Sub(r.Start).Std(),
		HostLatency: r.HostDone.Sub(r.Start).Std(),
	}, nil
}
