// Package binio provides small sticky-error binary encoders and decoders
// for the persistence layer's on-disk formats. Both sides are
// little-endian and length-checked: a Reader never allocates more than
// its configured limit for one field and never panics on truncated or
// hostile input — it parks the first error and returns zero values from
// then on, so decode call sites stay linear and check Err once.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrTooLarge reports a length prefix beyond the reader's per-field cap.
var ErrTooLarge = errors.New("binio: length prefix exceeds limit")

// Writer encodes fixed-width values and length-prefixed byte slices into
// an io.Writer, remembering the first write error.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (b *Writer) Err() error { return b.err }

func (b *Writer) write(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

// U8 writes one byte.
func (b *Writer) U8(v uint8) {
	b.buf[0] = v
	b.write(b.buf[:1])
}

// U32 writes a little-endian uint32.
func (b *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(b.buf[:4], v)
	b.write(b.buf[:4])
}

// U64 writes a little-endian uint64.
func (b *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(b.buf[:8], v)
	b.write(b.buf[:8])
}

// I64 writes a little-endian int64.
func (b *Writer) I64(v int64) { b.U64(uint64(v)) }

// Bytes writes a u32 length prefix followed by the raw bytes.
func (b *Writer) Bytes(p []byte) {
	b.U32(uint32(len(p)))
	b.write(p)
}

// Reader decodes what Writer encodes. Limit caps any single
// length-prefixed field; truncation, short reads and oversized prefixes
// all park an error instead of panicking or allocating unboundedly.
type Reader struct {
	r     io.Reader
	err   error
	limit uint32
	buf   [8]byte
}

// NewReader wraps r; limit bounds each length-prefixed field.
func NewReader(r io.Reader, limit uint32) *Reader { return &Reader{r: r, limit: limit} }

// Err returns the first decode error, or nil.
func (b *Reader) Err() error { return b.err }

// Fail parks err (if the reader is still clean), so decoders can report
// semantic errors through the same sticky channel.
func (b *Reader) Fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

func (b *Reader) read(p []byte) bool {
	if b.err != nil {
		return false
	}
	if _, err := io.ReadFull(b.r, p); err != nil {
		b.err = fmt.Errorf("binio: short read: %w", err)
		return false
	}
	return true
}

// U8 reads one byte.
func (b *Reader) U8() uint8 {
	if !b.read(b.buf[:1]) {
		return 0
	}
	return b.buf[0]
}

// U32 reads a little-endian uint32.
func (b *Reader) U32() uint32 {
	if !b.read(b.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(b.buf[:4])
}

// U64 reads a little-endian uint64.
func (b *Reader) U64() uint64 {
	if !b.read(b.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b.buf[:8])
}

// I64 reads a little-endian int64.
func (b *Reader) I64() int64 { return int64(b.U64()) }

// Bytes reads a u32 length prefix and that many bytes, bounded by the
// reader's limit.
func (b *Reader) Bytes() []byte {
	n := b.U32()
	if b.err != nil {
		return nil
	}
	if n > b.limit {
		b.Fail(fmt.Errorf("%w: %d > %d", ErrTooLarge, n, b.limit))
		return nil
	}
	p := make([]byte, n)
	if !b.read(p) {
		return nil
	}
	return p
}
