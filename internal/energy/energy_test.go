package energy

import (
	"math"
	"testing"

	"parabit/internal/latch"
)

func TestWorstCaseParaBitIsTwiceMSBRead(t *testing.T) {
	// Fig. 16: "In the worst case, it is about 2x of that of the baseline
	// MSB read" — the 4-SRO XOR/XNOR against the 2-SRO MSB read.
	m := DefaultModel()
	for _, op := range []latch.Op{latch.OpXor, latch.OpXnor} {
		ratio := m.ParaBitEnergy(op) / m.ReadMSBEnergy()
		if ratio < 1.5 || ratio > 2.0 {
			t.Errorf("%v: ParaBit/MSB-read = %.2f, want ≈2 (at most 2)", op, ratio)
		}
	}
}

func TestReAllocWorstCaseNearPaperAnchor(t *testing.T) {
	// Fig. 16: ReAlloc "consumes up to 2.65% more energy than that of
	// baseline write operation" — normalized against the two-page program
	// it performs.
	m := DefaultModel()
	worst := 0.0
	for _, op := range latch.Ops {
		over := m.ReAllocEnergy(op)/(2*m.WriteEnergy()) - 1
		if over > worst {
			worst = over
		}
	}
	if math.Abs(worst-0.0265) > 0.01 {
		t.Errorf("ReAlloc worst-case overhead = %.2f%%, want ≈2.65%%", worst*100)
	}
}

func TestSchemeOrdering(t *testing.T) {
	// For every op: ParaBit cheapest (or tied with LocFree), ReAlloc most
	// expensive — Fig. 16's qualitative content.
	m := DefaultModel()
	for _, op := range latch.Ops {
		pb, lf, ra := m.ParaBitEnergy(op), m.LocFreeEnergy(op), m.ReAllocEnergy(op)
		if ra <= pb || ra <= lf {
			t.Errorf("%v: ReAlloc (%.3g J) not the most expensive (pb %.3g, lf %.3g)", op, ra, pb, lf)
		}
		if pb > lf*1.01 && op != latch.OpNotMSB {
			// LocFree senses at least as much as basic ParaBit.
			t.Errorf("%v: ParaBit (%.3g J) above LocFree (%.3g J)", op, pb, lf)
		}
	}
}

func TestEnergyScalesWithSROs(t *testing.T) {
	m := DefaultModel()
	and := m.ParaBitEnergy(latch.OpAnd) - m.TransferEnergy()
	xor := m.ParaBitEnergy(latch.OpXor) - m.TransferEnergy()
	if math.Abs(xor/and-4) > 1e-9 {
		t.Errorf("XOR/AND sensing energy = %.3f, want 4 (4 vs 1 SRO)", xor/and)
	}
}

func TestFig16Rows(t *testing.T) {
	rows := DefaultModel().Fig16()
	if len(rows) != len(latch.Ops) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.ParaBitVsRead <= 0 || r.LocFreeVsRead <= 0 || r.ReAllocVsWrite <= 0 {
			t.Errorf("%v: non-positive normalized energy %+v", r.Op, r)
		}
		if r.ParaBitVsRead > 2.01 {
			t.Errorf("%v: ParaBit normalized %.2f exceeds the paper's 2x bound", r.Op, r.ParaBitVsRead)
		}
		if r.ReAllocVsWrite > 1.03 {
			t.Errorf("%v: ReAlloc normalized %.3f exceeds 1.0265-ish bound", r.Op, r.ReAllocVsWrite)
		}
	}
}

func TestBaselineRelations(t *testing.T) {
	m := DefaultModel()
	if m.ReadMSBEnergy() <= m.ReadLSBEnergy() {
		t.Error("MSB read should cost more than LSB read")
	}
	if m.WriteEnergy() <= m.ReadMSBEnergy() {
		t.Error("program should dwarf a read")
	}
	if m.EraseEnergy() <= m.WriteEnergy() {
		t.Error("erase should cost more than a single program")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	p := DefaultParams()
	p.IRead = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params accepted")
		}
	}()
	NewModel(p, DefaultModel().tm, 8192)
}
