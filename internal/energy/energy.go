// Package energy models per-operation NAND energy in the style of the
// Micron NAND system power calculator the paper uses for Fig. 16:
// energy = VCC x ICC x duration for each phase of an operation (array
// sensing, programming, I/O transfer).
//
// Currents are calibrated to the paper's two normalization anchors:
//
//   - ParaBit's worst case (the 4-SRO XOR/XNOR) is about 2x the baseline
//     MSB read — automatic, since both are pure sensing and 4 SROs are
//     twice an MSB read's 2.
//   - ParaBit-ReAlloc's worst case consumes up to 2.65% more than the
//     baseline (two-page) write: the reallocation's reads and sensing add
//     (75+100) µs of read current against 1280 µs of program current,
//     pinning I_read/I_program ≈ 0.2.
package energy

import (
	"fmt"

	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// Params are the electrical parameters of the modeled flash die.
type Params struct {
	VCC float64 // supply voltage, volts
	// Currents in amperes drawn during each phase.
	IRead     float64 // array sensing (per SRO)
	IProgram  float64 // page program
	IErase    float64 // block erase
	ITransfer float64 // I/O transfer on the channel
}

// DefaultParams returns the calibrated 3.3 V MLC parameters.
func DefaultParams() Params {
	return Params{
		VCC:       3.3,
		IRead:     0.003,
		IProgram:  0.025,
		IErase:    0.025,
		ITransfer: 0.005,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.VCC <= 0 || p.IRead <= 0 || p.IProgram <= 0 || p.IErase <= 0 || p.ITransfer <= 0 {
		return fmt.Errorf("energy: invalid params %+v", p)
	}
	return nil
}

// Model computes operation energies for a flash timing configuration.
type Model struct {
	p  Params
	tm flash.Timing
	// pageSize for transfer durations.
	pageSize int
}

// NewModel builds a model; panics on invalid parameters (code-supplied).
func NewModel(p Params, tm flash.Timing, pageSize int) *Model {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Model{p: p, tm: tm, pageSize: pageSize}
}

// DefaultModel returns the calibrated model on the paper's MLC timing.
func DefaultModel() *Model {
	return NewModel(DefaultParams(), flash.DefaultTiming(), flash.Default().PageSize)
}

func (m *Model) phase(i float64, d sim.Duration) float64 {
	return m.p.VCC * i * d.Seconds()
}

// SenseEnergy returns the energy of n SROs.
func (m *Model) SenseEnergy(n int) float64 {
	return m.phase(m.p.IRead, sim.Duration(n)*m.tm.SenseSRO)
}

// TransferEnergy returns the energy of one page crossing the channel.
func (m *Model) TransferEnergy() float64 {
	return m.phase(m.p.ITransfer, m.tm.Transfer(m.pageSize))
}

// ProgramEnergy returns the energy of one page program (transfer + cell
// programming).
func (m *Model) ProgramEnergy() float64 {
	return m.TransferEnergy() + m.phase(m.p.IProgram, m.tm.ProgramPage)
}

// EraseEnergy returns the energy of one block erase.
func (m *Model) EraseEnergy() float64 {
	return m.phase(m.p.IErase, m.tm.EraseBlock)
}

// ReadLSBEnergy is the baseline LSB page read (1 SRO + transfer out).
func (m *Model) ReadLSBEnergy() float64 { return m.SenseEnergy(1) + m.TransferEnergy() }

// ReadMSBEnergy is the baseline MSB page read (2 SROs + transfer out) —
// the read normalization reference of Fig. 16.
func (m *Model) ReadMSBEnergy() float64 { return m.SenseEnergy(2) + m.TransferEnergy() }

// WriteEnergy is the baseline MSB-page write — the write normalization
// reference of Fig. 16.
func (m *Model) WriteEnergy() float64 { return m.ProgramEnergy() }

// ParaBitEnergy is a pre-allocated (co-located) ParaBit operation: the
// control sequence's sensing plus the result transfer out.
func (m *Model) ParaBitEnergy(op latch.Op) float64 {
	return m.SenseEnergy(latch.ForOp(op).SROs()) + m.TransferEnergy()
}

// ReAllocEnergy is a ParaBit-ReAlloc operation: read both operands (LSB +
// MSB with transfers), program them paired, then the operation's sensing
// and result transfer.
func (m *Model) ReAllocEnergy(op latch.Op) float64 {
	reads := m.ReadLSBEnergy() + m.ReadMSBEnergy()
	programs := 2 * m.ProgramEnergy()
	return reads + programs + m.SenseEnergy(latch.ForOp(op).SROs()) + m.TransferEnergy()
}

// LocFreeEnergy is a location-free operation over aligned LSB operands.
func (m *Model) LocFreeEnergy(op latch.Op) float64 {
	return m.SenseEnergy(latch.ForOpLocFreeLSB(op).SROs()) + m.TransferEnergy()
}

// Fig16Row is one operation's energies normalized to the baselines: the
// sensing-only schemes against the MSB read, ReAlloc against the write.
type Fig16Row struct {
	Op             latch.Op
	ParaBitVsRead  float64 // ParaBit / baseline MSB read
	LocFreeVsRead  float64 // LocFree / baseline MSB read
	ReAllocVsWrite float64 // ReAlloc / (2x baseline write), the realloc's program pair
	ParaBitJoules  float64
	LocFreeJoules  float64
	ReAllocJoules  float64
}

// Fig16 computes the normalized per-operation energies of every ParaBit
// variant, the content of the paper's Fig. 16.
func (m *Model) Fig16() []Fig16Row {
	rows := make([]Fig16Row, 0, len(latch.Ops))
	for _, op := range latch.Ops {
		r := Fig16Row{
			Op:            op,
			ParaBitJoules: m.ParaBitEnergy(op),
			LocFreeJoules: m.LocFreeEnergy(op),
			ReAllocJoules: m.ReAllocEnergy(op),
		}
		r.ParaBitVsRead = r.ParaBitJoules / m.ReadMSBEnergy()
		r.LocFreeVsRead = r.LocFreeJoules / m.ReadMSBEnergy()
		r.ReAllocVsWrite = r.ReAllocJoules / (2 * m.WriteEnergy())
		rows = append(rows, r)
	}
	return rows
}
