package sim

// Resource models a unit of hardware that can execute one operation at a
// time: a flash plane, a die's sense path, a channel bus, a DRAM bank.
// Callers reserve spans of virtual time on it; overlapping requests are
// serialized in arrival order, which is how command queuing behaves in the
// devices being modeled.
//
// Resource performs no callback scheduling itself — it is pure occupancy
// bookkeeping, usable both inside an Engine-driven model and in analytic
// code that just wants to know when a pipeline stage would drain.
type Resource struct {
	name string
	// freeAt is the first instant the resource is idle.
	freeAt Time
	// busy accumulates total occupied time, for utilization reporting.
	busy Duration
	// ops counts reservations.
	ops int64
	// obs, when set, receives every reservation (telemetry tracing).
	obs ReserveObserver
}

// ReserveObserver receives each reservation made on an instrumented
// resource: the label the reserving layer gave the work ("sense",
// "program", "xfer", ...) and the interval actually occupied. Observers
// run synchronously inside Reserve; keep them cheap.
type ReserveObserver func(label string, start, end Time)

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the diagnostic name supplied at construction.
func (r *Resource) Name() string { return r.name }

// Reserve books the resource for duration d, starting no earlier than "at"
// and no earlier than the end of the previously booked work. It returns the
// interval actually occupied.
func (r *Resource) Reserve(at Time, d Duration) (start, end Time) {
	return r.ReserveLabeled(at, d, "busy")
}

// ReserveLabeled is Reserve with a label describing the work, which the
// observer (if any) receives — this is how occupancy lanes in an exported
// trace distinguish senses from programs from transfers.
func (r *Resource) ReserveLabeled(at Time, d Duration, label string) (start, end Time) {
	start = Max(at, r.freeAt)
	end = start.Add(d)
	r.freeAt = end
	r.busy += d
	r.ops++
	if r.obs != nil {
		r.obs(label, start, end)
	}
	return start, end
}

// SetObserver installs (or, with nil, removes) the reservation observer.
func (r *Resource) SetObserver(obs ReserveObserver) { r.obs = obs }

// FreeAt returns the earliest instant at which new work could start.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns total reserved time.
func (r *Resource) BusyTime() Duration { return r.busy }

// Ops returns the number of reservations made.
func (r *Resource) Ops() int64 { return r.ops }

// Reset returns the resource to idle at time zero, clearing statistics.
func (r *Resource) Reset() {
	r.freeAt = 0
	r.busy = 0
	r.ops = 0
}

// Utilization reports busy time as a fraction of the window [0, horizon].
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(r.busy) / float64(horizon)
}

// Pool is a set of identical resources with round-robin-free dispatch:
// work goes to the resource that frees earliest, matching how a controller
// issues page operations to the least-loaded plane.
type Pool struct {
	members []*Resource
}

// NewPool creates n resources named prefix-0 .. prefix-(n-1).
func NewPool(prefix string, n int) *Pool {
	p := &Pool{members: make([]*Resource, n)}
	for i := range p.members {
		p.members[i] = NewResource(poolName(prefix, i))
	}
	return p
}

func poolName(prefix string, i int) string {
	return prefix + "-" + itoa(i)
}

// itoa avoids importing strconv for two call sites; resource construction
// is not hot, but keeping sim dependency-free keeps it trivially portable.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// Size returns the number of members in the pool.
func (p *Pool) Size() int { return len(p.members) }

// Member returns the i'th resource.
func (p *Pool) Member(i int) *Resource { return p.members[i] }

// Reserve books duration d on the member that can start earliest.
func (p *Pool) Reserve(at Time, d Duration) (r *Resource, start, end Time) {
	best := p.members[0]
	for _, m := range p.members[1:] {
		if m.freeAt < best.freeAt {
			best = m
		}
	}
	start, end = best.Reserve(at, d)
	return best, start, end
}

// DrainTime returns the latest FreeAt across members — when all queued
// work completes.
func (p *Pool) DrainTime() Time {
	var t Time
	for _, m := range p.members {
		if m.freeAt > t {
			t = m.freeAt
		}
	}
	return t
}

// Reset resets every member.
func (p *Pool) Reset() {
	for _, m := range p.members {
		m.Reset()
	}
}
