package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %v, want 30ns", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v", order)
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.After(5, func() {
		fired = append(fired, e.Now())
		e.After(7, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Fatalf("chained events at %v, want [5 12]", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(10, func() { count++ })
	e.Schedule(20, func() { count++ })
	e.Schedule(30, func() { count++ })
	e.RunUntil(20)
	if count != 2 {
		t.Fatalf("fired %d events by t=20, want 2", count)
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("%d pending, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("idle clock at %v, want 500", e.Now())
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("plane")
	s1, e1 := r.Reserve(0, 100)
	if s1 != 0 || e1 != 100 {
		t.Fatalf("first reservation [%v,%v], want [0,100]", s1, e1)
	}
	// Requested at t=50 while busy until 100: must start at 100.
	s2, e2 := r.Reserve(50, 30)
	if s2 != 100 || e2 != 130 {
		t.Fatalf("overlapping reservation [%v,%v], want [100,130]", s2, e2)
	}
	// Requested after idle gap: starts at request time.
	s3, _ := r.Reserve(1000, 10)
	if s3 != 1000 {
		t.Fatalf("post-gap reservation starts at %v, want 1000", s3)
	}
	if r.BusyTime() != 140 {
		t.Fatalf("busy time %v, want 140", r.BusyTime())
	}
	if r.Ops() != 3 {
		t.Fatalf("ops %d, want 3", r.Ops())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("bus")
	r.Reserve(0, 250)
	if got := r.Utilization(1000); got != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("utilization with zero horizon = %v, want 0", got)
	}
}

func TestPoolPicksEarliestFree(t *testing.T) {
	p := NewPool("plane", 2)
	r1, _, _ := p.Reserve(0, 100)
	r2, _, _ := p.Reserve(0, 50)
	if r1 == r2 {
		t.Fatal("two concurrent reservations landed on the same member")
	}
	// Member busy until 50 frees first; third op should land there.
	r3, start, _ := p.Reserve(0, 10)
	if r3 != r2 || start != 50 {
		t.Fatalf("third op on %s at %v, want earliest-free member at 50", r3.Name(), start)
	}
	if p.DrainTime() != 100 {
		t.Fatalf("drain time %v, want 100", p.DrainTime())
	}
}

func TestPoolNames(t *testing.T) {
	p := NewPool("chip", 12)
	if got := p.Member(0).Name(); got != "chip-0" {
		t.Fatalf("member 0 named %q", got)
	}
	if got := p.Member(11).Name(); got != "chip-11" {
		t.Fatalf("member 11 named %q", got)
	}
}

func TestPoolReset(t *testing.T) {
	p := NewPool("die", 3)
	p.Reserve(0, 100)
	p.Reset()
	if p.DrainTime() != 0 {
		t.Fatal("reset pool still busy")
	}
}

// Property: a resource never starts an op before both the request time and
// the end of all previously accepted work, and never overlaps intervals.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []uint16) bool {
		r := NewResource("x")
		var prevEnd Time
		for i, raw := range reqs {
			at := Time(raw % 997)
			d := Duration(raw%31 + 1)
			s, e := r.Reserve(at, d)
			if s < at || e != s.Add(d) {
				return false
			}
			if i > 0 && s < prevEnd {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationConversions(t *testing.T) {
	d := 25 * Microsecond
	if d.Micros() != 25 {
		t.Fatalf("Micros() = %v", d.Micros())
	}
	if d.Seconds() != 25e-6 {
		t.Fatalf("Seconds() = %v", d.Seconds())
	}
	if d.Std().Microseconds() != 25 {
		t.Fatalf("Std() = %v", d.Std())
	}
	if (2 * Second).String() != "2s" {
		t.Fatalf("String() = %q", (2 * Second).String())
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add: %v", t1)
	}
	if t1.Sub(t0) != 50 {
		t.Fatalf("Sub: %v", t1.Sub(t0))
	}
	if Max(t0, t1) != t1 || Max(t1, t0) != t1 {
		t.Fatal("Max wrong")
	}
}
