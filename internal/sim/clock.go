// Package sim provides a minimal discrete-event simulation kernel used by
// the flash, SSD, PIM and ISC models. Time is virtual and measured in
// nanoseconds; nothing in this package sleeps or touches the wall clock.
//
// The kernel is deliberately small: device models in this repository are
// mostly resource-occupancy models (a plane is busy for 25 µs, a channel
// transfers a page for 5 µs, ...), so the two primitives offered here are a
// virtual clock with an event queue and a Resource that serializes busy
// intervals.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts loss-free
// to time.Duration, which is also nanosecond-based.
type Duration int64

// Common durations, mirroring the time package for readability at call
// sites ("25 * sim.Microsecond").
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Std converts a virtual duration to a standard library time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string { return time.Duration(d).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string { return time.Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fire func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine owns a virtual clock and an event queue. It is not safe for
// concurrent use; device models are single-threaded over the engine.
type Engine struct {
	now    Time
	queue  eventQueue
	nextID uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past panics: it always indicates a modeling bug rather than a
// recoverable condition.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.nextID++
	heap.Push(&e.queue, &event{at: at, seq: e.nextID, fire: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	e.Schedule(e.now.Add(d), fn)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	ev.fire()
	return true
}

// Run fires events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, leaving later events
// queued, and advances the clock to deadline if it ends earlier.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }
