// Package cluster shards the simulated ParaBit SSD across N independent
// devices behind one host-facing front end.
//
// Each shard is a full ssd.Device with its own scheduler, virtual clock
// and NVMe queue pair; nothing is shared between shards, exactly like
// drives in separate bays. The front end routes bitmap columns to shards
// by consistent hashing (virtual nodes, so adding or removing a shard
// moves ~1/N of the keys), replicates each column across Replicas shards
// (reads fan out to the least-loaded live replica, writes fan in to all),
// and admits requests per tenant through token-bucket QoS running on
// virtual time.
//
// Queries route shard-locally when every operand column has a replica on
// one common shard — riding the §4.3.1 wire encoding through the shard's
// queue pair when the expression shape allows — and otherwise fall back
// to scatter/gather: sub-expressions execute where their operands live
// and the host combines result pages in software. Either way the result
// bytes are identical to a single-device execution of the same
// expression, which the differential tests assert.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"parabit/internal/nvme"
	"parabit/internal/sched"
	"parabit/internal/sim"
	"parabit/internal/ssd"
	"parabit/internal/telemetry"
)

// Cluster errors.
var (
	// ErrNoShards reports an operation against a cluster with no live shards.
	ErrNoShards = errors.New("cluster: no live shards")
	// ErrUnknownColumn reports a read or query of a key never written.
	ErrUnknownColumn = errors.New("cluster: unknown column")
	// ErrUnavailable reports a column none of whose replicas is on a live
	// shard.
	ErrUnavailable = errors.New("cluster: column unavailable")
	// ErrNoSpace reports shard LPN exhaustion.
	ErrNoSpace = errors.New("cluster: shard out of pages")
	// ErrTooLarge reports a column write bigger than the shard page size.
	ErrTooLarge = errors.New("cluster: column exceeds page size")
)

// Config parameterizes a cluster.
type Config struct {
	// Shards is the initial shard count.
	Shards int
	// VirtualNodes is the number of ring points per shard (default 64).
	VirtualNodes int
	// Replicas is the number of shards each column is stored on
	// (default 1; 2+ survives shard loss).
	Replicas int
	// Device configures every shard's SSD. The zero value means
	// ssd.SmallConfig().
	Device ssd.Config
	// QueueDepth bounds each shard's NVMe submission queue (default 1024).
	QueueDepth int
	// DefaultQoS admits tenants that never called SetTenantQoS. The zero
	// value admits everything.
	DefaultQoS QoS
	// PlacementOf maps a column key to its placement group: keys with
	// equal groups hash to the same replica set and the same plane, so
	// cross-column operations over one group run shard-locally and
	// location-free. Nil means identity (every key its own group).
	PlacementOf func(key uint64) uint64
	// PersistDir, when non-empty, backs every shard with an on-disk
	// journal+snapshot store under PersistDir/shard<id>. A killed shard
	// can then be restarted from disk with RestartShard.
	PersistDir string
	// SnapshotEvery is the per-shard journal compaction threshold
	// (persist.Config.SnapshotEvery); 0 means the store default.
	SnapshotEvery int
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.VirtualNodes < 1 {
		c.VirtualNodes = 64
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Device.Geometry.PageSize == 0 {
		c.Device = ssd.SmallConfig()
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	if c.PlacementOf == nil {
		c.PlacementOf = func(key uint64) uint64 { return key }
	}
	return c
}

// Shard is one device bay: a simulated SSD, its scheduler and its NVMe
// queue pair.
type Shard struct {
	id    int
	dev   *ssd.Device
	sched *sched.Scheduler
	qp    *nvme.QueuePair
	alive atomic.Bool
	// reads and writes count commands routed here, the load signal the
	// replica selector balances on.
	reads, writes atomic.Int64

	mu      sync.Mutex
	nextLPN uint64 // guarded by mu
	maxLPN  uint64 // guarded by mu
	// free recycles LPNs of replicas dropped by rebalance, so shard
	// add/remove churn doesn't permanently leak pages off the bump
	// allocator.
	free []uint64 // guarded by mu
}

// ID returns the shard's cluster-wide id.
func (sh *Shard) ID() int { return sh.id }

// Alive reports whether the shard serves traffic.
func (sh *Shard) Alive() bool { return sh.alive.Load() }

// Scheduler exposes the shard's command scheduler (statistics, drains).
func (sh *Shard) Scheduler() *sched.Scheduler { return sh.sched }

// QueuePair exposes the shard's NVMe transport.
func (sh *Shard) QueuePair() *nvme.QueuePair { return sh.qp }

// Reads returns the number of read-side commands routed to this shard.
func (sh *Shard) Reads() int64 { return sh.reads.Load() }

// Writes returns the number of write-side commands routed to this shard.
func (sh *Shard) Writes() int64 { return sh.writes.Load() }

// allocLPN hands out the shard's next free logical page, recycled pages
// first.
func (sh *Shard) allocLPN() (uint64, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n := len(sh.free); n > 0 {
		lpn := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return lpn, nil
	}
	if sh.nextLPN >= sh.maxLPN {
		return 0, fmt.Errorf("%w: shard %d", ErrNoSpace, sh.id)
	}
	lpn := sh.nextLPN
	sh.nextLPN++
	return lpn, nil
}

// freeLPN returns a no-longer-referenced page to the allocator.
func (sh *Shard) freeLPN(lpn uint64) {
	sh.mu.Lock()
	sh.free = append(sh.free, lpn)
	sh.mu.Unlock()
}

// replica is one stored copy of a column.
type replica struct {
	shard int
	lpn   uint64
}

// column is the front end's directory entry for one key. Entries are
// owned by the directory: their mutable fields are guarded by the
// cluster lock, not one of their own.
type column struct {
	key      uint64
	size     int       // guarded by Cluster.mu
	replicas []replica // guarded by Cluster.mu
}

// liveLocked filters the column's replicas to live shards.
func (col *column) liveLocked(shards map[int]*Shard) []replica {
	out := make([]replica, 0, len(col.replicas))
	for _, r := range col.replicas {
		if sh, ok := shards[r.shard]; ok && sh.Alive() {
			out = append(out, r)
		}
	}
	return out
}

// clusterTele holds the front end's telemetry handles; all-nil is the
// disabled state.
type clusterTele struct {
	sink         *telemetry.Sink
	cWrites      *telemetry.Counter
	cReads       *telemetry.Counter
	cQueries     *telemetry.Counter
	cRouteLocal  *telemetry.Counter
	cRouteWire   *telemetry.Counter
	cRouteScat   *telemetry.Counter
	cRejectRate  *telemetry.Counter
	cRejectQueue *telemetry.Counter
	cUnavailable *telemetry.Counter
	hQuery       *telemetry.Histogram
}

// Cluster is the host-facing front end over the shard set. The
// directory lock nests outside the per-shard allocator locks: placement
// and rebalance allocate shard pages while holding the directory, so a
// shard lock must never wait on the directory.
//
//parabit:lockorder Cluster.mu < Shard.mu
type Cluster struct {
	cfg Config

	mu      sync.RWMutex
	ring    *ring              // guarded by mu
	shards  map[int]*Shard     // guarded by mu
	order   []int              // guarded by mu; shard ids in creation order, for stable iteration
	nextID  int                // guarded by mu
	columns map[uint64]*column // guarded by mu

	adm  admitter
	tele clusterTele
}

// New builds a cluster of cfg.Shards fresh devices.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		ring:    newRing(cfg.VirtualNodes),
		shards:  make(map[int]*Shard),
		columns: make(map[uint64]*column),
	}
	c.adm.init(cfg.DefaultQoS)
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < cfg.Shards; i++ {
		if _, err := c.addShardLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MustNew is New for configurations known valid at compile time.
func MustNew(cfg Config) *Cluster {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the (defaulted) cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// PageSize returns the shard flash page size — the column granularity.
func (c *Cluster) PageSize() int { return c.cfg.Device.Geometry.PageSize }

// SetTelemetry attaches a sink: the front end gets routing counters and a
// query latency histogram, and every shard gets its own scoped lane set
// ("shard<N>.sched" trace processes, "shard<N>.sched.*" series), so hot
// shards are visible per lane.
func (c *Cluster) SetTelemetry(sink *telemetry.Sink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tele = clusterTele{
		sink:         sink,
		cWrites:      sink.Counter("cluster.writes"),
		cReads:       sink.Counter("cluster.reads"),
		cQueries:     sink.Counter("cluster.queries"),
		cRouteLocal:  sink.Counter("cluster.route.local"),
		cRouteWire:   sink.Counter("cluster.route.wire"),
		cRouteScat:   sink.Counter("cluster.route.scatter"),
		cRejectRate:  sink.Counter("cluster.admission.rejected.rate"),
		cRejectQueue: sink.Counter("cluster.admission.rejected.queue"),
		cUnavailable: sink.Counter("cluster.unavailable"),
		hQuery:       sink.Histogram("cluster.query.latency"),
	}
	c.adm.setTelemetry(c.tele.cRejectRate, c.tele.cRejectQueue)
	for _, id := range c.order {
		c.shards[id].sched.SetTelemetry(sink.Scope(fmt.Sprintf("shard%d", id)))
	}
}

// shardDir is the on-disk store directory for one shard id.
func (c *Cluster) shardDir(id int) string {
	return filepath.Join(c.cfg.PersistDir, fmt.Sprintf("shard%d", id))
}

// addShardLocked creates a shard, registers its ring points and returns it.
func (c *Cluster) addShardLocked() (*Shard, error) {
	var dev *ssd.Device
	var err error
	if c.cfg.PersistDir != "" {
		dev, err = ssd.Create(c.shardDir(c.nextID), c.cfg.Device, c.cfg.SnapshotEvery)
	} else {
		dev, err = ssd.New(c.cfg.Device)
	}
	if err != nil {
		return nil, err
	}
	sh := &Shard{
		id:     c.nextID,
		dev:    dev,
		sched:  sched.New(dev),
		qp:     nvme.NewQueuePair(c.cfg.QueueDepth),
		maxLPN: dev.UserPages(),
	}
	sh.alive.Store(true)
	c.nextID++
	c.shards[sh.id] = sh
	c.order = append(c.order, sh.id)
	c.ring.add(sh.id)
	if c.tele.sink != nil {
		sh.sched.SetTelemetry(c.tele.sink.Scope(fmt.Sprintf("shard%d", sh.id)))
	}
	return sh, nil
}

// Shards returns the live shard count and total shard count.
func (c *Cluster) Shards() (live, total int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, sh := range c.shards {
		if sh.Alive() {
			live++
		}
	}
	return live, len(c.shards)
}

// Shard returns the shard with the given id, or nil.
func (c *Cluster) Shard(id int) *Shard {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shards[id]
}

// EachShard calls f for every shard in creation order.
func (c *Cluster) EachShard(f func(*Shard)) {
	c.mu.RLock()
	ids := append([]int(nil), c.order...)
	shards := make([]*Shard, 0, len(ids))
	for _, id := range ids {
		shards = append(shards, c.shards[id])
	}
	c.mu.RUnlock()
	for _, sh := range shards {
		f(sh)
	}
}

// Now returns the cluster's virtual clock: the latest shard issue cursor.
// Admission buckets refill against this clock, so rate limits advance
// with simulated work, not wall time.
func (c *Cluster) Now() sim.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nowLocked()
}

func (c *Cluster) nowLocked() sim.Time {
	var now sim.Time
	for _, sh := range c.shards {
		now = sim.Max(now, sh.sched.Now())
	}
	return now
}

// SetTenantQoS installs (or replaces) a tenant's admission policy.
func (c *Cluster) SetTenantQoS(tenant string, q QoS) { c.adm.set(tenant, q) }

// liveLeastLoadedLocked picks the live replica with the shortest queue,
// breaking ties by routed-read count and then shard id, so fan-out
// spreads over replicas instead of pinning one.
func (c *Cluster) liveLeastLoadedLocked(reps []replica) (*Shard, replica, bool) {
	var best *Shard
	var bestRep replica
	for _, r := range reps {
		sh := c.shards[r.shard]
		if sh == nil || !sh.Alive() {
			continue
		}
		if best == nil {
			best, bestRep = sh, r
			continue
		}
		bp, sp := best.sched.Pending(), sh.sched.Pending()
		if sp < bp ||
			(sp == bp && sh.reads.Load() < best.reads.Load()) ||
			(sp == bp && sh.reads.Load() == best.reads.Load() && sh.id < best.id) {
			best, bestRep = sh, r
		}
	}
	return best, bestRep, best != nil
}

// placeLocked creates the directory entry for a new key: ring lookup on
// the placement group, one LPN per replica shard. The entry starts at
// size zero; the writer commits the real size after its replicas ack.
func (c *Cluster) placeLocked(key uint64) (*column, error) {
	group := c.cfg.PlacementOf(key)
	owners := c.ring.lookup(group, c.cfg.Replicas)
	if len(owners) == 0 {
		return nil, ErrNoShards
	}
	col := &column{key: key}
	for _, id := range owners {
		lpn, err := c.shards[id].allocLPN()
		if err != nil {
			return nil, err
		}
		col.replicas = append(col.replicas, replica{shard: id, lpn: lpn})
	}
	c.columns[key] = col
	return col, nil
}

// planeOf maps a placement group to the plane index its columns share.
func planeOf(group uint64) int { return int(group & 0x3fffffff) }

// WriteColumn stores (or overwrites) one column under the tenant's QoS.
// The write fans in to every live replica and acknowledges only when all
// of them completed — a dead shard's replica is skipped and repaired
// later, but a failure on a live replica fails the write.
func (c *Cluster) WriteColumn(tenant string, key uint64, data []byte) (sim.Time, error) {
	if ps := c.PageSize(); len(data) > ps {
		return 0, fmt.Errorf("%w: column %d: %d bytes > page size %d", ErrTooLarge, key, len(data), ps)
	}
	release, err := c.adm.admit(tenant, c.Now())
	if err != nil {
		return 0, err
	}
	defer release()
	c.tele.cWrites.Add(1)

	c.mu.Lock()
	col := c.columns[key]
	if col == nil {
		// Placed with size 0: the directory commits the real size only
		// once every replica write succeeds, so a failed first write
		// reads back as an empty column, never as garbage.
		col, err = c.placeLocked(key)
		if err != nil {
			c.mu.Unlock()
			return 0, err
		}
	}
	group := c.cfg.PlacementOf(key)
	type target struct {
		sh  *Shard
		lpn uint64
	}
	var targets []target
	for _, r := range col.replicas {
		if sh := c.shards[r.shard]; sh != nil && sh.Alive() {
			targets = append(targets, target{sh, r.lpn})
		}
	}
	c.mu.Unlock()

	if len(targets) == 0 {
		c.tele.cUnavailable.Add(1)
		return 0, fmt.Errorf("%w: column %d", ErrUnavailable, key)
	}
	tickets := make([]*sched.Ticket, len(targets))
	for i, t := range targets {
		t.sh.writes.Add(1)
		tickets[i] = t.sh.sched.Submit(sched.Command{
			Kind:  sched.KindWriteOnPlane,
			LPN:   t.lpn,
			Data:  data,
			Plane: planeOf(group),
		})
	}
	var done sim.Time
	for i, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			return 0, fmt.Errorf("cluster: write key %d shard %d: %w", key, targets[i].sh.id, res.Err)
		}
		done = sim.Max(done, res.Done)
	}
	// Every replica acknowledged: commit the new size to the directory.
	// Until here concurrent readers see the previous size against the
	// previous data, never a new size over old bytes.
	c.mu.Lock()
	col.size = len(data)
	c.mu.Unlock()
	return done, nil
}

// ReadColumn returns one column's bytes from the least-loaded live
// replica, shipped over that shard's host link.
func (c *Cluster) ReadColumn(tenant string, key uint64) ([]byte, sim.Time, error) {
	release, err := c.adm.admit(tenant, c.Now())
	if err != nil {
		return nil, 0, err
	}
	defer release()
	c.tele.cReads.Add(1)

	c.mu.RLock()
	col := c.columns[key]
	var sh *Shard
	var rep replica
	var size int
	ok := false
	if col != nil {
		// Snapshot the size under the lock: WriteColumn mutates col.size
		// under c.mu, so reading it after RUnlock would race.
		size = col.size
		sh, rep, ok = c.liveLeastLoadedLocked(col.replicas)
	}
	c.mu.RUnlock()

	if col == nil {
		return nil, 0, fmt.Errorf("%w: key %d", ErrUnknownColumn, key)
	}
	if !ok {
		c.tele.cUnavailable.Add(1)
		return nil, 0, fmt.Errorf("%w: column %d", ErrUnavailable, key)
	}
	sh.reads.Add(1)
	res := sh.sched.Submit(sched.Command{Kind: sched.KindRead, LPN: rep.lpn, ToHost: true}).Wait()
	if res.Err != nil {
		return nil, 0, fmt.Errorf("cluster: read key %d shard %d: %w", key, sh.id, res.Err)
	}
	return res.Data[:size], res.Done, nil
}

// AddShard brings a new empty shard into the ring and rebalances: every
// column whose desired replica set changed is copied to its new owners
// and dropped from shards that no longer own it. Returns the new shard's
// id and the number of columns migrated.
func (c *Cluster) AddShard() (id, migrated int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, err := c.addShardLocked()
	if err != nil {
		return 0, 0, err
	}
	migrated, err = c.rebalanceLocked()
	return sh.id, migrated, err
}

// RemoveShard drains a live shard gracefully: its columns move to their
// new ring owners first, then the shard leaves the ring and the map.
func (c *Cluster) RemoveShard(id int) (migrated int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shards[id]
	if sh == nil {
		return 0, fmt.Errorf("cluster: no shard %d", id)
	}
	live := 0
	for _, s := range c.shards {
		if s.Alive() && s.id != id {
			live++
		}
	}
	if live == 0 {
		return 0, ErrNoShards
	}
	c.ring.remove(id)
	migrated, err = c.rebalanceLocked()
	if err != nil {
		return migrated, err
	}
	delete(c.shards, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return migrated, nil
}

// KillShard fails a shard abruptly: no drain, no migration, and — on a
// persistent cluster — no final snapshot: the shard's on-disk journal
// stays exactly as the crash left it. Its replicas stay in the
// directory (dead) until Repair re-replicates them or RestartShard
// brings the shard back from disk; columns with a live replica keep
// serving.
func (c *Cluster) KillShard(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shards[id]
	if sh == nil {
		return fmt.Errorf("cluster: no shard %d", id)
	}
	sh.alive.Store(false)
	sh.dev.Crash()
	c.ring.remove(id)
	return nil
}

// RestartShard recovers a killed shard from its on-disk store: the
// journal is replayed onto the last snapshot, invariants are checked,
// and the shard rejoins the ring with a fresh scheduler and queue pair.
// Every write the old incarnation acknowledged is present; everything
// in flight at the kill is not. Only valid on persistent clusters.
func (c *Cluster) RestartShard(id int) (ssd.RecoveryInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.PersistDir == "" {
		return ssd.RecoveryInfo{}, fmt.Errorf("cluster: restart shard %d: cluster is not persistent", id)
	}
	sh := c.shards[id]
	if sh == nil {
		return ssd.RecoveryInfo{}, fmt.Errorf("cluster: no shard %d", id)
	}
	if sh.Alive() {
		return ssd.RecoveryInfo{}, fmt.Errorf("cluster: restart shard %d: still alive", id)
	}
	dev, info, err := ssd.Open(c.shardDir(id), c.cfg.SnapshotEvery)
	if err != nil {
		return ssd.RecoveryInfo{}, fmt.Errorf("cluster: restart shard %d: %w", id, err)
	}
	sh.dev = dev
	sh.sched = sched.New(dev)
	sh.qp = nvme.NewQueuePair(c.cfg.QueueDepth)
	if c.tele.sink != nil {
		sh.sched.SetTelemetry(c.tele.sink.Scope(fmt.Sprintf("shard%d", id)))
	}
	sh.alive.Store(true)
	c.ring.add(id)
	return info, nil
}

// Close shuts the cluster down gracefully: every live shard drains its
// scheduler and closes its device (taking a final compaction snapshot
// on persistent clusters). Dead shards are left as their crash left
// them. The cluster must not be used after Close.
func (c *Cluster) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for _, id := range c.order {
		sh := c.shards[id]
		if !sh.Alive() {
			continue
		}
		if err := sh.sched.Close(); err != nil {
			errs = append(errs, fmt.Errorf("cluster: close shard %d: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// rebalanceLocked moves every column whose ring owners changed: copies to
// new owners, drops replicas on shards that no longer own the column.
// Dead shards' replicas are left for Repair. The copy traffic runs
// through the shard schedulers, so it costs virtual time like any host.
func (c *Cluster) rebalanceLocked() (migrated int, err error) {
	for _, col := range c.columns {
		group := c.cfg.PlacementOf(col.key)
		desired := c.ring.lookup(group, c.cfg.Replicas)
		want := make(map[int]bool, len(desired))
		for _, id := range desired {
			want[id] = true
		}
		have := make(map[int]bool, len(col.replicas))
		for _, r := range col.replicas {
			have[r.shard] = true
		}
		changed := false
		for _, id := range desired {
			if !have[id] {
				changed = true
			}
		}
		if !changed {
			continue
		}
		data, rerr := c.copySourceLocked(col)
		if rerr != nil {
			return migrated, rerr
		}
		var kept []replica
		for _, r := range col.replicas {
			sh := c.shards[r.shard]
			if want[r.shard] || (sh != nil && !sh.Alive()) {
				kept = append(kept, r)
				continue
			}
			if sh != nil {
				sh.freeLPN(r.lpn)
			}
		}
		col.replicas = kept
		for _, id := range desired {
			if have[id] {
				continue
			}
			if werr := c.copyToLocked(col, id, group, data); werr != nil {
				return migrated, werr
			}
		}
		migrated++
	}
	return migrated, nil
}

// copySourceLocked reads a column from its least-loaded live replica for
// migration or repair.
func (c *Cluster) copySourceLocked(col *column) ([]byte, error) {
	sh, rep, ok := c.liveLeastLoadedLocked(col.replicas)
	if !ok {
		return nil, fmt.Errorf("%w: column %d", ErrUnavailable, col.key)
	}
	res := sh.sched.Submit(sched.Command{Kind: sched.KindRead, LPN: rep.lpn}).Wait()
	if res.Err != nil {
		return nil, fmt.Errorf("cluster: migrate read key %d shard %d: %w", col.key, sh.id, res.Err)
	}
	return res.Data, nil
}

// copyToLocked writes a column copy onto a shard and records the replica.
func (c *Cluster) copyToLocked(col *column, id int, group uint64, data []byte) error {
	sh := c.shards[id]
	lpn, err := sh.allocLPN()
	if err != nil {
		return err
	}
	res := sh.sched.Submit(sched.Command{
		Kind: sched.KindWriteOnPlane, LPN: lpn, Data: data, Plane: planeOf(group),
	}).Wait()
	if res.Err != nil {
		return fmt.Errorf("cluster: migrate write key %d shard %d: %w", col.key, id, res.Err)
	}
	col.replicas = append(col.replicas, replica{shard: id, lpn: lpn})
	return nil
}

// Reclaim trims stale controller-internal pages on every live shard —
// the between-phases maintenance a long query stream needs, since
// reallocation targets become garbage once their operation completes.
func (c *Cluster) Reclaim() {
	c.EachShard(func(sh *Shard) {
		if !sh.Alive() {
			return
		}
		sh.sched.Exclusive(func(dev *ssd.Device, _ sim.Time) {
			dev.ReclaimInternal()
		})
	})
}

// Repair restores the replication factor after shard loss: every column
// with fewer live replicas than configured is copied from a survivor to
// its next ring owners, and dead replicas leave the directory. Returns
// the number of columns repaired.
func (c *Cluster) Repair() (repaired int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, col := range c.columns {
		liveReps := col.liveLocked(c.shards)
		if len(liveReps) >= c.cfg.Replicas {
			continue
		}
		if len(liveReps) == 0 {
			return repaired, fmt.Errorf("%w: column %d lost all replicas", ErrUnavailable, col.key)
		}
		data, rerr := c.copySourceLocked(col)
		if rerr != nil {
			return repaired, rerr
		}
		have := make(map[int]bool, len(liveReps))
		for _, r := range liveReps {
			have[r.shard] = true
		}
		col.replicas = liveReps
		group := c.cfg.PlacementOf(col.key)
		for _, id := range c.ring.lookup(group, len(c.shards)) {
			if len(col.replicas) >= c.cfg.Replicas {
				break
			}
			if have[id] || !c.shards[id].Alive() {
				continue
			}
			if werr := c.copyToLocked(col, id, group, data); werr != nil {
				return repaired, werr
			}
		}
		repaired++
	}
	return repaired, nil
}
