package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parabit/internal/plan"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

// The chaos test kills a shard in the middle of live traffic and holds
// the cluster to its replication contract: with Replicas=2 and one shard
// down, every acknowledged write stays readable, queries keep serving
// from surviving replicas, and Repair restores the replication factor.

func TestChaosShardKillMidQuery(t *testing.T) {
	c := MustNew(Config{Shards: 4, Replicas: 2})
	pageSize := c.PageSize()

	// Seed columns and remember exactly what was acknowledged.
	var ackMu sync.Mutex
	acked := make(map[uint64][]byte)
	writeAcked := func(tenant string, key uint64, data []byte) error {
		if _, err := c.WriteColumn(tenant, key, data); err != nil {
			return err
		}
		ackMu.Lock()
		acked[key] = data
		ackMu.Unlock()
		return nil
	}
	rng := rand.New(rand.NewSource(3))
	for key := uint64(1); key <= 48; key++ {
		data := make([]byte, pageSize)
		rng.Read(data)
		if err := writeAcked("seed", key, data); err != nil {
			t.Fatalf("seed write %d: %v", key, err)
		}
	}

	victim := -1
	c.EachShard(func(sh *Shard) {
		if victim < 0 && sh.Writes() > 0 {
			victim = sh.ID()
		}
	})
	if victim < 0 {
		t.Fatal("no shard took writes")
	}

	// Traffic: three writers overwriting their own keys, three readers
	// querying; the victim dies while all six run.
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	var killOnce sync.Once
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for op := 0; op < 20; op++ {
				key := uint64(1 + w*16 + rng.Intn(16))
				data := make([]byte, pageSize)
				rng.Read(data)
				if err := writeAcked(fmt.Sprintf("writer%d", w), key, data); err != nil {
					errs <- fmt.Errorf("writer%d: %w", w, err)
					return
				}
				if op == 10 {
					killOnce.Do(func() {
						if err := c.KillShard(victim); err != nil {
							errs <- fmt.Errorf("kill: %w", err)
						}
					})
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for op := 0; op < 20; op++ {
				a := uint64(1 + rng.Intn(48))
				b := uint64(1 + rng.Intn(48))
				if a == b {
					continue
				}
				if _, err := c.Query(fmt.Sprintf("reader%d", r), plan.Or(plan.Leaf(a), plan.Leaf(b)), ssd.SchemeReAlloc); err != nil {
					errs <- fmt.Errorf("reader%d: %w", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	if live, total := c.Shards(); live != 3 || total != 4 {
		t.Fatalf("shards = %d/%d after kill, want 3 live of 4", live, total)
	}

	// Contract 1: no acknowledged write is lost — every acked version is
	// what a post-kill read returns.
	for key, want := range acked {
		got, _, err := c.ReadColumn("audit", key)
		if err != nil {
			t.Fatalf("post-kill read %d: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d lost its acknowledged write", key)
		}
	}

	// Contract 2: repair restores the replication factor on survivors...
	repaired, err := c.Repair()
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if repaired == 0 {
		t.Fatal("victim held replicas but repair fixed nothing")
	}

	// ...so the cluster now survives losing a second shard.
	second := -1
	c.EachShard(func(sh *Shard) {
		if second < 0 && sh.Alive() {
			second = sh.ID()
		}
	})
	if err := c.KillShard(second); err != nil {
		t.Fatalf("second kill: %v", err)
	}
	for key, want := range acked {
		got, _, err := c.ReadColumn("audit", key)
		if err != nil {
			t.Fatalf("read %d after second kill: %v", key, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %d lost after repair + second kill", key)
		}
	}

	// The surviving devices' FTLs are still internally consistent.
	c.EachShard(func(sh *Shard) {
		if !sh.Alive() {
			return
		}
		sh.Scheduler().Exclusive(func(dev *ssd.Device, _ sim.Time) {
			if err := dev.FTL().CheckInvariants(); err != nil {
				t.Errorf("shard %d FTL: %v", sh.ID(), err)
			}
		})
	})
}
