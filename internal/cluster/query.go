package cluster

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/nvme"
	"parabit/internal/plan"
	"parabit/internal/sched"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

// Query routing. Leaves of the expression are column keys. When every
// operand column has a replica on one common live shard the whole
// expression executes there — through the shard's NVMe queue pair when
// the shape is wire-expressible, as a planner query otherwise. When the
// operands are spread out, the front end recurses: each sub-expression
// routes independently (and may itself run shard-locally), leaf pages are
// read from replicas, and the host combines result pages in software with
// the same base-op/complement folds the in-flash chains use — so the
// result bytes are identical either way.

// Route labels how a query executed.
type Route string

// Route values.
const (
	// RouteWire: one shard, expression crossed the NVMe wire encoding.
	RouteWire Route = "wire"
	// RouteLocal: one shard, planner query submitted directly.
	RouteLocal Route = "local"
	// RouteScatter: multiple shards plus host-side combine.
	RouteScatter Route = "scatter"
)

// hostCombineCost models the front end folding result pages in host
// memory: a conservative 4 bytes per simulated nanosecond per input page.
func hostCombineCost(pages, bytes int) sim.Duration {
	return sim.Duration(pages * bytes / 4)
}

// QueryResult is a routed query's outcome.
type QueryResult struct {
	// Data is the result page, byte-identical to a single-device
	// execution of the same expression.
	Data []byte
	// Elapsed is the virtual service time: the slowest shard-side path
	// plus any host-side combine cost.
	Elapsed sim.Duration
	// Route records how the query executed; scatter anywhere in the tree
	// marks the whole query RouteScatter.
	Route Route
}

// Query routes and executes a bitmap expression whose leaves are column
// keys, under the tenant's QoS.
func (c *Cluster) Query(tenant string, e *plan.Expr, scheme ssd.Scheme) (QueryResult, error) {
	release, err := c.adm.admit(tenant, c.Now())
	if err != nil {
		return QueryResult{}, err
	}
	defer release()
	c.tele.cQueries.Add(1)

	n, err := plan.Normalize(e)
	if err != nil {
		return QueryResult{}, err
	}
	res, err := c.route(n, scheme)
	if err != nil {
		return QueryResult{}, err
	}
	c.tele.hQuery.Observe(res.Elapsed)
	switch res.Route {
	case RouteWire:
		c.tele.cRouteWire.Add(1)
	case RouteLocal:
		c.tele.cRouteLocal.Add(1)
	case RouteScatter:
		c.tele.cRouteScat.Add(1)
	}
	return res, nil
}

// colocatedShard finds a live shard holding a replica of every key, or
// nil. Preference follows liveLeastLoadedLocked over the first key's replicas.
func (c *Cluster) colocatedShard(keys []uint64) (*Shard, map[uint64]uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(keys) == 0 {
		return nil, nil, fmt.Errorf("%w: no leaves", plan.ErrBadExpr)
	}
	// candidate shard id -> key -> local lpn
	var candidates map[int]map[uint64]uint64
	for i, key := range keys {
		col := c.columns[key]
		if col == nil {
			return nil, nil, fmt.Errorf("%w: key %d", ErrUnknownColumn, key)
		}
		if len(col.liveLocked(c.shards)) == 0 {
			c.tele.cUnavailable.Add(1)
			return nil, nil, fmt.Errorf("%w: column %d", ErrUnavailable, key)
		}
		here := make(map[int]uint64)
		for _, r := range col.replicas {
			if sh := c.shards[r.shard]; sh != nil && sh.Alive() {
				here[r.shard] = r.lpn
			}
		}
		if i == 0 {
			candidates = make(map[int]map[uint64]uint64)
			for id, lpn := range here {
				candidates[id] = map[uint64]uint64{key: lpn}
			}
			continue
		}
		for id, m := range candidates {
			lpn, ok := here[id]
			if !ok {
				delete(candidates, id)
				continue
			}
			m[key] = lpn
		}
		if len(candidates) == 0 {
			return nil, nil, nil
		}
	}
	reps := make([]replica, 0, len(candidates))
	for id := range candidates {
		reps = append(reps, replica{shard: id})
	}
	sh, _, ok := c.liveLeastLoadedLocked(reps)
	if !ok {
		return nil, nil, nil
	}
	return sh, candidates[sh.id], nil
}

// rewriteLeaves rebuilds an expression with every leaf key mapped through f.
func rewriteLeaves(e *plan.Expr, f func(uint64) uint64) (*plan.Expr, error) {
	if e.IsLeaf() {
		return plan.Leaf(f(e.LPN)), nil
	}
	args := make([]*plan.Expr, len(e.Args))
	for i, a := range e.Args {
		ra, err := rewriteLeaves(a, f)
		if err != nil {
			return nil, err
		}
		args[i] = ra
	}
	switch e.Op {
	case latch.OpAnd:
		return plan.And(args...), nil
	case latch.OpOr:
		return plan.Or(args...), nil
	case latch.OpXor:
		return plan.Xor(args...), nil
	case latch.OpXnor:
		return plan.Xnor(args[0], args[1]), nil
	case latch.OpNand:
		return plan.Nand(args[0], args[1]), nil
	case latch.OpNor:
		return plan.Nor(args[0], args[1]), nil
	case latch.OpNotLSB, latch.OpNotMSB:
		return plan.Not(args[0]), nil
	default:
		return nil, fmt.Errorf("%w: op %s", plan.ErrBadExpr, e.Op)
	}
}

// route executes a (normalized) expression, preferring shard-local
// execution and recursing into scatter/gather otherwise.
func (c *Cluster) route(e *plan.Expr, scheme ssd.Scheme) (QueryResult, error) {
	if e.IsLeaf() {
		return c.routeLeaf(e.LPN)
	}
	keys := e.Leaves()
	sh, local, err := c.colocatedShard(keys)
	if err != nil {
		return QueryResult{}, err
	}
	if sh != nil {
		return c.execLocal(sh, e, local, scheme)
	}
	// Scatter: route each argument independently, gather, combine in
	// host software.
	pages := make([][]byte, len(e.Args))
	var slowest sim.Duration
	for i, a := range e.Args {
		sub, err := c.route(a, scheme)
		if err != nil {
			return QueryResult{}, err
		}
		pages[i] = sub.Data
		if sub.Elapsed > slowest {
			slowest = sub.Elapsed
		}
	}
	out, err := plan.Combine(e.Op, pages)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{
		Data:    out,
		Elapsed: slowest + hostCombineCost(len(pages), len(out)),
		Route:   RouteScatter,
	}, nil
}

// routeLeaf serves a bare column read inside a scattered query.
func (c *Cluster) routeLeaf(key uint64) (QueryResult, error) {
	c.mu.RLock()
	col := c.columns[key]
	var sh *Shard
	var rep replica
	ok := false
	if col != nil {
		sh, rep, ok = c.liveLeastLoadedLocked(col.replicas)
	}
	c.mu.RUnlock()
	if col == nil {
		return QueryResult{}, fmt.Errorf("%w: key %d", ErrUnknownColumn, key)
	}
	if !ok {
		c.tele.cUnavailable.Add(1)
		return QueryResult{}, fmt.Errorf("%w: column %d", ErrUnavailable, key)
	}
	sh.reads.Add(1)
	res := sh.sched.Submit(sched.Command{Kind: sched.KindRead, LPN: rep.lpn, ToHost: true}).Wait()
	if res.Err != nil {
		return QueryResult{}, fmt.Errorf("cluster: read key %d shard %d: %w", key, sh.id, res.Err)
	}
	return QueryResult{Data: res.Data, Elapsed: resultEnd(res).Sub(res.Start), Route: RouteLocal}, nil
}

// execLocal runs the whole expression on one shard. Wire-expressible
// shapes cross the shard's queue pair first — encode, bounded submit,
// device-side parse — so what executes is exactly what survived the wire.
func (c *Cluster) execLocal(sh *Shard, e *plan.Expr, local map[uint64]uint64, scheme ssd.Scheme) (QueryResult, error) {
	le, err := rewriteLeaves(e, func(key uint64) uint64 { return local[key] })
	if err != nil {
		return QueryResult{}, err
	}
	route := RouteLocal
	if f, ok := plan.ToFormula(le, c.PageSize()); ok {
		// The scheme rides DWord 14 of every command, so on the wire route
		// the device executes under what survived the encoding — not an
		// out-of-band copy.
		f.Scheme, f.SchemeValid = uint8(scheme), true
		wired, wireScheme, werr := c.throughWire(sh, f)
		if werr != nil {
			// Queue full or a wire anomaly: fall back to the direct
			// planner path rather than failing the query.
			c.tele.sink.Counter("cluster.wire.fallback").Add(1)
		} else {
			le, scheme, route = wired, wireScheme, RouteWire
		}
	}
	sh.reads.Add(1)
	res := sh.sched.Submit(sched.Command{
		Kind: sched.KindQuery, Query: le, Scheme: scheme, ToHost: true,
	}).Wait()
	if res.Err != nil {
		return QueryResult{}, fmt.Errorf("cluster: query shard %d: %w", sh.id, res.Err)
	}
	return QueryResult{Data: res.Data, Elapsed: resultEnd(res).Sub(res.Start), Route: route}, nil
}

// throughWire pushes a formula through the shard's NVMe queue pair and
// lifts the device-side parse back into an expression, together with the
// placement scheme recovered from the stream's DWord 14 hints.
func (c *Cluster) throughWire(sh *Shard, f nvme.Formula) (*plan.Expr, ssd.Scheme, error) {
	cmds, err := nvme.EncodeFormula(f, c.PageSize())
	if err != nil {
		return nil, 0, err
	}
	parsed, err := sh.qp.Exchange(cmds)
	if err != nil {
		return nil, 0, err
	}
	scheme, ok, err := nvme.StreamScheme(parsed)
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("%w: stream carries no scheme hint", nvme.ErrBadCommand)
	}
	batches, err := nvme.ParseBatches(parsed, c.PageSize())
	if err != nil {
		return nil, 0, err
	}
	e, err := plan.FromBatches(batches, c.PageSize())
	if err != nil {
		return nil, 0, err
	}
	return e, ssd.Scheme(scheme), nil
}

// resultEnd returns a command's completion instant (host transfer
// included when it shipped bytes).
func resultEnd(r sched.Result) sim.Time { return sim.Max(r.Done, r.HostDone) }
