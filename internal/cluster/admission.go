package cluster

import (
	"errors"
	"fmt"
	"sync"

	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

// Admission control runs per tenant: a token bucket shapes request rate
// and a bound on in-flight requests caps queue depth, both on the
// cluster's virtual clock. Rejections are typed (ErrAdmission) so callers
// and benchmarks can separate back-pressure from real failures.

// ErrAdmission is the class of typed admission rejections; match with
// errors.Is.
var ErrAdmission = errors.New("cluster: admission denied")

// AdmissionError is a typed rejection: which tenant, and whether the rate
// limit ("rate") or the in-flight bound ("queue") fired.
type AdmissionError struct {
	Tenant string
	Reason string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("cluster: tenant %q rejected (%s limit)", e.Tenant, e.Reason)
}

// Is makes errors.Is(err, ErrAdmission) true for every AdmissionError.
func (e *AdmissionError) Is(target error) bool { return target == ErrAdmission }

// QoS is one tenant's admission policy. Zero fields are unlimited.
type QoS struct {
	// OpsPerSec refills the tenant's token bucket, in operations per
	// simulated second.
	OpsPerSec float64
	// Burst caps the bucket (default: OpsPerSec rounded up, minimum 1).
	Burst int
	// MaxInFlight bounds the tenant's concurrently admitted operations.
	MaxInFlight int
}

func (q QoS) burst() float64 {
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	if q.OpsPerSec >= 1 {
		return q.OpsPerSec
	}
	return 1
}

// tenant is one token bucket plus in-flight count.
type tenant struct {
	mu       sync.Mutex
	qos      QoS      // guarded by mu
	tokens   float64  // guarded by mu
	last     sim.Time // guarded by mu
	inflight int      // guarded by mu
}

// admitter owns the tenant table. A tenant's bucket lock nests inside
// nothing; the table lock is taken while a bucket is held (rejection
// counting), never the other way around.
//
//parabit:lockorder tenant.mu < admitter.mu
type admitter struct {
	mu          sync.Mutex
	def         QoS                // guarded by mu
	tenants     map[string]*tenant // guarded by mu
	rejectRate  *telemetry.Counter // guarded by mu
	rejectQueue *telemetry.Counter // guarded by mu
}

func (a *admitter) init(def QoS) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.def = def
	a.tenants = make(map[string]*tenant)
}

func (a *admitter) setTelemetry(rate, queue *telemetry.Counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rejectRate = rate
	a.rejectQueue = queue
}

func (a *admitter) set(name string, q QoS) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tenants[name] = &tenant{qos: q, tokens: q.burst()}
}

func (a *admitter) get(name string) *tenant {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[name]
	if !ok {
		t = &tenant{qos: a.def, tokens: a.def.burst()}
		a.tenants[name] = t
	}
	return t
}

// admit charges one operation against the tenant's QoS at the given
// virtual instant. On success the returned release must be called when
// the operation completes; on rejection the error matches ErrAdmission.
func (a *admitter) admit(name string, now sim.Time) (release func(), err error) {
	t := a.get(name)
	t.mu.Lock()
	defer t.mu.Unlock()
	// Check the in-flight bound before charging the bucket, so a request
	// bounced for queue depth doesn't also burn rate budget.
	if t.qos.MaxInFlight > 0 && t.inflight >= t.qos.MaxInFlight {
		a.countReject(true)
		return nil, &AdmissionError{Tenant: name, Reason: "queue"}
	}
	if t.qos.OpsPerSec > 0 {
		if now > t.last {
			t.tokens += now.Sub(t.last).Seconds() * t.qos.OpsPerSec
			if cap := t.qos.burst(); t.tokens > cap {
				t.tokens = cap
			}
			t.last = now
		}
		if t.tokens < 1 {
			a.countReject(false)
			return nil, &AdmissionError{Tenant: name, Reason: "rate"}
		}
		t.tokens--
	}
	t.inflight++
	return func() {
		t.mu.Lock()
		t.inflight--
		t.mu.Unlock()
	}, nil
}

// countReject bumps the matching rejection counter. The counter fields
// are read under a.mu — setTelemetry rebinds them concurrently, so
// loading them outside the lock would race.
func (a *admitter) countReject(queue bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.rejectRate
	if queue {
		c = a.rejectQueue
	}
	// c may be nil when telemetry is detached; Counter.Add is nil-safe.
	c.Add(1)
}
