package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parabit/internal/plan"
	"parabit/internal/ssd"
	"parabit/internal/telemetry"
)

func TestWriteReadRoundTrip(t *testing.T) {
	c := MustNew(Config{Shards: 3, Replicas: 2})
	pageSize := c.PageSize()
	rng := rand.New(rand.NewSource(1))
	want := make(map[uint64][]byte)
	for key := uint64(1); key <= 32; key++ {
		data := make([]byte, pageSize)
		rng.Read(data)
		want[key] = data
		if _, err := c.WriteColumn("t", key, data); err != nil {
			t.Fatalf("write %d: %v", key, err)
		}
	}
	for key, w := range want {
		got, _, err := c.ReadColumn("t", key)
		if err != nil {
			t.Fatalf("read %d: %v", key, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("key %d: read diverges from written data", key)
		}
	}
	if _, _, err := c.ReadColumn("t", 999); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("unknown key error = %v, want ErrUnknownColumn", err)
	}
}

func TestWriteColumnRejectsOversizedData(t *testing.T) {
	c := MustNew(Config{Shards: 2, Replicas: 1})
	big := make([]byte, c.PageSize()+1)
	if _, err := c.WriteColumn("t", 1, big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized write = %v, want ErrTooLarge", err)
	}
	// The rejected key never entered the directory.
	if _, _, err := c.ReadColumn("t", 1); !errors.Is(err, ErrUnknownColumn) {
		t.Fatalf("read after rejected write = %v, want ErrUnknownColumn", err)
	}
}

// TestFailedWriteDoesNotCommitSize holds the directory to its ordering
// contract: a write that fails after placement must not advance col.size,
// or a later read would slice fresh size over stale bytes.
func TestFailedWriteDoesNotCommitSize(t *testing.T) {
	c := MustNew(Config{Shards: 2, Replicas: 1})
	data := make([]byte, c.PageSize())
	if _, err := c.WriteColumn("t", 1, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.EachShard(func(sh *Shard) {
		if err := c.KillShard(sh.ID()); err != nil {
			t.Fatalf("kill shard %d: %v", sh.ID(), err)
		}
	})
	if _, err := c.WriteColumn("t", 1, data[:8]); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("write with all shards dead = %v, want ErrUnavailable", err)
	}
	c.mu.RLock()
	size := c.columns[1].size
	c.mu.RUnlock()
	if size != len(data) {
		t.Fatalf("failed write moved col.size to %d, want %d unchanged", size, len(data))
	}
}

func TestShardRecyclesFreedLPNs(t *testing.T) {
	sh := &Shard{maxLPN: 2}
	a, err := sh.allocLPN()
	if err != nil {
		t.Fatalf("alloc a: %v", err)
	}
	if _, err := sh.allocLPN(); err != nil {
		t.Fatalf("alloc b: %v", err)
	}
	if _, err := sh.allocLPN(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("exhausted alloc = %v, want ErrNoSpace", err)
	}
	sh.freeLPN(a)
	got, err := sh.allocLPN()
	if err != nil || got != a {
		t.Fatalf("post-free alloc = (%d, %v), want recycled page %d", got, err, a)
	}
}

// TestRebalanceRecyclesDroppedReplicaPages churns the topology and then
// audits every shard's allocator against the directory: pages in use must
// equal replicas resident, so add/remove cycles cannot leak toward
// ErrNoSpace.
func TestRebalanceRecyclesDroppedReplicaPages(t *testing.T) {
	c := MustNew(Config{Shards: 2, Replicas: 1})
	pageSize := c.PageSize()
	rng := rand.New(rand.NewSource(4))
	for key := uint64(1); key <= 64; key++ {
		data := make([]byte, pageSize)
		rng.Read(data)
		if _, err := c.WriteColumn("t", key, data); err != nil {
			t.Fatalf("write %d: %v", key, err)
		}
	}
	for i := 0; i < 3; i++ {
		id, _, err := c.AddShard()
		if err != nil {
			t.Fatalf("churn %d add: %v", i, err)
		}
		if _, err := c.RemoveShard(id); err != nil {
			t.Fatalf("churn %d remove: %v", i, err)
		}
	}
	resident := map[int]uint64{}
	c.mu.RLock()
	for _, col := range c.columns {
		for _, r := range col.replicas {
			resident[r.shard]++
		}
	}
	c.mu.RUnlock()
	c.EachShard(func(sh *Shard) {
		sh.mu.Lock()
		used := sh.nextLPN - uint64(len(sh.free))
		sh.mu.Unlock()
		if used != resident[sh.id] {
			t.Errorf("shard %d: %d pages in use, %d replicas resident — leaked %d",
				sh.id, used, resident[sh.id], used-resident[sh.id])
		}
	})
}

func TestReplicationFansInAndOut(t *testing.T) {
	c := MustNew(Config{Shards: 4, Replicas: 2})
	data := make([]byte, c.PageSize())
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := c.WriteColumn("t", 1, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	var writes int64
	c.EachShard(func(sh *Shard) { writes += sh.Writes() })
	if writes != 2 {
		t.Fatalf("write fanned in to %d shards, want 2", writes)
	}
	// Repeated reads of one column spread over both replicas.
	for i := 0; i < 8; i++ {
		if _, _, err := c.ReadColumn("t", 1); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	served := 0
	c.EachShard(func(sh *Shard) {
		if sh.Reads() > 0 {
			served++
		}
	})
	if served != 2 {
		t.Fatalf("reads landed on %d shards, want fan-out over 2 replicas", served)
	}
}

func TestAddShardRebalancesAndPreservesData(t *testing.T) {
	c := MustNew(Config{Shards: 2, Replicas: 1})
	pageSize := c.PageSize()
	rng := rand.New(rand.NewSource(2))
	want := make(map[uint64][]byte)
	for key := uint64(1); key <= 64; key++ {
		data := make([]byte, pageSize)
		rng.Read(data)
		want[key] = data
		if _, err := c.WriteColumn("t", key, data); err != nil {
			t.Fatalf("write %d: %v", key, err)
		}
	}
	id, migrated, err := c.AddShard()
	if err != nil {
		t.Fatalf("add shard: %v", err)
	}
	if migrated == 0 {
		t.Fatal("adding a shard migrated no columns")
	}
	if live, total := c.Shards(); live != 3 || total != 3 {
		t.Fatalf("shards = %d/%d, want 3/3", live, total)
	}
	for key, w := range want {
		got, _, err := c.ReadColumn("t", key)
		if err != nil {
			t.Fatalf("post-add read %d: %v", key, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("key %d corrupted by rebalance", key)
		}
	}
	// The new shard must actually own some of the keys now: migration
	// traffic ran through its scheduler.
	if c.Shard(id).Scheduler().Stats().Completed() == 0 {
		t.Fatal("new shard received no migrated columns")
	}

	if _, err := c.RemoveShard(id); err != nil {
		t.Fatalf("remove shard: %v", err)
	}
	for key, w := range want {
		got, _, err := c.ReadColumn("t", key)
		if err != nil {
			t.Fatalf("post-remove read %d: %v", key, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("key %d corrupted by drain", key)
		}
	}
}

// TestConcurrentMultiTenantRouting is the race-detector workout: many
// tenants writing, reading and querying disjoint and shared key ranges
// through one front end while a shard joins mid-flight.
func TestConcurrentMultiTenantRouting(t *testing.T) {
	c := MustNew(Config{Shards: 4, Replicas: 2})
	sink := telemetry.New()
	c.SetTelemetry(sink)
	pageSize := c.PageSize()

	// Shared columns every tenant queries.
	shared := []uint64{1000, 1001}
	for _, key := range shared {
		data := make([]byte, pageSize)
		if _, err := c.WriteColumn("setup", key, data); err != nil {
			t.Fatalf("setup write: %v", err)
		}
	}

	const tenants = 6
	const opsPerTenant = 30
	var wg sync.WaitGroup
	errs := make(chan error, tenants*opsPerTenant)
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant%d", tn)
			rng := rand.New(rand.NewSource(int64(tn)))
			base := uint64(tn * 100)
			for op := 0; op < opsPerTenant; op++ {
				key := base + uint64(rng.Intn(8))
				data := make([]byte, pageSize)
				rng.Read(data)
				if _, err := c.WriteColumn(name, key, data); err != nil {
					errs <- fmt.Errorf("%s write: %w", name, err)
					return
				}
				if _, _, err := c.ReadColumn(name, key); err != nil {
					errs <- fmt.Errorf("%s read: %w", name, err)
					return
				}
				if _, err := c.Query(name, plan.Xor(plan.Leaf(shared[0]), plan.Leaf(shared[1])), ssd.SchemeReAlloc); err != nil {
					errs <- fmt.Errorf("%s query: %w", name, err)
					return
				}
			}
		}(tn)
	}
	// A topology change races the traffic.
	if _, _, err := c.AddShard(); err != nil {
		t.Fatalf("concurrent add shard: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := sink.Counter("cluster.queries").Value(); got != tenants*opsPerTenant {
		t.Fatalf("query counter = %d, want %d", got, tenants*opsPerTenant)
	}
}

// TestScopedShardTelemetry pins the per-shard lane layout: one scoped
// scheduler series set per shard in a shared sink.
func TestScopedShardTelemetry(t *testing.T) {
	c := MustNew(Config{Shards: 2, Replicas: 1})
	sink := telemetry.New()
	c.SetTelemetry(sink)
	data := make([]byte, c.PageSize())
	for key := uint64(1); key <= 8; key++ {
		if _, err := c.WriteColumn("t", key, data); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	lanes := map[string]bool{}
	sink.EachGauge(func(name string, _ int64) { lanes[name] = true })
	for id := 0; id < 2; id++ {
		want := fmt.Sprintf("shard%d.sched.queue.write-on-plane.depth", id)
		if !lanes[want] {
			t.Fatalf("missing per-shard lane %q (have %d lanes)", want, len(lanes))
		}
	}
}
