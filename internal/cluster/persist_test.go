package cluster

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestClusterShardKillRestart proves the restart-from-disk path: with
// one replica, killing a shard makes its columns unavailable; restarting
// it from its persistence directory replays the journal and brings every
// acknowledged column back byte-identical.
func TestClusterShardKillRestart(t *testing.T) {
	dir := t.TempDir()
	c := MustNew(Config{Shards: 2, Replicas: 1, PersistDir: dir})
	defer c.Close()
	pageSize := c.PageSize()
	rng := rand.New(rand.NewSource(3))
	want := map[uint64][]byte{}
	for key := uint64(1); key <= 16; key++ {
		data := make([]byte, pageSize)
		rng.Read(data)
		if _, err := c.WriteColumn("t", key, data); err != nil {
			t.Fatalf("write %d: %v", key, err)
		}
		want[key] = data
	}
	for _, id := range []int{0, 1} {
		if _, err := os.Stat(filepath.Join(dir, "shard"+string(rune('0'+id)), "CURRENT")); err != nil {
			t.Fatalf("shard %d has no persistence root: %v", id, err)
		}
	}

	const victim = 0
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	lost := 0
	for key := range want {
		if _, _, err := c.ReadColumn("t", key); err != nil {
			if !errors.Is(err, ErrUnavailable) {
				t.Fatalf("read %d with shard down: %v, want ErrUnavailable", key, err)
			}
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("victim shard owned no columns; test proves nothing")
	}

	info, err := c.RestartShard(victim)
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if info.ReplayedRecords == 0 {
		t.Fatalf("restart replayed nothing: %+v", info)
	}
	t.Logf("shard %d recovery: %+v (%d columns were dark)", victim, info, lost)
	for key, w := range want {
		got, _, err := c.ReadColumn("t", key)
		if err != nil {
			t.Fatalf("read %d after restart: %v", key, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("key %d differs after shard restart", key)
		}
	}
}

// TestClusterRestartRequiresPersistence pins the error contract for
// in-memory clusters: KillShard still works (chaos testing), but
// RestartShard refuses rather than fabricating an empty shard.
func TestClusterRestartRequiresPersistence(t *testing.T) {
	c := MustNew(Config{Shards: 1, Replicas: 1})
	defer c.Close()
	if err := c.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RestartShard(0); err == nil {
		t.Fatal("RestartShard on an in-memory cluster must fail")
	}
}

// TestClusterRestartRefusesLiveShard guards against double-mounting: a
// shard that is still alive must be killed before it can be restarted.
func TestClusterRestartRefusesLiveShard(t *testing.T) {
	c := MustNew(Config{Shards: 1, Replicas: 1, PersistDir: t.TempDir()})
	defer c.Close()
	if _, err := c.RestartShard(0); err == nil {
		t.Fatal("RestartShard on a live shard must fail")
	}
}
