package cluster

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"parabit/internal/plan"
	"parabit/internal/ssd"
)

// The differential suite is the cluster's correctness anchor: for every
// expression shape and execution scheme, the sharded result must be
// byte-identical to (a) a single-device execution of the same expression
// and (b) the software golden Eval — whether the query routed over the
// wire, shard-locally, or scattered with host-side combine.

// diffPages builds deterministic operand pages.
func diffPages(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = make([]byte, size)
		if _, err := rng.Read(pages[i]); err != nil {
			panic(err)
		}
	}
	return pages
}

// diffShapes enumerates query shapes over column keys 1..4.
func diffShapes() map[string]*plan.Expr {
	k := func(i uint64) *plan.Expr { return plan.Leaf(i) }
	return map[string]*plan.Expr{
		"and2":   plan.And(k(1), k(2)),
		"or2":    plan.Or(k(1), k(2)),
		"xor2":   plan.Xor(k(1), k(2)),
		"xnor2":  plan.Xnor(k(1), k(2)),
		"nand2":  plan.Nand(k(1), k(2)),
		"nor2":   plan.Nor(k(1), k(2)),
		"not":    plan.Not(k(1)),
		"and4":   plan.And(k(1), k(2), k(3), k(4)),
		"nested": plan.Or(plan.And(k(1), k(2)), plan.Xor(k(3), k(4))),
		"mixed":  plan.And(plan.Or(k(1), k(2)), plan.Not(k(3))),
	}
}

// singleDeviceGolden executes the expression on one bare device holding
// the same pages (key i at LPN i-1).
func singleDeviceGolden(t *testing.T, pages [][]byte, e *plan.Expr, scheme ssd.Scheme) []byte {
	t.Helper()
	dev := ssd.MustNew(ssd.SmallConfig())
	for i, p := range pages {
		if _, err := dev.WriteOperandOnPlane(0, uint64(i), p, 0); err != nil {
			t.Fatalf("golden write %d: %v", i, err)
		}
	}
	local, err := plan.Normalize(e)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	shifted, err := rewriteLeaves(local, func(key uint64) uint64 { return key - 1 })
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	res, err := dev.ExecuteQuery(shifted, scheme, 0)
	if err != nil {
		t.Fatalf("golden query: %v", err)
	}
	return res.Data
}

// softwareGolden evaluates the expression in plain host software.
func softwareGolden(t *testing.T, pages [][]byte, e *plan.Expr) []byte {
	t.Helper()
	out, err := e.Eval(func(key uint64) ([]byte, error) {
		if key < 1 || key > uint64(len(pages)) {
			return nil, fmt.Errorf("no key %d", key)
		}
		return pages[key-1], nil
	})
	if err != nil {
		t.Fatalf("software eval: %v", err)
	}
	return out
}

func clusterFor(t *testing.T, colocate bool, pages [][]byte) *Cluster {
	t.Helper()
	cfg := Config{Shards: 4, Replicas: 2}
	if colocate {
		cfg.PlacementOf = func(key uint64) uint64 { return 0 }
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	for i, p := range pages {
		if _, err := c.WriteColumn("t", uint64(i+1), p); err != nil {
			t.Fatalf("cluster write %d: %v", i, err)
		}
	}
	return c
}

func TestDifferentialShardedMatchesSingleDevice(t *testing.T) {
	pageSize := ssd.SmallConfig().Geometry.PageSize
	pages := diffPages(4, pageSize, 7)
	for _, scheme := range ssd.Schemes {
		for _, colocate := range []bool{true, false} {
			c := clusterFor(t, colocate, pages)
			for name, e := range diffShapes() {
				label := fmt.Sprintf("%s/scheme%d/colocate=%v", name, scheme, colocate)
				want := softwareGolden(t, pages, e)
				device := singleDeviceGolden(t, pages, e, scheme)
				if !bytes.Equal(device, want) {
					t.Fatalf("%s: single device diverges from software golden", label)
				}
				got, err := c.Query("t", e, scheme)
				if err != nil {
					t.Fatalf("%s: cluster query: %v", label, err)
				}
				if !bytes.Equal(got.Data, want) {
					t.Fatalf("%s: cluster (%s route) diverges from golden", label, got.Route)
				}
			}
		}
	}
}

// TestDifferentialRoutes pins the routing decisions: colocated placement
// sends wire-expressible shapes over the NVMe queue pair and everything
// else shard-local; spread-out operands scatter.
func TestDifferentialRoutes(t *testing.T) {
	pageSize := ssd.SmallConfig().Geometry.PageSize
	pages := diffPages(4, pageSize, 11)

	co := clusterFor(t, true, pages)
	res, err := co.Query("t", plan.And(plan.Leaf(1), plan.Leaf(2)), ssd.SchemeLocFree)
	if err != nil {
		t.Fatalf("colocated query: %v", err)
	}
	if res.Route != RouteWire {
		t.Fatalf("binary colocated query routed %s, want %s", res.Route, RouteWire)
	}
	res, err = co.Query("t", plan.Not(plan.Leaf(1)), ssd.SchemeReAlloc)
	if err != nil {
		t.Fatalf("colocated NOT: %v", err)
	}
	if res.Route != RouteLocal {
		t.Fatalf("NOT query routed %s, want %s", res.Route, RouteLocal)
	}

	// Spread placement: find two keys with disjoint replica sets so the
	// query must scatter.
	sp := clusterFor(t, false, pages)
	var a, b uint64
search:
	for i := uint64(1); i <= 4; i++ {
		for j := i + 1; j <= 4; j++ {
			if sh, _, err := sp.colocatedShard([]uint64{i, j}); err == nil && sh == nil {
				a, b = i, j
				break search
			}
		}
	}
	if a == 0 {
		t.Skip("all key pairs colocated under this ring layout")
	}
	res, err = sp.Query("t", plan.Xor(plan.Leaf(a), plan.Leaf(b)), ssd.SchemePreAlloc)
	if err != nil {
		t.Fatalf("scattered query: %v", err)
	}
	if res.Route != RouteScatter {
		t.Fatalf("disjoint-operand query routed %s, want %s", res.Route, RouteScatter)
	}
	want := softwareGolden(t, pages, plan.Xor(plan.Leaf(a), plan.Leaf(b)))
	if !bytes.Equal(res.Data, want) {
		t.Fatal("scattered result diverges from software golden")
	}
}

// TestDifferentialWireStats confirms wire-routed queries really crossed
// the transport: the serving shard's queue pair drained entries.
func TestDifferentialWireStats(t *testing.T) {
	pageSize := ssd.SmallConfig().Geometry.PageSize
	pages := diffPages(2, pageSize, 13)
	c := clusterFor(t, true, pages)
	if _, err := c.Query("t", plan.And(plan.Leaf(1), plan.Leaf(2)), ssd.SchemeLocFree); err != nil {
		t.Fatalf("query: %v", err)
	}
	var drained int64
	c.EachShard(func(sh *Shard) { drained += sh.QueuePair().Stats().Drained })
	if drained == 0 {
		t.Fatal("wire-routed query left no transport traffic")
	}
}
