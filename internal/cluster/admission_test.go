package cluster

import (
	"errors"
	"sync"
	"testing"

	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

func TestAdmissionRateLimit(t *testing.T) {
	var a admitter
	a.init(QoS{})
	a.set("limited", QoS{OpsPerSec: 2, Burst: 2})

	// Burst admits two, then the bucket is dry.
	for i := 0; i < 2; i++ {
		release, err := a.admit("limited", 0)
		if err != nil {
			t.Fatalf("burst admit %d: %v", i, err)
		}
		release()
	}
	_, err := a.admit("limited", 0)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("dry-bucket error = %v, want ErrAdmission", err)
	}
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != "rate" || ae.Tenant != "limited" {
		t.Fatalf("rejection = %+v, want rate rejection for limited", ae)
	}

	// Half a virtual second refills one token at 2 ops/s.
	release, err := a.admit("limited", sim.Time(500*sim.Millisecond))
	if err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	release()
	if _, err := a.admit("limited", sim.Time(500*sim.Millisecond)); !errors.Is(err, ErrAdmission) {
		t.Fatalf("second post-refill admit = %v, want ErrAdmission", err)
	}
}

func TestAdmissionQueueDepth(t *testing.T) {
	var a admitter
	a.init(QoS{})
	a.set("bounded", QoS{MaxInFlight: 2})

	r1, err := a.admit("bounded", 0)
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	r2, err := a.admit("bounded", 0)
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	_, err = a.admit("bounded", 0)
	var ae *AdmissionError
	if !errors.As(err, &ae) || ae.Reason != "queue" {
		t.Fatalf("over-depth error = %v, want queue rejection", err)
	}
	r1()
	r3, err := a.admit("bounded", 0)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r3()
	r2()
}

// TestQueueRejectionDoesNotChargeRateToken pins the check order: a
// request bounced for queue depth must leave the rate bucket untouched,
// not double-penalize the tenant.
func TestQueueRejectionDoesNotChargeRateToken(t *testing.T) {
	var a admitter
	a.init(QoS{})
	a.set("both", QoS{OpsPerSec: 1, Burst: 2, MaxInFlight: 1})
	r1, err := a.admit("both", 0)
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	var ae *AdmissionError
	if _, err := a.admit("both", 0); !errors.As(err, &ae) || ae.Reason != "queue" {
		t.Fatalf("over-depth error = %v, want queue rejection", err)
	}
	r1()
	// The second burst token must have survived the queue rejection.
	r2, err := a.admit("both", 0)
	if err != nil {
		t.Fatalf("admit after queue rejection: %v", err)
	}
	r2()
}

// TestRejectionCountingRacesTelemetryRebind pins the countReject fix:
// setTelemetry rebinds the rejection counters under a.mu, so charging a
// rejection must load them under the same lock. The old code cached the
// counter pointer outside the lock — under -race this test caught it, and
// rejections could land on a counter that had already been swapped out.
// Alternating between two counter pairs makes the accounting exact: every
// rejection must charge exactly one of them.
func TestRejectionCountingRacesTelemetryRebind(t *testing.T) {
	var a admitter
	a.init(QoS{MaxInFlight: 1})
	sink := telemetry.New()
	rateA, queueA := sink.Counter("a.rate"), sink.Counter("a.queue")
	rateB, queueB := sink.Counter("b.rate"), sink.Counter("b.queue")
	a.setTelemetry(rateA, queueA)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				a.setTelemetry(rateB, queueB)
			} else {
				a.setTelemetry(rateA, queueA)
			}
		}
	}()

	// Hold the single in-flight slot so every further admit is a queue
	// rejection racing the rebinder.
	release, err := a.admit("tenant", 0)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	const rejects = 1000
	for i := 0; i < rejects; i++ {
		if _, err := a.admit("tenant", 0); !errors.Is(err, ErrAdmission) {
			t.Fatalf("admit %d = %v, want ErrAdmission", i, err)
		}
	}
	release()
	close(stop)
	wg.Wait()

	if got := queueA.Value() + queueB.Value(); got != rejects {
		t.Fatalf("queue rejections counted = %d, want %d", got, rejects)
	}
	if got := rateA.Value() + rateB.Value(); got != 0 {
		t.Fatalf("rate rejections counted = %d, want 0", got)
	}
}

func TestAdmissionDefaultQoSAppliesToUnknownTenants(t *testing.T) {
	var a admitter
	a.init(QoS{MaxInFlight: 1})
	r1, err := a.admit("anyone", 0)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := a.admit("anyone", 0); !errors.Is(err, ErrAdmission) {
		t.Fatalf("default QoS not applied: %v", err)
	}
	// Tenants are isolated: another name has its own bucket.
	r2, err := a.admit("other", 0)
	if err != nil {
		t.Fatalf("isolated tenant rejected: %v", err)
	}
	r2()
	r1()
}

func TestClusterEndToEndAdmission(t *testing.T) {
	c := MustNew(Config{Shards: 2, Replicas: 1})
	c.SetTenantQoS("capped", QoS{OpsPerSec: 1, Burst: 1})
	data := make([]byte, c.PageSize())
	if _, err := c.WriteColumn("capped", 1, data); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Virtual time has advanced microseconds at most; at 1 op/s the
	// bucket cannot have refilled.
	_, err := c.WriteColumn("capped", 2, data)
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("second write = %v, want ErrAdmission", err)
	}
	// Other tenants are unaffected.
	if _, err := c.WriteColumn("free", 2, data); err != nil {
		t.Fatalf("unthrottled tenant: %v", err)
	}
}
