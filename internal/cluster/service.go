package cluster

import (
	"fmt"
	"math/bits"

	"parabit/internal/plan"
	"parabit/internal/sim"
	"parabit/internal/ssd"
	"parabit/internal/workload"
)

// BitmapService turns the §5.3.2 batch workload into a live queryable
// service: the activity matrix loads as sharded columns and "active on
// all of these days" questions answer on demand, each day column split
// into page-sized chunks. Column keys encode (chunk, day); placing
// clusters by chunk keeps chunk i of every day column on one replica
// set, so per-chunk cross-day reductions route shard-locally and the
// operand pages share a plane — the location-free layout.

// chunkShift packs keys as chunk<<chunkShift | day.
const chunkShift = 16

// ColumnKey names chunk i of day column d — the key layout BitmapService
// stores under, exported so load drivers can address raw columns.
func ColumnKey(chunk, day int) uint64 {
	return uint64(chunk)<<chunkShift | uint64(day)
}

// PlacementByChunk is the Config.PlacementOf a BitmapService cluster
// must use: all days of one chunk share a placement group.
func PlacementByChunk(key uint64) uint64 { return key >> chunkShift }

// BitmapService serves a loaded bitmap over a cluster.
type BitmapService struct {
	c      *Cluster
	spec   workload.BitmapSpec
	chunks int
}

// NewBitmapService sizes the service for the spec: ColumnBytes split
// into page-sized chunks.
func NewBitmapService(c *Cluster, spec workload.BitmapSpec) (*BitmapService, error) {
	if spec.Days() >= 1<<chunkShift {
		return nil, fmt.Errorf("cluster: %d day columns exceed key space", spec.Days())
	}
	page := int64(c.PageSize())
	chunks := int((spec.ColumnBytes() + page - 1) / page)
	if chunks < 1 {
		chunks = 1
	}
	return &BitmapService{c: c, spec: spec, chunks: chunks}, nil
}

// Chunks returns the per-day column chunk count.
func (s *BitmapService) Chunks() int { return s.chunks }

// Load writes every day column, chunked and zero-padded to page size.
// Padding bits stay zero through every bitwise reduction, so popcounts
// need no tail masking.
func (s *BitmapService) Load(tenant string, d *workload.BitmapData) error {
	page := s.c.PageSize()
	for day, col := range d.Columns {
		raw := col.Bytes()
		for chunk := 0; chunk < s.chunks; chunk++ {
			buf := make([]byte, page)
			lo := chunk * page
			if lo < len(raw) {
				copy(buf, raw[lo:])
			}
			if _, err := s.c.WriteColumn(tenant, ColumnKey(chunk, day), buf); err != nil {
				return fmt.Errorf("cluster: load day %d chunk %d: %w", day, chunk, err)
			}
		}
	}
	return nil
}

// ActiveAcrossDays counts users active on every listed day: per chunk an
// AND reduction over the day columns (shard-local when the chunk's
// replicas colocate), popcounted host-side. Elapsed is the slowest
// chunk's query — chunks live on different shards and serve in parallel.
func (s *BitmapService) ActiveAcrossDays(tenant string, days []int, scheme ssd.Scheme) (int, sim.Duration, error) {
	if len(days) == 0 {
		return 0, 0, fmt.Errorf("cluster: no days to intersect")
	}
	count := 0
	var slowest sim.Duration
	for chunk := 0; chunk < s.chunks; chunk++ {
		data, elapsed, err := s.queryChunk(tenant, chunk, days, scheme)
		if err != nil {
			return 0, 0, err
		}
		for _, b := range data {
			count += bits.OnesCount8(b)
		}
		if elapsed > slowest {
			slowest = elapsed
		}
	}
	return count, slowest, nil
}

func (s *BitmapService) queryChunk(tenant string, chunk int, days []int, scheme ssd.Scheme) ([]byte, sim.Duration, error) {
	if len(days) == 1 {
		start := s.c.Now()
		data, done, err := s.c.ReadColumn(tenant, ColumnKey(chunk, days[0]))
		if err != nil {
			return nil, 0, err
		}
		elapsed := done.Sub(start)
		if elapsed < 0 {
			elapsed = 0
		}
		return data, elapsed, nil
	}
	leaves := make([]*plan.Expr, len(days))
	for i, d := range days {
		leaves[i] = plan.Leaf(ColumnKey(chunk, d))
	}
	res, err := s.c.Query(tenant, plan.And(leaves...), scheme)
	if err != nil {
		return nil, 0, err
	}
	return res.Data, res.Elapsed, nil
}
