package cluster

import "sort"

// The placement ring is a consistent-hash ring with virtual nodes: each
// shard projects VirtualNodes points onto a 64-bit circle, and a key
// belongs to the first shard points clockwise of its hash. Adding or
// removing a shard moves only the keys between its points and their
// predecessors — roughly 1/N of the space — which is what keeps
// rebalancing proportional instead of total.

// ringPoint is one virtual node: a position on the circle owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

type ring struct {
	vnodes int
	points []ringPoint // sorted by hash, ties broken by shard id
}

func newRing(vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &ring{vnodes: vnodes}
}

// hash64 is the splitmix64 finalizer: a full-avalanche mix, so the small
// sequential integers columns and vnodes use spread evenly on the circle.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// vnodeHash positions shard s's i'th virtual node on the circle. The
// double hash domain-separates vnode points from key hashes — with a
// single round, shard 0's vnode i would land exactly on key i's hash and
// ties would glue those keys to shard 0 forever.
func vnodeHash(shard, i int) uint64 {
	return hash64(hash64(uint64(shard)+1) + uint64(i))
}

func (r *ring) add(shard int) {
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(shard, i), shard: shard})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
}

func (r *ring) remove(shard int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// lookup walks clockwise from the key's hash and returns up to n distinct
// shards — the key's replica set in preference order.
func (r *ring) lookup(key uint64, n int) []int {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
