package cluster

import "testing"

func TestRingLookupDistinctAndStable(t *testing.T) {
	r := newRing(64)
	for id := 0; id < 4; id++ {
		r.add(id)
	}
	for key := uint64(0); key < 200; key++ {
		got := r.lookup(key, 3)
		if len(got) != 3 {
			t.Fatalf("key %d: %d owners, want 3", key, len(got))
		}
		seen := map[int]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("key %d: duplicate owner %d in %v", key, id, got)
			}
			seen[id] = true
		}
		again := r.lookup(key, 3)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("key %d: lookup not stable: %v vs %v", key, got, again)
			}
		}
	}
}

func TestRingLookupCapsAtShardCount(t *testing.T) {
	r := newRing(16)
	r.add(0)
	r.add(1)
	if got := r.lookup(42, 5); len(got) != 2 {
		t.Fatalf("lookup over 2 shards returned %v", got)
	}
	if got := r.lookup(42, 0); got != nil {
		t.Fatalf("n=0 lookup returned %v", got)
	}
}

func TestRingBalancesKeys(t *testing.T) {
	r := newRing(128)
	const shards = 4
	for id := 0; id < shards; id++ {
		r.add(id)
	}
	counts := make([]int, shards)
	const keys = 4000
	for key := uint64(0); key < keys; key++ {
		counts[r.lookup(key, 1)[0]]++
	}
	for id, n := range counts {
		// With 128 vnodes the spread stays well inside 2x of fair share.
		if n < keys/shards/2 || n > keys/shards*2 {
			t.Fatalf("shard %d owns %d of %d keys: badly unbalanced %v", id, n, keys, counts)
		}
	}
}

func TestRingRemoveMovesOnlyVictimKeys(t *testing.T) {
	r := newRing(64)
	for id := 0; id < 4; id++ {
		r.add(id)
	}
	before := make(map[uint64]int)
	for key := uint64(0); key < 1000; key++ {
		before[key] = r.lookup(key, 1)[0]
	}
	r.remove(2)
	moved := 0
	for key := uint64(0); key < 1000; key++ {
		after := r.lookup(key, 1)[0]
		if after == 2 {
			t.Fatalf("key %d still maps to removed shard", key)
		}
		if before[key] != 2 && after != before[key] {
			t.Fatalf("key %d moved from surviving shard %d to %d", key, before[key], after)
		}
		if before[key] == 2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("shard 2 owned no keys before removal")
	}
}
