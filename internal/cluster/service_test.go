package cluster

import (
	"testing"

	"parabit/internal/ssd"
	"parabit/internal/telemetry"
	"parabit/internal/workload"
)

// TestBitmapServiceMatchesGolden loads a multi-page bitmap across the
// cluster and checks the served every-day intersection count against the
// workload generator's software golden.
func TestBitmapServiceMatchesGolden(t *testing.T) {
	c := MustNew(Config{Shards: 4, Replicas: 2, PlacementOf: PlacementByChunk})
	// ~6 page-sized chunks per day column at the small geometry.
	spec := workload.CustomBitmap(int64(c.PageSize()*8*6-13), 5, 0)
	data, err := workload.GenerateBitmap(spec, 42)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	svc, err := NewBitmapService(c, spec)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	if svc.Chunks() < 2 {
		t.Fatalf("want a multi-chunk bitmap, got %d chunks", svc.Chunks())
	}
	if err := svc.Load("app", data); err != nil {
		t.Fatalf("load: %v", err)
	}
	days := make([]int, spec.Days())
	for i := range days {
		days[i] = i
	}
	for _, scheme := range ssd.Schemes {
		count, elapsed, err := svc.ActiveAcrossDays("app", days, scheme)
		if err != nil {
			t.Fatalf("scheme %d: %v", scheme, err)
		}
		if count != data.ActiveCount {
			t.Fatalf("scheme %d: served count %d, golden %d", scheme, count, data.ActiveCount)
		}
		if elapsed <= 0 {
			t.Fatalf("scheme %d: non-positive service time %v", scheme, elapsed)
		}
	}

	// Subset and single-day paths.
	count, _, err := svc.ActiveAcrossDays("app", []int{0, 2}, ssd.SchemeLocFree)
	if err != nil {
		t.Fatalf("two-day query: %v", err)
	}
	gold := 0
	for u := 0; u < data.Columns[0].Len(); u++ {
		if data.Columns[0].Get(u) && data.Columns[2].Get(u) {
			gold++
		}
	}
	if count != gold {
		t.Fatalf("two-day count %d, golden %d", count, gold)
	}
	count, _, err = svc.ActiveAcrossDays("app", []int{1}, ssd.SchemeLocFree)
	if err != nil {
		t.Fatalf("single-day query: %v", err)
	}
	if count != data.Columns[1].PopCount() {
		t.Fatalf("single-day count %d, golden %d", count, data.Columns[1].PopCount())
	}
}

// TestBitmapServiceRoutesShardLocally pins the placement contract: with
// PlacementByChunk, every cross-day chunk reduction colocates.
func TestBitmapServiceRoutesShardLocally(t *testing.T) {
	c := MustNew(Config{Shards: 4, Replicas: 1, PlacementOf: PlacementByChunk})
	spec := workload.CustomBitmap(int64(c.PageSize()*8*3), 4, 0)
	data, err := workload.GenerateBitmap(spec, 7)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	svc, err := NewBitmapService(c, spec)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	if err := svc.Load("app", data); err != nil {
		t.Fatalf("load: %v", err)
	}
	sink := telemetry.New()
	c.SetTelemetry(sink)
	if _, _, err := svc.ActiveAcrossDays("app", []int{0, 1, 2, 3}, ssd.SchemeLocFree); err != nil {
		t.Fatalf("query: %v", err)
	}
	if n := sink.Counter("cluster.route.scatter").Value(); n != 0 {
		t.Fatalf("%d chunk reductions scattered; chunk placement should colocate all of them", n)
	}
	local := sink.Counter("cluster.route.local").Value() + sink.Counter("cluster.route.wire").Value()
	if local != int64(svc.Chunks()) {
		t.Fatalf("%d shard-local chunk reductions, want %d", local, svc.Chunks())
	}
}
