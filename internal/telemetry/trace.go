package telemetry

import (
	"sync"

	"parabit/internal/sim"
)

// Trace records spans and instants on named tracks and exports them as
// Chrome trace-event JSON (chrome://tracing, Perfetto UI). A track is one
// lane in the viewer: a (process, lane) pair mapped to a stable
// (pid, tid). Processes group related lanes — "flash" holds one lane per
// plane and channel, "sched" one per command queue, and so on.
//
// A nil *Trace is a valid disabled recorder; Track on it returns a nil
// *Track whose methods are no-ops.
type Trace struct {
	mu     sync.Mutex
	pids   map[string]int      // guarded by mu
	procs  []string            // by pid-1; guarded by mu
	tracks map[trackKey]*Track // guarded by mu
	order  []*Track            // guarded by mu
	events []traceSample       // guarded by mu
	// scope prefixes process names of a scoped view; base points at the
	// recording root. Both are zero at the root.
	scope string
	base  *Trace
}

// root returns the recording owner: the trace itself, or the base of a
// scoped view.
func (t *Trace) root() *Trace {
	if t != nil && t.base != nil {
		return t.base
	}
	return t
}

// scoped returns a view whose Track process names carry the prefix.
// Events recorded through it land in the root recorder.
func (t *Trace) scoped(scope string) *Trace {
	if t == nil || scope == "" {
		return t
	}
	return &Trace{scope: scope, base: t.root()}
}

type trackKey struct{ process, lane string }

// traceSample is one recorded event. dur < 0 marks an instant event.
type traceSample struct {
	track *Track
	name  string
	start sim.Time
	dur   sim.Duration
	seq   int // insertion order, the tie-breaker for equal timestamps
}

func newTrace() *Trace {
	return &Trace{
		pids:   make(map[string]int),
		tracks: make(map[trackKey]*Track),
	}
}

// Track returns the lane for (process, lane), registering it on first
// use. Pids and tids are assigned in registration order, so a fixed
// instrumentation order yields stable ids run over run. Nil-safe.
func (t *Trace) Track(process, lane string) *Track {
	if t == nil {
		return nil
	}
	r := t.root()
	process = t.scope + process
	r.mu.Lock()
	defer r.mu.Unlock()
	key := trackKey{process, lane}
	if tk, ok := r.tracks[key]; ok {
		return tk
	}
	pid, ok := r.pids[process]
	if !ok {
		pid = len(r.procs) + 1
		r.pids[process] = pid
		r.procs = append(r.procs, process)
	}
	tid := 1
	for _, tk := range r.order {
		if tk.pid == pid {
			tid++
		}
	}
	tk := &Track{tr: r, process: process, lane: lane, pid: pid, tid: tid}
	r.tracks[key] = tk
	r.order = append(r.order, tk)
	return tk
}

// Track is one lane of the trace. A nil *Track is a disabled lane.
type Track struct {
	tr            *Trace
	process, lane string
	pid, tid      int
}

// Span records a complete ("X") event covering [start, end] in virtual
// time. Zero-length spans are kept — they mark instantaneous commands
// (barriers). No-op on a nil track.
func (k *Track) Span(name string, start, end sim.Time) {
	if k == nil {
		return
	}
	d := end.Sub(start)
	if d < 0 {
		start, d = end, -d
	}
	k.tr.record(k, name, start, d)
}

// Instant records a point event ("i") at the given virtual time. No-op on
// a nil track.
func (k *Track) Instant(name string, at sim.Time) {
	if k == nil {
		return
	}
	k.tr.record(k, name, at, -1)
}

func (t *Trace) record(k *Track, name string, start sim.Time, dur sim.Duration) {
	t.mu.Lock()
	t.events = append(t.events, traceSample{
		track: k, name: name, start: start, dur: dur, seq: len(t.events),
	})
	t.mu.Unlock()
}

// Len reports the number of recorded events (spans + instants).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	r := t.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// snapshot copies the recorder state for export.
func (t *Trace) snapshot() (procs []string, tracks []*Track, events []traceSample) {
	r := t.root()
	r.mu.Lock()
	defer r.mu.Unlock()
	procs = append([]string(nil), r.procs...)
	tracks = append([]*Track(nil), r.order...)
	events = append([]traceSample(nil), r.events...)
	return
}
