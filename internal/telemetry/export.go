package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"parabit/internal/sim"
)

// TraceEvent is one entry of the exported Chrome trace-event JSON. The
// field set follows the trace-event format spec: ph "M" for metadata,
// "X" for complete spans (ts + dur), "i" for instants. Timestamps are in
// microseconds of *virtual* time.
type TraceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// TraceFile is the top-level object WriteTrace emits; exported so tests
// (and tools) can round-trip the JSON.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func toMicros(t sim.Time) float64      { return float64(t) / 1e3 }
func durMicros(d sim.Duration) float64 { return float64(d) / 1e3 }

// Events builds the export-ready event list: metadata events naming every
// process and lane first, then all spans and instants sorted by
// timestamp (insertion order breaks ties, so the output is deterministic
// for a deterministic run).
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	procs, tracks, samples := t.snapshot()
	out := make([]TraceEvent, 0, len(procs)+2*len(tracks)+len(samples))
	for i, p := range procs {
		out = append(out, TraceEvent{
			Name: "process_name", Ph: "M", PID: i + 1, TID: 0,
			Args: map[string]string{"name": p},
		})
	}
	for _, tk := range tracks {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tk.pid, TID: tk.tid,
			Args: map[string]string{"name": tk.lane},
		})
		out = append(out, TraceEvent{
			Name: "thread_sort_index", Ph: "M", PID: tk.pid, TID: tk.tid,
			Args: map[string]string{"sort_index": fmt.Sprint(tk.tid)},
		})
	}
	sort.SliceStable(samples, func(i, j int) bool {
		if samples[i].start != samples[j].start {
			return samples[i].start < samples[j].start
		}
		return samples[i].seq < samples[j].seq
	})
	for _, s := range samples {
		ev := TraceEvent{
			Name: s.name, TS: toMicros(s.start),
			PID: s.track.pid, TID: s.track.tid,
		}
		if s.dur < 0 {
			ev.Ph = "i"
			ev.S = "t" // thread-scoped instant
		} else {
			ev.Ph = "X"
			ev.Dur = durMicros(s.dur)
		}
		out = append(out, ev)
	}
	return out
}

// WriteTrace writes the recorded trace as Chrome trace-event JSON. Open
// the file in chrome://tracing or https://ui.perfetto.dev. Writing an
// empty or disabled trace yields a valid file with only metadata (or
// nothing), so callers need not special-case short runs.
func (s *Sink) WriteTrace(w io.Writer) error {
	f := TraceFile{
		TraceEvents:     s.Trace().Events(),
		DisplayTimeUnit: "ns",
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteMetrics writes an expvar-style text summary: every counter and
// gauge with its value, and every histogram with count, mean, min,
// p50/p95/p99 and max — the per-op-kind latency breakdown the paper's
// Fig. 13 reports as sense/transfer/program splits.
func (s *Sink) WriteMetrics(w io.Writer) {
	if s == nil {
		return
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	s.EachCounter(func(name string, v int64) {
		fmt.Fprintf(bw, "counter %-36s %d\n", name, v)
	})
	s.EachGauge(func(name string, v int64) {
		fmt.Fprintf(bw, "gauge   %-36s %d\n", name, v)
	})
	s.EachHistogram(func(name string, h *Histogram) {
		n := h.Count()
		if n == 0 {
			fmt.Fprintf(bw, "hist    %-36s count=0\n", name)
			return
		}
		mean := sim.Duration(int64(h.Sum()) / n)
		fmt.Fprintf(bw, "hist    %-36s count=%d mean=%v min=%v p50=%v p95=%v p99=%v max=%v\n",
			name, n, mean, h.Min(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	})
}
