package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parabit/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sampleSink builds a small deterministic trace covering every event
// variety the exporter emits: multiple processes and lanes, overlapping
// and zero-length spans, out-of-order recording, and an instant.
func sampleSink() *Sink {
	s := New()
	tr := s.EnableTrace()
	p0 := tr.Track("flash", "plane-0")
	p1 := tr.Track("flash", "plane-1")
	ch := tr.Track("flash", "chan-0")
	q := tr.Track("sched", "queue-bitwise")
	q.Span("bitwise", 0, sim.Time(40_000))
	p0.Span("sense", 0, sim.Time(25_000))
	p1.Span("sense", sim.Time(10_000), sim.Time(35_000))
	ch.Span("xfer-out", sim.Time(25_000), sim.Time(31_000))
	p0.Instant("gc-trigger", sim.Time(50_000))
	// Recorded late but starting early: the exporter must sort it.
	p1.Span("program", sim.Time(5_000), sim.Time(8_000))
	// Zero-length span (a barrier) survives export.
	q.Span("barrier", sim.Time(60_000), sim.Time(60_000))
	s.Counter("ops").Add(7)
	return s
}

func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleSink().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON diverged from golden file; run with -update if intended.\ngot:\n%s", buf.String())
	}
}

// TestTraceRoundTrip validates the exported JSON against the Chrome
// trace-event contract: parseable, metadata naming every lane, samples
// sorted by timestamp, well-formed X/i events, and ids stable across
// repeated exports.
func TestTraceRoundTrip(t *testing.T) {
	s := sampleSink()
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f TraceFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit %q", f.DisplayTimeUnit)
	}
	lanes := map[[2]int]string{}
	procs := map[int]string{}
	var lastTS float64
	samples := 0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procs[ev.PID] = ev.Args["name"]
			case "thread_name":
				lanes[[2]int{ev.PID, ev.TID}] = ev.Args["name"]
			case "thread_sort_index":
			default:
				t.Errorf("unknown metadata event %q", ev.Name)
			}
		case "X":
			if ev.Dur < 0 {
				t.Errorf("span %q has negative dur %v", ev.Name, ev.Dur)
			}
			fallthrough
		case "i":
			samples++
			if ev.TS < lastTS {
				t.Errorf("event %q at ts %v after ts %v: not sorted", ev.Name, ev.TS, lastTS)
			}
			lastTS = ev.TS
			if _, ok := lanes[[2]int{ev.PID, ev.TID}]; !ok {
				t.Errorf("event %q on unregistered lane pid=%d tid=%d", ev.Name, ev.PID, ev.TID)
			}
			if _, ok := procs[ev.PID]; !ok {
				t.Errorf("event %q in unnamed process %d", ev.Name, ev.PID)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if samples != s.Trace().Len() {
		t.Errorf("exported %d samples, recorded %d", samples, s.Trace().Len())
	}
	wantLanes := map[string]bool{"plane-0": true, "plane-1": true, "chan-0": true, "queue-bitwise": true}
	for _, name := range lanes {
		delete(wantLanes, name)
	}
	if len(wantLanes) != 0 {
		t.Errorf("missing lanes in export: %v", wantLanes)
	}

	// Re-export: identical output, so pids/tids are stable.
	var again bytes.Buffer
	if err := s.WriteTrace(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-export produced different bytes")
	}
	// A structurally identical sink registered in the same order must
	// assign the same ids (run-over-run stability).
	var fresh bytes.Buffer
	if err := sampleSink().WriteTrace(&fresh); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), fresh.Bytes()) {
		t.Error("identical construction produced different ids")
	}
}

func TestWriteTraceDisabledOrEmpty(t *testing.T) {
	for name, s := range map[string]*Sink{"nil": nil, "no-trace": New(), "empty-trace": func() *Sink {
		s := New()
		s.EnableTrace()
		return s
	}()} {
		var buf bytes.Buffer
		if err := s.WriteTrace(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var f TraceFile
		if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if f.TraceEvents == nil {
			t.Errorf("%s: traceEvents must be [], not null", name)
		}
	}
}

func TestWriteMetricsSummary(t *testing.T) {
	s := New()
	s.Counter("ftl.gc.runs").Add(3)
	s.Gauge("depth").Set(11)
	h := s.Histogram("sched.latency.bitwise")
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Duration(i) * sim.Microsecond)
	}
	s.Histogram("sched.latency.read") // registered, never observed
	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"counter ftl.gc.runs", "3",
		"gauge", "depth", "11",
		"hist", "sched.latency.bitwise", "count=100", "p50=", "p95=", "p99=",
		"sched.latency.read", "count=0",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Registration order must be preserved.
	var names []string
	s.EachHistogram(func(name string, _ *Histogram) { names = append(names, name) })
	if !reflect.DeepEqual(names, []string{"sched.latency.bitwise", "sched.latency.read"}) {
		t.Errorf("histogram order: %v", names)
	}
}
