package telemetry

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"parabit/internal/sim"
)

// naiveQuantile is the reference the histogram is checked against: sort
// and index, with the same nearest-rank convention.
func naiveQuantile(vals []int64, q float64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int64(q*float64(len(s)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > int64(len(s)) {
		rank = int64(len(s))
	}
	return s[rank-1]
}

func TestHistogramQuantileVsNaive(t *testing.T) {
	dists := map[string]func(r *rand.Rand) int64{
		// Uniform small values land in exact buckets.
		"uniform-small": func(r *rand.Rand) int64 { return r.Int63n(histSub) },
		// Microsecond-to-millisecond latencies, the realistic range.
		"uniform-wide": func(r *rand.Rand) int64 { return 1_000 + r.Int63n(10_000_000) },
		// Log-uniform exercises every bucket scale.
		"log-uniform": func(r *rand.Rand) int64 { return int64(1) << uint(r.Intn(40)) },
		// Heavy tail: mostly small with rare huge values.
		"heavy-tail": func(r *rand.Rand) int64 {
			if r.Intn(100) == 0 {
				return r.Int63n(1 << 40)
			}
			return r.Int63n(50_000)
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			h := newHistogram(name)
			vals := make([]int64, 5000)
			for i := range vals {
				vals[i] = gen(r)
				h.Observe(sim.Duration(vals[i]))
			}
			for _, q := range []float64{0, 0.25, 0.50, 0.90, 0.95, 0.99, 1} {
				got := int64(h.Quantile(q))
				want := naiveQuantile(vals, q)
				// Log-linear buckets with histSub sub-buckets bound the
				// relative error at 1/histSub of the bucket width; allow
				// 5 % plus one ULP of slack for rank-vs-midpoint skew.
				tol := want / 20
				if tol < 1 {
					tol = 1
				}
				if got < want-tol || got > want+tol {
					t.Errorf("q=%.2f: got %d, naive %d (tol %d)", q, got, want, tol)
				}
			}
			if h.Count() != int64(len(vals)) {
				t.Errorf("count %d, want %d", h.Count(), len(vals))
			}
			var sum int64
			for _, v := range vals {
				sum += v
			}
			if int64(h.Sum()) != sum {
				t.Errorf("sum %d, want %d", h.Sum(), sum)
			}
		})
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram("edges")
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zero")
	}
	h.Observe(1234)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 1234 {
			t.Errorf("single-value histogram q=%v: got %v", q, got)
		}
	}
	if h.Min() != 1234 || h.Max() != 1234 {
		t.Errorf("min/max: %v/%v", h.Min(), h.Max())
	}
	h.Observe(-5) // clamps to zero
	if h.Min() != 0 {
		t.Errorf("negative observation should clamp: min %v", h.Min())
	}
}

func TestBucketMidStaysInBucket(t *testing.T) {
	for _, v := range []int64{0, 1, histSub - 1, histSub, 100, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := bucketOf(v)
		mid := bucketMid(idx)
		if bucketOf(mid) != idx {
			t.Errorf("v=%d: bucket %d has midpoint %d in bucket %d", v, idx, mid, bucketOf(mid))
		}
		if v < histSub && mid != v {
			t.Errorf("exact range: v=%d got midpoint %d", v, mid)
		}
	}
}

// TestNilSinkNoAllocations is the disabled-fast-path contract: with a nil
// sink, registration, every metric update and every span call must not
// allocate.
func TestNilSinkNoAllocations(t *testing.T) {
	var s *Sink
	c := s.Counter("x")
	g := s.Gauge("x")
	h := s.Histogram("x")
	tk := s.Trace().Track("p", "l")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(7)
		h.Observe(123)
		tk.Span("op", 0, 10)
		tk.Instant("i", 5)
		s.Counter("y").Add(1)
		s.Trace().Track("p", "l2").Span("op", 0, 1)
	}); n != 0 {
		t.Fatalf("nil sink allocated %v times per op batch", n)
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var s *Sink
	if s.Counter("c").Value() != 0 || s.Gauge("g").Value() != 0 {
		t.Error("nil handles must read zero")
	}
	if s.Histogram("h").Quantile(0.5) != 0 {
		t.Error("nil histogram must read zero")
	}
	if s.Trace() != nil || s.EnableTrace() != nil {
		t.Error("nil sink must not produce a trace")
	}
	s.EachCounter(func(string, int64) { t.Error("nil sink visited a counter") })
	s.WriteMetrics(nil) // must not panic
}

func TestSinkRegistrationIsIdempotent(t *testing.T) {
	s := New()
	if s.Counter("a") != s.Counter("a") {
		t.Error("same name must return the same counter")
	}
	if s.Histogram("h") != s.Histogram("h") {
		t.Error("same name must return the same histogram")
	}
	tr := s.EnableTrace()
	if tr != s.EnableTrace() || tr != s.Trace() {
		t.Error("EnableTrace must be idempotent")
	}
	if tr.Track("p", "l") != tr.Track("p", "l") {
		t.Error("same (process, lane) must return the same track")
	}
}

func TestConcurrentMetricsAndSpans(t *testing.T) {
	s := New()
	tr := s.EnableTrace()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := s.Counter("ops")
			h := s.Histogram("lat")
			tk := tr.Track("proc", "lane")
			for i := 0; i < per; i++ {
				c.Add(1)
				h.Observe(sim.Duration(i))
				tk.Span("op", sim.Time(i), sim.Time(i+1))
				s.Gauge("depth").Set(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Counter("ops").Value(); got != workers*per {
		t.Errorf("counter: %d, want %d", got, workers*per)
	}
	if got := s.Histogram("lat").Count(); got != workers*per {
		t.Errorf("histogram: %d, want %d", got, workers*per)
	}
	if got := tr.Len(); got != workers*per {
		t.Errorf("trace: %d events, want %d", got, workers*per)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var s *Sink
	c := s.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := New().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(sim.Duration(i & 0xfffff))
	}
}

func BenchmarkTrackSpanEnabled(b *testing.B) {
	tk := New().EnableTrace().Track("p", "l")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tk.Span("op", sim.Time(i), sim.Time(i+10))
	}
}
