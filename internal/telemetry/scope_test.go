package telemetry

import (
	"strings"
	"testing"
)

func TestScopePrefixesMetricNames(t *testing.T) {
	s := New()
	s0 := s.Scope("shard0")
	s1 := s.Scope("shard1")
	s0.Counter("reads").Add(3)
	s1.Counter("reads").Add(5)
	s.Counter("reads").Add(1)
	got := map[string]int64{}
	s.EachCounter(func(name string, v int64) { got[name] = v })
	want := map[string]int64{"shard0.reads": 3, "shard1.reads": 5, "reads": 1}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("counter %q = %d, want %d (all: %v)", name, got[name], v, got)
		}
	}
}

func TestScopeNests(t *testing.T) {
	s := New()
	inner := s.Scope("cluster").Scope("shard2")
	inner.Gauge("depth").Set(7)
	found := false
	s.EachGauge(func(name string, v int64) {
		if name == "cluster.shard2.depth" && v == 7 {
			found = true
		}
	})
	if !found {
		t.Fatal("nested scope did not compose prefixes")
	}
}

func TestScopeSharesRootRegistry(t *testing.T) {
	s := New()
	a := s.Scope("x")
	// Same name through the same scope is the same counter.
	a.Counter("n").Add(1)
	a.Counter("n").Add(1)
	if v := s.Counter("x.n").Value(); v != 2 {
		t.Fatalf("scoped counter = %d through root, want 2", v)
	}
	// Scoped views see the whole registry.
	names := 0
	a.EachCounter(func(string, int64) { names++ })
	if names != 1 {
		t.Fatalf("scoped EachCounter visited %d counters, want 1", names)
	}
}

func TestScopedTraceTracks(t *testing.T) {
	s := New()
	s.EnableTrace()
	s0 := s.Scope("shard0")
	tr := s0.Trace()
	tr.Track("sched", "queue-read").Span("read", 0, 10)
	if s.Trace().Len() != 1 {
		t.Fatalf("root trace has %d events, want 1", s.Trace().Len())
	}
	procs, _, _ := s.Trace().snapshot()
	if len(procs) != 1 || !strings.HasPrefix(procs[0], "shard0.") {
		t.Fatalf("trace processes = %v, want one shard0.-prefixed process", procs)
	}
}

func TestScopeNilSafety(t *testing.T) {
	var s *Sink
	sc := s.Scope("shard0")
	if sc != nil {
		t.Fatal("nil sink should scope to nil")
	}
	sc.Counter("x").Add(1) // must not panic
	sc.Gauge("y").Set(1)
	sc.Histogram("z").Observe(1)
	sc.Trace().Track("p", "l").Span("s", 0, 1)
}
