// Package telemetry is the observability layer of the simulated device
// stack: a concurrency-safe metrics registry (counters, gauges and
// simulated-time latency histograms) plus span-based tracing over
// sim.Time with a Chrome/Perfetto trace-event exporter.
//
// The design goal is that *disabled* telemetry costs nothing. A nil *Sink
// is a valid, permanently-disabled sink: every method on it — and on every
// handle it returns — is a no-op that performs no allocation, so
// instrumented code caches handles once and calls them unconditionally:
//
//	c := sink.Counter("ftl.gc.runs") // nil handle when sink is nil
//	...
//	c.Add(1)                         // free when disabled
//
// Enabled handles are safe for concurrent use: counters, gauges and
// histogram buckets are atomics, and the trace recorder serializes event
// appends behind a mutex. All timestamps are virtual (sim.Time); nothing
// in this package reads the wall clock.
package telemetry

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"parabit/internal/sim"
)

// Sink is the root registry. Create one with New, hand it to each layer's
// SetTelemetry, and export with WriteMetrics / WriteTrace. The zero value
// is not usable; a nil *Sink is (as a disabled sink).
type Sink struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	// registration order, for stable summary output
	counterOrder []string // guarded by mu
	gaugeOrder   []string // guarded by mu
	histOrder    []string // guarded by mu
	trace        *Trace   // guarded by mu
	// scope is the metric-name (and trace-process) prefix of a scoped
	// view; base points at the registry owner. Both are zero at the root.
	scope string
	base  *Sink
}

// root returns the registry owner: the sink itself, or the base of a
// scoped view.
func (s *Sink) root() *Sink {
	if s != nil && s.base != nil {
		return s.base
	}
	return s
}

// Scope returns a view of the sink whose metric names and trace processes
// are prefixed with "name." — the per-instance lanes a multi-device
// system (one sink, N shards) uses to keep each shard's counters,
// histograms and trace tracks apart. Scoped handles share the root
// registry, so one WriteMetrics / WriteTrace call exports every scope.
// Scopes nest; a nil sink scopes to nil.
func (s *Sink) Scope(name string) *Sink {
	if s == nil || name == "" {
		return s
	}
	return &Sink{scope: s.scope + name + ".", base: s.root()}
}

// New returns an enabled sink with metrics only; call EnableTrace to also
// record spans.
func New() *Sink {
	return &Sink{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// EnableTrace turns on span recording and returns the trace recorder
// (scoped like the sink). Idempotent; safe to call before any layer is
// attached.
func (s *Sink) EnableTrace() *Trace {
	if s == nil {
		return nil
	}
	r := s.root()
	r.mu.Lock()
	if r.trace == nil {
		r.trace = newTrace()
	}
	tr := r.trace
	r.mu.Unlock()
	return tr.scoped(s.scope)
}

// Trace returns the trace recorder (scoped like the sink), or nil when
// the sink is nil or tracing was never enabled. The nil result is itself
// a valid disabled recorder.
func (s *Sink) Trace() *Trace {
	if s == nil {
		return nil
	}
	r := s.root()
	r.mu.Lock()
	tr := r.trace
	r.mu.Unlock()
	return tr.scoped(s.scope)
}

// Counter returns the named counter, registering it on first use.
// Returns nil (a disabled handle) on a nil sink.
func (s *Sink) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	r := s.root()
	name = s.scope + name
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
		r.counterOrder = append(r.counterOrder, name)
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (s *Sink) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	r := s.root()
	name = s.scope + name
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
		r.gaugeOrder = append(r.gaugeOrder, name)
	}
	return g
}

// Histogram returns the named latency histogram, registering it on first
// use.
func (s *Sink) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	r := s.root()
	name = s.scope + name
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(name)
		r.hists[name] = h
		r.histOrder = append(r.histOrder, name)
	}
	return h
}

// EachCounter visits every registered counter in registration order.
// Scoped views visit the whole registry, every scope included.
func (s *Sink) EachCounter(f func(name string, value int64)) {
	if s == nil {
		return
	}
	r := s.root()
	r.mu.Lock()
	names := append([]string(nil), r.counterOrder...)
	r.mu.Unlock()
	for _, n := range names {
		r.mu.Lock()
		c := r.counters[n]
		r.mu.Unlock()
		f(n, c.Value())
	}
}

// EachGauge visits every registered gauge in registration order.
func (s *Sink) EachGauge(f func(name string, value int64)) {
	if s == nil {
		return
	}
	r := s.root()
	r.mu.Lock()
	names := append([]string(nil), r.gaugeOrder...)
	r.mu.Unlock()
	for _, n := range names {
		r.mu.Lock()
		g := r.gauges[n]
		r.mu.Unlock()
		f(n, g.Value())
	}
}

// EachHistogram visits every registered histogram in registration order.
func (s *Sink) EachHistogram(f func(name string, h *Histogram)) {
	if s == nil {
		return
	}
	r := s.root()
	r.mu.Lock()
	names := append([]string(nil), r.histOrder...)
	r.mu.Unlock()
	for _, n := range names {
		r.mu.Lock()
		h := r.hists[n]
		r.mu.Unlock()
		f(n, h)
	}
}

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter. No-op on a nil handle.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (queue depth, free blocks, ...).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the current level. No-op on a nil handle.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by delta. No-op on a nil handle.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level; 0 on a nil handle.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket layout: log-linear, histSub sub-buckets per power of
// two. Values 0..histSub-1 are exact; above that the relative quantile
// error is bounded by 1/histSub (~3 %), which is far below the modeled
// timing differences the breakdowns are meant to show.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	// Positive int64 exponents run 0..62; exponents below histSubBits
	// collapse into the exact range, so (63-histSubBits)*histSub linear
	// buckets follow the histSub exact ones.
	histBuckets = (63-histSubBits)*histSub + histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSub {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	sub := int((v >> uint(exp-histSubBits)) & (histSub - 1))
	return (exp-histSubBits)*histSub + histSub + sub
}

// bucketMid returns the midpoint of a bucket's value range.
func bucketMid(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := (idx-histSub)/histSub + histSubBits
	sub := int64((idx - histSub) % histSub)
	width := int64(1) << uint(exp-histSubBits)
	lo := (int64(histSub) + sub) * width
	return lo + width/2
}

// Histogram records simulated-time latencies and answers quantile
// queries. Recording is lock-free (atomic bucket increments); quantiles
// read a racy-but-consistent-enough snapshot, which is fine for
// reporting.
type Histogram struct {
	name    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram(name string) *Histogram {
	h := &Histogram{name: name}
	h.min.Store(int64(1)<<62 - 1)
	return h
}

// Observe records one latency. Negative durations clamp to zero. No-op on
// a nil handle.
func (h *Histogram) Observe(d sim.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.sum.Load())
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() sim.Duration {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return sim.Duration(h.min.Load())
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() sim.Duration {
	if h == nil {
		return 0
	}
	return sim.Duration(h.max.Load())
}

// Quantile returns the value at or below which the fraction q of
// observations fall, approximated to the bucket resolution. q is clamped
// to [0, 1]; an empty histogram returns 0.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			// Clamp the bucket midpoint to the recorded extremes so
			// tiny sample counts don't report values nobody observed.
			v := bucketMid(i)
			if mn := h.min.Load(); v < mn {
				v = mn
			}
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return sim.Duration(v)
		}
	}
	return sim.Duration(h.max.Load())
}

// Quantiles returns several quantiles in one bucket walk order; it is
// just a convenience over Quantile.
func (h *Histogram) Quantiles(qs ...float64) []sim.Duration {
	out := make([]sim.Duration, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
