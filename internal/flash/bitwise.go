package flash

import (
	"errors"
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/sim"
)

// ErrCellMode reports an operation invalid for the array's cell mode
// (MLC sequences on a TLC array or vice versa).
var ErrCellMode = errors.New("flash: operation not supported in this cell mode")

// applyOp computes a ParaBit operation over whole pages with word-wide
// kernels. The latch package proves per-bit equivalence between these
// kernels and the actual control sequences (see TestKernelMatchesCircuit);
// the array uses the kernels so an 8 KB page op is a few hundred machine
// ops instead of 65536 circuit simulations.
func applyOp(op latch.Op, lsb, msb []byte) []byte {
	if len(lsb) != len(msb) {
		panic(fmt.Sprintf("flash: operand pages differ in size: %d vs %d", len(lsb), len(msb)))
	}
	out := make([]byte, len(lsb))
	switch op {
	case latch.OpAnd:
		for i := range out {
			out[i] = lsb[i] & msb[i]
		}
	case latch.OpOr:
		for i := range out {
			out[i] = lsb[i] | msb[i]
		}
	case latch.OpXnor:
		for i := range out {
			out[i] = ^(lsb[i] ^ msb[i])
		}
	case latch.OpNand:
		for i := range out {
			out[i] = ^(lsb[i] & msb[i])
		}
	case latch.OpNor:
		for i := range out {
			out[i] = ^(lsb[i] | msb[i])
		}
	case latch.OpXor:
		for i := range out {
			out[i] = lsb[i] ^ msb[i]
		}
	case latch.OpNotLSB:
		for i := range out {
			out[i] = ^lsb[i]
		}
	case latch.OpNotMSB:
		for i := range out {
			out[i] = ^msb[i]
		}
	default:
		panic(fmt.Sprintf("flash: unknown op %v", op))
	}
	return out
}

// BitwiseSense performs a basic ParaBit operation on a wordline whose LSB
// page holds the first operand and MSB page the second (paper §4.1). The
// result lands in the plane's cache register; latency is the control
// sequence's SRO count times the sense latency. Read noise, if a Corruptor
// is installed, applies to the result — ParaBit results bypass ECC
// (paper §4.4.3).
func (a *Array) BitwiseSense(op latch.Op, w WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 2 {
		return SenseResult{}, fmt.Errorf("%w: MLC op %v on %d-bit cells", ErrCellMode, op, a.geo.CellBits)
	}
	if err := a.geo.CheckWordline(w); err != nil {
		return SenseResult{}, err
	}
	seq := latch.ForOp(op)
	jitter, ferr := a.checkFault(FaultSense, w.PlaneAddr, w.Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(w.PlaneAddr)
	_, end := pl.sense.ReserveLabeled(at, sim.Duration(seq.SROs())*a.timing.SenseSRO+jitter, "bitwise")
	out := applyOp(op, a.pageBits(w, LSBPage), a.pageBits(w, MSBPage))
	exposure := a.noteReads(w, seq.SROs())
	res := SenseResult{Data: out, Ready: end}
	if a.noise != nil {
		res.FlipCount = a.corrupt(out, a.peCycles(w), seq.SROs(), exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(seq.SROs())
	a.stats.BitwiseOps++
	return res, nil
}

// Bitwise performs BitwiseSense and transfers the result to the
// controller, returning the data and the time the controller holds it.
func (a *Array) Bitwise(op latch.Op, w WordlineAddr, at sim.Time) ([]byte, sim.Time, error) {
	res, err := a.BitwiseSense(op, w, at)
	if err != nil {
		return nil, 0, err
	}
	done := a.transferOut(w.Channel, res.Ready, len(res.Data))
	return res.Data, done, nil
}

// BitwiseSenseLocFree performs a location-free ParaBit operation
// (paper §4.2): the first operand is the MSB page of wordline m, the
// second the LSB page of wordline n. Both wordlines must share a plane —
// they use that plane's latching circuits via CACHE READ RANDOM — but may
// sit in different blocks. Latency is the location-free sequence's SRO
// count; XOR-family ops require the added inverter hardware.
func (a *Array) BitwiseSenseLocFree(op latch.Op, m, n WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 2 {
		return SenseResult{}, fmt.Errorf("%w: MLC op %v on %d-bit cells", ErrCellMode, op, a.geo.CellBits)
	}
	if err := a.geo.CheckWordline(m); err != nil {
		return SenseResult{}, err
	}
	if err := a.geo.CheckWordline(n); err != nil {
		return SenseResult{}, err
	}
	if m.PlaneAddr != n.PlaneAddr {
		return SenseResult{}, fmt.Errorf("%w: %v vs %v", ErrPlaneMismatch, m.PlaneAddr, n.PlaneAddr)
	}
	seq := latch.ForOpLocFree(op)
	jitter, ferr := a.checkFault(FaultSense, m.PlaneAddr, m.Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(m.PlaneAddr)
	_, end := pl.sense.ReserveLabeled(at, sim.Duration(seq.SROs())*a.timing.SenseSRO+jitter, "bitwise")
	// Operand order per §4.2: M from the MSB page, N from the LSB page.
	msb := a.pageBits(m, MSBPage)
	lsb := a.pageBits(n, LSBPage)
	out := applyOp(op, lsb, msb)
	// Disturb attribution: the MSB operand is read with 2-SRO MSB reads
	// (twice for the two-phase XOR family), the LSB operand with single
	// senses.
	mShare := 2
	if seq.SROs() == 6 {
		mShare = 4
	}
	expM := a.noteReads(m, mShare)
	expN := a.noteReads(n, seq.SROs()-mShare)
	exposure := expM
	if expN > exposure {
		exposure = expN
	}
	res := SenseResult{Data: out, Ready: end}
	if a.noise != nil {
		pe := a.peCycles(m)
		if p2 := a.peCycles(n); p2 > pe {
			pe = p2
		}
		res.FlipCount = a.corrupt(out, pe, seq.SROs(), exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(seq.SROs())
	a.stats.BitwiseOps++
	return res, nil
}

// BitwiseSenseLocFreeLSB is the location-free operation for the all-LSB
// data layout (§5.5): both operands are LSB pages of aligned wordlines on
// one plane — M on wordline m, N on wordline n. Costs the shorter LSB
// sequence's SRO count (2 for AND/OR/NAND/NOR, 4 for XOR/XNOR).
func (a *Array) BitwiseSenseLocFreeLSB(op latch.Op, m, n WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 2 {
		return SenseResult{}, fmt.Errorf("%w: MLC op %v on %d-bit cells", ErrCellMode, op, a.geo.CellBits)
	}
	if err := a.geo.CheckWordline(m); err != nil {
		return SenseResult{}, err
	}
	if err := a.geo.CheckWordline(n); err != nil {
		return SenseResult{}, err
	}
	if m.PlaneAddr != n.PlaneAddr {
		return SenseResult{}, fmt.Errorf("%w: %v vs %v", ErrPlaneMismatch, m.PlaneAddr, n.PlaneAddr)
	}
	seq := latch.ForOpLocFreeLSB(op)
	jitter, ferr := a.checkFault(FaultSense, m.PlaneAddr, m.Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(m.PlaneAddr)
	_, end := pl.sense.ReserveLabeled(at, sim.Duration(seq.SROs())*a.timing.SenseSRO+jitter, "bitwise")
	mBits := a.pageBits(m, LSBPage)
	nBits := a.pageBits(n, LSBPage)
	// Binary ops are symmetric; the NOT pair maps to inverting the first
	// (wordline m) or second (wordline n) operand, matching the LSB
	// location-free sequences.
	var out []byte
	switch op {
	case latch.OpNotLSB:
		out = applyOp(latch.OpNotLSB, mBits, mBits)
	case latch.OpNotMSB:
		out = applyOp(latch.OpNotLSB, nBits, nBits)
	default:
		out = applyOp(op, nBits, mBits)
	}
	// LSB-layout senses split evenly; the NOT variants touch only their
	// own wordline.
	mShare := seq.SROs() - seq.SROs()/2
	switch op {
	case latch.OpNotLSB:
		mShare = seq.SROs()
	case latch.OpNotMSB:
		mShare = 0
	}
	expM := a.noteReads(m, mShare)
	expN := a.noteReads(n, seq.SROs()-mShare)
	exposure := expM
	if expN > exposure {
		exposure = expN
	}
	res := SenseResult{Data: out, Ready: end}
	if a.noise != nil {
		pe := a.peCycles(m)
		if p2 := a.peCycles(n); p2 > pe {
			pe = p2
		}
		res.FlipCount = a.corrupt(out, pe, seq.SROs(), exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(seq.SROs())
	a.stats.BitwiseOps++
	return res, nil
}

// BitwiseLocFreeLSB performs BitwiseSenseLocFreeLSB and transfers the
// result to the controller.
func (a *Array) BitwiseLocFreeLSB(op latch.Op, m, n WordlineAddr, at sim.Time) ([]byte, sim.Time, error) {
	res, err := a.BitwiseSenseLocFreeLSB(op, m, n, at)
	if err != nil {
		return nil, 0, err
	}
	done := a.transferOut(m.Channel, res.Ready, len(res.Data))
	return res.Data, done, nil
}

// BitwiseLatencyLocFreeLSB returns the array-side latency of an all-LSB
// location-free op.
func (t Timing) BitwiseLatencyLocFreeLSB(op latch.Op) sim.Duration {
	return sim.Duration(latch.ForOpLocFreeLSB(op).SROs()) * t.SenseSRO
}

// BitwiseLocFree performs BitwiseSenseLocFree and transfers the result to
// the controller.
func (a *Array) BitwiseLocFree(op latch.Op, m, n WordlineAddr, at sim.Time) ([]byte, sim.Time, error) {
	res, err := a.BitwiseSenseLocFree(op, m, n, at)
	if err != nil {
		return nil, 0, err
	}
	done := a.transferOut(m.Channel, res.Ready, len(res.Data))
	return res.Data, done, nil
}

// ChainCost describes the array-side cost of a location-free k-operand
// reduction (§4.2). For AND and OR the running result stays in the
// latches (A and B respectively), so each additional operand costs one
// more sense. The XOR family cannot accumulate in place: after each step
// the partial result goes to the controller buffer and is reloaded (the
// result and its complement) before the next operand's two-phase
// sensing — two register loads plus two senses per additional operand.
type ChainCost struct {
	SROs          int // total sensing operations
	RegisterLoads int // controller-buffer reloads (page transfers in)
}

// ChainCostLSB returns the cost of reducing k all-LSB aligned operands.
func ChainCostLSB(op latch.Op, k int) (ChainCost, error) {
	if k < 2 {
		return ChainCost{}, fmt.Errorf("flash: chain of %d operands", k)
	}
	base := latch.ForOpLocFreeLSB(op).SROs()
	switch op {
	case latch.OpAnd, latch.OpOr:
		// One sense per operand: the first two cost `base` (2), each
		// additional operand gates the latch with one more sense.
		return ChainCost{SROs: base + (k - 2)}, nil
	case latch.OpNand, latch.OpNor:
		// Accumulate as AND/OR, invert on the final transfer.
		return ChainCost{SROs: base + (k - 2)}, nil
	case latch.OpXor, latch.OpXnor:
		// Buffer round-trip per extra operand: reload result + inverted
		// result, then the two-phase sensing of the new operand.
		return ChainCost{SROs: base + 2*(k-2), RegisterLoads: 2 * (k - 2)}, nil
	default:
		return ChainCost{}, fmt.Errorf("flash: op %v cannot chain", op)
	}
}

// BitwiseChainLSB reduces k aligned LSB-resident operands on one plane
// with a single chained location-free operation. All wordlines must share
// a plane. The result lands in the plane's cache register.
func (a *Array) BitwiseChainLSB(op latch.Op, wls []WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 2 {
		return SenseResult{}, fmt.Errorf("%w: MLC chain on %d-bit cells", ErrCellMode, a.geo.CellBits)
	}
	if len(wls) < 2 {
		return SenseResult{}, fmt.Errorf("flash: chain of %d operands", len(wls))
	}
	cost, err := ChainCostLSB(op, len(wls))
	if err != nil {
		return SenseResult{}, err
	}
	plane := wls[0].PlaneAddr
	maxPE := 0
	for _, w := range wls {
		if err := a.geo.CheckWordline(w); err != nil {
			return SenseResult{}, err
		}
		if w.PlaneAddr != plane {
			return SenseResult{}, fmt.Errorf("%w: %v vs %v", ErrPlaneMismatch, plane, w.PlaneAddr)
		}
		if pe := a.peCycles(w); pe > maxPE {
			maxPE = pe
		}
	}
	jitter, ferr := a.checkFault(FaultSense, plane, wls[0].Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(plane)
	dur := sim.Duration(cost.SROs)*a.timing.SenseSRO + jitter
	// Register reloads cross the channel bus into the plane register.
	for i := 0; i < cost.RegisterLoads; i++ {
		dur += a.timing.Transfer(a.geo.PageSize)
		a.stats.BytesIn += int64(a.geo.PageSize)
	}
	_, end := pl.sense.ReserveLabeled(at, dur, "chain")
	// Fold the data.
	acc := a.pageBits(wls[0], LSBPage)
	for _, w := range wls[1:] {
		next := a.pageBits(w, LSBPage)
		switch op {
		case latch.OpAnd, latch.OpNand:
			acc = applyOp(latch.OpAnd, acc, next)
		case latch.OpOr, latch.OpNor:
			acc = applyOp(latch.OpOr, acc, next)
		case latch.OpXor, latch.OpXnor:
			acc = applyOp(latch.OpXor, acc, next)
		}
	}
	switch op {
	case latch.OpNand, latch.OpNor, latch.OpXnor:
		acc = applyOp(latch.OpNotLSB, acc, acc)
	}
	exposure := 0
	for _, w := range wls {
		if e := a.noteReads(w, 1); e > exposure {
			exposure = e
		}
	}
	res := SenseResult{Data: acc, Ready: end}
	if a.noise != nil {
		res.FlipCount = a.corrupt(acc, maxPE, cost.SROs, exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(cost.SROs)
	a.stats.BitwiseOps++
	return res, nil
}

// BitwiseLatency returns the array-side latency of a basic ParaBit op.
func (t Timing) BitwiseLatency(op latch.Op) sim.Duration {
	return sim.Duration(latch.ForOp(op).SROs()) * t.SenseSRO
}

// BitwiseLatencyLocFree returns the array-side latency of a location-free
// ParaBit op.
func (t Timing) BitwiseLatencyLocFree(op latch.Op) sim.Duration {
	return sim.Duration(latch.ForOpLocFree(op).SROs()) * t.SenseSRO
}

// BitwiseSenseTLC performs a three-operand ParaBit operation on a TLC
// wordline whose LSB, CSB and TOP pages hold the three operands
// (paper §4.4.1 — AND3 is a single sense at VREAD1 detecting state E).
// Only valid on TLC arrays.
func (a *Array) BitwiseSenseTLC(op latch.TLCOp3, w WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 3 {
		return SenseResult{}, fmt.Errorf("%w: TLC op %v on %d-bit cells", ErrCellMode, op, a.geo.CellBits)
	}
	if err := a.geo.CheckWordline(w); err != nil {
		return SenseResult{}, err
	}
	seq := latch.TLCForOp(op)
	jitter, ferr := a.checkFault(FaultSense, w.PlaneAddr, w.Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(w.PlaneAddr)
	_, end := pl.sense.ReserveLabeled(at, sim.Duration(seq.SROs())*a.timing.SenseSRO+jitter, "bitwise")
	lsb := a.pageBits(w, LSBPage)
	csb := a.pageBits(w, MSBPage) // kind 1 = the TLC centre page
	top := a.pageBits(w, TopPage)
	out := make([]byte, a.geo.PageSize)
	for i := range out {
		var v byte
		for b := 0; b < 8; b++ {
			if op.Eval(lsb[i]&(1<<b) != 0, csb[i]&(1<<b) != 0, top[i]&(1<<b) != 0) {
				v |= 1 << b
			}
		}
		out[i] = v
	}
	exposure := a.noteReads(w, seq.SROs())
	res := SenseResult{Data: out, Ready: end}
	if a.noise != nil {
		res.FlipCount = a.corrupt(out, a.peCycles(w), seq.SROs(), exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(seq.SROs())
	a.stats.BitwiseOps++
	return res, nil
}

// BitwiseTLC performs BitwiseSenseTLC and transfers the result out.
func (a *Array) BitwiseTLC(op latch.TLCOp3, w WordlineAddr, at sim.Time) ([]byte, sim.Time, error) {
	res, err := a.BitwiseSenseTLC(op, w, at)
	if err != nil {
		return nil, 0, err
	}
	done := a.transferOut(w.Channel, res.Ready, len(res.Data))
	return res.Data, done, nil
}
