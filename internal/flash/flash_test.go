package flash

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"parabit/internal/latch"
	"parabit/internal/sim"
)

func testArray() *Array { return NewArray(Small(), DefaultTiming()) }

func fillPattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func TestGeometryDefaults(t *testing.T) {
	g := Default()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Chips() != 128 {
		t.Errorf("chips = %d, want 128 (paper §5.1)", g.Chips())
	}
	if g.Planes() != 1024 {
		t.Errorf("planes = %d, want 1024", g.Planes())
	}
	if got := g.WaveBytes(); got != 8<<20 {
		t.Errorf("wave bytes = %d, want 8 MiB (two 8 MB operands per wave)", got)
	}
	if got := g.CapacityBytes(); got != 512<<30 {
		t.Errorf("capacity = %d, want 512 GiB", got)
	}
}

func TestGeometryValidateRejectsZeros(t *testing.T) {
	g := Default()
	g.Channels = 0
	if g.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
	g = Default()
	g.PageSize = -1
	if g.Validate() == nil {
		t.Fatal("negative page size accepted")
	}
}

func TestPlaneIndexRoundTrip(t *testing.T) {
	g := Small()
	seen := map[int]bool{}
	for ch := 0; ch < g.Channels; ch++ {
		for c := 0; c < g.ChipsPerChannel; c++ {
			for d := 0; d < g.DiesPerChip; d++ {
				for p := 0; p < g.PlanesPerDie; p++ {
					addr := PlaneAddr{ch, c, d, p}
					idx := g.PlaneIndex(addr)
					if seen[idx] {
						t.Fatalf("duplicate plane index %d", idx)
					}
					seen[idx] = true
					if g.PlaneAt(idx) != addr {
						t.Fatalf("PlaneAt(PlaneIndex(%v)) = %v", addr, g.PlaneAt(idx))
					}
				}
			}
		}
	}
	if len(seen) != g.Planes() {
		t.Fatalf("enumerated %d planes, want %d", len(seen), g.Planes())
	}
}

func TestPPNRoundTrip(t *testing.T) {
	g := Small()
	f := func(rawPlane, rawBlock, rawWL uint16, kindRaw bool) bool {
		addr := PageAddr{
			WordlineAddr: WordlineAddr{
				PlaneAddr: g.PlaneAt(int(rawPlane) % g.Planes()),
				Block:     int(rawBlock) % g.BlocksPerPlane,
				WL:        int(rawWL) % g.WordlinesPerBlock,
			},
			Kind: LSBPage,
		}
		if kindRaw {
			addr.Kind = MSBPage
		}
		return g.PageAt(g.PPN(addr)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestErasedPageReadsAllOnes(t *testing.T) {
	a := testArray()
	addr := PageAddr{WordlineAddr: WordlineAddr{Block: 3, WL: 5}, Kind: LSBPage}
	data, done, err := a.Read(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0xFF {
			t.Fatalf("erased byte %d = %02x, want ff", i, b)
		}
	}
	if done <= 0 {
		t.Fatal("read completed at t<=0")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := testArray()
	wl := WordlineAddr{Block: 1, WL: 0}
	lsbData := fillPattern(a.Geometry().PageSize, 0xA5)
	msbData := fillPattern(a.Geometry().PageSize, 0x3C)
	if _, err := a.Program(PageAddr{wl, LSBPage}, lsbData, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, msbData, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := a.Read(PageAddr{wl, LSBPage}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != lsbData[i] {
			t.Fatalf("LSB byte %d corrupted", i)
		}
	}
	got, _, _ = a.Read(PageAddr{wl, MSBPage}, 0)
	for i := range got {
		if got[i] != msbData[i] {
			t.Fatalf("MSB byte %d corrupted", i)
		}
	}
}

func TestProgramCopiesData(t *testing.T) {
	a := testArray()
	wl := WordlineAddr{}
	data := fillPattern(a.Geometry().PageSize, 1)
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	data[0] = ^data[0] // mutate caller's buffer
	got, _, _ := a.Read(PageAddr{wl, LSBPage}, 0)
	if got[0] == data[0] {
		t.Fatal("array aliased the caller's buffer")
	}
}

func TestMLCProgramOrder(t *testing.T) {
	a := testArray()
	wl := WordlineAddr{Block: 2}
	page := make([]byte, a.Geometry().PageSize)
	if _, err := a.Program(PageAddr{wl, MSBPage}, page, 0); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("MSB-first program: err = %v, want ErrProgramOrder", err)
	}
	if _, err := a.Program(PageAddr{wl, LSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, LSBPage}, page, 0); !errors.Is(err, ErrNotErased) {
		t.Fatalf("double LSB program: err = %v, want ErrNotErased", err)
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, page, 0); !errors.Is(err, ErrNotErased) {
		t.Fatalf("double MSB program: err = %v, want ErrNotErased", err)
	}
}

func TestProgramWrongSize(t *testing.T) {
	a := testArray()
	if _, err := a.Program(PageAddr{}, []byte{1, 2, 3}, 0); !errors.Is(err, ErrPageSize) {
		t.Fatalf("err = %v, want ErrPageSize", err)
	}
}

func TestEraseResetsAndCounts(t *testing.T) {
	a := testArray()
	wl := WordlineAddr{Block: 4}
	page := fillPattern(a.Geometry().PageSize, 9)
	if _, err := a.Program(PageAddr{wl, LSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Erase(wl.PlaneAddr, wl.Block, 0); err != nil {
		t.Fatal(err)
	}
	if a.EraseCount(wl.PlaneAddr, wl.Block) != 1 {
		t.Fatalf("erase count = %d, want 1", a.EraseCount(wl.PlaneAddr, wl.Block))
	}
	got, _, _ := a.Read(PageAddr{wl, LSBPage}, 0)
	if got[0] != 0xFF {
		t.Fatal("erase did not reset data")
	}
	// Program again after erase must succeed.
	if _, err := a.Program(PageAddr{wl, LSBPage}, page, 0); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
}

func TestBadAddressesRejected(t *testing.T) {
	a := testArray()
	bad := PageAddr{WordlineAddr: WordlineAddr{PlaneAddr: PlaneAddr{Channel: 99}}}
	if _, _, err := a.Read(bad, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("read: err = %v, want ErrBadAddress", err)
	}
	if _, err := a.Program(bad, make([]byte, a.Geometry().PageSize), 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("program: err = %v, want ErrBadAddress", err)
	}
	if _, err := a.Erase(PlaneAddr{Channel: 99}, 0, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("erase: err = %v, want ErrBadAddress", err)
	}
	if _, err := a.Erase(PlaneAddr{}, -1, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("erase bad block: err = %v, want ErrBadAddress", err)
	}
}

func TestReadTiming(t *testing.T) {
	a := testArray()
	tm := a.Timing()
	// LSB read: one SRO then a channel transfer.
	_, done, err := a.Read(PageAddr{WordlineAddr{}, LSBPage}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(0).Add(tm.SenseSRO).Add(tm.Transfer(a.Geometry().PageSize))
	if done != want {
		t.Fatalf("LSB read done at %v, want %v", done, want)
	}
	// MSB read on a fresh plane: two SROs.
	a.ResetTiming()
	_, done, _ = a.Read(PageAddr{WordlineAddr{}, MSBPage}, 0)
	want = sim.Time(0).Add(2 * tm.SenseSRO).Add(tm.Transfer(a.Geometry().PageSize))
	if done != want {
		t.Fatalf("MSB read done at %v, want %v", done, want)
	}
}

func TestPlaneSerializationAndParallelism(t *testing.T) {
	a := testArray()
	tm := a.Timing()
	same := PageAddr{WordlineAddr{}, LSBPage}
	// Two reads of the same plane serialize on the sense path.
	r1, _ := a.ReadSense(same, 0)
	r2, _ := a.ReadSense(same, 0)
	if r2.Ready != r1.Ready.Add(tm.SenseSRO) {
		t.Fatalf("same-plane reads did not serialize: %v then %v", r1.Ready, r2.Ready)
	}
	// A read of a different plane on a different channel is independent.
	other := PageAddr{WordlineAddr{PlaneAddr: PlaneAddr{Channel: 1}}, LSBPage}
	r3, _ := a.ReadSense(other, 0)
	if r3.Ready != sim.Time(0).Add(tm.SenseSRO) {
		t.Fatalf("cross-plane read not parallel: ready at %v", r3.Ready)
	}
}

func TestChannelSharedByPlanesOfSameChannel(t *testing.T) {
	a := testArray()
	tm := a.Timing()
	g := a.Geometry()
	// Two planes on channel 0 sense in parallel but serialize transfers.
	p0 := PageAddr{WordlineAddr{PlaneAddr: PlaneAddr{Plane: 0}}, LSBPage}
	p1 := PageAddr{WordlineAddr{PlaneAddr: PlaneAddr{Plane: 1}}, LSBPage}
	_, d0, _ := a.Read(p0, 0)
	_, d1, _ := a.Read(p1, 0)
	tx := tm.Transfer(g.PageSize)
	if d0 != sim.Time(0).Add(tm.SenseSRO).Add(tx) {
		t.Fatalf("first read done %v", d0)
	}
	if d1 != d0.Add(tx) {
		t.Fatalf("second transfer did not queue on channel: %v vs first %v", d1, d0)
	}
}

// writeOperands programs x into the LSB page and y into the MSB page of a
// wordline, as ParaBit's co-located layout requires.
func writeOperands(t *testing.T, a *Array, wl WordlineAddr, x, y []byte) {
	t.Helper()
	if _, err := a.Program(PageAddr{wl, LSBPage}, x, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, y, 0); err != nil {
		t.Fatal(err)
	}
}

func TestBitwiseAllOpsCorrect(t *testing.T) {
	a := testArray()
	n := a.Geometry().PageSize
	x, y := fillPattern(n, 0x5A), fillPattern(n, 0xC3)
	wl := WordlineAddr{Block: 7, WL: 3}
	writeOperands(t, a, wl, x, y)
	for _, op := range latch.Ops {
		got, _, err := a.Bitwise(op, wl, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for i := range got {
			for b := 0; b < 8; b++ {
				lsb := x[i]&(1<<b) != 0
				msb := y[i]&(1<<b) != 0
				want := op.Eval(lsb, msb)
				if (got[i]&(1<<b) != 0) != want {
					t.Fatalf("%v bit %d.%d: got %v, want %v", op, i, b, !want, want)
				}
			}
		}
	}
}

func TestBitwiseLatencyMatchesSROs(t *testing.T) {
	tm := DefaultTiming()
	// §5.2: XNOR and XOR take 100 µs; AND one sense (25 µs).
	if got := tm.BitwiseLatency(latch.OpXor); got != 100*sim.Microsecond {
		t.Errorf("XOR latency %v, want 100µs", got)
	}
	if got := tm.BitwiseLatency(latch.OpXnor); got != 100*sim.Microsecond {
		t.Errorf("XNOR latency %v, want 100µs", got)
	}
	if got := tm.BitwiseLatency(latch.OpAnd); got != 25*sim.Microsecond {
		t.Errorf("AND latency %v, want 25µs", got)
	}
	if got := tm.BitwiseLatencyLocFree(latch.OpAnd); got != 75*sim.Microsecond {
		t.Errorf("locfree AND latency %v, want 75µs", got)
	}
	a := testArray()
	wl := WordlineAddr{}
	res, err := a.BitwiseSense(latch.OpXor, wl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ready != sim.Time(100*sim.Microsecond) {
		t.Errorf("XOR sense ready at %v, want 100µs", res.Ready)
	}
}

func TestBitwiseLocFree(t *testing.T) {
	a := testArray()
	n := a.Geometry().PageSize
	mData := fillPattern(n, 0x11) // second operand M, stored in MSB page
	nData := fillPattern(n, 0xEE) // first operand N, stored in LSB page
	filler := make([]byte, n)
	// Operand M on wordline (blk 0, wl 0) MSB page; operand N on an
	// aligned wordline in a *different block*, LSB page.
	wlM := WordlineAddr{Block: 0, WL: 0}
	wlN := WordlineAddr{Block: 9, WL: 4}
	writeOperands(t, a, wlM, filler, mData)
	if _, err := a.Program(PageAddr{wlN, LSBPage}, nData, 0); err != nil {
		t.Fatal(err)
	}
	for _, op := range latch.BinaryOps {
		got, _, err := a.BitwiseLocFree(op, wlM, wlN, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for i := range got {
			for b := 0; b < 8; b++ {
				lsb := nData[i]&(1<<b) != 0
				msb := mData[i]&(1<<b) != 0
				want := op.Eval(lsb, msb)
				if (got[i]&(1<<b) != 0) != want {
					t.Fatalf("locfree %v bit %d.%d wrong", op, i, b)
				}
			}
		}
	}
}

func TestLocFreeRejectsCrossPlane(t *testing.T) {
	a := testArray()
	m := WordlineAddr{}
	n := WordlineAddr{PlaneAddr: PlaneAddr{Plane: 1}}
	if _, _, err := a.BitwiseLocFree(latch.OpAnd, m, n, 0); !errors.Is(err, ErrPlaneMismatch) {
		t.Fatalf("err = %v, want ErrPlaneMismatch", err)
	}
}

// countingCorruptor flips the first bit of every page and counts calls.
type countingCorruptor struct {
	calls   int
	lastPE  int
	lastSRO int
}

func (c *countingCorruptor) Corrupt(data []byte, pe, sros int) int {
	c.calls++
	c.lastPE = pe
	c.lastSRO = sros
	data[0] ^= 1
	return 1
}

func TestCorruptorHookApplied(t *testing.T) {
	a := testArray()
	cc := &countingCorruptor{}
	a.SetCorruptor(cc)
	wl := WordlineAddr{Block: 5}
	// Give the block some P/E history.
	if _, err := a.Erase(wl.PlaneAddr, wl.Block, 0); err != nil {
		t.Fatal(err)
	}
	res, err := a.BitwiseSense(latch.OpXor, wl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cc.calls != 1 || res.FlipCount != 1 {
		t.Fatalf("corruptor calls=%d flips=%d", cc.calls, res.FlipCount)
	}
	if cc.lastPE != 1 {
		t.Errorf("corruptor saw PE=%d, want 1", cc.lastPE)
	}
	if cc.lastSRO != 4 {
		t.Errorf("corruptor saw sros=%d, want 4 (XOR)", cc.lastSRO)
	}
	if a.Stats().InjectedFlips != 1 {
		t.Errorf("stats flips = %d", a.Stats().InjectedFlips)
	}
	// Baseline reads stay ideal (ECC-protected): no corruptor call.
	if _, _, err := a.Read(PageAddr{wl, LSBPage}, 0); err != nil {
		t.Fatal(err)
	}
	if cc.calls != 1 {
		t.Error("baseline read went through the corruptor")
	}
}

// TestKernelMatchesCircuit is the bridge between the fast word-wide
// kernels used on page data and the actual latching-circuit sequences:
// for random operand bytes and every op, each result bit must equal the
// circuit's OUT after running the real control sequence on that bit's cell.
func TestKernelMatchesCircuit(t *testing.T) {
	f := func(x, y byte, opIdx uint8) bool {
		op := latch.Ops[int(opIdx)%len(latch.Ops)]
		out := applyOp(op, []byte{x}, []byte{y})[0]
		for b := 0; b < 8; b++ {
			cell := latch.FromBits(x&(1<<b) != 0, y&(1<<b) != 0)
			c := latch.NewCircuit(latch.CellSensor{cell})
			if c.Run(latch.ForOp(op)) != (out&(1<<b) != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Same bridge for the location-free sequences.
func TestKernelMatchesLocFreeCircuit(t *testing.T) {
	f := func(nByte, mByte byte, opIdx uint8) bool {
		op := latch.BinaryOps[int(opIdx)%len(latch.BinaryOps)]
		out := applyOp(op, []byte{nByte}, []byte{mByte})[0]
		for b := 0; b < 8; b++ {
			n := nByte&(1<<b) != 0
			m := mByte&(1<<b) != 0
			// Cell 0 holds M in its MSB; cell 1 holds N in its LSB.
			cells := latch.CellSensor{latch.FromBits(false, m), latch.FromBits(n, false)}
			c := latch.NewCircuit(cells)
			if c.Run(latch.ForOpLocFree(op)) != (out&(1<<b) != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := testArray()
	page := make([]byte, a.Geometry().PageSize)
	wl := WordlineAddr{}
	a.Program(PageAddr{wl, LSBPage}, page, 0)
	a.Program(PageAddr{wl, MSBPage}, page, 0)
	a.Read(PageAddr{wl, LSBPage}, 0)
	a.Bitwise(latch.OpAnd, wl, 0)
	a.Erase(PlaneAddr{Channel: 1}, 0, 0)
	s := a.Stats()
	if s.Programs != 2 || s.Erases != 1 || s.BitwiseOps != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SROs != 2 { // 1 for the LSB read + 1 for AND
		t.Fatalf("SROs = %d, want 2", s.SROs)
	}
	if s.BytesIn != int64(2*a.Geometry().PageSize) || s.BytesOut != int64(2*a.Geometry().PageSize) {
		t.Fatalf("bytes in/out = %d/%d", s.BytesIn, s.BytesOut)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.Programs != 4 {
		t.Fatal("Stats.Add wrong")
	}
}

func TestDrainTimeAndReset(t *testing.T) {
	a := testArray()
	a.ReadSense(PageAddr{WordlineAddr{}, MSBPage}, 0)
	if a.DrainTime() != sim.Time(50*sim.Microsecond) {
		t.Fatalf("drain = %v", a.DrainTime())
	}
	a.ResetTiming()
	if a.DrainTime() != 0 {
		t.Fatal("reset did not clear occupancy")
	}
}

func TestDefaultGeometryConstructible(t *testing.T) {
	// The paper-scale 512 GB geometry must be constructible in memory
	// (lazy page storage) and usable for timing-only operations.
	a := NewArray(Default(), DefaultTiming())
	res, err := a.BitwiseSense(latch.OpAnd, WordlineAddr{Block: 100, WL: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ready != sim.Time(25*sim.Microsecond) {
		t.Fatalf("ready at %v", res.Ready)
	}
	if len(res.Data) != 8192 {
		t.Fatalf("page size %d", len(res.Data))
	}
}

func BenchmarkBitwisePage8KB(b *testing.B) {
	a := NewArray(Default(), DefaultTiming())
	wl := WordlineAddr{}
	page := make([]byte, a.Geometry().PageSize)
	rand.New(rand.NewSource(1)).Read(page)
	a.Program(PageAddr{wl, LSBPage}, page, 0)
	a.Program(PageAddr{wl, MSBPage}, page, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.BitwiseSense(latch.OpXor, wl, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBitwiseLocFreeLSB(t *testing.T) {
	a := testArray()
	n := a.Geometry().PageSize
	mData := fillPattern(n, 0x0F)
	nData := fillPattern(n, 0x99)
	wlM := WordlineAddr{Block: 2, WL: 1}
	wlN := WordlineAddr{Block: 6, WL: 9}
	if _, err := a.Program(PageAddr{wlM, LSBPage}, mData, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wlN, LSBPage}, nData, 0); err != nil {
		t.Fatal(err)
	}
	for _, op := range latch.BinaryOps {
		got, _, err := a.BitwiseLocFreeLSB(op, wlM, wlN, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for i := range got {
			for b := 0; b < 8; b++ {
				m := mData[i]&(1<<b) != 0
				nn := nData[i]&(1<<b) != 0
				if (got[i]&(1<<b) != 0) != op.Eval(nn, m) {
					t.Fatalf("lsb locfree %v bit %d.%d wrong", op, i, b)
				}
			}
		}
	}
	// NOT variants: NotLSB inverts M, NotMSB inverts N.
	got, _, _ := a.BitwiseLocFreeLSB(latch.OpNotLSB, wlM, wlN, 0)
	if got[0] != ^mData[0] {
		t.Fatal("NotLSB (first operand) wrong")
	}
	got, _, _ = a.BitwiseLocFreeLSB(latch.OpNotMSB, wlM, wlN, 0)
	if got[0] != ^nData[0] {
		t.Fatal("NotMSB (second operand) wrong")
	}
}

func TestLocFreeLSBTiming(t *testing.T) {
	tm := DefaultTiming()
	if got := tm.BitwiseLatencyLocFreeLSB(latch.OpAnd); got != 50*sim.Microsecond {
		t.Errorf("LSB locfree AND = %v, want 50µs (2 SROs)", got)
	}
	if got := tm.BitwiseLatencyLocFreeLSB(latch.OpXor); got != 100*sim.Microsecond {
		t.Errorf("LSB locfree XOR = %v, want 100µs (4 SROs)", got)
	}
}

// Bridge: LSB location-free kernels equal the circuit per bit.
func TestKernelMatchesLocFreeLSBCircuit(t *testing.T) {
	f := func(mByte, nByte byte, opIdx uint8) bool {
		op := latch.BinaryOps[int(opIdx)%len(latch.BinaryOps)]
		out := applyOp(op, []byte{nByte}, []byte{mByte})[0]
		for b := 0; b < 8; b++ {
			m := mByte&(1<<b) != 0
			nn := nByte&(1<<b) != 0
			cells := latch.CellSensor{latch.FromBits(m, false), latch.FromBits(nn, false)}
			c := latch.NewCircuit(cells)
			if c.Run(latch.ForOpLocFreeLSB(op)) != (out&(1<<b) != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheReadPipelines(t *testing.T) {
	// With cache read, successive reads of the same plane pipeline: the
	// second sense starts as soon as the first finishes, while the first
	// transfer drains concurrently. Without it, each read's transfer
	// blocks the next sense.
	geo := Small()
	geo.PageSize = 8192 // make transfers significant (≈20.7µs)
	read4 := func(noCache bool) sim.Time {
		tm := DefaultTiming()
		tm.NoCacheRead = noCache
		a := NewArray(geo, tm)
		addr := PageAddr{WordlineAddr{}, LSBPage}
		var last sim.Time
		for i := 0; i < 4; i++ {
			_, done, err := a.Read(addr, 0)
			if err != nil {
				t.Fatal(err)
			}
			last = done
		}
		return last
	}
	withCache := read4(false)
	withoutCache := read4(true)
	if withoutCache <= withCache {
		t.Fatalf("no-cache (%v) not slower than cache read (%v)", withoutCache, withCache)
	}
	tm := DefaultTiming()
	// Cache read: 4 senses back to back + one final transfer.
	wantCache := sim.Time(4*tm.SenseSRO + tm.Transfer(geo.PageSize))
	if withCache != wantCache {
		t.Errorf("cache-read burst done at %v, want %v", withCache, wantCache)
	}
	// No cache read: each read serializes sense+transfer.
	wantNo := sim.Time(4 * (tm.SenseSRO + tm.Transfer(geo.PageSize)))
	if withoutCache != wantNo {
		t.Errorf("no-cache burst done at %v, want %v", withoutCache, wantNo)
	}
}
