package flash

import (
	"errors"
	"fmt"

	"parabit/internal/sim"
)

// FaultOp identifies which flash primitive a fault injector is consulted
// about. Sensing covers baseline reads and every ParaBit variant alike:
// all of them occupy the plane's sense path.
type FaultOp uint8

// Fault injection points.
const (
	FaultSense FaultOp = iota
	FaultProgram
	FaultErase
)

var faultOpNames = [...]string{"sense", "program", "erase"}

func (o FaultOp) String() string {
	if int(o) < len(faultOpNames) {
		return faultOpNames[o]
	}
	return "unknown"
}

// FaultKind classifies an injected fault. The FTL and scheduler key their
// recovery policy off this taxonomy: transient plane faults are retried
// in simulated time, program/erase failures retire the block, and dead
// planes surface as permanent errors.
type FaultKind uint8

// Injected fault classes.
const (
	// FaultPlaneTransient is a temporarily unresponsive plane (power
	// glitch, die-internal maintenance): the same operation succeeds when
	// reissued after the window passes.
	FaultPlaneTransient FaultKind = iota
	// FaultPlaneDead is a permanently failed plane.
	FaultPlaneDead
	// FaultProgramFail is a program-status failure: the page did not
	// program; the block must be retired per the datasheet contract.
	FaultProgramFail
	// FaultEraseFail is an erase-status failure; the block is worn out.
	FaultEraseFail
	// FaultStuckBlock is a block that fails every program and erase — a
	// manufacturing-grade bad block discovered in the field.
	FaultStuckBlock
	// FaultPowerCut is a device-wide power loss: the operation it lands on
	// dies mid-flight and every operation after it fails until the device
	// is remounted from persistent state. Nothing recovers in-run — the
	// persistence layer's journal replay is the recovery path.
	FaultPowerCut
)

var faultKindNames = [...]string{
	"plane-transient", "plane-dead", "program-fail", "erase-fail", "stuck-block",
	"power-cut",
}

func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return "unknown"
}

// FaultError is the error an injected fault surfaces as. It carries
// enough location and classification for the layers above to pick a
// recovery path without string matching.
type FaultError struct {
	Op    FaultOp
	Kind  FaultKind
	Plane PlaneAddr
	Block int
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("flash: injected %s fault (%s) at %v block %d",
		e.Kind, e.Op, e.Plane, e.Block)
}

// AsFaultError unwraps err to the injected *FaultError, or nil.
func AsFaultError(err error) *FaultError {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe
	}
	return nil
}

// IsTransientFault reports whether err is an injected fault the caller
// should retry later in simulated time (the plane recovers on its own).
func IsTransientFault(err error) bool {
	fe := AsFaultError(err)
	return fe != nil && fe.Kind == FaultPlaneTransient
}

// IsProgramFault reports whether err is a program failure that calls for
// retiring the target block and re-steering the write.
func IsProgramFault(err error) bool {
	fe := AsFaultError(err)
	return fe != nil && fe.Op == FaultProgram &&
		(fe.Kind == FaultProgramFail || fe.Kind == FaultStuckBlock)
}

// IsPowerCut reports whether err is an injected device-wide power loss.
// No in-run recovery applies: the FTL must not re-steer it and the
// scheduler must not retry it — the device is down until remount.
func IsPowerCut(err error) bool {
	fe := AsFaultError(err)
	return fe != nil && fe.Kind == FaultPowerCut
}

// IsEraseFault reports whether err is an erase failure that calls for
// retiring the target block.
func IsEraseFault(err error) bool {
	fe := AsFaultError(err)
	return fe != nil && fe.Op == FaultErase &&
		(fe.Kind == FaultEraseFail || fe.Kind == FaultStuckBlock)
}

// FaultOutcome is an injector's verdict on one operation. A nil Err with
// a positive Delay is latency jitter: the operation succeeds but its
// plane reservation stretches by Delay. A non-nil Err fails the
// operation; block-level program/erase failures still consume the
// nominal operation time (the plane was busy attempting it), while
// plane-level faults fail fast.
type FaultOutcome struct {
	Err   error
	Delay sim.Duration
}

// FaultInjector decides, per operation, whether to inject a fault.
// Implementations live outside this package (internal/faults provides
// the scriptable engine); the array consults the injector on every
// sense, program and erase. A nil injector means no structural faults —
// the analogue of a nil Corruptor for bit errors.
type FaultInjector interface {
	// Inspect is called once per operation with its primitive, location
	// and issue time. It must be deterministic for a fixed construction
	// seed and call sequence.
	Inspect(op FaultOp, plane PlaneAddr, block int, at sim.Time) FaultOutcome
}

// SetFaultInjector installs a structural-fault model beside the bit-error
// Corruptor; nil restores fault-free operation.
func (a *Array) SetFaultInjector(fi FaultInjector) { a.injector = fi }

// checkFault consults the installed injector. It returns the jitter to
// add to the operation's duration and, when the operation fails, the
// injected error.
func (a *Array) checkFault(op FaultOp, plane PlaneAddr, block int, at sim.Time) (sim.Duration, error) {
	if a.injector == nil {
		return 0, nil
	}
	out := a.injector.Inspect(op, plane, block, at)
	if out.Err != nil {
		a.stats.InjectedFaults++
		return out.Delay, out.Err
	}
	if out.Delay > 0 {
		a.stats.JitterEvents++
	}
	return out.Delay, nil
}

// failOp books the plane for a failed block-level attempt: the plane was
// genuinely busy for the nominal operation time (plus any jitter) before
// reporting the failure status. Plane-level faults and power cuts skip
// this — a dead or unresponsive plane rejects the command immediately,
// and a powered-off device reserves nothing.
func (a *Array) failOp(pl *plane, at sim.Time, nominal, jitter sim.Duration, err error) {
	fe := AsFaultError(err)
	if fe == nil {
		return
	}
	switch fe.Kind {
	case FaultPlaneTransient, FaultPlaneDead, FaultPowerCut:
		return
	}
	pl.sense.ReserveLabeled(at, nominal+jitter, "fault-"+fe.Kind.String())
}
