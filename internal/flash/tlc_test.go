package flash

import (
	"errors"
	"testing"

	"parabit/internal/latch"
	"parabit/internal/sim"
)

func tlcArray() *Array { return NewArray(SmallTLC(), TLCTiming()) }

func TestTLCGeometry(t *testing.T) {
	g := SmallTLC()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.PagesPerBlock() != 3*g.WordlinesPerBlock {
		t.Errorf("pages per block = %d", g.PagesPerBlock())
	}
	if g.ReadSROs(LSBPage) != 1 || g.ReadSROs(MSBPage) != 2 || g.ReadSROs(TopPage) != 4 {
		t.Error("TLC read SRO split should be 1-2-4")
	}
	// PPN round-trips with three kinds.
	for _, kind := range []PageKind{LSBPage, MSBPage, TopPage} {
		p := PageAddr{WordlineAddr{Block: 3, WL: 7}, kind}
		if g.PageAt(g.PPN(p)) != p {
			t.Errorf("PPN round trip failed for kind %v", kind)
		}
	}
	bad := Default()
	bad.CellBits = 4
	if bad.Validate() == nil {
		t.Error("QLC accepted (unsupported)")
	}
}

func TestTLCProgramOrder(t *testing.T) {
	a := tlcArray()
	wl := WordlineAddr{Block: 1}
	page := make([]byte, a.Geometry().PageSize)
	// TOP before CSB: rejected.
	if _, err := a.Program(PageAddr{wl, TopPage}, page, 0); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("TOP-first: %v", err)
	}
	if _, err := a.Program(PageAddr{wl, LSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, TopPage}, page, 0); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("TOP before CSB: %v", err)
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, TopPage}, page, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTLCKindRangeChecked(t *testing.T) {
	// TopPage is invalid on MLC arrays.
	a := testArray()
	page := make([]byte, a.Geometry().PageSize)
	if _, err := a.Program(PageAddr{WordlineAddr{}, TopPage}, page, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("TOP on MLC: %v", err)
	}
	if _, _, err := a.Read(PageAddr{WordlineAddr{}, TopPage}, 0); !errors.Is(err, ErrBadAddress) {
		t.Fatalf("TOP read on MLC: %v", err)
	}
}

func TestTLCBitwiseAllOpsCorrect(t *testing.T) {
	a := tlcArray()
	n := a.Geometry().PageSize
	lsb, csb, top := fillPattern(n, 0x5A), fillPattern(n, 0xC3), fillPattern(n, 0x0F)
	wl := WordlineAddr{Block: 2, WL: 4}
	for kind, data := range map[PageKind][]byte{LSBPage: lsb} {
		if _, err := a.Program(PageAddr{wl, kind}, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, csb, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, TopPage}, top, 0); err != nil {
		t.Fatal(err)
	}
	for _, op := range []latch.TLCOp3{latch.TLCAnd3, latch.TLCOr3, latch.TLCNand3, latch.TLCNor3} {
		got, _, err := a.BitwiseTLC(op, wl, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		for i := range got {
			for b := 0; b < 8; b++ {
				want := op.Eval(lsb[i]&(1<<b) != 0, csb[i]&(1<<b) != 0, top[i]&(1<<b) != 0)
				if (got[i]&(1<<b) != 0) != want {
					t.Fatalf("%v bit %d.%d wrong", op, i, b)
				}
			}
		}
	}
}

func TestTLCBitwiseTiming(t *testing.T) {
	a := tlcArray()
	wl := WordlineAddr{}
	res, err := a.BitwiseSenseTLC(latch.TLCAnd3, wl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ready != sim.Time(60*sim.Microsecond) {
		t.Errorf("AND3 ready at %v, want 60µs (1 TLC sense)", res.Ready)
	}
	a.ResetTiming()
	res, _ = a.BitwiseSenseTLC(latch.TLCOr3, wl, 0)
	if res.Ready != sim.Time(120*sim.Microsecond) {
		t.Errorf("OR3 ready at %v, want 120µs (2 senses)", res.Ready)
	}
}

func TestCellModeGuards(t *testing.T) {
	mlc := testArray()
	if _, err := mlc.BitwiseSenseTLC(latch.TLCAnd3, WordlineAddr{}, 0); !errors.Is(err, ErrCellMode) {
		t.Fatalf("TLC op on MLC: %v", err)
	}
	tlc := tlcArray()
	if _, err := tlc.BitwiseSense(latch.OpAnd, WordlineAddr{}, 0); !errors.Is(err, ErrCellMode) {
		t.Fatalf("MLC op on TLC: %v", err)
	}
	if _, err := tlc.BitwiseSenseLocFree(latch.OpAnd, WordlineAddr{}, WordlineAddr{WL: 1}, 0); !errors.Is(err, ErrCellMode) {
		t.Fatalf("MLC locfree on TLC: %v", err)
	}
	if _, err := tlc.BitwiseChainLSB(latch.OpAnd, []WordlineAddr{{}, {WL: 1}}, 0); !errors.Is(err, ErrCellMode) {
		t.Fatalf("MLC chain on TLC: %v", err)
	}
}

func TestTLCReadLatencies(t *testing.T) {
	a := tlcArray()
	tm := a.Timing()
	page := make([]byte, a.Geometry().PageSize)
	wl := WordlineAddr{Block: 3}
	for _, kind := range []PageKind{LSBPage, MSBPage, TopPage} {
		if _, err := a.Program(PageAddr{wl, kind}, page, 0); err != nil {
			t.Fatal(err)
		}
	}
	a.ResetTiming()
	wantSROs := map[PageKind]int{LSBPage: 1, MSBPage: 2, TopPage: 4}
	for kind, sros := range wantSROs {
		a.ResetTiming()
		res, err := a.ReadSense(PageAddr{wl, kind}, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := sim.Time(sim.Duration(sros) * tm.SenseSRO)
		if res.Ready != want {
			t.Errorf("%v read ready at %v, want %v", kind, res.Ready, want)
		}
	}
}
