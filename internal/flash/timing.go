package flash

import (
	"fmt"

	"parabit/internal/sim"
)

// Timing collects the latency parameters of the modeled MLC flash. The
// defaults are the paper's evaluation constants (§5.1): 25 µs per single
// read operation (SRO) and 640 µs per page program, typical of planar MLC
// parts like the one in the Samsung 970 PRO the authors measured against.
type Timing struct {
	// SenseSRO is one single read operation: applying one reference
	// voltage and latching the comparison. An LSB read costs one SRO, an
	// MSB read two; ParaBit ops cost their control sequence's SRO count.
	SenseSRO sim.Duration
	// ProgramPage is a full-page program (either MLC page).
	ProgramPage sim.Duration
	// EraseBlock is a block erase.
	EraseBlock sim.Duration
	// ChannelBytesPerNs is the per-channel bus rate in bytes per
	// nanosecond (= GB/s). Page transfers between a plane's cache register
	// and the controller serialize on the channel at this rate.
	ChannelBytesPerNs float64
	// CmdOverhead is the fixed command/addressing cost per flash
	// operation on the channel.
	CmdOverhead sim.Duration
	// SenseMWS is one Flash-Cosmos multi-wordline sense: applying the read
	// voltage to several wordlines of one string and latching the single
	// comparison. Slightly above SenseSRO because the shared bitline needs
	// a longer develop time when several cells gate the string.
	SenseMWS sim.Duration
	// MWSSettlePerWL is the extra wordline-driver settle time each
	// additional selected wordline adds to a multi-wordline sense: the
	// drivers charge the selected gates in parallel, so the cost per extra
	// operand is nanoseconds, not another sense.
	MWSSettlePerWL sim.Duration
	// ProgramESP is a page program under enhanced SLC programming
	// (Flash-Cosmos): extra verify loops tighten the threshold
	// distributions so multi-wordline senses keep their margin. The
	// premium over ProgramPage is the price operand writes pay up front
	// for single-sense reductions later.
	ProgramESP sim.Duration
	// MaxReadRetries bounds the calibrated re-reads the baseline path
	// attempts when ECC reports an uncorrectable sector (§5.8's "voltage
	// calibration read"). Each retry costs one extra SRO.
	MaxReadRetries int
	// NoCacheRead disables the cache-register pipeline (§2.1): without
	// it, a plane cannot start its next sense until the previous read's
	// data has fully drained over the channel, because the single data
	// register is still occupied. Modern flash ships with cache read, so
	// the default (false) keeps it on; the ablation benches flip it.
	NoCacheRead bool
}

// DefaultTiming returns the paper's MLC timing with a 400 MB/s ONFI
// channel, giving the 16-channel default geometry a 6.4 GB/s internal read
// bandwidth — comfortably above the ~3.2 GB/s PCIe Gen3 x4 host link, so
// the host link is the movement bottleneck exactly as in the paper's
// motivation experiment.
func DefaultTiming() Timing {
	return Timing{
		SenseSRO:          25 * sim.Microsecond,
		ProgramPage:       640 * sim.Microsecond,
		EraseBlock:        3500 * sim.Microsecond,
		SenseMWS:          28 * sim.Microsecond,
		MWSSettlePerWL:    500 * sim.Nanosecond,
		ProgramESP:        800 * sim.Microsecond,
		ChannelBytesPerNs: 0.4,
		CmdOverhead:       200 * sim.Nanosecond,
		MaxReadRetries:    3,
	}
}

// TLCTiming returns typical planar-TLC latencies for the §4.4.1
// extension: slower sensing and much slower programming than MLC.
func TLCTiming() Timing {
	t := DefaultTiming()
	t.SenseSRO = 60 * sim.Microsecond
	t.ProgramPage = 2000 * sim.Microsecond
	t.EraseBlock = 5000 * sim.Microsecond
	t.SenseMWS = 66 * sim.Microsecond
	t.ProgramESP = 2400 * sim.Microsecond
	return t
}

// Validate reports whether every parameter is positive.
func (t Timing) Validate() error {
	if t.SenseSRO <= 0 || t.ProgramPage <= 0 || t.EraseBlock <= 0 ||
		t.SenseMWS <= 0 || t.MWSSettlePerWL < 0 || t.ProgramESP <= 0 ||
		t.ChannelBytesPerNs <= 0 || t.CmdOverhead < 0 || t.MaxReadRetries < 0 {
		return fmt.Errorf("flash: invalid timing %+v", t)
	}
	return nil
}

// MWSLatency returns the array-side time of one k-wordline
// multi-wordline sense: one MWS develop plus the per-extra-wordline
// driver settle. This is the Flash-Cosmos payoff: the whole k-operand
// reduction costs about one SRO where a pairwise chain costs k.
func (t Timing) MWSLatency(k int) sim.Duration {
	if k < 2 {
		panic(fmt.Sprintf("flash: MWS latency of %d wordlines", k))
	}
	return t.SenseMWS + sim.Duration(k-1)*t.MWSSettlePerWL
}

// Transfer returns the channel-bus time to move n bytes.
func (t Timing) Transfer(n int) sim.Duration {
	return t.CmdOverhead + sim.Duration(float64(n)/t.ChannelBytesPerNs)
}

// ReadLatency returns the array-side sense time for a page of the given
// kind: one SRO for LSB pages, two for MSB pages (paper Fig. 3).
func (t Timing) ReadLatency(kind PageKind) sim.Duration {
	if kind == LSBPage {
		return t.SenseSRO
	}
	return 2 * t.SenseSRO
}

// Stats accumulates operation counts across an array's lifetime. The
// energy model converts them to joules; experiments report them directly.
type Stats struct {
	SROs           int64 // single read operations issued
	Programs       int64 // page programs
	Erases         int64 // block erases
	BitwiseOps     int64 // ParaBit sense operations (any variant)
	MWSSenses      int64 // Flash-Cosmos multi-wordline senses issued
	BytesOut       int64 // bytes moved plane -> controller
	BytesIn        int64 // bytes moved controller -> plane
	InjectedFlips  int64 // bit errors injected by the read-noise model
	CorrectedBits  int64 // bits corrected by the baseline ECC path
	ReadRetries    int64 // calibrated re-reads after uncorrectable ECC
	InjectedFaults int64 // structural faults injected by the fault model
	JitterEvents   int64 // operations stretched by injected latency jitter
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.SROs += o.SROs
	s.Programs += o.Programs
	s.Erases += o.Erases
	s.BitwiseOps += o.BitwiseOps
	s.MWSSenses += o.MWSSenses
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.InjectedFlips += o.InjectedFlips
	s.CorrectedBits += o.CorrectedBits
	s.ReadRetries += o.ReadRetries
	s.InjectedFaults += o.InjectedFaults
	s.JitterEvents += o.JitterEvents
}
