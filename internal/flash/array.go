package flash

import (
	"errors"
	"fmt"

	"parabit/internal/ecc"
	"parabit/internal/sim"
)

// Program-order violations and related storage errors.
var (
	// ErrNotErased reports a program to a page that already holds data.
	ErrNotErased = errors.New("flash: program to non-erased page")
	// ErrProgramOrder reports an MSB program before the wordline's LSB
	// program, which MLC flash forbids.
	ErrProgramOrder = errors.New("flash: MSB programmed before LSB")
	// ErrPageSize reports a program whose buffer is not exactly one page.
	ErrPageSize = errors.New("flash: data is not one page")
	// ErrPlaneMismatch reports a location-free op whose operands do not
	// share a plane (and therefore do not share latching circuits).
	ErrPlaneMismatch = errors.New("flash: location-free operands on different planes")
)

// Corruptor injects read errors into sensed data. The reliability package
// provides the paper-calibrated implementation; a nil Corruptor is ideal.
type Corruptor interface {
	// Corrupt flips bits in data in place and returns the number flipped.
	// peCycles is the block's erase count; sros is the number of sensing
	// steps the producing operation used (errors grow with both, paper
	// Fig. 17).
	Corrupt(data []byte, peCycles, sros int) int
}

// DisturbCorruptor is an optional Corruptor extension that also accounts
// for read disturb: the error rate grows with the SROs a block has
// absorbed since its last erase. Arrays feed the per-block read counter
// to models implementing it.
type DisturbCorruptor interface {
	Corruptor
	CorruptWithReads(data []byte, peCycles, sros, blockReads int) int
}

// wordline stores the CellBits pages of one row, indexed by PageKind.
// nil slices mean erased: every cell in state E, so every page reads back
// all ones. The parity slices model the out-of-band spare area where the
// controller keeps ECC parity; entries exist only when the array has a
// codec installed.
type wordline struct {
	pages  [][]byte
	parity [][]byte
	// esp marks pages written with enhanced SLC programming (Flash-Cosmos):
	// slower programs with tighter threshold distributions, which is what
	// gives a multi-wordline sense its margin. nil until a page of the
	// wordline is ESP-programmed.
	esp []bool
}

type block struct {
	wl     []wordline // nil until first program after (re-)erase
	erases int
	// reads counts SROs issued against the block since its last erase:
	// the read-disturb exposure the reliability model can consume.
	reads int
}

type plane struct {
	sense  *sim.Resource
	blocks []block
}

// Array is the NAND flash device: storage plus occupancy-based timing.
// Methods take an "at" time (when the controller issues the command) and
// return the command's completion time; queueing on busy planes and
// channels is resolved by the embedded resources. Array is not safe for
// concurrent use — the controller above it is single-threaded over
// simulated time.
type Array struct {
	geo    Geometry
	timing Timing
	planes []*plane        // by PlaneIndex
	buses  []*sim.Resource // per channel
	noise  Corruptor
	// codec, when set, protects baseline reads: programs store parity in
	// the OOB area and reads correct raw errors. ParaBit sense results
	// never pass through it (§4.4.3).
	codec *ecc.Codec
	// noisyBaseline applies the Corruptor to baseline reads too (raw bit
	// errors on ordinary reads), which the codec then corrects — the
	// §5.8 configuration. Without a codec, raw errors would reach the
	// host, so enabling this without a codec is rejected.
	noisyBaseline bool
	// injector, when set, decides per-operation structural faults
	// (program/erase failures, dead planes, latency jitter) the way noise
	// decides bit errors. A nil injector is fault-free.
	injector FaultInjector
	stats    Stats
}

// NewArray builds an erased array. It panics on invalid configuration:
// geometry and timing come from code, not user input.
func NewArray(geo Geometry, timing Timing) *Array {
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	if err := timing.Validate(); err != nil {
		panic(err)
	}
	a := &Array{
		geo:    geo,
		timing: timing,
		planes: make([]*plane, geo.Planes()),
		buses:  make([]*sim.Resource, geo.Channels),
	}
	for i := range a.planes {
		a.planes[i] = &plane{
			sense:  sim.NewResource(fmt.Sprintf("plane-%d", i)),
			blocks: make([]block, geo.BlocksPerPlane),
		}
	}
	for i := range a.buses {
		a.buses[i] = sim.NewResource(fmt.Sprintf("chan-%d", i))
	}
	return a
}

// Geometry returns the array's geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Timing returns the array's timing parameters.
func (a *Array) Timing() Timing { return a.timing }

// Stats returns a copy of the accumulated operation counts.
func (a *Array) Stats() Stats { return a.stats }

// SetCorruptor installs a read-noise model; nil restores ideal sensing.
func (a *Array) SetCorruptor(c Corruptor) { a.noise = c }

// SetECC installs a baseline-read codec. Pages programmed afterwards
// carry parity; reads of parity-bearing pages correct raw errors.
func (a *Array) SetECC(c *ecc.Codec) { a.codec = c }

// SetNoisyBaseline makes ordinary reads experience raw bit errors too
// (corrected by the codec). Requires SetECC first.
func (a *Array) SetNoisyBaseline(on bool) error {
	if on && a.codec == nil {
		return errors.New("flash: noisy baseline reads require an ECC codec")
	}
	a.noisyBaseline = on
	return nil
}

// InstrumentResources installs a reservation observer on every plane's
// sense path and every channel bus. mk is called once per resource with
// its diagnostic name ("plane-3", "chan-0") and may return nil to leave
// that resource uninstrumented; a nil mk removes every observer. The
// telemetry layer uses this to give each plane and channel its own
// occupancy lane in an exported trace.
func (a *Array) InstrumentResources(mk func(name string) sim.ReserveObserver) {
	for _, p := range a.planes {
		if mk == nil {
			p.sense.SetObserver(nil)
		} else {
			p.sense.SetObserver(mk(p.sense.Name()))
		}
	}
	for _, b := range a.buses {
		if mk == nil {
			b.SetObserver(nil)
		} else {
			b.SetObserver(mk(b.Name()))
		}
	}
}

// DrainTime returns the instant all queued work on every plane and channel
// completes — the wave-completion time experiments report.
func (a *Array) DrainTime() sim.Time {
	var t sim.Time
	for _, p := range a.planes {
		if ft := p.sense.FreeAt(); ft > t {
			t = ft
		}
	}
	for _, b := range a.buses {
		if ft := b.FreeAt(); ft > t {
			t = ft
		}
	}
	return t
}

// ResetTiming returns every plane and channel to idle without touching
// stored data, so successive experiments on one array start from t=0.
func (a *Array) ResetTiming() {
	for _, p := range a.planes {
		p.sense.Reset()
	}
	for _, b := range a.buses {
		b.Reset()
	}
}

func (a *Array) planeAt(p PlaneAddr) *plane { return a.planes[a.geo.PlaneIndex(p)] }

func (a *Array) wordlineAt(w WordlineAddr) *wordline {
	blk := &a.planeAt(w.PlaneAddr).blocks[w.Block]
	if blk.wl == nil {
		return nil
	}
	return &blk.wl[w.WL]
}

// pageBits returns the stored page content, treating erased storage as all
// ones (cells in state E carry 1 in every page).
func (a *Array) pageBits(w WordlineAddr, kind PageKind) []byte {
	out := make([]byte, a.geo.PageSize)
	wl := a.wordlineAt(w)
	var src []byte
	if wl != nil && wl.pages != nil {
		src = wl.pages[kind]
	}
	if src == nil {
		for i := range out {
			out[i] = 0xFF
		}
		return out
	}
	copy(out, src)
	return out
}

// peCycles returns the erase count of the block holding w.
func (a *Array) peCycles(w WordlineAddr) int {
	return a.planeAt(w.PlaneAddr).blocks[w.Block].erases
}

// ReadCount returns the SROs a block has absorbed since its last erase.
func (a *Array) ReadCount(p PlaneAddr, blockIdx int) int {
	return a.planeAt(p).blocks[blockIdx].reads
}

// noteReads charges sensing disturb to a block and returns its exposure
// before this operation.
func (a *Array) noteReads(w WordlineAddr, sros int) int {
	blk := &a.planeAt(w.PlaneAddr).blocks[w.Block]
	before := blk.reads
	blk.reads += sros
	return before
}

// corrupt applies the noise model to sensed data, routing through the
// read-disturb extension when the model supports it.
func (a *Array) corrupt(data []byte, pe, sros, blockReads int) int {
	if a.noise == nil {
		return 0
	}
	if dc, ok := a.noise.(DisturbCorruptor); ok {
		return dc.CorruptWithReads(data, pe, sros, blockReads)
	}
	return a.noise.Corrupt(data, pe, sros)
}

// SenseResult is the outcome of an array-side operation that leaves data
// in the plane's cache register: the data itself, when the sensing
// finished (register valid), how many bit errors the noise model
// injected, and how many the baseline ECC path corrected.
type SenseResult struct {
	Data      []byte
	Ready     sim.Time
	FlipCount int
	Corrected int
}

// parityOf returns the stored OOB parity for a programmed page, or nil.
func (a *Array) parityOf(p PageAddr) []byte {
	wl := a.wordlineAt(p.WordlineAddr)
	if wl == nil || wl.parity == nil {
		return nil
	}
	return wl.parity[p.Kind]
}

// ReadSense senses one page into the plane's cache register without
// transferring it: the building block for reads, reallocation and the
// ParaBit pipelines. This is the baseline (ECC-protected) path: with
// noisy baseline reads enabled, raw errors are injected and corrected
// against the page's stored parity — the flow ParaBit results cannot
// use (§4.4.3). A correction failure surfaces as a read error, like a
// real drive's uncorrectable-ECC status.
func (a *Array) ReadSense(p PageAddr, at sim.Time) (SenseResult, error) {
	if err := a.geo.CheckPage(p); err != nil {
		return SenseResult{}, err
	}
	jitter, ferr := a.checkFault(FaultSense, p.PlaneAddr, p.Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(p.PlaneAddr)
	sros := a.geo.ReadSROs(p.Kind)
	_, end := pl.sense.ReserveLabeled(at, sim.Duration(sros)*a.timing.SenseSRO+jitter, "sense")
	a.stats.SROs += int64(sros)
	exposure := a.noteReads(p.WordlineAddr, sros)
	res := SenseResult{Data: a.pageBits(p.WordlineAddr, p.Kind), Ready: end}
	if a.noisyBaseline && a.noise != nil {
		par := a.parityOf(p)
		if par == nil {
			return res, nil
		}
		res.FlipCount = a.corrupt(res.Data, a.peCycles(p.WordlineAddr), sros, exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
		n, derr := a.codec.Decode(res.Data, par)
		// Uncorrectable sector: re-read with calibrated reference
		// voltages (§5.8). Each retry is one more SRO on the plane and a
		// fresh, milder sensing outcome — the Vref lands closer to the
		// shifted distributions.
		retries := 0
		for derr != nil && retries < a.timing.MaxReadRetries {
			retries++
			a.stats.ReadRetries++
			_, end = pl.sense.ReserveLabeled(end, a.timing.SenseSRO, "sense")
			a.stats.SROs++
			a.noteReads(p.WordlineAddr, 1)
			res.Data = a.pageBits(p.WordlineAddr, p.Kind)
			// Calibrated sensing quarters the effective error exposure
			// per attempt.
			res.FlipCount = a.corrupt(res.Data, a.peCycles(p.WordlineAddr), 1, exposure>>(2*uint(retries)))
			a.stats.InjectedFlips += int64(res.FlipCount)
			n, derr = a.codec.Decode(res.Data, par)
		}
		if derr != nil {
			return res, fmt.Errorf("flash: read %v after %d retries: %w", p, retries, derr)
		}
		res.Ready = end
		res.Corrected = n
		a.stats.CorrectedBits += int64(n)
	}
	return res, nil
}

// Read senses a page and transfers it over the channel to the controller.
// The returned time is when the controller holds the data. With cache
// read (the default), the plane frees as soon as sensing completes — the
// cache register holds the outgoing data while the next sense proceeds.
// Without it, the plane stays busy until the transfer drains.
func (a *Array) Read(p PageAddr, at sim.Time) ([]byte, sim.Time, error) {
	res, err := a.ReadSense(p, at)
	if err != nil {
		return nil, 0, err
	}
	done := a.transferOut(p.Channel, res.Ready, len(res.Data))
	if a.timing.NoCacheRead && done > res.Ready {
		// Hold the single data register (and with it the plane's sense
		// path) until the transfer completes.
		a.planeAt(p.PlaneAddr).sense.ReserveLabeled(res.Ready, done.Sub(res.Ready), "hold")
	}
	return res.Data, done, nil
}

// transferOut books the channel for a plane->controller page transfer.
func (a *Array) transferOut(channel int, ready sim.Time, n int) sim.Time {
	_, end := a.buses[channel].ReserveLabeled(ready, a.timing.Transfer(n), "xfer-out")
	a.stats.BytesOut += int64(n)
	return end
}

// transferIn books the channel for a controller->plane transfer.
func (a *Array) transferIn(channel int, at sim.Time, n int) sim.Time {
	_, end := a.buses[channel].ReserveLabeled(at, a.timing.Transfer(n), "xfer-in")
	a.stats.BytesIn += int64(n)
	return end
}

// Program writes one page. Data is copied. MLC rules are enforced: the
// target page must be erased and a wordline's LSB page must be programmed
// before its MSB page. The returned time is program completion.
func (a *Array) Program(p PageAddr, data []byte, at sim.Time) (sim.Time, error) {
	return a.program(p, data, at, false)
}

// ProgramESP writes one page with enhanced SLC programming (Flash-Cosmos):
// the extra verify loops cost Timing.ProgramESP instead of ProgramPage and
// mark the page as holding the tightened distributions a multi-wordline
// sense needs full margin on.
func (a *Array) ProgramESP(p PageAddr, data []byte, at sim.Time) (sim.Time, error) {
	return a.program(p, data, at, true)
}

// IsESP reports whether a programmed page was written with enhanced SLC
// programming. Erased or never-programmed pages report false.
func (a *Array) IsESP(p PageAddr) bool {
	blk := &a.planeAt(p.PlaneAddr).blocks[p.Block]
	if blk.wl == nil {
		return false
	}
	wl := &blk.wl[p.WL]
	return wl.esp != nil && int(p.Kind) < len(wl.esp) && wl.esp[p.Kind]
}

func (a *Array) program(p PageAddr, data []byte, at sim.Time, esp bool) (sim.Time, error) {
	if err := a.geo.CheckPage(p); err != nil {
		return 0, err
	}
	if len(data) != a.geo.PageSize {
		return 0, fmt.Errorf("%w: %d bytes, page is %d", ErrPageSize, len(data), a.geo.PageSize)
	}
	pl := a.planeAt(p.PlaneAddr)
	blk := &pl.blocks[p.Block]
	if blk.wl == nil {
		blk.wl = make([]wordline, a.geo.WordlinesPerBlock)
	}
	wl := &blk.wl[p.WL]
	if wl.pages == nil {
		wl.pages = make([][]byte, a.geo.CellBits)
		wl.parity = make([][]byte, a.geo.CellBits)
	}
	if wl.pages[p.Kind] != nil {
		return 0, fmt.Errorf("%w: %v", ErrNotErased, p)
	}
	// Pages of one wordline program in kind order (LSB first), the MLC
	// rule generalized to TLC.
	if p.Kind > 0 && wl.pages[p.Kind-1] == nil {
		return 0, fmt.Errorf("%w: %v", ErrProgramOrder, p)
	}
	progTime := a.timing.ProgramPage
	if esp {
		progTime = a.timing.ProgramESP
	}
	jitter, ferr := a.checkFault(FaultProgram, p.PlaneAddr, p.Block, at)
	if ferr != nil {
		a.failOp(pl, at, progTime, jitter, ferr)
		return 0, ferr
	}
	// Data crosses the channel into the register, then the plane programs.
	xferEnd := a.transferIn(p.Channel, at, len(data))
	_, end := pl.sense.ReserveLabeled(xferEnd, progTime+jitter, "program")
	buf := make([]byte, len(data))
	copy(buf, data)
	var par []byte
	if a.codec != nil {
		var perr error
		par, perr = a.codec.Encode(buf)
		if perr != nil {
			return 0, fmt.Errorf("flash: parity for %v: %w", p, perr)
		}
	}
	wl.pages[p.Kind] = buf
	wl.parity[p.Kind] = par
	if esp {
		if wl.esp == nil {
			wl.esp = make([]bool, a.geo.CellBits)
		}
		wl.esp[p.Kind] = true
	}
	a.stats.Programs++
	return end, nil
}

// Erase wipes a block, returning its wordlines to the erased (all ones)
// state and bumping the P/E cycle count.
func (a *Array) Erase(p PlaneAddr, blockIdx int, at sim.Time) (sim.Time, error) {
	if err := a.geo.CheckPlane(p); err != nil {
		return 0, err
	}
	if blockIdx < 0 || blockIdx >= a.geo.BlocksPerPlane {
		return 0, fmt.Errorf("%w: block %d", ErrBadAddress, blockIdx)
	}
	pl := a.planeAt(p)
	blk := &pl.blocks[blockIdx]
	jitter, ferr := a.checkFault(FaultErase, p, blockIdx, at)
	if ferr != nil {
		a.failOp(pl, at, a.timing.EraseBlock, jitter, ferr)
		return 0, ferr
	}
	_, end := pl.sense.ReserveLabeled(at, a.timing.EraseBlock+jitter, "erase")
	blk.wl = nil
	blk.erases++
	blk.reads = 0
	a.stats.Erases++
	return end, nil
}

// EraseCount returns a block's P/E cycle count.
func (a *Array) EraseCount(p PlaneAddr, blockIdx int) int {
	return a.planeAt(p).blocks[blockIdx].erases
}

// PageProgrammed reports whether the page currently holds data.
func (a *Array) PageProgrammed(p PageAddr) bool {
	wl := a.wordlineAt(p.WordlineAddr)
	if wl == nil || wl.pages == nil {
		return false
	}
	return wl.pages[p.Kind] != nil
}
