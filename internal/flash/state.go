package flash

import (
	"errors"
	"fmt"
	"io"

	"parabit/internal/binio"
)

// ErrBadState reports a state blob that does not decode against this
// array's geometry.
var ErrBadState = errors.New("flash: bad array state")

const stateMagic = 0x31525241 // "ARR1"

// WriteState serializes the array's durable contents — per-block erase
// and read-disturb counters plus every programmed page and its ESP flag —
// in a deterministic, geometry-implied order. Parity is not written: it
// is a pure function of page data and the installed codec, so ReadState
// recomputes it. Timing state (plane and channel occupancy) is
// deliberately volatile: a remounted device starts idle at t=0.
func (a *Array) WriteState(w io.Writer) error {
	b := binio.NewWriter(w)
	b.U32(stateMagic)
	for _, pl := range a.planes {
		for bi := range pl.blocks {
			blk := &pl.blocks[bi]
			b.I64(int64(blk.erases))
			b.I64(int64(blk.reads))
			if blk.wl == nil {
				b.U8(0)
				continue
			}
			b.U8(1)
			for wi := range blk.wl {
				wl := &blk.wl[wi]
				var pageMask, espMask uint8
				for k := 0; k < a.geo.CellBits; k++ {
					if wl.pages != nil && wl.pages[k] != nil {
						pageMask |= 1 << k
					}
					if wl.esp != nil && wl.esp[k] {
						espMask |= 1 << k
					}
				}
				b.U8(pageMask)
				b.U8(espMask)
				for k := 0; k < a.geo.CellBits; k++ {
					if pageMask&(1<<k) != 0 {
						b.Bytes(wl.pages[k])
					}
				}
			}
		}
	}
	return b.Err()
}

// ReadState restores a WriteState blob into a freshly constructed
// (fully erased) array with the same geometry. Parity for programmed
// pages is recomputed against the currently installed codec, so SetECC
// must run before ReadState exactly as it runs before first program.
func (a *Array) ReadState(r io.Reader) error {
	b := binio.NewReader(r, uint32(a.geo.PageSize))
	if m := b.U32(); b.Err() == nil && m != stateMagic {
		return fmt.Errorf("%w: magic %#x", ErrBadState, m)
	}
	kindBits := uint8(1<<a.geo.CellBits) - 1
	for _, pl := range a.planes {
		for bi := range pl.blocks {
			blk := &pl.blocks[bi]
			blk.erases = int(b.I64())
			blk.reads = int(b.I64())
			if blk.erases < 0 || blk.reads < 0 {
				return fmt.Errorf("%w: negative counters on block %d", ErrBadState, bi)
			}
			if b.U8() == 0 {
				continue
			}
			if b.Err() != nil {
				return b.Err()
			}
			blk.wl = make([]wordline, a.geo.WordlinesPerBlock)
			for wi := range blk.wl {
				wl := &blk.wl[wi]
				pageMask := b.U8()
				espMask := b.U8()
				if pageMask&^kindBits != 0 || espMask&^kindBits != 0 {
					return fmt.Errorf("%w: page mask %#x beyond %d cell bits",
						ErrBadState, pageMask, a.geo.CellBits)
				}
				if pageMask == 0 && espMask == 0 {
					continue
				}
				wl.pages = make([][]byte, a.geo.CellBits)
				wl.parity = make([][]byte, a.geo.CellBits)
				if espMask != 0 {
					wl.esp = make([]bool, a.geo.CellBits)
				}
				for k := 0; k < a.geo.CellBits; k++ {
					if espMask&(1<<k) != 0 {
						wl.esp[k] = true
					}
					if pageMask&(1<<k) == 0 {
						continue
					}
					page := b.Bytes()
					if b.Err() != nil {
						return b.Err()
					}
					if len(page) != a.geo.PageSize {
						return fmt.Errorf("%w: page of %d bytes", ErrBadState, len(page))
					}
					wl.pages[k] = page
					if a.codec != nil {
						par, err := a.codec.Encode(page)
						if err != nil {
							return fmt.Errorf("flash: restore parity: %w", err)
						}
						wl.parity[k] = par
					}
				}
			}
		}
	}
	return b.Err()
}
