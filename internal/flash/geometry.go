// Package flash models an MLC NAND flash array: the physical geometry
// (channels, chips, dies, planes, blocks, wordlines), page storage with MLC
// program constraints, operation timing with per-plane and per-channel
// occupancy, and the ParaBit bitwise sense operations built on the
// internal/latch control sequences.
//
// Page data is allocated lazily — an erased wordline stores nothing and
// reads back all-ones (every cell in state E) — so small functional
// simulations are cheap while paper-scale geometries remain constructible
// for timing-only use.
package flash

import (
	"errors"
	"fmt"
)

// Geometry describes the physical organization of the array. The paper's
// evaluated SSD (§5.1) has 128 chips with 8 KB pages arranged so one
// parallel wave touches two 8 MB operands, which requires 1024 planes:
// 16 channels x 8 chips x 2 dies x 4 planes.
type Geometry struct {
	Channels          int
	ChipsPerChannel   int
	DiesPerChip       int
	PlanesPerDie      int
	BlocksPerPlane    int
	WordlinesPerBlock int
	PageSize          int // bytes per page
	// CellBits is the bits stored per cell: 2 (MLC, two pages per
	// wordline — the paper's evaluated configuration) or 3 (TLC, three
	// pages per wordline — the §4.4.1 extension).
	CellBits int
}

// Default returns the paper's evaluated geometry: a 512 GB MLC SSD whose
// 1024 planes compute on two 8 MB operands per wave.
func Default() Geometry {
	return Geometry{
		Channels:          16,
		ChipsPerChannel:   8,
		DiesPerChip:       2,
		PlanesPerDie:      4,
		BlocksPerPlane:    512,
		WordlinesPerBlock: 64,
		PageSize:          8 * 1024,
		CellBits:          2,
	}
}

// Small returns a geometry sized for functional tests and examples:
// 2 channels x 2 chips x 1 die x 2 planes with 256-byte pages (8 MB total).
func Small() Geometry {
	return Geometry{
		Channels:          2,
		ChipsPerChannel:   2,
		DiesPerChip:       1,
		PlanesPerDie:      2,
		BlocksPerPlane:    64,
		WordlinesPerBlock: 32,
		PageSize:          256,
		CellBits:          2,
	}
}

// SmallTLC returns the Small geometry in TLC mode: three pages per
// wordline, for functional tests of the §4.4.1 extension.
func SmallTLC() Geometry {
	g := Small()
	g.CellBits = 3
	return g
}

// Validate reports whether every dimension is positive.
func (g Geometry) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels},
		{"ChipsPerChannel", g.ChipsPerChannel},
		{"DiesPerChip", g.DiesPerChip},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"WordlinesPerBlock", g.WordlinesPerBlock},
		{"PageSize", g.PageSize},
	} {
		if d.v <= 0 {
			return fmt.Errorf("flash: geometry %s = %d, must be positive", d.name, d.v)
		}
	}
	if g.CellBits != 2 && g.CellBits != 3 {
		return fmt.Errorf("flash: CellBits = %d, must be 2 (MLC) or 3 (TLC)", g.CellBits)
	}
	return nil
}

// Chips returns the total chip count.
func (g Geometry) Chips() int { return g.Channels * g.ChipsPerChannel }

// Dies returns the total die count.
func (g Geometry) Dies() int { return g.Chips() * g.DiesPerChip }

// Planes returns the total plane count — the device's wave width in pages.
func (g Geometry) Planes() int { return g.Dies() * g.PlanesPerDie }

// PlanesPerChannel returns the planes reachable through one channel.
func (g Geometry) PlanesPerChannel() int {
	return g.ChipsPerChannel * g.DiesPerChip * g.PlanesPerDie
}

// PagesPerBlock returns pages per block: CellBits per wordline.
func (g Geometry) PagesPerBlock() int { return g.CellBits * g.WordlinesPerBlock }

// PagesPerPlane returns pages per plane.
func (g Geometry) PagesPerPlane() int { return g.BlocksPerPlane * g.PagesPerBlock() }

// TotalPages returns the device's physical page count.
func (g Geometry) TotalPages() int64 {
	return int64(g.Planes()) * int64(g.PagesPerPlane())
}

// CapacityBytes returns the raw capacity.
func (g Geometry) CapacityBytes() int64 { return g.TotalPages() * int64(g.PageSize) }

// WaveBytes returns the bytes one all-planes-parallel operation touches per
// page role: with every plane sensing one wordline, each of the two operand
// pages contributes Planes()*PageSize bytes (8 MB on the default geometry).
func (g Geometry) WaveBytes() int64 { return int64(g.Planes()) * int64(g.PageSize) }

// PageKind selects which of a wordline's two MLC pages is addressed.
type PageKind uint8

const (
	// LSBPage is the page stored in the cells' least-significant bits.
	LSBPage PageKind = iota
	// MSBPage is the MLC most-significant page. In TLC mode, kind 1 is
	// the centre (CSB) page of the gray code; the historical MLC name is
	// kept because the MLC evaluation is the paper's primary target.
	MSBPage
	// TopPage is the third page of a TLC wordline (the TLC gray code's
	// MSB). Valid only when Geometry.CellBits == 3.
	TopPage
)

func (k PageKind) String() string {
	switch k {
	case LSBPage:
		return "LSB"
	case MSBPage:
		return "MSB"
	case TopPage:
		return "TOP"
	}
	return fmt.Sprintf("PageKind(%d)", uint8(k))
}

// PlaneAddr identifies one plane.
type PlaneAddr struct {
	Channel, Chip, Die, Plane int
}

// WordlineAddr identifies one wordline (a row of MLC cells = two pages).
type WordlineAddr struct {
	PlaneAddr
	Block, WL int
}

// PageAddr identifies one page.
type PageAddr struct {
	WordlineAddr
	Kind PageKind
}

func (p PlaneAddr) String() string {
	return fmt.Sprintf("ch%d/chip%d/die%d/pl%d", p.Channel, p.Chip, p.Die, p.Plane)
}

func (w WordlineAddr) String() string {
	return fmt.Sprintf("%v/blk%d/wl%d", w.PlaneAddr, w.Block, w.WL)
}

func (p PageAddr) String() string {
	return fmt.Sprintf("%v/%v", p.WordlineAddr, p.Kind)
}

// ErrBadAddress reports an address outside the geometry.
var ErrBadAddress = errors.New("flash: address out of range")

// CheckPlane validates a plane address against the geometry.
func (g Geometry) CheckPlane(p PlaneAddr) error {
	if p.Channel < 0 || p.Channel >= g.Channels ||
		p.Chip < 0 || p.Chip >= g.ChipsPerChannel ||
		p.Die < 0 || p.Die >= g.DiesPerChip ||
		p.Plane < 0 || p.Plane >= g.PlanesPerDie {
		return fmt.Errorf("%w: %v", ErrBadAddress, p)
	}
	return nil
}

// CheckWordline validates a wordline address.
func (g Geometry) CheckWordline(w WordlineAddr) error {
	if err := g.CheckPlane(w.PlaneAddr); err != nil {
		return err
	}
	if w.Block < 0 || w.Block >= g.BlocksPerPlane || w.WL < 0 || w.WL >= g.WordlinesPerBlock {
		return fmt.Errorf("%w: %v", ErrBadAddress, w)
	}
	return nil
}

// PlaneIndex linearizes a plane address: channel-major, then chip, die,
// plane. The FTL's striped allocator walks this order so consecutive
// logical pages land on different channels first.
func (g Geometry) PlaneIndex(p PlaneAddr) int {
	return ((p.Channel*g.ChipsPerChannel+p.Chip)*g.DiesPerChip+p.Die)*g.PlanesPerDie + p.Plane
}

// PlaneAt inverts PlaneIndex.
func (g Geometry) PlaneAt(idx int) PlaneAddr {
	var p PlaneAddr
	p.Plane = idx % g.PlanesPerDie
	idx /= g.PlanesPerDie
	p.Die = idx % g.DiesPerChip
	idx /= g.DiesPerChip
	p.Chip = idx % g.ChipsPerChannel
	p.Channel = idx / g.ChipsPerChannel
	return p
}

// PPN linearizes a page address into a physical page number.
func (g Geometry) PPN(p PageAddr) uint64 {
	plane := uint64(g.PlaneIndex(p.PlaneAddr))
	cb := uint64(g.CellBits)
	inPlane := (uint64(p.Block)*uint64(g.WordlinesPerBlock)+uint64(p.WL))*cb + uint64(p.Kind)
	return plane*uint64(g.PagesPerPlane()) + inPlane
}

// PageAt inverts PPN.
func (g Geometry) PageAt(ppn uint64) PageAddr {
	perPlane := uint64(g.PagesPerPlane())
	plane := g.PlaneAt(int(ppn / perPlane))
	in := ppn % perPlane
	cb := uint64(g.CellBits)
	kind := PageKind(in % cb)
	wlIdx := in / cb
	return PageAddr{
		WordlineAddr: WordlineAddr{
			PlaneAddr: plane,
			Block:     int(wlIdx) / g.WordlinesPerBlock,
			WL:        int(wlIdx) % g.WordlinesPerBlock,
		},
		Kind: kind,
	}
}

// CheckPage validates a full page address, including the kind against
// the cell mode.
func (g Geometry) CheckPage(p PageAddr) error {
	if err := g.CheckWordline(p.WordlineAddr); err != nil {
		return err
	}
	if int(p.Kind) >= g.CellBits {
		return fmt.Errorf("%w: kind %v on %d-bit cells", ErrBadAddress, p.Kind, g.CellBits)
	}
	return nil
}

// ReadSROs returns the single-read-operation count of a baseline page
// read: the gray code's boundary count for the page (MLC 1-2; TLC 1-2-4).
func (g Geometry) ReadSROs(kind PageKind) int {
	if g.CellBits == 3 {
		return []int{1, 2, 4}[kind]
	}
	return []int{1, 2}[kind]
}
