package flash

import (
	"testing"

	"parabit/internal/ecc"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// spreadCorruptor flips exactly one bit per 512-byte region, staying
// within the SEC-DED correction capability.
type spreadCorruptor struct{ calls int }

func (c *spreadCorruptor) Corrupt(data []byte, pe, sros int) int {
	c.calls++
	n := 0
	for off := 0; off < len(data); off += 512 {
		data[off] ^= 1 << (c.calls % 8)
		n++
	}
	return n
}

// burstCorruptor puts two errors in the first sector: uncorrectable.
type burstCorruptor struct{}

func (burstCorruptor) Corrupt(data []byte, pe, sros int) int {
	data[0] ^= 1
	data[1] ^= 1
	return 2
}

func eccArray(t *testing.T, c Corruptor) *Array {
	t.Helper()
	geo := Small()
	geo.PageSize = 1024 // two 512 B ECC sectors per page
	a := NewArray(geo, DefaultTiming())
	codec, err := ecc.NewCodec(geo.PageSize, 512)
	if err != nil {
		t.Fatal(err)
	}
	a.SetECC(codec)
	a.SetCorruptor(c)
	if err := a.SetNoisyBaseline(true); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBaselineReadCorrectsRawErrors(t *testing.T) {
	a := eccArray(t, &spreadCorruptor{})
	wl := WordlineAddr{Block: 1}
	data := fillPattern(a.Geometry().PageSize, 0x5A)
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := a.Read(PageAddr{wl, LSBPage}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d not corrected", i)
		}
	}
	s := a.Stats()
	if s.InjectedFlips == 0 || s.CorrectedBits != s.InjectedFlips {
		t.Fatalf("injected %d, corrected %d", s.InjectedFlips, s.CorrectedBits)
	}
}

func TestUncorrectableReadSurfaces(t *testing.T) {
	a := eccArray(t, burstCorruptor{})
	wl := WordlineAddr{Block: 2}
	data := fillPattern(a.Geometry().PageSize, 0x77)
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Read(PageAddr{wl, LSBPage}, 0); err == nil {
		t.Fatal("double-error read succeeded")
	}
}

func TestParaBitBypassesECC(t *testing.T) {
	// The same corruptor hits a ParaBit result, and nothing corrects it:
	// the §4.4.3 asymmetry made executable.
	a := eccArray(t, &spreadCorruptor{})
	wl := WordlineAddr{Block: 3}
	x := fillPattern(a.Geometry().PageSize, 0xF0)
	y := fillPattern(a.Geometry().PageSize, 0x0F)
	if _, err := a.Program(PageAddr{wl, LSBPage}, x, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Program(PageAddr{wl, MSBPage}, y, 0); err != nil {
		t.Fatal(err)
	}
	res, err := a.BitwiseSense(latch.OpXor, wl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipCount == 0 {
		t.Fatal("no errors injected into the ParaBit result")
	}
	if res.Corrected != 0 {
		t.Fatal("ParaBit result was ECC-corrected, which hardware cannot do")
	}
	// The result actually differs from the ideal XOR.
	wrong := 0
	for i := range res.Data {
		if res.Data[i] != x[i]^y[i] {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("injected errors did not surface in the result")
	}
}

func TestErasedPagesSkipNoise(t *testing.T) {
	// Reading an unprogrammed page has no parity and must not inject
	// noise (there is nothing meaningful to read).
	a := eccArray(t, &spreadCorruptor{})
	got, _, err := a.Read(PageAddr{WordlineAddr{Block: 4}, LSBPage}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("erased read not all-ones")
		}
	}
	if a.Stats().InjectedFlips != 0 {
		t.Fatal("noise injected into erased read")
	}
}

func TestNoisyBaselineRequiresCodec(t *testing.T) {
	a := NewArray(Small(), DefaultTiming())
	if err := a.SetNoisyBaseline(true); err == nil {
		t.Fatal("noisy baseline without codec accepted")
	}
}

func TestEraseDropsParity(t *testing.T) {
	a := eccArray(t, &spreadCorruptor{})
	wl := WordlineAddr{Block: 5}
	data := fillPattern(a.Geometry().PageSize, 0x11)
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Erase(wl.PlaneAddr, wl.Block, 0); err != nil {
		t.Fatal(err)
	}
	if a.parityOf(PageAddr{wl, LSBPage}) != nil {
		t.Fatal("erase left stale parity")
	}
	// Reprogram works and is again protected.
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Read(PageAddr{wl, LSBPage}, 0); err != nil {
		t.Fatal(err)
	}
}

// decayingCorruptor injects a burst (uncorrectable) on the first call for
// a page, then nothing — modeling a read whose calibrated retry finds the
// shifted distributions.
type decayingCorruptor struct{ calls int }

func (c *decayingCorruptor) Corrupt(data []byte, pe, sros int) int {
	c.calls++
	if c.calls == 1 {
		data[0] ^= 1
		data[1] ^= 1 // two errors in one sector: uncorrectable
		return 2
	}
	return 0
}

func TestReadRetryRecovers(t *testing.T) {
	a := eccArray(t, &decayingCorruptor{})
	wl := WordlineAddr{Block: 6}
	data := fillPattern(a.Geometry().PageSize, 0x42)
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	got, done, err := a.Read(PageAddr{wl, LSBPage}, 0)
	if err != nil {
		t.Fatalf("read failed despite retry budget: %v", err)
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d wrong after retry", i)
		}
	}
	s := a.Stats()
	if s.ReadRetries != 1 {
		t.Fatalf("retries = %d, want 1", s.ReadRetries)
	}
	// The retry cost an extra SRO: 1 (LSB) + 1 (retry) = 2 senses.
	if s.SROs != 2 {
		t.Fatalf("SROs = %d, want 2", s.SROs)
	}
	if done < sim.Time(2*25*sim.Microsecond) {
		t.Fatalf("retry latency unaccounted: done at %v", done)
	}
}

// stubbornCorruptor always injects an uncorrectable burst.
type stubbornCorruptor struct{}

func (stubbornCorruptor) Corrupt(data []byte, pe, sros int) int {
	data[0] ^= 3
	return 2
}

func TestReadRetryExhaustion(t *testing.T) {
	a := eccArray(t, stubbornCorruptor{})
	wl := WordlineAddr{Block: 7}
	data := fillPattern(a.Geometry().PageSize, 0x77)
	if _, err := a.Program(PageAddr{wl, LSBPage}, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Read(PageAddr{wl, LSBPage}, 0); err == nil {
		t.Fatal("stubbornly corrupt page read succeeded")
	}
	if got := a.Stats().ReadRetries; got != int64(a.Timing().MaxReadRetries) {
		t.Fatalf("retries = %d, want the full budget %d", got, a.Timing().MaxReadRetries)
	}
}

func TestReadDisturbCounting(t *testing.T) {
	a := testArray()
	wl := WordlineAddr{Block: 9}
	page := fillPattern(a.Geometry().PageSize, 1)
	a.Program(PageAddr{wl, LSBPage}, page, 0)
	a.Program(PageAddr{wl, MSBPage}, page, 0)
	for i := 0; i < 10; i++ {
		if _, _, err := a.Read(PageAddr{wl, LSBPage}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// 10 LSB reads = 10 SROs of disturb on the block.
	if got := a.ReadCount(wl.PlaneAddr, wl.Block); got != 10 {
		t.Fatalf("read count = %d, want 10", got)
	}
	// A ParaBit XOR adds its 4 senses.
	if _, err := a.BitwiseSense(latch.OpXor, wl, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.ReadCount(wl.PlaneAddr, wl.Block); got != 14 {
		t.Fatalf("read count = %d, want 14", got)
	}
	// Erase resets the exposure.
	if _, err := a.Erase(wl.PlaneAddr, wl.Block, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.ReadCount(wl.PlaneAddr, wl.Block); got != 0 {
		t.Fatalf("read count after erase = %d", got)
	}
}
