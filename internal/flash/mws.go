package flash

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/sim"
)

// Flash-Cosmos multi-wordline sense: the array-side entry point for the
// fourth scheme. Where the pairwise paths above issue one sense per
// combine, BitwiseSenseMWS applies the read voltage to every operand
// wordline of one block at once and lets the NAND string compute the
// AND/OR fold in a single read operation.

// ErrBlockMismatch reports MWS operands that do not share a block: a
// multi-wordline sense selects wordlines of one NAND string, so all
// operands must be colocated in the same block (the FTL's placement job;
// callers fall back to pairwise chains when it fails).
var ErrBlockMismatch = fmt.Errorf("flash: MWS operands not colocated in one block")

// MWSCorruptor is an optional Corruptor extension for the Flash-Cosmos
// reliability model: the error rate of a multi-wordline sense grows with
// the number of selected wordlines (the sense margin divides across the
// series cells) and shrinks when the operands were ESP-programmed.
type MWSCorruptor interface {
	Corruptor
	CorruptMWS(data []byte, peCycles, wlCount int, esp bool) int
}

// corruptMWS routes MWS results through the model's multi-wordline hook
// when it has one, falling back to the single-sense model otherwise.
func (a *Array) corruptMWS(data []byte, pe, wlCount int, esp bool, exposure int) int {
	if a.noise == nil {
		return 0
	}
	if mc, ok := a.noise.(MWSCorruptor); ok {
		return mc.CorruptMWS(data, pe, wlCount, esp)
	}
	return a.corrupt(data, pe, 1, exposure)
}

// BitwiseSenseMWS performs a Flash-Cosmos reduction: one multi-wordline
// sense over the LSB pages of 2..MaxMWSOperands wordlines that share a
// block, computing AND/OR/NAND/NOR of all of them in a single read
// operation. Latency is Timing.MWSLatency(k) — roughly one SRO regardless
// of operand count — plus any injected jitter. Operands not written with
// ESP still compute correctly but sense with degraded margin, which the
// reliability model's MWSCorruptor hook prices.
func (a *Array) BitwiseSenseMWS(op latch.Op, wls []WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 2 {
		return SenseResult{}, fmt.Errorf("%w: MLC op %v on %d-bit cells", ErrCellMode, op, a.geo.CellBits)
	}
	if !latch.MWSComputable(op) {
		return SenseResult{}, fmt.Errorf("flash: op %v has no multi-wordline sense form", op)
	}
	k := len(wls)
	if k < 2 || k > latch.MaxMWSOperands {
		return SenseResult{}, fmt.Errorf("flash: MWS of %d operands, want 2..%d", k, latch.MaxMWSOperands)
	}
	first := wls[0]
	maxPE := 0
	esp := true
	for _, w := range wls {
		if err := a.geo.CheckWordline(w); err != nil {
			return SenseResult{}, err
		}
		if w.PlaneAddr != first.PlaneAddr || w.Block != first.Block {
			return SenseResult{}, fmt.Errorf("%w: %v vs %v", ErrBlockMismatch, first, w)
		}
		if pe := a.peCycles(w); pe > maxPE {
			maxPE = pe
		}
		esp = esp && a.IsESP(PageAddr{WordlineAddr: w, Kind: LSBPage})
	}
	// The control program is built and validated even though the fold below
	// uses the word-wide kernel: it keeps the MWS path under the same
	// legality rails (latch.Validate + the latchseq analyzer) as every
	// other sequence in the device.
	seq := latch.ForOpMWS(op, k)
	if err := seq.Validate(); err != nil {
		return SenseResult{}, err
	}
	jitter, ferr := a.checkFault(FaultSense, first.PlaneAddr, first.Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(first.PlaneAddr)
	_, end := pl.sense.ReserveLabeled(at, a.timing.MWSLatency(k)+jitter, "mws")
	acc := a.pageBits(first, LSBPage)
	for _, w := range wls[1:] {
		next := a.pageBits(w, LSBPage)
		switch op {
		case latch.OpAnd, latch.OpNand:
			acc = applyOp(latch.OpAnd, acc, next)
		case latch.OpOr, latch.OpNor:
			acc = applyOp(latch.OpOr, acc, next)
		}
	}
	switch op {
	case latch.OpNand, latch.OpNor:
		acc = applyOp(latch.OpNotLSB, acc, acc)
	}
	// One sense disturbs every selected wordline once; exposure is the
	// block's read count before this operation.
	exposure := 0
	for _, w := range wls {
		if e := a.noteReads(w, 1); e > exposure {
			exposure = e
		}
	}
	res := SenseResult{Data: acc, Ready: end}
	if a.noise != nil {
		res.FlipCount = a.corruptMWS(acc, maxPE, k, esp, exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(seq.SROs())
	a.stats.MWSSenses++
	a.stats.BitwiseOps++
	return res, nil
}

// BitwiseChainMWS chains consecutive multi-wordline senses on one plane:
// each chunk of 2..MaxMWSOperands block-colocated wordlines folds inside
// its NAND strings, and chunk results accumulate in the plane's latches
// exactly as chained location-free senses do — no program between
// chunks. This is how a reduction wider than the sense-margin cap stays
// on the single-sense cost curve: k operands cost ceil(k/8) serialized
// MWS reads, not a paired-relocation program per chunk. NAND/NOR invert
// once at the end; the per-chunk programs use the op's non-inverted
// base so the accumulation stays associative.
func (a *Array) BitwiseChainMWS(op latch.Op, chunks [][]WordlineAddr, at sim.Time) (SenseResult, error) {
	if a.geo.CellBits != 2 {
		return SenseResult{}, fmt.Errorf("%w: MLC MWS chain on %d-bit cells", ErrCellMode, a.geo.CellBits)
	}
	if !latch.MWSComputable(op) {
		return SenseResult{}, fmt.Errorf("flash: op %v has no multi-wordline sense form", op)
	}
	if len(chunks) < 2 {
		return SenseResult{}, fmt.Errorf("flash: MWS chain of %d chunks, want >= 2", len(chunks))
	}
	base := op
	switch op {
	case latch.OpNand:
		base = latch.OpAnd
	case latch.OpNor:
		base = latch.OpOr
	}
	var plane PlaneAddr
	var dur sim.Duration
	maxPE, maxChunk, srOs := 0, 0, 0
	esp := true
	for ci, wls := range chunks {
		k := len(wls)
		if k < 2 || k > latch.MaxMWSOperands {
			return SenseResult{}, fmt.Errorf("flash: MWS chunk of %d operands, want 2..%d", k, latch.MaxMWSOperands)
		}
		first := wls[0]
		if ci == 0 {
			plane = first.PlaneAddr
		}
		for _, w := range wls {
			if err := a.geo.CheckWordline(w); err != nil {
				return SenseResult{}, err
			}
			if w.PlaneAddr != plane {
				return SenseResult{}, fmt.Errorf("%w: %v vs %v", ErrPlaneMismatch, plane, w.PlaneAddr)
			}
			if w.Block != first.Block {
				return SenseResult{}, fmt.Errorf("%w: %v vs %v", ErrBlockMismatch, first, w)
			}
			if pe := a.peCycles(w); pe > maxPE {
				maxPE = pe
			}
			esp = esp && a.IsESP(PageAddr{WordlineAddr: w, Kind: LSBPage})
		}
		seq := latch.ForOpMWS(base, k)
		if err := seq.Validate(); err != nil {
			return SenseResult{}, err
		}
		srOs += seq.SROs()
		dur += a.timing.MWSLatency(k)
		if k > maxChunk {
			maxChunk = k
		}
	}
	jitter, ferr := a.checkFault(FaultSense, plane, chunks[0][0].Block, at)
	if ferr != nil {
		return SenseResult{}, ferr
	}
	pl := a.planeAt(plane)
	_, end := pl.sense.ReserveLabeled(at, dur+jitter, "mws")
	var acc []byte
	for _, wls := range chunks {
		chunkAcc := a.pageBits(wls[0], LSBPage)
		for _, w := range wls[1:] {
			chunkAcc = applyOp(base, chunkAcc, a.pageBits(w, LSBPage))
		}
		if acc == nil {
			acc = chunkAcc
		} else {
			acc = applyOp(base, acc, chunkAcc)
		}
	}
	switch op {
	case latch.OpNand, latch.OpNor:
		acc = applyOp(latch.OpNotLSB, acc, acc)
	}
	exposure := 0
	for _, wls := range chunks {
		for _, w := range wls {
			if e := a.noteReads(w, 1); e > exposure {
				exposure = e
			}
		}
	}
	res := SenseResult{Data: acc, Ready: end}
	if a.noise != nil {
		// Each sense divides its margin across its own chunk only; the
		// widest chunk sets the chain's error exposure.
		res.FlipCount = a.corruptMWS(acc, maxPE, maxChunk, esp, exposure)
		a.stats.InjectedFlips += int64(res.FlipCount)
	}
	a.stats.SROs += int64(srOs)
	a.stats.MWSSenses += int64(len(chunks))
	a.stats.BitwiseOps++
	return res, nil
}

// BitwiseMWS performs BitwiseSenseMWS and transfers the result to the
// controller.
func (a *Array) BitwiseMWS(op latch.Op, wls []WordlineAddr, at sim.Time) ([]byte, sim.Time, error) {
	res, err := a.BitwiseSenseMWS(op, wls, at)
	if err != nil {
		return nil, 0, err
	}
	done := a.transferOut(wls[0].Channel, res.Ready, len(res.Data))
	return res.Data, done, nil
}
