package persist

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

// Config parameterizes a store.
type Config struct {
	// Dir is the store directory.
	Dir string
	// SnapshotEvery rotates to a fresh snapshot after this many committed
	// journal records; 0 means DefaultSnapshotEvery, negative disables
	// automatic rotation (journal grows until Close).
	SnapshotEvery int
}

// DefaultSnapshotEvery is the journal length that triggers compaction
// when Config.SnapshotEvery is zero.
const DefaultSnapshotEvery = 256

func (c Config) every() int {
	if c.SnapshotEvery == 0 {
		return DefaultSnapshotEvery
	}
	return c.SnapshotEvery
}

// SnapshotWriter serializes the full device state into w. The store
// calls it at rotation points with the device quiesced (under the
// scheduler's mutex).
type SnapshotWriter func(w io.Writer) error

const currentFile = "CURRENT"

// Snapshot container framing.
var (
	snapMagic = []byte("PBSNAP1\n")
	snapEnd   = []byte("PBSNEND\n")
)

// Store is the live persistence handle of one mounted device: an open
// journal plus the rotation machinery. One Store belongs to one device
// and is driven under the scheduler's mutex, but it carries its own lock
// so that direct (sched.Exclusive-style) callers are safe too.
type Store struct {
	dir   string // immutable
	every int    // immutable; <0 disables auto rotation

	mu         sync.Mutex
	cut        CutInjector // guarded by mu
	epoch      uint64      // guarded by mu
	journal    *os.File    // guarded by mu; nil after Close
	sinceSnap  int         // committed records since last rotation; guarded by mu
	nextSeq    uint64      // guarded by mu
	lastIntent uint64      // guarded by mu
	haveIntent bool        // guarded by mu
	dead       bool        // power lost; guarded by mu
	stats      Stats       // guarded by mu

	// Telemetry handles; all nil (free no-ops) until SetTelemetry runs.
	cJournalBytes *telemetry.Counter // guarded by mu
	cJournalRecs  *telemetry.Counter // guarded by mu
	cSnapshots    *telemetry.Counter // guarded by mu
	cReplayed     *telemetry.Counter // guarded by mu
	gRecoveryUS   *telemetry.Gauge   // guarded by mu
}

func snapPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%d.bin", epoch))
}

func journalPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%d.log", epoch))
}

// Create initializes a fresh store directory with an epoch-1 snapshot of
// the device's current state and an empty journal. It refuses a
// directory that already holds a store.
func Create(cfg Config, snap SnapshotWriter) (*Store, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create %s: %w", cfg.Dir, err)
	}
	cur := filepath.Join(cfg.Dir, currentFile)
	if _, err := os.Stat(cur); err == nil {
		return nil, fmt.Errorf("persist: %s already holds a store", cfg.Dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("persist: stat %s: %w", cur, err)
	}
	if err := writeSnapshotFile(snapPath(cfg.Dir, 1), snap); err != nil {
		return nil, err
	}
	jf, err := os.OpenFile(journalPath(cfg.Dir, 1), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: create journal: %w", err)
	}
	if err := writeFileAtomic(cur, []byte("1\n")); err != nil {
		cerr := jf.Close()
		return nil, errors.Join(err, cerr)
	}
	return &Store{dir: cfg.Dir, every: cfg.every(), epoch: 1, journal: jf}, nil
}

// SetCutInjector installs (or with nil removes) the power-cut decider.
// The device wires its fault engine here when a plan with power-cut
// rules is installed.
func (s *Store) SetCutInjector(ci CutInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cut = ci
}

// SetTelemetry attaches (or, with nil sink handles, detaches) the
// persist.* telemetry lanes and seeds them with the activity so far, so
// enabling telemetry after mount still shows the recovery that happened.
func (s *Store) SetTelemetry(sink *telemetry.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cJournalBytes = sink.Counter("persist.journal.bytes")
	s.cJournalRecs = sink.Counter("persist.journal.records")
	s.cSnapshots = sink.Counter("persist.snapshots")
	s.cReplayed = sink.Counter("persist.replay.records")
	s.gRecoveryUS = sink.Gauge("persist.recovery_us")
	s.cJournalBytes.Add(s.stats.JournalBytes)
	s.cJournalRecs.Add(s.stats.JournalRecords)
	s.cSnapshots.Add(s.stats.Snapshots)
	s.cReplayed.Add(s.stats.ReplayedRecords)
	s.gRecoveryUS.Set(int64(s.stats.RecoveryTime / sim.Microsecond))
}

// Stats returns a copy of the persistence counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// deadLocked reports (and latches) whether power is gone, folding in
// cuts the flash-side injector fired mid-program.
func (s *Store) deadLocked() bool {
	if s.dead {
		return true
	}
	if s.cut != nil && s.cut.PowerDead() {
		s.dead = true
		return true
	}
	return false
}

// cutLocked consults the injector at one boundary and latches death.
func (s *Store) cutLocked(point string) bool {
	if s.cut != nil && s.cut.CutAtBoundary(point) {
		s.dead = true
		return true
	}
	return false
}

func (s *Store) appendLocked(payload []byte) error {
	frame := appendFrame(nil, payload)
	if _, err := s.journal.Write(frame); err != nil {
		return fmt.Errorf("persist: journal append: %w", err)
	}
	s.stats.JournalRecords++
	s.stats.JournalBytes += int64(len(frame))
	s.cJournalRecs.Add(1)
	s.cJournalBytes.Add(int64(len(frame)))
	return nil
}

// AppendIntent journals the intent to execute rec and returns its
// sequence number for the matching AppendCommit. The caller must not
// have acknowledged the operation yet: a power cut here (before or
// after the bytes land) leaves the operation unacknowledged and
// recovery will not apply it.
func (s *Store) AppendIntent(rec Record) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deadLocked() {
		return 0, ErrPowerCut
	}
	if s.journal == nil {
		return 0, fmt.Errorf("persist: store closed")
	}
	if s.cutLocked(PointPreJournal) {
		return 0, ErrPowerCut
	}
	if !rec.shapeOK() {
		return 0, fmt.Errorf("persist: malformed %s record: %d lpns / %d pages",
			rec.Op, len(rec.LPNs), len(rec.Pages))
	}
	s.nextSeq++
	rec.Seq = s.nextSeq
	if err := s.appendLocked(encodeIntent(rec)); err != nil {
		return 0, err
	}
	s.lastIntent, s.haveIntent = rec.Seq, true
	if s.cutLocked(PointPostJournal) {
		return rec.Seq, ErrPowerCut
	}
	return rec.Seq, nil
}

// AppendCommit journals the commit for an executed intent; once it
// returns nil the operation is durable and may be acknowledged. A cut
// rides the pre-journal boundary here too (the commit never lands → the
// write stays unacknowledged and unreplayed); there is no post-append
// cut because a durable commit is indistinguishable from an
// acknowledged write.
func (s *Store) AppendCommit(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.deadLocked() {
		return ErrPowerCut
	}
	if s.journal == nil {
		return fmt.Errorf("persist: store closed")
	}
	if s.cutLocked(PointPreJournal) {
		return ErrPowerCut
	}
	if !s.haveIntent || s.lastIntent != seq {
		return fmt.Errorf("persist: commit %d without matching intent", seq)
	}
	if err := s.appendLocked(encodeCommit(seq)); err != nil {
		return err
	}
	s.haveIntent = false
	s.sinceSnap++
	return nil
}

// ShouldSnapshot reports whether the journal has grown past the
// rotation threshold.
func (s *Store) ShouldSnapshot() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.every > 0 && s.sinceSnap >= s.every && !s.dead && s.journal != nil
}

// Snapshot rotates to a fresh epoch: the device state snap serializes
// becomes the new baseline and the journal restarts empty. The caller
// must hold the device quiesced.
func (s *Store) Snapshot(snap SnapshotWriter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return fmt.Errorf("persist: store closed")
	}
	if s.deadLocked() {
		return ErrPowerCut
	}
	return s.rotateLocked(snap)
}

// rotateLocked stages the next epoch's snapshot, consults the
// pre-snapshot cut point, then atomically swaps CURRENT over and
// retires the old epoch's files.
func (s *Store) rotateLocked(snap SnapshotWriter) error {
	next := s.epoch + 1
	tmp := snapPath(s.dir, next) + ".tmp"
	if err := writeSnapshotFile(tmp, snap); err != nil {
		return err
	}
	if s.cutLocked(PointPreSnapshot) {
		// Power died with the new snapshot staged but not swapped in: the
		// old epoch stays authoritative, and the orphan .tmp file is swept
		// on the next mount.
		return ErrPowerCut
	}
	if err := os.Rename(tmp, snapPath(s.dir, next)); err != nil {
		return fmt.Errorf("persist: swap snapshot: %w", err)
	}
	jf, err := os.OpenFile(journalPath(s.dir, next), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: rotate journal: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, currentFile), []byte(strconv.FormatUint(next, 10)+"\n")); err != nil {
		cerr := jf.Close()
		return errors.Join(err, cerr)
	}
	old := s.epoch
	var closeErr error
	if s.journal != nil {
		closeErr = s.journal.Close()
	}
	s.journal = jf
	s.epoch = next
	s.sinceSnap = 0
	s.haveIntent = false
	s.stats.Snapshots++
	s.cSnapshots.Add(1)
	// Best-effort retirement of the superseded epoch; stray files are
	// harmless and swept at the next mount.
	_ = os.Remove(snapPath(s.dir, old))
	_ = os.Remove(journalPath(s.dir, old))
	return closeErr
}

// Close shuts the store down. On a live store it takes a final
// compaction snapshot (so the next mount replays nothing) and closes
// the journal; on a power-dead store it only releases the file handle —
// the on-disk state stays exactly as the crash left it.
func (s *Store) Close(snap SnapshotWriter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	var rerr error
	if !s.deadLocked() {
		if rerr = s.rotateLocked(snap); errors.Is(rerr, ErrPowerCut) {
			rerr = nil
		}
	}
	cerr := s.journal.Close()
	s.journal = nil
	return errors.Join(rerr, cerr)
}

// Abandon releases the journal file handle without any final snapshot
// or rotation — the on-disk state stays exactly as the last append left
// it, as after a crash. The store is dead afterwards: every further
// append fails with ErrPowerCut. Use it to simulate abrupt process
// death where Close would be too graceful.
func (s *Store) Abandon() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = true
	if s.journal != nil {
		_ = s.journal.Close()
		s.journal = nil
	}
}

// noteRecovery folds mount-time replay accounting into the store's
// stats (Resume calls it; the telemetry lanes pick it up on attach).
func (s *Store) noteRecovery(replayed, skipped, torn int64, horizon sim.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.ReplayedRecords = replayed
	s.stats.SkippedIntents = skipped
	s.stats.TornBytes = torn
	s.stats.RecoveryTime = horizon
}

// Recovery is the decoded on-disk state of a store directory: the
// snapshot body plus the scanned journal tail, ready for the device to
// rebuild and replay. Resume turns it into a live Store.
type Recovery struct {
	dir      string
	epoch    uint64
	snapshot []byte
	entries  []Entry
	torn     int64
}

// OpenDir reads and validates a store directory: CURRENT, the current
// epoch's checksummed snapshot, and the journal scanned up to its first
// torn frame.
func OpenDir(dir string) (*Recovery, error) {
	curBytes, err := os.ReadFile(filepath.Join(dir, currentFile))
	if err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	epoch, err := strconv.ParseUint(strings.TrimSpace(string(curBytes)), 10, 64)
	if err != nil || epoch == 0 {
		return nil, fmt.Errorf("%w: CURRENT %q", ErrCorrupt, strings.TrimSpace(string(curBytes)))
	}
	body, err := readSnapshotFile(snapPath(dir, epoch))
	if err != nil {
		return nil, err
	}
	journal, err := os.ReadFile(journalPath(dir, epoch))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("persist: read journal: %w", err)
	}
	entries, used, err := ScanJournal(journal)
	if err != nil {
		return nil, err
	}
	return &Recovery{
		dir:      dir,
		epoch:    epoch,
		snapshot: body,
		entries:  entries,
		torn:     int64(len(journal)) - used,
	}, nil
}

// Snapshot returns the verified snapshot body.
func (r *Recovery) Snapshot() []byte { return r.snapshot }

// Entries returns the scanned journal records in append order.
func (r *Recovery) Entries() []Entry { return r.entries }

// TornBytes returns the length of the truncated torn tail, if any.
func (r *Recovery) TornBytes() int64 { return r.torn }

// Epoch returns the epoch the recovery was mounted from.
func (r *Recovery) Epoch() uint64 { return r.epoch }

// Resume completes a mount: with the device rebuilt and the journal
// replayed, it rotates immediately to a fresh epoch (compacting the
// replayed journal and discarding any torn tail) and returns the live
// store. replayed/skipped counts and the recovery horizon feed the
// persist.* telemetry lanes.
func (r *Recovery) Resume(cfg Config, snap SnapshotWriter, horizon sim.Duration) (*Store, error) {
	if cfg.Dir == "" {
		cfg.Dir = r.dir
	}
	s := &Store{dir: cfg.Dir, every: cfg.every(), epoch: r.epoch}
	var replayed, skipped int64
	for _, e := range r.entries {
		if e.Committed {
			replayed++
		} else {
			skipped++
		}
	}
	s.noteRecovery(replayed, skipped, r.torn, horizon)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.rotateLocked(snap); err != nil {
		return nil, err
	}
	sweepStale(s.dir, s.epoch)
	return s, nil
}

// sweepStale removes orphan .tmp files and files of retired epochs that
// a crash mid-rotation left behind.
func sweepStale(dir string, epoch uint64) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keepSnap := filepath.Base(snapPath(dir, epoch))
	keepJournal := filepath.Base(journalPath(dir, epoch))
	for _, de := range names {
		name := de.Name()
		if name == currentFile || name == keepSnap || name == keepJournal {
			continue
		}
		if strings.HasSuffix(name, ".tmp") ||
			strings.HasPrefix(name, "snap-") || strings.HasPrefix(name, "journal-") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// crcWriter streams a CRC32 over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// writeSnapshotFile writes magic | body | crc32(body) | end-magic to
// path, syncing before returning so a subsequent rename publishes
// complete bytes.
func writeSnapshotFile(path string, snap SnapshotWriter) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	cw := &crcWriter{w: f}
	err = func() error {
		if _, err := f.Write(snapMagic); err != nil {
			return err
		}
		if err := snap(cw); err != nil {
			return err
		}
		var footer [4]byte
		footer[0] = byte(cw.crc)
		footer[1] = byte(cw.crc >> 8)
		footer[2] = byte(cw.crc >> 16)
		footer[3] = byte(cw.crc >> 24)
		if _, err := f.Write(footer[:]); err != nil {
			return err
		}
		if _, err := f.Write(snapEnd); err != nil {
			return err
		}
		return f.Sync()
	}()
	cerr := f.Close()
	if err != nil {
		_ = os.Remove(path)
		return fmt.Errorf("persist: write snapshot: %w", errors.Join(err, cerr))
	}
	if cerr != nil {
		_ = os.Remove(path)
		return fmt.Errorf("persist: write snapshot: %w", cerr)
	}
	return nil
}

// readSnapshotFile verifies the container framing and checksum and
// returns the body.
func readSnapshotFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}
	min := len(snapMagic) + 4 + len(snapEnd)
	if len(raw) < min ||
		string(raw[:len(snapMagic)]) != string(snapMagic) ||
		string(raw[len(raw)-len(snapEnd):]) != string(snapEnd) {
		return nil, fmt.Errorf("%w: snapshot framing", ErrCorrupt)
	}
	body := raw[len(snapMagic) : len(raw)-len(snapEnd)-4]
	footer := raw[len(raw)-len(snapEnd)-4 : len(raw)-len(snapEnd)]
	want := uint32(footer[0]) | uint32(footer[1])<<8 | uint32(footer[2])<<16 | uint32(footer[3])<<24
	if crc32.ChecksumIEEE(body) != want {
		return nil, fmt.Errorf("%w: snapshot checksum", ErrCorrupt)
	}
	return body, nil
}

// writeFileAtomic writes data to path via a temporary file and rename.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("persist: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: publish %s: %w", path, err)
	}
	return nil
}
