package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"parabit/internal/binio"
)

// Op identifies which device write path a journaled record replays
// through. The device owns the mapping from Op to its write methods;
// the journal only guarantees the shape (operand count) per Op.
type Op uint8

// Journaled operations.
const (
	// OpWrite is the scrambled host data path. The journal stores the
	// pre-scramble bytes; replay re-scrambles them.
	OpWrite Op = iota
	// OpWriteOperand is a plain striped operand write.
	OpWriteOperand
	// OpWritePair co-locates two operands in one wordline.
	OpWritePair
	// OpWriteLSBPair aligns two operands on LSB pages of one plane.
	OpWriteLSBPair
	// OpWriteLSBGroup aligns k operands on LSB pages of one plane.
	OpWriteLSBGroup
	// OpWriteMWSGroup colocates k ESP operands in one block.
	OpWriteMWSGroup
	// OpWriteOnPlane pins one operand to the plane index in Plane.
	OpWriteOnPlane
	// OpWriteTriple co-locates three operands in one TLC wordline.
	OpWriteTriple
	// OpReclaimInternal trims the controller's internal page pool.
	OpReclaimInternal
	numOps
)

var opNames = [...]string{
	"write", "operand", "pair", "lsb-pair", "lsb-group", "mws-group",
	"on-plane", "triple", "reclaim",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Record is one journaled operation: the write kind, its sequence
// number, and the host-provided addresses and payloads needed to
// re-execute it during replay.
type Record struct {
	Op  Op
	Seq uint64
	// Plane is the target plane index for OpWriteOnPlane, 0 otherwise.
	Plane int64
	LPNs  []uint64
	Pages [][]byte
}

// Entry is one scanned journal record with its commit status. Only
// committed entries are replayed.
type Entry struct {
	Record    Record
	Committed bool
}

// Framing and decode limits. A frame is u32 payload length, u32 IEEE
// CRC32 of the payload, then the payload.
const (
	frameHeader = 8
	// MaxRecord caps one frame's payload; larger length prefixes are
	// treated as garbage (end of valid journal).
	MaxRecord = 1 << 24
	// MaxGroupLPNs caps the operand count of one journaled group write.
	MaxGroupLPNs = 4096
	// maxPage caps one journaled page payload.
	maxPage = 1 << 20
)

// Payload type tags.
const (
	payloadIntent uint8 = 1
	payloadCommit uint8 = 2
)

// shapeOK reports whether the record's operand count is legal for its
// op. Deeper validation (page size, LPN range, geometry) is the
// device's job during replay.
func (r Record) shapeOK() bool {
	switch r.Op {
	case OpWrite, OpWriteOperand, OpWriteOnPlane:
		return len(r.LPNs) == 1 && len(r.Pages) == 1
	case OpWritePair, OpWriteLSBPair:
		return len(r.LPNs) == 2 && len(r.Pages) == 2
	case OpWriteTriple:
		return len(r.LPNs) == 3 && len(r.Pages) == 3
	case OpWriteLSBGroup, OpWriteMWSGroup:
		return len(r.LPNs) >= 1 && len(r.LPNs) <= MaxGroupLPNs && len(r.LPNs) == len(r.Pages)
	case OpReclaimInternal:
		return len(r.LPNs) == 0 && len(r.Pages) == 0
	}
	return false
}

// encodeIntent serializes an intent payload.
func encodeIntent(r Record) []byte {
	var buf bytes.Buffer
	b := binio.NewWriter(&buf)
	b.U8(payloadIntent)
	b.U8(uint8(r.Op))
	b.U64(r.Seq)
	b.I64(r.Plane)
	b.U32(uint32(len(r.LPNs)))
	for _, lpn := range r.LPNs {
		b.U64(lpn)
	}
	b.U32(uint32(len(r.Pages)))
	for _, p := range r.Pages {
		b.Bytes(p)
	}
	return buf.Bytes()
}

// encodeCommit serializes a commit payload for seq.
func encodeCommit(seq uint64) []byte {
	var buf bytes.Buffer
	b := binio.NewWriter(&buf)
	b.U8(payloadCommit)
	b.U64(seq)
	return buf.Bytes()
}

// appendFrame appends the CRC frame for payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// decodePayload parses one CRC-verified payload into its type tag and,
// for intents, the record. Every length is bounds-checked and trailing
// garbage is rejected, so hostile bytes fail cleanly instead of
// panicking or over-allocating.
func decodePayload(payload []byte) (uint8, Record, error) {
	r := bytes.NewReader(payload)
	b := binio.NewReader(r, maxPage)
	typ := b.U8()
	var rec Record
	switch typ {
	case payloadCommit:
		rec.Seq = b.U64()
	case payloadIntent:
		rec.Op = Op(b.U8())
		rec.Seq = b.U64()
		rec.Plane = b.I64()
		nLPN := b.U32()
		if b.Err() == nil && nLPN > MaxGroupLPNs {
			return 0, Record{}, fmt.Errorf("%w: %d lpns in one record", ErrCorrupt, nLPN)
		}
		for i := uint32(0); i < nLPN && b.Err() == nil; i++ {
			rec.LPNs = append(rec.LPNs, b.U64())
		}
		nPages := b.U32()
		if b.Err() == nil && nPages > MaxGroupLPNs {
			return 0, Record{}, fmt.Errorf("%w: %d pages in one record", ErrCorrupt, nPages)
		}
		for i := uint32(0); i < nPages && b.Err() == nil; i++ {
			rec.Pages = append(rec.Pages, b.Bytes())
		}
	default:
		return 0, Record{}, fmt.Errorf("%w: payload type %d", ErrCorrupt, typ)
	}
	if err := b.Err(); err != nil {
		return 0, Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if r.Len() != 0 {
		return 0, Record{}, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, r.Len())
	}
	if typ == payloadIntent && !rec.shapeOK() {
		return 0, Record{}, fmt.Errorf("%w: %s record with %d lpns / %d pages",
			ErrCorrupt, rec.Op, len(rec.LPNs), len(rec.Pages))
	}
	return typ, rec, nil
}

// ScanJournal walks raw journal bytes frame by frame and returns the
// scanned entries in order plus the byte offset where valid frames end.
// An incomplete, over-long or checksum-failing frame ends the scan — the
// torn tail a crash mid-append leaves — and is reported through the
// offset, not as an error. A frame that passes its checksum but decodes
// to nonsense (unknown type, shape violation, commit without its
// intent, non-monotonic sequence) is ErrCorrupt: that journal was never
// written by this store and must be rejected, not silently truncated.
func ScanJournal(b []byte) ([]Entry, int64, error) {
	var entries []Entry
	off := 0
	lastSeq := uint64(0)
	pending := -1
	for {
		rest := b[off:]
		if len(rest) < frameHeader {
			break
		}
		ln := binary.LittleEndian.Uint32(rest[0:4])
		if ln > MaxRecord || int(ln) > len(rest)-frameHeader {
			break
		}
		payload := rest[frameHeader : frameHeader+int(ln)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			break
		}
		typ, rec, err := decodePayload(payload)
		if err != nil {
			return nil, int64(off), err
		}
		switch typ {
		case payloadIntent:
			if rec.Seq <= lastSeq {
				return nil, int64(off), fmt.Errorf("%w: sequence %d after %d", ErrCorrupt, rec.Seq, lastSeq)
			}
			lastSeq = rec.Seq
			entries = append(entries, Entry{Record: rec})
			pending = len(entries) - 1
		case payloadCommit:
			if pending < 0 || entries[pending].Record.Seq != rec.Seq {
				return nil, int64(off), fmt.Errorf("%w: commit %d without matching intent", ErrCorrupt, rec.Seq)
			}
			entries[pending].Committed = true
			pending = -1
		}
		off += frameHeader + int(ln)
	}
	return entries, int64(off), nil
}
