package persist_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"parabit/internal/persist"
	"parabit/internal/ssd"
)

// buildSeedJournal runs a real device through every journaled layout and
// crashes it, returning the raw journal bytes plus the Create-time
// snapshot and CURRENT files the fuzz harness replants per iteration.
func buildSeedJournal(f *testing.F) (journal, snapshot, current []byte) {
	dir := f.TempDir()
	d, err := ssd.Create(dir, ssd.SmallConfig(), 0)
	if err != nil {
		f.Fatal(err)
	}
	page := func(seed byte) []byte {
		p := make([]byte, d.PageSize())
		for i := range p {
			p[i] = seed + byte(i)
		}
		return p
	}
	if _, err := d.Write(0, page(1), 0); err != nil {
		f.Fatal(err)
	}
	if _, err := d.WriteOperand(1, page(2), 0); err != nil {
		f.Fatal(err)
	}
	if _, err := d.WriteOperandPair(2, 3, page(3), page(4), 0); err != nil {
		f.Fatal(err)
	}
	if _, err := d.WriteOperandLSBGroup([]uint64{4, 5}, [][]byte{page(5), page(6)}, 0); err != nil {
		f.Fatal(err)
	}
	if _, err := d.WriteOperandMWSGroup([]uint64{6, 7}, [][]byte{page(7), page(8)}, 0); err != nil {
		f.Fatal(err)
	}
	if _, err := d.WriteOperandOnPlane(1, 8, page(9), 0); err != nil {
		f.Fatal(err)
	}
	d.Crash()
	journal, err = os.ReadFile(filepath.Join(dir, "journal-1.log"))
	if err != nil {
		f.Fatal(err)
	}
	snapshot, err = os.ReadFile(filepath.Join(dir, "snap-1.bin"))
	if err != nil {
		f.Fatal(err)
	}
	current, err = os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		f.Fatal(err)
	}
	return journal, snapshot, current
}

// FuzzJournalReplay feeds arbitrary bytes to the mount path as the
// journal of an otherwise-valid store. The contract under mutation is
// recover-or-reject: ssd.Open must never panic, and when it succeeds
// the recovered device must agree exactly with an independent golden
// model built from persist.ScanJournal over the same bytes — committed
// entries applied last-write-wins, nothing else. A semantically corrupt
// journal must fail the mount; it must never produce a silently
// different mapping.
func FuzzJournalReplay(f *testing.F) {
	valid, snapshot, current := buildSeedJournal(f)

	f.Add(valid)
	f.Add([]byte{})
	for _, cut := range []int{1, 7, 8, 20, len(valid) / 2, len(valid) - 3} {
		if cut >= 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	flipped := bytes.Clone(valid)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	f.Add(append(bytes.Clone(valid), valid...))         // replayed seqs repeat: corrupt
	f.Add(append(bytes.Clone(valid), 0xde, 0xad, 0xbe)) // torn tail

	f.Fuzz(func(t *testing.T, journal []byte) {
		dir := t.TempDir()
		for name, b := range map[string][]byte{
			"CURRENT": current, "snap-1.bin": snapshot, "journal-1.log": journal,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		entries, used, scanErr := persist.ScanJournal(journal)
		d, info, err := ssd.Open(dir, 0)
		if scanErr != nil {
			if err == nil {
				d.Crash()
				t.Fatalf("scan rejects journal (%v) but mount succeeded", scanErr)
			}
			return
		}
		if err != nil {
			// Replay-time rejection (impossible LPN, wrong page size,
			// wrong geometry for the op) is a legal outcome for mutated
			// bytes; silent acceptance is what the golden check below
			// guards against.
			return
		}
		defer d.Crash()
		if torn := int64(len(journal)) - used; info.TornBytes != torn {
			t.Fatalf("mount reports %d torn bytes, scan says %d", info.TornBytes, torn)
		}
		golden := map[uint64][]byte{}
		committed := 0
		for _, e := range entries {
			if !e.Committed {
				continue
			}
			committed++
			for i, lpn := range e.Record.LPNs {
				golden[lpn] = e.Record.Pages[i]
			}
		}
		if int(info.ReplayedRecords) != committed {
			t.Fatalf("mount replayed %d records, golden model has %d", info.ReplayedRecords, committed)
		}
		for lpn, want := range golden {
			got, _, err := d.Read(lpn, 0)
			if err != nil {
				t.Fatalf("lpn %d committed in journal but unreadable: %v", lpn, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("lpn %d disagrees with golden model after replay", lpn)
			}
		}
		if err := d.FTL().CheckInvariants(); err != nil {
			t.Fatalf("recovered FTL fails audit: %v", err)
		}
	})
}
