package persist

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

// frames builds a raw journal from alternating intent/commit payloads.
func frames(payloads ...[]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = appendFrame(out, p)
	}
	return out
}

func intentRec(seq uint64, lpn uint64, page []byte) Record {
	return Record{Op: OpWrite, Seq: seq, LPNs: []uint64{lpn}, Pages: [][]byte{page}}
}

// TestScanJournalRoundTrip pins the framing: intents and commits come
// back in order with the right commit status, and an uncommitted final
// intent is reported but not committed.
func TestScanJournalRoundTrip(t *testing.T) {
	raw := frames(
		encodeIntent(intentRec(1, 7, []byte("aaaa"))),
		encodeCommit(1),
		encodeIntent(intentRec(2, 9, []byte("bbbb"))),
	)
	entries, used, err := ScanJournal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if used != int64(len(raw)) {
		t.Fatalf("used %d of %d bytes", used, len(raw))
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if !entries[0].Committed || entries[0].Record.Seq != 1 || entries[0].Record.LPNs[0] != 7 {
		t.Fatalf("entry 0 wrong: %+v", entries[0])
	}
	if entries[1].Committed {
		t.Fatal("uncommitted intent scanned as committed")
	}
	if !bytes.Equal(entries[1].Record.Pages[0], []byte("bbbb")) {
		t.Fatalf("payload mangled: %q", entries[1].Record.Pages[0])
	}
}

// TestScanJournalTornTail pins the crash contract: an incomplete or
// checksum-failing final frame ends the scan without error, and the
// offset reports exactly where the valid prefix ends.
func TestScanJournalTornTail(t *testing.T) {
	valid := frames(encodeIntent(intentRec(1, 3, []byte("page"))), encodeCommit(1))
	for name, tail := range map[string][]byte{
		"truncated-header":  {0x01, 0x02},
		"truncated-payload": append([]byte{0xff, 0x00, 0x00, 0x00}, 0, 0, 0, 0),
		"bad-crc": func() []byte {
			f := appendFrame(nil, encodeCommit(9))
			f[len(f)-1] ^= 0x40
			return f
		}(),
		"oversized-length": {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1, 2, 3},
	} {
		raw := append(append([]byte(nil), valid...), tail...)
		entries, used, err := ScanJournal(raw)
		if err != nil {
			t.Fatalf("%s: torn tail reported as error: %v", name, err)
		}
		if used != int64(len(valid)) {
			t.Errorf("%s: used %d, want %d", name, used, len(valid))
		}
		if len(entries) != 1 || !entries[0].Committed {
			t.Errorf("%s: valid prefix not recovered: %+v", name, entries)
		}
	}
}

// TestScanJournalRejectsNonsense pins the corruption contract: frames
// that pass their checksum but decode to nonsense are ErrCorrupt, never
// silently truncated.
func TestScanJournalRejectsNonsense(t *testing.T) {
	cases := map[string][]byte{
		"commit-without-intent": frames(encodeCommit(5)),
		"non-monotonic-seq": frames(
			encodeIntent(intentRec(2, 1, []byte("x"))), encodeCommit(2),
			encodeIntent(intentRec(2, 1, []byte("y"))),
		),
		"unknown-type": frames([]byte{0x7f, 0, 0}),
		"bad-shape": frames(encodeIntent(Record{
			Op: OpWritePair, Seq: 1, LPNs: []uint64{1}, Pages: [][]byte{[]byte("z")},
		})),
		"trailing-bytes": frames(append(encodeCommit(1), 0xee)),
	}
	for name, raw := range cases {
		if _, _, err := ScanJournal(raw); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// staticSnap returns a SnapshotWriter that always writes body.
func staticSnap(body []byte) SnapshotWriter {
	return func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	}
}

// TestStoreLifecycle drives a store through create, journal appends,
// rotation and close, checking the on-disk layout at each step.
func TestStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(Config{Dir: dir, SnapshotEvery: 2}, staticSnap([]byte("state-0")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Create(Config{Dir: dir}, staticSnap(nil)); err == nil {
		t.Fatal("Create accepted a directory that already holds a store")
	}

	for i := 0; i < 3; i++ {
		seq, err := s.AppendIntent(intentRec(0, uint64(i), []byte{byte(i)}))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AppendCommit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if !s.ShouldSnapshot() {
		t.Fatal("3 commits past SnapshotEvery=2 and ShouldSnapshot is false")
	}
	if err := s.Snapshot(staticSnap([]byte("state-1"))); err != nil {
		t.Fatal(err)
	}
	if s.ShouldSnapshot() {
		t.Fatal("ShouldSnapshot true right after a rotation")
	}
	st := s.Stats()
	if st.JournalRecords != 6 || st.Snapshots != 1 {
		t.Fatalf("stats %+v, want 6 journal records and 1 snapshot", st)
	}
	if err := s.Close(staticSnap([]byte("state-2"))); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Close rotated: epoch 3 snapshot holds state-2, journal is empty.
	if rec.Epoch() != 3 {
		t.Fatalf("epoch %d, want 3", rec.Epoch())
	}
	if !bytes.Equal(rec.Snapshot(), []byte("state-2")) {
		t.Fatalf("snapshot %q, want state-2", rec.Snapshot())
	}
	if len(rec.Entries()) != 0 || rec.TornBytes() != 0 {
		t.Fatalf("clean close left %d entries, %d torn bytes", len(rec.Entries()), rec.TornBytes())
	}
	// Old epoch files are retired.
	for _, stale := range []string{snapPath(dir, 1), journalPath(dir, 1), snapPath(dir, 2)} {
		if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("stale file %s survived rotation", stale)
		}
	}
}

// TestResumeReplaysAndCompacts pins the mount path: an abandoned store
// (crash) reopens with its committed entries visible, uncommitted ones
// skipped, and Resume rotates to a fresh epoch and sweeps strays.
func TestResumeReplaysAndCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(Config{Dir: dir}, staticSnap([]byte("base")))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := s.AppendIntent(intentRec(0, 1, []byte("done")))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCommit(seq); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendIntent(intentRec(0, 2, []byte("lost"))); err != nil {
		t.Fatal(err)
	}
	s.Abandon() // crash: no final snapshot, journal as-is
	if _, err := s.AppendIntent(intentRec(0, 3, nil)); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("append on abandoned store: %v, want ErrPowerCut", err)
	}
	// A stray .tmp from a hypothetical interrupted rotation.
	stray := filepath.Join(dir, "snap-9.bin.tmp")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Entries()); got != 2 {
		t.Fatalf("%d entries, want 2", got)
	}
	if !rec.Entries()[0].Committed || rec.Entries()[1].Committed {
		t.Fatalf("commit status wrong: %+v", rec.Entries())
	}
	s2, err := rec.Resume(Config{}, staticSnap([]byte("replayed")), 42*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.ReplayedRecords != 1 || st.SkippedIntents != 1 {
		t.Fatalf("recovery stats %+v, want 1 replayed / 1 skipped", st)
	}
	if st.RecoveryTime != 42*sim.Microsecond {
		t.Fatalf("recovery time %v", st.RecoveryTime)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Error("stray .tmp survived Resume")
	}
	// Telemetry attached after the fact still shows the recovery.
	sink := telemetry.New()
	s2.SetTelemetry(sink)
	var buf bytes.Buffer
	sink.WriteMetrics(&buf)
	for _, want := range []string{`persist\.replay\.records\s+1\b`, `persist\.recovery_us\s+42\b`} {
		if !regexp.MustCompile(want).Match(buf.Bytes()) {
			t.Errorf("metrics lack %q:\n%s", want, buf.String())
		}
	}
	if err := s2.Close(staticSnap([]byte("end"))); err != nil {
		t.Fatal(err)
	}
}

// scriptedCut fires a power cut on the n'th crossing of one boundary.
type scriptedCut struct {
	point string
	n     int
	seen  int
	dead  bool
}

func (c *scriptedCut) CutAtBoundary(point string) bool {
	if c.dead {
		return true
	}
	if point == c.point {
		c.seen++
		if c.seen == c.n {
			c.dead = true
		}
	}
	return c.dead
}

func (c *scriptedCut) PowerDead() bool { return c.dead }

// TestCutBoundaries pins the durability point against each injectable
// boundary: pre-journal leaves no bytes, post-journal leaves an
// uncommitted intent, pre-snapshot keeps the old epoch authoritative.
func TestCutBoundaries(t *testing.T) {
	t.Run(PointPreJournal, func(t *testing.T) {
		dir := t.TempDir()
		s, err := Create(Config{Dir: dir}, staticSnap([]byte("s")))
		if err != nil {
			t.Fatal(err)
		}
		s.SetCutInjector(&scriptedCut{point: PointPreJournal, n: 1})
		if _, err := s.AppendIntent(intentRec(0, 1, []byte("x"))); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("got %v, want ErrPowerCut", err)
		}
		if err := s.Close(nil); err != nil {
			t.Fatal(err)
		}
		rec, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Entries()) != 0 {
			t.Fatalf("pre-journal cut left %d journal entries", len(rec.Entries()))
		}
	})
	t.Run(PointPostJournal, func(t *testing.T) {
		dir := t.TempDir()
		s, err := Create(Config{Dir: dir}, staticSnap([]byte("s")))
		if err != nil {
			t.Fatal(err)
		}
		s.SetCutInjector(&scriptedCut{point: PointPostJournal, n: 1})
		if _, err := s.AppendIntent(intentRec(0, 1, []byte("x"))); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("got %v, want ErrPowerCut", err)
		}
		// The device is dead: the commit must be refused too.
		if err := s.AppendCommit(1); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("commit on dead store: %v, want ErrPowerCut", err)
		}
		if err := s.Close(nil); err != nil {
			t.Fatal(err)
		}
		rec, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Entries()) != 1 || rec.Entries()[0].Committed {
			t.Fatalf("post-journal cut: %+v, want one uncommitted intent", rec.Entries())
		}
	})
	t.Run(PointPreSnapshot, func(t *testing.T) {
		dir := t.TempDir()
		s, err := Create(Config{Dir: dir, SnapshotEvery: 1}, staticSnap([]byte("old")))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := s.AppendIntent(intentRec(0, 1, []byte("x")))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AppendCommit(seq); err != nil {
			t.Fatal(err)
		}
		s.SetCutInjector(&scriptedCut{point: PointPreSnapshot, n: 1})
		if err := s.Snapshot(staticSnap([]byte("new"))); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("got %v, want ErrPowerCut", err)
		}
		if err := s.Close(nil); err != nil {
			t.Fatal(err)
		}
		rec, err := OpenDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Snapshot(), []byte("old")) {
			t.Fatalf("snapshot %q: the unswapped epoch must stay authoritative", rec.Snapshot())
		}
		if len(rec.Entries()) != 1 || !rec.Entries()[0].Committed {
			t.Fatalf("journal lost across aborted rotation: %+v", rec.Entries())
		}
	})
}

// TestSnapshotFileChecksum pins the container verification: flipping
// any body byte must fail the mount with ErrCorrupt.
func TestSnapshotFileChecksum(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(Config{Dir: dir}, staticSnap([]byte("payload-bytes")))
	if err != nil {
		t.Fatal(err)
	}
	s.Abandon()
	path := snapPath(dir, 1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(snapMagic)+3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted snapshot mounted: %v", err)
	}
}

// TestOpenDirRejectsBadCurrent covers the CURRENT pointer edge cases.
func TestOpenDirRejectsBadCurrent(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenDir(dir); err == nil {
		t.Fatal("empty directory mounted")
	}
	if err := os.WriteFile(filepath.Join(dir, currentFile), []byte("zero\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage CURRENT mounted: %v", err)
	}
}

// TestRecordShapes sweeps every op's operand-count contract through the
// store, so a new op cannot land without a journal shape.
func TestRecordShapes(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(Config{Dir: dir}, staticSnap([]byte("s")))
	if err != nil {
		t.Fatal(err)
	}
	page := []byte{1}
	good := []Record{
		{Op: OpWrite, LPNs: []uint64{0}, Pages: [][]byte{page}},
		{Op: OpWriteOperand, LPNs: []uint64{0}, Pages: [][]byte{page}},
		{Op: OpWritePair, LPNs: []uint64{0, 1}, Pages: [][]byte{page, page}},
		{Op: OpWriteLSBPair, LPNs: []uint64{0, 1}, Pages: [][]byte{page, page}},
		{Op: OpWriteLSBGroup, LPNs: []uint64{0, 1, 2}, Pages: [][]byte{page, page, page}},
		{Op: OpWriteMWSGroup, LPNs: []uint64{0}, Pages: [][]byte{page}},
		{Op: OpWriteOnPlane, Plane: 3, LPNs: []uint64{0}, Pages: [][]byte{page}},
		{Op: OpWriteTriple, LPNs: []uint64{0, 1, 2}, Pages: [][]byte{page, page, page}},
		{Op: OpReclaimInternal},
	}
	for _, rec := range good {
		seq, err := s.AppendIntent(rec)
		if err != nil {
			t.Fatalf("%s: %v", rec.Op, err)
		}
		if err := s.AppendCommit(seq); err != nil {
			t.Fatalf("%s commit: %v", rec.Op, err)
		}
	}
	bad := []Record{
		{Op: OpWrite},
		{Op: OpWritePair, LPNs: []uint64{0}, Pages: [][]byte{page}},
		{Op: OpWriteLSBGroup, LPNs: []uint64{0, 1}, Pages: [][]byte{page}},
		{Op: OpReclaimInternal, LPNs: []uint64{0}, Pages: [][]byte{page}},
		{Op: numOps, LPNs: []uint64{0}, Pages: [][]byte{page}},
	}
	for _, rec := range bad {
		if _, err := s.AppendIntent(rec); err == nil {
			t.Errorf("malformed %s record accepted (lpns=%d pages=%d)", rec.Op, len(rec.LPNs), len(rec.Pages))
		}
	}
	if err := s.Close(staticSnap([]byte("end"))); err != nil {
		t.Fatal(err)
	}
	rec, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries()) != 0 {
		t.Fatalf("clean close should compact to empty journal, got %d entries", len(rec.Entries()))
	}
}
