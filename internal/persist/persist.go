// Package persist is the crash-consistent on-disk store for the
// simulated SSD: a CRC-framed write-ahead journal plus periodic full
// snapshots, with a mount-time recovery path that replays the journal
// tail on top of the last snapshot.
//
// # Durability contract
//
// Every host write appends an intent record (the operation and its
// payload) before the device executes it and a commit record after the
// device reports success; only then is the write acknowledged. Recovery
// applies exactly the committed intents, in order, so an acknowledged
// write is always recovered byte-for-byte and an unacknowledged one is
// never silently resurrected — a remounted read of it fails explicitly.
// A torn final record (the append a crash interrupted) is truncated,
// not fatal: by construction it can only belong to an unacknowledged
// operation.
//
// # On-disk layout
//
// A store directory holds one current epoch: CURRENT (the epoch
// number), snap-<epoch>.bin (a checksummed snapshot of the full device
// state) and journal-<epoch>.log (records since that snapshot). When
// the journal grows past the configured length the store writes the
// next epoch's snapshot to a temporary file, atomically renames it and
// CURRENT into place, and retires the old epoch — a crash at any point
// leaves one complete, consistent epoch on disk.
//
// # Power-cut injection
//
// The store consults an optional CutInjector at the journal-record and
// snapshot-swap boundaries, so a fault plan can kill the device
// deterministically between any two persistence steps; mid-program cuts
// ride the flash layer's ordinary fault injection. Once power is cut
// the store goes dead: every subsequent append fails with ErrPowerCut
// and nothing more reaches disk until the device is reopened.
//
// All timestamps are simulated (internal/sim); nothing here reads the
// wall clock.
package persist

import (
	"errors"

	"parabit/internal/sim"
)

// Power-cut boundary points a CutInjector is consulted at. PointMidProgram
// is listed for plan vocabulary completeness: it is injected by the flash
// array's fault hook (the program dies on the NAND side), not by the
// store.
const (
	// PointPreJournal cuts before a journal append: the operation leaves
	// no trace and recovery never sees it.
	PointPreJournal = "pre-journal"
	// PointPostJournal cuts after the intent append, before the program:
	// the intent is durable but uncommitted, so recovery skips it.
	PointPostJournal = "post-journal"
	// PointMidProgram cuts during the NAND program itself.
	PointMidProgram = "mid-program"
	// PointPreSnapshot cuts after the next epoch's snapshot is staged but
	// before the atomic swap: the old epoch must remain authoritative.
	PointPreSnapshot = "pre-snapshot"
)

// Points lists the valid cut-point names for plan validation.
var Points = []string{PointPreJournal, PointPostJournal, PointMidProgram, PointPreSnapshot}

// Store errors.
var (
	// ErrPowerCut reports that injected power loss stopped the operation;
	// the device is down until remounted.
	ErrPowerCut = errors.New("persist: power cut")
	// ErrCorrupt reports a journal or snapshot that fails validation
	// beyond an ordinary torn tail.
	ErrCorrupt = errors.New("persist: corrupt state")
)

// CutInjector decides, per persistence boundary, whether power dies
// there. internal/faults implements it next to flash.FaultInjector; the
// two share one dead-device state so a cut anywhere fails everything
// after it.
type CutInjector interface {
	// CutAtBoundary is consulted once per boundary crossing with one of
	// the Point constants; returning true kills the device at that
	// instant.
	CutAtBoundary(point string) bool
	// PowerDead reports whether a cut (at any point, including
	// mid-program on the flash side) has already happened.
	PowerDead() bool
}

// Stats counts persistence activity since the store opened.
type Stats struct {
	JournalRecords  int64 // records appended (intents + commits)
	JournalBytes    int64 // bytes appended to the journal
	Snapshots       int64 // snapshot rotations completed
	ReplayedRecords int64 // committed records replayed at mount
	SkippedIntents  int64 // uncommitted intents skipped at mount
	TornBytes       int64 // torn journal tail truncated at mount
	RecoveryTime    sim.Duration
}
