// Package pim models the Ambit in-DRAM bulk bitwise baseline the paper
// compares against (§5.1): a DRAM with triple-row-activation compute,
// 16 KB row buffers, and the published timing parameters
// tRCD/tRAS/tRP/tFAW = 13.75/35/13.75/30 ns.
//
// Ambit executes bulk bitwise operations as sequences of AAP
// (ACTIVATE-ACTIVATE-PRECHARGE) primitives that copy operand rows into the
// designated triple-activation rows and copy the computed row out. The AAP
// count per operation follows Ambit's command sequences: a row-wide NOT is
// one AAP through the dual-contact cell; AND/OR are MAJ-based with three
// input copies plus the result activation; the XOR family composes
// AND/OR/NOT. Per §5.2 of the ParaBit paper, operands wider than one row
// buffer are partitioned into 16 KB chunks whose computations are
// sequentialized.
//
// The absolute AAP latency is calibrated, not H-SPICE-derived: the paper
// reports ParaBit-ReAlloc NOT-MSB (≈740 µs) as 25.8x slower than PIM on
// 8 MB operands, which pins NOT on 8 MB at ≈28.7 µs, i.e. 56 ns per
// 16 KB chunk — one AAP. The same constant makes a single-chunk AND land
// in the low hundreds of ns, matching Fig. 13(a)'s "ns level".
package pim

import (
	"fmt"

	"parabit/internal/interconnect"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// Config describes the Ambit-style DRAM device.
type Config struct {
	Ranks            int
	BanksPerRank     int
	SubarraysPerBank int
	RowBufferBytes   int // bytes computed per triple-row activation
	// DRAM timing in nanoseconds (floats: tRCD is 13.75 ns), kept for
	// documentation and derived checks.
	TRCDns, TRASns, TRPns, TFAWns float64
	// AAP is the ACTIVATE-ACTIVATE-PRECHARGE latency, the unit every
	// operation cost is expressed in.
	AAP sim.Duration
	// CapacityBytes is the DRAM size; data sets beyond it must stream
	// from storage (the paper's motivation).
	CapacityBytes int64
}

// DefaultConfig returns the paper's "powerful" Ambit configuration:
// 2 ranks, 16 banks, 256 subarrays, 16 KB row buffer, 64 GB DRAM.
func DefaultConfig() Config {
	return Config{
		Ranks:            2,
		BanksPerRank:     16,
		SubarraysPerBank: 256,
		RowBufferBytes:   16 * 1024,
		TRCDns:           13.75,
		TRASns:           35,
		TRPns:            13.75,
		TFAWns:           30,
		AAP:              56 * sim.Nanosecond,
		CapacityBytes:    64 << 30,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Ranks <= 0 || c.BanksPerRank <= 0 || c.SubarraysPerBank <= 0 ||
		c.RowBufferBytes <= 0 || c.AAP <= 0 || c.CapacityBytes <= 0 {
		return fmt.Errorf("pim: invalid config %+v", c)
	}
	return nil
}

// AAPCount returns the number of AAP primitives one row-wide operation
// takes. The counts assume Ambit's bulk sequences with result-row reuse
// (the accumulator stays in a triple-activation row across a chained
// reduction, saving one copy), which is how the paper's case studies run;
// they are calibrated against the paper's reported PIM compute times
// (e.g. 353 ms of AND over the 33.99 GB bitmap working set = 3 AAPs of
// 56 ns per 16 KB chunk).
func AAPCount(op latch.Op) int {
	switch op {
	case latch.OpNotLSB, latch.OpNotMSB:
		// One AAP through the dual-contact cell row.
		return 1
	case latch.OpAnd, latch.OpOr:
		// Copy operand and control rows in, TRA-activate the result.
		return 3
	case latch.OpNand, latch.OpNor:
		// AND/OR plus the inverting copy-out.
		return 4
	case latch.OpXor, latch.OpXnor:
		// Composed from AND/OR/NOT per Ambit's XOR recipe.
		return 5
	}
	panic(fmt.Sprintf("pim: unknown op %v", op))
}

// Device is an Ambit PIM attached to the SSD by a host link.
type Device struct {
	cfg  Config
	link *interconnect.Link
}

// New builds a device; a nil link defaults to the calibrated PCIe Gen3 x4
// SSD-to-DRAM link.
func New(cfg Config, link *interconnect.Link) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if link == nil {
		link = interconnect.PCIeGen3x4ToDRAM()
	}
	return &Device{cfg: cfg, link: link}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Link returns the SSD-to-DRAM interconnect.
func (d *Device) Link() *interconnect.Link { return d.link }

// ChunkLatency returns the latency of one row-buffer-wide (16 KB)
// operation.
func (d *Device) ChunkLatency(op latch.Op) sim.Duration {
	return sim.Duration(AAPCount(op)) * d.cfg.AAP
}

// Chunks returns how many row-buffer chunks an operand of n bytes spans.
func (d *Device) Chunks(n int64) int64 {
	rb := int64(d.cfg.RowBufferBytes)
	return (n + rb - 1) / rb
}

// OpLatency returns the latency of a bulk bitwise operation over operands
// of n bytes each. Chunks are sequentialized (§5.2): a pair of 8 MB
// operands is 512 serial row operations.
func (d *Device) OpLatency(op latch.Op, n int64) sim.Duration {
	return sim.Duration(d.Chunks(n)) * d.ChunkLatency(op)
}

// MovementSeconds returns the time to move n bytes from the SSD into
// DRAM over the host link.
func (d *Device) MovementSeconds(n int64) float64 { return d.link.BulkSeconds(n) }

// Plan describes a PIM execution of a bulk bitwise workload: how much data
// must move from the SSD and how long the in-DRAM compute takes.
type Plan struct {
	MoveBytes    int64
	MoveSeconds  float64
	ComputeOps   int64 // row-buffer chunk operations
	ComputeSecs  float64
	TotalSeconds float64
}

// PlanBulk plans numOps bulk operations, each over two operands of
// operandBytes, whose inputs total moveBytes on the SSD. Operands beyond
// DRAM capacity stream through; per the paper's methodology the cost model
// charges one pass of input movement and ignores result writeback.
func (d *Device) PlanBulk(op latch.Op, numOps int64, operandBytes int64, moveBytes int64) Plan {
	compute := sim.Duration(numOps) * d.OpLatency(op, operandBytes)
	p := Plan{
		MoveBytes:   moveBytes,
		MoveSeconds: d.MovementSeconds(moveBytes),
		ComputeOps:  numOps * d.Chunks(operandBytes),
		ComputeSecs: compute.Seconds(),
	}
	p.TotalSeconds = p.MoveSeconds + p.ComputeSecs
	return p
}
