package pim

import (
	"math"
	"testing"

	"parabit/internal/latch"
	"parabit/internal/sim"
)

func dev() *Device { return New(DefaultConfig(), nil) }

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Ranks != 2 || c.BanksPerRank != 16 || c.SubarraysPerBank != 256 {
		t.Errorf("geometry %+v", c)
	}
	if c.RowBufferBytes != 16*1024 {
		t.Errorf("row buffer %d, want 16 KB", c.RowBufferBytes)
	}
	if c.TRASns != 35 || c.TFAWns != 30 || c.TRCDns != 13.75 || c.TRPns != 13.75 {
		t.Errorf("timing %+v", c)
	}
}

func TestAAPCounts(t *testing.T) {
	want := map[latch.Op]int{
		latch.OpNotLSB: 1, latch.OpNotMSB: 1,
		latch.OpAnd: 3, latch.OpOr: 3,
		latch.OpNand: 4, latch.OpNor: 4,
		latch.OpXor: 5, latch.OpXnor: 5,
	}
	for op, n := range want {
		if got := AAPCount(op); got != n {
			t.Errorf("%v: %d AAPs, want %d", op, got, n)
		}
	}
}

func TestSingleChunkIsNanosecondLevel(t *testing.T) {
	// Fig. 13(a): PIM completes one operation at ns level.
	d := dev()
	for _, op := range latch.Ops {
		l := d.OpLatency(op, int64(d.cfg.RowBufferBytes))
		if l <= 0 || l >= 1*sim.Microsecond {
			t.Errorf("%v single chunk = %v, want ns-level", op, l)
		}
	}
}

func TestNot8MBCalibration(t *testing.T) {
	// The §5.2 anchor: NOT on two 8 MB operands ≈ 28.7 µs so that
	// ParaBit-ReAlloc NOT-MSB (≈740 µs) is 25.8x slower.
	d := dev()
	got := d.OpLatency(latch.OpNotMSB, 8<<20).Micros()
	if math.Abs(got-28.67) > 0.1 {
		t.Errorf("NOT on 8 MB = %.2f µs, want ≈28.7", got)
	}
	ratio := 740.0 / got
	if math.Abs(ratio-25.8) > 0.3 {
		t.Errorf("ReAlloc/PIM ratio = %.1f, want ≈25.8", ratio)
	}
}

func TestChunksSequentialize(t *testing.T) {
	d := dev()
	one := d.OpLatency(latch.OpAnd, 16*1024)
	many := d.OpLatency(latch.OpAnd, 8<<20)
	if many != 512*one {
		t.Errorf("8 MB AND = %v, want 512 x %v", many, one)
	}
}

func TestChunksRoundUp(t *testing.T) {
	d := dev()
	if d.Chunks(1) != 1 || d.Chunks(16*1024) != 1 || d.Chunks(16*1024+1) != 2 {
		t.Error("chunk rounding wrong")
	}
}

func TestPIM8MBSlowerThanParaBitForAnd(t *testing.T) {
	// §5.2: "PIM w/ 8MB is always slower than ParaBit w/ 8MB" for the
	// multi-sense ops. ParaBit AND on a full wave is 25 µs.
	d := dev()
	if got := d.OpLatency(latch.OpAnd, 8<<20); got <= 25*sim.Microsecond {
		t.Errorf("PIM 8MB AND = %v, expected > 25µs (ParaBit wave)", got)
	}
	// But NOT is the counterexample the 25.8x anchor uses: PIM faster.
	if got := d.OpLatency(latch.OpNotMSB, 8<<20); got >= 50*sim.Microsecond {
		t.Errorf("PIM 8MB NOT = %v, expected < 50µs (ParaBit NOT-MSB)", got)
	}
}

func TestMovementCalibration(t *testing.T) {
	// Fig. 4: 140 GB to DRAM in ≈43.9 s.
	d := dev()
	if got := d.MovementSeconds(140e9); math.Abs(got-43.9) > 0.1 {
		t.Errorf("movement = %.2f s", got)
	}
}

func TestPlanBulk(t *testing.T) {
	d := dev()
	p := d.PlanBulk(latch.OpAnd, 2, 8<<20, 140e9)
	if p.MoveBytes != 140e9 {
		t.Errorf("move bytes %d", p.MoveBytes)
	}
	if p.ComputeOps != 2*512 {
		t.Errorf("compute ops %d, want 1024", p.ComputeOps)
	}
	if p.TotalSeconds <= p.MoveSeconds || p.TotalSeconds != p.MoveSeconds+p.ComputeSecs {
		t.Errorf("plan totals inconsistent: %+v", p)
	}
	// Movement dominates by orders of magnitude for storage-resident data.
	if p.ComputeSecs > p.MoveSeconds/100 {
		t.Errorf("compute %.4fs not dwarfed by movement %.1fs", p.ComputeSecs, p.MoveSeconds)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AAP = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	New(cfg, nil)
}
