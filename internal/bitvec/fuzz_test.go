package bitvec

import (
	"bytes"
	"testing"
)

// FuzzBitvecSlice cross-checks the word-stitching Slice implementation
// against a naive per-bit loop, and the Bytes/FromBytes round-trip. Slice
// shifts across 64-bit word boundaries, which is exactly the kind of code
// where an off-by-one in the `64-off` complement shift survives unit
// tests built from round offsets.
func FuzzBitvecSlice(f *testing.F) {
	f.Add([]byte{0xff}, 0, 8)
	f.Add([]byte{0xa5, 0x3c}, 3, 13)
	f.Add(bytes.Repeat([]byte{0x81}, 24), 63, 129) // crosses two word boundaries
	f.Add(bytes.Repeat([]byte{0xfe, 0x01}, 16), 64, 192)
	f.Add([]byte{}, 0, 0)

	f.Fuzz(func(t *testing.T, data []byte, from, to int) {
		if len(data) > 1<<12 {
			data = data[:1<<12]
		}
		v := FromBytes(data)
		n := v.Len()
		if n != 8*len(data) {
			t.Fatalf("FromBytes(%d bytes).Len() = %d", len(data), n)
		}

		// Clamp the fuzzed range into validity rather than discarding:
		// every input then exercises Slice.
		from, to = clampRange(from, to, n)
		got := v.Slice(from, to)
		if got.Len() != to-from {
			t.Fatalf("Slice(%d, %d).Len() = %d, want %d", from, to, got.Len(), to-from)
		}
		for i := 0; i < to-from; i++ {
			if got.Get(i) != v.Get(from+i) {
				t.Fatalf("Slice(%d, %d) bit %d = %v, want %v (source bit %d)",
					from, to, i, got.Get(i), v.Get(from+i), from+i)
			}
		}

		// Slicing must not alias the source: mutating the slice leaves the
		// original intact.
		if got.Len() > 0 {
			before := v.Get(from)
			got.Set(0, !got.Get(0))
			if v.Get(from) != before {
				t.Fatalf("Slice(%d, %d) aliases the source vector", from, to)
			}
		}

		// Bytes/FromBytes is a lossless round-trip.
		if rt := FromBytes(v.Bytes()); !v.Equal(rt) {
			t.Fatalf("Bytes/FromBytes round-trip changed the vector")
		}
	})
}

// clampRange folds arbitrary fuzzed ints into a valid [from, to] range
// over a vector of n bits.
func clampRange(from, to, n int) (int, int) {
	mod := func(x int) int {
		if n == 0 {
			return 0
		}
		x %= n + 1
		if x < 0 {
			x += n + 1
		}
		return x
	}
	from, to = mod(from), mod(to)
	if from > to {
		from, to = to, from
	}
	return from, to
}
