package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(130)
	if v.Len() != 130 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.PopCount() != 0 {
		t.Fatalf("new vector has %d set bits", v.PopCount())
	}
}

func TestSetGet(t *testing.T) {
	v := New(200)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, i := range idx {
		v.Set(i, true)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if v.PopCount() != len(idx) {
		t.Fatalf("popcount %d, want %d", v.PopCount(), len(idx))
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Fatal("bit 64 still set after clear")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 8, 100, 8192} {
		b := make([]byte, n)
		rng.Read(b)
		v := FromBytes(b)
		if v.Len() != n*8 {
			t.Fatalf("len %d for %d bytes", v.Len(), n)
		}
		got := v.Bytes()
		if len(got) != n {
			t.Fatalf("round-trip length %d, want %d", len(got), n)
		}
		for i := range b {
			if got[i] != b[i] {
				t.Fatalf("byte %d differs: %02x vs %02x", i, got[i], b[i])
			}
		}
	}
}

func TestBitOrderWithinByte(t *testing.T) {
	v := FromBytes([]byte{0b0000_0101})
	if !v.Get(0) || v.Get(1) || !v.Get(2) {
		t.Fatalf("little-endian bit order violated: %s", v)
	}
}

func randVec(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Intn(2) == 1)
	}
	return v
}

func TestKernelsAgainstPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []struct {
		name string
		bulk func(a, b *Vector) *Vector
		bit  func(a, b bool) bool
	}{
		{"AND", And, func(a, b bool) bool { return a && b }},
		{"OR", Or, func(a, b bool) bool { return a || b }},
		{"XOR", Xor, func(a, b bool) bool { return a != b }},
		{"NAND", Nand, func(a, b bool) bool { return !(a && b) }},
		{"NOR", Nor, func(a, b bool) bool { return !(a || b) }},
		{"XNOR", Xnor, func(a, b bool) bool { return a == b }},
	}
	for _, n := range []int{1, 63, 64, 65, 1000} {
		a, b := randVec(rng, n), randVec(rng, n)
		for _, op := range ops {
			got := op.bulk(a, b)
			for i := 0; i < n; i++ {
				if got.Get(i) != op.bit(a.Get(i), b.Get(i)) {
					t.Fatalf("%s bit %d of %d wrong", op.name, i, n)
				}
			}
		}
		nv := Not(a)
		for i := 0; i < n; i++ {
			if nv.Get(i) == a.Get(i) {
				t.Fatalf("NOT bit %d of %d wrong", i, n)
			}
		}
	}
}

func TestTailPaddingStaysZero(t *testing.T) {
	// A 3-bit vector occupies one word; NOT/NOR must not set padding bits,
	// or PopCount and Bytes would leak garbage.
	a, b := New(3), New(3)
	if got := Not(a).PopCount(); got != 3 {
		t.Fatalf("NOT popcount %d, want 3", got)
	}
	if got := Nor(a, b).PopCount(); got != 3 {
		t.Fatalf("NOR popcount %d, want 3", got)
	}
	if by := Not(a).Bytes(); by[0] != 0b111 {
		t.Fatalf("serialized NOT = %08b, want 00000111", by[0])
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	And(New(8), New(9))
}

func TestIntoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, b := randVec(rng, 500), randVec(rng, 500)
	dst := New(500)
	AndInto(dst, a, b)
	if !dst.Equal(And(a, b)) {
		t.Fatal("AndInto differs from And")
	}
	XorInto(dst, a, b)
	if !dst.Equal(Xor(a, b)) {
		t.Fatal("XorInto differs from Xor")
	}
	// Aliasing dst with an operand must work: reduction loops do this.
	acc := a.Clone()
	AndInto(acc, acc, b)
	if !acc.Equal(And(a, b)) {
		t.Fatal("aliased AndInto wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(10)
	c := a.Clone()
	c.Set(3, true)
	if a.Get(3) {
		t.Fatal("clone shares storage with original")
	}
}

func TestSlice(t *testing.T) {
	v := New(100)
	v.Set(10, true)
	v.Set(50, true)
	s := v.Slice(10, 60)
	if s.Len() != 50 || !s.Get(0) || !s.Get(40) || s.PopCount() != 2 {
		t.Fatalf("slice wrong: %s", s)
	}
}

func TestEqual(t *testing.T) {
	a, b := New(64), New(64)
	if !a.Equal(b) {
		t.Fatal("zero vectors unequal")
	}
	b.Set(63, true)
	if a.Equal(b) {
		t.Fatal("different vectors equal")
	}
	if a.Equal(New(63)) {
		t.Fatal("different lengths equal")
	}
}

// Properties over random byte slices: De Morgan duality and double
// negation, the invariants the latch sequences also rely on.
func TestDeMorganProperty(t *testing.T) {
	f := func(x, y []byte) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		a, b := FromBytes(x[:n]), FromBytes(y[:n])
		return Nand(a, b).Equal(Or(Not(a), Not(b))) &&
			Nor(a, b).Equal(And(Not(a), Not(b))) &&
			Xnor(a, b).Equal(Not(Xor(a, b))) &&
			Not(Not(a)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorSelfInverseProperty(t *testing.T) {
	f := func(x, y []byte) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		a, k := FromBytes(x[:n]), FromBytes(y[:n])
		// Encrypt then decrypt (the image-encryption case study's core).
		return Xor(Xor(a, k), k).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPopCountMatchesLoop(t *testing.T) {
	f := func(x []byte) bool {
		v := FromBytes(x)
		n := 0
		for i := 0; i < v.Len(); i++ {
			if v.Get(i) {
				n++
			}
		}
		return n == v.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnd8KBPage(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := make([]byte, 8192)
	y := make([]byte, 8192)
	rng.Read(x)
	rng.Read(y)
	a, c := FromBytes(x), FromBytes(y)
	dst := New(a.Len())
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndInto(dst, a, c)
	}
}

// sliceNaive is the reference bit-at-a-time implementation the word-wise
// Slice replaced; the equivalence test pins the rewrite to it.
func sliceNaive(v *Vector, from, to int) *Vector {
	out := New(to - from)
	for i := from; i < to; i++ {
		if v.Get(i) {
			out.Set(i-from, true)
		}
	}
	return out
}

func TestSliceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lengths := []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 1000}
	for _, n := range lengths {
		v := New(n)
		for i := 0; i < n; i++ {
			v.Set(i, rng.Intn(2) == 1)
		}
		// Edge offsets/lengths: word boundaries, off-by-ones, empty, full.
		marks := []int{0, 1, 31, 63, 64, 65, n / 2, n - 64, n - 1, n}
		for _, from := range marks {
			if from < 0 || from > n {
				continue
			}
			for _, to := range marks {
				if to < from || to > n {
					continue
				}
				got := v.Slice(from, to)
				want := sliceNaive(v, from, to)
				if !got.Equal(want) {
					t.Fatalf("Slice(%d,%d) of len %d:\n got %s\nwant %s", from, to, n, got, want)
				}
			}
		}
		// Random spans for good measure.
		for k := 0; k < 50 && n > 0; k++ {
			from := rng.Intn(n + 1)
			to := from + rng.Intn(n-from+1)
			got := v.Slice(from, to)
			want := sliceNaive(v, from, to)
			if !got.Equal(want) {
				t.Fatalf("Slice(%d,%d) of len %d:\n got %s\nwant %s", from, to, n, got, want)
			}
		}
	}
}

func TestSliceIsACopy(t *testing.T) {
	v := New(128)
	v.Set(5, true)
	s := v.Slice(0, 64)
	s.Set(6, true)
	if v.Get(6) {
		t.Fatal("mutating a slice leaked into the source vector")
	}
	v.Set(7, true)
	if s.Get(7) {
		t.Fatal("mutating the source leaked into a prior slice")
	}
}
