// Package bitvec implements packed bit vectors with bulk boolean kernels.
//
// Vectors serve two roles in the ParaBit reproduction: they are the golden
// model every in-flash result is checked against, and they are the host-side
// representation used by the case-study workloads (YUV class masks, bitmap
// index columns, image bit planes).
//
// Bits are stored little-endian within 64-bit words: bit i of the vector is
// bit (i%64) of word i/64. The byte serialization used for flash pages is
// little-endian as well, so bit i of a vector lands in bit (i%8) of byte
// i/8 — matching how operand pages are laid out in the simulated SSD.
package bitvec

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-length sequence of bits.
type Vector struct {
	n     int
	words []uint64
}

// New returns an all-zero vector of n bits. n must be non-negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// FromBytes builds a vector of len(b)*8 bits from a little-endian byte
// slice. The slice is copied.
func FromBytes(b []byte) *Vector {
	v := New(len(b) * 8)
	for i, by := range b {
		v.words[i/8] |= uint64(by) << (8 * (i % 8))
	}
	return v
}

// Bytes serializes the vector to little-endian bytes, padding the final
// partial byte (if any) with zeros.
func (v *Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := range out {
		out[i] = byte(v.words[i/8] >> (8 * (i % 8)))
	}
	return out
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Get returns bit i.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<(i%64)) != 0
}

// Set assigns bit i.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/64] |= 1 << (i % 64)
	} else {
		v.words[i/64] &^= 1 << (i % 64)
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns an independent copy.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// Equal reports whether v and u have identical length and bits.
func (v *Vector) Equal(u *Vector) bool {
	if v.n != u.n {
		return false
	}
	for i, w := range v.words {
		if w != u.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	total := 0
	for _, w := range v.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// maskTail zeroes the bits of the last word beyond length n. Kernel results
// always pass through it so padding bits stay zero regardless of inputs.
func (v *Vector) maskTail() {
	if rem := v.n % 64; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << rem) - 1
	}
}

func sameLen(a, b *Vector) {
	if a.n != b.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", a.n, b.n))
	}
}

// And returns a AND b as a new vector. Panics on length mismatch, as all
// binary kernels do: operand shape errors are programming bugs here.
func And(a, b *Vector) *Vector { return binop(a, b, func(x, y uint64) uint64 { return x & y }) }

// Or returns a OR b.
func Or(a, b *Vector) *Vector { return binop(a, b, func(x, y uint64) uint64 { return x | y }) }

// Xor returns a XOR b.
func Xor(a, b *Vector) *Vector { return binop(a, b, func(x, y uint64) uint64 { return x ^ y }) }

// Nand returns NOT(a AND b).
func Nand(a, b *Vector) *Vector { return binop(a, b, func(x, y uint64) uint64 { return ^(x & y) }) }

// Nor returns NOT(a OR b).
func Nor(a, b *Vector) *Vector { return binop(a, b, func(x, y uint64) uint64 { return ^(x | y) }) }

// Xnor returns NOT(a XOR b).
func Xnor(a, b *Vector) *Vector { return binop(a, b, func(x, y uint64) uint64 { return ^(x ^ y) }) }

// Not returns the bitwise complement of a.
func Not(a *Vector) *Vector {
	out := New(a.n)
	for i, w := range a.words {
		out.words[i] = ^w
	}
	out.maskTail()
	return out
}

func binop(a, b *Vector, f func(x, y uint64) uint64) *Vector {
	sameLen(a, b)
	out := New(a.n)
	for i := range a.words {
		out.words[i] = f(a.words[i], b.words[i])
	}
	out.maskTail()
	return out
}

// AndInto computes dst = a AND b in place, reusing dst's storage. All three
// must share a length. The in-place forms exist because case studies chain
// long reductions (bitmap index ANDs hundreds of columns) and per-step
// allocation would dominate.
func AndInto(dst, a, b *Vector) {
	sameLen(a, b)
	sameLen(dst, a)
	for i := range a.words {
		dst.words[i] = a.words[i] & b.words[i]
	}
	dst.maskTail()
}

// XorInto computes dst = a XOR b in place.
func XorInto(dst, a, b *Vector) {
	sameLen(a, b)
	sameLen(dst, a)
	for i := range a.words {
		dst.words[i] = a.words[i] ^ b.words[i]
	}
	dst.maskTail()
}

// Slice returns a copy of bits [from, to). It copies whole 64-bit words,
// stitching each output word from the two source words it straddles when
// the offset is not word-aligned.
func (v *Vector) Slice(from, to int) *Vector {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: bad slice [%d,%d) of %d", from, to, v.n))
	}
	out := New(to - from)
	w, off := from/64, uint(from%64)
	if off == 0 {
		copy(out.words, v.words[w:])
		out.maskTail()
		return out
	}
	for i := range out.words {
		word := v.words[w+i] >> off
		if w+i+1 < len(v.words) {
			word |= v.words[w+i+1] << (64 - off)
		}
		out.words[i] = word
	}
	out.maskTail()
	return out
}

// String renders small vectors as a 0/1 string (bit 0 first); longer
// vectors are abbreviated. Intended for test failure messages.
func (v *Vector) String() string {
	const limit = 128
	n := v.n
	trunc := false
	if n > limit {
		n, trunc = limit, true
	}
	buf := make([]byte, 0, n+1)
	for i := 0; i < n; i++ {
		if v.Get(i) {
			buf = append(buf, '1')
		} else {
			buf = append(buf, '0')
		}
	}
	if trunc {
		return string(buf) + "…"
	}
	return string(buf)
}
