package reliability

import (
	"math"
	"testing"

	"parabit/internal/flash"
	"parabit/internal/latch"
)

const wordlineBits = 2 * 8192 * 8 // two 8 KB pages per MLC wordline

func TestPaperAnchor5KPE7Sensings(t *testing.T) {
	// §5.8: at 5K P/E after the 7th sensing, avg 0.945 errors per WL.
	m := NewModel(1)
	mean := m.ExpectedErrorsPerWordline(wordlineBits, 5000, 7)
	if math.Abs(mean-0.945) > 0.02 {
		t.Errorf("expected errors/WL = %.3f, want ≈0.945", mean)
	}
	// Sampled max over ~1000 wordlines lands near the paper's 5.
	s := m.SampleWordlines(1000, wordlineBits, 5000, 7)
	if s.Max < 3 || s.Max > 8 {
		t.Errorf("max errors = %d, want ≈5", s.Max)
	}
	if math.Abs(s.Mean-0.945) > 0.15 {
		t.Errorf("sampled mean = %.3f, want ≈0.945", s.Mean)
	}
}

func TestErrorsGrowWithPEAndSensings(t *testing.T) {
	m := NewModel(2)
	if !(m.BitErrorProbability(1000, 7) < m.BitErrorProbability(3000, 7)) ||
		!(m.BitErrorProbability(3000, 7) < m.BitErrorProbability(5000, 7)) {
		t.Error("error rate not monotone in P/E cycles")
	}
	if !(m.BitErrorProbability(5000, 1) < m.BitErrorProbability(5000, 4)) ||
		!(m.BitErrorProbability(5000, 4) < m.BitErrorProbability(5000, 7)) {
		t.Error("error rate not monotone in sensing count")
	}
}

func TestFreshCellsErrorFree(t *testing.T) {
	m := NewModel(3)
	if m.BitErrorProbability(0, 7) != 0 {
		t.Error("uncycled cells should be error-free in this model")
	}
	buf := make([]byte, 8192)
	if n := m.Corrupt(buf, 0, 7); n != 0 {
		t.Errorf("corrupted %d bits at 0 P/E", n)
	}
}

func TestApplicationErrorRateNearPaper(t *testing.T) {
	// §5.8: worst case 0.00149% bit errors for XOR-based encryption at
	// 5K P/E. Our model gives p(5K,7) = 7.2e-6 ≈ 0.00072%; the paper's
	// figure includes realloc-induced extra wear — same order.
	m := NewModel(4)
	rate := m.ApplicationErrorRate(5000, 7)
	if rate < 1e-6 || rate > 3e-5 {
		t.Errorf("application error rate = %.2e, want within 1e-6..3e-5 (paper: 1.49e-5)", rate)
	}
}

func TestCorruptFlipsApproximatelyExpected(t *testing.T) {
	m := NewModelWithBase(5, 1e-5) // exaggerated rate for a tight sample
	buf := make([]byte, 8192)
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		total += m.Corrupt(buf, 5000, 7)
	}
	bits := float64(len(buf) * 8)
	wantMean := bits * 1e-5 * 25 * 7
	gotMean := float64(total) / trials
	if math.Abs(gotMean-wantMean)/wantMean > 0.1 {
		t.Errorf("mean flips = %.1f, want ≈%.1f", gotMean, wantMean)
	}
}

func TestCorruptActuallyFlipsBits(t *testing.T) {
	m := NewModelWithBase(6, 1e-4)
	buf := make([]byte, 1024)
	orig := append([]byte(nil), buf...)
	n := m.Corrupt(buf, 5000, 7)
	diff := 0
	for i := range buf {
		for b := 0; b < 8; b++ {
			if (buf[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	// Flips can collide on the same bit (flip back); diff <= n always,
	// and with these counts collisions are rare.
	if n == 0 || diff == 0 || diff > n {
		t.Errorf("n=%d diff=%d", n, diff)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, b := NewModel(42), NewModel(42)
	bufA := make([]byte, 4096)
	bufB := make([]byte, 4096)
	a.Corrupt(bufA, 5000, 7)
	b.Corrupt(bufB, 5000, 7)
	for i := range bufA {
		if bufA[i] != bufB[i] {
			t.Fatal("same seed produced different corruption")
		}
	}
}

func TestModelPlugsIntoFlash(t *testing.T) {
	// End-to-end: a cycled block's ParaBit XOR result shows injected
	// flips while baseline reads stay clean.
	array := flash.NewArray(flash.Small(), flash.DefaultTiming())
	array.SetCorruptor(NewModelWithBase(7, 1e-4)) // exaggerated
	wl := flash.WordlineAddr{Block: 1}
	page := make([]byte, array.Geometry().PageSize)
	// Heavy cycling: with the exaggerated base rate, p(2000 P/E, 4 SRO)
	// yields a few flips per 256-byte page.
	for i := 0; i < 2000; i++ {
		if _, err := array.Erase(wl.PlaneAddr, wl.Block, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := array.Program(flash.PageAddr{WordlineAddr: wl, Kind: flash.LSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := array.Program(flash.PageAddr{WordlineAddr: wl, Kind: flash.MSBPage}, page, 0); err != nil {
		t.Fatal(err)
	}
	res, err := array.BitwiseSense(latch.OpXor, wl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipCount == 0 {
		t.Error("no errors injected into ParaBit result on cycled block")
	}
	if _, _, err := array.Read(flash.PageAddr{WordlineAddr: wl, Kind: flash.LSBPage}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonLargeMean(t *testing.T) {
	m := NewModel(8)
	// Normal-approximation path: sample mean should track the target.
	total := 0.0
	const trials = 500
	for i := 0; i < trials; i++ {
		total += float64(m.poisson(100))
	}
	if mean := total / trials; math.Abs(mean-100) > 3 {
		t.Errorf("poisson(100) sample mean = %.1f", mean)
	}
}

func TestNegativeBasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative base accepted")
		}
	}()
	NewModelWithBase(1, -1)
}

func TestDisturbTermMonotone(t *testing.T) {
	m := NewModel(20)
	p0 := m.BitErrorProbabilityWithReads(1000, 1, 0)
	p1 := m.BitErrorProbabilityWithReads(1000, 1, 100_000)
	p2 := m.BitErrorProbabilityWithReads(1000, 1, 1_000_000)
	if !(p0 < p1 && p1 < p2) {
		t.Fatalf("disturb not monotone: %g %g %g", p0, p1, p2)
	}
	// At ~100K reads the disturb term is the same order as 1K-P/E noise.
	base := m.BitErrorProbability(5000, 7)
	disturb := DisturbP0 * 100_000
	if disturb < base/10 || disturb > base*10 {
		t.Errorf("disturb at 100K reads = %.2e, cycling at EOL = %.2e: want same order", disturb, base)
	}
}

func TestDisturbZeroWithoutReads(t *testing.T) {
	m := NewModel(21)
	if m.BitErrorProbabilityWithReads(5000, 7, 0) != m.BitErrorProbability(5000, 7) {
		t.Fatal("zero reads should add nothing")
	}
}

func TestModelImplementsDisturbCorruptor(t *testing.T) {
	var _ flash.DisturbCorruptor = NewModel(22)
}

func TestCorruptWithReadsFlips(t *testing.T) {
	m := NewModelWithBase(23, 0) // isolate the disturb term
	buf := make([]byte, 8192)
	// Enormous read exposure to force flips deterministically-ish.
	total := 0
	for i := 0; i < 50; i++ {
		total += m.CorruptWithReads(buf, 0, 1, 50_000_000)
	}
	if total == 0 {
		t.Fatal("no disturb flips despite huge exposure")
	}
}
