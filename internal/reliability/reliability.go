// Package reliability models the bit-error behaviour the paper verifies
// on real Intel MLC chips (§5.8, Fig. 17): raw bit errors grow with
// program/erase cycling (threshold-voltage distribution shift) and with
// the number of sensing steps a ParaBit operation performs (each extra
// reference-voltage comparison is another chance to misread a cell whose
// threshold drifted across the boundary).
//
// ParaBit results bypass the ECC engine — conventional ECC cannot be
// checked after the latching circuit has combined two pages (§4.4.3) —
// so these errors reach the result. Baseline reads remain ECC-protected
// and ideal.
//
// The per-bit error probability is
//
//	p(pe, sros) = P0 x (pe/1000)^2 x sros
//
// calibrated to the paper's anchor: at 5,000 P/E cycles, after the 7th
// sensing (the XOR sequence on cycled cells), an 8 KB-page wordline
// (two pages, 131,072 bits) shows 0.945 bit errors on average with an
// observed max of 5 — which the model reproduces because a Poisson with
// mean 0.945 tops out near 5 over a thousand sampled wordlines.
package reliability

import (
	"fmt"
	"math"
	"math/rand"
)

// P0 is the calibrated base per-bit error probability (one sensing, 1K
// P/E cycles).
const P0 = 4.12e-8

// Model is a deterministic (seeded) error injector implementing
// flash.Corruptor.
type Model struct {
	rng *rand.Rand
	p0  float64
}

// NewModel returns a model with the calibrated base rate and the given
// deterministic seed.
func NewModel(seed int64) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed)), p0: P0}
}

// NewModelWithBase overrides the base probability (for sensitivity
// sweeps).
func NewModelWithBase(seed int64, p0 float64) *Model {
	if p0 < 0 {
		panic(fmt.Sprintf("reliability: negative base probability %v", p0))
	}
	return &Model{rng: rand.New(rand.NewSource(seed)), p0: p0}
}

// DisturbP0 is the per-bit error probability contributed by each single
// read operation a block has absorbed since its last erase. Calibrated so
// read disturb becomes comparable to end-of-life cycling noise around the
// ~100K-read refresh thresholds real MLC management uses.
const DisturbP0 = 7e-11

// BitErrorProbability returns the per-bit error probability for a cell
// cycled pe times and sensed sros times by the producing operation.
func (m *Model) BitErrorProbability(pe, sros int) float64 {
	if pe <= 0 || sros <= 0 {
		return 0
	}
	k := float64(pe) / 1000
	return m.p0 * k * k * float64(sros)
}

// BitErrorProbabilityWithReads adds the read-disturb term: blockReads is
// the block's accumulated sensing count since erase.
func (m *Model) BitErrorProbabilityWithReads(pe, sros, blockReads int) float64 {
	p := m.BitErrorProbability(pe, sros)
	if blockReads > 0 {
		p += DisturbP0 * float64(blockReads)
	}
	return p
}

// CorruptWithReads implements flash.DisturbCorruptor: like Corrupt, with
// the read-disturb contribution of the block's accumulated senses.
func (m *Model) CorruptWithReads(data []byte, pe, sros, blockReads int) int {
	bits := len(data) * 8
	mean := float64(bits) * m.BitErrorProbabilityWithReads(pe, sros, blockReads)
	if mean == 0 {
		return 0
	}
	n := m.poisson(mean)
	for i := 0; i < n; i++ {
		bit := m.rng.Intn(bits)
		data[bit/8] ^= 1 << (bit % 8)
	}
	return n
}

// ExpectedErrorsPerWordline returns the mean raw bit errors for a
// wordline of wordlineBits cells.
func (m *Model) ExpectedErrorsPerWordline(wordlineBits, pe, sros int) float64 {
	return float64(wordlineBits) * m.BitErrorProbability(pe, sros)
}

// Flash-Cosmos multi-wordline sense hooks. An MWS divides its sense
// margin across the series cells it selects, so its per-bit error
// probability grows with the operand count; enhanced SLC programming
// (ESP) claws most of that margin back by tightening the programmed
// threshold distributions. The model follows the Flash-Cosmos
// observation that ESP plus MWS is about as reliable as a single
// ordinary sense, while MWS over normally-programmed cells degrades
// roughly linearly in the wordline count.

// MWSMarginFactor is the per-extra-wordline error multiplier of a
// multi-wordline sense over normally-programmed cells.
const MWSMarginFactor = 1.0

// ESPMarginFactor is the same multiplier when every operand was
// ESP-programmed: the tightened distributions leave the margin loss per
// extra wordline at a few percent of a sense's base error rate.
const ESPMarginFactor = 0.05

// BitErrorProbabilityMWS returns the per-bit error probability of one
// k-wordline multi-wordline sense at pe program/erase cycles. With esp
// set the ESP offset applies.
func (m *Model) BitErrorProbabilityMWS(pe, k int, esp bool) float64 {
	if k < 1 {
		return 0
	}
	factor := MWSMarginFactor
	if esp {
		factor = ESPMarginFactor
	}
	// One sense's base probability, degraded for each extra series cell
	// sharing the margin.
	return m.BitErrorProbability(pe, 1) * (1 + factor*float64(k-1))
}

// CorruptMWS implements flash.MWSCorruptor: error injection for a
// multi-wordline sense result.
func (m *Model) CorruptMWS(data []byte, pe, k int, esp bool) int {
	bits := len(data) * 8
	mean := float64(bits) * m.BitErrorProbabilityMWS(pe, k, esp)
	if mean == 0 {
		return 0
	}
	n := m.poisson(mean)
	for i := 0; i < n; i++ {
		bit := m.rng.Intn(bits)
		data[bit/8] ^= 1 << (bit % 8)
	}
	return n
}

// Corrupt implements flash.Corruptor: it flips each bit independently
// with probability p(pe, sros). For realistic rates (mean errors per page
// well under one) it samples a Poisson count and flips that many distinct
// random bits, which is indistinguishable from per-bit sampling and far
// cheaper.
func (m *Model) Corrupt(data []byte, pe, sros int) int {
	bits := len(data) * 8
	mean := float64(bits) * m.BitErrorProbability(pe, sros)
	if mean == 0 {
		return 0
	}
	n := m.poisson(mean)
	for i := 0; i < n; i++ {
		bit := m.rng.Intn(bits)
		data[bit/8] ^= 1 << (bit % 8)
	}
	return n
}

// poisson samples a Poisson-distributed count (Knuth for small means,
// normal approximation for large).
func (m *Model) poisson(mean float64) int {
	if mean > 30 {
		n := int(m.rng.NormFloat64()*math.Sqrt(mean) + mean + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= m.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// WordlineStats summarizes an error-injection experiment over many
// wordlines: the Fig. 17 left-panel content.
type WordlineStats struct {
	PECycles int
	Sensings int
	Mean     float64
	Max      int
}

// SampleWordlines simulates trials wordlines of wordlineBits cells at the
// given cycling and sensing count, returning mean and max error counts.
func (m *Model) SampleWordlines(trials, wordlineBits, pe, sros int) WordlineStats {
	mean := float64(wordlineBits) * m.BitErrorProbability(pe, sros)
	total, maxN := 0, 0
	for i := 0; i < trials; i++ {
		n := m.poisson(mean)
		total += n
		if n > maxN {
			maxN = n
		}
	}
	return WordlineStats{
		PECycles: pe,
		Sensings: sros,
		Mean:     float64(total) / float64(trials),
		Max:      maxN,
	}
}

// ApplicationErrorRate returns the fraction of result bits in error for
// an application whose operations use the given sensing count at the
// given wear — the Fig. 17 right-panel content.
func (m *Model) ApplicationErrorRate(pe, sros int) float64 {
	return m.BitErrorProbability(pe, sros)
}
