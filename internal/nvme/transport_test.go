package nvme

import (
	"errors"
	"sync"
	"testing"

	"parabit/internal/latch"
)

func testFormula(t *testing.T, pageSize int) []Command {
	t.Helper()
	f := Formula{
		Terms: []Term{
			{M: Operand{LBA: 1, Length: pageSize}, N: Operand{LBA: 2, Length: pageSize}, Op: latch.OpAnd},
			{M: Operand{LBA: 3, Length: pageSize}, N: Operand{LBA: 4, Length: pageSize}, Op: latch.OpXor},
		},
		Combine: []latch.Op{latch.OpOr},
	}
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return cmds
}

func TestQueuePairExchangeSurvivesWire(t *testing.T) {
	const pageSize = 256
	cmds := testFormula(t, pageSize)
	qp := NewQueuePair(8)
	got, err := qp.Exchange(cmds)
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	if len(got) != len(cmds) {
		t.Fatalf("exchange returned %d commands, submitted %d", len(got), len(cmds))
	}
	// Everything that crossed is exactly what Encode/Decode preserves.
	for i, c := range cmds {
		want := Decode(c.LBA, c.Encode())
		if got[i] != want {
			t.Fatalf("command %d changed across the wire:\n got %+v\nwant %+v", i, got[i], want)
		}
	}
	st := qp.Stats()
	if st.Submitted != int64(len(cmds)) || st.Drained != int64(len(cmds)) || st.Rejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxDepth != len(cmds) {
		t.Fatalf("max depth %d, want %d", st.MaxDepth, len(cmds))
	}
}

func TestQueuePairBoundsDepth(t *testing.T) {
	const pageSize = 256
	cmds := testFormula(t, pageSize)
	qp := NewQueuePair(len(cmds) - 1)
	if _, err := qp.Exchange(cmds); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth exchange = %v, want ErrQueueFull", err)
	}
	if st := qp.Stats(); st.Rejected != int64(len(cmds)) || st.Submitted != 0 {
		t.Fatalf("rejection stats = %+v", st)
	}
	// A rejected exchange leaves the queue clean for the next stream.
	qp2 := NewQueuePair(len(cmds))
	if _, err := qp2.Exchange(cmds); err != nil {
		t.Fatalf("exact-depth exchange: %v", err)
	}
}

func TestQueuePairSubmitDrain(t *testing.T) {
	const pageSize = 256
	cmds := testFormula(t, pageSize)
	qp := NewQueuePair(16)
	if err := qp.Submit(cmds); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if qp.Depth() != 16 {
		t.Fatalf("depth = %d", qp.Depth())
	}
	// Exchange refuses to interleave with pending entries.
	if _, err := qp.Exchange(cmds); err == nil {
		t.Fatal("exchange over pending entries should fail")
	}
	got := qp.Drain()
	if len(got) != len(cmds) {
		t.Fatalf("drained %d, want %d", len(got), len(cmds))
	}
	if again := qp.Drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d entries", len(again))
	}
}

func TestQueuePairConcurrentExchangesDoNotShear(t *testing.T) {
	const pageSize = 256
	cmds := testFormula(t, pageSize)
	qp := NewQueuePair(len(cmds)) // one stream at a time fits
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, err := qp.Exchange(cmds)
				if err != nil {
					panic(err)
				}
				if len(got) != len(cmds) {
					panic("sheared stream")
				}
			}
		}()
	}
	wg.Wait()
	if st := qp.Stats(); st.Drained != 8*50*int64(len(cmds)) {
		t.Fatalf("drained %d, want %d", st.Drained, 8*50*len(cmds))
	}
}
