package nvme

import (
	"errors"
	"testing"
	"testing/quick"

	"parabit/internal/latch"
)

const pageSize = 8192

func fullPage(lba uint64) Operand { return Operand{LBA: lba, Length: pageSize} }

func TestDWordRoundTrip(t *testing.T) {
	f := func(lba, ptr uint64, tag bool, intra, extra, order, so, sc, scheme uint8) bool {
		c := Command{
			LBA:          lba,
			OperandTag:   b2u(tag),
			IntraOp:      OpCode(intra % 8),
			ExtraOp:      OpCode(extra % 8),
			BatchOrder:   order,
			Pointer:      ptr,
			PointerValid: ptr%2 == 0,
			SectorOffset: so,
			SectorCount:  sc,
		}
		if scheme%2 == 0 {
			c.SchemeHint, c.SchemeHintValid = scheme%(SchemeHintMax+1), true
		}
		got := Decode(c.LBA, c.Encode())
		return got == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSchemeHintOnWire pins the DWord 14 scheme channel: a formula's hint
// reaches every command and survives the pack/unpack, StreamScheme
// recovers it, mixed streams are rejected, and hintless streams stay
// hintless.
func TestSchemeHintOnWire(t *testing.T) {
	f := Formula{
		Terms: []Term{
			{M: fullPage(0), N: fullPage(1), Op: latch.OpAnd},
			{M: fullPage(2), N: fullPage(3), Op: latch.OpAnd},
		},
		Combine:     []latch.Op{latch.OpOr},
		Scheme:      3, // the Flash-Cosmos slot in the SSD layer's enumeration
		SchemeValid: true,
	}
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]Command, len(cmds))
	for i, c := range cmds {
		if !c.SchemeHintValid || c.SchemeHint != 3 {
			t.Fatalf("command %d hint (%d,%v), want (3,true)", i, c.SchemeHint, c.SchemeHintValid)
		}
		wire[i] = Decode(c.LBA, c.Encode())
	}
	scheme, ok, err := StreamScheme(wire)
	if err != nil || !ok || scheme != 3 {
		t.Fatalf("StreamScheme = (%d,%v,%v), want (3,true,nil)", scheme, ok, err)
	}

	// A shorn-together stream (one half hinted differently) must refuse.
	wire[len(wire)-1].SchemeHint = 1
	if _, _, err := StreamScheme(wire); err == nil {
		t.Fatal("mixed scheme hints accepted")
	}
	wire[len(wire)-1].SchemeHintValid = false
	wire[len(wire)-1].SchemeHint = 3
	if _, _, err := StreamScheme(wire); err == nil {
		t.Fatal("half-hinted stream accepted")
	}

	// No hint: encodes to a zero DWord 14, recovers as absent.
	f.SchemeValid = false
	cmds, err = EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cmds {
		if d := c.Encode(); d.DW14 != 0 {
			t.Fatalf("command %d DW14 = %#x without a hint", i, d.DW14)
		}
	}
	if _, ok, err := StreamScheme(cmds); ok || err != nil {
		t.Fatalf("hintless stream = (%v,%v), want (false,nil)", ok, err)
	}

	// A hint past the 3-bit field cannot encode.
	f.Scheme, f.SchemeValid = SchemeHintMax+1, true
	if _, err := EncodeFormula(f, pageSize); err == nil {
		t.Fatal("overflowing scheme hint accepted")
	}
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func TestEncodeSingleTerm(t *testing.T) {
	f := Formula{Terms: []Term{{M: fullPage(10), N: fullPage(20), Op: latch.OpAnd}}}
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 2 {
		t.Fatalf("%d commands, want 2", len(cmds))
	}
	if cmds[0].LBA != 10 || cmds[0].OperandTag != 0 || cmds[0].Pointer != 20 || !cmds[0].PointerValid {
		t.Fatalf("first command %+v", cmds[0])
	}
	if op, _ := cmds[0].IntraOp.Op(); op != latch.OpAnd {
		t.Fatalf("intra op %v", cmds[0].IntraOp)
	}
	if cmds[1].LBA != 20 || cmds[1].OperandTag != 1 || cmds[1].PointerValid {
		t.Fatalf("second command %+v", cmds[1])
	}
}

func TestEncodeMultiPageOperandChains(t *testing.T) {
	// Paper Fig. 11: operand size twice the flash page -> two
	// sub-operations, four device commands, chained by pointers.
	f := Formula{Terms: []Term{{
		M:  Operand{LBA: 100, Length: 2 * pageSize},
		N:  Operand{LBA: 200, Length: 2 * pageSize},
		Op: latch.OpXor,
	}}}
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 4 {
		t.Fatalf("%d commands, want 4", len(cmds))
	}
	// CMD1 (second command of sub-op 0) points at CMD2 (first of sub-op 1).
	if !cmds[1].PointerValid || cmds[1].Pointer != 101 {
		t.Fatalf("sub-op chain pointer = %+v", cmds[1])
	}
	// Final second command ends the chain.
	if cmds[3].PointerValid {
		t.Fatal("last sub-op should not chain onward")
	}
}

func TestEncodeSubPageOperand(t *testing.T) {
	f := Formula{Terms: []Term{{
		M:  Operand{LBA: 1, Offset: 1024, Length: 2048},
		N:  Operand{LBA: 2, Offset: 512, Length: 2048},
		Op: latch.OpOr,
	}}}
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if cmds[0].SectorOffset != 2 || cmds[0].SectorCount != 4 {
		t.Fatalf("first operand sectors %d+%d, want 2+4", cmds[0].SectorOffset, cmds[0].SectorCount)
	}
	if cmds[1].SectorOffset != 1 || cmds[1].SectorCount != 4 {
		t.Fatalf("second operand sectors %d+%d, want 1+4", cmds[1].SectorOffset, cmds[1].SectorCount)
	}
}

func TestParseSingleBatch(t *testing.T) {
	f := Formula{Terms: []Term{{M: fullPage(5), N: fullPage(6), Op: latch.OpNor}}}
	batches, err := RoundTrip(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("%d batches", len(batches))
	}
	b := batches[0]
	if b.Op != latch.OpNor || b.HasNext || len(b.Subs) != 1 {
		t.Fatalf("batch %+v", b)
	}
	if b.Subs[0].M != 5 || b.Subs[0].N != 6 || b.Subs[0].Length != pageSize {
		t.Fatalf("sub %+v", b.Subs[0])
	}
}

func TestParseFormulaThreeBatches(t *testing.T) {
	// (A AND B) XOR (C AND D) OR (E AND F): the §4.3.1 running example
	// shape — three batches, two extra-batch ops.
	f := Formula{
		Terms: []Term{
			{M: fullPage(0), N: fullPage(1), Op: latch.OpAnd},
			{M: fullPage(2), N: fullPage(3), Op: latch.OpAnd},
			{M: fullPage(4), N: fullPage(5), Op: latch.OpAnd},
		},
		Combine: []latch.Op{latch.OpXor, latch.OpOr},
	}
	batches, err := RoundTrip(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("%d batches", len(batches))
	}
	if !batches[0].HasNext || batches[0].Extra != latch.OpXor {
		t.Fatalf("batch 0 extra %+v", batches[0])
	}
	if !batches[1].HasNext || batches[1].Extra != latch.OpOr {
		t.Fatalf("batch 1 extra %+v", batches[1])
	}
	if batches[2].HasNext {
		t.Fatal("final batch claims a successor")
	}
}

func TestParseFig11Example(t *testing.T) {
	// "three bitwise operations with four operands and the size of each
	// operand is twice of flash page size ... eight device commands" —
	// the paper's Fig. 11 uses chained batches where each batch's result
	// feeds the next; modeled here as 2 terms over 4 operands plus the
	// sub-op split giving 8 commands.
	f := Formula{
		Terms: []Term{
			{M: Operand{LBA: 0, Length: 2 * pageSize}, N: Operand{LBA: 2, Length: 2 * pageSize}, Op: latch.OpAnd},
			{M: Operand{LBA: 4, Length: 2 * pageSize}, N: Operand{LBA: 6, Length: 2 * pageSize}, Op: latch.OpAnd},
		},
		Combine: []latch.Op{latch.OpOr},
	}
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 8 {
		t.Fatalf("%d device commands, want 8", len(cmds))
	}
	batches, err := ParseBatches(cmds, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || len(batches[0].Subs) != 2 || len(batches[1].Subs) != 2 {
		t.Fatalf("batch structure %+v", batches)
	}
}

func TestParseRejectsBrokenPairing(t *testing.T) {
	f := Formula{Terms: []Term{{M: fullPage(0), N: fullPage(1), Op: latch.OpAnd}}}
	cmds, _ := EncodeFormula(f, pageSize)

	broken := append([]Command(nil), cmds...)
	broken[0].Pointer = 99 // no longer binds its pair
	if _, err := ParseBatches(broken, pageSize); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("unbound pair: err = %v", err)
	}

	broken = append([]Command(nil), cmds...)
	broken[1].OperandTag = 0
	if _, err := ParseBatches(broken, pageSize); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("bad tags: err = %v", err)
	}

	if _, err := ParseBatches(cmds[:1], pageSize); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("odd count: err = %v", err)
	}
	if _, err := ParseBatches(nil, pageSize); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestParseRejectsBrokenChain(t *testing.T) {
	f := Formula{Terms: []Term{{
		M:  Operand{LBA: 0, Length: 2 * pageSize},
		N:  Operand{LBA: 10, Length: 2 * pageSize},
		Op: latch.OpAnd,
	}}}
	cmds, _ := EncodeFormula(f, pageSize)
	cmds[1].PointerValid = false // break the sub-op chain
	if _, err := ParseBatches(cmds, pageSize); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("broken chain: err = %v", err)
	}
}

func TestParseRejectsMissingBatchOrder(t *testing.T) {
	f := Formula{Terms: []Term{{M: fullPage(0), N: fullPage(1), Op: latch.OpAnd}}}
	cmds, _ := EncodeFormula(f, pageSize)
	cmds[0].BatchOrder = 1 // batch 0 missing
	cmds[1].BatchOrder = 1
	if _, err := ParseBatches(cmds, pageSize); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("missing order: err = %v", err)
	}
}

func TestFormulaValidation(t *testing.T) {
	cases := []struct {
		name string
		f    Formula
	}{
		{"empty", Formula{}},
		{"combine count", Formula{
			Terms:   []Term{{M: fullPage(0), N: fullPage(1), Op: latch.OpAnd}},
			Combine: []latch.Op{latch.OpOr},
		}},
		{"length mismatch", Formula{
			Terms: []Term{{M: Operand{LBA: 0, Length: pageSize}, N: Operand{LBA: 1, Length: 2 * pageSize}, Op: latch.OpAnd}},
		}},
		{"unaligned", Formula{
			Terms: []Term{{M: Operand{LBA: 0, Offset: 100, Length: pageSize}, N: fullPage(1), Op: latch.OpAnd}},
		}},
		{"zero length", Formula{
			Terms: []Term{{M: Operand{LBA: 0}, N: Operand{LBA: 1}, Op: latch.OpAnd}},
		}},
	}
	for _, tc := range cases {
		if err := tc.f.Validate(pageSize); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestOperandPages(t *testing.T) {
	if got := fullPage(0).Pages(pageSize); got != 1 {
		t.Fatalf("full page spans %d", got)
	}
	o := Operand{LBA: 0, Offset: 512, Length: pageSize}
	if got := o.Pages(pageSize); got != 2 {
		t.Fatalf("offset page spans %d, want 2", got)
	}
	o = Operand{LBA: 0, Length: 3 * pageSize}
	if got := o.Pages(pageSize); got != 3 {
		t.Fatalf("3-page operand spans %d", got)
	}
}

func TestOpCodeRoundTrip(t *testing.T) {
	for _, op := range latch.Ops {
		code := FromOp(op)
		back, err := code.Op()
		if err != nil || back != op {
			t.Errorf("op %v: code %d -> %v, %v", op, code, back, err)
		}
	}
	if _, err := OpNone.Op(); err == nil {
		t.Error("OpNone decoded as an operation")
	}
}

// Property: any formula of full-page terms survives encode+parse with its
// structure intact.
func TestFormulaRoundTripProperty(t *testing.T) {
	f := func(termOps []uint8, combineSeed uint8) bool {
		if len(termOps) == 0 || len(termOps) > 8 {
			return true
		}
		var formula Formula
		for i, raw := range termOps {
			formula.Terms = append(formula.Terms, Term{
				M:  fullPage(uint64(i * 10)),
				N:  fullPage(uint64(i*10 + 1)),
				Op: latch.BinaryOps[int(raw)%len(latch.BinaryOps)],
			})
		}
		for i := 0; i < len(termOps)-1; i++ {
			formula.Combine = append(formula.Combine,
				latch.BinaryOps[(int(combineSeed)+i)%len(latch.BinaryOps)])
		}
		batches, err := RoundTrip(formula, pageSize)
		if err != nil || len(batches) != len(formula.Terms) {
			return false
		}
		for i, b := range batches {
			if b.Op != formula.Terms[i].Op || b.Order != i {
				return false
			}
			if i < len(formula.Combine) && (!b.HasNext || b.Extra != formula.Combine[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
