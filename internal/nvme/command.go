// Package nvme implements the host-side command encoding ParaBit layers on
// NVMe (paper §4.3.1, Fig. 10): bitwise-operation semantics tucked into the
// reserved bytes of ordinary NVMe read commands, and the device-side parse
// that reconstructs batches from them.
//
// A bitwise expression like (M0 ? N0) ! (M1 ? N1) — where ? is the
// intra-batch operation and ! the extra-batch operation combining batch
// results — is conveyed as one command pair per batch:
//
//   - the first operand's command carries operand tag 0, the intra-batch
//     operation type (i-t), the batch order, and — in the reserved DWords
//     2 and 3 — the logical address of the second operand;
//   - the second operand's command carries operand tag 1, the extra-batch
//     operation type (e-t), and, when the operand is split into
//     sub-operations, the logical address of the next sub-operation's
//     first operand in DWords 2 and 3.
//
// Operands larger than a flash page are split into page-sized
// sub-operations chained through that pointer; operands smaller than a
// page carry a sector-granularity offset and length in DWord 13's
// remaining reserved byte.
package nvme

import (
	"errors"
	"fmt"

	"parabit/internal/latch"
)

// SectorSize is the addressing granularity of sub-page operands on
// standard 8 KB pages (the "granularity of sector" in §4.3.1).
const SectorSize = 512

// SectorFor returns the sector granularity for a page size: 512 bytes
// when the page divides evenly into at most 256 addressable 512-byte
// sectors (the DWord 13 offset/count fields are 8 bits each, with count
// 0 meaning the whole page), otherwise pageSize/16 so the fields still
// cover the page. Small test geometries use sub-512-byte pages; pages
// beyond 128 KB would overflow the 8-bit sector fields at 512-byte
// granularity and get the coarser /16 sectors instead.
func SectorFor(pageSize int) int {
	if pageSize >= SectorSize && pageSize%SectorSize == 0 && pageSize/SectorSize <= 256 {
		return SectorSize
	}
	s := pageSize / 16
	if s < 1 {
		s = 1
	}
	return s
}

// OpCode is the 3-bit bitwise-operation type stored in the i-t and e-t
// fields. Values match latch.Op plus a "none" marker for unused e-t.
type OpCode uint8

// OpNone marks an absent extra-batch operation (the last batch).
const OpNone OpCode = 7 + 1 // one past the last latch op

// FromOp converts a latch operation to its wire code.
func FromOp(op latch.Op) OpCode { return OpCode(op) }

// Op converts a wire code back to a latch operation.
func (c OpCode) Op() (latch.Op, error) {
	if c >= OpNone {
		return 0, fmt.Errorf("nvme: opcode %d is not an operation", c)
	}
	return latch.Op(c), nil
}

// Command is one NVMe read command with ParaBit's vendor fields decoded.
// DWord fields are kept explicit so the wire round-trip is testable
// against the bit layout in Fig. 10.
type Command struct {
	// LBA is the logical block (flash-page) address of this operand page.
	LBA uint64
	// OperandTag is 0 for a batch's first operand, 1 for the second
	// (first reserved bit of DWord 13).
	OperandTag uint8
	// IntraOp is the intra-batch operation (3 bits of DWord 13, valid on
	// tag-0 commands).
	IntraOp OpCode
	// ExtraOp is the extra-batch operation combining this batch's result
	// with the next batch (3 bits of DWord 13, valid on tag-1 commands).
	ExtraOp OpCode
	// BatchOrder sequences batches of one formula (DWord 13 bits).
	BatchOrder uint8
	// Pointer is DWords 2 and 3: on a tag-0 command, the LBA of the
	// second operand; on a tag-1 command, the LBA of the next
	// sub-operation's first operand (PointerValid distinguishes zero).
	Pointer      uint64
	PointerValid bool
	// SectorOffset and SectorCount describe sub-page operands in sectors;
	// SectorCount 0 means the whole page.
	SectorOffset uint8
	SectorCount  uint8
	// SchemeHint carries the host's placement-scheme selection in reserved
	// DWord 14 (3 bits plus a valid flag), so a Flash-Cosmos or
	// location-free execution preference survives the wire instead of
	// riding an out-of-band channel. SchemeHintValid distinguishes an
	// absent hint from scheme 0.
	SchemeHint      uint8
	SchemeHintValid bool
}

// Wire layout constants for DWord 13 (all within the 4 reserved bytes).
const (
	tagBit        = 0     // bit 0: operand tag
	intraShift    = 1     // bits 1-3: i-t
	extraShift    = 4     // bits 4-6: e-t
	orderShift    = 8     // bits 8-15: batch order
	ptrValidBit   = 7     // bit 7: DWord2/3 pointer valid
	secOffShift   = 16    // bits 16-23: sector offset
	secCountShift = 24    // bits 24-31: sector count
	opMask        = 0b111 // 3-bit operation fields
)

// Wire layout constants for DWord 14: the placement-scheme hint.
const (
	schemeValidBit = 0 // bit 0: scheme hint present
	schemeShift    = 1 // bits 1-3: scheme
	// SchemeHintMax is the largest scheme the 3-bit hint field encodes.
	SchemeHintMax = opMask
)

// DWords is the raw reserved-field encoding: DWords 2, 3, 13 and 14 of
// the NVMe read command.
type DWords struct {
	DW2, DW3, DW13, DW14 uint32
}

// Encode packs the ParaBit fields into the reserved DWords.
func (c Command) Encode() DWords {
	var d DWords
	d.DW2 = uint32(c.Pointer)
	d.DW3 = uint32(c.Pointer >> 32)
	d.DW13 = uint32(c.OperandTag&1) |
		uint32(c.IntraOp&opMask)<<intraShift |
		uint32(c.ExtraOp&opMask)<<extraShift |
		uint32(c.BatchOrder)<<orderShift |
		uint32(c.SectorOffset)<<secOffShift |
		uint32(c.SectorCount)<<secCountShift
	if c.PointerValid {
		d.DW13 |= 1 << ptrValidBit
	}
	if c.SchemeHintValid {
		d.DW14 = 1<<schemeValidBit | uint32(c.SchemeHint&opMask)<<schemeShift
	}
	return d
}

// opFromWire reads a 3-bit field that, with the paper's "8 types" packing,
// cannot represent OpNone explicitly; absence is signaled by context (a
// tag-1 command of the final batch clears PointerValid and the field is
// ignored). Decode restores OpNone for those.
func opFromWire(v uint32) OpCode { return OpCode(v & opMask) }

// Decode unpacks reserved DWords into a command with the given LBA.
func Decode(lba uint64, d DWords) Command {
	c := Command{
		LBA:          lba,
		OperandTag:   uint8(d.DW13 & 1),
		IntraOp:      opFromWire(d.DW13 >> intraShift),
		ExtraOp:      opFromWire(d.DW13 >> extraShift),
		BatchOrder:   uint8(d.DW13 >> orderShift),
		Pointer:      uint64(d.DW2) | uint64(d.DW3)<<32,
		PointerValid: d.DW13&(1<<ptrValidBit) != 0,
		SectorOffset: uint8(d.DW13 >> secOffShift),
		SectorCount:  uint8(d.DW13 >> secCountShift),
	}
	if d.DW14&(1<<schemeValidBit) != 0 {
		c.SchemeHint = uint8(d.DW14>>schemeShift) & opMask
		c.SchemeHintValid = true
	}
	return c
}

// Validation errors.
var (
	ErrBadFormula = errors.New("nvme: malformed bitwise formula")
	ErrBadCommand = errors.New("nvme: malformed parabit command")
)

// Operand names a logical byte range participating in a bitwise formula.
// Length and offset must be sector-aligned; operands longer than a page
// are split into page-sized sub-operations during encoding.
type Operand struct {
	LBA    uint64 // first logical page
	Offset int    // byte offset within the first page (sector aligned)
	Length int    // byte length (sector aligned)
}

// Validate checks alignment. Operands spanning several pages must be
// whole pages: the wire encoding chains page-sized sub-operations whose
// commands have nowhere to carry a per-page offset, so a multi-page
// operand with an offset or a partial tail page cannot be represented
// (it would silently parse back as whole pages).
func (o Operand) Validate(pageSize int) error {
	if o.Length <= 0 {
		return fmt.Errorf("%w: operand length %d", ErrBadCommand, o.Length)
	}
	sector := SectorFor(pageSize)
	if o.Offset%sector != 0 || o.Length%sector != 0 {
		return fmt.Errorf("%w: operand %+v not aligned to %d-byte sectors", ErrBadCommand, o, sector)
	}
	if o.Offset < 0 || o.Offset >= pageSize {
		return fmt.Errorf("%w: operand offset %d outside page", ErrBadCommand, o.Offset)
	}
	if o.Pages(pageSize) > 1 && (o.Offset != 0 || o.Length%pageSize != 0) {
		return fmt.Errorf("%w: multi-page operand %+v must cover whole pages", ErrBadCommand, o)
	}
	return nil
}

// Pages returns how many flash pages the operand spans.
func (o Operand) Pages(pageSize int) int {
	return (o.Offset + o.Length + pageSize - 1) / pageSize
}

// Term is one batch of a formula: two operands and the operation between
// them (the paper's "(M ? N)").
type Term struct {
	M, N Operand
	Op   latch.Op
}

// Formula is a chain of terms combined left-to-right by extra-batch
// operations: term[0] !0 term[1] !1 term[2] ... The paper's batch list is
// built from exactly this shape.
type Formula struct {
	Terms []Term
	// Combine[i] merges the running result with Terms[i+1]'s result;
	// len(Combine) == len(Terms)-1.
	Combine []latch.Op
	// Scheme is the placement-scheme hint stamped into every command's
	// DWord 14 when SchemeValid is set; the device side recovers it with
	// StreamScheme. The value is opaque to this package (the SSD layer's
	// scheme enumeration), bounded only by the 3-bit wire field.
	Scheme      uint8
	SchemeValid bool
}

// MaxTerms bounds a formula's term count: the wire's batch-order field
// is 8 bits, so a 257th term would wrap onto batch 0.
const MaxTerms = 256

// Validate checks the formula shape and operand alignment.
func (f Formula) Validate(pageSize int) error {
	if len(f.Terms) == 0 {
		return fmt.Errorf("%w: no terms", ErrBadFormula)
	}
	if len(f.Terms) > MaxTerms {
		return fmt.Errorf("%w: %d terms exceed the %d the batch-order field addresses",
			ErrBadFormula, len(f.Terms), MaxTerms)
	}
	if len(f.Combine) != len(f.Terms)-1 {
		return fmt.Errorf("%w: %d terms need %d combine ops, have %d",
			ErrBadFormula, len(f.Terms), len(f.Terms)-1, len(f.Combine))
	}
	if f.SchemeValid && f.Scheme > SchemeHintMax {
		return fmt.Errorf("%w: scheme hint %d does not fit the 3-bit DWord 14 field",
			ErrBadFormula, f.Scheme)
	}
	for i, t := range f.Terms {
		if err := t.M.Validate(pageSize); err != nil {
			return fmt.Errorf("term %d operand M: %w", i, err)
		}
		if err := t.N.Validate(pageSize); err != nil {
			return fmt.Errorf("term %d operand N: %w", i, err)
		}
		if t.M.Length != t.N.Length {
			return fmt.Errorf("%w: term %d operand lengths %d vs %d",
				ErrBadFormula, i, t.M.Length, t.N.Length)
		}
	}
	return nil
}
