package nvme

import (
	"errors"
	"fmt"
	"sync"
)

// The transport layer promotes the command encoding from a pure
// pack/unpack exercise to the boundary a host-facing front end actually
// crosses: a bounded submission/completion queue pair per device. What
// travels on the submission queue is the wire form — the LBA plus the
// three reserved DWords of Fig. 10, nothing else — so anything the host
// side knows that does not survive Encode/Decode is gone by the time the
// device side parses, exactly as with real firmware.

// ErrQueueFull reports a submission that would overflow the queue's
// depth: the serving layer's back-pressure signal.
var ErrQueueFull = errors.New("nvme: submission queue full")

// WireCommand is one submission-queue entry as it crosses the host/device
// boundary.
type WireCommand struct {
	LBA uint64
	DW  DWords
}

// QueuePairStats counts transport activity.
type QueuePairStats struct {
	// Submitted counts entries accepted onto the submission queue,
	// Drained those consumed by the device side, Rejected submissions
	// bounced for lack of queue slots.
	Submitted int64
	Drained   int64
	Rejected  int64
	// MaxDepth is the high-water mark of entries queued at once.
	MaxDepth int
}

// QueuePair is a bounded submission queue between a host front end and
// one device. Safe for concurrent use; Exchange keeps one command
// stream's entries contiguous so interleaved submitters cannot shear a
// formula apart.
type QueuePair struct {
	mu    sync.Mutex
	depth int            // immutable after NewQueuePair
	sq    []WireCommand  // guarded by mu
	stats QueuePairStats // guarded by mu
}

// NewQueuePair builds a queue pair with the given submission depth.
// Depths below 1 get the NVMe-typical default of 1024.
func NewQueuePair(depth int) *QueuePair {
	if depth < 1 {
		depth = 1024
	}
	return &QueuePair{depth: depth}
}

// Depth returns the submission queue's capacity.
func (q *QueuePair) Depth() int { return q.depth }

// Stats returns a snapshot of transport counters.
func (q *QueuePair) Stats() QueuePairStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// submitLocked encodes commands onto the submission queue.
func (q *QueuePair) submitLocked(cmds []Command) error {
	if len(cmds) > q.depth-len(q.sq) {
		q.stats.Rejected += int64(len(cmds))
		return fmt.Errorf("%w: %d entries for %d free slots",
			ErrQueueFull, len(cmds), q.depth-len(q.sq))
	}
	for _, c := range cmds {
		q.sq = append(q.sq, WireCommand{LBA: c.LBA, DW: c.Encode()})
	}
	q.stats.Submitted += int64(len(cmds))
	if len(q.sq) > q.stats.MaxDepth {
		q.stats.MaxDepth = len(q.sq)
	}
	return nil
}

// drainLocked consumes and decodes every queued entry.
func (q *QueuePair) drainLocked() []Command {
	out := make([]Command, len(q.sq))
	for i, wc := range q.sq {
		out[i] = Decode(wc.LBA, wc.DW)
	}
	q.stats.Drained += int64(len(out))
	q.sq = q.sq[:0]
	return out
}

// Submit encodes the host-side commands onto the submission queue,
// failing with ErrQueueFull when the stream does not fit the free slots.
func (q *QueuePair) Submit(cmds []Command) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.submitLocked(cmds)
}

// Drain is the device side: it consumes every queued entry, decoding the
// wire form back into commands in submission order.
func (q *QueuePair) Drain() []Command {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.drainLocked()
}

// Exchange pushes one command stream across the boundary atomically:
// submit, device-side drain, decode. The returned commands are what the
// device firmware sees — everything that did not survive the wire
// encoding is gone. Concurrent exchanges never interleave their streams.
func (q *QueuePair) Exchange(cmds []Command) ([]Command, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.sq) != 0 {
		// A plain Submit left entries pending; drain them first so the
		// exchange returns only its own stream.
		return nil, fmt.Errorf("nvme: exchange with %d entries pending", len(q.sq))
	}
	if err := q.submitLocked(cmds); err != nil {
		return nil, err
	}
	return q.drainLocked(), nil
}
