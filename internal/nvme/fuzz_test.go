package nvme

import (
	"errors"
	"testing"

	"parabit/internal/latch"
)

// fuzzPageSizes includes the paper's 8 KB page plus the shapes that have
// broken the encoding before: tiny test pages, pages that don't divide
// into 512-byte sectors, and pages large enough to overflow 8-bit sector
// fields at 512-byte granularity.
var fuzzPageSizes = []int{64, 256, 512, 3000, 4096, 8192, 1 << 17, 1 << 20}

// formulaFromBytes deterministically decodes a formula from fuzz input.
// It deliberately produces both valid and invalid shapes: duplicate and
// overlapping LPNs, sub-page operands at differing offsets, multi-page
// operands, zero terms, and term counts past the batch-order field.
func formulaFromBytes(data []byte, pageSize int) Formula {
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	nTerms := next()
	if next()%8 == 0 {
		nTerms += next() * 4 // occasionally overflow the 8-bit order field
	}
	sector := SectorFor(pageSize)
	perPage := pageSize / sector
	if perPage < 1 {
		perPage = 1
	}
	f := Formula{}
	for i := 0; i < nTerms; i++ {
		operand := func() Operand {
			o := Operand{LBA: uint64(next() % 8)} // small range → duplicates
			switch next() % 4 {
			case 0: // whole page
				o.Length = pageSize
			case 1: // sub-page, possibly offset
				o.Offset = (next() % perPage) * sector
				o.Length = (1 + next()%perPage) * sector
			case 2: // multi-page
				o.Length = (1 + next()%3) * pageSize
			default: // deliberately askew
				o.Offset = next()
				o.Length = next()
			}
			return o
		}
		t := Term{M: operand(), N: operand(), Op: latch.Op(next() % int(len(latch.Ops)))}
		f.Terms = append(f.Terms, t)
		if i > 0 {
			f.Combine = append(f.Combine, latch.Op(next()%int(len(latch.Ops))))
		}
	}
	if next()%16 == 0 && len(f.Combine) > 0 {
		f.Combine = f.Combine[:len(f.Combine)-1] // shape violation
	}
	if next()%4 != 0 {
		// Scheme hints, occasionally past the 3-bit DWord 14 field so the
		// overflow rejection path is exercised too.
		f.Scheme = uint8(next() % 12)
		f.SchemeValid = true
	}
	return f
}

// FuzzRoundTrip asserts the encode→wire→parse pipeline is lossless for
// every formula Validate accepts, and errors (rather than silently
// mangling) for every formula it rejects.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0, 0, 1}, 2)          // single whole-page term
	f.Add([]byte{2, 1, 3, 0, 3, 0, 3, 1, 3, 1, 2, 5}, 4)    // duplicate LPNs across terms
	f.Add([]byte{1, 1, 0, 1, 2, 3, 0, 1, 4, 2, 1}, 1)       // sub-page operands, differing offsets
	f.Add([]byte{1, 1, 0, 2, 2, 0, 2, 1, 1}, 7)             // multi-page operands, 128 KB pages
	f.Add([]byte{200, 0, 90, 0, 0, 0, 0, 0}, 3)             // term count past the order field
	f.Add([]byte{3, 1, 0, 0, 1, 0, 2, 0, 0, 5, 5, 5, 5}, 5) // three-term chain
	f.Fuzz(func(t *testing.T, data []byte, pageSel int) {
		pageSize := fuzzPageSizes[((pageSel%len(fuzzPageSizes))+len(fuzzPageSizes))%len(fuzzPageSizes)]
		formula := formulaFromBytes(data, pageSize)
		batches, err := RoundTrip(formula, pageSize)
		if verr := formula.Validate(pageSize); verr != nil {
			if err == nil {
				t.Fatalf("Validate rejects (%v) but RoundTrip accepted", verr)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid formula failed round-trip: %v", err)
		}
		checkBatchesMatch(t, formula, batches, pageSize)
		// The scheme hint must survive the wire exactly as submitted.
		cmds, err := EncodeFormula(formula, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range cmds {
			cmds[i] = Decode(c.LBA, c.Encode())
		}
		scheme, ok, err := StreamScheme(cmds)
		if err != nil {
			t.Fatalf("StreamScheme on a clean stream: %v", err)
		}
		if ok != formula.SchemeValid || (ok && scheme != formula.Scheme) {
			t.Fatalf("scheme hint (%d,%v) after wire, submitted (%d,%v)",
				scheme, ok, formula.Scheme, formula.SchemeValid)
		}
	})
}

// checkBatchesMatch is the differential oracle: the parsed batches must
// reproduce the formula exactly — term order, operations, per-page
// operand addresses, and sub-page offsets for both operands.
func checkBatchesMatch(t *testing.T, f Formula, batches []Batch, pageSize int) {
	t.Helper()
	if len(batches) != len(f.Terms) {
		t.Fatalf("%d batches for %d terms", len(batches), len(f.Terms))
	}
	for i, b := range batches {
		term := f.Terms[i]
		if b.Order != i {
			t.Fatalf("batch %d has order %d", i, b.Order)
		}
		if b.Op != term.Op {
			t.Fatalf("batch %d op %v, term op %v", i, b.Op, term.Op)
		}
		wantNext := i < len(f.Terms)-1
		if b.HasNext != wantNext {
			t.Fatalf("batch %d HasNext=%v, want %v", i, b.HasNext, wantNext)
		}
		if wantNext && b.Extra != f.Combine[i] {
			t.Fatalf("batch %d extra %v, combine %v", i, b.Extra, f.Combine[i])
		}
		subs := term.M.Pages(pageSize)
		if n := term.N.Pages(pageSize); n > subs {
			subs = n
		}
		if len(b.Subs) != subs {
			t.Fatalf("batch %d has %d sub-ops, want %d", i, len(b.Subs), subs)
		}
		for si, sub := range b.Subs {
			if sub.M != term.M.LBA+uint64(si) || sub.N != term.N.LBA+uint64(si) {
				t.Fatalf("batch %d sub %d addresses (%d,%d), want (%d,%d)",
					i, si, sub.M, sub.N, term.M.LBA+uint64(si), term.N.LBA+uint64(si))
			}
			wantOff, wantNOff, wantLen := 0, 0, pageSize
			if subs == 1 && (term.M.Offset != 0 || term.M.Length < pageSize) {
				wantOff, wantNOff, wantLen = term.M.Offset, term.N.Offset, term.M.Length
			}
			if sub.SectorOffset != wantOff || sub.NSectorOffset != wantNOff || sub.Length != wantLen {
				t.Fatalf("batch %d sub %d span %d+%d/%d@N, want %d+%d/%d@N (len %d vs %d)",
					i, si, sub.SectorOffset, sub.Length, sub.NSectorOffset,
					wantOff, wantLen, wantNOff, sub.Length, wantLen)
			}
		}
	}
}

// The regressions the fuzzer flushed out, pinned as plain tests.

func TestFormulaRejectsOrderFieldOverflow(t *testing.T) {
	f := Formula{}
	for i := 0; i < MaxTerms+1; i++ {
		f.Terms = append(f.Terms, Term{
			M:  Operand{LBA: uint64(2 * i), Length: 512},
			N:  Operand{LBA: uint64(2*i + 1), Length: 512},
			Op: latch.OpAnd,
		})
		if i > 0 {
			f.Combine = append(f.Combine, latch.OpOr)
		}
	}
	if _, err := RoundTrip(f, 512); !errors.Is(err, ErrBadFormula) {
		t.Fatalf("257-term formula round-tripped: %v (the 8-bit order field wraps)", err)
	}
	f.Terms = f.Terms[:MaxTerms]
	f.Combine = f.Combine[:MaxTerms-1]
	if _, err := RoundTrip(f, 512); err != nil {
		t.Fatalf("256-term formula must fit the order field: %v", err)
	}
}

func TestSectorFieldsCoverLargePages(t *testing.T) {
	// 1 MB pages have 2048 512-byte sectors — past the 8-bit fields.
	// SectorFor must coarsen the granularity instead of overflowing.
	const pageSize = 1 << 20
	sector := SectorFor(pageSize)
	if pageSize/sector > 256 {
		t.Fatalf("sector %d leaves %d addressable units, field is 8 bits", sector, pageSize/sector)
	}
	f := Formula{Terms: []Term{{
		M:  Operand{LBA: 0, Offset: 3 * sector, Length: 2 * sector},
		N:  Operand{LBA: 1, Offset: 5 * sector, Length: 2 * sector},
		Op: latch.OpXor,
	}}}
	batches, err := RoundTrip(f, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	sub := batches[0].Subs[0]
	if sub.SectorOffset != 3*sector || sub.NSectorOffset != 5*sector || sub.Length != 2*sector {
		t.Fatalf("sub-page span lost on large page: %+v", sub)
	}
}

func TestMultiPageOperandWithOffsetRejected(t *testing.T) {
	f := Formula{Terms: []Term{{
		M:  Operand{LBA: 0, Offset: 512, Length: 2 * 4096},
		N:  Operand{LBA: 4, Length: 2 * 4096, Offset: 512},
		Op: latch.OpAnd,
	}}}
	if _, err := RoundTrip(f, 4096); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("offset multi-page operand round-tripped: %v (offset is silently dropped on the wire)", err)
	}
	// A partial tail page is equally unrepresentable.
	f.Terms[0].M = Operand{LBA: 0, Length: 4096 + 512}
	f.Terms[0].N = Operand{LBA: 4, Length: 4096 + 512}
	if _, err := RoundTrip(f, 4096); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("partial-tail multi-page operand round-tripped: %v", err)
	}
}

func TestSecondOperandOffsetSurvivesParse(t *testing.T) {
	f := Formula{Terms: []Term{{
		M:  Operand{LBA: 7, Offset: 0, Length: 1024},
		N:  Operand{LBA: 7, Offset: 2048, Length: 1024}, // same page, shifted
		Op: latch.OpOr,
	}}}
	batches, err := RoundTrip(f, 8192)
	if err != nil {
		t.Fatal(err)
	}
	sub := batches[0].Subs[0]
	if sub.NSectorOffset != 2048 {
		t.Fatalf("N operand offset %d after parse, want 2048", sub.NSectorOffset)
	}
	if sub.SectorOffset != 0 || sub.Length != 1024 {
		t.Fatalf("M span corrupted: %+v", sub)
	}
}

func TestParseVerifiesChainsPerBatch(t *testing.T) {
	// Two interleaved batches of two sub-operations each. Stream-adjacency
	// chain checking rejects this legal interleaving (and, worse, accepts
	// broken chains that happen to be adjacent); per-batch checking must
	// accept it.
	mk := func(tag uint8, lba uint64, order uint8, ptr uint64, valid bool, intra, extra OpCode) Command {
		c := Command{LBA: lba, OperandTag: tag, BatchOrder: order, Pointer: ptr, PointerValid: valid,
			IntraOp: intra, ExtraOp: extra}
		return Decode(c.LBA, c.Encode())
	}
	const ps = 512
	cmds := []Command{
		// batch 0 sub 0: M=0,N=1, chain → 2
		mk(0, 0, 0, 1, true, FromOp(latch.OpAnd), 0),
		mk(1, 1, 0, 2, true, 0, FromOp(latch.OpXor)),
		// batch 1 sub 0: M=10,N=11, chain → 12
		mk(0, 10, 1, 11, true, FromOp(latch.OpOr), 0),
		mk(1, 11, 1, 12, true, 0, 0),
		// batch 0 sub 1: M=2,N=3
		mk(0, 2, 0, 3, true, FromOp(latch.OpAnd), 0),
		mk(1, 3, 0, 0, false, 0, FromOp(latch.OpXor)),
		// batch 1 sub 1: M=12,N=13
		mk(0, 12, 1, 13, true, FromOp(latch.OpOr), 0),
		mk(1, 13, 1, 0, false, 0, 0),
	}
	batches, err := ParseBatches(cmds, ps)
	if err != nil {
		t.Fatalf("legal interleaved stream rejected: %v", err)
	}
	if len(batches) != 2 || len(batches[0].Subs) != 2 || len(batches[1].Subs) != 2 {
		t.Fatalf("batch structure lost: %+v", batches)
	}
	if batches[0].Subs[1].M != 2 || batches[1].Subs[1].M != 12 {
		t.Fatalf("sub-ops misassigned: %+v", batches)
	}
	// Break batch 1's chain (sub 0 points at 99, not 12): stream order
	// hides this from adjacency checking, per-batch checking catches it.
	cmds[3] = mk(1, 11, 1, 99, true, 0, 0)
	if _, err := ParseBatches(cmds, ps); !errors.Is(err, ErrBadCommand) {
		t.Fatalf("broken per-batch chain accepted: %v", err)
	}
}
