package nvme

import (
	"fmt"

	"parabit/internal/latch"
)

// EncodeFormula lowers a validated formula to the NVMe command stream the
// host driver would submit: per batch, page-sized sub-operation pairs with
// the pointer chaining of §4.3.1/Fig. 11. The stream is ordered: for each
// term, sub-operation by sub-operation, first operand then second.
func EncodeFormula(f Formula, pageSize int) ([]Command, error) {
	if err := f.Validate(pageSize); err != nil {
		return nil, err
	}
	var cmds []Command
	for ti, term := range f.Terms {
		extra := OpNone
		if ti < len(f.Combine) {
			extra = FromOp(f.Combine[ti])
		}
		subs := term.M.Pages(pageSize)
		if n := term.N.Pages(pageSize); n > subs {
			subs = n
		}
		for si := 0; si < subs; si++ {
			mLBA := term.M.LBA + uint64(si)
			nLBA := term.N.LBA + uint64(si)
			first := Command{
				LBA:          mLBA,
				OperandTag:   0,
				IntraOp:      FromOp(term.Op),
				BatchOrder:   uint8(ti),
				Pointer:      nLBA, // binds the two operands of the pair
				PointerValid: true,
			}
			second := Command{
				LBA:        nLBA,
				OperandTag: 1,
				ExtraOp:    extra,
				BatchOrder: uint8(ti),
			}
			// Chain to the next sub-operation's first operand.
			if si+1 < subs {
				second.Pointer = term.M.LBA + uint64(si+1)
				second.PointerValid = true
			}
			// Sub-page operands carry sector offset/length; only a
			// single-page operand can be sub-page.
			if subs == 1 && (term.M.Offset != 0 || term.M.Length < pageSize) {
				sector := SectorFor(pageSize)
				first.SectorOffset = uint8(term.M.Offset / sector)
				first.SectorCount = uint8(term.M.Length / sector)
				second.SectorOffset = uint8(term.N.Offset / sector)
				second.SectorCount = uint8(term.N.Length / sector)
			}
			if f.SchemeValid {
				first.SchemeHint, first.SchemeHintValid = f.Scheme, true
				second.SchemeHint, second.SchemeHintValid = f.Scheme, true
			}
			cmds = append(cmds, first, second)
		}
	}
	return cmds, nil
}

// StreamScheme recovers the placement-scheme hint from a parsed command
// stream: every command must agree — all hintless, or all carrying the
// same scheme. A mixed stream is a malformed submission (two drivers'
// formulas sheared together, or a corrupted DWord 14) and errors rather
// than letting half a query execute under the wrong scheme.
func StreamScheme(cmds []Command) (uint8, bool, error) {
	if len(cmds) == 0 {
		return 0, false, nil
	}
	scheme, valid := cmds[0].SchemeHint, cmds[0].SchemeHintValid
	for i, c := range cmds[1:] {
		if c.SchemeHintValid != valid || (valid && c.SchemeHint != scheme) {
			return 0, false, fmt.Errorf("%w: command %d scheme hint (%d,%v) disagrees with stream (%d,%v)",
				ErrBadCommand, i+1, c.SchemeHint, c.SchemeHintValid, scheme, valid)
		}
	}
	return scheme, valid, nil
}

// SubOp is one device-side sub-operation: a bound pair of page-granularity
// operand reads (two "CMD"s of Fig. 11).
type SubOp struct {
	M, N uint64 // logical page addresses of the operands
	// SectorOffset and NSectorOffset are the byte offsets of the M and N
	// operands within their pages (from each command's sector fields);
	// 0 = page start. The two operands may start at different offsets.
	SectorOffset  int
	NSectorOffset int
	Length        int // byte length; pageSize when SectorCount was 0
}

// Batch is the device-side structure the CMD Parse module builds for one
// bitwise term (Fig. 11): its sub-operations, the intra-batch operation,
// and the extra-batch operation linking it to the following batch.
type Batch struct {
	Order   int
	Op      latch.Op
	Extra   latch.Op // combine with next batch's result
	HasNext bool     // whether Extra is meaningful
	Subs    []SubOp
}

// ParseBatches is the device-side CMD Parse module: it reconstructs the
// batch list from the submitted command stream, validating the pairing
// and pointer chaining invariants.
func ParseBatches(cmds []Command, pageSize int) ([]Batch, error) {
	if len(cmds) == 0 {
		return nil, fmt.Errorf("%w: empty command stream", ErrBadCommand)
	}
	if len(cmds)%2 != 0 {
		return nil, fmt.Errorf("%w: odd command count %d", ErrBadCommand, len(cmds))
	}
	byOrder := map[int]*Batch{}
	// lastSecond remembers each batch's most recent tag-1 command so the
	// sub-operation chain verifies per batch: batches may interleave in
	// the stream, so the previous command in stream order is not
	// necessarily this batch's predecessor.
	lastSecond := map[int]Command{}
	var orders []int
	for i := 0; i < len(cmds); i += 2 {
		first, second := cmds[i], cmds[i+1]
		if first.OperandTag != 0 || second.OperandTag != 1 {
			return nil, fmt.Errorf("%w: commands %d,%d have tags %d,%d",
				ErrBadCommand, i, i+1, first.OperandTag, second.OperandTag)
		}
		if !first.PointerValid || first.Pointer != second.LBA {
			return nil, fmt.Errorf("%w: command %d does not bind its pair (ptr %d vs LBA %d)",
				ErrBadCommand, i, first.Pointer, second.LBA)
		}
		if first.BatchOrder != second.BatchOrder {
			return nil, fmt.Errorf("%w: pair %d spans batches %d and %d",
				ErrBadCommand, i, first.BatchOrder, second.BatchOrder)
		}
		order := int(first.BatchOrder)
		b, ok := byOrder[order]
		if !ok {
			op, err := first.IntraOp.Op()
			if err != nil {
				return nil, fmt.Errorf("%w: batch %d intra op: %v", ErrBadCommand, order, err)
			}
			b = &Batch{Order: order, Op: op}
			if extraOp, err := second.ExtraOp.Op(); err == nil {
				b.Extra = extraOp
			}
			byOrder[order] = b
			orders = append(orders, order)
		}
		sub := SubOp{M: first.LBA, N: second.LBA, Length: pageSize}
		if first.SectorCount != 0 || second.SectorCount != 0 {
			if first.SectorCount != second.SectorCount {
				return nil, fmt.Errorf("%w: pair %d sector counts differ (%d vs %d)",
					ErrBadCommand, i, first.SectorCount, second.SectorCount)
			}
			sector := SectorFor(pageSize)
			sub.SectorOffset = int(first.SectorOffset) * sector
			sub.NSectorOffset = int(second.SectorOffset) * sector
			sub.Length = int(first.SectorCount) * sector
		}
		// Verify the sub-operation chain: this batch's previous pair must
		// have pointed its second command at this pair's first operand.
		if len(b.Subs) > 0 {
			prev := lastSecond[order]
			if !prev.PointerValid || prev.Pointer != first.LBA {
				return nil, fmt.Errorf("%w: batch %d sub-op %d not chained",
					ErrBadCommand, order, len(b.Subs))
			}
		}
		lastSecond[order] = second
		b.Subs = append(b.Subs, sub)
	}
	// Batches execute in order; later batches consume earlier results, so
	// orders must be dense from zero.
	out := make([]Batch, 0, len(orders))
	for want := 0; want < len(orders); want++ {
		b, ok := byOrder[want]
		if !ok {
			return nil, fmt.Errorf("%w: batch order %d missing", ErrBadCommand, want)
		}
		b.HasNext = want < len(orders)-1
		out = append(out, *b)
	}
	return out, nil
}

// RoundTrip is a convenience used by tests and the SSD front end: encode a
// formula to wire commands (including the DWord pack/unpack) and parse
// them back into batches, exactly as host firmware and device firmware
// would.
func RoundTrip(f Formula, pageSize int) ([]Batch, error) {
	cmds, err := EncodeFormula(f, pageSize)
	if err != nil {
		return nil, err
	}
	// Exercise the wire encoding: pack to DWords and decode again.
	wire := make([]Command, len(cmds))
	for i, c := range cmds {
		wire[i] = Decode(c.LBA, c.Encode())
		// OpNone cannot cross the 3-bit wire field; restore it from the
		// formula's shape the way real firmware would (final batch).
		if wire[i].OperandTag == 1 && c.ExtraOp == OpNone {
			wire[i].ExtraOp = OpNone
		}
	}
	return ParseBatches(wire, pageSize)
}
