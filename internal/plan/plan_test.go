package plan

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"parabit/internal/flash"
	"parabit/internal/latch"
)

// softRead builds a read function over deterministic per-LPN pages.
func softRead(pageSize int) func(lpn uint64) ([]byte, error) {
	return func(lpn uint64) ([]byte, error) {
		p := make([]byte, pageSize)
		r := rand.New(rand.NewSource(int64(lpn) + 17))
		r.Read(p)
		return p, nil
	}
}

func TestParseAndString(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical key
	}{
		{"1 & 2", "and(1,2)"},
		{"2 & 1", "and(1,2)"},
		{"1 & 2 & 3", "and(3,and(1,2))"}, // keys sort; Parse does not flatten
		{"1 | 2 ^ 3 & 4", "or(1,xor(2,and(3,4)))"},
		{"!(1 & 2)", "not(and(1,2))"},
		{"!!7", "not(not(7))"},
		{"1 ~& 2", "nand(1,2)"},
		{"1 ~| 2", "nor(1,2)"},
		{"1 ~^ 2", "xnor(1,2)"},
		{"(1 | 2) & (3 | 4)", "and(or(1,2),or(3,4))"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := e.Key(); got != c.want {
			t.Errorf("Parse(%q).Key() = %q, want %q", c.in, got, c.want)
		}
		// String must re-parse to the same canonical key.
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e.String(), err)
		}
		if back.Key() != e.Key() {
			t.Errorf("String round-trip of %q: %q != %q", c.in, back.Key(), e.Key())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "1 &", "& 1", "(1 | 2", "1 2", "foo", "1 & & 2", "!(", "1)"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestNormalizeFoldsComplements(t *testing.T) {
	cases := []struct {
		in   *Expr
		want string
	}{
		{Not(Not(Leaf(3))), "3"},
		{Not(And(Leaf(1), Leaf(2))), "nand(1,2)"},
		{Not(Or(Leaf(1), Leaf(2))), "nor(1,2)"},
		{Not(Xor(Leaf(1), Leaf(2))), "xnor(1,2)"},
		{Not(Nand(Leaf(1), Leaf(2))), "and(1,2)"},
		{Not(Nor(Leaf(1), Leaf(2))), "or(1,2)"},
		{Not(Xnor(Leaf(1), Leaf(2))), "xor(1,2)"},
		{And(And(Leaf(1), Leaf(2)), And(Leaf(3), Leaf(4))), "and(1,2,3,4)"},
		{Or(Leaf(1), Or(Leaf(2), Or(Leaf(3), Leaf(4)))), "or(1,2,3,4)"},
		{Xor(Xor(Leaf(1), Leaf(2)), Leaf(3)), "xor(1,2,3)"},
		// A 3-ary AND under NOT has no complement op; NOT survives.
		{Not(And(Leaf(1), Leaf(2), Leaf(3))), "not(and(1,2,3))"},
	}
	for _, c := range cases {
		n, err := Normalize(c.in)
		if err != nil {
			t.Fatalf("Normalize(%s): %v", c.in, err)
		}
		if got := n.Key(); got != c.want {
			t.Errorf("Normalize(%s).Key() = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizePreservesEval proves the rewrites are semantic no-ops by
// differential evaluation over random expressions.
func TestNormalizePreservesEval(t *testing.T) {
	read := softRead(64)
	rng := rand.New(rand.NewSource(42))
	var gen func(depth int) *Expr
	gen = func(depth int) *Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			return Leaf(uint64(rng.Intn(6)))
		}
		switch rng.Intn(7) {
		case 0:
			return Not(gen(depth - 1))
		case 1:
			return Nand(gen(depth-1), gen(depth-1))
		case 2:
			return Nor(gen(depth-1), gen(depth-1))
		case 3:
			return Xnor(gen(depth-1), gen(depth-1))
		case 4:
			return And(gen(depth-1), gen(depth-1))
		case 5:
			return Or(gen(depth-1), gen(depth-1))
		default:
			return Xor(gen(depth-1), gen(depth-1))
		}
	}
	for i := 0; i < 200; i++ {
		e := gen(4)
		n, err := Normalize(e)
		if err != nil {
			t.Fatalf("Normalize(%s): %v", e, err)
		}
		want, err := e.Eval(read)
		if err != nil {
			t.Fatal(err)
		}
		got, err := n.Eval(read)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("iteration %d: Normalize changed semantics of %s (-> %s)", i, e, n)
		}
	}
}

func TestFusedSequenceLegalAndCosted(t *testing.T) {
	for _, op := range []latch.Op{latch.OpAnd, latch.OpOr, latch.OpXor} {
		max := maxChainLen(op)
		if max < 2 {
			t.Fatalf("maxChainLen(%v) = %d", op, max)
		}
		for k := 2; k <= max; k++ {
			seq, err := FusedSequence(op, k)
			if err != nil {
				t.Fatalf("FusedSequence(%v, %d): %v", op, k, err)
			}
			if err := seq.Validate(); err != nil {
				t.Fatalf("FusedSequence(%v, %d) invalid: %v", op, k, err)
			}
			cost, err := flash.ChainCostLSB(op, k)
			if err != nil {
				t.Fatal(err)
			}
			if seq.SROs() != cost.SROs {
				t.Fatalf("FusedSequence(%v, %d): %d SROs, cost model %d", op, k, seq.SROs(), cost.SROs)
			}
			if len(seq.Steps) > latch.MaxSteps {
				t.Fatalf("FusedSequence(%v, %d): %d steps", op, k, len(seq.Steps))
			}
		}
		// One past the cap must refuse.
		if _, err := FusedSequence(op, max+1); err == nil {
			t.Errorf("FusedSequence(%v, %d) succeeded past MaxSteps", op, max+1)
		}
	}
	if _, err := FusedSequence(latch.OpNand, 3); err == nil {
		t.Error("FusedSequence(NAND) succeeded; complements must not fuse")
	}
}

// TestMWSSelection pins the planner's scheme-agnostic Flash-Cosmos
// preference: every MWS-computable fold within the sense-margin cap
// carries a validated single-sense program that strictly undercuts the
// chained one, and everything else (XOR, over-cap folds) carries none.
func TestMWSSelection(t *testing.T) {
	for k := 2; k <= latch.MaxMWSOperands; k++ {
		seq, ok := MWSSequence(latch.OpAnd, k)
		if !ok {
			t.Fatalf("MWSSequence(AND, %d) refused", k)
		}
		if err := seq.Validate(); err != nil {
			t.Fatalf("MWSSequence(AND, %d) invalid: %v", k, err)
		}
		if seq.SROs() != 1 {
			t.Fatalf("MWSSequence(AND, %d) senses %d times, want 1", k, seq.SROs())
		}
		if !MWSWins(latch.OpAnd, k) {
			t.Fatalf("MWSWins(AND, %d) = false; one sense must beat a %d-sense chain", k, k)
		}
	}
	if _, ok := MWSSequence(latch.OpAnd, latch.MaxMWSOperands+1); ok {
		t.Error("MWSSequence accepted a fold past the sense-margin cap")
	}
	if _, ok := MWSSequence(latch.OpXor, 4); ok {
		t.Error("MWSSequence accepted XOR; only single-sense-computable ops qualify")
	}
	if MWSWins(latch.OpXor, 4) {
		t.Error("MWSWins(XOR) = true")
	}

	// Compiled plans carry the MWS program on eligible fused steps.
	args := make([]*Expr, 8)
	for i := range args {
		args[i] = Leaf(uint64(i))
	}
	p, err := Compile(And(args...))
	if err != nil {
		t.Fatal(err)
	}
	st := p.Steps[p.Root()]
	if len(st.MWSSeq.Steps) == 0 {
		t.Fatal("8-wide AND fold compiled without an MWS program")
	}
	if err := st.MWSSeq.Validate(); err != nil {
		t.Fatalf("compiled MWS program invalid: %v", err)
	}
	if p.MWSChains != 1 {
		t.Fatalf("MWSChains = %d, want 1", p.MWSChains)
	}
	// XOR folds stay chain-only.
	px, err := Compile(Xor(Leaf(0), Leaf(1), Leaf(2)))
	if err != nil {
		t.Fatal(err)
	}
	if sx := px.Steps[px.Root()]; len(sx.MWSSeq.Steps) != 0 || px.MWSChains != 0 {
		t.Fatalf("XOR fold carries an MWS program: %+v (MWSChains=%d)", sx.MWSSeq, px.MWSChains)
	}
}

func TestCompileFusesChains(t *testing.T) {
	// Eight AND'd pages: one fused chain, one step.
	args := make([]*Expr, 8)
	for i := range args {
		args[i] = Leaf(uint64(i))
	}
	p, err := Compile(And(args...))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 || p.Steps[0].Kind != StepFused || len(p.Steps[0].Args) != 8 {
		t.Fatalf("want one 8-wide fused step, got %+v", p.Steps)
	}
	if p.FusedChains != 1 || p.FusedOperands != 8 {
		t.Fatalf("fusion counters = %d/%d", p.FusedChains, p.FusedOperands)
	}

	// Nested same-op chains flatten into the same single step.
	p2, err := Compile(And(And(Leaf(0), Leaf(1)), And(Leaf(2), And(Leaf(3), Leaf(4)))))
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Steps) != 1 || len(p2.Steps[0].Args) != 5 {
		t.Fatalf("nested AND did not flatten: %+v", p2.Steps)
	}
}

func TestCompileSplitsOverlongChains(t *testing.T) {
	// 40 OR operands exceed the 16-operand legal chain: expect multiple
	// fused steps, each within bounds, combined by a final fused step.
	args := make([]*Expr, 40)
	for i := range args {
		args[i] = Leaf(uint64(i))
	}
	p, err := Compile(Or(args...))
	if err != nil {
		t.Fatal(err)
	}
	max := maxChainLen(latch.OpOr)
	covered := 0
	for _, s := range p.Steps {
		if s.Kind != StepFused {
			t.Fatalf("unexpected step kind %v", s.Kind)
		}
		if len(s.Args) > max {
			t.Fatalf("step arity %d exceeds legal chain %d", len(s.Args), max)
		}
		if err := s.Seq.Validate(); err != nil {
			t.Fatalf("emitted sequence invalid: %v", err)
		}
		for _, r := range s.Args {
			if r.Leaf {
				covered++
			}
		}
	}
	if covered != 40 {
		t.Fatalf("steps cover %d leaves, want 40", covered)
	}
	root := p.Steps[p.Root()]
	if root.Kind != StepFused {
		t.Fatalf("root step kind %v", root.Kind)
	}
	if len(root.Leaves) != 40 {
		t.Fatalf("root leaf set %d, want 40", len(root.Leaves))
	}
}

func TestCompileSharesCommonSubexpressions(t *testing.T) {
	// (1&2) appears twice (once reordered); it must compile once.
	e := Or(Xor(And(Leaf(1), Leaf(2)), Leaf(3)), And(Leaf(2), Leaf(1)))
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	ands := 0
	for _, s := range p.Steps {
		if s.Kind == StepFused && s.Op == latch.OpAnd {
			ands++
		}
	}
	if ands != 1 {
		t.Fatalf("AND(1,2) compiled %d times, want 1 (steps: %+v)", ands, p.Steps)
	}
}

func TestCompileTopoOrder(t *testing.T) {
	e, err := Parse("!((1 & 2 & 3) ^ (4 | 5)) ~& (1 & 2 & 3)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range p.Steps {
		for _, r := range s.Args {
			if !r.Leaf && r.Step >= i {
				t.Fatalf("step %d references step %d", i, r.Step)
			}
		}
	}
}

func TestCacheHitMissInvalidate(t *testing.T) {
	vers := map[uint64]uint64{1: 1, 2: 1}
	verOf := func(lpn uint64) uint64 { return vers[lpn] }
	c := NewCache(1024, nil)
	if _, ok := c.Get("and(1,2)", verOf); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("and(1,2)", []byte{0xAA, 0xBB}, []uint64{1, 2}, verOf, 1e-4)
	got, ok := c.Get("and(1,2)", verOf)
	if !ok || got[0] != 0xAA {
		t.Fatalf("miss after Put: %v %v", got, ok)
	}
	// Returned slice is a copy.
	got[0] = 0
	if again, _ := c.Get("and(1,2)", verOf); again[0] != 0xAA {
		t.Fatal("Get returned shared storage")
	}
	// Bump a dependency version: entry must invalidate.
	vers[2]++
	if _, ok := c.Get("and(1,2)", verOf); ok {
		t.Fatal("served stale entry after operand version bump")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Hits != 2 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

type flatPricer float64

func (p flatPricer) MovementSeconds(n int64) float64 { return float64(p) * float64(n) }

func TestCacheEvictsCheapestPerByte(t *testing.T) {
	verOf := func(uint64) uint64 { return 0 }
	c := NewCache(2048, flatPricer(0)) // pure recompute pricing
	cheap := make([]byte, 1024)
	dear := make([]byte, 1024)
	c.Put("cheap", cheap, nil, verOf, 1e-6)
	c.Put("dear", dear, nil, verOf, 1e-2)
	// Inserting a third page forces one eviction: the cheap entry goes.
	c.Put("new", make([]byte, 1024), nil, verOf, 1e-3)
	if _, ok := c.Get("dear", verOf); !ok {
		t.Fatal("expensive entry evicted before cheap one")
	}
	if _, ok := c.Get("cheap", verOf); ok {
		t.Fatal("cheap entry survived")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
}

func TestCacheMovementPricing(t *testing.T) {
	verOf := func(uint64) uint64 { return 0 }
	// With a dominant movement price, the larger entry is worth more per
	// byte only through recompute cost; equal costs make scores equal per
	// byte, so LRU decides. Check the pricer is actually consulted by
	// giving the small entry a huge movement value.
	c := NewCache(1536, flatPricer(1e-3))
	c.Put("small", make([]byte, 512), nil, verOf, 0)
	c.Put("big", make([]byte, 1024), nil, verOf, 0)
	// Both score identically per byte under a linear pricer; the small
	// one is older, so it evicts first.
	c.Put("next", make([]byte, 1024), nil, verOf, 0)
	if _, ok := c.Get("big", verOf); ok {
		t.Fatal("LRU tiebreak evicted the newer entry")
	}
	if _, ok := c.Get("next", verOf); !ok {
		t.Fatal("inserted entry missing")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, nil)
	verOf := func(uint64) uint64 { return 0 }
	c.Put("k", []byte{1}, nil, verOf, 1)
	if _, ok := c.Get("k", verOf); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestFormulaRoundTrip(t *testing.T) {
	const pageSize = 512
	exprs := []string{
		"1 & 2",
		"(1 & 2) | (3 & 4)",
		"(1 ^ 2) & (3 | 4) & (5 ~^ 6)",
		"(1 ~& 2) ^ (3 ~| 4)",
		"!(1 & 2) | (3 & 4)", // normalizes to (1 ~& 2) | (3 & 4): two terms
	}
	for _, s := range exprs {
		e, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		back, ok, err := RoundTrip(e, pageSize)
		if err != nil {
			t.Fatalf("RoundTrip(%q): %v", s, err)
		}
		if !ok {
			t.Fatalf("RoundTrip(%q): not expressible, want expressible", s)
		}
		n, _ := Normalize(e)
		if back.Key() != n.Key() {
			t.Fatalf("RoundTrip(%q) = %q, want %q", s, back.Key(), n.Key())
		}
	}
	// Non-expressible shapes must return ok=false without error.
	for _, s := range []string{"1 & 2 & 3", "!(1 & 2 & 3) | (4 & 5)", "((1&2)|(3&4)) ^ (5&6)"} {
		e, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, err := RoundTrip(e, pageSize); err != nil {
			t.Fatalf("RoundTrip(%q): %v", s, err)
		} else if ok {
			t.Fatalf("RoundTrip(%q): expressible, want not", s)
		}
	}
}

func TestCompileEvalMatchesPlanSemantics(t *testing.T) {
	// Walk a compiled plan in software and compare against direct Eval —
	// proves splitting and CSE preserve semantics.
	read := softRead(32)
	exprs := []string{
		"1 & 2 & 3 & 4",
		"(1 | 2) ^ (3 & 4 & 5)",
		"!(1 ^ 2) | (3 ~& 4)",
		strings.Repeat("1 | ", 39) + "2", // forces chain splitting
	}
	for _, s := range exprs {
		e, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(e)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]byte, len(p.Steps))
		argData := func(r Ref) []byte {
			if r.Leaf {
				d, _ := read(r.LPN)
				return d
			}
			return append([]byte(nil), results[r.Step]...)
		}
		for i, st := range p.Steps {
			switch st.Kind {
			case StepRead:
				results[i] = argData(st.Args[0])
			case StepNot:
				d := argData(st.Args[0])
				for j := range d {
					d[j] = ^d[j]
				}
				results[i] = d
			default:
				acc := argData(st.Args[0])
				base, invert := baseOp(st.Op)
				for _, r := range st.Args[1:] {
					d := argData(r)
					for j := range acc {
						switch base {
						case latch.OpAnd:
							acc[j] &= d[j]
						case latch.OpOr:
							acc[j] |= d[j]
						case latch.OpXor:
							acc[j] ^= d[j]
						}
					}
				}
				if invert {
					for j := range acc {
						acc[j] = ^acc[j]
					}
				}
				results[i] = acc
			}
		}
		want, err := e.Eval(read)
		if err != nil {
			t.Fatal(err)
		}
		if string(results[p.Root()]) != string(want) {
			t.Fatalf("plan execution of %q diverges from Eval", s)
		}
	}
}

func TestLeafQueryCompilesToRead(t *testing.T) {
	p, err := Compile(Leaf(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 || p.Steps[0].Kind != StepRead {
		t.Fatalf("leaf plan: %+v", p.Steps)
	}
}

func TestExprKeyOrderInsensitive(t *testing.T) {
	a := And(Leaf(1), Or(Leaf(2), Leaf(3)))
	b := And(Or(Leaf(3), Leaf(2)), Leaf(1))
	if a.Key() != b.Key() {
		t.Fatalf("commutative reorder changed key: %q vs %q", a.Key(), b.Key())
	}
}

func ExampleParse() {
	e, _ := Parse("(1 & 2) | !(3 ^ 4)")
	n, _ := Normalize(e)
	fmt.Println(n.Key())
	// Output: or(and(1,2),xnor(3,4))
}
