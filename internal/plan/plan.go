package plan

import (
	"fmt"
	"sort"
	"strings"

	"parabit/internal/flash"
	"parabit/internal/latch"
)

// StepKind classifies one planned execution step.
type StepKind uint8

const (
	// StepRead is a plain page read: the whole query was a leaf.
	StepRead StepKind = iota
	// StepFused folds two or more operands with one associative operation
	// (AND, OR or XOR) as a single chained latch operation — the fusion
	// the planner exists to find.
	StepFused
	// StepOp applies a complementing binary operation (XNOR, NAND, NOR)
	// to exactly two operands.
	StepOp
	// StepNot complements one operand.
	StepNot
)

func (k StepKind) String() string {
	switch k {
	case StepRead:
		return "read"
	case StepFused:
		return "fused"
	case StepOp:
		return "op"
	case StepNot:
		return "not"
	}
	return "unknown"
}

// Ref names one input of a step: a logical page, or the result of an
// earlier step.
type Ref struct {
	Leaf bool
	LPN  uint64 // valid when Leaf
	Step int    // index into Plan.Steps when !Leaf
}

// Step is one unit of device work. Steps are topologically ordered: a
// step only references earlier steps.
type Step struct {
	Kind StepKind
	Op   latch.Op
	Args []Ref
	// Key is the canonical cache key of the sub-expression this step
	// computes (Expr.Key form).
	Key string
	// Leaves are the de-duplicated logical pages this step's value
	// transitively depends on — the cache entry's invalidation set.
	Leaves []uint64
	// Seq is the validated chained latch control program for StepFused
	// steps (the correctness rail: it passed latch.Sequence.Validate and
	// its sense count matches flash.ChainCostLSB). Empty for other kinds.
	Seq latch.Sequence
	// MWSSeq is the Flash-Cosmos single-sense control program for the same
	// fold, present when the op and operand count admit one AND it beats
	// the chained program (MWSWins) — the program a SchemeFlashCosmos
	// execution realizes when the operands are block-colocated. Empty
	// otherwise.
	MWSSeq latch.Sequence
}

// Plan is a compiled query: steps in execution order, the last step
// producing the query result.
type Plan struct {
	Steps []Step
	// FusedChains counts StepFused steps — chains the planner fused
	// instead of issuing pairwise.
	FusedChains int
	// FusedOperands counts operands covered by fused chains.
	FusedOperands int
	// MWSChains counts fused steps that also carry a Flash-Cosmos
	// multi-wordline program (MWSSeq) — folds a SchemeFlashCosmos
	// execution can collapse to a single sense when the operands land in
	// one block.
	MWSChains int
}

// Root returns the index of the final step.
func (p *Plan) Root() int { return len(p.Steps) - 1 }

// maxChainLen returns the largest operand count whose fused control
// program fits the circuit's MaxSteps bound, derived from the same step
// templates FusedSequence emits (AND grows 2 steps per operand, OR 4,
// XOR 8 past its 12-step base).
func maxChainLen(op latch.Op) int {
	switch op {
	case latch.OpAnd:
		return (latch.MaxSteps - 2) / 2
	case latch.OpOr:
		return latch.MaxSteps / 4
	case latch.OpXor:
		return (latch.MaxSteps-12)/8 + 2
	}
	return 2
}

// FusedSequence builds the chained location-free control program folding k
// aligned LSB operands with one associative operation — the latch-level
// rendering of §4.2's chained execution, generalized from the two-operand
// LF-LSB sequences:
//
//   - AND accumulates in L1: one extra sense+M2 per operand;
//   - OR merges through L2: each operand is sensed, transferred, and L1
//     re-initialized for the next;
//   - XOR pays the two-phase complement per added operand (the partial
//     result and its complement are reloaded from the controller buffer —
//     register loads, not senses — then two senses fold the new operand).
//
// The sequence validates under latch.Sequence.Validate and its sense
// count equals flash.ChainCostLSB's SRO count; Compile checks both and
// refuses plans that violate either, so an illegal fusion can never reach
// the device.
func FusedSequence(op latch.Op, k int) (latch.Sequence, error) {
	if k < 2 {
		return latch.Sequence{}, fmt.Errorf("plan: fused chain of %d operands", k)
	}
	if k > maxChainLen(op) {
		return latch.Sequence{}, fmt.Errorf("plan: %v chain of %d operands exceeds %d control steps",
			op, k, latch.MaxSteps)
	}
	name := fmt.Sprintf("PLAN-CHAIN-%v-%d", op, k)
	var steps []latch.Step
	sense := func(wl int) latch.Step {
		return latch.Step{Kind: latch.StepSense, V: latch.VRead2, WL: wl}
	}
	senseInv := func(wl int) latch.Step {
		return latch.Step{Kind: latch.StepSense, V: latch.VRead2, WL: wl, Inverted: true}
	}
	step := func(kind latch.StepKind) latch.Step { return latch.Step{Kind: kind} }
	switch op {
	case latch.OpAnd:
		steps = append(steps, step(latch.StepInit))
		for wl := 0; wl < k; wl++ {
			steps = append(steps, sense(wl), step(latch.StepM2))
		}
		steps = append(steps, step(latch.StepM3))
	case latch.OpOr:
		steps = append(steps, step(latch.StepInit))
		for wl := 0; wl < k; wl++ {
			if wl > 0 {
				steps = append(steps, step(latch.StepReinitL1))
			}
			steps = append(steps, sense(wl), step(latch.StepM2), step(latch.StepM3))
		}
	case latch.OpXor:
		// First pair: the LF-LSB-XOR shape.
		steps = append(steps,
			step(latch.StepInitInv),
			sense(0), step(latch.StepM1),
			sense(1), step(latch.StepM2),
			step(latch.StepM3),
			step(latch.StepReinitL1),
			sense(0), step(latch.StepM2),
			senseInv(1), step(latch.StepM2),
			step(latch.StepM3),
		)
		// Each further operand: fold against the reloaded partial result
		// (P AND NOT x) OR (NOT P AND x), one normal and one inverted
		// sense. The partial and its complement arrive as register loads.
		for wl := 2; wl < k; wl++ {
			steps = append(steps,
				step(latch.StepReinitL1),
				sense(wl), step(latch.StepM2), step(latch.StepM3),
				step(latch.StepReinitL1),
				senseInv(wl), step(latch.StepM2), step(latch.StepM3),
			)
		}
	default:
		return latch.Sequence{}, fmt.Errorf("plan: op %v cannot fuse", op)
	}
	seq := latch.Sequence{Name: name, Steps: steps}
	if err := seq.Validate(); err != nil {
		return latch.Sequence{}, fmt.Errorf("plan: fused sequence invalid: %w", err)
	}
	cost, err := flash.ChainCostLSB(op, k)
	if err != nil {
		return latch.Sequence{}, err
	}
	if seq.SROs() != cost.SROs {
		return latch.Sequence{}, fmt.Errorf("plan: fused %v/%d sequence senses %d times, cost model says %d",
			op, k, seq.SROs(), cost.SROs)
	}
	return seq, nil
}

// MWSSequence returns the Flash-Cosmos multi-wordline control program
// folding k block-colocated operands in one sense, when the op's algebra
// and the sense-margin cap admit one. Like FusedSequence it returns only
// programs that pass latch.Sequence.Validate, so an illegal MWS can
// never reach the device through a compiled plan.
func MWSSequence(op latch.Op, k int) (latch.Sequence, bool) {
	if !latch.MWSComputable(op) || k < 2 || k > latch.MaxMWSOperands {
		return latch.Sequence{}, false
	}
	seq := latch.ForOpMWS(op, k)
	if err := seq.Validate(); err != nil {
		return latch.Sequence{}, false
	}
	return seq, true
}

// MWSWins reports whether the single multi-wordline sense beats the
// pairwise chained program for folding k operands with op. Today this is
// true whenever an MWS form exists — the MWS issues one SRO where the
// chain issues at least k — but it is stated as a sense-count comparison
// so the preference stays honest if either side's pricing changes.
func MWSWins(op latch.Op, k int) bool {
	mws, ok := MWSSequence(op, k)
	if !ok {
		return false
	}
	chain, err := FusedSequence(op, k)
	if err != nil {
		return true // no legal chain at all: the MWS is the only program
	}
	return mws.SROs() < chain.SROs()
}

// Normalize rewrites an expression into the planner's canonical form:
// nested chains of one associative operation flatten into a single n-ary
// node, double complements cancel, complements fold into complementing
// operations (NOT(AND(a,b)) becomes NAND(a,b) and vice versa NAND under a
// NOT unfolds back to AND), and the complement pairs XNOR/NAND/NOR under
// a NOT unwrap to their associative bases. The result is semantically
// identical (same Eval) and maximally fusable.
func Normalize(e *Expr) (*Expr, error) {
	if err := e.check(); err != nil {
		return nil, err
	}
	return normalize(e), nil
}

func normalize(e *Expr) *Expr {
	if e.leaf {
		return e
	}
	args := make([]*Expr, len(e.Args))
	for i, a := range e.Args {
		args[i] = normalize(a)
	}
	switch e.Op {
	case latch.OpNotLSB, latch.OpNotMSB:
		a := args[0]
		if a.leaf {
			return node(latch.OpNotLSB, a)
		}
		switch a.Op {
		case latch.OpNotLSB, latch.OpNotMSB:
			return a.Args[0]
		case latch.OpAnd:
			if len(a.Args) == 2 {
				return node(latch.OpNand, a.Args...)
			}
		case latch.OpOr:
			if len(a.Args) == 2 {
				return node(latch.OpNor, a.Args...)
			}
		case latch.OpXor:
			if len(a.Args) == 2 {
				return node(latch.OpXnor, a.Args...)
			}
		case latch.OpNand:
			return node(latch.OpAnd, a.Args...)
		case latch.OpNor:
			return node(latch.OpOr, a.Args...)
		case latch.OpXnor:
			return node(latch.OpXor, a.Args...)
		}
		return node(latch.OpNotLSB, a)
	case latch.OpAnd, latch.OpOr, latch.OpXor:
		// Flatten same-op children: And(And(a,b),c) = And(a,b,c).
		var flat []*Expr
		for _, a := range args {
			if !a.leaf && a.Op == e.Op {
				flat = append(flat, a.Args...)
			} else {
				flat = append(flat, a)
			}
		}
		return node(e.Op, flat...)
	}
	return node(e.Op, args...)
}

// compiler accumulates steps with common-sub-expression sharing.
type compiler struct {
	steps []Step
	memo  map[string]Ref // canonical key -> computed ref
	plan  *Plan
}

// Compile lowers an expression to an executable plan: normalization,
// common-sub-expression elimination (structurally equal sub-queries,
// including reordered commutative ones, compile to one shared step), and
// chain fusion with legality-bounded splitting. Every fused step carries
// its validated control program.
func Compile(e *Expr) (*Plan, error) {
	n, err := Normalize(e)
	if err != nil {
		return nil, err
	}
	c := &compiler{memo: map[string]Ref{}, plan: &Plan{}}
	root, err := c.emit(n)
	if err != nil {
		return nil, err
	}
	if root.Leaf {
		// The whole query is one page: a plain read step.
		c.add(Step{
			Kind:   StepRead,
			Args:   []Ref{root},
			Key:    n.Key(),
			Leaves: []uint64{root.LPN},
		})
	}
	c.plan.Steps = c.steps
	return c.plan, nil
}

func (c *compiler) add(s Step) Ref {
	c.steps = append(c.steps, s)
	r := Ref{Step: len(c.steps) - 1}
	c.memo[s.Key] = r
	return r
}

func (c *compiler) refKey(r Ref) string {
	if r.Leaf {
		return Leaf(r.LPN).Key()
	}
	return c.steps[r.Step].Key
}

func (c *compiler) refLeaves(r Ref) []uint64 {
	if r.Leaf {
		return []uint64{r.LPN}
	}
	return c.steps[r.Step].Leaves
}

// nodeKey is the canonical key of an op over already-compiled refs.
func (c *compiler) nodeKey(op latch.Op, refs []Ref) string {
	keys := make([]string, len(refs))
	for i, r := range refs {
		keys[i] = c.refKey(r)
	}
	sort.Strings(keys)
	var name string
	switch op {
	case latch.OpAnd:
		name = "and"
	case latch.OpOr:
		name = "or"
	case latch.OpXor:
		name = "xor"
	case latch.OpXnor:
		name = "xnor"
	case latch.OpNand:
		name = "nand"
	case latch.OpNor:
		name = "nor"
	case latch.OpNotLSB, latch.OpNotMSB:
		name = "not"
	}
	return name + "(" + strings.Join(keys, ",") + ")"
}

func (c *compiler) leavesOf(refs []Ref) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, r := range refs {
		for _, lpn := range c.refLeaves(r) {
			if !seen[lpn] {
				seen[lpn] = true
				out = append(out, lpn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *compiler) emit(e *Expr) (Ref, error) {
	if e.leaf {
		return Ref{Leaf: true, LPN: e.LPN}, nil
	}
	if r, ok := c.memo[e.Key()]; ok {
		return r, nil
	}
	refs := make([]Ref, len(e.Args))
	for i, a := range e.Args {
		r, err := c.emit(a)
		if err != nil {
			return Ref{}, err
		}
		refs[i] = r
	}
	switch e.Op {
	case latch.OpAnd, latch.OpOr, latch.OpXor:
		r, err := c.emitFused(e.Op, refs)
		if err == nil {
			// Split chains register under nested segment keys; remember
			// the flat n-ary key too, so an identical sub-query re-uses
			// the compiled result.
			c.memo[e.Key()] = r
		}
		return r, err
	case latch.OpXnor, latch.OpNand, latch.OpNor:
		return c.add(Step{
			Kind:   StepOp,
			Op:     e.Op,
			Args:   refs,
			Key:    c.nodeKey(e.Op, refs),
			Leaves: c.leavesOf(refs),
		}), nil
	case latch.OpNotLSB, latch.OpNotMSB:
		return c.add(Step{
			Kind:   StepNot,
			Op:     latch.OpNotLSB,
			Args:   refs,
			Key:    c.nodeKey(latch.OpNotLSB, refs),
			Leaves: c.leavesOf(refs),
		}), nil
	}
	return Ref{}, fmt.Errorf("%w: op %v", ErrBadExpr, e.Op)
}

// emitFused lowers an n-ary associative fold, splitting chains longer
// than the circuit's legal control-program length into legal segments
// whose results fold in a further fused step.
func (c *compiler) emitFused(op latch.Op, refs []Ref) (Ref, error) {
	maxK := maxChainLen(op)
	for len(refs) > maxK {
		var next []Ref
		for lo := 0; lo < len(refs); lo += maxK {
			hi := lo + maxK
			if hi > len(refs) {
				hi = len(refs)
			}
			// A single trailing operand cannot chain alone; carry it to
			// the next level, where it folds with the segment results.
			if hi-lo == 1 {
				next = append(next, refs[lo])
				continue
			}
			r, err := c.fuseStep(op, refs[lo:hi])
			if err != nil {
				return Ref{}, err
			}
			next = append(next, r)
		}
		refs = next
	}
	return c.fuseStep(op, refs)
}

func (c *compiler) fuseStep(op latch.Op, refs []Ref) (Ref, error) {
	if r, ok := c.memo[c.nodeKey(op, refs)]; ok {
		return r, nil
	}
	seq, err := FusedSequence(op, len(refs))
	if err != nil {
		return Ref{}, err
	}
	c.plan.FusedChains++
	c.plan.FusedOperands += len(refs)
	// Prefer the single multi-wordline sense whenever it is legal and
	// strictly cheaper than the chain; the chained program stays on the
	// step as the fallback shape for schemes (or placements) that cannot
	// realize the MWS.
	var mwsSeq latch.Sequence
	if MWSWins(op, len(refs)) {
		mwsSeq, _ = MWSSequence(op, len(refs))
		c.plan.MWSChains++
	}
	return c.add(Step{
		Kind:   StepFused,
		Op:     op,
		Args:   append([]Ref(nil), refs...),
		Key:    c.nodeKey(op, refs),
		Leaves: c.leavesOf(refs),
		Seq:    seq,
		MWSSeq: mwsSeq,
	}), nil
}
