package plan

// The planner's result cache models the controller's DRAM holding hot
// intermediate query results. A hit replaces a chained flash operation
// (tens of microseconds of sensing plus reallocation programs) with a
// DRAM fetch; the eviction policy keeps the entries whose loss would cost
// the most to repair, priced the way the paper's Ambit comparison prices
// data movement (internal/pim): a victim's retention value is its
// measured recompute time plus the movement cost of its bytes, per byte
// of DRAM it occupies.
//
// Correctness comes from FTL mapping versions: every entry snapshots the
// version of each logical page its value was derived from, and a lookup
// revalidates the snapshot. Any overwrite, trim, GC migration, read
// reclaim, wear-leveling move or bad-block retirement bumps a version
// (ftl.FTL.Version), so a stale intermediate can never be served — at
// worst a content-preserving migration costs a spurious recompute.

// Pricer prices data movement; *pim.Device satisfies it with the
// Ambit-calibrated link model.
type Pricer interface {
	MovementSeconds(n int64) float64
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Invalidations int64
	// Bytes is the current occupancy; Entries the current entry count.
	Bytes   int64
	Entries int64
}

type entry struct {
	key  string
	data []byte
	// deps and vers snapshot the FTL mapping versions of every logical
	// page the value derives from, parallel slices.
	deps []uint64
	vers []uint64
	// costSeconds is the measured time the device spent computing the
	// value — what a miss would pay again.
	costSeconds float64
	lastUse     uint64
}

// Cache is a capacity-bounded result store keyed by canonical expression
// keys. Not safe for concurrent use; the owning device serializes access.
type Cache struct {
	capacity int64
	used     int64
	entries  map[string]*entry
	clock    uint64
	pricer   Pricer
	stats    CacheStats
}

// NewCache builds a cache bounded to capacity bytes of simulated
// controller DRAM. A nil pricer prices movement at zero (pure
// recompute-time eviction). capacity <= 0 disables the cache: every
// lookup misses and stores are dropped.
func NewCache(capacity int64, pricer Pricer) *Cache {
	return &Cache{
		capacity: capacity,
		entries:  map[string]*entry{},
		pricer:   pricer,
	}
}

// Stats returns a snapshot of cache counters.
func (c *Cache) Stats() CacheStats {
	s := c.stats
	s.Bytes = c.used
	s.Entries = int64(len(c.entries))
	return s
}

// Get returns the cached value for key if present and still valid under
// the current FTL mapping versions (verOf). The returned slice is the
// caller's to keep.
func (c *Cache) Get(key string, verOf func(lpn uint64) uint64) ([]byte, bool) {
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	for i, lpn := range e.deps {
		if verOf(lpn) != e.vers[i] {
			// An operand was overwritten, trimmed or migrated since the
			// value was computed: drop the entry and miss.
			c.remove(e)
			c.stats.Invalidations++
			c.stats.Misses++
			return nil, false
		}
	}
	c.clock++
	e.lastUse = c.clock
	c.stats.Hits++
	return append([]byte(nil), e.data...), true
}

// Put stores a computed value: its canonical key, the logical pages it
// derives from (whose versions are snapshotted via verOf), and the
// measured seconds the computation took. Values larger than the whole
// cache are not stored.
func (c *Cache) Put(key string, data []byte, deps []uint64, verOf func(lpn uint64) uint64, costSeconds float64) {
	size := int64(len(data))
	if size == 0 || size > c.capacity {
		return
	}
	if old, ok := c.entries[key]; ok {
		c.remove(old)
	}
	for c.used+size > c.capacity {
		if !c.evictOne() {
			return
		}
	}
	vers := make([]uint64, len(deps))
	for i, lpn := range deps {
		vers[i] = verOf(lpn)
	}
	c.clock++
	e := &entry{
		key:         key,
		data:        append([]byte(nil), data...),
		deps:        append([]uint64(nil), deps...),
		vers:        vers,
		costSeconds: costSeconds,
		lastUse:     c.clock,
	}
	c.entries[key] = e
	c.used += size
}

// Invalidate drops every entry depending on the given logical page.
// Callers with version tracking normally rely on Get's revalidation; this
// is the eager path for events that bypass the FTL (e.g. test hooks).
func (c *Cache) Invalidate(lpn uint64) int {
	var victims []*entry
	for _, e := range c.entries {
		for _, dep := range e.deps {
			if dep == lpn {
				victims = append(victims, e)
				break
			}
		}
	}
	for _, e := range victims {
		c.remove(e)
		c.stats.Invalidations++
	}
	return len(victims)
}

func (c *Cache) remove(e *entry) {
	delete(c.entries, e.key)
	c.used -= int64(len(e.data))
}

// score is the entry's retention value: seconds saved per byte held. The
// movement term prices what shipping the bytes back in would cost on the
// Ambit-calibrated link, so big cheap pages lose to small expensive
// intermediates.
func (c *Cache) score(e *entry) float64 {
	move := 0.0
	if c.pricer != nil {
		move = c.pricer.MovementSeconds(int64(len(e.data)))
	}
	return (e.costSeconds + move) / float64(len(e.data))
}

// evictOne removes the lowest-value entry (least-recently-used breaks
// ties deterministically: lastUse values are unique). Returns false when
// the cache is already empty.
func (c *Cache) evictOne() bool {
	var victim *entry
	var victimScore float64
	for _, e := range c.entries {
		s := c.score(e)
		if victim == nil || s < victimScore ||
			(s == victimScore && e.lastUse < victim.lastUse) {
			victim, victimScore = e, s
		}
	}
	if victim == nil {
		return false
	}
	c.remove(victim)
	c.stats.Evictions++
	return true
}
