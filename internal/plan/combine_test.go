package plan

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"parabit/internal/latch"
)

// TestCombineMatchesEval pins the host-side fold to the software golden:
// combining materialized operand pages must equal evaluating the same
// n-ary node, for every op the planner emits.
func TestCombineMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = make([]byte, 64)
		rng.Read(pages[i])
	}
	read := func(lpn uint64) ([]byte, error) { return pages[lpn], nil }
	leaves := func(n int) []*Expr {
		out := make([]*Expr, n)
		for i := range out {
			out[i] = Leaf(uint64(i))
		}
		return out
	}
	cases := []struct {
		op    latch.Op
		arity int
		expr  *Expr
	}{
		{latch.OpAnd, 4, And(leaves(4)...)},
		{latch.OpOr, 3, Or(leaves(3)...)},
		{latch.OpXor, 4, Xor(leaves(4)...)},
		{latch.OpXnor, 2, Xnor(Leaf(0), Leaf(1))},
		{latch.OpNand, 2, Nand(Leaf(0), Leaf(1))},
		{latch.OpNor, 2, Nor(Leaf(0), Leaf(1))},
		{latch.OpNotLSB, 1, Not(Leaf(0))},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.op), func(t *testing.T) {
			want, err := tc.expr.Eval(read)
			if err != nil {
				t.Fatalf("eval: %v", err)
			}
			got, err := Combine(tc.op, pages[:tc.arity])
			if err != nil {
				t.Fatalf("combine: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("combine diverges from eval")
			}
		})
	}
}

func TestCombineRejectsBadShapes(t *testing.T) {
	p := make([]byte, 8)
	if _, err := Combine(latch.OpAnd, [][]byte{p}); !errors.Is(err, ErrBadExpr) {
		t.Fatalf("1-page AND = %v, want ErrBadExpr", err)
	}
	if _, err := Combine(latch.OpNotLSB, [][]byte{p, p}); !errors.Is(err, ErrBadExpr) {
		t.Fatalf("2-page NOT = %v, want ErrBadExpr", err)
	}
	if _, err := Combine(latch.OpAnd, [][]byte{p, make([]byte, 4)}); !errors.Is(err, ErrBadExpr) {
		t.Fatalf("ragged pages = %v, want ErrBadExpr", err)
	}
}

func TestCombineDoesNotAliasInputs(t *testing.T) {
	a := []byte{0xff, 0x00}
	b := []byte{0x0f, 0xf0}
	out, err := Combine(latch.OpAnd, [][]byte{a, b})
	if err != nil {
		t.Fatalf("combine: %v", err)
	}
	out[0] = 0
	if a[0] != 0xff {
		t.Fatal("combine aliased its first input")
	}
}
