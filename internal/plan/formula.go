package plan

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/nvme"
)

// The nvme bridge lowers planner expressions onto the paper's §4.3.1
// command encoding and lifts parsed batches back, so a planned query can
// ride the same host-interface round-trip ordinary formulas do. The wire
// format expresses "(M0 ? N0) ! (M1 ? N1) ! ..." — binary terms over
// pages combined left-to-right — which covers exactly the expressions
// whose top-level node combines binary leaf-pair terms.

// ToFormula lowers an expression to the NVMe formula shape. It succeeds
// when the (normalized) expression is a binary operation over two leaves,
// or an n-ary node whose arguments are all binary operations over two
// leaves (each argument becomes a batch, the node's operation the
// extra-batch combine). Returns ok=false for expressions the wire format
// cannot carry — deeper nesting, NOT, or mixed leaf/term arguments.
func ToFormula(e *Expr, pageSize int) (nvme.Formula, bool) {
	if e == nil || e.leaf {
		return nvme.Formula{}, false
	}
	pageOperand := func(lpn uint64) nvme.Operand {
		return nvme.Operand{LBA: lpn, Length: pageSize}
	}
	leafTerm := func(t *Expr) (nvme.Term, bool) {
		if t.leaf || len(t.Args) != 2 || !t.Args[0].leaf || !t.Args[1].leaf {
			return nvme.Term{}, false
		}
		return nvme.Term{
			M:  pageOperand(t.Args[0].LPN),
			N:  pageOperand(t.Args[1].LPN),
			Op: t.Op,
		}, true
	}
	if t, ok := leafTerm(e); ok {
		return nvme.Formula{Terms: []nvme.Term{t}}, true
	}
	switch e.Op {
	case latch.OpAnd, latch.OpOr, latch.OpXor, latch.OpXnor, latch.OpNand, latch.OpNor:
	default:
		return nvme.Formula{}, false
	}
	f := nvme.Formula{}
	for i, a := range e.Args {
		t, ok := leafTerm(a)
		if !ok {
			return nvme.Formula{}, false
		}
		f.Terms = append(f.Terms, t)
		if i > 0 {
			f.Combine = append(f.Combine, e.Op)
		}
	}
	return f, true
}

// FromBatches lifts device-parsed batches back into an expression,
// inverting ToFormula: each single-page batch becomes a binary term, and
// terms fold left-to-right with the extra-batch operations. It rejects
// multi-sub-operation or sub-page batches — the planner only emits
// whole-page single-sub terms.
func FromBatches(batches []nvme.Batch, pageSize int) (*Expr, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("%w: no batches", ErrBadExpr)
	}
	var acc *Expr
	for i, b := range batches {
		if len(b.Subs) != 1 {
			return nil, fmt.Errorf("%w: batch %d has %d sub-operations, planner terms have 1",
				ErrBadExpr, i, len(b.Subs))
		}
		sub := b.Subs[0]
		if sub.SectorOffset != 0 || sub.NSectorOffset != 0 || sub.Length != pageSize {
			return nil, fmt.Errorf("%w: batch %d is sub-page (%d@%d), planner terms are whole pages",
				ErrBadExpr, i, sub.Length, sub.SectorOffset)
		}
		term := node(b.Op, Leaf(sub.M), Leaf(sub.N))
		if acc == nil {
			acc = term
			continue
		}
		// The previous batch's extra-batch op combines it with this term.
		prev := batches[i-1]
		if !prev.HasNext {
			return nil, fmt.Errorf("%w: batch %d has no extra-batch op but batch %d follows",
				ErrBadExpr, i-1, i)
		}
		acc = node(prev.Extra, acc, term)
	}
	if err := acc.check(); err != nil {
		return nil, err
	}
	return acc, nil
}

// RoundTrip pushes an expression through the full host-interface path —
// formula lowering, wire encoding, device-side parse, and lifting back —
// and verifies the reconstruction is canonically identical to the
// original. Returns the reconstructed expression and ok=true when the
// expression is wire-expressible; ok=false (and no error) when it is
// not. An error means the round-trip corrupted the query, which is a
// bug, never an expected outcome.
func RoundTrip(e *Expr, pageSize int) (*Expr, bool, error) {
	n, err := Normalize(e)
	if err != nil {
		return nil, false, err
	}
	f, ok := ToFormula(n, pageSize)
	if !ok {
		return nil, false, nil
	}
	batches, err := nvme.RoundTrip(f, pageSize)
	if err != nil {
		return nil, false, fmt.Errorf("plan: formula round-trip: %w", err)
	}
	back, err := FromBatches(batches, pageSize)
	if err != nil {
		return nil, false, err
	}
	backN, err := Normalize(back)
	if err != nil {
		return nil, false, err
	}
	if backN.Key() != n.Key() {
		return nil, false, fmt.Errorf("plan: query changed across the wire: %q became %q",
			n.Key(), backN.Key())
	}
	return backN, true, nil
}
