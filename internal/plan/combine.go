package plan

import (
	"fmt"

	"parabit/internal/latch"
)

// Combine applies one operation across already-materialized result pages
// in host software: the gather half of a scatter/gather query, where
// sub-expressions executed on different devices and only their result
// bytes are available. NOT takes exactly one page; the associative ops
// fold left to right with the same base-op/complement decomposition the
// in-flash chains use, so the bytes match a device execution of the same
// node exactly.
func Combine(op latch.Op, pages [][]byte) ([]byte, error) {
	if op == latch.OpNotLSB || op == latch.OpNotMSB {
		if len(pages) != 1 {
			return nil, fmt.Errorf("%w: NOT over %d pages", ErrBadExpr, len(pages))
		}
		out := append([]byte(nil), pages[0]...)
		for i := range out {
			out[i] = ^out[i]
		}
		return out, nil
	}
	if len(pages) < 2 {
		return nil, fmt.Errorf("%w: %s over %d pages", ErrBadExpr, op, len(pages))
	}
	base, invert := baseOp(op)
	acc := append([]byte(nil), pages[0]...)
	for _, p := range pages[1:] {
		if len(p) != len(acc) {
			return nil, fmt.Errorf("%w: page sizes %d vs %d", ErrBadExpr, len(p), len(acc))
		}
		for i := range acc {
			switch base {
			case latch.OpAnd:
				acc[i] &= p[i]
			case latch.OpOr:
				acc[i] |= p[i]
			case latch.OpXor:
				acc[i] ^= p[i]
			default:
				return nil, fmt.Errorf("%w: %s is not an associative base op", ErrBadExpr, base)
			}
		}
	}
	if invert {
		for i := range acc {
			acc[i] = ^acc[i]
		}
	}
	return acc, nil
}
