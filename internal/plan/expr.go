// Package plan compiles multi-operation bitmap-query expressions into
// fused execution plans for the ParaBit device.
//
// A query is an expression tree over logical pages: AND/OR/XOR/XNOR
// combines, unary NOT, arbitrarily nested. Issued naively, every interior
// node costs a full sense-settle-transfer round (plus a reallocation for
// the chained step) — exactly the per-operation overhead the paper's
// latch tables amortize. The planner instead:
//
//   - normalizes the tree (flattens associative chains, folds NOT into
//     the complement operation of its operand node);
//   - fuses associative runs into chained latch sequences, splitting
//     chains that would exceed the circuit's legal program length
//     (latch.MaxSteps) — every fused chain is validated against
//     latch.Sequence.Validate before the plan is accepted;
//   - assigns every sub-expression a canonical key so structurally equal
//     sub-queries share one controller-DRAM cache slot (see Cache).
//
// The package is pure planning: it never touches a device. internal/ssd
// executes plans; internal/nvme carries them over the host interface.
package plan

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"parabit/internal/latch"
)

// Expr is a node of a query expression tree. Leaves name logical pages;
// interior nodes apply a bitwise operation to their children.
type Expr struct {
	// LPN is the logical page a leaf reads. Valid only when leaf.
	LPN  uint64
	leaf bool
	// Op is the node operation: OpAnd/OpOr/OpXor/OpXnor/OpNand/OpNor
	// with two or more children, or OpNotLSB with exactly one (the
	// planner's spelling of logical NOT).
	Op   latch.Op
	Args []*Expr
}

// Leaf returns an expression reading one logical page.
func Leaf(lpn uint64) *Expr { return &Expr{LPN: lpn, leaf: true} }

// IsLeaf reports whether the node is a page read.
func (e *Expr) IsLeaf() bool { return e.leaf }

// And combines two or more sub-expressions with bitwise AND.
func And(args ...*Expr) *Expr { return node(latch.OpAnd, args...) }

// Or combines two or more sub-expressions with bitwise OR.
func Or(args ...*Expr) *Expr { return node(latch.OpOr, args...) }

// Xor combines two or more sub-expressions with bitwise XOR.
func Xor(args ...*Expr) *Expr { return node(latch.OpXor, args...) }

// Xnor combines two sub-expressions with bitwise XNOR.
func Xnor(a, b *Expr) *Expr { return node(latch.OpXnor, a, b) }

// Nand combines two sub-expressions with bitwise NAND.
func Nand(a, b *Expr) *Expr { return node(latch.OpNand, a, b) }

// Nor combines two sub-expressions with bitwise NOR.
func Nor(a, b *Expr) *Expr { return node(latch.OpNor, a, b) }

// Not complements a sub-expression.
func Not(a *Expr) *Expr { return node(latch.OpNotLSB, a) }

func node(op latch.Op, args ...*Expr) *Expr {
	return &Expr{Op: op, Args: args}
}

// ErrBadExpr reports a malformed expression tree.
var ErrBadExpr = errors.New("plan: malformed expression")

// check validates arities over the whole tree.
func (e *Expr) check() error {
	if e == nil {
		return fmt.Errorf("%w: nil node", ErrBadExpr)
	}
	if e.leaf {
		return nil
	}
	switch e.Op {
	case latch.OpNotLSB, latch.OpNotMSB:
		if len(e.Args) != 1 {
			return fmt.Errorf("%w: NOT wants 1 argument, has %d", ErrBadExpr, len(e.Args))
		}
	case latch.OpAnd, latch.OpOr, latch.OpXor:
		if len(e.Args) < 2 {
			return fmt.Errorf("%w: %v wants at least 2 arguments, has %d", ErrBadExpr, e.Op, len(e.Args))
		}
	case latch.OpXnor, latch.OpNand, latch.OpNor:
		if len(e.Args) != 2 {
			return fmt.Errorf("%w: %v wants exactly 2 arguments, has %d", ErrBadExpr, e.Op, len(e.Args))
		}
	default:
		return fmt.Errorf("%w: op %v cannot appear in a query", ErrBadExpr, e.Op)
	}
	for _, a := range e.Args {
		if err := a.check(); err != nil {
			return err
		}
	}
	return nil
}

// Leaves appends the LPN of every leaf under e, in tree order, possibly
// with duplicates.
func (e *Expr) Leaves() []uint64 {
	var out []uint64
	var walk func(*Expr)
	walk = func(n *Expr) {
		if n.leaf {
			out = append(out, n.LPN)
			return
		}
		for _, a := range n.Args {
			walk(a)
		}
	}
	walk(e)
	return out
}

// Eval computes the expression in software over the pages returned by
// read — the golden reference the differential tests compare device
// results against.
func (e *Expr) Eval(read func(lpn uint64) ([]byte, error)) ([]byte, error) {
	if e.leaf {
		p, err := read(e.LPN)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), p...), nil
	}
	if e.Op == latch.OpNotLSB || e.Op == latch.OpNotMSB {
		p, err := e.Args[0].Eval(read)
		if err != nil {
			return nil, err
		}
		for i := range p {
			p[i] = ^p[i]
		}
		return p, nil
	}
	acc, err := e.Args[0].Eval(read)
	if err != nil {
		return nil, err
	}
	base, invert := baseOp(e.Op)
	for _, a := range e.Args[1:] {
		p, err := a.Eval(read)
		if err != nil {
			return nil, err
		}
		if len(p) != len(acc) {
			return nil, fmt.Errorf("%w: operand sizes %d vs %d", ErrBadExpr, len(p), len(acc))
		}
		for i := range acc {
			switch base {
			case latch.OpAnd:
				acc[i] &= p[i]
			case latch.OpOr:
				acc[i] |= p[i]
			case latch.OpXor:
				acc[i] ^= p[i]
			}
		}
	}
	if invert {
		for i := range acc {
			acc[i] = ^acc[i]
		}
	}
	return acc, nil
}

// baseOp splits an operation into its associative accumulator and a final
// complement: NAND folds as AND-then-invert, NOR as OR-then-invert, XNOR
// as XOR-then-invert — the same decomposition the chained latch sequences
// use (flash.ChainCostLSB).
func baseOp(op latch.Op) (latch.Op, bool) {
	switch op {
	case latch.OpNand:
		return latch.OpAnd, true
	case latch.OpNor:
		return latch.OpOr, true
	case latch.OpXnor:
		return latch.OpXor, true
	}
	return op, false
}

// String renders the expression in the parser's infix syntax.
func (e *Expr) String() string {
	if e.leaf {
		return strconv.FormatUint(e.LPN, 10)
	}
	if e.Op == latch.OpNotLSB || e.Op == latch.OpNotMSB {
		return "!" + paren(e.Args[0])
	}
	var op string
	switch e.Op {
	case latch.OpAnd:
		op = " & "
	case latch.OpOr:
		op = " | "
	case latch.OpXor:
		op = " ^ "
	case latch.OpXnor:
		op = " ~^ "
	case latch.OpNand:
		op = " ~& "
	case latch.OpNor:
		op = " ~| "
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = paren(a)
	}
	return strings.Join(parts, op)
}

func paren(e *Expr) string {
	if e.leaf {
		return e.String()
	}
	return "(" + e.String() + ")"
}

// Key returns the canonical cache key of the expression: an s-expression
// with the arguments of commutative operations sorted, so structurally
// equal queries — including reordered ones — share a cache slot.
func (e *Expr) Key() string {
	if e.leaf {
		return strconv.FormatUint(e.LPN, 10)
	}
	keys := make([]string, len(e.Args))
	for i, a := range e.Args {
		keys[i] = a.Key()
	}
	// Every multi-operand query op is commutative; NOT is unary.
	sort.Strings(keys)
	var name string
	switch e.Op {
	case latch.OpAnd:
		name = "and"
	case latch.OpOr:
		name = "or"
	case latch.OpXor:
		name = "xor"
	case latch.OpXnor:
		name = "xnor"
	case latch.OpNand:
		name = "nand"
	case latch.OpNor:
		name = "nor"
	case latch.OpNotLSB, latch.OpNotMSB:
		name = "not"
	default:
		name = "op" + strconv.Itoa(int(e.Op))
	}
	return name + "(" + strings.Join(keys, ",") + ")"
}

// Parse reads the infix query syntax:
//
//	expr  := or
//	or    := xor (('|' | '~|') xor)*
//	xor   := and (('^' | '~^') and)*
//	and   := unary (('&' | '~&') unary)*
//	unary := '!' unary | '(' expr ')' | lpn
//
// Precedence: ! over & over ^ over |, all left-associative. The inverted
// forms bind like their base operator: "1 ~& 2" is NAND(1,2). Whitespace
// is free.
func Parse(s string) (*Expr, error) {
	p := &parser{in: s}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.in) {
		return nil, fmt.Errorf("%w: trailing input %q", ErrBadExpr, p.in[p.pos:])
	}
	if err := e.check(); err != nil {
		return nil, err
	}
	return e, nil
}

type parser struct {
	in  string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

// peekOp matches one of the operator spellings at the cursor, longest
// first, without consuming.
func (p *parser) peekOp(ops ...string) string {
	p.skipSpace()
	for _, op := range ops {
		if strings.HasPrefix(p.in[p.pos:], op) {
			return op
		}
	}
	return ""
}

func (p *parser) parseOr() (*Expr, error) {
	e, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekOp("~|", "|") {
		case "~|":
			p.pos += 2
			rhs, err := p.parseXor()
			if err != nil {
				return nil, err
			}
			e = Nor(e, rhs)
		case "|":
			p.pos++
			rhs, err := p.parseXor()
			if err != nil {
				return nil, err
			}
			e = Or(e, rhs)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseXor() (*Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekOp("~^", "^") {
		case "~^":
			p.pos += 2
			rhs, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			e = Xnor(e, rhs)
		case "^":
			p.pos++
			rhs, err := p.parseAnd()
			if err != nil {
				return nil, err
			}
			e = Xor(e, rhs)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAnd() (*Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peekOp("~&", "&") {
		case "~&":
			p.pos += 2
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			e = Nand(e, rhs)
		case "&":
			p.pos++
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			e = And(e, rhs)
		default:
			return e, nil
		}
	}
}

func (p *parser) parseUnary() (*Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return nil, fmt.Errorf("%w: unexpected end of query", ErrBadExpr)
	}
	switch p.in[p.pos] {
	case '!':
		p.pos++
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(e), nil
	case '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.in) || p.in[p.pos] != ')' {
			return nil, fmt.Errorf("%w: missing ')'", ErrBadExpr)
		}
		p.pos++
		return e, nil
	}
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] >= '0' && p.in[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("%w: want an LPN at %q", ErrBadExpr, p.in[start:])
	}
	lpn, err := strconv.ParseUint(p.in[start:p.pos], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadExpr, err)
	}
	return Leaf(lpn), nil
}
