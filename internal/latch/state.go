// Package latch simulates the sense-amplifier latching circuit of an MLC
// NAND flash plane, the mechanism ParaBit reprograms to compute bitwise
// operations during reads (Gao et al., MICRO '21, §2.2 and §4).
//
// The circuit has five observable nodes — the sense node SO, the L1 latch
// (nodes A and C, with C = NOT A), and the L2 latch (nodes B and OUT, with
// OUT = NOT B) — and control transistors M1, M2 and M3:
//
//	M1: pulls C to ground when SO is high  →  C &= NOT SO;  A = NOT C
//	M2: pulls A to ground when SO is high  →  A &= NOT SO;  C = NOT A
//	M3: transfers L1 to L2                 →  B &= NOT A;   OUT = NOT B
//
// A control sequence is a list of initialization, sensing and transistor
// steps. Running the paper's sequences on this circuit reproduces, step by
// step, every intermediate vector printed in the paper's Figures 2-8 and
// Tables 2-7; the package tests assert them all.
package latch

import "fmt"

// State is the threshold-voltage state of an MLC cell. Threshold voltage
// increases from E (erased) to S3, and the paper's gray coding (Table 1)
// maps states to (LSB, MSB) pairs as E=(1,1), S1=(1,0), S2=(0,0), S3=(0,1).
type State uint8

// The four MLC states in increasing threshold-voltage order.
const (
	E State = iota
	S1
	S2
	S3
	numStates = 4
)

// LSB returns the least-significant page bit stored by the state.
func (s State) LSB() bool { return s == E || s == S1 }

// MSB returns the most-significant page bit stored by the state.
func (s State) MSB() bool { return s == E || s == S3 }

// FromBits returns the state encoding the given (LSB, MSB) pair.
func FromBits(lsb, msb bool) State {
	switch {
	case lsb && msb:
		return E
	case lsb && !msb:
		return S1
	case !lsb && !msb:
		return S2
	default:
		return S3
	}
}

func (s State) String() string {
	switch s {
	case E:
		return "E"
	case S1:
		return "S1"
	case S2:
		return "S2"
	case S3:
		return "S3"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Vref is one of the read reference voltages. VRead1..VRead3 sit between
// adjacent state distributions; VRead0 sits below the erased distribution,
// so sensing at VRead0 reports "high" for every state (the paper uses it in
// the XNOR and XOR sequences to clear L1 unconditionally).
type Vref uint8

// Reference voltages in increasing order. SenseHigh(s, VReadK) is true
// exactly when state s's threshold voltage exceeds VReadK:
//
//	VRead0: 1111   VRead1: 0111   VRead2: 0011   VRead3: 0001
//
// using the paper's L(SO)=x1x2x3x4 notation over states (E,S1,S2,S3).
const (
	VRead0 Vref = iota
	VRead1
	VRead2
	VRead3
	numVrefs = 4
)

func (v Vref) String() string { return fmt.Sprintf("VREAD%d", uint8(v)) }

// SenseHigh reports the ideal single-read-operation outcome at node SO:
// whether a cell in state s conducts a voltage above reference v.
func SenseHigh(s State, v Vref) bool {
	// State order matches Vref order: state s exceeds VReadK iff s >= k.
	return uint8(s) >= uint8(v)
}

// Op is one of the bitwise operations ParaBit performs in the latching
// circuit. NotLSB and NotMSB are the two halves of the paper's NOT row.
type Op uint8

const (
	OpAnd Op = iota
	OpOr
	OpXnor
	OpNand
	OpNor
	OpXor
	OpNotLSB
	OpNotMSB
	numOps
)

// Ops lists every operation, in the paper's Table 1 column order.
var Ops = []Op{OpAnd, OpOr, OpXnor, OpNand, OpNor, OpXor, OpNotLSB, OpNotMSB}

// BinaryOps lists the two-operand operations (everything but the NOTs).
var BinaryOps = []Op{OpAnd, OpOr, OpXnor, OpNand, OpNor, OpXor}

func (o Op) String() string {
	switch o {
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpXnor:
		return "XNOR"
	case OpNand:
		return "NAND"
	case OpNor:
		return "NOR"
	case OpXor:
		return "XOR"
	case OpNotLSB:
		return "NOT-LSB"
	case OpNotMSB:
		return "NOT-MSB"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Eval computes the operation on two operand bits. For NotLSB and NotMSB,
// only the corresponding operand is consulted.
func (o Op) Eval(lsb, msb bool) bool {
	switch o {
	case OpAnd:
		return lsb && msb
	case OpOr:
		return lsb || msb
	case OpXnor:
		return lsb == msb
	case OpNand:
		return !(lsb && msb)
	case OpNor:
		return !(lsb || msb)
	case OpXor:
		return lsb != msb
	case OpNotLSB:
		return !lsb
	case OpNotMSB:
		return !msb
	}
	panic(fmt.Sprintf("latch: invalid op %d", uint8(o)))
}

// TruthTable returns the paper's Table 1 row outputs for the operation:
// the expected OUT value when the sensed cell is in each of the four
// states, in (E,S1,S2,S3) order.
func (o Op) TruthTable() [numStates]bool {
	var t [numStates]bool
	for s := E; s <= S3; s++ {
		t[s] = o.Eval(s.LSB(), s.MSB())
	}
	return t
}
