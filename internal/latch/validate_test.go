package latch

import (
	"strings"
	"testing"
)

// TestShippedSequencesValidate runs the runtime validator over every
// control program the package ships: the baseline page reads, the basic
// ParaBit table, and the location-free table. A failure here means a
// sequence table was edited into an illegal circuit program.
func TestShippedSequencesValidate(t *testing.T) {
	all := []Sequence{ReadLSB, ReadMSB}
	for _, op := range Ops {
		all = append(all, ForOp(op), ForOpLocFree(op))
	}
	for _, s := range all {
		if err := s.Validate(); err != nil {
			t.Errorf("shipped sequence %q fails Validate: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsIllegalSequences(t *testing.T) {
	cases := []struct {
		name string
		seq  Sequence
		want string // substring of the error
	}{
		{
			name: "empty",
			seq:  Sequence{Name: "EMPTY"},
			want: "is empty",
		},
		{
			name: "no init first",
			//lint:ignore latchseq deliberately illegal input for Validate
			seq:  Sequence{Name: "NO-INIT", Steps: []Step{sense(VRead1), m2, m3}},
			want: "must begin with StepInit or StepInitInv",
		},
		{
			name: "combine without sense",
			//lint:ignore latchseq deliberately illegal input for Validate
			seq:  Sequence{Name: "BLIND", Steps: []Step{init0, m2, m3}},
			want: "has no StepSense since the last initialization",
		},
		{
			name: "combine after reinit clears the sense",
			//lint:ignore latchseq deliberately illegal input for Validate
			seq:  Sequence{Name: "STALE", Steps: []Step{init0, sense(VRead1), reinit, m1}},
			want: "has no StepSense since the last initialization",
		},
		{
			name: "unknown kind",
			//lint:ignore latchseq deliberately illegal input for Validate
			seq:  Sequence{Name: "BOGUS", Steps: []Step{init0, {Kind: StepKind(99)}}},
			want: "unknown StepKind 99",
		},
		{
			name: "too long",
			seq:  Sequence{Name: "LONG", Steps: longSteps(MaxSteps + 1)},
			want: "more than the 64",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.seq.Validate()
			if err == nil {
				t.Fatalf("Validate(%q) = nil, want error containing %q", tc.seq.Name, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%q) = %q, want error containing %q", tc.seq.Name, err, tc.want)
			}
		})
	}
}

// TestValidateAcceptsRuntimeAssembly covers the path the static latchseq
// analyzer cannot prove: sequences stitched together at run time.
func TestValidateAcceptsRuntimeAssembly(t *testing.T) {
	steps := []Step{init0}
	for wl := 0; wl < 3; wl++ {
		steps = append(steps, senseWL(wl, VRead2), m2)
	}
	steps = append(steps, m3)
	s := Sequence{Name: "RUNTIME", Steps: steps}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate(%q) = %v, want nil", s.Name, err)
	}
}

func longSteps(n int) []Step {
	steps := []Step{init0}
	for len(steps) < n {
		steps = append(steps, sense(VRead2), m2)
	}
	return steps[:n]
}
