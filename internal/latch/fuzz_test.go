package latch

import (
	"strings"
	"testing"
)

// encodeSteps flattens a step list to one byte per step for the fuzzer;
// decodeSteps is its inverse. The low nibble carries the kind — covering
// both every defined kind and undefined ones past StepSenseMulti, so the
// fuzzer reaches the unknown-kind rejection path — and the high nibble
// carries the multi-wordline sense's wordline count, whose 0..15 range
// straddles the legal 2..MaxMWSOperands window on both sides.
func encodeSteps(steps []Step) []byte {
	b := make([]byte, len(steps))
	for i, st := range steps {
		b[i] = byte(st.Kind) | byte(st.WLCount)<<4
	}
	return b
}

func decodeSteps(b []byte) []Step {
	steps := make([]Step, len(b))
	for i, k := range b {
		steps[i] = Step{Kind: StepKind(k & 0x0f), WLCount: int(k >> 4)}
	}
	return steps
}

// referenceValidate is an independent restatement of the Validate rules,
// written as a direct transcription of the doc comment rather than a copy
// of the implementation, so the fuzzer compares two derivations.
func referenceValidate(steps []Step) bool {
	if len(steps) == 0 || len(steps) > MaxSteps {
		return false
	}
	if steps[0].Kind != StepInit && steps[0].Kind != StepInitInv {
		return false
	}
	sawInit, senseSinceInit := false, false
	senses, mws := 0, false
	for _, st := range steps {
		switch st.Kind {
		case StepInit, StepInitInv, StepReinitL1, StepReinitL1Inv:
			sawInit, senseSinceInit = true, false
		case StepSense:
			senses++
			senseSinceInit = true
		case StepSenseMulti:
			if st.WLCount < 2 || st.WLCount > MaxMWSOperands {
				return false
			}
			senses++
			senseSinceInit = true
			mws = true
		case StepM1, StepM2:
			if !senseSinceInit {
				return false
			}
		case StepM3:
			if !sawInit {
				return false
			}
		default:
			return false
		}
	}
	// An MWS discharges the whole string: it must be the sole sense.
	return !mws || senses == 1
}

// tableSequences returns every control program the simulator actually
// runs: the baseline page reads plus the basic and location-free
// sequences for all operations.
func tableSequences() []Sequence {
	seqs := []Sequence{ReadLSB, ReadMSB}
	for _, op := range Ops {
		seqs = append(seqs, ForOp(op), ForOpLocFree(op))
		if MWSComputable(op) {
			seqs = append(seqs, ForOpMWS(op, 2), ForOpMWS(op, MaxMWSOperands))
		}
	}
	return seqs
}

// FuzzLatchSequenceValidate asserts Validate never panics on arbitrary
// step lists and agrees with an independently written reference
// validator. The corpus is seeded with every real table sequence, so the
// accept path is always exercised alongside fuzzer-found reject paths.
func FuzzLatchSequenceValidate(f *testing.F) {
	for _, s := range tableSequences() {
		f.Add(encodeSteps(s.Steps))
	}
	f.Add([]byte{})                                // empty
	f.Add([]byte{byte(StepSense)})                 // bad first step
	f.Add([]byte{byte(StepInit), 0x0e})            // unknown kind
	f.Add(make([]byte, MaxSteps+1))                // too long
	f.Add([]byte{byte(StepInitInv), byte(StepM1)}) // combine before sense
	// MWS seeds: over/under the wordline cap, and mixed with a pairwise
	// sense (the sole-sense rule).
	f.Add([]byte{byte(StepInit), byte(StepSenseMulti) | 9<<4, byte(StepM2), byte(StepM3)})
	f.Add([]byte{byte(StepInit), byte(StepSenseMulti) | 1<<4, byte(StepM2), byte(StepM3)})
	f.Add([]byte{byte(StepInit), byte(StepSense), byte(StepSenseMulti) | 4<<4, byte(StepM2), byte(StepM3)})

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4*MaxSteps {
			raw = raw[:4*MaxSteps]
		}
		seq := Sequence{Name: "fuzz", Steps: decodeSteps(raw)}
		err := seq.Validate() // must not panic
		if legal := referenceValidate(seq.Steps); legal == (err != nil) {
			t.Fatalf("Validate = %v but reference says legal=%v for %d steps %v",
				err, legal, len(seq.Steps), seq.Steps)
		}
		if err != nil && !strings.Contains(err.Error(), "fuzz") {
			t.Fatalf("error does not name the sequence: %v", err)
		}
	})
}

// TestTableSequencesValidate pins the accept path outside the fuzzer:
// every sequence the simulator ships must pass Validate as-is.
func TestTableSequencesValidate(t *testing.T) {
	for _, s := range tableSequences() {
		if err := s.Validate(); err != nil {
			t.Errorf("table sequence %s rejected: %v", s.Name, err)
		}
	}
}
