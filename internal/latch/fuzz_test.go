package latch

import (
	"strings"
	"testing"
)

// encodeSteps flattens a step list to one byte per step for the fuzzer;
// decodeSteps is its inverse. Only the kind matters to Validate, and the
// low nibble covers both every defined kind and undefined ones past
// StepM3, so the fuzzer reaches the unknown-kind rejection path too.
func encodeSteps(steps []Step) []byte {
	b := make([]byte, len(steps))
	for i, st := range steps {
		b[i] = byte(st.Kind)
	}
	return b
}

func decodeSteps(b []byte) []Step {
	steps := make([]Step, len(b))
	for i, k := range b {
		steps[i] = Step{Kind: StepKind(k & 0x0f)}
	}
	return steps
}

// referenceValidate is an independent restatement of the Validate rules,
// written as a direct transcription of the doc comment rather than a copy
// of the implementation, so the fuzzer compares two derivations.
func referenceValidate(steps []Step) bool {
	if len(steps) == 0 || len(steps) > MaxSteps {
		return false
	}
	if steps[0].Kind != StepInit && steps[0].Kind != StepInitInv {
		return false
	}
	sawInit, senseSinceInit := false, false
	for _, st := range steps {
		switch st.Kind {
		case StepInit, StepInitInv, StepReinitL1, StepReinitL1Inv:
			sawInit, senseSinceInit = true, false
		case StepSense:
			senseSinceInit = true
		case StepM1, StepM2:
			if !senseSinceInit {
				return false
			}
		case StepM3:
			if !sawInit {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// tableSequences returns every control program the simulator actually
// runs: the baseline page reads plus the basic and location-free
// sequences for all operations.
func tableSequences() []Sequence {
	seqs := []Sequence{ReadLSB, ReadMSB}
	for _, op := range Ops {
		seqs = append(seqs, ForOp(op), ForOpLocFree(op))
	}
	return seqs
}

// FuzzLatchSequenceValidate asserts Validate never panics on arbitrary
// step lists and agrees with an independently written reference
// validator. The corpus is seeded with every real table sequence, so the
// accept path is always exercised alongside fuzzer-found reject paths.
func FuzzLatchSequenceValidate(f *testing.F) {
	for _, s := range tableSequences() {
		f.Add(encodeSteps(s.Steps))
	}
	f.Add([]byte{})                                // empty
	f.Add([]byte{byte(StepSense)})                 // bad first step
	f.Add([]byte{byte(StepInit), 0x0e})            // unknown kind
	f.Add(make([]byte, MaxSteps+1))                // too long
	f.Add([]byte{byte(StepInitInv), byte(StepM1)}) // combine before sense

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4*MaxSteps {
			raw = raw[:4*MaxSteps]
		}
		seq := Sequence{Name: "fuzz", Steps: decodeSteps(raw)}
		err := seq.Validate() // must not panic
		if legal := referenceValidate(seq.Steps); legal == (err != nil) {
			t.Fatalf("Validate = %v but reference says legal=%v for %d steps %v",
				err, legal, len(seq.Steps), seq.Steps)
		}
		if err != nil && !strings.Contains(err.Error(), "fuzz") {
			t.Fatalf("error does not name the sequence: %v", err)
		}
	})
}

// TestTableSequencesValidate pins the accept path outside the fuzzer:
// every sequence the simulator ships must pass Validate as-is.
func TestTableSequencesValidate(t *testing.T) {
	for _, s := range tableSequences() {
		if err := s.Validate(); err != nil {
			t.Errorf("table sequence %s rejected: %v", s.Name, err)
		}
	}
}
