package latch

import "fmt"

// Location-free sequences for the all-LSB data layout the paper's
// location-free evaluation uses (§5.5: "We store all data in LSB bits of
// MLCs"). Both operands are LSB bits of aligned cells: M on wordline 0,
// N on wordline 1. Sensing either wordline at VREAD2 puts the complement
// of its LSB at SO on the normal path, or the LSB itself through the
// added inverter.
//
// Reading an operand from an LSB page costs one SRO instead of the MSB
// page's two, so these sequences are shorter than their MSB-layout
// counterparts in sequences.go — AND drops from 3 senses to 2, XOR from
// 6 to 4 — while still sensing more than basic (co-located) ParaBit,
// which is the Fig. 15 trade-off.

// lsbAnd: A = M (LSB read of wl0), then gate by N: one more sense.
var lsbAnd = Sequence{
	Name: "LF-LSB-AND",
	Steps: []Step{
		init0,
		senseWL(0, VRead2), m2, // A = M
		senseWL(1, VRead2), m2, // A = M AND N
		m3,
	},
}

// lsbOr: park M in L2, re-read N, OR-merge on transfer.
var lsbOr = Sequence{
	Name: "LF-LSB-OR",
	Steps: []Step{
		init0,
		senseWL(0, VRead2), m2, // A = M
		m3,                     // OUT = M
		reinit,                 // A = 1
		senseWL(1, VRead2), m2, // A = N
		m3, // OUT = M OR N
	},
}

// lsbXor: ((NOT M) AND N) OR (M AND (NOT N)), two phases.
var lsbXor = Sequence{
	Name: "LF-LSB-XOR",
	Steps: []Step{
		initInv,
		senseWL(0, VRead2), m1, // A = NOT M (NOT-LSB read shape)
		senseWL(1, VRead2), m2, // A = (NOT M) AND N
		m3,                     // OUT = (NOT M)N
		reinit,                 // A = 1
		senseWL(0, VRead2), m2, // A = M
		senseInv(1, VRead2), m2, // A = M AND (NOT N), inverter path
		m3, // OUT = XOR
	},
}

// lsbNand: B ends M AND N via a NOT-M park plus inverter-path NOT-N.
var lsbNand = Sequence{
	Name: "LF-LSB-NAND",
	Steps: []Step{
		initInv,
		senseWL(0, VRead2), m1, // A = NOT M
		m3,                      // B = M, OUT = NOT M
		reinit,                  // A = 1
		senseInv(1, VRead2), m2, // A = NOT N
		m3, // B = M AND N, OUT = NAND
	},
}

// lsbNor: (NOT M) AND (NOT N) in one phase.
var lsbNor = Sequence{
	Name: "LF-LSB-NOR",
	Steps: []Step{
		initInv,
		senseWL(0, VRead2), m1, // A = NOT M
		senseInv(1, VRead2), m2, // A = (NOT M)(NOT N)
		m3,
	},
}

// lsbXnor: (NOT M)(NOT N) + MN, two phases.
var lsbXnor = Sequence{
	Name: "LF-LSB-XNOR",
	Steps: []Step{
		initInv,
		senseWL(0, VRead2), m1, // A = NOT M
		senseInv(1, VRead2), m2, // A = (NOT M)(NOT N)
		m3,
		reinit,
		senseWL(0, VRead2), m2, // A = M
		senseWL(1, VRead2), m2, // A = M AND N
		m3,
	},
}

var (
	lsbNotM = Sequence{Name: "LF-LSB-NOT-M", Steps: []Step{initInv, senseWL(0, VRead2), m1, m3}}
	lsbNotN = Sequence{Name: "LF-LSB-NOT-N", Steps: []Step{initInv, senseWL(1, VRead2), m1, m3}}
)

var lsbSeqs = map[Op]Sequence{
	OpAnd:  lsbAnd,
	OpOr:   lsbOr,
	OpXor:  lsbXor,
	OpNand: lsbNand,
	OpNor:  lsbNor,
	OpXnor: lsbXnor,
	// In the all-LSB layout "NOT-LSB" inverts the first operand and
	// "NOT-MSB" has no MSB to invert; it maps to inverting the aligned
	// second wordline's operand instead.
	OpNotLSB: lsbNotM,
	OpNotMSB: lsbNotN,
}

// ForOpLocFreeLSB returns the location-free sequence for operands that
// are both LSB bits: M on wordline 0, N on wordline 1.
func ForOpLocFreeLSB(op Op) Sequence {
	s, ok := lsbSeqs[op]
	if !ok {
		panic(fmt.Sprintf("latch: no LSB location-free sequence for op %v", op))
	}
	return s
}
