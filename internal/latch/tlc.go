package latch

import "fmt"

// TLC extension (paper §4.4.1). TLC cells store three bits across eight
// threshold states; the paper gives the gray coding E..S7 =
// 111, 110, 100, 101, 001, 000, 010, 011 (LSB, CSB, MSB) and notes that
// the ParaBit principles carry over — e.g. a three-operand AND is a
// single sense at VREAD1, which isolates state E, the only state where
// all three bits are 1.
//
// This file models the TLC state space, its seven read reference
// voltages, the per-page read sequences implied by the gray code
// (1-2-4 senses for LSB/CSB/MSB), and the three-operand AND/OR/NOR/NAND
// sequences the coding admits directly. The per-bitline circuit is the
// same Circuit type; only the sensing changes.

// TLCState is the threshold state of a TLC cell, in increasing-voltage
// order.
type TLCState uint8

// The eight TLC states.
const (
	TE TLCState = iota
	TS1
	TS2
	TS3
	TS4
	TS5
	TS6
	TS7
	numTLCStates = 8
)

func (s TLCState) String() string {
	if s == TE {
		return "E"
	}
	return fmt.Sprintf("S%d", uint8(s))
}

// tlcCode is the paper's gray coding, listed E..S7 as (LSB, CSB, MSB).
var tlcCode = [numTLCStates][3]bool{
	{true, true, true},    // E   = 111
	{true, true, false},   // S1  = 110
	{true, false, false},  // S2  = 100
	{true, false, true},   // S3  = 101
	{false, false, true},  // S4  = 001
	{false, false, false}, // S5  = 000
	{false, true, false},  // S6  = 010
	{false, true, true},   // S7  = 011
}

// TLCPage selects one of a TLC wordline's three pages.
type TLCPage uint8

// The three TLC pages, by significance.
const (
	TLCLSB TLCPage = iota
	TLCCSB
	TLCMSB
)

func (p TLCPage) String() string {
	switch p {
	case TLCLSB:
		return "LSB"
	case TLCCSB:
		return "CSB"
	case TLCMSB:
		return "MSB"
	}
	return fmt.Sprintf("TLCPage(%d)", uint8(p))
}

// Bit returns the page bit the state stores.
func (s TLCState) Bit(p TLCPage) bool { return tlcCode[s][p] }

// TLCFromBits returns the state encoding the given (LSB, CSB, MSB) bits.
func TLCFromBits(lsb, csb, msb bool) TLCState {
	for s := TE; s < numTLCStates; s++ {
		c := tlcCode[s]
		if c[0] == lsb && c[1] == csb && c[2] == msb {
			return s
		}
	}
	panic("latch: unreachable TLC coding")
}

// TLCVref is a TLC read reference voltage. TVRead0 sits below the erased
// distribution; TVRead1..TVRead7 separate adjacent states.
type TLCVref uint8

// TLC reference voltages in increasing order.
const (
	TVRead0 TLCVref = iota
	TVRead1
	TVRead2
	TVRead3
	TVRead4
	TVRead5
	TVRead6
	TVRead7
)

func (v TLCVref) String() string { return fmt.Sprintf("TVREAD%d", uint8(v)) }

// TLCSenseHigh reports the ideal comparison at SO: whether a cell in
// state s has threshold voltage above reference v.
func TLCSenseHigh(s TLCState, v TLCVref) bool { return uint8(s) >= uint8(v) }

// TLCCellSensor adapts TLC cells to the Circuit's Sensor interface: the
// Vref in a Step is interpreted as a TLCVref.
type TLCCellSensor []TLCState

// Sense implements Sensor over TLC states.
func (c TLCCellSensor) Sense(wl int, v Vref) bool {
	if wl < 0 || wl >= len(c) {
		panic(fmt.Sprintf("latch: TLC sense of wordline %d with %d cells", wl, len(c)))
	}
	return TLCSenseHigh(c[wl], TLCVref(v))
}

func tsense(v TLCVref) Step { return Step{Kind: StepSense, V: Vref(v)} }

// TLCReadSequence returns the baseline read sequence of a TLC page,
// derived from the gray code's bit boundaries: LSB flips once (1 sense at
// TVREAD4), CSB twice (TVREAD2, TVREAD6), MSB four times (TVREAD1,
// TVREAD3, TVREAD5, TVREAD7) — the classic 1-2-4 split.
func TLCReadSequence(p TLCPage) Sequence {
	switch p {
	case TLCLSB:
		return Sequence{Name: "TLC-READ-LSB", Steps: []Step{
			init0, tsense(TVRead4), m2, m3,
		}}
	case TLCCSB:
		// CSB = 1 for {E,S1} and {S6,S7}: the MLC MSB-read shape with the
		// band boundaries TVREAD2 and TVREAD6 — A gathers {E,S1}, then
		// M1 carves the middle band out of C, leaving A = CSB.
		return Sequence{Name: "TLC-READ-CSB", Steps: []Step{
			init0,
			tsense(TVRead2), m2, // A = {E,S1}
			tsense(TVRead6), m1, // C = [S2..S5], A = {E,S1,S6,S7}
			m3,
		}}
	case TLCMSB:
		// MSB = 1 for {E, S3, S4, S7}: four boundaries, four senses.
		return Sequence{Name: "TLC-READ-MSB", Steps: []Step{
			init0,
			tsense(TVRead1), m2, // A = {E}
			tsense(TVRead3), m1, // C gathers [S3..]; A = {E} ∪ [S3..]
			tsense(TVRead5), m2, // A = {E, S3, S4}
			tsense(TVRead7), m1, // A = {E, S3, S4, S7}
			m3,
		}}
	}
	panic(fmt.Sprintf("latch: invalid TLC page %v", p))
}

// TLCOp3 is a three-operand bitwise operation over a TLC cell's LSB, CSB
// and MSB bits.
type TLCOp3 uint8

// The three-operand operations the TLC coding supports with short
// sequences.
const (
	TLCAnd3 TLCOp3 = iota
	TLCOr3
	TLCNand3
	TLCNor3
)

func (o TLCOp3) String() string {
	switch o {
	case TLCAnd3:
		return "AND3"
	case TLCOr3:
		return "OR3"
	case TLCNand3:
		return "NAND3"
	case TLCNor3:
		return "NOR3"
	}
	return fmt.Sprintf("TLCOp3(%d)", uint8(o))
}

// Eval computes the operation on three bits.
func (o TLCOp3) Eval(lsb, csb, msb bool) bool {
	switch o {
	case TLCAnd3:
		return lsb && csb && msb
	case TLCOr3:
		return lsb || csb || msb
	case TLCNand3:
		return !(lsb && csb && msb)
	case TLCNor3:
		return !(lsb || csb || msb)
	}
	panic(fmt.Sprintf("latch: invalid TLC op %d", uint8(o)))
}

// TLCForOp returns the control sequence of a three-operand operation.
//
//   - AND3 detects state E (all bits 1) with one sense at TVREAD1 — the
//     paper's §4.4.1 example.
//   - OR3 is false only in state S5 (000): isolate [S5] with senses at
//     TVREAD5 and TVREAD6 on the inverted initialization.
//   - The N-variants invert via the initialization polarity, exactly as
//     the MLC NAND/NOR sequences do.
func TLCForOp(op TLCOp3) Sequence {
	switch op {
	case TLCAnd3:
		return Sequence{Name: "TLC-AND3", Steps: []Step{
			init0, tsense(TVRead1), m2, m3,
		}}
	case TLCNand3:
		return Sequence{Name: "TLC-NAND3", Steps: []Step{
			initInv, tsense(TVRead1), m1, m3,
		}}
	case TLCOr3:
		// OUT must be 0 only for S5. Shape of the MLC OR: gather
		// [S5..S7] at C via TVREAD5, then clear [S6..S7] via TVREAD6;
		// A ends NOT [S5] = OR3.
		return Sequence{Name: "TLC-OR3", Steps: []Step{
			init0,
			tsense(TVRead5), m2, // A = [E..S4]
			tsense(TVRead6), m1, // C = [S5], A = NOT [S5]
			m3,
		}}
	case TLCNor3:
		return Sequence{Name: "TLC-NOR3", Steps: []Step{
			initInv,
			tsense(TVRead5), m1, // C = [E..S4] ... A = [S5..S7]
			tsense(TVRead6), m2, // A = [S5]
			m3,
		}}
	}
	panic(fmt.Sprintf("latch: invalid TLC op %v", op))
}

// TLCRunOp executes a three-operand operation on a cell in the given
// state and returns OUT.
func TLCRunOp(op TLCOp3, s TLCState) bool {
	c := NewCircuit(TLCCellSensor{s})
	return c.Run(TLCForOp(op))
}

// TLCReadBit executes a baseline page read on a cell and returns OUT.
func TLCReadBit(p TLCPage, s TLCState) bool {
	c := NewCircuit(TLCCellSensor{s})
	return c.Run(TLCReadSequence(p))
}
