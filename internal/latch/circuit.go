package latch

import "fmt"

// Sensor supplies single-read-operation outcomes to a circuit. wl selects
// which of the cells sharing the bitline is sensed (0 for the cell holding
// the first operand; location-free sequences also sense wl 1). The returned
// value is the voltage at node SO before any inverter: true means the cell's
// threshold voltage exceeded the reference.
//
// The ideal implementation is CellSensor. The reliability model wraps a
// Sensor to inject threshold-voltage shift and read noise.
type Sensor interface {
	Sense(wl int, v Vref) bool
}

// CellSensor is an ideal Sensor over a fixed set of cell states.
type CellSensor []State

// Sense implements Sensor with ideal threshold comparisons.
func (c CellSensor) Sense(wl int, v Vref) bool {
	if wl < 0 || wl >= len(c) {
		panic(fmt.Sprintf("latch: sense of wordline %d with %d cells", wl, len(c)))
	}
	return SenseHigh(c[wl], v)
}

// Circuit is the per-bitline latching circuit: sense node SO, the L1 latch
// (A, C) and the L2 latch (B, OUT). Zero value is meaningless; sequences
// always begin with an initialization step.
type Circuit struct {
	SO, A, C, B, Out bool
	sensor           Sensor
}

// NewCircuit returns a circuit wired to the given sensor.
func NewCircuit(s Sensor) *Circuit {
	return &Circuit{sensor: s}
}

// StepKind identifies a control action in a sequence.
type StepKind uint8

const (
	// StepInit is the normal initialization (paper Fig. 2):
	// C=0, A=1, B=1, OUT=0.
	StepInit StepKind = iota
	// StepInitInv is the inverted initialization used for NAND/NOR/XOR/NOT
	// (paper Fig. 7): A=0, C=1, B=1, OUT=0.
	StepInitInv
	// StepReinitL1 re-initializes only L1 to the normal polarity (A=1, C=0),
	// leaving L2 untouched; the location-free OR/XOR sequences use it
	// between the two operand reads.
	StepReinitL1
	// StepReinitL1Inv re-initializes only L1 to the inverted polarity
	// (A=0, C=1).
	StepReinitL1Inv
	// StepSense applies a reference voltage to a wordline and captures the
	// comparison at SO. This is the only step with real latency (one SRO,
	// 25 µs on the modeled MLC flash).
	StepSense
	// StepM1 pulls C low where SO is high: C &= NOT SO; A = NOT C.
	StepM1
	// StepM2 pulls A low where SO is high: A &= NOT SO; C = NOT A.
	StepM2
	// StepM3 transfers L1 into L2: B &= NOT A; OUT = NOT B.
	StepM3
	// StepSenseMulti is the Flash-Cosmos multi-wordline sense (MWS): the
	// read voltage is applied to WLCount consecutive wordlines of the same
	// NAND string at once while the rest get the pass voltage. The string
	// conducts only if every selected cell conducts, so SO captures the OR
	// of the per-cell threshold comparisons — one sense, many operands. With
	// Inverted set the outcome is routed through the M7 inverter path per
	// selected string, which lands the AND of the comparisons at SO instead.
	// Like StepSense it is the only MWS step with real latency (one t_MWS).
	StepSenseMulti
)

func (k StepKind) String() string {
	switch k {
	case StepInit:
		return "INIT"
	case StepInitInv:
		return "INIT-INV"
	case StepReinitL1:
		return "REINIT-L1"
	case StepReinitL1Inv:
		return "REINIT-L1-INV"
	case StepSense:
		return "SENSE"
	case StepM1:
		return "M1"
	case StepM2:
		return "M2"
	case StepM3:
		return "M3"
	case StepSenseMulti:
		return "SENSE-MULTI"
	}
	return fmt.Sprintf("StepKind(%d)", uint8(k))
}

// Step is one control action. V, WL and Inverted are meaningful only for
// the sensing kinds. Inverted routes the sensed value through the extra
// inverter (transistor M7 instead of M6) that location-free ParaBit adds
// between SO and the latch input (paper Fig. 8); basic ParaBit never sets
// it. WLCount is meaningful only for StepSenseMulti: the number of
// consecutive wordlines, starting at WL, selected by the one sense.
type Step struct {
	Kind     StepKind
	V        Vref
	WL       int
	WLCount  int
	Inverted bool
}

func (s Step) String() string {
	switch s.Kind {
	case StepSense:
		inv := ""
		if s.Inverted {
			inv = " inverted"
		}
		return fmt.Sprintf("SENSE wl%d @%v%s", s.WL, s.V, inv)
	case StepSenseMulti:
		inv := ""
		if s.Inverted {
			inv = " inverted"
		}
		return fmt.Sprintf("SENSE-MULTI wl%d+%d @%v%s", s.WL, s.WLCount, s.V, inv)
	}
	return s.Kind.String()
}

// Apply executes a single step.
func (c *Circuit) Apply(s Step) {
	switch s.Kind {
	case StepInit:
		c.C, c.A = false, true
		c.B, c.Out = true, false
	case StepInitInv:
		c.A, c.C = false, true
		c.B, c.Out = true, false
	case StepReinitL1:
		c.A, c.C = true, false
	case StepReinitL1Inv:
		c.A, c.C = false, true
	case StepSense:
		v := c.sensor.Sense(s.WL, s.V)
		if s.Inverted {
			v = !v
		}
		c.SO = v
	case StepSenseMulti:
		// One multi-wordline sense: the string conducts only when every
		// selected cell conducts, so the normal path captures the OR of the
		// per-wordline comparisons; the inverter path inverts each string's
		// outcome before the shared capture, landing the AND instead.
		if s.WLCount < 2 {
			panic(fmt.Sprintf("latch: multi-wordline sense of %d wordlines", s.WLCount))
		}
		v := c.sensor.Sense(s.WL, s.V)
		for i := 1; i < s.WLCount; i++ {
			next := c.sensor.Sense(s.WL+i, s.V)
			if s.Inverted {
				v = v && next
			} else {
				v = v || next
			}
		}
		c.SO = v
	case StepM1:
		c.C = c.C && !c.SO
		c.A = !c.C
	case StepM2:
		c.A = c.A && !c.SO
		c.C = !c.A
	case StepM3:
		c.B = c.B && !c.A
		c.Out = !c.B
	default:
		panic(fmt.Sprintf("latch: unknown step kind %d", uint8(s.Kind)))
	}
}

// Run executes every step in order and returns the final OUT value.
func (c *Circuit) Run(seq Sequence) bool {
	for _, s := range seq.Steps {
		c.Apply(s)
	}
	return c.Out
}

// Snapshot captures the circuit's observable nodes after a step.
type Snapshot struct {
	Step Step
	SO   bool
	A    bool
	C    bool
	B    bool
	Out  bool
}

// Trace executes the sequence, recording a snapshot after each step.
func (c *Circuit) Trace(seq Sequence) []Snapshot {
	out := make([]Snapshot, len(seq.Steps))
	for i, s := range seq.Steps {
		c.Apply(s)
		out[i] = Snapshot{Step: s, SO: c.SO, A: c.A, C: c.C, B: c.B, Out: c.Out}
	}
	return out
}
