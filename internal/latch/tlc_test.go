package latch

import "testing"

func TestTLCGrayCodingMatchesPaper(t *testing.T) {
	// §4.4.1: "TLC encodes its eight states (from E, S1 to S7) as 111,
	// 110, 100, 101, 001, 000, 010, and 011".
	want := []string{"111", "110", "100", "101", "001", "000", "010", "011"}
	for s := TE; s < numTLCStates; s++ {
		got := ""
		for _, p := range []TLCPage{TLCLSB, TLCCSB, TLCMSB} {
			if s.Bit(p) {
				got += "1"
			} else {
				got += "0"
			}
		}
		if got != want[s] {
			t.Errorf("%v coded %s, want %s", s, got, want[s])
		}
	}
}

func TestTLCAdjacentStatesDifferByOneBit(t *testing.T) {
	// Gray property: one bit flip between neighbours (read-disturb
	// containment, why real TLC uses this family of codes).
	for s := TE; s < numTLCStates-1; s++ {
		diff := 0
		for _, p := range []TLCPage{TLCLSB, TLCCSB, TLCMSB} {
			if s.Bit(p) != (s + 1).Bit(p) {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("%v -> %v differ in %d bits", s, s+1, diff)
		}
	}
}

func TestTLCFromBitsRoundTrip(t *testing.T) {
	for s := TE; s < numTLCStates; s++ {
		got := TLCFromBits(s.Bit(TLCLSB), s.Bit(TLCCSB), s.Bit(TLCMSB))
		if got != s {
			t.Errorf("round trip %v -> %v", s, got)
		}
	}
}

func TestTLCSenseMonotone(t *testing.T) {
	// Once a state's threshold exceeds the reference, every higher state
	// does too: the sense outcome flips false->true exactly once.
	for v := TVRead0; v <= TVRead7; v++ {
		prev := false
		for s := TE; s < numTLCStates; s++ {
			cur := TLCSenseHigh(s, v)
			if prev && !cur {
				t.Errorf("sense at %v not monotone across states", v)
			}
			prev = cur
		}
	}
	// TVREAD0 is below everything.
	for s := TE; s < numTLCStates; s++ {
		if !TLCSenseHigh(s, TVRead0) {
			t.Errorf("state %v below TVREAD0", s)
		}
	}
}

func TestTLCPageReads(t *testing.T) {
	for _, p := range []TLCPage{TLCLSB, TLCCSB, TLCMSB} {
		for s := TE; s < numTLCStates; s++ {
			if got := TLCReadBit(p, s); got != s.Bit(p) {
				t.Errorf("read %v of %v = %v, want %v", p, s, got, s.Bit(p))
			}
		}
	}
}

func TestTLCReadSenseCounts(t *testing.T) {
	// The 1-2-4 gray split: LSB 1 sense, CSB 2, MSB 4 — total 7, the
	// seven reference voltages.
	want := map[TLCPage]int{TLCLSB: 1, TLCCSB: 2, TLCMSB: 4}
	total := 0
	for p, n := range want {
		got := TLCReadSequence(p).SROs()
		if got != n {
			t.Errorf("%v read uses %d senses, want %d", p, got, n)
		}
		total += got
	}
	if total != 7 {
		t.Errorf("total senses %d, want 7", total)
	}
}

func TestTLCOp3AllStates(t *testing.T) {
	for _, op := range []TLCOp3{TLCAnd3, TLCOr3, TLCNand3, TLCNor3} {
		for s := TE; s < numTLCStates; s++ {
			want := op.Eval(s.Bit(TLCLSB), s.Bit(TLCCSB), s.Bit(TLCMSB))
			if got := TLCRunOp(op, s); got != want {
				t.Errorf("%v on %v = %v, want %v", op, s, got, want)
			}
		}
	}
}

func TestTLCAnd3IsOneSense(t *testing.T) {
	// The paper's §4.4.1 example: AND of all three bits is a single
	// sense at VREAD1 (state E detection).
	if got := TLCForOp(TLCAnd3).SROs(); got != 1 {
		t.Errorf("AND3 uses %d senses, want 1", got)
	}
	if got := TLCForOp(TLCOr3).SROs(); got != 2 {
		t.Errorf("OR3 uses %d senses, want 2", got)
	}
}

func TestTLCSensorPanicsOnBadWordline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TLCCellSensor{TE}.Sense(2, Vref(TVRead1))
}

func TestTLCStrings(t *testing.T) {
	if TE.String() != "E" || TS5.String() != "S5" {
		t.Error("state strings")
	}
	if TLCCSB.String() != "CSB" {
		t.Error("page strings")
	}
	if TLCAnd3.String() != "AND3" || TLCNor3.String() != "NOR3" {
		t.Error("op strings")
	}
	if TVRead3.String() != "TVREAD3" {
		t.Error("vref strings")
	}
}
