package latch

import "fmt"

// MaxSteps bounds any single control sequence. The longest legal program
// (location-free XOR) has 11 steps; anything past this is a construction
// bug, not a bigger circuit.
const MaxSteps = 64

// Validate checks the circuit-ordering invariants every legal control
// program must satisfy, mirroring the static latchseq analyzer:
//
//   - the sequence is non-empty and at most MaxSteps long;
//   - every step kind is one the circuit defines (StepInit..StepSenseMulti);
//   - the first step is StepInit or StepInitInv — the latches are
//     undefined before initialization;
//   - every StepM1/StepM2 combine is preceded by a sense (StepSense or
//     StepSenseMulti) since the most recent initialization, so SO holds a
//     sensed value to combine;
//   - every StepM3 transfer has some prior initialization, so L1 holds
//     a defined value to move into L2;
//   - a StepSenseMulti selects between 2 and MaxMWSOperands wordlines —
//     the per-sense operand cap the sense amplifier margin allows;
//   - a StepSenseMulti is the only sense in its sequence: a multi-wordline
//     sense discharges the whole string, so mixing it into a pairwise
//     sense chain would combine against an already-collapsed SO.
//
// It returns nil for legal sequences and a descriptive error naming the
// first violation otherwise. The static analyzer proves these properties
// for sequences it can resolve at compile time; Validate covers
// sequences assembled at run time (e.g. TLC builders or fuzzers).
func (s Sequence) Validate() error {
	if len(s.Steps) == 0 {
		return fmt.Errorf("sequence %q is empty: a control program must initialize the latches", s.Name)
	}
	if len(s.Steps) > MaxSteps {
		return fmt.Errorf("sequence %q has %d steps, more than the %d any legal control program needs", s.Name, len(s.Steps), MaxSteps)
	}
	sawInit := false
	senseSinceInit := false
	senses := 0
	mws := false
	for i, st := range s.Steps {
		if st.Kind > StepSenseMulti {
			return fmt.Errorf("sequence %q step %d: unknown StepKind %d; the circuit defines kinds StepInit..StepSenseMulti", s.Name, i+1, uint8(st.Kind))
		}
		if i == 0 && st.Kind != StepInit && st.Kind != StepInitInv {
			return fmt.Errorf("sequence %q must begin with StepInit or StepInitInv, not %s: the circuit latches are undefined before initialization", s.Name, st.Kind)
		}
		switch st.Kind {
		case StepInit, StepInitInv, StepReinitL1, StepReinitL1Inv:
			sawInit = true
			senseSinceInit = false
		case StepSense:
			senseSinceInit = true
			senses++
		case StepSenseMulti:
			if st.WLCount < 2 || st.WLCount > MaxMWSOperands {
				return fmt.Errorf("sequence %q step %d: multi-wordline sense selects %d wordlines; the sense amplifier margin allows 2..%d per sense", s.Name, i+1, st.WLCount, MaxMWSOperands)
			}
			senseSinceInit = true
			senses++
			mws = true
		case StepM1, StepM2:
			if !senseSinceInit {
				return fmt.Errorf("sequence %q: %s combine at step %d has no StepSense since the last initialization: SO holds no sensed value to combine", s.Name, st.Kind, i+1)
			}
		case StepM3:
			if !sawInit {
				return fmt.Errorf("sequence %q: StepM3 transfer at step %d before any initialization: L1 holds no value to transfer", s.Name, i+1)
			}
		}
	}
	if mws && senses > 1 {
		return fmt.Errorf("sequence %q mixes a multi-wordline sense with %d other senses: an MWS discharges the whole string and must be the only sense in its control program", s.Name, senses-1)
	}
	return nil
}
