package latch

import "strings"

// Vec4 is the paper's symbolic notation L(X) = x1 x2 x3 x4: the logic value
// at a node for each possible state (E, S1, S2, S3) of the cell being
// sensed. The paper's tables print these vectors after each control step;
// the symbolic runner below reconstructs them by executing a sequence on
// four concrete circuits, one per state.
type Vec4 [numStates]bool

// Vec parses a 4-character "1010"-style vector, as printed in the paper.
func Vec(s string) Vec4 {
	if len(s) != numStates {
		panic("latch: Vec wants exactly 4 characters")
	}
	var v Vec4
	for i := 0; i < numStates; i++ {
		switch s[i] {
		case '0':
		case '1':
			v[i] = true
		default:
			panic("latch: Vec characters must be 0 or 1")
		}
	}
	return v
}

func (v Vec4) String() string {
	var b strings.Builder
	for _, x := range v {
		if x {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// SymbolicRow is the symbolic circuit state after one control step: the
// vectors the paper prints as one table row.
type SymbolicRow struct {
	Step Step
	SO   Vec4
	A    Vec4
	C    Vec4
	B    Vec4
	Out  Vec4
}

// RunSymbolic executes the sequence over all four states of the wordline-0
// cell and returns one row per step. For location-free sequences, lsb2
// fixes the LSB bit of the wordline-1 cell (its other bit is irrelevant);
// basic sequences never sense wordline 1, so lsb2 is ignored for them.
func RunSymbolic(seq Sequence, lsb2 bool) []SymbolicRow {
	// One concrete circuit per possible state of the first cell.
	circuits := make([]*Circuit, numStates)
	for s := E; s <= S3; s++ {
		cells := CellSensor{s, FromBits(lsb2, true)}
		circuits[s] = NewCircuit(cells)
	}
	rows := make([]SymbolicRow, len(seq.Steps))
	for i, st := range seq.Steps {
		rows[i].Step = st
		for s := E; s <= S3; s++ {
			c := circuits[s]
			c.Apply(st)
			rows[i].SO[s] = c.SO
			rows[i].A[s] = c.A
			rows[i].C[s] = c.C
			rows[i].B[s] = c.B
			rows[i].Out[s] = c.Out
		}
	}
	return rows
}

// FinalOut runs the sequence symbolically and returns the OUT vector after
// the last step — the column the paper's truth table (Table 1) specifies.
func FinalOut(seq Sequence, lsb2 bool) Vec4 {
	rows := RunSymbolic(seq, lsb2)
	if len(rows) == 0 {
		return Vec4{}
	}
	return rows[len(rows)-1].Out
}

// FormatTable renders symbolic rows in the paper's table layout, one line
// per step with the node vectors. Used by cmd/parabit-sim's "explain" mode
// and by test failure output.
func FormatTable(seq Sequence, rows []SymbolicRow) string {
	var b strings.Builder
	b.WriteString(seq.Name)
	b.WriteString("\n  step                 L(SO)  L(C)  L(A)  L(B)  L(OUT)\n")
	for _, r := range rows {
		b.WriteString("  ")
		name := r.Step.String()
		b.WriteString(name)
		for i := len(name); i < 21; i++ {
			b.WriteByte(' ')
		}
		so := "----"
		if r.Step.Kind == StepSense {
			so = r.SO.String()
		}
		b.WriteString(so)
		b.WriteString("   ")
		b.WriteString(r.C.String())
		b.WriteString("  ")
		b.WriteString(r.A.String())
		b.WriteString("  ")
		b.WriteString(r.B.String())
		b.WriteString("  ")
		b.WriteString(r.Out.String())
		b.WriteByte('\n')
	}
	return b.String()
}
