package latch

import "testing"

func TestLocFreeLSBAllOpsAllCombinations(t *testing.T) {
	// Exhaustive over both cells' four states: M is the LSB of the
	// wordline-0 cell, N the LSB of the wordline-1 cell; the other bits
	// of each cell must not affect the result.
	for _, op := range Ops {
		seq := ForOpLocFreeLSB(op)
		for s0 := E; s0 <= S3; s0++ {
			for s1 := E; s1 <= S3; s1++ {
				c := NewCircuit(CellSensor{s0, s1})
				got := c.Run(seq)
				m, n := s0.LSB(), s1.LSB()
				var want bool
				switch op {
				case OpNotLSB:
					want = !m
				case OpNotMSB:
					want = !n
				default:
					want = op.Eval(n, m)
				}
				if got != want {
					t.Errorf("%v lsb-locfree M=%v N=%v (states %v,%v): OUT=%v, want %v",
						op, m, n, s0, s1, got, want)
				}
			}
		}
	}
}

func TestLocFreeLSBSROCounts(t *testing.T) {
	// LSB-resident operands each cost one sense: AND/OR/NAND/NOR take 2
	// SROs, the XOR family 4, NOT 1. Always at least as many senses as
	// basic ParaBit (Fig. 15's trade-off) but fewer than the MSB-layout
	// location-free sequences.
	want := map[Op]int{
		OpAnd: 2, OpOr: 2, OpNand: 2, OpNor: 2,
		OpXor: 4, OpXnor: 4, OpNotLSB: 1, OpNotMSB: 1,
	}
	for op, n := range want {
		got := ForOpLocFreeLSB(op).SROs()
		if got != n {
			t.Errorf("%v: %d SROs, want %d", op, got, n)
		}
		if basic := ForOp(op).SROs(); got < basic && op != OpNotMSB {
			t.Errorf("%v: LSB locfree (%d SROs) cheaper than basic (%d)", op, got, basic)
		}
	}
}

func TestLocFreeLSBInverterUsage(t *testing.T) {
	// XOR/XNOR/NAND/NOR need the added inverter; AND/OR/NOT do not.
	wantInv := map[Op]bool{
		OpAnd: false, OpOr: false, OpNotLSB: false, OpNotMSB: false,
		OpXor: true, OpXnor: true, OpNand: true, OpNor: true,
	}
	for op, want := range wantInv {
		got := false
		for _, st := range ForOpLocFreeLSB(op).Steps {
			if st.Kind == StepSense && st.Inverted {
				got = true
			}
		}
		if got != want {
			t.Errorf("%v: inverter use = %v, want %v", op, got, want)
		}
	}
}
