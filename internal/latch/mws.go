package latch

import "fmt"

// Flash-Cosmos multi-wordline sense (MWS) control programs. Where ParaBit
// folds an N-operand reduction into N−1 pairwise latch combines — sense,
// settle, combine, repeat — Flash-Cosmos applies the read voltage to all N
// operand wordlines of one NAND string at once and lets the string itself
// compute: it conducts only when every selected cell conducts, so a single
// sense captures NOT AND(LSB bits) at SO on the normal path and, through
// the per-string inverter, NOT OR on the inverted path. One combine and
// one transfer then land AND/OR/NAND/NOR at OUT.
//
// The physics dictates the constraints the validator and the latchseq
// analyzer enforce: all operands must share a NAND string (same block,
// consecutive wordlines — the FTL's colocation job), at most
// MaxMWSOperands cells may be selected before the sense margin collapses,
// and the one MWS must be the only sense in its control program. XOR and
// XNOR are not monotone in any single sense outcome, so they have no MWS
// form and fall back to pairwise chains.

// MaxMWSOperands is the per-sense operand cap: selecting more wordlines
// divides the already-thin on-cell margin across more series cells until
// the sense amplifier cannot tell a conducting string from a leaky one.
// Flash-Cosmos makes 8-deep sensing reliable by programming operands with
// ESP; reductions wider than this chunk into several senses.
const MaxMWSOperands = 8

// senseMulti selects k consecutive wordlines starting at wordline 0 in a
// single sense at the LSB read voltage.
func senseMulti(k int) Step {
	return Step{Kind: StepSenseMulti, V: VRead2, WLCount: k}
}

// senseMultiInv is senseMulti through the per-string inverter path.
func senseMultiInv(k int) Step {
	return Step{Kind: StepSenseMulti, V: VRead2, WLCount: k, Inverted: true}
}

// MWSComputable reports whether the operation has a Flash-Cosmos form: a
// single multi-wordline sense computes only the monotone folds AND/OR and
// their complements. XOR/XNOR/NOT reductions stay on pairwise chains.
func MWSComputable(op Op) bool {
	switch op {
	case OpAnd, OpOr, OpNand, OpNor:
		return true
	}
	return false
}

// ForOpMWS builds the Flash-Cosmos control program reducing k LSB operands
// on consecutive wordlines 0..k-1 of one block. It panics for operations
// without an MWS form or a k outside [2, MaxMWSOperands]; callers gate on
// MWSComputable and chunk to the cap first.
func ForOpMWS(op Op, k int) Sequence {
	if !MWSComputable(op) {
		panic(fmt.Sprintf("latch: no multi-wordline sense sequence for op %v", op))
	}
	if k < 2 || k > MaxMWSOperands {
		panic(fmt.Sprintf("latch: multi-wordline sense of %d operands, want 2..%d", k, MaxMWSOperands))
	}
	name := fmt.Sprintf("MWS-%s-%d", op, k)
	var steps []Step
	switch op {
	case OpAnd:
		// SO = NOT AND(b); M2 leaves A = AND(b); transfer: OUT = AND(b).
		steps = []Step{init0, senseMulti(k), m2, m3}
	case OpOr:
		// Inverter path: SO = NOT OR(b); M2 leaves A = OR(b).
		steps = []Step{init0, senseMultiInv(k), m2, m3}
	case OpNand:
		// Inverted init and M1: C = AND(b), A = NAND(b); OUT = NAND(b).
		steps = []Step{initInv, senseMulti(k), m1, m3}
	case OpNor:
		steps = []Step{initInv, senseMultiInv(k), m1, m3}
	}
	return Sequence{Name: name, Steps: steps, ESP: true}
}
