package latch

import "fmt"

// Sequence is a named latching-circuit control program. SROs is the number
// of single read operations it issues — the component with real latency on
// flash (25 µs each on the modeled MLC parts); every other step is circuit
// switching at negligible cost next to a sense.
type Sequence struct {
	Name  string
	Steps []Step
	// ESP marks a Flash-Cosmos sequence whose operands were written with
	// enhanced SLC programming: a tighter (slower) program that widens the
	// threshold margins a multi-wordline sense needs. It changes program
	// latency and the reliability model, never the circuit algebra, so
	// Validate ignores it.
	ESP bool
}

// SROs counts the sensing steps in the sequence. A multi-wordline sense
// counts as one: it is one read operation regardless of how many
// wordlines it selects (its extra settle time is billed separately by the
// timing model).
func (s Sequence) SROs() int {
	n := 0
	for _, st := range s.Steps {
		if st.Kind == StepSense || st.Kind == StepSenseMulti {
			n++
		}
	}
	return n
}

func sense(v Vref) Step            { return Step{Kind: StepSense, V: v} }
func senseWL(wl int, v Vref) Step  { return Step{Kind: StepSense, V: v, WL: wl} }
func senseInv(wl int, v Vref) Step { return Step{Kind: StepSense, V: v, WL: wl, Inverted: true} }

var (
	init0     = Step{Kind: StepInit}
	initInv   = Step{Kind: StepInitInv}
	reinit    = Step{Kind: StepReinitL1}
	reinitInv = Step{Kind: StepReinitL1Inv}
	m1        = Step{Kind: StepM1}
	m2        = Step{Kind: StepM2}
	m3        = Step{Kind: StepM3}
)

// ReadLSB is the baseline LSB page read (paper Fig. 3 top): one sense at
// VREAD2, captured through M2, then transferred to L2. OUT ends equal to
// the cell's LSB bit.
var ReadLSB = Sequence{
	Name:  "READ-LSB",
	Steps: []Step{init0, sense(VRead2), m2, m3},
}

// ReadMSB is the baseline MSB page read (paper Fig. 3 bottom): senses at
// VREAD1 and VREAD3, then transfers. OUT ends equal to the cell's MSB bit.
var ReadMSB = Sequence{
	Name:  "READ-MSB",
	Steps: []Step{init0, sense(VRead1), m2, sense(VRead3), m1, m3},
}

// Basic ParaBit sequences: both operand bits live in the same MLC cell
// (first operand in the LSB page, second in the MSB page), so a sequence
// senses only wordline 0.

// seqAnd implements paper Fig. 5(a): the read-LSB control shape with the
// sensing voltage moved to VREAD1, so OUT=1 only for state E (LSB=MSB=1).
var seqAnd = Sequence{
	Name:  "AND",
	Steps: []Step{init0, sense(VRead1), m2, m3},
}

// seqOr implements paper Fig. 5(b): the read-MSB control shape with
// voltages VREAD2 and VREAD3, leaving OUT=1101 over (E,S1,S2,S3).
var seqOr = Sequence{
	Name:  "OR",
	Steps: []Step{init0, sense(VRead2), m2, sense(VRead3), m1, m3},
}

// seqXnor implements paper Fig. 6: six control steps with four senses
// (VREAD1, VREAD0, VREAD2, VREAD3), accumulating E-or-S2 detection in L2.
var seqXnor = Sequence{
	Name: "XNOR",
	Steps: []Step{
		init0,
		sense(VRead1), m2, // step 1: A=1000
		m3,                // step 2: OUT=1000
		sense(VRead0), m2, // step 3: clear L1 (A=0000)
		sense(VRead2), m1, // step 4: C=1100, A=0011
		sense(VRead3), m2, // step 5: A=0010
		m3, // step 6: B=0101, OUT=1010
	},
}

// seqNand implements paper Table 2: inverted initialization, one sense at
// VREAD1 through M1, one transfer. OUT ends 0111.
var seqNand = Sequence{
	Name:  "NAND",
	Steps: []Step{initInv, sense(VRead1), m1, m3},
}

// seqNor implements paper Table 3: inverted initialization, senses at
// VREAD2 (M1) and VREAD3 (M2), then transfer. OUT ends 0010.
var seqNor = Sequence{
	Name:  "NOR",
	Steps: []Step{initInv, sense(VRead2), m1, sense(VRead3), m2, m3},
}

// seqXor implements paper Table 4: M XOR N = (NOT M)N + M(NOT N), built
// from an S3 detection transferred to L2 followed by an S1 detection
// OR-merged by the final transfer. Four senses in total.
var seqXor = Sequence{
	Name: "XOR",
	Steps: []Step{
		initInv,
		sense(VRead3), m1, // row 2: A=0001 (S3 detector)
		m3,                // row 3: OUT=0001
		sense(VRead0), m2, // row 4: clear L1 through M2 (A=0000, C=1111)
		sense(VRead1), m1, // row 5: C=1000, A=0111
		sense(VRead2), m2, // row 6: A=0100 (S1 detector)
		m3, // row 7: OUT=0101
	},
}

// seqNotLSB implements paper Table 5 top: the LSB read shape on the
// inverted initialization, yielding the complement of the LSB page.
var seqNotLSB = Sequence{
	Name:  "NOT-LSB",
	Steps: []Step{initInv, sense(VRead2), m1, m3},
}

// seqNotMSB implements paper Table 5 bottom: the MSB read shape on the
// inverted initialization (VREAD1 through M1, VREAD3 through M2).
var seqNotMSB = Sequence{
	Name:  "NOT-MSB",
	Steps: []Step{initInv, sense(VRead1), m1, sense(VRead3), m2, m3},
}

var basicSeqs = map[Op]Sequence{
	OpAnd:    seqAnd,
	OpOr:     seqOr,
	OpXnor:   seqXnor,
	OpNand:   seqNand,
	OpNor:    seqNor,
	OpXor:    seqXor,
	OpNotLSB: seqNotLSB,
	OpNotMSB: seqNotMSB,
}

// ForOp returns the basic-ParaBit control sequence for the operation,
// which assumes both operand bits are stored in the same MLC cell.
func ForOp(op Op) Sequence {
	s, ok := basicSeqs[op]
	if !ok {
		panic(fmt.Sprintf("latch: no sequence for op %v", op))
	}
	return s
}

// Location-free sequences (paper §4.2): the first operand M is the MSB bit
// of the cell on wordline 0; the second operand N is the LSB bit of the
// aligned cell on wordline 1. Sensing wordline 1 at VREAD2 yields NOT N at
// SO on the normal path (a high threshold means LSB=0) and N through the
// added inverter. As the paper notes for AND and XOR, the second operand
// must be an LSB bit; OR tolerates either but is expressed the same way.

// locFreeAnd: read M into A (MSB read), then one LSB sense of the second
// cell gates A through M2: A = M AND N. Paper Table 6.
var locFreeAnd = Sequence{
	Name: "LF-AND",
	Steps: []Step{
		init0,
		senseWL(0, VRead1), m2, senseWL(0, VRead3), m1, // A = M
		senseWL(1, VRead2), m2, // A = M AND N (SO = NOT N)
		m3,
	},
}

// locFreeOr: read M, park it in L2, re-initialize L1, read N, and let the
// final transfer OR-merge: OUT = M OR N. Paper Table 7.
var locFreeOr = Sequence{
	Name: "LF-OR",
	Steps: []Step{
		init0,
		senseWL(0, VRead1), m2, senseWL(0, VRead3), m1, // A = M
		m3,                     // B = NOT M, OUT = M
		reinit,                 // A=1
		senseWL(1, VRead2), m2, // A = N
		m3, // OUT = M OR N
	},
}

// locFreeXor: two phases per paper Fig. 8. Phase 1 computes (NOT M)N via a
// NOT-MSB read and a normal-path LSB sense; phase 2 computes M(NOT N) via
// an MSB read and an inverter-path LSB sense; the transfers OR the phases.
var locFreeXor = Sequence{
	Name: "LF-XOR",
	Steps: []Step{
		initInv,
		senseWL(0, VRead1), m1, senseWL(0, VRead3), m2, // A = NOT M
		senseWL(1, VRead2), m2, // A = (NOT M) AND N
		m3,                                             // OUT = (NOT M)N
		reinit,                                         // normal L1 polarity for the MSB read
		senseWL(0, VRead1), m2, senseWL(0, VRead3), m1, // A = M
		senseInv(1, VRead2), m2, // A = M AND (NOT N), via inverter
		m3, // OUT = (NOT M)N + M(NOT N)
	},
}

// locFreeNand: NOT M parked in L2 would give OR of complements directly,
// but the transfer algebra works out shorter: read NOT M, transfer
// (B = M), re-init, capture NOT N via the inverter path, and the final
// transfer leaves B = M AND N, OUT = NAND.
var locFreeNand = Sequence{
	Name: "LF-NAND",
	Steps: []Step{
		initInv,
		senseWL(0, VRead1), m1, senseWL(0, VRead3), m2, // A = NOT M
		m3,                      // B = M, OUT = NOT M
		reinit,                  // A=1
		senseInv(1, VRead2), m2, // A = NOT N (SO = N via inverter)
		m3, // B = M AND N, OUT = NAND
	},
}

// locFreeNor: (NOT M) AND (NOT N) — a NOT-MSB read gated by an
// inverter-path LSB sense.
var locFreeNor = Sequence{
	Name: "LF-NOR",
	Steps: []Step{
		initInv,
		senseWL(0, VRead1), m1, senseWL(0, VRead3), m2, // A = NOT M
		senseInv(1, VRead2), m2, // A = (NOT M)(NOT N)
		m3,
	},
}

// locFreeXnor: (NOT M)(NOT N) + MN, the two-phase dual of locFreeXor.
var locFreeXnor = Sequence{
	Name: "LF-XNOR",
	Steps: []Step{
		initInv,
		senseWL(0, VRead1), m1, senseWL(0, VRead3), m2, // A = NOT M
		senseInv(1, VRead2), m2, // A = (NOT M)(NOT N)
		m3,
		reinit,
		senseWL(0, VRead1), m2, senseWL(0, VRead3), m1, // A = M
		senseWL(1, VRead2), m2, // A = MN
		m3, // OUT = (NOT M)(NOT N) + MN
	},
}

// locFreeNotMSB and locFreeNotLSB: NOT needs no second operand; the basic
// sequences already work on arbitrary wordlines. Aliased here for symmetry.
var (
	locFreeNotLSB = Sequence{Name: "LF-NOT-LSB", Steps: seqNotLSBonWL1()}
	locFreeNotMSB = Sequence{Name: "LF-NOT-MSB", Steps: seqNotMSB.Steps}
)

// seqNotLSBonWL1 inverts the LSB of the second wordline, which is where
// location-free layouts keep LSB operands.
func seqNotLSBonWL1() []Step {
	return []Step{initInv, senseWL(1, VRead2), m1, m3}
}

var locFreeSeqs = map[Op]Sequence{
	OpAnd:    locFreeAnd,
	OpOr:     locFreeOr,
	OpXor:    locFreeXor,
	OpNand:   locFreeNand,
	OpNor:    locFreeNor,
	OpXnor:   locFreeXnor,
	OpNotLSB: locFreeNotLSB,
	OpNotMSB: locFreeNotMSB,
}

// ForOpLocFree returns the location-free control sequence for the
// operation. The first operand is the MSB bit of the wordline-0 cell; the
// second operand is the LSB bit of the aligned wordline-1 cell.
func ForOpLocFree(op Op) Sequence {
	s, ok := locFreeSeqs[op]
	if !ok {
		panic(fmt.Sprintf("latch: no location-free sequence for op %v", op))
	}
	return s
}

// RequiresInverter reports whether the operation's location-free sequence
// uses the extra inverter path (M7) that basic hardware lacks.
func RequiresInverter(op Op) bool {
	for _, st := range ForOpLocFree(op).Steps {
		if st.Kind == StepSense && st.Inverted {
			return true
		}
	}
	return false
}
