package latch

import (
	"testing"
	"testing/quick"
)

func TestStateGrayCoding(t *testing.T) {
	// Paper Table 1: E=(1/1), S1=(1/0), S2=(0/0), S3=(0/1) as (LSB/MSB).
	want := []struct {
		s        State
		lsb, msb bool
	}{
		{E, true, true}, {S1, true, false}, {S2, false, false}, {S3, false, true},
	}
	for _, w := range want {
		if w.s.LSB() != w.lsb || w.s.MSB() != w.msb {
			t.Errorf("%v: (LSB,MSB)=(%v,%v), want (%v,%v)", w.s, w.s.LSB(), w.s.MSB(), w.lsb, w.msb)
		}
		if FromBits(w.lsb, w.msb) != w.s {
			t.Errorf("FromBits(%v,%v) = %v, want %v", w.lsb, w.msb, FromBits(w.lsb, w.msb), w.s)
		}
	}
}

func TestSenseVectors(t *testing.T) {
	// §2.2: sensing at VREAD0..3 yields SO vectors 1111, 0111, 0011, 0001.
	want := map[Vref]string{VRead0: "1111", VRead1: "0111", VRead2: "0011", VRead3: "0001"}
	for v, ws := range want {
		var got Vec4
		for s := E; s <= S3; s++ {
			got[s] = SenseHigh(s, v)
		}
		if got.String() != ws {
			t.Errorf("sense at %v = %s, want %s", v, got, ws)
		}
	}
}

// expectRow asserts selected node vectors in a symbolic row. Empty strings
// skip a node. This is how each table row from the paper is written down.
func expectRow(t *testing.T, seq Sequence, rows []SymbolicRow, i int, so, c, a, b, out string) {
	t.Helper()
	r := rows[i]
	check := func(name, want string, got Vec4) {
		t.Helper()
		if want != "" && got.String() != want {
			t.Errorf("%s step %d (%v): L(%s)=%s, want %s\n%s",
				seq.Name, i, r.Step, name, got, want, FormatTable(seq, rows))
		}
	}
	check("SO", so, r.SO)
	check("C", c, r.C)
	check("A", a, r.A)
	check("B", b, r.B)
	check("OUT", out, r.Out)
}

func TestInitialization(t *testing.T) {
	// Paper Fig. 2: after init, L(C)=0000, L(A)=1111, L(OUT)=0000, L(B)=1111.
	rows := RunSymbolic(Sequence{Name: "init", Steps: []Step{{Kind: StepInit}}}, false)
	expectRow(t, ReadLSB, rows, 0, "", "0000", "1111", "1111", "0000")
	// Paper Fig. 7: inverted init has L(A)=0000, L(C)=1111, L2 unchanged.
	rows = RunSymbolic(Sequence{Name: "init-inv", Steps: []Step{{Kind: StepInitInv}}}, false)
	expectRow(t, ReadLSB, rows, 0, "", "1111", "0000", "1111", "0000")
}

func TestReadLSBSequence(t *testing.T) {
	// Paper Fig. 3 top: sense VREAD2 (SO=0011), M2 gives A=1100 (the LSB
	// pattern), M3 transfers it to OUT.
	rows := RunSymbolic(ReadLSB, false)
	expectRow(t, ReadLSB, rows, 1, "0011", "", "", "", "")
	expectRow(t, ReadLSB, rows, 2, "", "0011", "1100", "", "")
	expectRow(t, ReadLSB, rows, 3, "", "", "", "0011", "1100")
	if ReadLSB.SROs() != 1 {
		t.Errorf("LSB read uses %d SROs, want 1", ReadLSB.SROs())
	}
}

func TestReadMSBSequence(t *testing.T) {
	// Paper Fig. 3 bottom: VREAD1 then VREAD3; A ends 1001 (MSB pattern).
	rows := RunSymbolic(ReadMSB, false)
	expectRow(t, ReadMSB, rows, 1, "0111", "", "", "", "")
	expectRow(t, ReadMSB, rows, 2, "", "0111", "1000", "", "")
	expectRow(t, ReadMSB, rows, 3, "0001", "", "", "", "")
	expectRow(t, ReadMSB, rows, 4, "", "0110", "1001", "", "")
	expectRow(t, ReadMSB, rows, 5, "", "", "", "0110", "1001")
	if ReadMSB.SROs() != 2 {
		t.Errorf("MSB read uses %d SROs, want 2", ReadMSB.SROs())
	}
}

func TestTruthTableAllOps(t *testing.T) {
	// Paper Table 1, basic ParaBit: final OUT vector must match the truth
	// table for every operation.
	want := map[Op]string{
		OpAnd: "1000", OpOr: "1101", OpXnor: "1010", OpNand: "0111",
		OpNor: "0010", OpXor: "0101", OpNotLSB: "0011", OpNotMSB: "0110",
	}
	for op, w := range want {
		got := FinalOut(ForOp(op), false)
		if got.String() != w {
			t.Errorf("%v: OUT=%s, want %s", op, got, w)
		}
		// Cross-check the declared table against Op.Eval.
		tt := op.TruthTable()
		for s := E; s <= S3; s++ {
			if got[s] != tt[s] {
				t.Errorf("%v in state %v: circuit=%v, truth table=%v", op, s, got[s], tt[s])
			}
		}
	}
}

func TestAndSequenceFig5a(t *testing.T) {
	rows := RunSymbolic(ForOp(OpAnd), false)
	expectRow(t, ForOp(OpAnd), rows, 1, "0111", "", "", "", "")
	expectRow(t, ForOp(OpAnd), rows, 2, "", "0111", "1000", "", "")
	expectRow(t, ForOp(OpAnd), rows, 3, "", "", "", "0111", "1000")
}

func TestOrSequenceFig5b(t *testing.T) {
	rows := RunSymbolic(ForOp(OpOr), false)
	expectRow(t, ForOp(OpOr), rows, 2, "", "0011", "1100", "", "")
	expectRow(t, ForOp(OpOr), rows, 4, "", "0010", "1101", "", "")
	expectRow(t, ForOp(OpOr), rows, 5, "", "", "", "0010", "1101")
}

func TestXnorSequenceFig6(t *testing.T) {
	seq := ForOp(OpXnor)
	rows := RunSymbolic(seq, false)
	expectRow(t, seq, rows, 2, "", "0111", "1000", "", "")  // step 1
	expectRow(t, seq, rows, 3, "", "", "", "0111", "1000")  // step 2
	expectRow(t, seq, rows, 5, "", "1111", "0000", "", "")  // step 3
	expectRow(t, seq, rows, 7, "", "1100", "0011", "", "")  // step 4
	expectRow(t, seq, rows, 9, "", "1101", "0010", "", "")  // step 5
	expectRow(t, seq, rows, 10, "", "", "", "0101", "1010") // step 6
	if seq.SROs() != 4 {
		t.Errorf("XNOR uses %d SROs, want 4", seq.SROs())
	}
}

func TestNandSequenceTable2(t *testing.T) {
	seq := ForOp(OpNand)
	rows := RunSymbolic(seq, false)
	expectRow(t, seq, rows, 0, "", "1111", "0000", "1111", "0000") // row 1
	expectRow(t, seq, rows, 2, "", "1000", "0111", "1111", "0000") // row 2
	expectRow(t, seq, rows, 3, "", "1000", "0111", "1000", "0111") // row 3
}

func TestNorSequenceTable3(t *testing.T) {
	seq := ForOp(OpNor)
	rows := RunSymbolic(seq, false)
	expectRow(t, seq, rows, 2, "", "1100", "0011", "1111", "0000") // row 2
	expectRow(t, seq, rows, 4, "", "1101", "0010", "1111", "0000") // row 3
	expectRow(t, seq, rows, 5, "", "1101", "0010", "1101", "0010") // row 4
}

func TestXorSequenceTable4(t *testing.T) {
	seq := ForOp(OpXor)
	rows := RunSymbolic(seq, false)
	expectRow(t, seq, rows, 2, "", "1110", "0001", "1111", "0000")  // row 2
	expectRow(t, seq, rows, 3, "", "1110", "0001", "1110", "0001")  // row 3
	expectRow(t, seq, rows, 5, "", "1111", "0000", "1110", "0001")  // row 4
	expectRow(t, seq, rows, 7, "", "1000", "0111", "1110", "0001")  // row 5
	expectRow(t, seq, rows, 9, "", "1011", "0100", "1110", "0001")  // row 6
	expectRow(t, seq, rows, 10, "", "1011", "0100", "1010", "0101") // row 7
	if seq.SROs() != 4 {
		t.Errorf("XOR uses %d SROs, want 4", seq.SROs())
	}
}

func TestNotSequencesTable5(t *testing.T) {
	lsb := ForOp(OpNotLSB)
	rows := RunSymbolic(lsb, false)
	expectRow(t, lsb, rows, 2, "", "1100", "0011", "1111", "0000")
	expectRow(t, lsb, rows, 3, "", "1100", "0011", "1100", "0011")

	msb := ForOp(OpNotMSB)
	rows = RunSymbolic(msb, false)
	expectRow(t, msb, rows, 2, "", "1000", "0111", "1111", "0000")
	expectRow(t, msb, rows, 4, "", "1001", "0110", "1111", "0000")
	expectRow(t, msb, rows, 5, "", "1001", "0110", "1001", "0110")
}

func TestSROCounts(t *testing.T) {
	// These counts drive the latency model: 25 µs per SRO gives the
	// paper's "XNOR and XOR take 100 µs" (§5.2).
	want := map[Op]int{
		OpAnd: 1, OpOr: 2, OpXnor: 4, OpNand: 1,
		OpNor: 2, OpXor: 4, OpNotLSB: 1, OpNotMSB: 2,
	}
	for op, n := range want {
		if got := ForOp(op).SROs(); got != n {
			t.Errorf("%v: %d SROs, want %d", op, got, n)
		}
	}
}

func TestLocFreeAndTable6(t *testing.T) {
	seq := ForOpLocFree(OpAnd)
	// Table 6: after the MSB read, L(A)=1001. With LSB=1 on wordline 1,
	// SO=0 and A stays 1001; with LSB=0, SO=1 and A collapses to 0000.
	for _, tc := range []struct {
		lsb     bool
		aAfter  string
		bAfter  string
		outWant string
	}{
		{true, "1001", "0110", "1001"},
		{false, "0000", "1111", "0000"},
	} {
		rows := RunSymbolic(seq, tc.lsb)
		// Step index 4 is the end of the MSB read (A = 1001).
		expectRow(t, seq, rows, 4, "", "0110", "1001", "", "")
		// Step index 6 is after the LSB sense + M2.
		expectRow(t, seq, rows, 6, "", "", tc.aAfter, "", "")
		expectRow(t, seq, rows, 7, "", "", "", tc.bAfter, tc.outWant)
	}
}

func TestLocFreeOrTable7(t *testing.T) {
	seq := ForOpLocFree(OpOr)
	for _, tc := range []struct {
		lsb     bool
		bAfter  string
		outWant string
	}{
		{true, "0000", "1111"},
		{false, "0110", "1001"},
	} {
		rows := RunSymbolic(seq, tc.lsb)
		// After parking M in L2: B=0110, OUT=1001 (Table 7 initial column).
		expectRow(t, seq, rows, 5, "", "", "", "0110", "1001")
		last := len(rows) - 1
		expectRow(t, seq, rows, last, "", "", "", tc.bAfter, tc.outWant)
	}
}

func TestLocFreeAllOpsAllCombinations(t *testing.T) {
	// Exhaustive: operand M is the MSB of a wordline-0 cell in any of the
	// four states; operand N is the LSB of a wordline-1 cell in any state.
	for _, op := range Ops {
		seq := ForOpLocFree(op)
		for s0 := E; s0 <= S3; s0++ {
			for s1 := E; s1 <= S3; s1++ {
				c := NewCircuit(CellSensor{s0, s1})
				got := c.Run(seq)
				m, n := s0.MSB(), s1.LSB()
				var want bool
				switch op {
				case OpNotLSB:
					want = !n
				case OpNotMSB:
					want = !m
				default:
					want = op.Eval(n, m)
				}
				if got != want {
					t.Errorf("%v locfree with M=%v N=%v (states %v,%v): OUT=%v, want %v",
						op, m, n, s0, s1, got, want)
				}
			}
		}
	}
}

func TestLocFreeInverterUsage(t *testing.T) {
	// §4.2/Fig. 8: XOR (and the inverted family) needs the added inverter;
	// AND and OR do not.
	wantInv := map[Op]bool{
		OpAnd: false, OpOr: false, OpXor: true,
		OpNand: true, OpNor: true, OpXnor: true,
		OpNotLSB: false, OpNotMSB: false,
	}
	for op, want := range wantInv {
		if got := RequiresInverter(op); got != want {
			t.Errorf("%v: RequiresInverter=%v, want %v", op, got, want)
		}
	}
}

func TestLocFreeSROCounts(t *testing.T) {
	// LocFree trades reallocation for extra senses: AND needs 3 (2 for the
	// MSB operand + 1 for the LSB operand); XOR needs 6 (two phases).
	want := map[Op]int{
		OpAnd: 3, OpOr: 3, OpXor: 6, OpNand: 3, OpNor: 3, OpXnor: 6,
		OpNotLSB: 1, OpNotMSB: 2,
	}
	for op, n := range want {
		if got := ForOpLocFree(op).SROs(); got != n {
			t.Errorf("%v locfree: %d SROs, want %d", op, got, n)
		}
	}
}

// Property: for random operand bits, the basic circuit computes the same
// value as the plain boolean operation, for every op. This is the bridge
// that lets the flash package use word-wide kernels on the hot path.
func TestCircuitMatchesBooleanProperty(t *testing.T) {
	f := func(lsb, msb bool, opIdx uint8) bool {
		op := Ops[int(opIdx)%len(Ops)]
		cell := FromBits(lsb, msb)
		c := NewCircuit(CellSensor{cell})
		return c.Run(ForOp(op)) == op.Eval(lsb, msb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestReadSequencesRecoverBits(t *testing.T) {
	for s := E; s <= S3; s++ {
		c := NewCircuit(CellSensor{s})
		if got := c.Run(ReadLSB); got != s.LSB() {
			t.Errorf("LSB read of %v = %v, want %v", s, got, s.LSB())
		}
		c = NewCircuit(CellSensor{s})
		if got := c.Run(ReadMSB); got != s.MSB() {
			t.Errorf("MSB read of %v = %v, want %v", s, got, s.MSB())
		}
	}
}

func TestCellSensorPanicsOnBadWordline(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sensing a missing wordline did not panic")
		}
	}()
	CellSensor{E}.Sense(1, VRead2)
}

func TestVecParse(t *testing.T) {
	if Vec("1010").String() != "1010" {
		t.Fatal("Vec round-trip failed")
	}
	for _, bad := range []string{"101", "10101", "10a0"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Vec(%q) did not panic", bad)
				}
			}()
			Vec(bad)
		}()
	}
}

func TestFormatTableContainsVectors(t *testing.T) {
	rows := RunSymbolic(ForOp(OpAnd), false)
	out := FormatTable(ForOp(OpAnd), rows)
	for _, want := range []string{"AND", "SENSE wl0 @VREAD1", "1000"} {
		if !contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestLatchComplementInvariant: the two latches are cross-coupled
// inverter pairs, so A == NOT C and OUT == NOT B must hold after every
// step of every sequence, for every cell state — the structural invariant
// the paper's circuit relies on.
func TestLatchComplementInvariant(t *testing.T) {
	check := func(seq Sequence, cells CellSensor) {
		t.Helper()
		c := NewCircuit(cells)
		for si, st := range seq.Steps {
			c.Apply(st)
			if c.A == c.C {
				t.Fatalf("%s step %d (%v): A == C == %v", seq.Name, si, st, c.A)
			}
			if c.Out == c.B {
				t.Fatalf("%s step %d (%v): OUT == B == %v", seq.Name, si, st, c.Out)
			}
		}
	}
	for s0 := E; s0 <= S3; s0++ {
		for s1 := E; s1 <= S3; s1++ {
			cells := CellSensor{s0, s1}
			check(ReadLSB, cells)
			check(ReadMSB, cells)
			for _, op := range Ops {
				check(ForOp(op), cells)
				check(ForOpLocFree(op), cells)
				check(ForOpLocFreeLSB(op), cells)
			}
		}
	}
}

// TestRandomStepSequencesKeepInvariant: even arbitrary (possibly
// meaningless) control programs never break latch complementarity, as
// long as they start with an initialization.
func TestRandomStepSequencesKeepInvariant(t *testing.T) {
	f := func(seed int64, stepsRaw []uint8) bool {
		cells := CellSensor{State(uint8(seed) % 4), State(uint8(seed>>8) % 4)}
		c := NewCircuit(cells)
		c.Apply(Step{Kind: StepInit})
		for _, raw := range stepsRaw {
			kind := StepKind(raw % 8)
			st := Step{Kind: kind}
			if kind == StepSense {
				st.V = Vref(raw / 8 % 4)
				st.WL = int(raw / 32 % 2)
				st.Inverted = raw >= 128
			}
			c.Apply(st)
			if c.A == c.C || c.Out == c.B {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTLCSequencesKeepInvariant extends the invariant to the TLC
// sequences.
func TestTLCSequencesKeepInvariant(t *testing.T) {
	for s := TE; s < numTLCStates; s++ {
		for _, seq := range []Sequence{
			TLCReadSequence(TLCLSB), TLCReadSequence(TLCCSB), TLCReadSequence(TLCMSB),
			TLCForOp(TLCAnd3), TLCForOp(TLCOr3), TLCForOp(TLCNand3), TLCForOp(TLCNor3),
		} {
			c := NewCircuit(TLCCellSensor{s})
			for si, st := range seq.Steps {
				c.Apply(st)
				if c.A == c.C || c.Out == c.B {
					t.Fatalf("%s step %d on %v: invariant broken", seq.Name, si, s)
				}
			}
		}
	}
}
