package e2e

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"parabit"
	"parabit/internal/flash"
)

// chaosPlan is a deliberately hostile fault plan: a plane-wide transient
// outage across the start of the run (short enough for the scheduler's
// backoff schedule to ride out), a stuck block, aggressive program- and
// erase-failure rates that force FTL retirement and re-steering, and
// sense jitter. The fixed seed makes every injection deterministic.
const chaosPlan = `{
	"seed": 1011,
	"rules": [
		{"type": "plane-transient", "plane": -1, "from_us": 0, "to_us": 1500},
		{"type": "stuck-block", "plane": 0, "block": 0},
		{"type": "program-fail", "rate": 0.05},
		{"type": "erase-fail", "rate": 0.02},
		{"type": "jitter", "rate": 0.1, "op": "sense", "max_jitter_us": 15}
	]
}`

// evalPage is the software reference for a two-operand bitwise op.
func evalPage(op parabit.Op, x, y []byte) []byte {
	out := make([]byte, len(x))
	for i := range x {
		for b := 0; b < 8; b++ {
			if op.Eval(x[i]&(1<<b) != 0, y[i]&(1<<b) != 0) {
				out[i] |= 1 << b
			}
		}
	}
	return out
}

// evalReduce folds evalPage over a page list.
func evalReduce(op parabit.Op, pages [][]byte) []byte {
	acc := append([]byte(nil), pages[0]...)
	for _, p := range pages[1:] {
		acc = evalPage(op, acc, p)
	}
	return acc
}

// requireCorrectOrFault is the chaos contract: an operation either
// returns exactly the software-reference result or an explicit injected
// fault error. Anything else — wrong data with a nil error, or a
// non-fault failure — is a degradation bug.
func requireCorrectOrFault(t *testing.T, label string, got []byte, err error, want []byte) {
	t.Helper()
	if err != nil {
		if flash.AsFaultError(err) == nil {
			t.Errorf("%s: non-fault error %v", label, err)
		}
		return
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: silent corruption (result differs from software reference)", label)
	}
}

// TestChaosDifferentialAllOpsAllSchemes hammers one device from several
// concurrent clients, each running the complete op x scheme matrix plus
// reductions, with the chaos fault plan, the read-noise model and ECC
// all armed. Every client checks results against the in-memory software
// reference; afterwards the FTL bookkeeping must still audit clean and
// the fault/recovery machinery must show it actually fired. Run it under
// -race: the clients share the scheduler, the fault engine and the sink.
func TestChaosDifferentialAllOpsAllSchemes(t *testing.T) {
	d, err := parabit.NewDevice(parabit.WithSmallGeometry(), parabit.WithErrorModel(11), parabit.WithECC())
	if err != nil {
		t.Fatal(err)
	}
	sink := d.EnableTelemetry(false)
	if err := d.InstallFaultPlan([]byte(chaosPlan)); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			base := uint64(c * 256)
			next := base
			lpns := func(n int) []uint64 {
				out := make([]uint64, n)
				for i := range out {
					out[i] = next
					next++
				}
				return out
			}
			page := func() []byte {
				p := make([]byte, d.PageSize())
				rng.Read(p)
				return p
			}
			writeOperands := func(scheme parabit.Scheme, ids []uint64, data [][]byte) error {
				switch {
				case scheme == parabit.PreAllocated && len(ids) == 2:
					return d.WriteOperandPair(ids[0], ids[1], data[0], data[1])
				case scheme == parabit.LocationFree:
					return d.WriteOperandGroup(ids, data)
				case scheme == parabit.FlashCosmos:
					// Block-colocated ESP layout: AND/OR ops hit the
					// multi-wordline sense, the rest exercise the scheme's
					// pairwise fallback from the same placement.
					return d.WriteOperandMWSGroup(ids, data)
				default:
					for i, id := range ids {
						if err := d.WriteOperand(id, data[i]); err != nil {
							return err
						}
					}
					return nil
				}
			}

			for _, scheme := range parabit.Schemes {
				for _, op := range parabit.Ops {
					ids := lpns(2)
					x, y := page(), page()
					if err := writeOperands(scheme, ids, [][]byte{x, y}); err != nil {
						if flash.AsFaultError(err) == nil {
							t.Errorf("client %d %v/%v write: non-fault error %v", c, scheme, op, err)
						}
						continue
					}
					r, err := d.Bitwise(op, ids[0], ids[1], scheme)
					requireCorrectOrFault(t, scheme.String()+"/"+op.String(), r.Data, err, evalPage(op, x, y))
				}
				// One reduction per associative op per scheme.
				for _, op := range []parabit.Op{parabit.And, parabit.Or, parabit.Xor} {
					ids := lpns(3)
					data := [][]byte{page(), page(), page()}
					if err := writeOperands(scheme, ids, data); err != nil {
						if flash.AsFaultError(err) == nil {
							t.Errorf("client %d %v reduce write: non-fault error %v", c, scheme, err)
						}
						continue
					}
					r, err := d.Reduce(op, ids, scheme)
					requireCorrectOrFault(t, scheme.String()+"/reduce-"+op.String(), r.Data, err, evalReduce(op, data))
				}
			}
		}(c)
	}
	wg.Wait()
	d.Flush()

	// The translation layer must have absorbed all of that without
	// corrupting its bookkeeping.
	if err := d.CheckInvariants(); err != nil {
		t.Errorf("FTL invariants violated after chaos run: %v", err)
	}

	// The plan must actually have fired, and the degradation machinery
	// must have responded: injections, FTL retirements with re-steered
	// writes, and scheduler retries over the startup outage.
	fs := d.FaultStats()
	if fs.Injected == 0 || fs.ProgramFails == 0 {
		t.Errorf("chaos plan never injected: %+v", fs)
	}
	if fs.ResteeredWrites == 0 || fs.BlocksRetired == 0 {
		t.Errorf("FTL degradation never engaged: %+v", fs)
	}
	if fs.Retries == 0 {
		t.Errorf("scheduler never retried the transient outage: %+v", fs)
	}

	// And the same story must be visible through telemetry.
	for _, name := range []string{
		"faults.program_fail",
		"ftl.bad_blocks.retired",
		"ftl.faults.resteered_writes",
		"sched.retries",
	} {
		if sink.Counter(name).Value() == 0 {
			t.Errorf("telemetry counter %s never incremented", name)
		}
	}
}

// replayWorkload is a scripted, single-threaded workload: mixed operand
// writes, the full bitwise matrix, reductions and enough overwrite churn
// to trigger GC under the plan's erase-failure rate. Submission order is
// fixed, so with a fixed plan seed the whole simulation is deterministic.
func replayWorkload(t *testing.T, d *parabit.Device) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	page := func() []byte {
		p := make([]byte, d.PageSize())
		rng.Read(p)
		return p
	}
	lpn := uint64(0)
	for round := 0; round < 4; round++ {
		for _, scheme := range parabit.Schemes {
			for _, op := range parabit.Ops {
				a, b := lpn, lpn+1
				lpn += 2
				x, y := page(), page()
				var err error
				if scheme == parabit.LocationFree {
					err = d.WriteOperandGroup([]uint64{a, b}, [][]byte{x, y})
				} else {
					err = d.WriteOperandPair(a, b, x, y)
				}
				if err != nil && flash.AsFaultError(err) == nil {
					t.Fatalf("replay write: %v", err)
				}
				if _, err := d.Bitwise(op, a, b, scheme); err != nil && flash.AsFaultError(err) == nil {
					t.Fatalf("replay bitwise: %v", err)
				}
			}
		}
		// Overwrite churn on a small LPN window to force GC activity.
		for i := 0; i < 64; i++ {
			if err := d.Write(uint64(i%8), page()); err != nil && flash.AsFaultError(err) == nil {
				t.Fatalf("replay churn: %v", err)
			}
		}
	}
	d.Flush()
}

// TestChaosDeterministicReplay runs the identical scripted workload with
// the identical fault-plan seed on two fresh devices and requires the
// runs to be indistinguishable: byte-identical metrics export (counters,
// gauges, latency histograms), identical fault/recovery counters and the
// same simulated clock. This is the property that makes every chaos
// failure reproducible from its plan file.
func TestChaosDeterministicReplay(t *testing.T) {
	run := func() (string, parabit.FaultStats, int64) {
		d, err := parabit.NewDevice(parabit.WithSmallGeometry(), parabit.WithErrorModel(5), parabit.WithECC())
		if err != nil {
			t.Fatal(err)
		}
		d.EnableTelemetry(false)
		if err := d.InstallFaultPlan([]byte(chaosPlan)); err != nil {
			t.Fatal(err)
		}
		replayWorkload(t, d)
		var buf bytes.Buffer
		d.SyncTelemetryGauges()
		d.WriteMetrics(&buf)
		return buf.String(), d.FaultStats(), int64(d.Elapsed())
	}

	m1, f1, e1 := run()
	m2, f2, e2 := run()
	if f1 != f2 {
		t.Errorf("fault counters diverged between identical runs:\n  run1: %+v\n  run2: %+v", f1, f2)
	}
	if e1 != e2 {
		t.Errorf("simulated clock diverged: %d vs %d ns", e1, e2)
	}
	if m1 != m2 {
		t.Errorf("metrics export diverged between identical runs:\n--- run1 ---\n%s\n--- run2 ---\n%s", m1, m2)
	}
	if f1.Injected == 0 {
		t.Errorf("replay workload never tripped the plan: %+v", f1)
	}
}
