// Package e2e runs the paper's three case studies end to end at small
// scale: workload generator -> simulated SSD (every scheme) -> golden
// verification, including the reliability and ECC configurations. These
// are the integration tests across workload, ssd, ftl, flash and latch.
package e2e

import (
	"bytes"
	"math/rand"
	"testing"

	"parabit/internal/bitvec"
	"parabit/internal/latch"
	"parabit/internal/nvme"
	"parabit/internal/reliability"
	"parabit/internal/ssd"
	"parabit/internal/workload"
)

func newDevice(t *testing.T) *ssd.Device {
	t.Helper()
	d, err := ssd.New(ssd.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// pageChunks slices a bit vector into device pages, zero-padded.
func pageChunks(v *bitvec.Vector, ps int) [][]byte {
	raw := v.Bytes()
	n := (len(raw) + ps - 1) / ps
	out := make([][]byte, n)
	for i := range out {
		page := make([]byte, ps)
		if i*ps < len(raw) {
			copy(page, raw[i*ps:])
		}
		out[i] = page
	}
	return out
}

func TestSegmentationEndToEndAllSchemes(t *testing.T) {
	spec := workload.SegmentationSpec{NumImages: 2, Width: 64, Height: 16, Levels: 256, Colors: 4}
	data, err := workload.GenerateSegmentation(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range ssd.Schemes {
		d := newDevice(t)
		ps := d.PageSize()
		planes := [3][][]byte{}
		for c := range planes {
			planes[c] = pageChunks(data.Planes[c], ps)
		}
		goldenPages := pageChunks(data.Golden, ps)
		numPages := len(planes[0])

		for p := 0; p < numPages; p++ {
			lpns := []uint64{uint64(p * 3), uint64(p*3 + 1), uint64(p*3 + 2)}
			switch scheme {
			case ssd.SchemeLocFree:
				if _, err := d.WriteOperandLSBGroup(lpns, [][]byte{planes[0][p], planes[1][p], planes[2][p]}, 0); err != nil {
					t.Fatal(err)
				}
			case ssd.SchemePreAlloc:
				// Y,U co-located; V written separately for the combine.
				if _, err := d.WriteOperandPair(lpns[0], lpns[1], planes[0][p], planes[1][p], 0); err != nil {
					t.Fatal(err)
				}
				if _, err := d.WriteOperand(lpns[2], planes[2][p], 0); err != nil {
					t.Fatal(err)
				}
			default:
				for c := 0; c < 3; c++ {
					if _, err := d.WriteOperand(lpns[c], planes[c][p], 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			r, err := d.Reduce(latch.OpAnd, lpns, scheme, 0)
			if err != nil {
				t.Fatalf("%v page %d: %v", scheme, p, err)
			}
			if !bytes.Equal(r.Data, goldenPages[p]) {
				t.Fatalf("%v page %d: recognition differs from golden", scheme, p)
			}
		}
	}
}

func TestBitmapEndToEndWithBitcount(t *testing.T) {
	d := newDevice(t)
	ps := d.PageSize()
	spec := workload.BitmapSpec{Users: int64(ps * 8), Months: 1, DaysPerMonth: 20}
	data, err := workload.GenerateBitmap(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	lpns := make([]uint64, spec.Days())
	cols := make([][]byte, spec.Days())
	for i := range lpns {
		lpns[i] = uint64(i)
		cols[i] = data.Columns[i].Bytes()
	}
	if _, err := d.WriteOperandLSBGroup(lpns, cols, 0); err != nil {
		t.Fatal(err)
	}
	r, err := d.Reduce(latch.OpAnd, lpns, ssd.SchemeLocFree, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The bitcount is host-side work (§5.3.2): ship the result and count.
	d.ShipToHost(&r)
	if got := bitvec.FromBytes(r.Data).PopCount(); got != data.ActiveCount {
		t.Fatalf("in-flash count %d, golden %d", got, data.ActiveCount)
	}
	if r.HostDone <= r.Done {
		t.Fatal("host transfer unaccounted")
	}
}

func TestEncryptionEndToEndRoundTrip(t *testing.T) {
	d := newDevice(t)
	ps := d.PageSize()
	spec := workload.EncryptionSpec{NumImages: 4, Width: ps, Height: 1, BitsPerChannel: 8, Channels: 1}
	data, err := workload.GenerateEncryption(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	key := data.Key.Bytes()
	for i, img := range data.Images {
		ori := img.Bytes()
		oriLPN, keyLPN := uint64(i*2), uint64(i*2+1)
		// ParaBit encryption layout: original paired with the key image.
		if _, err := d.WriteOperandPair(oriLPN, keyLPN, ori, key, 0); err != nil {
			t.Fatal(err)
		}
		r, err := d.Bitwise(latch.OpXor, oriLPN, keyLPN, ssd.SchemePreAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r.Data, data.Ciphers[i].Bytes()) {
			t.Fatalf("image %d cipher wrong", i)
		}
		// Decrypt in-flash via a second pairing.
		cLPN, k2LPN := uint64(100+i*2), uint64(101+i*2)
		if _, err := d.WriteOperandPair(cLPN, k2LPN, r.Data, key, 0); err != nil {
			t.Fatal(err)
		}
		back, err := d.Bitwise(latch.OpXor, cLPN, k2LPN, ssd.SchemePreAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Data, ori) {
			t.Fatalf("image %d decrypt wrong", i)
		}
	}
}

func TestFullStackWithECCAndNoise(t *testing.T) {
	// §5.8's configuration on the functional stack: noisy baseline reads
	// corrected by ECC, ParaBit ops uncorrected. A ReAlloc operation on a
	// cycled device reads its operands through ECC (clean) and only the
	// final sense can inject errors; here the noise model is mild enough
	// (fresh blocks for the realloc target) that results stay correct.
	cfg := ssd.SmallConfig()
	cfg.ECCSectorBytes = cfg.Geometry.PageSize // one sector per small page
	d, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Array().SetCorruptor(reliability.NewModel(9))
	if err := d.Array().SetNoisyBaseline(true); err != nil {
		t.Fatal(err)
	}
	x := bytes.Repeat([]byte{0xAB}, d.PageSize())
	y := bytes.Repeat([]byte{0x14}, d.PageSize())
	if _, err := d.WriteOperand(0, x, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteOperand(1, y, 0); err != nil {
		t.Fatal(err)
	}
	r, err := d.Bitwise(latch.OpNor, 0, 1, ssd.SchemeReAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, d.PageSize())
	for i := range want {
		want[i] = ^(x[i] | y[i])
	}
	if !bytes.Equal(r.Data, want) {
		t.Fatal("realloc with ECC produced a wrong result on a fresh device")
	}
}

func TestGCUnderParaBitLoad(t *testing.T) {
	// Sustained realloc traffic churns the internal pool; GC must keep
	// the device healthy and results correct throughout.
	d := newDevice(t)
	x := bytes.Repeat([]byte{0x3C}, d.PageSize())
	y := bytes.Repeat([]byte{0x99}, d.PageSize())
	if _, err := d.WriteOperand(0, x, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteOperand(1, y, 0); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, d.PageSize())
	for i := range want {
		want[i] = x[i] ^ y[i]
	}
	const rounds = 3000
	for i := 0; i < rounds; i++ {
		r, err := d.Bitwise(latch.OpXor, 0, 1, ssd.SchemeReAlloc, 0)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("round %d: result drifted", i)
		}
		if i%128 == 0 {
			d.ReclaimInternal()
		}
	}
	if d.Stats().Reallocations != rounds {
		t.Fatalf("reallocations = %d", d.Stats().Reallocations)
	}
}

func TestScrambledFormulaEndToEnd(t *testing.T) {
	// A formula over operands stored *scrambled* (ordinary writes): the
	// reallocation path must descramble before pairing, or the in-flash
	// result would be garbage.
	d := newDevice(t)
	ps := d.PageSize()
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = bytes.Repeat([]byte{byte(0x11 * (i + 1))}, ps)
		if _, err := d.Write(uint64(i), pages[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	f := nvme.Formula{
		Terms: []nvme.Term{
			{M: nvme.Operand{LBA: 0, Length: ps}, N: nvme.Operand{LBA: 1, Length: ps}, Op: latch.OpAnd},
			{M: nvme.Operand{LBA: 2, Length: ps}, N: nvme.Operand{LBA: 3, Length: ps}, Op: latch.OpXor},
		},
		Combine: []latch.Op{latch.OpOr},
	}
	res, err := d.ExecuteFormula(f, ssd.SchemeReAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, ps)
	for i := range want {
		want[i] = (pages[0][i] & pages[1][i]) | (pages[2][i] ^ pages[3][i])
	}
	if !bytes.Equal(res.Pages[0], want) {
		t.Fatal("formula over scrambled operands wrong")
	}
}

func TestPlaneParallelWaveFunctional(t *testing.T) {
	// A full wave of co-located pairs across every plane completes in one
	// sense latency: the core parallelism claim, at functional level.
	d := newDevice(t)
	g := d.Config().Geometry
	n := g.Planes()
	x := bytes.Repeat([]byte{0xF0}, d.PageSize())
	y := bytes.Repeat([]byte{0x55}, d.PageSize())
	for i := 0; i < n; i++ {
		if _, err := d.WriteOperandPair(uint64(i*2), uint64(i*2+1), x, y, 0); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetTiming()
	var latest int64
	for i := 0; i < n; i++ {
		r, err := d.Bitwise(latch.OpAnd, uint64(i*2), uint64(i*2+1), ssd.SchemePreAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(r.Done) > latest {
			latest = int64(r.Done)
		}
	}
	if latest != int64(25*1000) { // 25µs in ns
		t.Fatalf("wave completed at %dns, want 25µs", latest)
	}
}

// TestFormulaFuzz executes randomized formulas under every scheme and
// checks each against the host-side golden evaluation.
func TestFormulaFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(2021))
	binary := []latch.Op{latch.OpAnd, latch.OpOr, latch.OpXor, latch.OpNand, latch.OpNor, latch.OpXnor}
	for trial := 0; trial < 25; trial++ {
		scheme := ssd.Schemes[trial%len(ssd.Schemes)]
		d := newDevice(t)
		ps := d.PageSize()
		terms := 1 + rng.Intn(3)
		numOperands := terms * 2
		pages := make([][]byte, numOperands)
		for i := range pages {
			pages[i] = make([]byte, ps)
			rng.Read(pages[i])
		}
		// Lay out operands per scheme.
		for i := 0; i+1 < numOperands; i += 2 {
			a, b := uint64(i), uint64(i+1)
			var err error
			switch scheme {
			case ssd.SchemePreAlloc:
				_, err = d.WriteOperandPair(a, b, pages[i], pages[i+1], 0)
			case ssd.SchemeLocFree:
				_, err = d.WriteOperandLSBGroup([]uint64{a, b}, [][]byte{pages[i], pages[i+1]}, 0)
			default:
				if _, err = d.WriteOperand(a, pages[i], 0); err == nil {
					_, err = d.WriteOperand(b, pages[i+1], 0)
				}
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		var f nvme.Formula
		for ti := 0; ti < terms; ti++ {
			f.Terms = append(f.Terms, nvme.Term{
				M:  nvme.Operand{LBA: uint64(ti * 2), Length: ps},
				N:  nvme.Operand{LBA: uint64(ti*2 + 1), Length: ps},
				Op: binary[rng.Intn(len(binary))],
			})
			if ti > 0 {
				f.Combine = append(f.Combine, binary[rng.Intn(len(binary))])
			}
		}
		res, err := d.ExecuteFormula(f, scheme, 0)
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, scheme, err)
		}
		// Golden evaluation.
		apply := func(op latch.Op, x, y []byte) []byte {
			out := make([]byte, len(x))
			for i := range out {
				var v byte
				for b := 0; b < 8; b++ {
					if op.Eval(x[i]&(1<<b) != 0, y[i]&(1<<b) != 0) {
						v |= 1 << b
					}
				}
				out[i] = v
			}
			return out
		}
		want := apply(f.Terms[0].Op, pages[0], pages[1])
		for ti := 1; ti < terms; ti++ {
			tr := apply(f.Terms[ti].Op, pages[ti*2], pages[ti*2+1])
			want = apply(f.Combine[ti-1], want, tr)
		}
		if !bytes.Equal(res.Pages[0], want) {
			t.Fatalf("trial %d (%v): formula result mismatch", trial, scheme)
		}
	}
}

// TestReadDisturbReachesParaBitResults: a block hammered with reads
// accumulates disturb exposure that the reliability model converts into
// extra errors in subsequent ParaBit results — and the FTL's read
// reclaim, when enabled, bounds it.
func TestReadDisturbReachesParaBitResults(t *testing.T) {
	cfg := ssd.SmallConfig()
	d, err := ssd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Disturb-only model: no cycling term, measurable disturb.
	m := reliability.NewModelWithBase(31, 0)
	d.Array().SetCorruptor(m)

	x := bytes.Repeat([]byte{0xAA}, d.PageSize())
	y := bytes.Repeat([]byte{0x55}, d.PageSize())
	if _, err := d.WriteOperandPair(0, 1, x, y, 0); err != nil {
		t.Fatal(err)
	}
	// Hammer the pair with ParaBit ops to build exposure; with
	// DisturbP0=7e-11 and 256-byte pages we need a lot of senses for a
	// measurable rate, so check the counter rather than waiting for
	// statistical flips.
	for i := 0; i < 1000; i++ {
		if _, err := d.Bitwise(latch.OpXor, 0, 1, ssd.SchemePreAlloc, 0); err != nil {
			t.Fatal(err)
		}
	}
	addr, _ := d.FTL().Lookup(0)
	exposure := d.Array().ReadCount(addr.PlaneAddr, addr.Block)
	if exposure < 4000 {
		t.Fatalf("block exposure = %d senses, want >= 4000 (1000 XORs x 4 SROs)", exposure)
	}
	// The disturb term is live: probability grows with that exposure.
	if m.BitErrorProbabilityWithReads(0, 1, exposure) <= 0 {
		t.Fatal("disturb exposure not reflected in error probability")
	}
}
