package e2e

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"parabit"
	"parabit/internal/flash"
	"parabit/internal/ftl"
)

// cutPlan builds a fault plan with one power-cut rule.
func cutPlan(point string, afterN int) string {
	return fmt.Sprintf(`{"seed": 7, "rules": [{"type": "power-cut", "point": %q, "after_n": %d}]}`,
		point, afterN)
}

// isPowerCut matches both surfaces of an injected cut: the journal
// boundary error and the flash-level fault a mid-program cut raises.
func isPowerCut(err error) bool {
	return errors.Is(err, parabit.ErrPowerCut) || flash.IsPowerCut(err)
}

// TestPowerFailMatrix is the crash-consistency matrix: for every
// injectable cut point, concurrent clients write fresh pages, overwrite
// their own base pages and query pre-cut operand pairs while the plan
// kills the device mid-traffic. After the remount, every acknowledged
// write must read back byte-identical, every unacknowledged fresh write
// must fail explicitly (never stale or partial data), unacknowledged
// overwrites must still show the pre-crash bytes, and the FTL must
// audit clean. Runs under -race: the acked ledger and the device are
// shared across clients.
func TestPowerFailMatrix(t *testing.T) {
	cases := []struct {
		point  string
		afterN int
	}{
		{"pre-journal", 9},
		{"post-journal", 9},
		{"mid-program", 30},
		{"pre-snapshot", 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-%d", tc.point, tc.afterN), func(t *testing.T) {
			dir := t.TempDir()
			plan := cutPlan(tc.point, tc.afterN)
			t.Logf("dir=%s plan=%s", dir, plan)
			d, err := parabit.NewDevice(parabit.WithSmallGeometry(),
				parabit.WithPersistence(dir), parabit.WithSnapshotEvery(6))
			if err != nil {
				t.Fatal(err)
			}

			// Pre-plan state, all acknowledged before the cut can fire:
			// per-client base pages plus one shared operand pair for the
			// query traffic.
			const clients = 4
			const basePerClient = 4
			type ledger struct {
				sync.Mutex
				pages map[uint64][]byte // lpn -> last ACKED content
			}
			led := &ledger{pages: map[uint64][]byte{}}
			pageFor := func(seed int64) []byte {
				p := make([]byte, d.PageSize())
				rand.New(rand.NewSource(seed)).Read(p)
				return p
			}
			for c := 0; c < clients; c++ {
				for i := 0; i < basePerClient; i++ {
					lpn := uint64(c*100 + i)
					p := pageFor(int64(lpn))
					if err := d.Write(lpn, p); err != nil {
						t.Fatal(err)
					}
					led.pages[lpn] = p
				}
			}
			qa, qb := pageFor(9001), pageFor(9002)
			if err := d.WriteOperandPair(900, 901, qa, qb); err != nil {
				t.Fatal(err)
			}
			led.pages[900], led.pages[901] = qa, qb
			wantQuery := evalPage(parabit.And, qa, qb)

			if err := d.InstallFaultPlan([]byte(plan)); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000 + c)))
					freshNext := uint64(c*100 + 50)
					for i := 0; i < 40; i++ {
						switch rng.Intn(3) {
						case 0: // fresh write to a never-used LPN
							lpn := freshNext
							freshNext++
							p := make([]byte, d.PageSize())
							rng.Read(p)
							err := d.Write(lpn, p)
							if err == nil {
								led.Lock()
								led.pages[lpn] = p
								led.Unlock()
							} else if !isPowerCut(err) {
								t.Errorf("client %d fresh write: non-cut error %v", c, err)
							}
						case 1: // overwrite one of this client's base pages
							lpn := uint64(c*100 + rng.Intn(basePerClient))
							p := make([]byte, d.PageSize())
							rng.Read(p)
							err := d.Write(lpn, p)
							if err == nil {
								led.Lock()
								led.pages[lpn] = p
								led.Unlock()
							} else if !isPowerCut(err) {
								t.Errorf("client %d overwrite: non-cut error %v", c, err)
							}
						case 2: // query traffic over the shared pre-cut pair
							r, err := d.Bitwise(parabit.And, 900, 901, parabit.PreAllocated)
							if err == nil {
								if !bytes.Equal(r.Data, wantQuery) {
									t.Errorf("client %d query: wrong bytes with nil error", c)
								}
							} else if !isPowerCut(err) {
								t.Errorf("client %d query: non-cut error %v", c, err)
							}
						}
					}
				}(c)
			}
			wg.Wait()
			d.Flush()

			fs := d.FaultStats()
			if fs.PowerCuts == 0 {
				t.Fatalf("plan never cut the power: %+v", fs)
			}
			// Crash-close: the store is dead, so Close releases the handle
			// without flushing anything the crash didn't make durable.
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}

			re, rec, err := parabit.Open(dir)
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			t.Logf("recovery: %+v", rec)
			if err := re.CheckInvariants(); err != nil {
				t.Errorf("post-recovery FTL audit: %v", err)
			}
			led.Lock()
			defer led.Unlock()
			for lpn, want := range led.pages {
				got, err := re.Read(lpn)
				if err != nil {
					t.Errorf("acked lpn %d lost after %s cut: %v", lpn, tc.point, err)
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("acked lpn %d differs after %s cut", lpn, tc.point)
				}
			}
			// Every fresh LPN that was never acknowledged must fail
			// explicitly — recovery must not invent mappings.
			for c := 0; c < clients; c++ {
				for lpn := uint64(c*100 + 50); lpn < uint64(c*100+90); lpn++ {
					if _, acked := led.pages[lpn]; acked {
						continue
					}
					if _, err := re.Read(lpn); !errors.Is(err, ftl.ErrUnmapped) {
						t.Errorf("unacked lpn %d after %s cut: %v, want ErrUnmapped", lpn, tc.point, err)
					}
				}
			}
			// The pre-cut pair still computes on the remounted device.
			r, err := re.Bitwise(parabit.And, 900, 901, parabit.PreAllocated)
			if err != nil || !bytes.Equal(r.Data, wantQuery) {
				t.Errorf("pre-cut operand pair broken after remount: %v", err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPowerFailTornTail hand-truncates the journal mid-frame — the
// bytes a real power cut tears — and requires the remount to truncate,
// not reject: every surviving record reads back exactly, the clipped
// record's write disappears into an explicit unmapped error, and
// nothing reads as garbage.
func TestPowerFailTornTail(t *testing.T) {
	dir := t.TempDir()
	d, err := parabit.NewDevice(parabit.WithSmallGeometry(), parabit.WithPersistence(dir))
	if err != nil {
		t.Fatal(err)
	}
	pages := map[uint64][]byte{}
	for lpn := uint64(0); lpn < 8; lpn++ {
		p := make([]byte, d.PageSize())
		rand.New(rand.NewSource(int64(lpn))).Read(p)
		if err := d.Write(lpn, p); err != nil {
			t.Fatal(err)
		}
		pages[lpn] = p
	}
	// Kill the device at the next journal boundary so Close behaves like
	// a crash (a graceful close would compact the journal away), then
	// tear the journal tail by hand.
	if err := d.InstallFaultPlan([]byte(cutPlan("pre-journal", 1))); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(99, make([]byte, d.PageSize())); !isPowerCut(err) {
		t.Fatalf("write after cut plan: %v, want power cut", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(filepath.Join(dir, "CURRENT"))
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal-"+strings.TrimSpace(string(cur))+".log")
	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 16 {
		t.Fatalf("journal unexpectedly small: %d bytes", len(raw))
	}
	if err := os.WriteFile(jpath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	re, rec, err := parabit.Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if rec.TornBytes == 0 {
		t.Fatalf("no torn bytes reported: %+v", rec)
	}
	if err := re.CheckInvariants(); err != nil {
		t.Errorf("FTL audit after torn-tail mount: %v", err)
	}
	for lpn, want := range pages {
		got, err := re.Read(lpn)
		if err != nil {
			// The record the truncation clipped is allowed to be gone —
			// but only as an explicit unmapped error.
			if !errors.Is(err, ftl.ErrUnmapped) {
				t.Errorf("lpn %d: %v, want data or ErrUnmapped", lpn, err)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("lpn %d reads garbage after torn-tail mount", lpn)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPowerFailDeterministicReplay runs the identical scripted workload
// against the identical cut plan twice, crashing and remounting both
// times, and requires the two runs to be indistinguishable: identical
// fault counters, byte-identical metrics exports on both sides of the
// crash, identical recovery summaries and an identical digest of every
// post-recovery page. This is what makes a power-fail failure report
// reproducible from its plan and seed.
func TestPowerFailDeterministicReplay(t *testing.T) {
	const lpns = 24
	run := func(dir string) (fs parabit.FaultStats, preMetrics string, rec parabit.Recovery, postMetrics, digest string) {
		d, err := parabit.NewDevice(parabit.WithSmallGeometry(),
			parabit.WithPersistence(dir), parabit.WithSnapshotEvery(5))
		if err != nil {
			t.Fatal(err)
		}
		d.EnableTelemetry(false)
		if err := d.InstallFaultPlan([]byte(cutPlan("post-journal", 17))); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4242))
		for i := 0; i < 60; i++ {
			p := make([]byte, d.PageSize())
			rng.Read(p)
			if err := d.Write(uint64(i%lpns), p); err != nil && !isPowerCut(err) {
				t.Fatalf("scripted write %d: %v", i, err)
			}
		}
		d.Flush()
		fs = d.FaultStats()
		if fs.PowerCuts == 0 {
			t.Fatal("scripted run never cut the power")
		}
		var buf bytes.Buffer
		d.WriteMetrics(&buf)
		preMetrics = buf.String()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}

		re, rec, err := parabit.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		re.EnableTelemetry(false)
		h := sha256.New()
		for lpn := uint64(0); lpn < lpns; lpn++ {
			got, err := re.Read(lpn)
			if err != nil {
				fmt.Fprintf(h, "%d:err:%v\n", lpn, errors.Is(err, ftl.ErrUnmapped))
				continue
			}
			fmt.Fprintf(h, "%d:", lpn)
			h.Write(got)
			fmt.Fprintln(h)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Errorf("post-recovery audit: %v", err)
		}
		buf.Reset()
		re.WriteMetrics(&buf)
		postMetrics = buf.String()
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		return fs, preMetrics, rec, postMetrics, fmt.Sprintf("%x", h.Sum(nil))
	}

	f1, m1, r1, pm1, d1 := run(t.TempDir())
	f2, m2, r2, pm2, d2 := run(t.TempDir())
	if f1 != f2 {
		t.Errorf("fault stats diverged:\n%+v\n%+v", f1, f2)
	}
	if r1 != r2 {
		t.Errorf("recovery summaries diverged:\n%+v\n%+v", r1, r2)
	}
	if d1 != d2 {
		t.Errorf("post-recovery page digests diverged: %s vs %s", d1, d2)
	}
	if m1 != m2 {
		t.Errorf("pre-crash metrics diverged (first difference at byte %d)", diffAt(m1, m2))
	}
	if pm1 != pm2 {
		t.Errorf("post-recovery metrics diverged (first difference at byte %d)", diffAt(pm1, pm2))
	}
}

// diffAt returns the index of the first differing byte, for error
// messages that would otherwise dump two full metric exports.
func diffAt(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
