package faults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ParsePlan decodes a JSON plan. Unknown fields are rejected so typos in
// hand-written plans surface immediately.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Plan{}, fmt.Errorf("faults: parse plan: %w", err)
	}
	return p, nil
}

// LoadPlan reads and decodes a JSON plan file.
func LoadPlan(path string) (Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	return ParsePlan(data)
}
