// Package faults is a deterministic, seedable structural-fault injection
// engine for the simulated flash array. Where internal/reliability models
// analog misbehaviour (bit flips that ECC corrects), this package models
// the digital failure modes real NAND management must survive: program
// and erase status failures, blocks stuck bad, planes that drop out
// transiently or die outright, and latency jitter on any primitive.
//
// Faults are scripted by a Plan — a JSON-serializable rule list — and
// executed by an Engine implementing flash.FaultInjector. Everything is
// driven by the construction seed and the (operation, location, time)
// sequence the device presents: replaying the same workload against the
// same plan reproduces the same faults, byte for byte. Nothing here reads
// the wall clock.
package faults

import (
	"fmt"
	"math/rand"
	"sync"

	"parabit/internal/flash"
	"parabit/internal/persist"
	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

// Rule types understood by Plan.Rules[].Type.
const (
	// RulePlaneTransient makes a plane reject every operation inside the
	// [FromUS, ToUS) simulated-time window with a retryable fault.
	RulePlaneTransient = "plane-transient"
	// RulePlaneDead kills a plane permanently from FromUS onward.
	RulePlaneDead = "plane-dead"
	// RuleStuckBlock makes one block fail every program and erase.
	RuleStuckBlock = "stuck-block"
	// RuleProgramFail fails each program with probability Rate.
	RuleProgramFail = "program-fail"
	// RuleEraseFail fails each erase with probability Rate.
	RuleEraseFail = "erase-fail"
	// RuleJitter stretches matching operations by a random delay up to
	// MaxJitterUS, with probability Rate.
	RuleJitter = "jitter"
	// RulePowerCut kills the whole device at a persistence boundary or
	// mid-program: the AfterN'th crossing of Point dies, and every
	// operation after it fails with flash.FaultPowerCut until the device
	// is remounted from its on-disk store.
	RulePowerCut = "power-cut"
)

// Rule is one scripted fault source. Which fields matter depends on Type;
// unused fields must be zero. Plane is a linear plane index (see
// flash.Geometry.PlaneIndex); -1 targets every plane.
type Rule struct {
	Type string `json:"type"`
	// Plane targets plane-transient/plane-dead/stuck-block rules.
	Plane int `json:"plane,omitempty"`
	// Block targets stuck-block rules.
	Block int `json:"block,omitempty"`
	// FromUS/ToUS bound window rules in simulated microseconds. ToUS 0
	// means open-ended.
	FromUS int64 `json:"from_us,omitempty"`
	ToUS   int64 `json:"to_us,omitempty"`
	// Rate is the per-operation probability for program-fail, erase-fail
	// and jitter rules.
	Rate float64 `json:"rate,omitempty"`
	// Op restricts jitter rules to one primitive: "sense", "program",
	// "erase", or "" for all three.
	Op string `json:"op,omitempty"`
	// MaxJitterUS is the jitter rule's maximum added delay.
	MaxJitterUS int64 `json:"max_jitter_us,omitempty"`
	// Point targets power-cut rules: one of persist's boundary names
	// ("pre-journal", "post-journal", "mid-program", "pre-snapshot").
	Point string `json:"point,omitempty"`
	// AfterN makes a power-cut rule fire on the N'th crossing of its
	// point (1-based); 0 means the first.
	AfterN int64 `json:"after_n,omitempty"`
}

// Plan is a complete fault script: a seed for the probabilistic rules and
// the rule list. The zero Plan injects nothing.
type Plan struct {
	Seed  int64  `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate checks every rule against the device geometry so a typo'd
// plan fails loudly at install time, not silently at run time.
func (p Plan) Validate(geo flash.Geometry) error {
	for i, r := range p.Rules {
		where := func(format string, args ...any) error {
			return fmt.Errorf("faults: rule %d (%s): %s", i, r.Type, fmt.Sprintf(format, args...))
		}
		checkPlane := func() error {
			if r.Plane != -1 && (r.Plane < 0 || r.Plane >= geo.Planes()) {
				return where("plane %d out of range [0,%d) (or -1 for all)", r.Plane, geo.Planes())
			}
			return nil
		}
		switch r.Type {
		case RulePlaneTransient:
			if err := checkPlane(); err != nil {
				return err
			}
			if r.ToUS != 0 && r.ToUS <= r.FromUS {
				return where("empty window [%d,%d)us", r.FromUS, r.ToUS)
			}
		case RulePlaneDead:
			if err := checkPlane(); err != nil {
				return err
			}
		case RuleStuckBlock:
			if err := checkPlane(); err != nil {
				return err
			}
			if r.Plane == -1 {
				return where("stuck-block needs a specific plane")
			}
			if r.Block < 0 || r.Block >= geo.BlocksPerPlane {
				return where("block %d out of range [0,%d)", r.Block, geo.BlocksPerPlane)
			}
		case RuleProgramFail, RuleEraseFail:
			if r.Rate <= 0 || r.Rate > 1 {
				return where("rate %v outside (0,1]", r.Rate)
			}
		case RuleJitter:
			if r.Rate <= 0 || r.Rate > 1 {
				return where("rate %v outside (0,1]", r.Rate)
			}
			if r.MaxJitterUS <= 0 {
				return where("max_jitter_us must be positive")
			}
			switch r.Op {
			case "", "sense", "program", "erase":
			default:
				return where("unknown op %q", r.Op)
			}
		case RulePowerCut:
			ok := false
			for _, p := range persist.Points {
				if r.Point == p {
					ok = true
					break
				}
			}
			if !ok {
				return where("unknown cut point %q (want one of %v)", r.Point, persist.Points)
			}
			if r.AfterN < 0 {
				return where("after_n must be non-negative")
			}
		default:
			return where("unknown rule type")
		}
	}
	return nil
}

// Stats counts injected faults by class. All counts are cumulative since
// engine construction.
type Stats struct {
	PlaneTransient int64 // operations rejected by a transient plane window
	PlaneDead      int64 // operations rejected by a dead plane
	ProgramFails   int64 // injected program-status failures
	EraseFails     int64 // injected erase-status failures
	StuckBlock     int64 // program/erase attempts on a stuck block
	PowerCuts      int64 // operations rejected because power is gone (incl. the cut itself)
	JitterEvents   int64 // operations stretched by jitter
	JitterTotal    sim.Duration
}

// Faults totals the failure injections (jitter excluded: those
// operations still succeed).
func (s Stats) Faults() int64 {
	return s.PlaneTransient + s.PlaneDead + s.ProgramFails + s.EraseFails + s.StuckBlock +
		s.PowerCuts
}

// window is a compiled plane-outage rule.
type window struct {
	plane    int      // -1 = all
	from, to sim.Time // to == 0 means open-ended
	kind     flash.FaultKind
}

// jitter is a compiled jitter rule.
type jitter struct {
	op    flash.FaultOp
	anyOp bool
	rate  float64
	max   sim.Duration
}

// Engine executes a Plan. It implements flash.FaultInjector and is safe
// for concurrent use; the embedded RNG draws in device-presentation
// order, which the single-threaded simulated device keeps deterministic.
type Engine struct {
	mu  sync.Mutex
	rng *rand.Rand // guarded by mu

	// Compiled plan; immutable after NewEngine.
	windows   []window
	stuck     map[[2]int]bool
	progRate  float64
	eraseRate float64
	jitters   []jitter
	cuts      []cutRule
	geo       flash.Geometry

	// Power-cut state: per-point boundary-crossing counters and the
	// latched dead flag. Once dead, every Inspect fails and every
	// CutAtBoundary answer is moot — the store checks PowerDead first.
	cutSeen map[string]int64 // guarded by mu
	dead    bool             // guarded by mu

	stats Stats // guarded by mu

	// Telemetry handles; all nil (free no-ops) until SetTelemetry runs.
	faultTrack *telemetry.Track                          // guarded by mu
	counters   [len(faultKindCounter)]*telemetry.Counter // guarded by mu
	cJitter    *telemetry.Counter                        // guarded by mu
}

// faultKindCounter names the per-kind telemetry counters, indexed by
// flash.FaultKind.
var faultKindCounter = [...]string{
	"faults.plane_transient",
	"faults.plane_dead",
	"faults.program_fail",
	"faults.erase_fail",
	"faults.stuck_block",
	"faults.power_cut",
}

// cutRule is a compiled power-cut rule: the boundary it watches and the
// 1-based crossing count it fires on.
type cutRule struct {
	point  string
	afterN int64
}

// NewEngine compiles a validated plan against the device geometry.
func NewEngine(plan Plan, geo flash.Geometry) (*Engine, error) {
	if err := plan.Validate(geo); err != nil {
		return nil, err
	}
	e := &Engine{
		rng:     rand.New(rand.NewSource(plan.Seed)),
		stuck:   make(map[[2]int]bool),
		cutSeen: make(map[string]int64),
		geo:     geo,
	}
	us := func(v int64) sim.Time { return sim.Time(sim.Duration(v) * sim.Microsecond) }
	for _, r := range plan.Rules {
		switch r.Type {
		case RulePlaneTransient:
			e.windows = append(e.windows, window{
				plane: r.Plane, from: us(r.FromUS), to: us(r.ToUS), kind: flash.FaultPlaneTransient,
			})
		case RulePlaneDead:
			e.windows = append(e.windows, window{
				plane: r.Plane, from: us(r.FromUS), kind: flash.FaultPlaneDead,
			})
		case RuleStuckBlock:
			e.stuck[[2]int{r.Plane, r.Block}] = true
		case RuleProgramFail:
			e.progRate += r.Rate
		case RuleEraseFail:
			e.eraseRate += r.Rate
		case RuleJitter:
			j := jitter{rate: r.Rate, max: sim.Duration(r.MaxJitterUS) * sim.Microsecond}
			switch r.Op {
			case "sense":
				j.op = flash.FaultSense
			case "program":
				j.op = flash.FaultProgram
			case "erase":
				j.op = flash.FaultErase
			default:
				j.anyOp = true
			}
			e.jitters = append(e.jitters, j)
		case RulePowerCut:
			n := r.AfterN
			if n == 0 {
				n = 1
			}
			e.cuts = append(e.cuts, cutRule{point: r.Point, afterN: n})
		}
	}
	return e, nil
}

// Stats returns a copy of the injection counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink: one
// counter per fault class and an instant event on the "faults" lane per
// injection, so every fault is visible in an exported trace.
func (e *Engine) SetTelemetry(s *telemetry.Sink) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := range faultKindCounter {
		e.counters[k] = s.Counter(faultKindCounter[k])
	}
	e.cJitter = s.Counter("faults.jitter_events")
	e.faultTrack = s.Trace().Track("faults", "injected")
}

// failLocked records and returns one injected failure.
func (e *Engine) failLocked(op flash.FaultOp, kind flash.FaultKind, plane flash.PlaneAddr, block int, at sim.Time) flash.FaultOutcome {
	switch kind {
	case flash.FaultPlaneTransient:
		e.stats.PlaneTransient++
	case flash.FaultPlaneDead:
		e.stats.PlaneDead++
	case flash.FaultProgramFail:
		e.stats.ProgramFails++
	case flash.FaultEraseFail:
		e.stats.EraseFails++
	case flash.FaultStuckBlock:
		e.stats.StuckBlock++
	case flash.FaultPowerCut:
		e.stats.PowerCuts++
	}
	if int(kind) < len(e.counters) {
		e.counters[kind].Add(1)
	}
	e.faultTrack.Instant(kind.String()+"/"+op.String(), at)
	return flash.FaultOutcome{Err: &flash.FaultError{Op: op, Kind: kind, Plane: plane, Block: block}}
}

// Inspect implements flash.FaultInjector. Rule precedence: plane outages
// (no RNG draw) first, then stuck blocks, then the probabilistic
// program/erase failures, then jitter.
func (e *Engine) Inspect(op flash.FaultOp, plane flash.PlaneAddr, block int, at sim.Time) flash.FaultOutcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	// A dead device fails everything; a mid-program cut rule kills it on
	// the N'th program the plan targets. Both precede every other rule
	// and draw no RNG, so they never perturb the plan's other injections.
	if e.dead {
		return e.failLocked(op, flash.FaultPowerCut, plane, block, at)
	}
	if op == flash.FaultProgram && e.crossLocked(persist.PointMidProgram) {
		e.dead = true
		return e.failLocked(op, flash.FaultPowerCut, plane, block, at)
	}
	pidx := e.geo.PlaneIndex(plane)
	for _, w := range e.windows {
		if w.plane != -1 && w.plane != pidx {
			continue
		}
		if at < w.from || (w.to != 0 && at >= w.to) {
			continue
		}
		return e.failLocked(op, w.kind, plane, block, at)
	}
	if op != flash.FaultSense && e.stuck[[2]int{pidx, block}] {
		return e.failLocked(op, flash.FaultStuckBlock, plane, block, at)
	}
	if op == flash.FaultProgram && e.progRate > 0 && e.rng.Float64() < e.progRate {
		return e.failLocked(op, flash.FaultProgramFail, plane, block, at)
	}
	if op == flash.FaultErase && e.eraseRate > 0 && e.rng.Float64() < e.eraseRate {
		return e.failLocked(op, flash.FaultEraseFail, plane, block, at)
	}
	var delay sim.Duration
	for _, j := range e.jitters {
		if !j.anyOp && j.op != op {
			continue
		}
		if e.rng.Float64() < j.rate {
			delay += sim.Duration(e.rng.Int63n(int64(j.max))) + 1
		}
	}
	if delay > 0 {
		e.stats.JitterEvents++
		e.stats.JitterTotal += delay
		e.cJitter.Add(1)
		e.faultTrack.Instant("jitter/"+op.String(), at)
	}
	return flash.FaultOutcome{Delay: delay}
}

// crossLocked counts one crossing of a persistence boundary and reports
// whether any power-cut rule fires on exactly this crossing. Counting is
// unconditional so a plan's after_n always means "the N'th crossing since
// the engine was installed", independent of other rules.
func (e *Engine) crossLocked(point string) bool {
	e.cutSeen[point]++
	n := e.cutSeen[point]
	for _, c := range e.cuts {
		if c.point == point && c.afterN == n {
			return true
		}
	}
	return false
}

// CutAtBoundary implements persist.CutInjector: the journal store asks
// before and after each durability-relevant step whether the power fails
// right there. Once a cut fires the engine stays dead — every later
// boundary reports a cut and every flash op fails with FaultPowerCut —
// until a new engine (or nil) is installed.
func (e *Engine) CutAtBoundary(point string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dead {
		return true
	}
	if !e.crossLocked(point) {
		return false
	}
	e.dead = true
	e.stats.PowerCuts++
	if int(flash.FaultPowerCut) < len(e.counters) {
		e.counters[flash.FaultPowerCut].Add(1)
	}
	return true
}

// PowerDead implements persist.CutInjector.
func (e *Engine) PowerDead() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}
