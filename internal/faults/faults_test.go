package faults

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parabit/internal/flash"
	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

func testGeo(t *testing.T) flash.Geometry {
	t.Helper()
	geo := flash.Small()
	if err := geo.Validate(); err != nil {
		t.Fatal(err)
	}
	return geo
}

func TestPlanValidate(t *testing.T) {
	geo := testGeo(t)
	bad := []Plan{
		{Rules: []Rule{{Type: "nonsense"}}},
		{Rules: []Rule{{Type: RulePlaneTransient, Plane: geo.Planes()}}},
		{Rules: []Rule{{Type: RulePlaneTransient, Plane: 0, FromUS: 10, ToUS: 5}}},
		{Rules: []Rule{{Type: RuleStuckBlock, Plane: -1, Block: 0}}},
		{Rules: []Rule{{Type: RuleStuckBlock, Plane: 0, Block: geo.BlocksPerPlane}}},
		{Rules: []Rule{{Type: RuleProgramFail, Rate: 0}}},
		{Rules: []Rule{{Type: RuleEraseFail, Rate: 1.5}}},
		{Rules: []Rule{{Type: RuleJitter, Rate: 0.5, MaxJitterUS: 0}}},
		{Rules: []Rule{{Type: RuleJitter, Rate: 0.5, MaxJitterUS: 10, Op: "reticulate"}}},
	}
	for i, p := range bad {
		if err := p.Validate(geo); err == nil {
			t.Errorf("plan %d: expected validation error", i)
		}
	}
	good := Plan{Seed: 1, Rules: []Rule{
		{Type: RulePlaneTransient, Plane: -1, FromUS: 0, ToUS: 100},
		{Type: RulePlaneDead, Plane: 2, FromUS: 500},
		{Type: RuleStuckBlock, Plane: 0, Block: 3},
		{Type: RuleProgramFail, Rate: 0.01},
		{Type: RuleEraseFail, Rate: 0.02},
		{Type: RuleJitter, Rate: 0.1, MaxJitterUS: 50, Op: "sense"},
	}}
	if err := good.Validate(geo); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

func TestPlaneWindows(t *testing.T) {
	geo := testGeo(t)
	e, err := NewEngine(Plan{Rules: []Rule{
		{Type: RulePlaneTransient, Plane: 1, FromUS: 100, ToUS: 200},
		{Type: RulePlaneDead, Plane: 2, FromUS: 300},
	}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := geo.PlaneAt(1), geo.PlaneAt(2)
	us := func(v int64) sim.Time { return sim.Time(sim.Duration(v) * sim.Microsecond) }

	if out := e.Inspect(flash.FaultSense, p1, 0, us(50)); out.Err != nil {
		t.Errorf("before window: %v", out.Err)
	}
	out := e.Inspect(flash.FaultSense, p1, 0, us(150))
	if !flash.IsTransientFault(out.Err) {
		t.Errorf("inside window: want transient fault, got %v", out.Err)
	}
	if out := e.Inspect(flash.FaultProgram, p1, 0, us(250)); out.Err != nil {
		t.Errorf("after window: %v", out.Err)
	}

	if out := e.Inspect(flash.FaultErase, p2, 0, us(100)); out.Err != nil {
		t.Errorf("before death: %v", out.Err)
	}
	out = e.Inspect(flash.FaultErase, p2, 0, us(1_000_000))
	fe := flash.AsFaultError(out.Err)
	if fe == nil || fe.Kind != flash.FaultPlaneDead {
		t.Errorf("dead plane: got %v", out.Err)
	}
	st := e.Stats()
	if st.PlaneTransient != 1 || st.PlaneDead != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStuckBlockAndRates(t *testing.T) {
	geo := testGeo(t)
	e, err := NewEngine(Plan{Seed: 42, Rules: []Rule{
		{Type: RuleStuckBlock, Plane: 0, Block: 7},
		{Type: RuleProgramFail, Rate: 0.5},
	}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	p0 := geo.PlaneAt(0)
	// Stuck block: every program and erase fails, senses still work.
	if out := e.Inspect(flash.FaultSense, p0, 7, 0); out.Err != nil {
		t.Errorf("sense on stuck block should pass: %v", out.Err)
	}
	if out := e.Inspect(flash.FaultProgram, p0, 7, 0); !flash.IsProgramFault(out.Err) {
		t.Errorf("program on stuck block: %v", out.Err)
	}
	if out := e.Inspect(flash.FaultErase, p0, 7, 0); !flash.IsEraseFault(out.Err) {
		t.Errorf("erase on stuck block: %v", out.Err)
	}
	// Rate faults: with rate 0.5, 200 programs on a healthy block must
	// see failures and successes both.
	fails := 0
	for i := 0; i < 200; i++ {
		if out := e.Inspect(flash.FaultProgram, p0, 1, 0); out.Err != nil {
			if !flash.IsProgramFault(out.Err) {
				t.Fatalf("unexpected error class: %v", out.Err)
			}
			fails++
		}
	}
	if fails == 0 || fails == 200 {
		t.Errorf("program-fail rate 0.5 produced %d/200 failures", fails)
	}
}

func TestJitterDeterminism(t *testing.T) {
	geo := testGeo(t)
	plan := Plan{Seed: 7, Rules: []Rule{
		{Type: RuleJitter, Rate: 0.3, MaxJitterUS: 40, Op: "sense"},
		{Type: RuleProgramFail, Rate: 0.1},
	}}
	run := func() ([]sim.Duration, []bool, Stats) {
		e, err := NewEngine(plan, geo)
		if err != nil {
			t.Fatal(err)
		}
		var delays []sim.Duration
		var progFail []bool
		for i := 0; i < 500; i++ {
			s := e.Inspect(flash.FaultSense, geo.PlaneAt(i%geo.Planes()), i%geo.BlocksPerPlane, sim.Time(i))
			if s.Err != nil {
				t.Fatalf("sense fault from jitter-only sense rules: %v", s.Err)
			}
			delays = append(delays, s.Delay)
			p := e.Inspect(flash.FaultProgram, geo.PlaneAt(i%geo.Planes()), i%geo.BlocksPerPlane, sim.Time(i))
			progFail = append(progFail, p.Err != nil)
		}
		return delays, progFail, e.Stats()
	}
	d1, f1, s1 := run()
	d2, f2, s2 := run()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(f1, f2) || s1 != s2 {
		t.Fatal("identical seed + call sequence produced different outcomes")
	}
	if s1.JitterEvents == 0 {
		t.Error("jitter rule at rate 0.3 never fired in 500 senses")
	}
	max := sim.Duration(40) * sim.Microsecond
	for _, d := range d1 {
		if d < 0 || d > max {
			t.Fatalf("jitter delay %v outside [0, %v]", d, max)
		}
	}
}

func TestTelemetryCounters(t *testing.T) {
	geo := testGeo(t)
	e, err := NewEngine(Plan{Rules: []Rule{
		{Type: RuleStuckBlock, Plane: 0, Block: 0},
	}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	sink := telemetry.New()
	sink.EnableTrace()
	e.SetTelemetry(sink)
	e.Inspect(flash.FaultProgram, geo.PlaneAt(0), 0, 0)
	if got := sink.Counter("faults.stuck_block").Value(); got != 1 {
		t.Errorf("faults.stuck_block = %d, want 1", got)
	}
	if sink.Trace().Len() == 0 {
		t.Error("no trace event recorded for injected fault")
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	body := `{"seed": 99, "rules": [
		{"type": "plane-transient", "plane": -1, "from_us": 0, "to_us": 500},
		{"type": "program-fail", "rate": 0.05}
	]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 || len(p.Rules) != 2 || p.Rules[1].Rate != 0.05 {
		t.Errorf("loaded plan %+v", p)
	}
	if _, err := ParsePlan([]byte(`{"seed": 1, "surprise": true}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
