// Package sched provides a concurrency-safe command scheduler fronting an
// ssd.Device.
//
// The simulated device is single-threaded by construction: every operation
// mutates FTL maps, allocator lists and plane resources, and carries an
// explicit virtual issue time. sched makes that device safe and useful for
// many goroutines with a queue-and-batch discipline:
//
//   - Submit enqueues a Command and returns a Ticket without touching the
//     device; it never blocks on simulation work.
//   - Ticket.Wait dispatches every command queued so far as one batch,
//     under the scheduler mutex, all sharing the batch's issue instant.
//     Commands in one batch therefore overlap in virtual time exactly the
//     way independent page operations overlap on real hardware: the plane,
//     channel and die resources serialize only where they genuinely
//     conflict, and the batch completes at the latest per-command finish.
//   - The issue cursor then advances to that horizon, so the next batch
//     observes the device drained — a full barrier between batches.
//
// Sequential callers (submit, wait, submit, wait …) get batches of one and
// see exactly the latencies the bare device reports. Concurrent callers
// get wider batches and a virtual makespan shorter than the sum of their
// command latencies — the paper's §5.1 parallelism argument, observable
// through Stats().Utilization.
//
// Flush dispatches without submitting (a drain barrier), and Exclusive
// runs a caller-supplied function against the raw device with the queue
// drained and the mutex held, for snapshots and maintenance that must not
// interleave with commands.
package sched

import (
	"sync"

	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/nvme"
	"parabit/internal/plan"
	"parabit/internal/sim"
	"parabit/internal/ssd"
	"parabit/internal/telemetry"
)

// Kind identifies what a Command asks the device to do.
type Kind uint8

// Command kinds. The write kinds mirror the device's operand layouts.
const (
	// KindWrite stores one page on the normal (scrambled) data path.
	KindWrite Kind = iota
	// KindWriteOperand stores one unscrambled operand page, striped.
	KindWriteOperand
	// KindWritePair co-locates two operand pages in one wordline.
	KindWritePair
	// KindWriteGroup places operand pages in aligned LSB slots of one plane.
	KindWriteGroup
	// KindWriteOnPlane places one operand page in an LSB slot of a chosen plane.
	KindWriteOnPlane
	// KindWriteTriple co-locates three operand pages in one TLC wordline.
	KindWriteTriple
	// KindWriteMWSGroup colocates operand pages in LSB slots of one block,
	// ESP-programmed — the Flash-Cosmos multi-wordline-sense layout.
	KindWriteMWSGroup
	// KindRead returns one logical page.
	KindRead
	// KindBitwise executes a two-operand in-flash operation.
	KindBitwise
	// KindBitwiseTriple executes a three-operand TLC operation.
	KindBitwiseTriple
	// KindReduce folds operand pages with an associative operation.
	KindReduce
	// KindFormula executes a parsed bitwise formula end to end.
	KindFormula
	// KindQuery plans and executes a bitmap-query expression tree.
	KindQuery
	// KindBarrier performs no device work; it completes when the batch
	// containing it issues, which makes Wait on it a drain point.
	KindBarrier

	numKinds = int(KindBarrier) + 1
)

var kindNames = [numKinds]string{
	"write", "write-operand", "write-pair", "write-group", "write-on-plane",
	"write-triple", "write-mws-group", "read", "bitwise", "bitwise-triple",
	"reduce", "formula", "query", "barrier",
}

func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Command describes one device operation. Which fields matter depends on
// Kind; unused fields are ignored. Data and Pages are copied at Submit, so
// callers may reuse their buffers immediately.
type Command struct {
	Kind Kind
	// LPN addresses single-page commands (writes, read, on-plane write).
	LPN uint64
	// LPNs addresses multi-operand commands: [first, second] for
	// KindWritePair/KindBitwise, three entries for the triple kinds, k
	// entries for KindWriteGroup/KindReduce.
	LPNs []uint64
	// Data is the payload of single-page writes.
	Data []byte
	// Pages are the payloads of multi-page writes, parallel to LPNs.
	Pages [][]byte
	// Plane selects the target plane for KindWriteOnPlane.
	Plane int
	// Op is the latch operation for KindBitwise/KindReduce.
	Op latch.Op
	// Op3 is the three-operand TLC operation for KindBitwiseTriple.
	Op3 latch.TLCOp3
	// Scheme selects the execution scheme for bitwise kinds.
	Scheme ssd.Scheme
	// ToHost additionally ships the result over the host link, filling
	// Result.HostDone (KindBitwise, KindReduce, KindQuery).
	ToHost bool
	// Formula is the command stream for KindFormula.
	Formula nvme.Formula
	// Query is the expression tree for KindQuery. Expressions are
	// immutable after construction, so they are not copied at Submit.
	Query *plan.Expr
}

// Result is the outcome of one command.
type Result struct {
	// Data is the result page (bitwise, reduce) or page content (read).
	Data []byte
	// Pages holds formula results, one per sub-operation page.
	Pages [][]byte
	// Start is the virtual instant the command issued.
	Start sim.Time
	// Done is when the command's result was ready at the controller (or
	// the program completed, for writes).
	Done sim.Time
	// HostDone is when the last result byte crossed the host link; zero
	// unless the command shipped results.
	HostDone sim.Time
	// Err is the device error, if any. Failed commands consume no
	// modeled time beyond their issue instant.
	Err error
}

// end returns the command's completion instant.
func (r Result) end() sim.Time {
	if r.HostDone > r.Done {
		return r.HostDone
	}
	return r.Done
}

// Ticket tracks a submitted command. Wait blocks until the command has
// executed and returns its Result; it may be called from any goroutine,
// any number of times.
type Ticket struct {
	s    *Scheduler
	cmd  Command
	done chan struct{}
	// res is written exactly once, under s.mu, before done closes.
	res Result
}

// Wait returns the command's result, dispatching the pending queue if the
// command has not executed yet.
func (t *Ticket) Wait() Result {
	select {
	case <-t.done:
		return t.res
	default:
	}
	t.s.mu.Lock()
	t.s.dispatchLocked()
	t.s.mu.Unlock()
	<-t.done
	return t.res
}

// QueueStats describes one command kind's queue.
type QueueStats struct {
	// Submitted counts commands accepted, Completed those executed,
	// Errors those that failed.
	Submitted, Completed, Errors int64
	// MaxDepth is the high-water mark of commands of this kind pending
	// at once.
	MaxDepth int
	// Busy is the summed per-command service time (completion minus
	// issue) — across queues it can exceed the makespan, which is what
	// overlapped execution looks like.
	Busy sim.Duration
}

// Stats is a snapshot of scheduler activity.
type Stats struct {
	// Queues indexes per-kind counters by Kind.
	Queues [numKinds]QueueStats
	// Batches counts dispatches; MaxBatch is the widest single batch.
	Batches  int64
	MaxBatch int
	// Horizon is the virtual clock after the last dispatched batch.
	Horizon sim.Time
	// Retries counts command re-executions after a transient device
	// fault; RetriesExhausted counts commands that still failed with a
	// transient fault after the last allowed attempt.
	Retries          int64
	RetriesExhausted int64
}

// RetryPolicy bounds the scheduler's automatic re-execution of commands
// that fail with a transient device fault (flash.IsTransientFault). All
// waiting happens in simulated time: each retry re-issues the command at
// the previous issue instant plus the current backoff, so a transient
// plane outage costs virtual latency, never host-visible errors — unless
// the outage outlasts every attempt, in which case the transient fault
// surfaces to the caller.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions allowed, including
	// the first. Values below 1 mean 1 (no retries).
	MaxAttempts int
	// Backoff is the simulated delay before the first retry.
	Backoff sim.Duration
	// Multiplier grows the backoff after each retry. Values below 1
	// mean 1 (constant backoff).
	Multiplier int
}

// DefaultRetryPolicy retries three times over roughly 6 ms of simulated
// time (200 µs, 1 ms, 5 ms) — long enough to ride out the short plane
// outages fault plans script, short enough not to mask a dead plane.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: 200 * sim.Microsecond, Multiplier: 5}
}

// Submitted totals accepted commands across queues.
func (s Stats) Submitted() int64 {
	var n int64
	for _, q := range s.Queues {
		n += q.Submitted
	}
	return n
}

// Completed totals executed commands across queues.
func (s Stats) Completed() int64 {
	var n int64
	for _, q := range s.Queues {
		n += q.Completed
	}
	return n
}

// BusyTime totals per-command service time across queues.
func (s Stats) BusyTime() sim.Duration {
	var d sim.Duration
	for _, q := range s.Queues {
		d += q.Busy
	}
	return d
}

// Utilization is total service time over the makespan: 1.0 means strictly
// serial execution; values above 1.0 measure how much command service
// overlapped in virtual time.
func (s Stats) Utilization() float64 {
	if s.Horizon <= 0 {
		return 0
	}
	return float64(s.BusyTime()) / float64(s.Horizon)
}

// Scheduler serializes access to an ssd.Device and batches concurrent
// commands onto shared issue instants. Safe for use from many goroutines.
type Scheduler struct {
	mu      sync.Mutex
	dev     *ssd.Device   // immutable after New
	now     sim.Time      // issue cursor for the next batch; guarded by mu
	pending []*Ticket     // guarded by mu
	depth   [numKinds]int // pending commands per kind; guarded by mu
	retry   RetryPolicy   // guarded by mu
	stats   Stats         // guarded by mu
	tele    schedTele     // guarded by mu
}

// schedTele holds the scheduler's telemetry handles; the zero value (all
// nil) is the disabled state and every call through it is a free no-op.
type schedTele struct {
	queueTracks [numKinds]*telemetry.Track
	depthGauges [numKinds]*telemetry.Gauge
	latency     [numKinds]*telemetry.Histogram
	batchTrack  *telemetry.Track
	retryTrack  *telemetry.Track
	cBatches    *telemetry.Counter
	cRetries    *telemetry.Counter
	cExhausted  *telemetry.Counter
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink. Every
// command kind gets a queue lane (spans run from batch issue to command
// completion), a pending-depth gauge and a service-latency histogram;
// batches get their own lane. All numKinds lanes register eagerly so an
// exported trace shows one lane per queue even for kinds that saw no
// traffic.
func (s *Scheduler) SetTelemetry(sink *telemetry.Sink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr := sink.Trace()
	for k := 0; k < numKinds; k++ {
		s.tele.queueTracks[k] = tr.Track("sched", "queue-"+kindNames[k])
		s.tele.depthGauges[k] = sink.Gauge("sched.queue." + kindNames[k] + ".depth")
		s.tele.latency[k] = sink.Histogram("sched.latency." + kindNames[k])
	}
	s.tele.batchTrack = tr.Track("sched", "batches")
	s.tele.retryTrack = tr.Track("sched", "retries")
	s.tele.cBatches = sink.Counter("sched.batches")
	s.tele.cRetries = sink.Counter("sched.retries")
	s.tele.cExhausted = sink.Counter("sched.retries_exhausted")
}

// New wraps a device. The scheduler assumes sole ownership: bypassing it
// with direct device calls while commands are in flight races.
func New(dev *ssd.Device) *Scheduler {
	return &Scheduler{dev: dev, retry: DefaultRetryPolicy()}
}

// SetRetryPolicy replaces the transient-fault retry policy.
func (s *Scheduler) SetRetryPolicy(p RetryPolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retry = p
}

// Submit enqueues a command. It never blocks on device work; the command
// executes when any ticket of the current queue is waited on, or at the
// next Flush/Exclusive. Payload buffers are copied.
func (s *Scheduler) Submit(cmd Command) *Ticket {
	cmd.Data = copyPage(cmd.Data)
	if cmd.Pages != nil {
		pages := make([][]byte, len(cmd.Pages))
		for i, p := range cmd.Pages {
			pages[i] = copyPage(p)
		}
		cmd.Pages = pages
	}
	if cmd.LPNs != nil {
		cmd.LPNs = append([]uint64(nil), cmd.LPNs...)
	}
	t := &Ticket{s: s, cmd: cmd, done: make(chan struct{})}
	s.mu.Lock()
	s.pending = append(s.pending, t)
	k := cmd.Kind
	s.stats.Queues[k].Submitted++
	s.depth[k]++
	if s.depth[k] > s.stats.Queues[k].MaxDepth {
		s.stats.Queues[k].MaxDepth = s.depth[k]
	}
	s.tele.depthGauges[k].Set(int64(s.depth[k]))
	s.mu.Unlock()
	return t
}

func copyPage(p []byte) []byte {
	if p == nil {
		return nil
	}
	return append([]byte(nil), p...)
}

// dispatchLocked executes every pending command as one batch. All commands
// issue at the shared batch instant; the cursor then advances to the
// latest completion, so the following batch sees the device drained.
func (s *Scheduler) dispatchLocked() {
	if len(s.pending) == 0 {
		return
	}
	batch := s.pending
	s.pending = nil
	issue := s.now
	horizon := issue
	s.stats.Batches++
	if len(batch) > s.stats.MaxBatch {
		s.stats.MaxBatch = len(batch)
	}
	for _, t := range batch {
		t.res = s.execRetryLocked(&t.cmd, issue)
		k := t.cmd.Kind
		s.depth[k]--
		s.stats.Queues[k].Completed++
		if t.res.Err != nil {
			s.stats.Queues[k].Errors++
		}
		if end := t.res.end(); end > horizon {
			horizon = end
		}
		s.stats.Queues[k].Busy += t.res.end().Sub(issue)
		s.tele.depthGauges[k].Set(int64(s.depth[k]))
		s.tele.latency[k].Observe(t.res.end().Sub(issue))
		s.tele.queueTracks[k].Span(kindNames[k], issue, t.res.end())
		close(t.done)
	}
	s.now = horizon
	s.stats.Horizon = horizon
	s.tele.cBatches.Add(1)
	s.tele.batchTrack.Span("batch", issue, horizon)
}

// execRetryLocked runs one command, re-issuing it after a simulated backoff
// while it keeps failing with a transient fault and the retry policy has
// attempts left. Permanent faults (a dead plane, an exhausted device)
// surface immediately: only flash.IsTransientFault errors retry. The
// returned result's Start is the first issue instant, so service-time
// accounting includes the backoff the command sat out.
func (s *Scheduler) execRetryLocked(c *Command, issue sim.Time) Result {
	r := s.execLocked(c, issue)
	backoff := s.retry.Backoff
	at := issue
	for attempt := 1; attempt < s.retry.MaxAttempts && flash.IsTransientFault(r.Err); attempt++ {
		retryAt := at.Add(backoff)
		s.stats.Retries++
		s.tele.cRetries.Add(1)
		s.tele.retryTrack.Span("backoff-"+kindNames[c.Kind], at, retryAt)
		r = s.execLocked(c, retryAt)
		at = retryAt
		if s.retry.Multiplier > 1 {
			backoff *= sim.Duration(s.retry.Multiplier)
		}
	}
	if flash.IsTransientFault(r.Err) {
		s.stats.RetriesExhausted++
		s.tele.cExhausted.Add(1)
		s.tele.retryTrack.Instant("exhausted-"+kindNames[c.Kind], at)
	}
	r.Start = issue
	return r
}

// execLocked runs one command against the device at the given issue time.
func (s *Scheduler) execLocked(c *Command, issue sim.Time) Result {
	r := Result{Start: issue, Done: issue}
	switch c.Kind {
	case KindBarrier:
		// No device work: completes the moment its batch issues.
	case KindWrite:
		r.Done, r.Err = s.dev.Write(c.LPN, c.Data, issue)
	case KindWriteOperand:
		r.Done, r.Err = s.dev.WriteOperand(c.LPN, c.Data, issue)
	case KindWritePair:
		r.Done, r.Err = s.dev.WriteOperandPair(c.LPNs[0], c.LPNs[1], c.Pages[0], c.Pages[1], issue)
	case KindWriteGroup:
		r.Done, r.Err = s.dev.WriteOperandLSBGroup(c.LPNs, c.Pages, issue)
	case KindWriteOnPlane:
		r.Done, r.Err = s.dev.WriteOperandOnPlane(c.Plane, c.LPN, c.Data, issue)
	case KindWriteTriple:
		r.Done, r.Err = s.dev.WriteOperandTriple(
			[3]uint64{c.LPNs[0], c.LPNs[1], c.LPNs[2]},
			[3][]byte{c.Pages[0], c.Pages[1], c.Pages[2]}, issue)
	case KindWriteMWSGroup:
		r.Done, r.Err = s.dev.WriteOperandMWSGroup(c.LPNs, c.Pages, issue)
	case KindRead:
		if c.ToHost {
			r.Data, r.HostDone, r.Err = s.dev.ReadToHost(c.LPN, issue)
			r.Done = r.HostDone
		} else {
			r.Data, r.Done, r.Err = s.dev.Read(c.LPN, issue)
		}
	case KindBitwise:
		br, err := s.dev.Bitwise(c.Op, c.LPNs[0], c.LPNs[1], c.Scheme, issue)
		if err == nil && c.ToHost {
			s.dev.ShipToHost(&br)
		}
		r.Data, r.Err = br.Data, err
		if err == nil {
			r.Done, r.HostDone = br.Done, br.HostDone
		}
	case KindBitwiseTriple:
		br, err := s.dev.BitwiseTriple(c.Op3, [3]uint64{c.LPNs[0], c.LPNs[1], c.LPNs[2]}, issue)
		r.Data, r.Err = br.Data, err
		if err == nil {
			r.Done, r.HostDone = br.Done, br.HostDone
		}
	case KindReduce:
		br, err := s.dev.Reduce(c.Op, c.LPNs, c.Scheme, issue)
		if err == nil && c.ToHost {
			s.dev.ShipToHost(&br)
		}
		r.Data, r.Err = br.Data, err
		if err == nil {
			r.Done, r.HostDone = br.Done, br.HostDone
		}
	case KindFormula:
		fr, err := s.dev.ExecuteFormula(c.Formula, c.Scheme, issue)
		r.Pages, r.Err = fr.Pages, err
		if err == nil {
			r.Done, r.HostDone = fr.Done, fr.HostDone
		}
	case KindQuery:
		br, err := s.dev.ExecuteQuery(c.Query, c.Scheme, issue)
		if err == nil && c.ToHost {
			s.dev.ShipToHost(&br)
		}
		r.Data, r.Err = br.Data, err
		if err == nil {
			r.Done, r.HostDone = br.Done, br.HostDone
		}
	default:
		panic("sched: unknown command kind")
	}
	return r
}

// Flush dispatches every pending command and returns the virtual clock
// after they complete — a drain barrier for the whole queue.
func (s *Scheduler) Flush() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dispatchLocked()
	return s.now
}

// Now returns the current issue cursor without dispatching.
func (s *Scheduler) Now() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Pending returns the number of submitted commands not yet dispatched —
// the queue depth a load balancer steers around.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats returns a snapshot of scheduler counters. It does not dispatch;
// pending commands are reflected in Submitted but not Completed.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close drains every pending command and then closes the underlying
// device, flushing its persistence journal (a no-op for in-memory
// devices). The scheduler must not be used after Close.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dispatchLocked()
	return s.dev.Close()
}

// Exclusive drains the queue and then runs fn with the mutex held,
// handing it the raw device. Use it for snapshots and maintenance
// (statistics, trims, pool reclaim) that must not interleave with
// commands. fn must not call back into the scheduler.
func (s *Scheduler) Exclusive(fn func(dev *ssd.Device, now sim.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dispatchLocked()
	fn(s.dev, s.now)
}
