package sched

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"parabit/internal/ftl"
	"parabit/internal/latch"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

func newSched(t *testing.T) (*Scheduler, *ssd.Device) {
	t.Helper()
	dev, err := ssd.New(ssd.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev), dev
}

func pageOf(dev *ssd.Device, seed byte) []byte {
	b := make([]byte, dev.PageSize())
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

// TestSequentialMatchesBareDevice pins the scheduler's sequential
// semantics to the raw device: one command per batch must observe exactly
// the virtual times and data the unwrapped device reports.
func TestSequentialMatchesBareDevice(t *testing.T) {
	s, _ := newSched(t)
	bare, err := ssd.New(ssd.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, n := pageOf(bare, 3), pageOf(bare, 5)

	wantDone, err := bare.WriteOperandPair(0, 1, m, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Submit(Command{Kind: KindWritePair, LPNs: []uint64{0, 1}, Pages: [][]byte{m, n}}).Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Done != wantDone {
		t.Fatalf("scheduled pair write done at %v, bare device at %v", r.Done, wantDone)
	}

	bw, err := bare.Bitwise(latch.OpXor, 0, 1, ssd.SchemePreAlloc, wantDone)
	if err != nil {
		t.Fatal(err)
	}
	r = s.Submit(Command{Kind: KindBitwise, LPNs: []uint64{0, 1}, Op: latch.OpXor, Scheme: ssd.SchemePreAlloc}).Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Done != bw.Done {
		t.Fatalf("scheduled XOR done at %v, bare device at %v", r.Done, bw.Done)
	}
	if !bytes.Equal(r.Data, bw.Data) {
		t.Fatal("scheduled XOR data differs from bare device")
	}
}

// TestBatchSharesIssueInstant proves the parallelism contract: commands
// queued together issue at one instant, so independent per-plane
// operations overlap instead of serializing, and the batch horizon is the
// max — not the sum — of their latencies.
func TestBatchSharesIssueInstant(t *testing.T) {
	s, dev := newSched(t)
	// Pairs stripe round-robin, so the first four land on distinct planes.
	const pairs = 4
	for i := 0; i < pairs; i++ {
		r := s.Submit(Command{
			Kind:  KindWritePair,
			LPNs:  []uint64{uint64(2 * i), uint64(2*i + 1)},
			Pages: [][]byte{pageOf(dev, byte(i)), pageOf(dev, byte(i+9))},
		}).Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	// Measure a lone AND's service time.
	lone := s.Submit(Command{Kind: KindBitwise, LPNs: []uint64{0, 1}, Op: latch.OpAnd, Scheme: ssd.SchemePreAlloc}).Wait()
	if lone.Err != nil {
		t.Fatal(lone.Err)
	}
	service := lone.Done.Sub(lone.Start)

	// Queue one AND per plane, then wait: one batch.
	tickets := make([]*Ticket, pairs)
	for i := range tickets {
		tickets[i] = s.Submit(Command{
			Kind: KindBitwise, LPNs: []uint64{uint64(2 * i), uint64(2*i + 1)},
			Op: latch.OpAnd, Scheme: ssd.SchemePreAlloc,
		})
	}
	first := tickets[0].Wait()
	for i, tk := range tickets {
		r := tk.Wait()
		if r.Err != nil {
			t.Fatalf("batched AND %d: %v", i, r.Err)
		}
		if r.Start != first.Start {
			t.Fatalf("batched AND %d issued at %v, batch issued at %v", i, r.Start, first.Start)
		}
		if got := r.Done.Sub(r.Start); got != service {
			t.Fatalf("batched AND %d took %v, lone AND took %v: planes did not overlap", i, got, service)
		}
	}
	st := s.Stats()
	if st.MaxBatch < pairs {
		t.Fatalf("max batch %d, want >= %d", st.MaxBatch, pairs)
	}
	if u := st.Utilization(); u <= 0 {
		t.Fatalf("utilization %v after overlapped batch", u)
	}
}

// TestFlushDrains checks Flush executes queued commands without a Wait.
func TestFlushDrains(t *testing.T) {
	s, dev := newSched(t)
	tk := s.Submit(Command{Kind: KindWriteOperand, LPN: 7, Data: pageOf(dev, 1)})
	if done := s.Stats().Completed(); done != 0 {
		t.Fatalf("command ran before any Wait/Flush: %d completed", done)
	}
	horizon := s.Flush()
	if horizon <= 0 {
		t.Fatal("flush did not advance the clock past a program")
	}
	st := s.Stats()
	if st.Completed() != 1 || st.Submitted() != 1 {
		t.Fatalf("after flush: %d/%d completed", st.Completed(), st.Submitted())
	}
	if r := tk.Wait(); r.Err != nil || r.Done != horizon {
		t.Fatalf("flushed ticket: err=%v done=%v horizon=%v", r.Err, r.Done, horizon)
	}
	if s.Now() != horizon {
		t.Fatalf("cursor %v, want %v", s.Now(), horizon)
	}
}

// TestBarrierCompletesWithBatch checks the no-op barrier kind: waiting on
// it drains everything queued before it.
func TestBarrierCompletesWithBatch(t *testing.T) {
	s, dev := newSched(t)
	w := s.Submit(Command{Kind: KindWrite, LPN: 3, Data: pageOf(dev, 2)})
	b := s.Submit(Command{Kind: KindBarrier})
	if r := b.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	select {
	case <-w.done:
	default:
		t.Fatal("barrier wait did not drain the preceding write")
	}
}

// TestErrorsAreIsolated checks a failing command reports through its own
// ticket without wedging the queue or the clock.
func TestErrorsAreIsolated(t *testing.T) {
	s, dev := newSched(t)
	bad := s.Submit(Command{Kind: KindRead, LPN: 40}) // never written
	good := s.Submit(Command{Kind: KindWriteOperand, LPN: 4, Data: pageOf(dev, 4)})
	if r := bad.Wait(); !errors.Is(r.Err, ftl.ErrUnmapped) {
		t.Fatalf("unmapped read: %v", r.Err)
	}
	if r := good.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	st := s.Stats()
	if st.Queues[KindRead].Errors != 1 {
		t.Fatalf("read queue errors = %d, want 1", st.Queues[KindRead].Errors)
	}
	if st.Queues[KindWriteOperand].Errors != 0 {
		t.Fatalf("write queue errors = %d, want 0", st.Queues[KindWriteOperand].Errors)
	}
}

// TestQueueStats checks per-kind submission accounting and depth
// high-water marks.
func TestQueueStats(t *testing.T) {
	s, dev := newSched(t)
	for i := 0; i < 3; i++ {
		s.Submit(Command{Kind: KindWriteOperand, LPN: uint64(i), Data: pageOf(dev, byte(i))})
	}
	st := s.Stats()
	if st.Queues[KindWriteOperand].Submitted != 3 {
		t.Fatalf("submitted = %d", st.Queues[KindWriteOperand].Submitted)
	}
	if st.Queues[KindWriteOperand].MaxDepth != 3 {
		t.Fatalf("max depth = %d, want 3", st.Queues[KindWriteOperand].MaxDepth)
	}
	s.Flush()
	st = s.Stats()
	if st.Queues[KindWriteOperand].Completed != 3 {
		t.Fatalf("completed = %d", st.Queues[KindWriteOperand].Completed)
	}
	if st.Batches != 1 || st.MaxBatch != 3 {
		t.Fatalf("batches=%d maxBatch=%d, want 1 and 3", st.Batches, st.MaxBatch)
	}
	if st.Queues[KindWriteOperand].Busy <= 0 {
		t.Fatal("no service time recorded")
	}
}

// TestExclusiveSeesDrainedDevice checks Exclusive's barrier property.
func TestExclusiveSeesDrainedDevice(t *testing.T) {
	s, dev := newSched(t)
	s.Submit(Command{Kind: KindWriteOperand, LPN: 9, Data: pageOf(dev, 9)})
	s.Exclusive(func(d *ssd.Device, now sim.Time) {
		if _, ok := d.FTL().Lookup(9); !ok {
			t.Error("exclusive ran before the queued write")
		}
		if now <= 0 {
			t.Error("clock did not advance past the queued write")
		}
	})
}

// TestStressConcurrentMixed hammers one device from many goroutines with
// mixed reads, writes, bitwise ops and reductions. Run under -race. It
// checks every command's data (private pages round-trip, shared-operand
// results match the byte-wise golden op) and that the FTL bookkeeping
// holds afterward.
func TestStressConcurrentMixed(t *testing.T) {
	s, dev := newSched(t)
	const (
		workers = 12
		ops     = 50
		shared  = 8 // read-only operand pages, written up front
	)
	sharedData := make([][]byte, shared)
	for i := range sharedData {
		sharedData[i] = pageOf(dev, byte(0xC0+i))
		r := s.Submit(Command{Kind: KindWriteOperand, LPN: uint64(i), Data: sharedData[i]}).Wait()
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	goldenOp := func(op latch.Op, a, b []byte) []byte {
		out := make([]byte, len(a))
		for i := range out {
			switch op {
			case latch.OpAnd:
				out[i] = a[i] & b[i]
			case latch.OpOr:
				out[i] = a[i] | b[i]
			case latch.OpXor:
				out[i] = a[i] ^ b[i]
			}
		}
		return out
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*ops)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			// Each worker owns a private LPN range well above the shared
			// operands.
			base := uint64(1000 + 100*w)
			last := make(map[uint64][]byte)
			ops3 := []latch.Op{latch.OpAnd, latch.OpOr, latch.OpXor}
			for i := 0; i < ops; i++ {
				switch rng.Intn(5) {
				case 0, 1: // write a private page
					lpn := base + uint64(rng.Intn(20))
					data := pageOf(dev, byte(rng.Intn(256)))
					r := s.Submit(Command{Kind: KindWriteOperand, LPN: lpn, Data: data}).Wait()
					if r.Err != nil {
						errs <- fmt.Errorf("worker %d write: %w", w, r.Err)
						return
					}
					last[lpn] = data
				case 2: // read a private page back
					for lpn, want := range last {
						r := s.Submit(Command{Kind: KindRead, LPN: lpn}).Wait()
						if r.Err != nil {
							errs <- fmt.Errorf("worker %d read: %w", w, r.Err)
							return
						}
						if !bytes.Equal(r.Data, want) {
							errs <- fmt.Errorf("worker %d lpn %d: read back wrong data", w, lpn)
							return
						}
						break
					}
				case 3: // bitwise over two shared operands
					op := ops3[rng.Intn(len(ops3))]
					a, b := rng.Intn(shared), rng.Intn(shared)
					r := s.Submit(Command{
						Kind: KindBitwise, LPNs: []uint64{uint64(a), uint64(b)},
						Op: op, Scheme: ssd.SchemeReAlloc,
					}).Wait()
					if r.Err != nil {
						errs <- fmt.Errorf("worker %d bitwise: %w", w, r.Err)
						return
					}
					if !bytes.Equal(r.Data, goldenOp(op, sharedData[a], sharedData[b])) {
						errs <- fmt.Errorf("worker %d bitwise %v(%d,%d): wrong result", w, op, a, b)
						return
					}
				case 4: // reduce three shared operands
					op := ops3[rng.Intn(len(ops3))]
					a, b, c := rng.Intn(shared), rng.Intn(shared), rng.Intn(shared)
					r := s.Submit(Command{
						Kind: KindReduce, LPNs: []uint64{uint64(a), uint64(b), uint64(c)},
						Op: op, Scheme: ssd.SchemeReAlloc,
					}).Wait()
					if r.Err != nil {
						errs <- fmt.Errorf("worker %d reduce: %w", w, r.Err)
						return
					}
					want := goldenOp(op, goldenOp(op, sharedData[a], sharedData[b]), sharedData[c])
					if !bytes.Equal(r.Data, want) {
						errs <- fmt.Errorf("worker %d reduce %v: wrong result", w, op)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	s.Flush()
	st := s.Stats()
	if st.Completed() != st.Submitted() {
		t.Fatalf("completed %d of %d submitted", st.Completed(), st.Submitted())
	}
	var totalErrs int64
	for _, q := range st.Queues {
		totalErrs += q.Errors
	}
	if totalErrs != 0 {
		t.Fatalf("%d commands errored", totalErrs)
	}
	s.Exclusive(func(d *ssd.Device, _ sim.Time) {
		if err := d.FTL().CheckInvariants(); err != nil {
			t.Errorf("FTL invariants violated after stress: %v", err)
		}
	})
}

// TestSubmitCopiesBuffers checks callers can reuse payload buffers after
// Submit returns.
func TestSubmitCopiesBuffers(t *testing.T) {
	s, dev := newSched(t)
	data := pageOf(dev, 6)
	want := append([]byte(nil), data...)
	tk := s.Submit(Command{Kind: KindWriteOperand, LPN: 11, Data: data})
	for i := range data {
		data[i] = 0xFF // clobber before dispatch
	}
	if r := tk.Wait(); r.Err != nil {
		t.Fatal(r.Err)
	}
	r := s.Submit(Command{Kind: KindRead, LPN: 11}).Wait()
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Data, want) {
		t.Fatal("scheduler did not copy the payload at Submit")
	}
}
