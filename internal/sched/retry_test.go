package sched

import (
	"testing"

	"parabit/internal/faults"
	"parabit/internal/flash"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

// installPlan arms a fault plan directly on the device's array, the way
// the facade does via the scheduler's exclusive section.
func installPlan(t *testing.T, dev *ssd.Device, plan faults.Plan) *faults.Engine {
	t.Helper()
	eng, err := faults.NewEngine(plan, dev.Array().Geometry())
	if err != nil {
		t.Fatal(err)
	}
	dev.Array().SetFaultInjector(eng)
	return eng
}

// TestRetryRidesOutTransientOutage proves the scheduler absorbs a plane
// outage shorter than its backoff budget: the command retries in
// simulated time and succeeds, with no error surfacing to the caller.
func TestRetryRidesOutTransientOutage(t *testing.T) {
	s, dev := newSched(t)
	// All planes out for the first 150 µs; default policy's first retry
	// lands at 200 µs, past the window.
	installPlan(t, dev, faults.Plan{Rules: []faults.Rule{
		{Type: faults.RulePlaneTransient, Plane: -1, FromUS: 0, ToUS: 150},
	}})
	r := s.Submit(Command{Kind: KindWrite, LPN: 0, Data: pageOf(dev, 9)}).Wait()
	if r.Err != nil {
		t.Fatalf("write during transient outage not retried: %v", r.Err)
	}
	if r.Done <= sim.Time(150*sim.Microsecond) {
		t.Fatalf("retried write reports completion %v inside the outage window", r.Done)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Error("no retries counted")
	}
	if st.RetriesExhausted != 0 {
		t.Errorf("RetriesExhausted = %d for a recoverable outage", st.RetriesExhausted)
	}
	got := s.Submit(Command{Kind: KindRead, LPN: 0}).Wait()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	want := pageOf(dev, 9)
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("byte %d: %02x, want %02x", i, got.Data[i], want[i])
		}
	}
}

// TestRetryExhaustsOnLongOutage proves a transient outage longer than the
// whole backoff schedule surfaces as a clean transient fault.
func TestRetryExhaustsOnLongOutage(t *testing.T) {
	s, dev := newSched(t)
	installPlan(t, dev, faults.Plan{Rules: []faults.Rule{
		{Type: faults.RulePlaneTransient, Plane: -1, FromUS: 0, ToUS: 1_000_000},
	}})
	r := s.Submit(Command{Kind: KindWrite, LPN: 0, Data: pageOf(dev, 1)}).Wait()
	if !flash.IsTransientFault(r.Err) {
		t.Fatalf("err = %v, want transient fault after exhausted retries", r.Err)
	}
	st := s.Stats()
	if want := int64(DefaultRetryPolicy().MaxAttempts - 1); st.Retries != want {
		t.Errorf("Retries = %d, want %d", st.Retries, want)
	}
	if st.RetriesExhausted != 1 {
		t.Errorf("RetriesExhausted = %d, want 1", st.RetriesExhausted)
	}
}

// TestPermanentFaultDoesNotRetry proves dead-plane errors surface at
// once: retrying cannot help, and the retry counters stay at zero.
func TestPermanentFaultDoesNotRetry(t *testing.T) {
	s, dev := newSched(t)
	installPlan(t, dev, faults.Plan{Rules: []faults.Rule{
		{Type: faults.RulePlaneDead, Plane: -1},
	}})
	r := s.Submit(Command{Kind: KindWrite, LPN: 0, Data: pageOf(dev, 1)}).Wait()
	fe := flash.AsFaultError(r.Err)
	if fe == nil || fe.Kind != flash.FaultPlaneDead {
		t.Fatalf("err = %v, want dead-plane fault", r.Err)
	}
	if st := s.Stats(); st.Retries != 0 || st.RetriesExhausted != 0 {
		t.Errorf("dead plane consumed retries: %+v", st)
	}
}

// TestRetryDisabled proves MaxAttempts 1 (or less) turns the feature off.
func TestRetryDisabled(t *testing.T) {
	s, dev := newSched(t)
	s.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	installPlan(t, dev, faults.Plan{Rules: []faults.Rule{
		{Type: faults.RulePlaneTransient, Plane: -1, FromUS: 0, ToUS: 150},
	}})
	r := s.Submit(Command{Kind: KindWrite, LPN: 0, Data: pageOf(dev, 1)}).Wait()
	if !flash.IsTransientFault(r.Err) {
		t.Fatalf("err = %v, want unretried transient fault", r.Err)
	}
	if st := s.Stats(); st.Retries != 0 {
		t.Errorf("Retries = %d with retries disabled", st.Retries)
	}
}
