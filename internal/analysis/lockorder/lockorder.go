// Package lockorder verifies lock acquisition ordering inside one
// package.
//
// Every sync.Mutex / sync.RWMutex struct field forms a lock class
// (Type.field); package-level mutex variables form their own classes.
// The analyzer walks each function tracking which classes are held —
// through Lock/RLock/Unlock/RUnlock, deferred unlocks, and the *Locked
// helper-suffix convention (a function named fooLocked is analyzed with
// its receiver's mutex classes held, since that is the contract its name
// declares) — and builds the package's lock-acquisition graph: an edge
// A -> B means some call path acquires B while holding A. Calls to other
// functions of the same package contribute their transitive acquisition
// sets, so an edge through a helper chain is found without any
// annotation.
//
// Reported, at the acquiring position:
//
//   - re-acquiring the same tracked mutex instance a function already
//     holds (certain self-deadlock);
//
//   - edges that participate in a cycle of the acquisition graph
//     (potential deadlock between concurrent callers taking the locks
//     in different orders), including one-class cycles where two
//     instances of a class are taken while one is held;
//
//   - edges that contradict a declared order pragma. A pragma is a
//     comment anywhere in the package of the form
//
//     //parabit:lockorder Cluster.mu < Shard.mu
//
//     declaring that Cluster.mu precedes Shard.mu: acquiring Cluster.mu
//     while holding Shard.mu is then an inversion even before any code
//     closes the cycle. Chains (A < B < C) and multiple pragmas compose
//     transitively.
//
// Function literals are analyzed as their own functions with nothing
// held: closures usually escape the defining critical section (deferred
// releases, goroutine bodies), so inheriting held locks would fabricate
// edges. Test files are exempt. Suppress a deliberate ordering with
// `//lint:ignore lockorder reason`.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"parabit/internal/analysis"
	"parabit/internal/analysis/lockutil"
)

// Analyzer is the lockorder analysis.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the package's inter-procedural lock-acquisition graph and report " +
		"cycles (potential deadlocks), same-instance re-acquisition, and " +
		"violations of //parabit:lockorder order pragmas",
	Run: run,
}

// class identifies one lock class: a (struct type, field) pair, or a
// package-level mutex variable.
type class struct {
	owner *types.TypeName // nil for bare variables
	name  string
}

func (c class) String() string {
	if c.owner == nil {
		return c.name
	}
	return c.owner.Name() + "." + c.name
}

// edge is one observed hold->acquire pair.
type edge struct{ from, to class }

// site records where an edge was first observed.
type site struct {
	pos     token.Pos
	holding class
}

type checker struct {
	pass  *analysis.Pass
	funcs map[*types.Func]*ast.FuncDecl
	// acq is the transitive lock-acquisition set per package function.
	acq map[*types.Func]map[class]bool
	// edges maps observed hold->acquire pairs to their first site.
	edges map[edge]site
	// order is the declared precedence relation: order[a][b] means a is
	// declared to precede b.
	order map[class]map[class]bool
	// classLabels resolves pragma names back to classes.
	classLabels map[string]class
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:        pass,
		funcs:       make(map[*types.Func]*ast.FuncDecl),
		acq:         make(map[*types.Func]map[class]bool),
		edges:       make(map[edge]site),
		order:       make(map[class]map[class]bool),
		classLabels: make(map[string]class),
	}
	c.index()
	if len(c.funcs) == 0 {
		return nil
	}
	c.computeAcquires()
	for fn, fd := range c.funcs {
		if pass.IsTestFile(fd.Pos()) {
			continue
		}
		c.walkFunc(fn, fd)
	}
	c.parsePragmas()
	c.report()
	return nil
}

// index collects the package's function declarations.
func (c *checker) index() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.funcs[fn] = fd
			}
		}
	}
}

// classOf resolves a mutex expression (x.mu or a bare identifier) to its
// lock class.
func (c *checker) classOf(mutexExpr ast.Expr) (class, bool) {
	base, name, ok := lockutil.MutexField(mutexExpr)
	if !ok {
		return class{}, false
	}
	if base == nil {
		id, _ := ast.Unparen(mutexExpr).(*ast.Ident)
		if id == nil {
			return class{}, false
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			return class{}, false
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == c.pass.Pkg.Scope() {
			return class{name: v.Name()}, true
		}
		// Function-local mutexes cannot participate in cross-function
		// ordering; skip them.
		return class{}, false
	}
	named := lockutil.OwnerNamed(c.pass.TypesInfo.TypeOf(base))
	if named == nil {
		return class{}, false
	}
	return class{owner: named.Obj(), name: name}, true
}

// instanceOf gives a best-effort identity for the locked instance, for
// same-instance re-acquisition detection.
func (c *checker) instanceOf(mutexExpr ast.Expr, pos token.Pos) string {
	if canon, ok := lockutil.Canon(c.pass.TypesInfo, mutexExpr); ok {
		return fmt.Sprintf("%p.%s", canon.Root, canon.Path)
	}
	return fmt.Sprintf("pos%d", pos)
}

// computeAcquires fixpoints the transitive acquisition sets over the
// package-local call graph.
func (c *checker) computeAcquires() {
	direct := make(map[*types.Func]map[class]bool)
	callees := make(map[*types.Func]map[*types.Func]bool)
	for fn, fd := range c.funcs {
		d := make(map[class]bool)
		cs := make(map[*types.Func]bool)
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// Closures execute outside the defining context; their
				// acquisitions are not the enclosing function's.
				return false
			case *ast.CallExpr:
				if op, mutexExpr := lockutil.ClassifyLockCall(c.pass.TypesInfo, n); op == lockutil.OpLock || op == lockutil.OpRLock {
					if cls, ok := c.classOf(mutexExpr); ok {
						d[cls] = true
					}
					return true
				}
				if callee := c.calleeOf(n); callee != nil {
					cs[callee] = true
				}
			}
			return true
		}
		ast.Inspect(fd.Body, walk)
		direct[fn] = d
		callees[fn] = cs
	}
	for fn, d := range direct {
		c.acq[fn] = make(map[class]bool, len(d))
		for cls := range d {
			c.acq[fn][cls] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range c.funcs {
			for callee := range callees[fn] {
				for cls := range c.acq[callee] {
					if !c.acq[fn][cls] {
						c.acq[fn][cls] = true
						changed = true
					}
				}
			}
		}
	}
}

// calleeOf resolves a call to a function declared in this package.
func (c *checker) calleeOf(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg {
		return nil
	}
	if _, ok := c.funcs[fn]; !ok {
		return nil
	}
	return fn
}

// held tracks the classes (and instances) a path currently holds.
type held map[class]map[string]bool

func (h held) clone() held {
	out := make(held, len(h))
	for cls, insts := range h {
		m := make(map[string]bool, len(insts))
		for i := range insts {
			m[i] = true
		}
		out[cls] = m
	}
	return out
}

// walkFunc runs the edge pass over one function.
func (c *checker) walkFunc(fn *types.Func, fd *ast.FuncDecl) {
	h := make(held)
	if lockutil.IsLockedName(fn.Name()) {
		// Only the receiver's classes: a *Locked helper frequently takes
		// the very object it is about to lock as a parameter.
		c.assume(h, fd.Recv)
	}
	c.walkBody(fd.Body, h)
}

// assume marks every mutex field class of the receiver's / parameters'
// struct types as held — the *Locked entry contract.
func (c *checker) assume(h held, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		named := lockutil.OwnerNamed(c.pass.TypesInfo.TypeOf(field.Type))
		if named == nil {
			continue
		}
		for _, mu := range lockutil.MutexFields(named) {
			cls := class{owner: named.Obj(), name: mu}
			if h[cls] == nil {
				h[cls] = make(map[string]bool)
			}
			h[cls]["entry"] = true
		}
	}
}

// walkBody walks statements in order; like the guardedby tracker it
// approximates branches by analyzing each arm from a copy of the
// current state and merging survivors (intersection of held sets).
func (c *checker) walkBody(body *ast.BlockStmt, h held) {
	if body == nil {
		return
	}
	c.walkStmts(body.List, h)
}

func (c *checker) walkStmts(list []ast.Stmt, h held) bool {
	for _, s := range list {
		if c.walkStmt(s, h) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, h held) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return c.walkStmts(s.List, h)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.walkExpr(r, h)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, h)
	case *ast.DeferStmt:
		if op, _ := lockutil.ClassifyLockCall(c.pass.TypesInfo, s.Call); op == lockutil.OpUnlock || op == lockutil.OpRUnlock {
			return false // held to function end
		}
		c.walkCall(s.Call, h.clone())
	case *ast.GoStmt:
		// Runs concurrently: no hold ordering with this path. The body of
		// a literal is still analyzed (fresh) via walkExpr below.
		for _, a := range s.Call.Args {
			c.walkExpr(a, h)
		}
		c.walkExpr(s.Call.Fun, h)
	case *ast.ExprStmt:
		c.walkExpr(s.X, h)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.walkExpr(e, h)
		}
		for _, e := range s.Lhs {
			c.walkExpr(e, h)
		}
	case *ast.IncDecStmt:
		c.walkExpr(s.X, h)
	case *ast.SendStmt:
		c.walkExpr(s.Chan, h)
		c.walkExpr(s.Value, h)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.walkExpr(v, h)
					}
				}
			}
		}
	case *ast.IfStmt:
		c.walkStmt(s.Init, h)
		c.walkExpr(s.Cond, h)
		then := h.clone()
		thenTerm := c.walkStmts(s.Body.List, then)
		if s.Else != nil {
			els := h.clone()
			elseTerm := c.walkStmt(s.Else, els)
			switch {
			case thenTerm && !elseTerm:
				replace(h, els)
			case elseTerm && !thenTerm:
				replace(h, then)
			case !thenTerm && !elseTerm:
				replace(h, intersect(then, els))
			}
			return thenTerm && elseTerm
		}
		if !thenTerm {
			replace(h, intersect(h, then))
		}
	case *ast.ForStmt:
		c.walkStmt(s.Init, h)
		c.walkExpr(s.Cond, h)
		body := h.clone()
		c.walkStmts(s.Body.List, body)
		c.walkStmt(s.Post, body)
		replace(h, intersect(h, body))
	case *ast.RangeStmt:
		c.walkExpr(s.X, h)
		body := h.clone()
		c.walkStmts(s.Body.List, body)
		replace(h, intersect(h, body))
	case *ast.SwitchStmt:
		c.walkStmt(s.Init, h)
		c.walkExpr(s.Tag, h)
		c.walkClauses(s.Body.List, h)
	case *ast.TypeSwitchStmt:
		c.walkStmt(s.Init, h)
		c.walkStmt(s.Assign, h)
		c.walkClauses(s.Body.List, h)
	case *ast.SelectStmt:
		c.walkClauses(s.Body.List, h)
	}
	return false
}

func (c *checker) walkClauses(list []ast.Stmt, h held) {
	var results []held
	hasDefault := false
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.walkExpr(e, h)
			}
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			c.walkStmt(cl.Comm, h)
			body = cl.Body
		}
		branch := h.clone()
		if !c.walkStmts(body, branch) {
			results = append(results, branch)
		}
	}
	if !hasDefault {
		results = append(results, h.clone())
	}
	if len(results) == 0 {
		return
	}
	acc := results[0]
	for _, r := range results[1:] {
		acc = intersect(acc, r)
	}
	replace(h, acc)
}

func replace(dst, src held) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func intersect(a, b held) held {
	out := make(held)
	for cls, ia := range a {
		ib, ok := b[cls]
		if !ok {
			continue
		}
		m := make(map[string]bool)
		for i := range ia {
			if ib[i] {
				m[i] = true
			}
		}
		if len(m) == 0 {
			// Held on both paths but through different instances: keep the
			// class held under a merged identity.
			m["merged"] = true
		}
		out[cls] = m
	}
	return out
}

func (c *checker) walkExpr(e ast.Expr, h held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkBody(n.Body, make(held))
			return false
		case *ast.CallExpr:
			c.walkCall(n, h)
			return false
		}
		return true
	})
}

func (c *checker) walkCall(call *ast.CallExpr, h held) {
	// Operands first (they evaluate before the call).
	c.walkExpr(call.Fun, h)
	for _, a := range call.Args {
		c.walkExpr(a, h)
	}
	if op, mutexExpr := lockutil.ClassifyLockCall(c.pass.TypesInfo, call); op != lockutil.OpNone {
		c.lockOp(op, mutexExpr, call.Pos(), h)
		return
	}
	callee := c.calleeOf(call)
	if callee == nil {
		return
	}
	for cls := range c.acq[callee] {
		c.acquireClass(cls, "call:"+callee.Name(), call.Pos(), h, false)
	}
}

// lockOp applies a direct lock call to the held set.
func (c *checker) lockOp(op lockutil.Acquire, mutexExpr ast.Expr, pos token.Pos, h held) {
	cls, ok := c.classOf(mutexExpr)
	if !ok {
		return
	}
	inst := c.instanceOf(mutexExpr, pos)
	switch op {
	case lockutil.OpLock, lockutil.OpRLock:
		if h[cls] != nil && h[cls][inst] {
			c.reportf(pos, "re-acquiring %s, which this path already holds: certain self-deadlock", cls)
			return
		}
		c.acquireClass(cls, inst, pos, h, true)
	case lockutil.OpUnlock, lockutil.OpRUnlock:
		if insts := h[cls]; insts != nil {
			if insts[inst] {
				delete(insts, inst)
			} else if len(insts) == 1 {
				for i := range insts {
					delete(insts, i)
				}
			}
			if len(insts) == 0 {
				delete(h, cls)
			}
		}
	}
}

// acquireClass records hold->acquire edges for one acquisition and, when
// track is set, marks the class held.
func (c *checker) acquireClass(cls class, inst string, pos token.Pos, h held, track bool) {
	for heldCls := range h {
		e := edge{from: heldCls, to: cls}
		if _, ok := c.edges[e]; !ok {
			c.edges[e] = site{pos: pos, holding: heldCls}
		}
	}
	if track {
		if h[cls] == nil {
			h[cls] = make(map[string]bool)
		}
		h[cls][inst] = true
	}
}

// parsePragmas reads //parabit:lockorder chains from every file.
func (c *checker) parsePragmas() {
	for e := range c.edges {
		c.classLabels[e.from.String()] = e.from
		c.classLabels[e.to.String()] = e.to
	}
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text, ok := strings.CutPrefix(cm.Text, "//parabit:lockorder")
				if !ok {
					continue
				}
				parts := strings.Split(text, "<")
				if len(parts) < 2 {
					c.reportf(cm.Pos(), "malformed lockorder pragma %q: want \"A < B [< C ...]\"", strings.TrimSpace(text))
					continue
				}
				chain := make([]class, 0, len(parts))
				bad := false
				for _, p := range parts {
					label := strings.TrimSpace(p)
					cls, ok := c.lookupLabel(label)
					if !ok {
						c.reportf(cm.Pos(), "lockorder pragma names unknown lock class %q", label)
						bad = true
						break
					}
					chain = append(chain, cls)
				}
				if bad {
					continue
				}
				for i := 0; i < len(chain); i++ {
					for j := i + 1; j < len(chain); j++ {
						if c.order[chain[i]] == nil {
							c.order[chain[i]] = make(map[class]bool)
						}
						c.order[chain[i]][chain[j]] = true
					}
				}
			}
		}
	}
	// Transitive closure of the declared relation.
	for changed := true; changed; {
		changed = false
		for a, succ := range c.order {
			for b := range succ {
				for d := range c.order[b] {
					if !c.order[a][d] {
						if c.order[a] == nil {
							c.order[a] = make(map[class]bool)
						}
						c.order[a][d] = true
						changed = true
					}
				}
			}
		}
	}
}

// lookupLabel resolves a pragma label ("Type.field" or a package-level
// variable name) against the package's declared types, not just the
// observed edges, so pragmas may name classes no current code path
// orders yet.
func (c *checker) lookupLabel(label string) (class, bool) {
	if cls, ok := c.classLabels[label]; ok {
		return cls, true
	}
	if i := strings.IndexByte(label, '.'); i >= 0 {
		obj := c.pass.Pkg.Scope().Lookup(label[:i])
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return class{}, false
		}
		named := lockutil.OwnerNamed(tn.Type())
		if named == nil {
			return class{}, false
		}
		for _, mu := range lockutil.MutexFields(named) {
			if mu == label[i+1:] {
				return class{owner: named.Obj(), name: mu}, true
			}
		}
		return class{}, false
	}
	if v, ok := c.pass.Pkg.Scope().Lookup(label).(*types.Var); ok && lockutil.IsMutexType(v.Type()) {
		return class{name: v.Name()}, true
	}
	return class{}, false
}

// report emits pragma violations and cycle edges.
func (c *checker) report() {
	type finding struct {
		pos token.Pos
		msg string
	}
	var out []finding
	for e, s := range c.edges {
		if c.order[e.to][e.from] {
			out = append(out, finding{s.pos, fmt.Sprintf(
				"acquiring %s while holding %s inverts the declared lock order (%s < %s)",
				e.to, e.from, e.to, e.from)})
			continue
		}
		if e.from == e.to {
			out = append(out, finding{s.pos, fmt.Sprintf(
				"acquiring %s while another %s is already held; two instances of one class "+
					"taken without a fixed order can deadlock", e.to, e.to)})
			continue
		}
		if path := c.pathBetween(e.to, e.from); path != nil {
			cycle := make([]string, 0, len(path)+1)
			cycle = append(cycle, e.from.String())
			for _, cls := range path {
				cycle = append(cycle, cls.String())
			}
			out = append(out, finding{s.pos, fmt.Sprintf(
				"acquiring %s while holding %s closes a lock-order cycle: %s",
				e.to, e.from, strings.Join(cycle, " -> "))})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	for _, f := range out {
		c.reportf(f.pos, "%s", f.msg)
	}
}

// pathBetween returns the classes along an observed-edge path from a to
// b (inclusive of both), or nil when none exists.
func (c *checker) pathBetween(a, b class) []class {
	prev := map[class]class{}
	queue := []class{a}
	seen := map[class]bool{a: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			var path []class
			for at := b; ; at = prev[at] {
				path = append([]class{at}, path...)
				if at == a {
					return path
				}
			}
		}
		// Deterministic expansion order.
		var next []class
		for e := range c.edges {
			if e.from == cur && !seen[e.to] {
				next = append(next, e.to)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i].String() < next[j].String() })
		for _, n := range next {
			seen[n] = true
			prev[n] = cur
			queue = append(queue, n)
		}
	}
	return nil
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.pass.IsTestFile(pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}
