// Package orderbad holds every shape lockorder reports: the classic
// two-mutex AB/BA deadlock cycle, the same cycle closed through a
// helper function, re-acquisition of a held mutex, two instances of one
// class without a fixed order, a declared-order inversion, and
// malformed pragmas.
package orderbad

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquiring B\.mu while holding A\.mu closes a lock-order cycle: A\.mu -> B\.mu -> A\.mu`
	b.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `acquiring A\.mu while holding B\.mu closes a lock-order cycle: B\.mu -> A\.mu -> B\.mu`
	a.mu.Unlock()
}

func Reacquire(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `re-acquiring A\.mu, which this path already holds: certain self-deadlock`
	a.mu.Unlock()
	a.mu.Unlock()
}

type Shard struct{ mu sync.Mutex }

func Transfer(src, dst *Shard) {
	src.mu.Lock()
	defer src.mu.Unlock()
	dst.mu.Lock() // want `acquiring Shard\.mu while another Shard\.mu is already held; two instances of one class taken without a fixed order can deadlock`
	dst.mu.Unlock()
}

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

//parabit:lockorder C.mu < D.mu

func Inverted(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock() // want `acquiring C\.mu while holding D\.mu inverts the declared lock order \(C\.mu < D\.mu\)`
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

// EF closes its half of the cycle through the helper: lockF's
// acquisitions count at the call site.
func EF(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lockF(f) // want `acquiring F\.mu while holding E\.mu closes a lock-order cycle: E\.mu -> F\.mu -> E\.mu`
}

func FE(e *E, f *F) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e.mu.Lock() // want `acquiring E\.mu while holding F\.mu closes a lock-order cycle: F\.mu -> E\.mu -> F\.mu`
	e.mu.Unlock()
}

type G struct{ mu sync.Mutex }

func lockG(g *G) {
	g.mu.Lock()
	g.mu.Unlock()
}

// Nested calls a helper that re-locks the class it already holds.
func Nested(g *G) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lockG(g) // want `acquiring G\.mu while another G\.mu is already held`
}

//parabit:lockorder nonsense // want `malformed lockorder pragma`

//parabit:lockorder Nope.mu < C.mu // want `lockorder pragma names unknown lock class "Nope\.mu"`
