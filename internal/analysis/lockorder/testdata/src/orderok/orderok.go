// Package orderok exercises the legal shapes lockorder must accept: a
// consistent Cluster-before-Shard order (declared by pragma and obeyed),
// the *Locked entry contract, sequential (non-nested) acquisition,
// per-iteration locking under a read lock, and closures that escape the
// defining critical section.
package orderok

import "sync"

type Cluster struct{ mu sync.RWMutex }

type Shard struct{ mu sync.Mutex }

//parabit:lockorder Cluster.mu < Shard.mu

func Consistent(c *Cluster, s *Shard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// rebalanceLocked is entered with Cluster.mu held (the suffix
// contract); taking Shard.mu inside follows the declared order.
func (c *Cluster) rebalanceLocked(s *Shard) {
	s.mu.Lock()
	s.mu.Unlock()
}

func Rebalance(c *Cluster, s *Shard) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rebalanceLocked(s)
}

func Sequential(c *Cluster, s *Shard) {
	c.mu.Lock()
	c.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// Each locks one shard at a time under the cluster read lock: a
// Cluster.mu -> Shard.mu edge, never Shard -> Shard.
func Each(c *Cluster, shards []*Shard) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range shards {
		s.mu.Lock()
		s.mu.Unlock()
	}
}

// Handoff returns a closure that runs after the critical section
// closes; its acquisition is not nested inside the caller's hold.
func Handoff(c *Cluster) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		c.mu.Lock()
		c.mu.Unlock()
	}
}
