package lockorder_test

import (
	"strings"
	"testing"

	"parabit/internal/analysis/analysistest"
	"parabit/internal/analysis/lockorder"
)

func TestOrderingViolationsFlagged(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "orderbad")
}

func TestConsistentOrderClean(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "orderok")
}

// TestTwoMutexCyclePinned asserts the acceptance-criterion shape
// directly: the classic AB/BA two-mutex deadlock draws a cycle
// diagnostic naming both classes.
func TestTwoMutexCyclePinned(t *testing.T) {
	diags := analysistest.Diagnostics(t, lockorder.Analyzer, "orderbad")
	for _, d := range diags {
		if strings.Contains(d.Message, "closes a lock-order cycle: A.mu -> B.mu -> A.mu") {
			return
		}
	}
	t.Fatalf("two-mutex cycle not flagged among %d diagnostics", len(diags))
}
