// Package guardedby checks `// guarded by <mutex>` field annotations.
//
// A struct field annotated with a comment of the form
//
//	columns map[string][]uint64 // guarded by mu
//
// may only be read while the named sibling mutex is held (Lock or
// RLock) and only be written while it is write-held (Lock). The guard
// may also live on another type of the same package —
//
//	size int // guarded by Cluster.mu
//
// — for directory-entry structs whose instances are owned by a parent's
// lock. The analyzer tracks Lock/RLock/Unlock/RUnlock and deferred
// unlocks through each function body, branch by branch, and reports:
//
//   - reads or writes of an annotated field with no guard held — in
//     particular the access-after-Unlock shape (snapshotting a field
//     after the critical section that loaded it already closed);
//   - writes while the guard is only read-locked (RLock);
//   - calls to *Locked-suffix helpers (the convention for functions
//     that require their receiver's lock already held) without the lock.
//
// Functions whose name ends in Locked are assumed to run with the guard
// mutexes of their receiver (and of any annotated-struct parameters)
// write-held; that is the contract their name declares, and their call
// sites are checked against it. Test files are exempt. Suppress a
// deliberate unguarded access with `//lint:ignore guardedby reason`.
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"parabit/internal/analysis"
	"parabit/internal/analysis/lockutil"
)

// Analyzer is the guardedby analysis.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "check `// guarded by mu` field annotations: annotated fields are only " +
		"accessed with the named mutex held, writes need the write lock, and " +
		"*Locked helpers are only called with the lock held",
	Run: run,
}

var guardRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// guard is one field's resolved annotation.
type guard struct {
	// owner is the struct type carrying the mutex; for the sibling form
	// it is the annotated field's own struct.
	owner *types.Named
	// mutex is the guarding mutex field's name on owner.
	mutex string
	// sibling records whether the annotation named a bare sibling field
	// (instance-tracked) rather than a Type.field pair (type-tracked).
	sibling bool
}

func (g guard) String() string { return g.owner.Obj().Name() + "." + g.mutex }

// lockLevel orders lock modes: unheld < read-held < write-held.
type lockLevel int

const (
	unheld lockLevel = iota
	readHeld
	writeHeld
)

// stateKey identifies one tracked mutex instance: the canonical base
// expression it hangs off plus the mutex field name.
type stateKey struct {
	base  lockutil.CanonKey
	mutex string
}

// lockState is the tracked condition of one mutex instance.
type lockState struct {
	level lockLevel
	// owner is the named struct type the mutex field belongs to (nil for
	// bare mutex variables); it powers the type-based fallback lookup.
	owner *types.Named
	// released is where the mutex last dropped to unheld, for the
	// post-Unlock diagnostic.
	released token.Pos
}

// state maps tracked mutexes to their condition. Keys absent mean unheld
// with no release history.
type state map[stateKey]*lockState

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// merge joins two states after a branch: a mutex is only held at the
// join if both paths held it, at the weaker of the two levels.
func merge(a, b state) state {
	out := make(state, len(a))
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			vb = &lockState{level: unheld, owner: va.owner}
		}
		c := *va
		if vb.level < c.level {
			c.level = vb.level
			c.released = vb.released
		}
		if !c.released.IsValid() {
			c.released = vb.released
		}
		out[k] = &c
	}
	for k, vb := range b {
		if _, ok := a[k]; ok {
			continue
		}
		c := *vb
		c.level = unheld
		out[k] = &c
	}
	return out
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	c.collect()
	if len(c.guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// guards maps annotated field objects to their resolved guard.
	guards map[*types.Var]guard
	// guardSet maps a struct type to the guard mutexes its annotations
	// reference — mutex field name to the owning struct type — the locks
	// a *Locked helper of that type is assumed (and required) to hold.
	// A type with qualified annotations (entry structs whose guard is a
	// parent type's lock) maps to the parent, so its helpers inherit the
	// parent-lock contract.
	guardSet map[*types.Named]map[string]*types.Named
}

// collect parses every struct declaration's field annotations.
func (c *checker) collect() {
	c.guards = make(map[*types.Var]guard)
	c.guardSet = make(map[*types.Named]map[string]*types.Named)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj, ok := c.pass.TypesInfo.Defs[ts.Name]
			if !ok || obj == nil {
				return true
			}
			named := lockutil.OwnerNamed(obj.Type())
			if named == nil {
				return true
			}
			for _, field := range st.Fields.List {
				spec := annotationOf(field)
				if spec == "" {
					continue
				}
				g, err := c.resolve(named, spec)
				if err != nil {
					c.pass.Reportf(field.Pos(), "bad guarded-by annotation %q: %v", spec, err)
					continue
				}
				for _, name := range field.Names {
					if fv, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
						c.guards[fv] = g
					}
				}
			}
			return true
		})
	}
}

// annotationOf extracts the guard spec from a field's doc or trailing
// line comment.
func annotationOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// resolve binds an annotation spec ("mu" or "Type.mu") to its owner type
// and mutex field, validating both exist.
func (c *checker) resolve(host *types.Named, spec string) (guard, error) {
	owner, mutex, sibling := host, spec, true
	if i := indexDot(spec); i >= 0 {
		tn, obj := spec[:i], c.pass.Pkg.Scope().Lookup(spec[:i])
		if obj == nil {
			return guard{}, fmt.Errorf("no type %s in package %s", tn, c.pass.Pkg.Name())
		}
		owner = lockutil.OwnerNamed(obj.Type())
		if owner == nil {
			return guard{}, fmt.Errorf("%s is not a struct type", tn)
		}
		mutex, sibling = spec[i+1:], false
	}
	if !hasMutexField(owner, mutex) {
		return guard{}, fmt.Errorf("%s has no sync.Mutex/RWMutex field %q", owner.Obj().Name(), mutex)
	}
	for _, n := range []*types.Named{host, owner} {
		set := c.guardSet[n]
		if set == nil {
			set = make(map[string]*types.Named)
			c.guardSet[n] = set
		}
		set[mutex] = owner
	}
	return guard{owner: owner, mutex: mutex, sibling: sibling}, nil
}

func indexDot(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

func hasMutexField(named *types.Named, name string) bool {
	for _, f := range lockutil.MutexFields(named) {
		if f == name {
			return true
		}
	}
	return false
}

// checkFunc analyzes one function declaration.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	st := make(state)
	if lockutil.IsLockedName(fd.Name.Name) {
		c.assumeHeld(st, fd.Recv)
		c.assumeHeld(st, fd.Type.Params)
	}
	c.block(fd.Body.List, st)
}

// assumeHeld marks the guard mutexes of every named-struct field entry
// (receiver or parameter) as write-held — the *Locked contract.
func (c *checker) assumeHeld(st state, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := c.pass.TypesInfo.TypeOf(field.Type)
		named := lockutil.OwnerNamed(t)
		if named == nil {
			continue
		}
		set := c.guardSet[named]
		if len(set) == 0 {
			continue
		}
		for _, name := range field.Names {
			obj := c.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			for mu, owner := range set {
				key := stateKey{base: lockutil.CanonKey{Root: obj}, mutex: mu}
				st[key] = &lockState{level: writeHeld, owner: owner}
			}
		}
	}
}

// block runs the statements in order, returning true when the block
// unconditionally terminates.
func (c *checker) block(list []ast.Stmt, st state) bool {
	for _, s := range list {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

// stmt updates st through one statement; the result reports whether the
// statement unconditionally leaves the block.
func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return c.block(s.List, st)
	case *ast.ExprStmt:
		c.expr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.expr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			c.writeTarget(lhs, st)
		}
	case *ast.IncDecStmt:
		c.writeTarget(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// function; any other deferred call is analyzed in the current
		// lock context without changing it.
		if op, _ := lockutil.ClassifyLockCall(c.pass.TypesInfo, s.Call); op == lockutil.OpUnlock || op == lockutil.OpRUnlock {
			return false
		}
		c.call(s.Call, st.clone(), false)
	case *ast.GoStmt:
		// The goroutine body runs later; no lock held here is known to be
		// held there.
		c.call(s.Call, make(state), true)
	case *ast.SendStmt:
		c.expr(s.Chan, st)
		c.expr(s.Value, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.IfStmt:
		c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		then := st.clone()
		thenTerm := c.block(s.Body.List, then)
		var els state
		elseTerm := false
		if s.Else != nil {
			els = st.clone()
			elseTerm = c.stmt(s.Else, els)
		}
		c.join(st, then, thenTerm, els, elseTerm, s.Else != nil)
		return thenTerm && s.Else != nil && elseTerm
	case *ast.ForStmt:
		c.stmt(s.Init, st)
		c.expr(s.Cond, st)
		body := st.clone()
		c.block(s.Body.List, body)
		c.stmt(s.Post, body)
		replace(st, merge(st, body))
	case *ast.RangeStmt:
		c.expr(s.X, st)
		body := st.clone()
		c.block(s.Body.List, body)
		replace(st, merge(st, body))
	case *ast.SwitchStmt:
		c.stmt(s.Init, st)
		c.expr(s.Tag, st)
		c.caseClauses(s.Body.List, st)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, st)
		c.stmt(s.Assign, st)
		c.caseClauses(s.Body.List, st)
	case *ast.SelectStmt:
		c.caseClauses(s.Body.List, st)
	}
	return false
}

// join folds branch outcomes back into st after an if statement.
func (c *checker) join(st, then state, thenTerm bool, els state, elseTerm, hasElse bool) {
	switch {
	case !hasElse:
		if !thenTerm {
			replace(st, merge(st, then))
		}
	case thenTerm && !elseTerm:
		replace(st, els)
	case elseTerm && !thenTerm:
		replace(st, then)
	case !thenTerm && !elseTerm:
		replace(st, merge(then, els))
	}
}

// caseClauses analyzes each case body from the pre-switch state and
// merges the survivors, including the fall-past path when no case has to
// run (no default clause).
func (c *checker) caseClauses(list []ast.Stmt, st state) {
	results := []state{}
	hasDefault := false
	for _, cl := range list {
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e, st)
			}
			if cl.List == nil {
				hasDefault = true
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			c.stmt(cl.Comm, st)
			body = cl.Body
		}
		branch := st.clone()
		if !c.block(body, branch) {
			results = append(results, branch)
		}
	}
	if !hasDefault {
		results = append(results, st.clone())
	}
	if len(results) == 0 {
		return
	}
	acc := results[0]
	for _, r := range results[1:] {
		acc = merge(acc, r)
	}
	replace(st, acc)
}

func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// expr walks an expression in read context.
func (c *checker) expr(e ast.Expr, st state) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		c.call(e, st, false)
	case *ast.SelectorExpr:
		c.expr(e.X, st)
		c.access(e, st, false)
	case *ast.FuncLit:
		// A closure may run later, but in this codebase literals are
		// overwhelmingly executed in place (sort callbacks, Exclusive
		// bodies); analyze with the lock context of the definition point.
		c.block(e.Body.List, st.clone())
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking a guarded field's address lets it escape the critical
			// section; require the write lock at the escape point.
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				c.expr(sel.X, st)
				c.access(sel, st, true)
				return
			}
		}
		c.expr(e.X, st)
	case *ast.BinaryExpr:
		c.expr(e.X, st)
		c.expr(e.Y, st)
	case *ast.ParenExpr:
		c.expr(e.X, st)
	case *ast.StarExpr:
		c.expr(e.X, st)
	case *ast.IndexExpr:
		c.expr(e.X, st)
		c.expr(e.Index, st)
	case *ast.IndexListExpr:
		c.expr(e.X, st)
		for _, i := range e.Indices {
			c.expr(i, st)
		}
	case *ast.SliceExpr:
		c.expr(e.X, st)
		c.expr(e.Low, st)
		c.expr(e.High, st)
		c.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		c.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kv.Value, st)
				continue
			}
			c.expr(el, st)
		}
	case *ast.KeyValueExpr:
		c.expr(e.Value, st)
	}
}

// writeTarget records a write access through an assignment target.
func (c *checker) writeTarget(e ast.Expr, st state) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		c.expr(e.X, st)
		c.access(e, st, true)
	case *ast.IndexExpr:
		// m[k] = v mutates the container the selector names.
		if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
			c.expr(sel.X, st)
			c.access(sel, st, true)
		} else {
			c.expr(e.X, st)
		}
		c.expr(e.Index, st)
	case *ast.StarExpr:
		c.expr(e.X, st)
	case *ast.Ident:
		// Local rebind; nothing guarded.
	default:
		c.expr(e, st)
	}
}

// call classifies one call: a lock operation mutates st; a *Locked
// callee has its lock contract checked; everything else just walks
// operands. fresh marks go-statement calls, whose *Locked contract can
// never be satisfied by the spawning goroutine's locks.
func (c *checker) call(call *ast.CallExpr, st state, fresh bool) {
	if op, mutexExpr := lockutil.ClassifyLockCall(c.pass.TypesInfo, call); op != lockutil.OpNone {
		c.lockOp(op, mutexExpr, call.Pos(), st)
		return
	}
	// delete(m, k) mutates its map argument.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			c.writeTarget(call.Args[0], st)
			c.expr(call.Args[1], st)
			return
		}
	}
	c.expr(call.Fun, st)
	for _, a := range call.Args {
		c.expr(a, st)
	}
	c.checkLockedCallee(call, st, fresh)
}

// lockOp applies one Lock/RLock/Unlock/RUnlock to the state.
func (c *checker) lockOp(op lockutil.Acquire, mutexExpr ast.Expr, pos token.Pos, st state) {
	base, name, ok := lockutil.MutexField(mutexExpr)
	if !ok {
		return
	}
	var key stateKey
	var owner *types.Named
	if base == nil {
		// Bare mutex variable.
		canon, ok := lockutil.Canon(c.pass.TypesInfo, mutexExpr)
		if !ok {
			return
		}
		key = stateKey{base: canon, mutex: ""}
	} else {
		c.expr(base, st)
		owner = lockutil.OwnerNamed(c.pass.TypesInfo.TypeOf(base))
		canon, ok := lockutil.Canon(c.pass.TypesInfo, base)
		if !ok {
			// Untrackable instance (indexed, call result): fall back to a
			// synthetic per-position key so the type-based lookup still
			// sees the hold.
			canon = lockutil.CanonKey{Path: fmt.Sprintf("pos%d", pos)}
		}
		key = stateKey{base: canon, mutex: name}
	}
	ls := st[key]
	if ls == nil {
		ls = &lockState{owner: owner}
		st[key] = ls
	}
	switch op {
	case lockutil.OpLock:
		ls.level = writeHeld
	case lockutil.OpRLock:
		ls.level = readHeld
	case lockutil.OpUnlock, lockutil.OpRUnlock:
		ls.level = unheld
		ls.released = pos
	}
}

// checkLockedCallee enforces the *Locked call-site contract.
func (c *checker) checkLockedCallee(call *ast.CallExpr, st state, fresh bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() != c.pass.Pkg || !lockutil.IsLockedName(fn.Name()) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	named := lockutil.OwnerNamed(sig.Recv().Type())
	if named == nil {
		return
	}
	set := c.guardSet[named]
	if len(set) == 0 {
		return
	}
	for mu, owner := range set {
		if fresh {
			c.reportAccess(call.Pos(), fmt.Sprintf("go statement calls %s", fn.Name()),
				guard{owner: owner, mutex: mu}, unheld, token.NoPos)
			continue
		}
		level, released := c.lookup(st, sel.X, owner, mu)
		if level == unheld {
			c.reportAccess(call.Pos(), fmt.Sprintf("call to %s", fn.Name()),
				guard{owner: owner, mutex: mu}, level, released)
		}
	}
}

// access checks one annotated-field selector against the lock state.
func (c *checker) access(sel *ast.SelectorExpr, st state, write bool) {
	fv := c.fieldOf(sel)
	if fv == nil {
		return
	}
	g, ok := c.guards[fv]
	if !ok {
		return
	}
	var level lockLevel
	var released token.Pos
	if g.sibling {
		level, released = c.lookup(st, sel.X, g.owner, g.mutex)
	} else {
		level, released = c.lookupType(st, g.owner, g.mutex)
	}
	need := readHeld
	verb := "read of"
	if write {
		need, verb = writeHeld, "write to"
	}
	if level >= need {
		return
	}
	c.reportAccess(sel.Sel.Pos(), fmt.Sprintf("%s %s", verb, sel.Sel.Name), g, level, released)
}

func (c *checker) reportAccess(pos token.Pos, what string, g guard, level lockLevel, released token.Pos) {
	if c.pass.IsTestFile(pos) {
		return
	}
	switch {
	case level == readHeld:
		c.pass.Reportf(pos, "%s guarded by %s while it is only read-locked (RLock); writes need %s.Lock",
			what, g, g.owner.Obj().Name())
	case released.IsValid():
		rel := c.pass.Fset.Position(released)
		c.pass.Reportf(pos, "%s guarded by %s after the guard was released at line %d; snapshot it inside the critical section",
			what, g, rel.Line)
	default:
		c.pass.Reportf(pos, "%s guarded by %s without holding %s", what, g, g)
	}
}

// fieldOf resolves the struct field a selector denotes, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// lookup resolves the effective lock level protecting base's guard
// mutex: the exact tracked instance when base canonicalizes, falling
// back to (and taking the stronger of) any held mutex of the same
// owner type — the aliasing escape for instances reached through maps
// or call results.
func (c *checker) lookup(st state, base ast.Expr, owner *types.Named, mutex string) (lockLevel, token.Pos) {
	var level lockLevel
	var released token.Pos
	if canon, ok := lockutil.Canon(c.pass.TypesInfo, base); ok {
		if ls := st[stateKey{base: canon, mutex: mutex}]; ls != nil {
			level = ls.level
			released = ls.released
		}
	}
	tl, tr := c.lookupType(st, owner, mutex)
	if tl > level {
		level, released = tl, token.NoPos
	}
	if !released.IsValid() {
		released = tr
	}
	return level, released
}

// lookupType scans the state for any held mutex of the given owner type
// and field name.
func (c *checker) lookupType(st state, owner *types.Named, mutex string) (lockLevel, token.Pos) {
	var level lockLevel
	var released token.Pos
	for key, ls := range st {
		if key.mutex != mutex || ls.owner == nil || ls.owner.Obj() != owner.Obj() {
			continue
		}
		if ls.level > level {
			level = ls.level
		}
		if ls.released.IsValid() {
			released = ls.released
		}
	}
	return level, released
}
