package guardedby_test

import (
	"strings"
	"testing"

	"parabit/internal/analysis/analysistest"
	"parabit/internal/analysis/guardedby"
)

func TestUnguardedAccessFlagged(t *testing.T) {
	analysistest.Run(t, guardedby.Analyzer, "guardbad")
}

func TestGuardedAccessClean(t *testing.T) {
	analysistest.Run(t, guardedby.Analyzer, "guardok")
}

// TestReadColumnRaceShapeFlagged pins the acceptance criterion directly:
// the fixture reproducing the PR 7 ReadColumn/WriteColumn race (entry
// pointer loaded under RLock, its size read after RUnlock) must draw the
// post-release diagnostic.
func TestReadColumnRaceShapeFlagged(t *testing.T) {
	diags := analysistest.Diagnostics(t, guardedby.Analyzer, "guardbad")
	for _, d := range diags {
		if strings.Contains(d.Message, "read of size guarded by Dir.mu after the guard was released") {
			return
		}
	}
	t.Fatalf("ReadColumn race shape not flagged among %d diagnostics", len(diags))
}
