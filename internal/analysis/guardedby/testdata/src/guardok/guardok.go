// Package guardok exercises the legal patterns guardedby must accept:
// defer-unlock, RLock reads, early-return unlock branches, *Locked
// helpers called under the lock, snapshots taken inside the critical
// section, in-place closures, goroutines that lock for themselves, and
// //lint:ignore suppression.
package guardok

import "sync"

type Store struct {
	mu   sync.RWMutex
	cols map[string][]uint64 // guarded by mu
	n    int                 // guarded by mu
}

func New() *Store {
	return &Store{cols: make(map[string][]uint64)}
}

func (s *Store) Put(k string, v []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cols[k] = v
	s.n++
}

func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func (s *Store) Delete(k string) {
	s.mu.Lock()
	if _, ok := s.cols[k]; !ok {
		s.mu.Unlock()
		return
	}
	delete(s.cols, k)
	s.n--
	s.mu.Unlock()
}

// growLocked follows the helper convention: every caller holds s.mu.
func (s *Store) growLocked(k string, v []uint64) {
	s.cols[k] = append(s.cols[k], v...)
	s.n++
}

func (s *Store) Append(k string, v []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.growLocked(k, v)
}

// Background's goroutine takes the lock for itself before touching
// guarded state.
func (s *Store) Background(k string, v []uint64) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.cols[k] = v
	}()
}

func Sum(s *Store) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, col := range s.cols {
		total += len(col)
	}
	return total
}

// IgnoredEstimate shows the deliberate escape hatch.
func IgnoredEstimate(s *Store) int {
	//lint:ignore guardedby racy estimate is fine for logging
	return s.n
}

type Dir struct {
	mu   sync.RWMutex
	cols map[string]*entry // guarded by mu
}

type entry struct {
	size int // guarded by Dir.mu
}

// Size snapshots the guarded field inside the critical section — the
// fixed ReadColumn shape.
func (d *Dir) Size(key string) int {
	d.mu.RLock()
	size := 0
	if e := d.cols[key]; e != nil {
		size = e.size
	}
	d.mu.RUnlock()
	return size
}

// Grow writes an entry's guarded field under the write lock.
func (d *Dir) Grow(key string, n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.cols[key]
	if e == nil {
		e = &entry{}
		d.cols[key] = e
	}
	e.size = n
}
