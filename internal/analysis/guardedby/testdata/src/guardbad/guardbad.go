// Package guardbad violates `// guarded by` annotations in every way
// the analyzer reports: plain unguarded reads and writes, writes under
// RLock, the post-Unlock read from the PR 7 ReadColumn race, unguarded
// *Locked calls, and a malformed annotation.
package guardbad

import "sync"

// Store is the sibling-annotation shape: fields guarded by their own
// struct's mutex.
type Store struct {
	mu   sync.RWMutex
	cols map[string][]uint64 // guarded by mu
	n    int                 // guarded by mu
}

// bumpLocked requires s.mu held — the suffix contract.
func (s *Store) bumpLocked() { s.n++ }

func PlainRead(s *Store) int {
	return s.n // want `read of n guarded by Store\.mu without holding Store\.mu`
}

func PlainWrite(s *Store, k string, v []uint64) {
	s.cols[k] = v // want `write to cols guarded by Store\.mu without holding Store\.mu`
}

func WriteUnderRLock(s *Store, k string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	delete(s.cols, k) // want `write to cols guarded by Store\.mu while it is only read-locked \(RLock\); writes need Store\.Lock`
}

func SnapshotAfterUnlock(s *Store) int {
	s.mu.RLock()
	total := len(s.cols)
	s.mu.RUnlock()
	return total + s.n // want `read of n guarded by Store\.mu after the guard was released at line \d+; snapshot it inside the critical section`
}

func CallLockedUnlocked(s *Store) {
	s.bumpLocked() // want `call to bumpLocked guarded by Store\.mu without holding Store\.mu`
}

func GoLocked(s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.bumpLocked() // want `go statement calls bumpLocked guarded by Store\.mu without holding Store\.mu`
}

// Dir mirrors the cluster directory: entry instances are owned by the
// directory's lock, not one of their own — the qualified annotation.
type Dir struct {
	mu   sync.RWMutex
	cols map[string]*entry // guarded by mu
}

type entry struct {
	size     int      // guarded by Dir.mu
	replicas []uint64 // guarded by Dir.mu
}

// ReadColumn reproduces the PR 7 race: the entry pointer is loaded under
// RLock but its size is read after RUnlock, racing a concurrent writer.
func ReadColumn(d *Dir, key string) int {
	d.mu.RLock()
	e := d.cols[key]
	d.mu.RUnlock()
	if e == nil {
		return 0
	}
	return e.size // want `read of size guarded by Dir\.mu after the guard was released at line \d+; snapshot it inside the critical section`
}

func WriteSizeUnderRLock(d *Dir, key string, n int) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if e := d.cols[key]; e != nil {
		e.size = n // want `write to size guarded by Dir\.mu while it is only read-locked \(RLock\); writes need Dir\.Lock`
	}
}

// Weird names a guard that does not exist on the struct.
type Weird struct {
	mu sync.Mutex
	x  int // guarded by missing // want `bad guarded-by annotation "missing": Weird has no sync\.Mutex/RWMutex field "missing"`
}
