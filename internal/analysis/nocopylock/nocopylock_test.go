package nocopylock_test

import (
	"testing"

	"parabit/internal/analysis/analysistest"
	"parabit/internal/analysis/nocopylock"
)

func TestCopiesFlagged(t *testing.T) {
	analysistest.Run(t, nocopylock.Analyzer, "internal/telemetry")
}

func TestPointerDisciplineClean(t *testing.T) {
	analysistest.Run(t, nocopylock.Analyzer, "internal/sched")
}
