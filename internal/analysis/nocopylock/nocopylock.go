// Package nocopylock enforces the no-copy discipline on the telemetry
// and scheduler handle structs.
//
// telemetry.Sink, the trace recorder, metric handles and sched.Scheduler
// are shared by reference: they carry sync.Mutex fields or sync/atomic
// counters whose identity is the synchronization. A by-value copy forks
// that state — two goroutines increment different counters, or lock
// different mutexes, and no race detector run is guaranteed to notice.
// Standard vet's copylocks only catches types with a Lock method, which
// misses the atomic-only handles, and it does not flag declarations that
// merely *invite* copies. This analyzer flags, module-wide: by-value
// parameters, results and receivers of guarded types; range statements
// whose iteration variable copies a guarded element; and assignments
// copying a guarded value out of a dereference, variable or field.
package nocopylock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"parabit/internal/analysis"
)

// Analyzer is the nocopylock analysis.
var Analyzer = &analysis.Analyzer{
	Name: "nocopylock",
	Doc: "flag by-value copies of telemetry/sched/cluster/plan/nvme/faults handle " +
		"structs carrying mutexes or atomics (params, results, receivers, range " +
		"copies, value assignments), which vet's copylocks misses for atomic-only structs",
	Run: run,
}

// isGuardedPkg reports whether a package's lock-carrying structs follow
// the shared-by-pointer discipline. Suffix matching lets analyzer
// fixtures under testdata take the same path shape.
func isGuardedPkg(path string) bool {
	return strings.HasSuffix(path, "internal/telemetry") ||
		strings.HasSuffix(path, "internal/sched") ||
		strings.HasSuffix(path, "internal/cluster") ||
		strings.HasSuffix(path, "internal/plan") ||
		strings.HasSuffix(path, "internal/nvme") ||
		strings.HasSuffix(path, "internal/faults")
}

type checker struct {
	pass *analysis.Pass
	memo map[types.Type]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, memo: make(map[types.Type]bool)}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				c.checkFuncDecl(n)
			case *ast.FuncLit:
				c.checkFieldLists(n.Type)
			case *ast.RangeStmt:
				c.checkRange(n)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					c.checkCopyExpr(rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					c.checkCopyExpr(v)
				}
			}
			return true
		})
	}
	return nil
}

func (c *checker) checkFuncDecl(d *ast.FuncDecl) {
	if d.Recv != nil {
		for _, f := range d.Recv.List {
			if t := c.pass.TypesInfo.TypeOf(f.Type); t != nil && c.guarded(t) {
				c.report(f.Type.Pos(), t, "method receiver copies")
			}
		}
	}
	c.checkFieldLists(d.Type)
}

func (c *checker) checkFieldLists(ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if t := c.pass.TypesInfo.TypeOf(f.Type); t != nil && c.guarded(t) {
				c.report(f.Type.Pos(), t, what+" copies")
			}
		}
	}
	check(ft.Params, "by-value parameter")
	check(ft.Results, "by-value result")
}

func (c *checker) checkRange(r *ast.RangeStmt) {
	for _, v := range []ast.Expr{r.Key, r.Value} {
		if v == nil {
			continue
		}
		if id, ok := v.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		if t := c.pass.TypesInfo.TypeOf(v); t != nil && c.guarded(t) {
			c.report(v.Pos(), t, "range iteration variable copies")
		}
	}
}

// checkCopyExpr flags an assignment right-hand side that copies a guarded
// value. Composite literals (construction, not copying) and call results
// (flagged once, at the callee's result declaration) stay silent.
func (c *checker) checkCopyExpr(e ast.Expr) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	if t := c.pass.TypesInfo.TypeOf(e); t != nil && c.guarded(t) {
		c.report(e.Pos(), t, "assignment copies")
	}
}

func (c *checker) report(pos token.Pos, t types.Type, verb string) {
	c.pass.Reportf(pos, "%s %s, which carries mutex or atomic state; share it by pointer", verb, types.TypeString(t, nil))
}

// guarded reports whether t is a named struct declared in a guarded
// package that transitively contains sync or sync/atomic state by value.
func (c *checker) guarded(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !isGuardedPkg(obj.Pkg().Path()) {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	return c.containsLock(t)
}

// containsLock reports whether the type holds sync or sync/atomic state
// by value, recursively through struct fields and array elements.
func (c *checker) containsLock(t types.Type) bool {
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // breaks cycles; recursive value types are illegal anyway
	result := false
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
			// Interfaces (sync.Locker) are reference-shaped and safe.
			if _, isInterface := u.Underlying().(*types.Interface); !isInterface {
				result = true
				break
			}
		}
		result = c.containsLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = c.containsLock(u.Elem())
	}
	c.memo[t] = result
	return result
}
