// Package sched holds clean pointer-disciplined code plus lock-free
// value types whose copies are fine; nocopylock must stay silent.
package sched

import "sync"

// Scheduler carries a mutex and is shared by pointer everywhere below.
type Scheduler struct {
	mu sync.Mutex
	n  int
}

func Use(s *Scheduler) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Ticket carries no lock state; copying it is fine.
type Ticket struct{ ID int }

func Copy(t Ticket) Ticket { return t }

func RangeTickets(ts []Ticket) int {
	sum := 0
	for _, t := range ts {
		sum += t.ID
	}
	return sum
}

func RangeSchedulers(xs []*Scheduler) {
	for _, p := range xs {
		Use(p)
	}
}
