// Package telemetry mirrors the real handle-struct shapes: a
// mutex-guarded registry and an atomic-only counter handle. Every
// by-value copy here must be flagged — including the atomic-only one,
// which standard vet's copylocks cannot see.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Sink is a mutex-guarded registry, shared by pointer.
type Sink struct {
	mu   sync.Mutex
	vals map[string]int64
}

// Counter carries only atomic state; it has no Lock method, so vet's
// copylocks is blind to copies of it.
type Counter struct {
	n atomic.Int64
}

func ByValueParam(s Sink) {} // want `by-value parameter copies`

func ByValueResult(p *Sink) Sink { // want `by-value result copies`
	return *p
}

func (s Sink) ValueMethod() {} // want `method receiver copies`

func RangeCopy(xs []Sink) {
	for _, x := range xs { // want `range iteration variable copies`
		use(&x)
	}
}

func DerefCopy(p *Sink) {
	s := *p // want `assignment copies`
	use(&s)
}

func AtomicOnlyHandle(c Counter) {} // want `by-value parameter copies`

func FieldCopy(pair *struct{ A Sink }) {
	s := pair.A // want `assignment copies`
	use(&s)
}

// Pointer discipline passes.
func Fine(p *Sink, c *Counter) *Sink {
	q := p
	return q
}

func RangePointers(xs []*Sink) {
	for _, p := range xs {
		use(p)
	}
}

func use(*Sink) {}
