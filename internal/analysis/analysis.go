// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis model, built entirely on the standard
// library so the repository's custom vet suite (cmd/parabit-vet) works in
// environments without the x/tools module.
//
// It mirrors the upstream API shape — an Analyzer owns a Run function
// that receives a *Pass and reports Diagnostics — but supports only what
// parabit's analyzers need: whole-package syntax plus full type
// information, and //lint:ignore suppression. Facts, SSA, and result
// dependencies between analyzers are intentionally out of scope.
//
// The concrete analyzers live in the subpackages latchseq, simtime,
// errdrop and nocopylock; see the README's "Static analysis" section for
// what each one enforces.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run applies the analyzer to one package. It reports findings
	// through pass.Report / pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics *[]Diagnostic
}

// Diagnostic is a single finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Report records a diagnostic at the given syntax position.
func (p *Pass) Report(pos token.Pos, msg string) {
	p.report(Diagnostic{Pos: p.Fset.Position(pos), Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf records a formatted diagnostic at the given syntax position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

func (p *Pass) report(d Diagnostic) {
	*p.diagnostics = append(*p.diagnostics, d)
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// Analyzers whose invariants only bind production code use this to skip
// test-only constructs.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position. Diagnostics on lines covered by a
// //lint:ignore directive naming the analyzer are dropped.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg.Fset, pkg.Syntax)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:    a,
				Fset:        pkg.Fset,
				Files:       pkg.Syntax,
				Pkg:         pkg.Types,
				TypesInfo:   pkg.TypesInfo,
				diagnostics: &diags,
			}
			before := len(diags)
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			diags = filterIgnored(diags, before, ig)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreKey identifies one line of one file holding a //lint:ignore
// directive.
type ignoreKey struct {
	file string
	line int
}

// collectIgnores indexes //lint:ignore directives: the value set holds the
// analyzer names the directive suppresses ("all" suppresses every
// analyzer). A directive suppresses diagnostics on its own line and on the
// line immediately following it, matching the staticcheck convention of
// writing the directive directly above the offending statement.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[ignoreKey][]string {
	out := make(map[ignoreKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					// Malformed: a directive requires a reason.
					continue
				}
				pos := fset.Position(c.Pos())
				names := strings.Split(fields[0], ",")
				out[ignoreKey{pos.Filename, pos.Line}] = names
			}
		}
	}
	return out
}

func filterIgnored(diags []Diagnostic, from int, ig map[ignoreKey][]string) []Diagnostic {
	if len(ig) == 0 {
		return diags
	}
	kept := diags[:from]
	for _, d := range diags[from:] {
		if ignored(d, ig) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func ignored(d Diagnostic, ig map[ignoreKey][]string) bool {
	for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, name := range ig[ignoreKey{d.Pos.Filename, line}] {
			if name == d.Analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}
