// Package errdrop flags discarded error returns from the simulated
// device stack.
//
// Calls into ssd.Device, the FTL and the scheduler mutate simulated
// device state (mappings, timing cursors, latch contents) and report
// failure through their error result. A call statement that drops that
// error desynchronizes the caller from the device silently: the
// simulation keeps running with state the caller believes is different,
// and the corruption only surfaces — if ever — as wrong experiment
// numbers. This analyzer reports statement-position calls (including go
// and defer statements) to functions and methods of the device packages
// whose error result is discarded. Test files are exempt; an explicit
// `_ =` assignment also passes, as a visible record that the error was
// considered and dropped on purpose.
package errdrop

import (
	"go/ast"
	"go/types"

	"parabit/internal/analysis"
)

// Analyzer is the errdrop analysis.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag call statements that discard error results from the device stack " +
		"(internal/ssd, internal/ftl, internal/sched, internal/cluster, internal/plan, " +
		"internal/nvme, internal/faults, internal/persist): a dropped error silently " +
		"desynchronizes the simulated device state",
	Run: run,
}

// guardedPkgs are the packages whose error returns must not be dropped.
var guardedPkgs = map[string]bool{
	"parabit/internal/ssd":     true,
	"parabit/internal/ftl":     true,
	"parabit/internal/sched":   true,
	"parabit/internal/cluster": true,
	"parabit/internal/plan":    true,
	"parabit/internal/nvme":    true,
	"parabit/internal/faults":  true,
	"parabit/internal/persist": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = n.Call
			case *ast.DeferStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || fn.Pkg() == nil || !guardedPkgs[fn.Pkg().Path()] {
				return true
			}
			if !returnsError(fn) {
				return true
			}
			if pass.IsTestFile(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s.%s is discarded; its error reports simulated-device state desync — handle it or assign it to _ explicitly",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}

// callee resolves the called function or method, looking through
// selectors and plain identifiers.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// returnsError reports whether any of the function's results is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
