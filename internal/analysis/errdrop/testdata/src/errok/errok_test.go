package errok

import (
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

// Test files are exempt: a dropped error in a test fails the test through
// other assertions, not by desynchronizing production state.
func dropInTest(dev *ssd.Device, at sim.Time) {
	dev.Write(0, nil, at)
}
