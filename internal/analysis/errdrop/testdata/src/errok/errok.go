// Package errok handles or explicitly discards device-stack errors;
// errdrop must stay silent.
package errok

import (
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

func Handled(dev *ssd.Device, at sim.Time) (sim.Time, error) {
	if _, err := dev.Write(0, nil, at); err != nil {
		return 0, err
	}
	// An explicit blank assignment records that the drop is deliberate.
	_, _, _ = dev.Read(0, at)
	// Calls with no error result are plain statements.
	dev.ResetTiming()
	return dev.Write(1, nil, at)
}
