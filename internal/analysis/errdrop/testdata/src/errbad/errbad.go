// Package errbad drops device-stack errors on the floor; every call
// statement here that discards an error result must be flagged.
package errbad

import (
	"parabit/internal/ftl"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

func Drop(dev *ssd.Device, f *ftl.FTL, at sim.Time) {
	dev.Write(0, nil, at)    // want `result of ssd\.Write is discarded`
	f.Read(0, at)            // want `result of ftl\.Read is discarded`
	defer dev.Read(0, at)    // want `result of ssd\.Read is discarded`
	go dev.Write(1, nil, at) // want `result of ssd\.Write is discarded`
}
