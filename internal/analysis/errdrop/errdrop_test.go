package errdrop_test

import (
	"testing"

	"parabit/internal/analysis/analysistest"
	"parabit/internal/analysis/errdrop"
)

func TestDroppedErrorsFlagged(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "errbad")
}

func TestHandledErrorsClean(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "errok")
}
