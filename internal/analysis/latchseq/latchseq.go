// Package latchseq statically validates latch control sequences against
// the circuit contract of internal/latch (ParaBit Tables 2–7).
//
// The latching circuit only computes correctly when control steps follow
// the legal orderings: a sequence must begin with an initialization, a
// combine transistor (M1/M2) may only fire after a sense has charged SO,
// and the L1→L2 transfer (M3) is meaningless before L1 has been
// initialized. Sequences that break these rules do not fail loudly — they
// silently latch garbage, exactly like the illegal row-activation
// orderings in the Ambit/PRISM line of PIM work. This analyzer finds
// []latch.Step composite literals (including ones built with append or
// reached through named package-level variables and single-return helper
// functions) and checks the orderings at compile time.
package latchseq

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"parabit/internal/analysis"
)

// Analyzer is the latchseq analysis.
var Analyzer = &analysis.Analyzer{
	Name: "latchseq",
	Doc: "check latch control sequences against the ParaBit circuit contract: " +
		"init first, sense before combine, no M3 before init, no unknown step kinds, " +
		"per-op step/sense counts matching internal/latch/sequences.go, and the " +
		"Flash-Cosmos MWS rules (wordline count within the sense margin, MWS as " +
		"the sole sense of its control program)",
	Run: run,
}

// latchPkgPath is the package whose Step/Sequence types anchor the checks.
const latchPkgPath = "parabit/internal/latch"

// Step kind values mirroring internal/latch. The analyzer reads kinds as
// untyped constant values out of type information, so these must match
// the constant block in latch/circuit.go; the latchseq tests in
// internal/latch/validate_test.go pin the correspondence.
const (
	stepInit = iota
	stepInitInv
	stepReinitL1
	stepReinitL1Inv
	stepSense
	stepM1
	stepM2
	stepM3
	stepSenseMulti
	numStepKinds
)

var stepKindNames = [numStepKinds]string{
	"StepInit", "StepInitInv", "StepReinitL1", "StepReinitL1Inv",
	"StepSense", "StepM1", "StepM2", "StepM3", "StepSenseMulti",
}

// maxMWSOperands mirrors latch.MaxMWSOperands: the sense-amplifier margin
// bounds how many wordlines one multi-wordline sense may select (pinned
// in pin_test.go).
const maxMWSOperands = 8

// opShape is the expected step and sense count for one named operation's
// sequence, per the tables in internal/latch/sequences.go.
type opShape struct{ steps, senses int }

// opShapes pins the shape of every basic-ParaBit sequence (paper Fig. 3,
// Fig. 5-7 and Tables 2-5). Location-free and TLC sequences are checked
// for ordering only; their shapes vary by hardware variant.
var opShapes = map[string]opShape{
	"READ-LSB": {4, 1},
	"READ-MSB": {6, 2},
	"AND":      {4, 1},
	"OR":       {6, 2},
	"XNOR":     {11, 4},
	"NAND":     {4, 1},
	"NOR":      {6, 2},
	"XOR":      {11, 4},
	"NOT-LSB":  {4, 1},
	"NOT-MSB":  {6, 2},
}

// maxSteps bounds any single control sequence; the longest legal sequence
// in the repository (location-free XOR/XNOR) has 16 steps, and a runaway
// generated sequence almost certainly indicates a builder bug.
const maxSteps = 64

// step is one statically resolved sequence element.
type step struct {
	kind  int64
	known bool // kind resolved to a constant
	// wlCount is the StepSenseMulti wordline count; wlKnown reports
	// whether it resolved to a constant (an absent field is the zero
	// value, which is always out of the legal 2..maxMWSOperands range).
	wlCount int64
	wlKnown bool
	pos     token.Pos // position to anchor diagnostics for this element
}

type checker struct {
	pass *analysis.Pass
	// vars maps package-level (and local) single-assignment variables to
	// their initializer expressions, for resolving steps behind names.
	vars map[types.Object]ast.Expr
	// funcs maps same-package functions to their declarations, for
	// resolving helper constructors like sense(v) and seq builders.
	funcs map[types.Object]*ast.FuncDecl
	// checked records Steps expressions already validated as part of an
	// enclosing latch.Sequence literal, so the bare []Step walk does not
	// report them twice.
	checked map[ast.Expr]bool
	// reported dedups diagnostics: a literal inside a helper function can
	// be reached both by the bare []Step walk and by resolution through
	// every sequence that calls the helper.
	reported map[reportKey]bool
}

type reportKey struct {
	pos token.Pos
	msg string
}

// reportf reports a diagnostic once per (position, message) pair.
func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if c.reported[reportKey{pos, msg}] {
		return
	}
	c.reported[reportKey{pos, msg}] = true
	c.pass.Report(pos, msg)
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		vars:     make(map[types.Object]ast.Expr),
		funcs:    make(map[types.Object]*ast.FuncDecl),
		checked:  make(map[ast.Expr]bool),
		reported: make(map[reportKey]bool),
	}
	c.index()

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if c.isSequenceLit(lit) {
				c.checkSequenceLit(lit)
			} else if c.isStepSlice(lit) && !c.checked[lit] {
				c.checked[lit] = true
				c.checkSteps(c.resolveSteps(lit, 0), lit.Pos(), "")
			}
			return true
		})
	}
	return nil
}

// index records initializer expressions for variables and bodies for
// functions declared in this package.
func (c *checker) index() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if obj := c.pass.TypesInfo.Defs[d.Name]; obj != nil {
					c.funcs[obj] = d
				}
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != len(vs.Values) {
						continue
					}
					for i, name := range vs.Names {
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
							c.vars[obj] = vs.Values[i]
						}
					}
				}
			}
		}
	}
}

// fromLatch reports whether the named type is the given declaration from
// the latch package.
func fromLatch(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && isLatchPath(obj.Pkg().Path())
}

// isLatchPath matches the latch package both at its module path and at
// the suffix-shaped paths used by analyzer fixtures under testdata.
func isLatchPath(path string) bool {
	return path == latchPkgPath || strings.HasSuffix(path, "internal/latch")
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	return c.pass.TypesInfo.TypeOf(e)
}

func (c *checker) isSequenceLit(lit *ast.CompositeLit) bool {
	t := c.typeOf(lit)
	return t != nil && fromLatch(t, "Sequence")
}

func (c *checker) isStepSlice(e ast.Expr) bool {
	t := c.typeOf(e)
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	return ok && fromLatch(slice.Elem(), "Step")
}

func (c *checker) isStep(e ast.Expr) bool {
	t := c.typeOf(e)
	return t != nil && fromLatch(t, "Step")
}

// checkSequenceLit validates a latch.Sequence composite literal: its
// Steps field follows the ordering rules, and when its Name field is a
// literal string naming a basic operation, the step/sense counts match
// the paper tables.
func (c *checker) checkSequenceLit(lit *ast.CompositeLit) {
	var name string
	var stepsExpr ast.Expr
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if tv, ok := c.pass.TypesInfo.Types[kv.Value]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name = constant.StringVal(tv.Value)
			}
		case "Steps":
			stepsExpr = kv.Value
		}
	}
	if stepsExpr == nil {
		return
	}
	if inner, ok := stepsExpr.(*ast.CompositeLit); ok {
		c.checked[inner] = true
	}
	c.checkSteps(c.resolveSteps(stepsExpr, 0), stepsExpr.Pos(), name)
}

// resolveSteps statically evaluates an expression of type []latch.Step to
// the list of steps it denotes, returning nil when the expression cannot
// be resolved. depth bounds recursion through named values.
func (c *checker) resolveSteps(e ast.Expr, depth int) []step {
	if depth > 10 {
		return nil
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		var out []step
		for _, el := range e.Elts {
			out = append(out, c.resolveStep(el, depth+1))
		}
		return out
	case *ast.CallExpr:
		// append(base, elems...) concatenation.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return nil
			}
			if len(e.Args) == 0 {
				return nil
			}
			out := c.resolveSteps(e.Args[0], depth+1)
			if out == nil {
				return nil
			}
			rest := e.Args[1:]
			if e.Ellipsis != token.NoPos {
				if len(rest) != 1 {
					return nil
				}
				tail := c.resolveSteps(rest[0], depth+1)
				if tail == nil {
					return nil
				}
				return append(out, tail...)
			}
			for _, a := range rest {
				out = append(out, c.resolveStep(a, depth+1))
			}
			return out
		}
		// A same-package helper returning a fixed []Step.
		if ret := c.singleReturn(e); ret != nil && c.isStepSlice(ret) {
			return c.resolveSteps(ret, depth+1)
		}
		return nil
	case *ast.Ident, *ast.SelectorExpr:
		if init := c.initializer(e); init != nil {
			return c.resolveSteps(init, depth+1)
		}
		return nil
	case *ast.ParenExpr:
		return c.resolveSteps(e.X, depth)
	}
	return nil
}

// resolveStep statically evaluates one element of a step sequence.
func (c *checker) resolveStep(e ast.Expr, depth int) step {
	unknown := step{known: false, pos: e.Pos()}
	if depth > 10 {
		return unknown
	}
	switch e := e.(type) {
	case *ast.CompositeLit:
		if !c.isStep(e) {
			return unknown
		}
		return c.stepFromLit(e)
	case *ast.CallExpr:
		if ret := c.singleReturn(e); ret != nil && c.isStep(ret) {
			s := c.resolveStep(ret, depth+1)
			s.pos = e.Pos()
			return s
		}
		return unknown
	case *ast.Ident, *ast.SelectorExpr:
		if init := c.initializer(e); init != nil {
			s := c.resolveStep(init, depth+1)
			s.pos = e.Pos()
			return s
		}
		return unknown
	case *ast.ParenExpr:
		return c.resolveStep(e.X, depth)
	}
	return unknown
}

// stepFromLit extracts the Kind and WLCount of a latch.Step composite
// literal. Absent fields are their zero values: StepInit for Kind, and a
// zero wordline count (always illegal for StepSenseMulti).
func (c *checker) stepFromLit(lit *ast.CompositeLit) step {
	out := step{kind: stepInit, known: true, wlKnown: true, pos: lit.Pos()}
	for i, el := range lit.Elts {
		var kindExpr, wlExpr ast.Expr
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				switch key.Name {
				case "Kind":
					kindExpr = kv.Value
				case "WLCount":
					wlExpr = kv.Value
				}
			}
		} else {
			// Positional literal: Kind and WLCount are fields 0 and 3.
			switch i {
			case 0:
				kindExpr = el
			case 3:
				wlExpr = el
			}
		}
		if kindExpr != nil {
			if v, ok := c.constInt(kindExpr); ok {
				out.kind = v
			} else {
				out.known = false
				out.pos = kindExpr.Pos()
			}
		}
		if wlExpr != nil {
			if v, ok := c.constInt(wlExpr); ok {
				out.wlCount = v
			} else {
				out.wlKnown = false
			}
		}
	}
	return out
}

// constInt resolves an expression to a constant integer value.
func (c *checker) constInt(e ast.Expr) (int64, bool) {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(tv.Value); ok {
			return v, true
		}
	}
	return 0, false
}

// initializer resolves an identifier or selector to the initializer
// expression of the variable it names, when that variable is declared in
// the package under analysis with a single static initializer.
func (c *checker) initializer(e ast.Expr) ast.Expr {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	return c.vars[obj]
}

// singleReturn resolves a call to a same-package function whose body is a
// single return statement, yielding the returned expression.
func (c *checker) singleReturn(call *ast.CallExpr) ast.Expr {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	decl, ok := c.funcs[obj]
	if !ok || decl.Body == nil || len(decl.Body.List) != 1 {
		return nil
	}
	ret, ok := decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

func isInitFamily(kind int64) bool {
	switch kind {
	case stepInit, stepInitInv, stepReinitL1, stepReinitL1Inv:
		return true
	}
	return false
}

func isFullInit(kind int64) bool {
	return kind == stepInit || kind == stepInitInv
}

// checkSteps applies the ordering rules to a resolved sequence. Elements
// whose kind could not be resolved are treated as wildcards: they satisfy
// any precondition, so only provable violations are reported.
func (c *checker) checkSteps(steps []step, pos token.Pos, name string) {
	if steps == nil {
		return
	}
	if len(steps) > maxSteps {
		c.reportf(pos, "latch sequence has %d steps, more than the %d any legal control program needs", len(steps), maxSteps)
	}

	allKnown := true
	sawInit := false        // an init-family step so far (or a wildcard)
	senseSinceInit := false // a sense since the most recent init-family step (or a wildcard)
	senses := 0
	mws := false // a StepSenseMulti appeared
	var mwsPos token.Pos
	for i, s := range steps {
		if !s.known {
			allKnown = false
			// Conservatively assume the unresolved step could be
			// whatever the following steps need.
			sawInit = true
			senseSinceInit = true
			continue
		}
		if s.kind < 0 || s.kind >= numStepKinds {
			c.reportf(s.pos, "unknown StepKind %d in latch sequence; the circuit defines kinds %s..%s", s.kind, stepKindNames[0], stepKindNames[numStepKinds-1])
			continue
		}
		if i == 0 && !isFullInit(s.kind) {
			c.reportf(s.pos, "latch sequence must begin with StepInit or StepInitInv, not %s: the circuit latches are undefined before initialization", stepKindNames[s.kind])
			// One complaint about the start is enough; don't cascade
			// into M3-before-init reports for the same root cause.
			sawInit = true
		}
		switch {
		case isInitFamily(s.kind):
			sawInit = true
			senseSinceInit = false
		case s.kind == stepSense:
			senses++
			senseSinceInit = true
		case s.kind == stepSenseMulti:
			senses++
			senseSinceInit = true
			mws = true
			mwsPos = s.pos
			if s.wlKnown && (s.wlCount < 2 || s.wlCount > maxMWSOperands) {
				c.reportf(s.pos, "multi-wordline sense at step %d selects %d wordlines; the sense amplifier margin allows 2..%d per sense", i+1, s.wlCount, maxMWSOperands)
			}
		case s.kind == stepM1 || s.kind == stepM2:
			if !senseSinceInit {
				c.reportf(s.pos, "%s combine at step %d has no StepSense since the last initialization: SO holds no sensed value to combine", stepKindNames[s.kind], i+1)
			}
		case s.kind == stepM3:
			if !sawInit {
				c.reportf(s.pos, "StepM3 transfer at step %d before any initialization: L1 holds no value to transfer", i+1)
			}
		}
	}

	if mws && allKnown && senses > 1 {
		// Provable only when every step resolved: a wildcard counts as a
		// sense conservatively and must not trigger this.
		c.reportf(mwsPos, "latch sequence mixes a multi-wordline sense with %d other senses: an MWS discharges the whole string and must be the only sense in its control program", senses-1)
	}

	if name == "" || !allKnown {
		return
	}
	if shape, ok := opShapes[name]; ok {
		if len(steps) != shape.steps {
			c.reportf(pos, "sequence %q has %d steps, but the paper's %s sequence has %d", name, len(steps), name, shape.steps)
		}
		if senses != shape.senses {
			c.reportf(pos, "sequence %q has %d sense steps, but the paper's %s sequence issues %d SROs", name, senses, name, shape.senses)
		}
	}
}
