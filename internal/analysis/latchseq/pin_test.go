package latchseq

import (
	"testing"

	"parabit/internal/latch"
)

// TestStepKindConstantsMatchLatch pins the analyzer's local step-kind
// constants to the real ones in internal/latch. The analyzer reads kinds
// as untyped constants out of type-checked source, so if the latch
// package reorders its StepKind iota block this test fails before the
// analyzer starts mislabeling sequences.
func TestStepKindConstantsMatchLatch(t *testing.T) {
	pins := []struct {
		name  string
		local int
		real  latch.StepKind
	}{
		{"StepInit", stepInit, latch.StepInit},
		{"StepInitInv", stepInitInv, latch.StepInitInv},
		{"StepReinitL1", stepReinitL1, latch.StepReinitL1},
		{"StepReinitL1Inv", stepReinitL1Inv, latch.StepReinitL1Inv},
		{"StepSense", stepSense, latch.StepSense},
		{"StepM1", stepM1, latch.StepM1},
		{"StepM2", stepM2, latch.StepM2},
		{"StepM3", stepM3, latch.StepM3},
		{"StepSenseMulti", stepSenseMulti, latch.StepSenseMulti},
	}
	for _, p := range pins {
		if p.local != int(p.real) {
			t.Errorf("analyzer constant %s = %d, latch.%s = %d", p.name, p.local, p.name, int(p.real))
		}
	}
	if numStepKinds != int(latch.StepSenseMulti)+1 {
		t.Errorf("analyzer numStepKinds = %d, latch defines %d kinds", numStepKinds, int(latch.StepSenseMulti)+1)
	}
	if maxMWSOperands != latch.MaxMWSOperands {
		t.Errorf("analyzer maxMWSOperands = %d, latch.MaxMWSOperands = %d", maxMWSOperands, latch.MaxMWSOperands)
	}
}

// TestOpShapesMatchShippedSequences pins the analyzer's per-op shape
// table (step count and SRO count) to the sequences the simulator
// actually executes.
func TestOpShapesMatchShippedSequences(t *testing.T) {
	shipped := map[string]latch.Sequence{
		latch.ReadLSB.Name: latch.ReadLSB,
		latch.ReadMSB.Name: latch.ReadMSB,
	}
	for _, op := range latch.Ops {
		s := latch.ForOp(op)
		shipped[s.Name] = s
	}
	for name, shape := range opShapes {
		s, ok := shipped[name]
		if !ok {
			t.Errorf("opShapes has %q but internal/latch ships no sequence by that name", name)
			continue
		}
		if len(s.Steps) != shape.steps || s.SROs() != shape.senses {
			t.Errorf("opShapes[%q] = {steps: %d, senses: %d}, shipped sequence has %d steps and %d SROs",
				name, shape.steps, shape.senses, len(s.Steps), s.SROs())
		}
	}
	for name := range shipped {
		if _, ok := opShapes[name]; !ok {
			t.Errorf("shipped sequence %q has no opShapes entry; the analyzer cannot check its shape", name)
		}
	}
}
