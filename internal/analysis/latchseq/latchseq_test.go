package latchseq_test

import (
	"path/filepath"
	"strings"
	"testing"

	"parabit/internal/analysis/analysistest"
	"parabit/internal/analysis/latchseq"
)

func TestIllegalSequences(t *testing.T) {
	analysistest.Run(t, latchseq.Analyzer, "a")
}

func TestLegalSequences(t *testing.T) {
	analysistest.Run(t, latchseq.Analyzer, "b")
}

// Planner-emitted chains: plan.FusedSequence builds long, non-paper-named
// control programs; the analyzer must accept every legal chain shape (c)
// and flag the mistakes a broken chain builder would make (d).
func TestPlannerChainSequences(t *testing.T) {
	analysistest.Run(t, latchseq.Analyzer, "c")
}

func TestPlannerChainViolations(t *testing.T) {
	analysistest.Run(t, latchseq.Analyzer, "d")
}

// Flash-Cosmos multi-wordline senses: every legal ForOpMWS shape is
// accepted (e), and the MWS-specific mistakes — operand count outside
// the sense margin, combining before the MWS fires, an MWS mixed into a
// pairwise sense chain — are flagged (f).
func TestMWSSequences(t *testing.T) {
	analysistest.Run(t, latchseq.Analyzer, "e")
}

func TestMWSViolations(t *testing.T) {
	analysistest.Run(t, latchseq.Analyzer, "f")
}

// TestDiagnosticPosition pins the exact position and message of the
// missing-init diagnostic, beyond the line-based // want matching.
func TestDiagnosticPosition(t *testing.T) {
	diags := analysistest.Diagnostics(t, latchseq.Analyzer, "a")
	const wantMsg = "latch sequence must begin with StepInit or StepInitInv, not StepSense: the circuit latches are undefined before initialization"
	for _, d := range diags {
		if d.Message != wantMsg {
			continue
		}
		if filepath.Base(d.Pos.Filename) != "a.go" {
			t.Errorf("diagnostic file = %s, want a.go", d.Pos.Filename)
		}
		// The first such diagnostic anchors on the sense1 element of the
		// noInit sequence; its line holds the []latch.Step literal.
		if d.Pos.Line != 20 {
			t.Errorf("diagnostic line = %d, want 20", d.Pos.Line)
		}
		if d.Pos.Column == 0 {
			t.Errorf("diagnostic column = 0, want a real column")
		}
		return
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	t.Fatalf("no diagnostic %q; got:\n%s", wantMsg, strings.Join(got, "\n"))
}
