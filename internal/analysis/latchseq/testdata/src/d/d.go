// Package d holds illegal variants of the planner-emitted chain shapes:
// the mistakes a broken FusedSequence builder would make. latchseq must
// flag every one — these are exactly the bugs the analyzer exists to
// stop before they silently latch garbage on the device.
package d

import "parabit/internal/latch"

func sense(wl int) latch.Step {
	return latch.Step{Kind: latch.StepSense, V: latch.VRead2, WL: wl}
}

var (
	init0  = latch.Step{Kind: latch.StepInit}
	reinit = latch.Step{Kind: latch.StepReinitL1}
	m2     = latch.Step{Kind: latch.StepM2}
	m3     = latch.Step{Kind: latch.StepM3}
)

// An OR chain whose builder re-initialized L1 but forgot the next
// operand's sense: the M2 after the reinit combines nothing.
var orMissingSense = latch.Sequence{
	Name: "PLAN-CHAIN-OR-2",
	Steps: []latch.Step{
		init0,
		sense(0), m2, m3,
		reinit,
		m2, m3, // want `StepM2 combine at step 6 has no StepSense`
	},
}

// An AND chain that skipped initialization — a builder that emitted the
// per-operand body without the prologue.
var andNoInit = latch.Sequence{
	Name:  "PLAN-CHAIN-AND-2",
	Steps: []latch.Step{sense(0), m2, sense(1), m2, m3}, // want `must begin with StepInit or StepInitInv`
}

// A chain one operand past the step budget: 32 AND operands need 66
// steps, over the 64 the circuit contract allows.
var andOverBudget = latch.Sequence{
	Name: "PLAN-CHAIN-AND-32",
	Steps: append(append(append(append([]latch.Step{init0}, // want `latch sequence has 66 steps, more than the 64 any legal control program needs`
		sense(0), m2, sense(1), m2, sense(2), m2, sense(3), m2,
		sense(4), m2, sense(5), m2, sense(6), m2, sense(7), m2),
		sense(8), m2, sense(9), m2, sense(10), m2, sense(11), m2,
		sense(12), m2, sense(13), m2, sense(14), m2, sense(15), m2),
		sense(16), m2, sense(17), m2, sense(18), m2, sense(19), m2,
		sense(20), m2, sense(21), m2, sense(22), m2, sense(23), m2),
		sense(24), m2, sense(25), m2, sense(26), m2, sense(27), m2,
		sense(28), m2, sense(29), m2, sense(30), m2, sense(31), m2, m3),
}

// A fused chain must not reuse a paper name: the shape pin catches a
// builder that labels its 3-operand chain as the paper's 2-operand AND.
var mislabeledChain = latch.Sequence{
	Name:  "AND",
	Steps: []latch.Step{init0, sense(0), m2, sense(1), m2, sense(2), m2, m3}, // want `has 8 steps, but the paper's AND sequence has 4` `has 3 sense steps, but the paper's AND sequence issues 1`
}

var _ = []latch.Sequence{orMissingSense, andNoInit, andOverBudget, mislabeledChain}
