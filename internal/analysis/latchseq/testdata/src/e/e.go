// Package e holds legal Flash-Cosmos multi-wordline-sense control
// programs; the analyzer must accept every shape ForOpMWS emits.
package e

import "parabit/internal/latch"

var (
	init0   = latch.Step{Kind: latch.StepInit}
	initInv = latch.Step{Kind: latch.StepInitInv}
	m1      = latch.Step{Kind: latch.StepM1}
	m2      = latch.Step{Kind: latch.StepM2}
	m3      = latch.Step{Kind: latch.StepM3}
)

// The four MWS-computable shapes (AND/OR/NAND/NOR), as ForOpMWS builds
// them: one multi-wordline sense is the sequence's only sense.
var mwsAnd = latch.Sequence{
	Name: "MWS-AND-4",
	Steps: []latch.Step{
		init0,
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 4},
		m2, m3,
	},
	ESP: true,
}

var mwsOr = latch.Sequence{
	Name: "MWS-OR-8",
	Steps: []latch.Step{
		init0,
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 8, Inverted: true},
		m2, m3,
	},
	ESP: true,
}

var mwsNand = latch.Sequence{
	Name: "MWS-NAND-2",
	Steps: []latch.Step{
		initInv,
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 2},
		m1, m3,
	},
	ESP: true,
}

var mwsNor = latch.Sequence{
	Name: "MWS-NOR-3",
	Steps: []latch.Step{
		initInv,
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 3, Inverted: true},
		m1, m3,
	},
	ESP: true,
}

// The cap itself is legal: exactly MaxMWSOperands wordlines.
var mwsAtCap = []latch.Step{
	init0,
	{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 8},
	m2, m3,
}

var _ = []interface{}{mwsAnd, mwsOr, mwsNand, mwsNor, mwsAtCap}
