// Package a holds deliberately illegal latch control sequences; every
// diagnostic latchseq can produce is exercised here.
package a

import "parabit/internal/latch"

var (
	init0   = latch.Step{Kind: latch.StepInit}
	initInv = latch.Step{Kind: latch.StepInitInv}
	sense1  = latch.Step{Kind: latch.StepSense, V: latch.VRead1}
	sense3  = latch.Step{Kind: latch.StepSense, V: latch.VRead3}
	m1      = latch.Step{Kind: latch.StepM1}
	m2      = latch.Step{Kind: latch.StepM2}
	m3      = latch.Step{Kind: latch.StepM3}
)

// A sequence that senses before any initialization.
var noInit = latch.Sequence{
	Name:  "BAD-NO-INIT",
	Steps: []latch.Step{sense1, m2, m3}, // want `must begin with StepInit or StepInitInv`
}

// A combine with nothing sensed: SO holds no value.
var blindCombine = latch.Sequence{
	Name:  "BAD-BLIND-COMBINE",
	Steps: []latch.Step{init0, m2, m3}, // want `StepM2 combine at step 2 has no StepSense`
}

// A transfer with no initialization at all, as a bare step slice.
var orphanTransfer = []latch.Step{m3} // want `must begin with StepInit or StepInitInv`

// A step kind the circuit does not define.
var unknownKind = []latch.Step{{Kind: latch.StepKind(99)}, m3} // want `unknown StepKind 99` `StepM3 transfer at step 2 before any initialization`

// The AND shape from the paper has 4 steps and 1 sense; this has extras.
var fatAnd = latch.Sequence{
	Name:  "AND",
	Steps: []latch.Step{init0, sense1, m2, sense3, m1, m3}, // want `has 6 steps, but the paper's AND sequence has 4` `has 2 sense steps, but the paper's AND sequence issues 1`
}

// Append-built sequences resolve too: the combine that never sees a
// sense sits in the appended tail's base.
var appended = latch.Sequence{
	Name:  "BAD-APPEND",
	Steps: append([]latch.Step{init0, m2}, m3), // want `StepM2 combine at step 2 has no StepSense`
}

// A helper behind a name: the diagnostic lands on the literal inside the
// helper, once, no matter how many sequences call it.
func combineNoSense() []latch.Step { return []latch.Step{init0, m2, m3} } // want `StepM2 combine at step 2 has no StepSense`

var viaFunc = latch.Sequence{Name: "BAD-VIA-FUNC", Steps: combineNoSense()}

var viaFunc2 = latch.Sequence{Name: "BAD-VIA-FUNC-2", Steps: combineNoSense()}

// A whole step table behind a named variable.
var namedSteps = []latch.Step{initInv, m1, m3} // want `StepM1 combine at step 2 has no StepSense`

var viaVar = latch.Sequence{Name: "BAD-VIA-VAR", Steps: namedSteps}

// A named constant as the sequence name still pins the table shape.
const andName = "AND"

var constName = latch.Sequence{
	Name:  andName,
	Steps: []latch.Step{init0, sense1, m2}, // want `has 3 steps, but the paper's AND sequence has 4`
}

var _ = []interface{}{noInit, blindCombine, orphanTransfer, unknownKind, fatAnd, appended, viaFunc, viaFunc2, viaVar, constName}
