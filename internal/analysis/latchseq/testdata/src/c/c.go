// Package c holds legal planner-emitted sequences: the chained
// location-free shapes plan.FusedSequence builds for multi-operand
// queries. Their names are not in the paper's table (so no shape pin
// applies) and their step counts grow with the chain length; latchseq
// must stay silent on all of them.
package c

import "parabit/internal/latch"

func sense(wl int) latch.Step {
	return latch.Step{Kind: latch.StepSense, V: latch.VRead2, WL: wl}
}

func senseInv(wl int) latch.Step {
	return latch.Step{Kind: latch.StepSense, V: latch.VRead2, WL: wl, Inverted: true}
}

var (
	init0   = latch.Step{Kind: latch.StepInit}
	initInv = latch.Step{Kind: latch.StepInitInv}
	reinit  = latch.Step{Kind: latch.StepReinitL1}
	m1      = latch.Step{Kind: latch.StepM1}
	m2      = latch.Step{Kind: latch.StepM2}
	m3      = latch.Step{Kind: latch.StepM3}
)

// A fused AND over five operands: one init, sense+M2 per operand, one
// transfer. 12 steps — longer than any paper table, still legal.
var chainAnd5 = latch.Sequence{
	Name: "PLAN-CHAIN-AND-5",
	Steps: []latch.Step{
		init0,
		sense(0), m2,
		sense(1), m2,
		sense(2), m2,
		sense(3), m2,
		sense(4), m2,
		m3,
	},
}

// A fused OR over three operands: L1 re-initialized between transfers,
// each combine covered by the sense after its re-init.
var chainOr3 = latch.Sequence{
	Name: "PLAN-CHAIN-OR-3",
	Steps: []latch.Step{
		init0,
		sense(0), m2, m3,
		reinit,
		sense(1), m2, m3,
		reinit,
		sense(2), m2, m3,
	},
}

// A fused XOR over three operands: the two-phase complement base plus
// one fold round with a normal and an inverted sense.
var chainXor3 = latch.Sequence{
	Name: "PLAN-CHAIN-XOR-3",
	Steps: []latch.Step{
		initInv,
		sense(0), m1,
		sense(1), m2,
		m3,
		reinit,
		sense(0), m2,
		senseInv(1), m2,
		m3,
		reinit,
		sense(2), m2, m3,
		reinit,
		senseInv(2), m2, m3,
	},
}

// Planner chains are also built incrementally with append, one operand
// at a time, exactly as plan.FusedSequence grows its step slice.
var chainAppend = latch.Sequence{
	Name: "PLAN-CHAIN-AND-3",
	Steps: append(
		append([]latch.Step{init0}, sense(0), m2),
		sense(1), m2, sense(2), m2, m3,
	),
}

// The longest chain the planner will ever emit: 31 AND operands fill the
// 64-step budget exactly (1 init + 31×2 + 1 transfer = 64).
var chainAndMax = latch.Sequence{
	Name: "PLAN-CHAIN-AND-31",
	Steps: append(append(append(append([]latch.Step{init0},
		sense(0), m2, sense(1), m2, sense(2), m2, sense(3), m2,
		sense(4), m2, sense(5), m2, sense(6), m2, sense(7), m2),
		sense(8), m2, sense(9), m2, sense(10), m2, sense(11), m2,
		sense(12), m2, sense(13), m2, sense(14), m2, sense(15), m2),
		sense(16), m2, sense(17), m2, sense(18), m2, sense(19), m2,
		sense(20), m2, sense(21), m2, sense(22), m2, sense(23), m2),
		sense(24), m2, sense(25), m2, sense(26), m2, sense(27), m2,
		sense(28), m2, sense(29), m2, sense(30), m2, m3),
}

var _ = []latch.Sequence{chainAnd5, chainOr3, chainXor3, chainAppend, chainAndMax}
