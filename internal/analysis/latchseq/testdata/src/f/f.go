// Package f holds illegal Flash-Cosmos multi-wordline-sense control
// programs: every MWS diagnostic latchseq can produce is exercised here.
package f

import "parabit/internal/latch"

var (
	init0  = latch.Step{Kind: latch.StepInit}
	sense1 = latch.Step{Kind: latch.StepSense, V: latch.VRead1}
	m2     = latch.Step{Kind: latch.StepM2}
	m3     = latch.Step{Kind: latch.StepM3}
)

// More wordlines than the sense amplifier margin allows.
var overCap = latch.Sequence{
	Name: "MWS-OVER-CAP",
	Steps: []latch.Step{
		init0,
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 9}, // want `multi-wordline sense at step 2 selects 9 wordlines; the sense amplifier margin allows 2\.\.8 per sense`
		m2, m3,
	},
}

// A single-wordline MWS is not an MWS (and an absent WLCount is zero).
var underCap = []latch.Step{
	init0,
	{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 1}, // want `multi-wordline sense at step 2 selects 1 wordlines`
	m2, m3,
}

var zeroCount = []latch.Step{
	init0,
	{Kind: latch.StepSenseMulti, V: latch.VRead2}, // want `multi-wordline sense at step 2 selects 0 wordlines`
	m2, m3,
}

// A combine firing before the MWS has charged SO.
var combineBeforeMWS = latch.Sequence{
	Name: "MWS-COMBINE-FIRST",
	Steps: []latch.Step{
		init0,
		m2, // want `StepM2 combine at step 2 has no StepSense`
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 4},
		m3,
	},
}

// An MWS mixed into a pairwise sense chain: the MWS discharges the whole
// string, so it must be the only sense of its control program.
var mixedChain = latch.Sequence{
	Name: "MWS-MIXED-CHAIN",
	Steps: []latch.Step{
		init0,
		sense1,
		m2,
		{Kind: latch.StepSenseMulti, V: latch.VRead2, WLCount: 4}, // want `mixes a multi-wordline sense with 1 other senses`
		m2, m3,
	},
}

var _ = []interface{}{overCap, underCap, zeroCount, combineBeforeMWS, mixedChain}
