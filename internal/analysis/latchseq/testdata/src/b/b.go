// Package b holds legal latch control sequences mirroring the shapes in
// internal/latch; latchseq must stay silent on all of them.
package b

import "parabit/internal/latch"

func sense(v latch.Vref) latch.Step { return latch.Step{Kind: latch.StepSense, V: v} }

func senseWL(wl int, v latch.Vref) latch.Step {
	return latch.Step{Kind: latch.StepSense, V: v, WL: wl}
}

var (
	init0   = latch.Step{Kind: latch.StepInit}
	initInv = latch.Step{Kind: latch.StepInitInv}
	reinit  = latch.Step{Kind: latch.StepReinitL1}
	m1      = latch.Step{Kind: latch.StepM1}
	m2      = latch.Step{Kind: latch.StepM2}
	m3      = latch.Step{Kind: latch.StepM3}
)

// The baseline LSB read, exactly as the paper draws it.
var readLSB = latch.Sequence{
	Name:  "READ-LSB",
	Steps: []latch.Step{init0, sense(latch.VRead2), m2, m3},
}

// OR: two senses, two combines, one transfer.
var orSeq = latch.Sequence{
	Name:  "OR",
	Steps: []latch.Step{init0, sense(latch.VRead2), m2, sense(latch.VRead3), m1, m3},
}

// NAND on the inverted initialization.
var nandSeq = latch.Sequence{
	Name:  "NAND",
	Steps: []latch.Step{initInv, sense(latch.VRead1), m1, m3},
}

// A location-free shape: re-initializing L1 mid-sequence is legal as long
// as each combine still has a sense after the re-init.
var withReinit = latch.Sequence{
	Name: "LF-OR-LIKE",
	Steps: []latch.Step{
		init0,
		senseWL(0, latch.VRead1), m2,
		m3,
		reinit,
		senseWL(1, latch.VRead2), m2,
		m3,
	},
}

// Append-built but legal.
var appendOK = latch.Sequence{
	Name:  "APPEND-OK",
	Steps: append([]latch.Step{init0, sense(latch.VRead1)}, m2, m3),
}

// Steps the analyzer cannot resolve statically are left alone.
func dynamicSteps(n int) []latch.Step {
	var out []latch.Step
	for i := 0; i < n; i++ {
		out = append(out, init0)
	}
	return out
}

var dynamic = latch.Sequence{Name: "DYNAMIC", Steps: dynamicSteps(3)}

var _ = []latch.Sequence{readLSB, orSeq, nandSeq, withReinit, appendOK, dynamic}
