// Package analysistest runs analyzers over fixture packages in testdata
// directories and checks their diagnostics against // want annotations,
// mirroring golang.org/x/tools/go/analysis/analysistest on top of the
// standard library only.
//
// A fixture lives in testdata/src/<name>/ and is an ordinary Go package;
// because it sits under testdata it is invisible to the go tool and so
// may deliberately violate the invariants under test. Fixture files may
// import real module packages (internal/latch, internal/telemetry, ...),
// which the shared loader type-checks from source.
//
// Expectations are comments of the form
//
//	bad() // want "regexp" "second regexp"
//
// Each quoted regexp must match one diagnostic reported on that line, in
// any order; diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"parabit/internal/analysis"
)

// sharedLoader type-checks all fixtures in one process against one
// package map, so the (source-typechecked) standard library and module
// dependencies load once per test binary rather than once per fixture.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func sharedLoader(t *testing.T) *analysis.Loader {
	loaderOnce.Do(func() {
		loader = analysis.NewLoader(moduleRoot(t))
	})
	return loader
}

// moduleRoot locates the module root by walking up from this source file.
func moduleRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	dir := filepath.Dir(file)
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above", file)
		}
		dir = parent
	}
}

// Run analyzes the fixture package testdata/src/<fixture> relative to the
// calling test's directory and reports mismatches against its // want
// annotations.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	files, diags := analyze(t, callerDir(t), a, fixture)
	checkExpectations(t, files, diags)
}

// Diagnostics analyzes the fixture like Run but returns the raw
// diagnostics instead of checking // want annotations, for tests that
// assert exact positions and messages.
func Diagnostics(t *testing.T, a *analysis.Analyzer, fixture string) []analysis.Diagnostic {
	t.Helper()
	_, diags := analyze(t, callerDir(t), a, fixture)
	return diags
}

// callerDir returns the directory of the test source file two frames up
// (the file that called Run or Diagnostics).
func callerDir(t *testing.T) string {
	_, caller, _, ok := runtime.Caller(2)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	return filepath.Dir(caller)
}

// analyze loads the fixture package and runs the analyzer over it. The
// fixture directory name doubles as the package path, so names with
// slashes ("internal/simfix") give analyzers keyed on package-path shape
// realistic paths.
func analyze(t *testing.T, base string, a *analysis.Analyzer, fixture string) ([]string, []analysis.Diagnostic) {
	t.Helper()
	dir := filepath.Join(base, "testdata", "src", filepath.FromSlash(fixture))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no Go files in %s", dir)
	}
	sort.Strings(files)

	l := sharedLoader(t)
	pkg, err := l.CheckFiles(fixture, files)
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", fixture, err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	return files, diags
}

// expectation is one // want regexp on one line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func checkExpectations(t *testing.T, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	fset := token.NewFileSet()
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitQuoted(m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: name, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// splitQuoted extracts the quoted strings from a want comment's payload:
// double-quoted Go string literals (with escape sequences) and
// backtick-quoted raw strings, in any mix.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		s = s[i:]
		if s[0] == '`' {
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
			continue
		}
		prefix, err := scanString(s)
		if err != nil {
			return out
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return out
		}
		out = append(out, unq)
		s = s[len(prefix):]
	}
}

// scanString returns the leading double-quoted Go string literal of s.
func scanString(s string) (string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", fmt.Errorf("no opening quote")
	}
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string")
}
