package simtime_test

import (
	"testing"

	"parabit/internal/analysis/analysistest"
	"parabit/internal/analysis/simtime"
)

func TestInternalPackageFlagged(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer, "internal/simbad")
}

func TestClusterPackageCovered(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer, "internal/cluster")
}

func TestWallclockPackageExempt(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer, "internal/wallclock")
}

func TestNonInternalPackageExempt(t *testing.T) {
	analysistest.Run(t, simtime.Analyzer, "cmdok")
}
