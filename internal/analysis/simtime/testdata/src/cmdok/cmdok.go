// Package cmdok has a non-internal package path, standing in for cmd/
// tools, which may report wall time freely.
package cmdok

import "time"

func Elapsed(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}
