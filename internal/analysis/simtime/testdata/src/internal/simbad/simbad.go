// Package simbad reads the wall clock from inside an internal simulation
// package; every use here must be flagged.
package simbad

import "time"

func Bad() time.Duration {
	t0 := time.Now()                    // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)        // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)      // want `time\.After reads the wall clock`
	tick := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	tick.Stop()
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

var lazy *time.Timer // want `time\.Timer reads the wall clock`

// Pure duration arithmetic never touches the wall clock and stays legal.
const sro = 25 * time.Microsecond

func Scale(n int) time.Duration { return time.Duration(n) * sro }

// An explicit suppression stands down the analyzer, with a recorded reason.
//
//lint:ignore simtime fixture-sanctioned wall-clock probe
var sanctioned = time.Now()
