package simbad

import "time"

// Wall-clock use in test files is sanctioned: test deadlines and timing
// live outside the simulated-latency model.
var testStart = time.Now()
