// Package wallclock mirrors the sanctioned internal/wallclock wrapper:
// the one internal package allowed to read the wall clock.
package wallclock

import "time"

func Now() time.Time { return time.Now() }

func Since(t time.Time) time.Duration { return time.Since(t) }
