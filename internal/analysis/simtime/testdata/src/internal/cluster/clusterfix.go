// Package cluster mirrors the path shape of parabit/internal/cluster: the
// sharded serving layer runs entirely on the virtual clock, so wall-clock
// reads here must be flagged like in any other simulation package.
package cluster

import "time"

// Serve models a request loop that measures latency the wrong way.
func Serve() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	route()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func route() {}

// Timeout construction from pure constants stays legal.
const requestBudget = 500 * time.Microsecond
