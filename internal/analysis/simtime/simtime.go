// Package simtime keeps wall-clock time out of the simulation.
//
// Every latency in the parabit stack is accounted in virtual time
// (internal/sim's Clock and Time); if any internal package reads the wall
// clock — time.Now, time.Since, time.Sleep, timers, tickers — host-machine
// speed silently leaks into simulated latencies and the model's results
// stop being reproducible. This analyzer forbids the wall-clock subset of
// package time in internal/... packages. Three escapes remain open:
// internal/wallclock (the one sanctioned wrapper, used by command-line
// tools for wall-time progress reporting), cmd/... packages, and _test.go
// files, where wall-clock deadlines are legitimate.
package simtime

import (
	"go/ast"
	"go/types"
	"strings"

	"parabit/internal/analysis"
)

// Analyzer is the simtime analysis.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock time (time.Now, time.Sleep, timers, tickers) in internal " +
		"simulation packages so all latency flows through internal/sim's virtual clock",
	Run: run,
}

// forbidden lists the package-time functions and types that observe or
// wait on the wall clock. Pure-value API (time.Duration arithmetic,
// time.Unix construction, formatting) stays allowed.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"Ticker":    true,
	"Timer":     true,
}

// exempt reports whether an internal package is sanctioned to touch the
// wall clock: only internal/wallclock, the one blessed wrapper, which
// cmd/ tools use for wall-time progress reporting.
func exempt(path string) bool {
	return strings.HasSuffix(path, "internal/wallclock")
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/") || exempt(path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !forbidden[sel.Sel.Name] || !isTimePkg(pass, sel.X) {
				return true
			}
			if pass.IsTestFile(sel.Pos()) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock inside simulation package %s; use internal/sim's virtual clock (or internal/wallclock in reporting tools)",
				sel.Sel.Name, path)
			return true
		})
	}
	return nil
}

// isTimePkg reports whether the expression names the standard time package.
func isTimePkg(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "time"
}
