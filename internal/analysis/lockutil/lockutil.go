// Package lockutil holds the mutex-shaped primitives the concurrency
// analyzers (guardedby, lockorder) share: recognizing sync.Mutex and
// sync.RWMutex fields, classifying Lock/RLock/Unlock/RUnlock call sites,
// canonicalizing the base expression a lock hangs off, and the *Locked
// helper-suffix convention for functions that require a lock already
// held.
package lockutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Acquire classifies one lock-method call.
type Acquire int

// Lock-method classes.
const (
	// OpNone marks a call that is not a lock operation.
	OpNone Acquire = iota
	// OpLock is a write acquisition (Lock).
	OpLock
	// OpRLock is a read acquisition (RLock).
	OpRLock
	// OpUnlock releases a write acquisition (Unlock).
	OpUnlock
	// OpRUnlock releases a read acquisition (RUnlock).
	OpRUnlock
)

// IsMutexType reports whether t (after stripping one pointer) is
// sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ClassifyLockCall inspects a call expression. When it is a
// Lock/RLock/Unlock/RUnlock call on a sync mutex reached through a
// selector (x.mu.Lock()), it returns the operation and the mutex
// selector expression (x.mu); otherwise OpNone.
func ClassifyLockCall(info *types.Info, call *ast.CallExpr) (Acquire, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return OpNone, nil
	}
	var op Acquire
	switch sel.Sel.Name {
	case "Lock":
		op = OpLock
	case "RLock":
		op = OpRLock
	case "Unlock":
		op = OpUnlock
	case "RUnlock":
		op = OpRUnlock
	default:
		return OpNone, nil
	}
	recv := ast.Unparen(sel.X)
	if t := info.TypeOf(recv); t == nil || !IsMutexType(t) {
		return OpNone, nil
	}
	return op, recv
}

// MutexField splits a mutex expression of the form base.mu into its base
// expression and the mutex field name. A bare identifier (a local or
// package-level mutex variable) returns a nil base and the variable
// name.
func MutexField(e ast.Expr) (base ast.Expr, name string, ok bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return e.X, e.Sel.Name, true
	case *ast.Ident:
		return nil, e.Name, true
	}
	return nil, "", false
}

// CanonKey is a stable identity for a base expression: the root
// identifier's object plus the selector path walked from it. Two
// syntactically different mentions of the same variable chain compare
// equal; expressions routed through calls, indexing or dereferences do
// not canonicalize.
type CanonKey struct {
	Root types.Object
	Path string
}

// Canon canonicalizes an identifier/selector chain. ok is false for
// expressions whose identity cannot be tracked syntactically (index
// expressions, call results, dereferences through computed pointers).
func Canon(info *types.Info, e ast.Expr) (CanonKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return CanonKey{}, false
		}
		return CanonKey{Root: obj}, true
	case *ast.SelectorExpr:
		base, ok := Canon(info, e.X)
		if !ok {
			return CanonKey{}, false
		}
		base.Path += "." + e.Sel.Name
		return base, true
	case *ast.StarExpr:
		return Canon(info, e.X)
	}
	return CanonKey{}, false
}

// OwnerNamed resolves the named struct type an expression's value
// belongs to, stripping one level of pointer. It returns nil when the
// type is not a named struct.
func OwnerNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// IsLockedName reports whether a function follows the *Locked suffix
// convention: it must be called with its receiver's guard mutexes held.
func IsLockedName(name string) bool {
	return len(name) > len("Locked") && strings.HasSuffix(name, "Locked")
}

// MutexFields returns the names of the sync.Mutex / sync.RWMutex fields
// declared directly on a named struct type, in declaration order.
func MutexFields(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if IsMutexType(f.Type()) {
			out = append(out, f.Name())
		}
	}
	return out
}

// Terminates reports whether a statement unconditionally leaves the
// enclosing block: a return, a branch (break/continue/goto), or a call
// to panic / os.Exit. Used by the analyzers to decide whether a branch's
// lock-state changes can reach the code after it.
func Terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				return id.Name == "os" && fun.Sel.Name == "Exit"
			}
		}
	case *ast.BlockStmt:
		return len(s.List) > 0 && Terminates(s.List[len(s.List)-1])
	}
	return false
}
