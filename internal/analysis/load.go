package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Loader type-checks packages from source, resolving package metadata
// through the go command. It needs no export data and no modules beyond
// the one being analyzed, which keeps cmd/parabit-vet free of
// dependencies outside the standard library.
//
// All packages loaded through one Loader share a FileSet and a package
// map, so repeated Check* calls (as in analysistest suites) type-check
// shared dependencies once.
type Loader struct {
	// Dir is the directory go list runs in; it must sit inside the
	// module under analysis. Empty means the current directory.
	Dir string

	fset    *token.FileSet
	meta    map[string]*listPackage
	pkgs    map[string]*types.Package
	targets map[string]bool
	full    map[string]*Package
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		meta:    make(map[string]*listPackage),
		pkgs:    make(map[string]*types.Package),
		targets: make(map[string]bool),
		full:    make(map[string]*Package),
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load lists the packages matching the patterns and returns them fully
// type-checked, with syntax and type info, in go list order.
//
// Every package — target or dependency — is type-checked exactly once per
// Loader, so type identities agree across the whole load no matter in
// which order the go command lists targets.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	for _, path := range targets {
		m, ok := l.meta[path]
		if !ok {
			return nil, fmt.Errorf("load %s: no metadata", path)
		}
		if len(m.GoFiles) > 0 {
			l.targets[path] = true
		}
	}
	var out []*Package
	for _, path := range targets {
		if !l.targets[path] {
			continue
		}
		pkg, err := l.target(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// target type-checks a target package with full syntax and info, once.
func (l *Loader) target(path string) (*Package, error) {
	if pkg, ok := l.full[path]; ok {
		return pkg, nil
	}
	m := l.meta[path]
	pkg, err := l.checkDir(path, m.Dir, m.GoFiles)
	if err != nil {
		return nil, err
	}
	l.full[path] = pkg
	return pkg, nil
}

// CheckFiles parses and type-checks an explicit file list as one package
// with the given import path. Imports resolve through the loader, so the
// files may import anything visible from the loader's module — this is
// how analysistest type-checks fixtures living under testdata.
func (l *Loader) CheckFiles(pkgPath string, filenames []string) (*Package, error) {
	return l.checkDir(pkgPath, "", filenames)
}

// list runs `go list -deps -json` over the patterns, merging the result
// into the metadata cache, and returns the import paths matched by the
// patterns themselves (via a second, cheap `go list`).
func (l *Loader) list(patterns []string) ([]string, error) {
	if err := l.mergeList(append([]string{"-deps", "-json=ImportPath,Dir,Standard,GoFiles,Imports,Error"}, patterns...)); err != nil {
		return nil, err
	}
	out, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var targets []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			targets = append(targets, line)
		}
	}
	return targets, nil
}

func (l *Loader) goList(args ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

func (l *Loader) mergeList(args []string) error {
	out, err := l.goList(args...)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if _, ok := l.meta[p.ImportPath]; !ok {
			p := p
			l.meta[p.ImportPath] = &p
		}
	}
}

// Import implements types.Importer by type-checking the named package
// from source, on demand, with memoization.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.targets[path] {
		// The package is itself an analysis target reached first as a
		// dependency: check it with full info now so it is never
		// type-checked a second time.
		pkg, err := l.target(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	m, ok := l.meta[path]
	if !ok {
		// A package outside the initial -deps closure (e.g. an import
		// reachable only from a testdata fixture): list it lazily.
		if err := l.mergeList([]string{"-deps", "-json=ImportPath,Dir,Standard,GoFiles,Imports,Error", "--", path}); err != nil {
			return nil, err
		}
		if m, ok = l.meta[path]; !ok {
			return nil, fmt.Errorf("package %s not found by go list", path)
		}
	}
	files, err := l.parse(m.Dir, m.GoFiles)
	if err != nil {
		return nil, err
	}
	pkg, err := l.config().Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// checkDir type-checks one target package with full syntax and type info.
func (l *Loader) checkDir(pkgPath, dir string, filenames []string) (*Package, error) {
	files, err := l.parse(dir, filenames)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := l.config().Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	l.pkgs[pkgPath] = tpkg
	abs := make([]string, len(filenames))
	for i, f := range filenames {
		if dir != "" && !filepath.IsAbs(f) {
			f = filepath.Join(dir, f)
		}
		abs[i] = f
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		GoFiles:   abs,
		Fset:      l.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func (l *Loader) parse(dir string, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		path := name
		if dir != "" && !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) config() *types.Config {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &types.Config{Importer: l, Sizes: sizes}
}

// compile-time check that the Loader satisfies the importer interface the
// type checker consumes.
var _ types.Importer = (*Loader)(nil)
