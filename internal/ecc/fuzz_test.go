package ecc

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzECCRoundTrip drives the SEC-DED codec through its contract on
// arbitrary pages and corruption patterns: one flipped bit per sector is
// always corrected back to the original data, two flipped bits in a
// sector are always reported as ErrUncorrectable, and a nil error never
// coexists with data that differs from what was encoded (no silent
// corruption). Flip patterns are capped at two bits per sector because a
// SEC-DED code makes no promise about three or more — they may alias to
// a correctable syndrome.
func FuzzECCRoundTrip(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xa5}, []byte{0x00})
	f.Add(bytes.Repeat([]byte{0xff, 0x00}, 64), []byte{3, 250})
	f.Add(bytes.Repeat([]byte{0x5a}, 128), []byte{1, 2, 3, 4, 5, 6})

	const pageSize, sectorSize = 128, 32
	codec, err := NewCodec(pageSize, sectorSize)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seed, flips []byte) {
		// Normalize the fuzzed payload to one full page.
		data := make([]byte, pageSize)
		copy(data, seed)
		original := append([]byte(nil), data...)

		parity, err := codec.Encode(data)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		if len(parity) != codec.ParityBytes() {
			t.Fatalf("Encode returned %d parity bytes, want %d", len(parity), codec.ParityBytes())
		}

		// Derive flip positions from the fuzz input, keeping at most two
		// per sector so every pattern stays inside the SEC-DED contract.
		if len(flips) > 16 {
			flips = flips[:16]
		}
		perSector := make([]int, codec.Sectors())
		seen := make(map[int]bool)
		maxInSector := 0
		for i, b := range flips {
			bit := (int(b)<<4 | i) % (pageSize * 8)
			sector := bit / (sectorSize * 8)
			if seen[bit] || perSector[sector] >= 2 {
				continue
			}
			seen[bit] = true
			perSector[sector]++
			if perSector[sector] > maxInSector {
				maxInSector = perSector[sector]
			}
			data[bit/8] ^= 1 << (bit % 8)
		}

		corrected, err := codec.Decode(data, parity)
		switch {
		case maxInSector <= 1:
			if err != nil {
				t.Fatalf("Decode with %d single-bit sector errors: %v", len(seen), err)
			}
			if corrected != len(seen) {
				t.Fatalf("Decode corrected %d bits, want %d", corrected, len(seen))
			}
			if !bytes.Equal(data, original) {
				t.Fatalf("Decode reported success but data differs from the original")
			}
		default: // some sector holds exactly two flips
			if !errors.Is(err, ErrUncorrectable) {
				t.Fatalf("Decode with a double-bit sector error returned %v, want ErrUncorrectable", err)
			}
		}

		// The global guard, independent of the case analysis above: a nil
		// error means the caller may trust the page.
		if err == nil && !bytes.Equal(data, original) {
			t.Fatal("silent corruption: Decode returned nil error on wrong data")
		}
	})
}
