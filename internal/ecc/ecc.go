// Package ecc implements the error-correcting code of the simulated
// SSD's baseline read path. Real MLC-era controllers use BCH (or LDPC)
// over 512 B–1 KB sectors; this package provides an extended-Hamming
// SEC-DED codec over configurable sectors, which plays the same
// architectural role at a fraction of the implementation weight: the
// baseline read path corrects the raw bit errors injected by the
// reliability model, while ParaBit results bypass correction entirely —
// conventional ECC cannot validate a page that the latching circuit has
// combined from two sources (paper §4.4.3).
//
// Each sector of 2^k data bits is protected by k+1 parity bits laid out
// as an extended Hamming code: a k-bit syndrome locates any single bit
// error, and an overall parity bit distinguishes single (correctable)
// from double (detectable, uncorrectable) errors. Interleaving sectors
// across the page makes the page-level correction capability one bit per
// sector — 16 correctable bits per 8 KB page with 512 B sectors, in the
// same regime as the 40-bit/1 KB BCH of contemporaneous controllers for
// the error rates the reliability model produces.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrUncorrectable reports a sector whose syndrome indicates more errors
// than the code corrects.
var ErrUncorrectable = errors.New("ecc: uncorrectable sector")

// Codec protects pages of a fixed size.
type Codec struct {
	pageSize   int
	sectorSize int // bytes per protected sector
}

// NewCodec builds a codec for pages of pageSize bytes split into sectors
// of sectorSize bytes. pageSize must be a multiple of sectorSize.
func NewCodec(pageSize, sectorSize int) (*Codec, error) {
	if pageSize <= 0 || sectorSize <= 0 || pageSize%sectorSize != 0 {
		return nil, fmt.Errorf("ecc: page %d not divisible into %d-byte sectors", pageSize, sectorSize)
	}
	return &Codec{pageSize: pageSize, sectorSize: sectorSize}, nil
}

// Sectors returns sectors per page.
func (c *Codec) Sectors() int { return c.pageSize / c.sectorSize }

// ParityBytes returns the out-of-band bytes per page: 4 per sector
// (enough for the syndrome of sectors up to 2^31 bits plus the overall
// parity, byte-aligned for simple storage).
func (c *Codec) ParityBytes() int { return 4 * c.Sectors() }

// sectorSyndrome computes the Hamming syndrome and overall parity of a
// sector: syndrome is the XOR of the (1-based) positions of set bits.
func sectorSyndrome(sector []byte) (syndrome uint32, parity uint32) {
	for byteIdx, b := range sector {
		for b != 0 {
			bit := bits.TrailingZeros8(b)
			b &= b - 1
			pos := uint32(byteIdx*8+bit) + 1
			syndrome ^= pos
			parity ^= 1
		}
	}
	return syndrome, parity
}

// Encode computes the page's parity block. data must be one page.
func (c *Codec) Encode(data []byte) ([]byte, error) {
	if len(data) != c.pageSize {
		return nil, fmt.Errorf("ecc: encode of %d bytes, page is %d", len(data), c.pageSize)
	}
	out := make([]byte, c.ParityBytes())
	for s := 0; s < c.Sectors(); s++ {
		sector := data[s*c.sectorSize : (s+1)*c.sectorSize]
		syn, par := sectorSyndrome(sector)
		word := syn<<1 | par
		out[s*4] = byte(word)
		out[s*4+1] = byte(word >> 8)
		out[s*4+2] = byte(word >> 16)
		out[s*4+3] = byte(word >> 24)
	}
	return out, nil
}

// Decode corrects data in place against the stored parity. It returns
// the number of bits corrected, or ErrUncorrectable if any sector holds
// more errors than the code handles (data is left partially corrected in
// that case, as real hardware would report).
func (c *Codec) Decode(data, parity []byte) (int, error) {
	if len(data) != c.pageSize {
		return 0, fmt.Errorf("ecc: decode of %d bytes, page is %d", len(data), c.pageSize)
	}
	if len(parity) != c.ParityBytes() {
		return 0, fmt.Errorf("ecc: parity block is %d bytes, want %d", len(parity), c.ParityBytes())
	}
	corrected := 0
	for s := 0; s < c.Sectors(); s++ {
		sector := data[s*c.sectorSize : (s+1)*c.sectorSize]
		stored := uint32(parity[s*4]) | uint32(parity[s*4+1])<<8 |
			uint32(parity[s*4+2])<<16 | uint32(parity[s*4+3])<<24
		storedSyn, storedPar := stored>>1, stored&1
		syn, par := sectorSyndrome(sector)
		dSyn := syn ^ storedSyn
		dPar := par ^ storedPar
		switch {
		case dSyn == 0 && dPar == 0:
			// Clean sector.
		case dPar == 1:
			// Odd number of flips: a single error at position dSyn.
			if dSyn == 0 || dSyn > uint32(c.sectorSize*8) {
				return corrected, fmt.Errorf("%w: sector %d syndrome %d", ErrUncorrectable, s, dSyn)
			}
			pos := dSyn - 1
			sector[pos/8] ^= 1 << (pos % 8)
			corrected++
		default:
			// Even flip count with nonzero syndrome: >=2 errors.
			return corrected, fmt.Errorf("%w: sector %d (double error)", ErrUncorrectable, s)
		}
	}
	return corrected, nil
}
