package ecc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func codec(t *testing.T, page, sector int) *Codec {
	t.Helper()
	c, err := NewCodec(page, sector)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCleanRoundTrip(t *testing.T) {
	c := codec(t, 8192, 512)
	data := make([]byte, 8192)
	rand.New(rand.NewSource(1)).Read(data)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parity) != c.ParityBytes() {
		t.Fatalf("parity block %d bytes", len(parity))
	}
	n, err := c.Decode(data, parity)
	if err != nil || n != 0 {
		t.Fatalf("clean decode: n=%d err=%v", n, err)
	}
}

func TestSingleErrorPerSectorCorrected(t *testing.T) {
	c := codec(t, 8192, 512)
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 8192)
	rng.Read(data)
	parity, _ := c.Encode(data)
	orig := append([]byte(nil), data...)

	// Flip exactly one bit in every sector.
	for s := 0; s < c.Sectors(); s++ {
		bit := rng.Intn(512 * 8)
		data[s*512+bit/8] ^= 1 << (bit % 8)
	}
	n, err := c.Decode(data, parity)
	if err != nil {
		t.Fatal(err)
	}
	if n != c.Sectors() {
		t.Fatalf("corrected %d bits, want %d", n, c.Sectors())
	}
	for i := range data {
		if data[i] != orig[i] {
			t.Fatalf("byte %d not restored", i)
		}
	}
}

func TestDoubleErrorDetected(t *testing.T) {
	c := codec(t, 1024, 512)
	data := make([]byte, 1024)
	rand.New(rand.NewSource(3)).Read(data)
	parity, _ := c.Encode(data)
	data[0] ^= 1
	data[100] ^= 2 // two errors in sector 0
	if _, err := c.Decode(data, parity); !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("double error: err = %v, want ErrUncorrectable", err)
	}
}

func TestEveryBitPositionCorrectable(t *testing.T) {
	c := codec(t, 64, 64)
	base := make([]byte, 64)
	rand.New(rand.NewSource(4)).Read(base)
	parity, _ := c.Encode(base)
	for bit := 0; bit < 64*8; bit++ {
		data := append([]byte(nil), base...)
		data[bit/8] ^= 1 << (bit % 8)
		n, err := c.Decode(data, parity)
		if err != nil || n != 1 {
			t.Fatalf("bit %d: n=%d err=%v", bit, n, err)
		}
		if data[bit/8] != base[bit/8] {
			t.Fatalf("bit %d not restored", bit)
		}
	}
}

func TestSizeValidation(t *testing.T) {
	if _, err := NewCodec(8192, 600); err == nil {
		t.Fatal("non-dividing sector accepted")
	}
	if _, err := NewCodec(0, 512); err == nil {
		t.Fatal("zero page accepted")
	}
	c := codec(t, 1024, 512)
	if _, err := c.Encode(make([]byte, 100)); err == nil {
		t.Fatal("short encode accepted")
	}
	if _, err := c.Decode(make([]byte, 1024), make([]byte, 3)); err == nil {
		t.Fatal("short parity accepted")
	}
}

// Property: one random flip per random sector always restores the page.
func TestSingleErrorProperty(t *testing.T) {
	c, _ := NewCodec(1024, 256)
	f := func(seed int64, bitRaw uint16) bool {
		data := make([]byte, 1024)
		rand.New(rand.NewSource(seed)).Read(data)
		parity, err := c.Encode(data)
		if err != nil {
			return false
		}
		orig := append([]byte(nil), data...)
		bit := int(bitRaw) % (1024 * 8)
		data[bit/8] ^= 1 << (bit % 8)
		n, err := c.Decode(data, parity)
		if err != nil || n != 1 {
			return false
		}
		for i := range data {
			if data[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecode8KBOneError(b *testing.B) {
	c, _ := NewCodec(8192, 512)
	data := make([]byte, 8192)
	rand.New(rand.NewSource(5)).Read(data)
	parity, _ := c.Encode(data)
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[17] ^= 4
		if _, err := c.Decode(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}
