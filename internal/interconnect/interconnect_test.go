package interconnect

import (
	"math"
	"testing"

	"parabit/internal/sim"
)

func TestCalibrationMatchesPaper(t *testing.T) {
	// Paper §3/Fig. 4: 140 GB moved in 43.9 s (PIM) and 41.8 s (ISC).
	const gb140 = int64(140) * 1e9
	dram := PCIeGen3x4ToDRAM()
	if got := dram.BulkSeconds(gb140); math.Abs(got-43.9) > 0.1 {
		t.Errorf("DRAM link: 140 GB in %.2f s, want ~43.9", got)
	}
	fpga := PCIeGen3x4ToFPGA()
	if got := fpga.BulkSeconds(gb140); math.Abs(got-41.8) > 0.1 {
		t.Errorf("FPGA link: 140 GB in %.2f s, want ~41.8", got)
	}
}

func TestTransferTimeScalesLinearly(t *testing.T) {
	l := NewLink("test", 1.0, 0) // 1 GB/s = 1 byte/ns
	if got := l.TransferTime(1000); got != 1000*sim.Nanosecond {
		t.Fatalf("1000 B at 1 B/ns = %v, want 1µs", got)
	}
	if got := l.TransferTime(0); got != 0 {
		t.Fatalf("zero transfer = %v", got)
	}
}

func TestSetupAdds(t *testing.T) {
	l := NewLink("test", 1.0, 5*sim.Microsecond)
	if got := l.TransferTime(1000); got != 5*sim.Microsecond+1000 {
		t.Fatalf("transfer = %v", got)
	}
}

func TestTransfersSerialize(t *testing.T) {
	l := NewLink("test", 1.0, 0)
	d1 := l.Transfer(1000, 0)
	d2 := l.Transfer(1000, 0)
	if d1 != sim.Time(1000) || d2 != sim.Time(2000) {
		t.Fatalf("transfers completed at %v, %v", d1, d2)
	}
	if l.Moved() != 2000 {
		t.Fatalf("moved = %d", l.Moved())
	}
}

func TestTransferAfterIdle(t *testing.T) {
	l := NewLink("test", 1.0, 0)
	done := l.Transfer(100, 5000)
	if done != sim.Time(5100) {
		t.Fatalf("idle-start transfer done at %v", done)
	}
}

func TestReset(t *testing.T) {
	l := NewLink("test", 2.0, 0)
	l.Transfer(100, 0)
	l.Reset()
	if l.Moved() != 0 || l.FreeAt() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { NewLink("x", 0, 0) },
		func() { NewLink("x", -1, 0) },
		func() { NewLink("x", 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid link accepted")
				}
			}()
			f()
		}()
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	NewLink("x", 1, 0).TransferTime(-1)
}
