// Package interconnect models the host link between the SSD and the
// memory/compute side (DRAM for the PIM baseline, the FPGA for the ISC
// baseline): a fixed-rate, single-queue bus like the PCIe Gen3 x4 link in
// the paper's motivation study (§3).
//
// Rates are calibrated from the paper's measurements rather than from the
// PCIe spec: moving the 140 GB image-segmentation working set took 43.9 s
// to DRAM (3.19 GB/s effective) and 41.8 s to the FPGA (3.35 GB/s), both
// well under the ~3.94 GB/s raw line rate once protocol overheads apply.
package interconnect

import (
	"fmt"

	"parabit/internal/sim"
)

// Link is a one-direction-at-a-time transfer channel with an effective
// sustained bandwidth and a fixed per-transfer setup latency.
type Link struct {
	name       string
	bytesPerNs float64
	setup      sim.Duration
	bus        *sim.Resource
	moved      int64
}

// PCIeGen3x4ToDRAM returns the SSD->DRAM link of the PIM configuration,
// calibrated to the paper's 140 GB / 43.9 s measurement.
func PCIeGen3x4ToDRAM() *Link {
	return NewLink("pcie3x4-dram", 3.19, 1*sim.Microsecond)
}

// PCIeGen3x4ToFPGA returns the SSD->FPGA link of the ISC configuration
// (the 970 PRO attached to the Cosmos board), calibrated to 140 GB/41.8 s.
func PCIeGen3x4ToFPGA() *Link {
	return NewLink("pcie3x4-fpga", 3.35, 1*sim.Microsecond)
}

// NewLink builds a link with the given effective bandwidth in GB/s
// (= bytes/ns) and per-transfer setup cost. Bandwidth must be positive.
func NewLink(name string, gbPerSec float64, setup sim.Duration) *Link {
	if gbPerSec <= 0 {
		panic(fmt.Sprintf("interconnect: non-positive bandwidth %v", gbPerSec))
	}
	if setup < 0 {
		panic("interconnect: negative setup latency")
	}
	return &Link{
		name:       name,
		bytesPerNs: gbPerSec,
		setup:      setup,
		bus:        sim.NewResource(name),
	}
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// BytesPerSecond returns the effective bandwidth in bytes/second.
func (l *Link) BytesPerSecond() float64 { return l.bytesPerNs * 1e9 }

// TransferTime returns the bus occupancy for n bytes, excluding queueing.
func (l *Link) TransferTime(n int64) sim.Duration {
	if n < 0 {
		panic("interconnect: negative transfer size")
	}
	return l.setup + sim.Duration(float64(n)/l.bytesPerNs)
}

// InstrumentBus installs (or, with nil, removes) a reservation observer
// on the link's bus, giving the host link its own lane in an exported
// trace.
func (l *Link) InstrumentBus(obs sim.ReserveObserver) { l.bus.SetObserver(obs) }

// Transfer books n bytes on the link starting no earlier than at and
// returns when the transfer completes. Concurrent requests serialize.
func (l *Link) Transfer(n int64, at sim.Time) sim.Time {
	_, end := l.bus.ReserveLabeled(at, l.TransferTime(n), "transfer")
	l.moved += n
	return end
}

// Moved returns total bytes transferred over the link's lifetime.
func (l *Link) Moved() int64 { return l.moved }

// FreeAt returns when the link next goes idle.
func (l *Link) FreeAt() sim.Time { return l.bus.FreeAt() }

// Reset returns the link to idle at t=0 and clears the byte counter.
func (l *Link) Reset() {
	l.bus.Reset()
	l.moved = 0
}

// BulkSeconds is the analytic helper the paper-scale experiments use:
// the time in seconds to stream n bytes at the link's sustained rate,
// ignoring per-transfer setup (valid for multi-gigabyte sequential moves).
func (l *Link) BulkSeconds(n int64) float64 {
	return float64(n) / l.BytesPerSecond()
}
