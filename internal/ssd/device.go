package ssd

import (
	"errors"
	"fmt"

	"parabit/internal/ecc"
	"parabit/internal/flash"
	"parabit/internal/ftl"
	"parabit/internal/interconnect"
	"parabit/internal/latch"
	"parabit/internal/persist"
	"parabit/internal/pim"
	"parabit/internal/plan"
	"parabit/internal/sim"
)

// Device errors.
var (
	// ErrNotCoLocated reports a pre-allocation-scheme operation whose
	// operands do not share a wordline.
	ErrNotCoLocated = errors.New("ssd: operands not co-located")
	// ErrNotAligned reports a location-free operation whose operands are
	// not aligned LSB pages on one plane.
	ErrNotAligned = errors.New("ssd: operands not plane-aligned LSB pages")
	// ErrNeedOperands reports a reduction with no operands. (A
	// single-operand reduction is legal: it resolves to a plain read.)
	ErrNeedOperands = errors.New("ssd: reduction needs at least one operand")
	// ErrNoSpace reports internal LPN exhaustion for reallocation targets.
	ErrNoSpace = errors.New("ssd: no internal pages for reallocation")
)

// Device is the simulated ParaBit SSD.
type Device struct {
	cfg   Config
	array *flash.Array
	ftl   *ftl.FTL
	host  *interconnect.Link
	// plain tracks LPNs stored without scrambling (operand pages and
	// reallocation targets).
	plain map[uint64]bool
	// Internal LPNs for reallocated operands and intermediate results
	// grow downward from the top of the logical space.
	nextInternal uint64
	lowInternal  uint64
	stats        OpStats
	tele         devTele
	// qcache is the query planner's controller-DRAM result cache (nil
	// when disabled); qstats counts planner activity.
	qcache *plan.Cache
	qstats QueryStats
	// store is the crash-consistent on-disk backend (nil on a volatile
	// device): host writes are journaled before they are acknowledged and
	// the journal compacts into snapshots. See Create/Open/Close.
	store *persist.Store
}

// OpStats counts controller-level ParaBit activity.
type OpStats struct {
	BitwiseOps     int64 // two-operand operations executed
	Reallocations  int64 // operand reallocations performed
	ReallocPages   int64 // pages written by reallocation
	Fallbacks      int64 // scheme preconditions unmet, realloc fallback
	ResultBytes    int64 // result bytes returned to the host
	DescrambledOps int64 // operand reads that needed descrambling
}

// New builds a device from the configuration.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	array := flash.NewArray(cfg.Geometry, cfg.Timing)
	if cfg.ECCSectorBytes > 0 {
		codec, err := ecc.NewCodec(cfg.Geometry.PageSize, cfg.ECCSectorBytes)
		if err != nil {
			return nil, err
		}
		array.SetECC(codec)
	}
	f := ftl.New(array, cfg.FTL)
	logical := uint64(f.LogicalPages())
	// The top eighth of the logical space is the controller's private
	// pool for reallocated operands and intermediate results.
	low := logical - logical/8
	d := &Device{
		cfg:          cfg,
		array:        array,
		ftl:          f,
		host:         cfg.hostLink(),
		plain:        make(map[uint64]bool),
		nextInternal: logical - 1,
		lowInternal:  low,
	}
	if bytes := cfg.queryCacheBytes(); bytes > 0 {
		// Eviction is priced with the Ambit-calibrated movement model:
		// what a victim's bytes would cost to ship back over the link,
		// plus its measured recompute time (see internal/plan).
		d.qcache = plan.NewCache(bytes, pim.New(pim.DefaultConfig(), nil))
	}
	return d, nil
}

// MustNew is New for configurations known valid at compile time.
func MustNew(cfg Config) *Device {
	d, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Array exposes the flash array (for noise models and statistics).
func (d *Device) Array() *flash.Array { return d.array }

// FTL exposes the translation layer (for endurance accounting).
func (d *Device) FTL() *ftl.FTL { return d.ftl }

// HostLink exposes the SSD-to-host link.
func (d *Device) HostLink() *interconnect.Link { return d.host }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns controller-level counters.
func (d *Device) Stats() OpStats { return d.stats }

// PageSize returns the flash page size.
func (d *Device) PageSize() int { return d.cfg.Geometry.PageSize }

// UserPages returns the number of logical pages available to the host
// (excluding the controller's internal pool).
func (d *Device) UserPages() uint64 { return d.lowInternal }

// allocInternal hands out a controller-private LPN.
func (d *Device) allocInternal() (uint64, error) {
	if d.nextInternal < d.lowInternal {
		return 0, ErrNoSpace
	}
	lpn := d.nextInternal
	d.nextInternal--
	return lpn, nil
}

// ReclaimInternal trims stale internal pages. Reallocated operand
// pages become garbage as soon as their operation completes; experiments
// running many operations call this between phases. On a persistent
// device the trim is journaled (self-contained: intent plus commit with
// no payload) so replay reproduces the allocator state; if power is
// already gone the trim is skipped — a dead device mutates nothing.
func (d *Device) ReclaimInternal() {
	if d.store == nil {
		d.reclaimInternalCore()
		return
	}
	seq, err := d.store.AppendIntent(persist.Record{Op: persist.OpReclaimInternal})
	if err != nil {
		return
	}
	d.reclaimInternalCore()
	if err := d.store.AppendCommit(seq); err != nil {
		return
	}
	// Compaction errors are not the trim's problem; death is observed by
	// whatever runs next.
	_ = d.maybeSnapshot()
}

func (d *Device) reclaimInternalCore() {
	for lpn := d.nextInternal + 1; lpn < uint64(d.ftl.LogicalPages()); lpn++ {
		d.ftl.Trim(lpn)
		delete(d.plain, lpn)
	}
	d.nextInternal = uint64(d.ftl.LogicalPages()) - 1
}

func (d *Device) checkUserLPN(lpn uint64) error {
	if lpn >= d.lowInternal {
		return fmt.Errorf("ssd: lpn %d in controller-reserved range [%d,%d)",
			lpn, d.lowInternal, d.ftl.LogicalPages())
	}
	return nil
}

// Write stores host data at a logical page, scrambling it if the device
// is configured to (normal data path). The journal records the
// pre-scramble bytes; replay re-derives the keystream from the LPN.
func (d *Device) Write(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWrite, 0, []uint64{lpn}, [][]byte{data},
		func() (sim.Time, error) { return d.writeCore(lpn, data, at) })
}

func (d *Device) writeCore(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	if err := d.checkUserLPN(lpn); err != nil {
		return 0, err
	}
	buf := append([]byte(nil), data...)
	if d.cfg.Scramble {
		scrambleKeystream(lpn, buf)
		delete(d.plain, lpn)
	} else {
		d.plain[lpn] = true
	}
	return d.ftl.Write(lpn, buf, at)
}

// WriteOperand stores a bitwise operand page: never scrambled (§4.3.2),
// normal striped placement.
func (d *Device) WriteOperand(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWriteOperand, 0, []uint64{lpn}, [][]byte{data},
		func() (sim.Time, error) { return d.writeOperandCore(lpn, data, at) })
}

func (d *Device) writeOperandCore(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	if err := d.checkUserLPN(lpn); err != nil {
		return 0, err
	}
	d.plain[lpn] = true
	return d.ftl.Write(lpn, data, at)
}

// WriteOperandPair stores two operand pages co-located in one wordline
// (LSB page first operand, MSB page second), the pre-allocation layout
// basic ParaBit computes on. Unscrambled.
func (d *Device) WriteOperandPair(lpnL, lpnM uint64, dataL, dataM []byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWritePair, 0, []uint64{lpnL, lpnM}, [][]byte{dataL, dataM},
		func() (sim.Time, error) { return d.writeOperandPairCore(lpnL, lpnM, dataL, dataM, at) })
}

func (d *Device) writeOperandPairCore(lpnL, lpnM uint64, dataL, dataM []byte, at sim.Time) (sim.Time, error) {
	if err := d.checkUserLPN(lpnL); err != nil {
		return 0, err
	}
	if err := d.checkUserLPN(lpnM); err != nil {
		return 0, err
	}
	_, done, err := d.ftl.WritePaired(lpnL, lpnM, dataL, dataM, at)
	if err != nil {
		return 0, err
	}
	d.plain[lpnL] = true
	d.plain[lpnM] = true
	return done, nil
}

// WriteOperandLSBAligned stores two operand pages in LSB pages of aligned
// wordlines on one plane — the location-free layout (§5.5). Unscrambled.
func (d *Device) WriteOperandLSBAligned(lpnM, lpnN uint64, dataM, dataN []byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWriteLSBPair, 0, []uint64{lpnM, lpnN}, [][]byte{dataM, dataN},
		func() (sim.Time, error) { return d.writeOperandLSBAlignedCore(lpnM, lpnN, dataM, dataN, at) })
}

func (d *Device) writeOperandLSBAlignedCore(lpnM, lpnN uint64, dataM, dataN []byte, at sim.Time) (sim.Time, error) {
	if err := d.checkUserLPN(lpnM); err != nil {
		return 0, err
	}
	if err := d.checkUserLPN(lpnN); err != nil {
		return 0, err
	}
	_, _, done, err := d.ftl.WriteLSBPair(lpnM, lpnN, dataM, dataN, at)
	if err != nil {
		return 0, err
	}
	d.plain[lpnM] = true
	d.plain[lpnN] = true
	return done, nil
}

// WriteOperandLSBGroup stores k operand pages in LSB pages of a single
// plane, the layout a chained location-free reduction consumes in one
// operation. Unscrambled.
func (d *Device) WriteOperandLSBGroup(lpns []uint64, data [][]byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWriteLSBGroup, 0, lpns, data,
		func() (sim.Time, error) { return d.writeOperandLSBGroupCore(lpns, data, at) })
}

func (d *Device) writeOperandLSBGroupCore(lpns []uint64, data [][]byte, at sim.Time) (sim.Time, error) {
	for _, lpn := range lpns {
		if err := d.checkUserLPN(lpn); err != nil {
			return 0, err
		}
	}
	_, done, err := d.ftl.WriteLSBGroup(lpns, data, at)
	if err != nil {
		return 0, err
	}
	for _, lpn := range lpns {
		d.plain[lpn] = true
	}
	return done, nil
}

// WriteOperandMWSGroup stores k operand pages in LSB pages of a single
// block, ESP-programmed — the Flash-Cosmos layout whose AND/OR reduction
// is one multi-wordline sense. Unscrambled. The group must fit one block
// (k <= WordlinesPerBlock; the per-sense cap latch.MaxMWSOperands is the
// executor's concern, which chunks larger groups).
func (d *Device) WriteOperandMWSGroup(lpns []uint64, data [][]byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWriteMWSGroup, 0, lpns, data,
		func() (sim.Time, error) { return d.writeOperandMWSGroupCore(lpns, data, at) })
}

func (d *Device) writeOperandMWSGroupCore(lpns []uint64, data [][]byte, at sim.Time) (sim.Time, error) {
	for _, lpn := range lpns {
		if err := d.checkUserLPN(lpn); err != nil {
			return 0, err
		}
	}
	_, done, err := d.ftl.WriteMWSGroup(lpns, data, at)
	if err != nil {
		return 0, err
	}
	for _, lpn := range lpns {
		d.plain[lpn] = true
	}
	return done, nil
}

// WriteOperandOnPlane stores an operand page in an LSB slot of the plane
// with the given linear index (modulo the plane count). Column-oriented
// clients use it to keep the i'th page of every column on one plane, so
// cross-column reductions run location-free.
func (d *Device) WriteOperandOnPlane(planeIdx int, lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWriteOnPlane, int64(planeIdx), []uint64{lpn}, [][]byte{data},
		func() (sim.Time, error) { return d.writeOperandOnPlaneCore(planeIdx, lpn, data, at) })
}

func (d *Device) writeOperandOnPlaneCore(planeIdx int, lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	if err := d.checkUserLPN(lpn); err != nil {
		return 0, err
	}
	geo := d.cfg.Geometry
	plane := geo.PlaneAt(((planeIdx % geo.Planes()) + geo.Planes()) % geo.Planes())
	_, done, err := d.ftl.WriteLSBOnPlane(plane, lpn, data, at, true)
	if err != nil {
		return 0, err
	}
	d.plain[lpn] = true
	return done, nil
}

// WriteOperandTriple stores three operand pages co-located in one TLC
// wordline (LSB, CSB, TOP) — the §4.4.1 layout whose three-operand
// operations are a single short sense. Unscrambled. TLC devices only.
func (d *Device) WriteOperandTriple(lpns [3]uint64, data [3][]byte, at sim.Time) (sim.Time, error) {
	return d.journaled(persist.OpWriteTriple, 0, lpns[:], data[:],
		func() (sim.Time, error) { return d.writeOperandTripleCore(lpns, data, at) })
}

func (d *Device) writeOperandTripleCore(lpns [3]uint64, data [3][]byte, at sim.Time) (sim.Time, error) {
	for _, lpn := range lpns {
		if err := d.checkUserLPN(lpn); err != nil {
			return 0, err
		}
	}
	_, done, err := d.ftl.WriteTriple(lpns, data, at)
	if err != nil {
		return 0, err
	}
	for _, lpn := range lpns {
		d.plain[lpn] = true
	}
	return done, nil
}

// BitwiseTriple executes a three-operand operation over a co-located TLC
// triple. All three logical pages must share a wordline.
func (d *Device) BitwiseTriple(op latch.TLCOp3, lpns [3]uint64, at sim.Time) (BitwiseResult, error) {
	var wl flash.WordlineAddr
	for i, lpn := range lpns {
		addr, ok := d.ftl.Lookup(lpn)
		if !ok {
			return BitwiseResult{}, fmt.Errorf("ssd: operand %d: %w", lpn, ftl.ErrUnmapped)
		}
		if i == 0 {
			wl = addr.WordlineAddr
		} else if addr.WordlineAddr != wl {
			return BitwiseResult{}, fmt.Errorf("%w: triple operands span wordlines", ErrNotCoLocated)
		}
	}
	res, err := d.array.BitwiseSenseTLC(op, wl, at)
	if err != nil {
		return BitwiseResult{}, err
	}
	d.stats.BitwiseOps++
	d.tele.cOps.Add(1)
	if d.tele.sink != nil {
		d.tele.sink.Counter(tripleOpName).Add(1)
		d.tele.opTrack.Span("triple/"+op.String(), at, res.Ready)
	}
	return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
}

// Read returns the (descrambled) content of a logical page, without host
// transfer: the controller-side view.
func (d *Device) Read(lpn uint64, at sim.Time) ([]byte, sim.Time, error) {
	data, done, err := d.ftl.Read(lpn, at)
	if err != nil {
		return nil, 0, err
	}
	if d.cfg.Scramble && !d.plain[lpn] {
		scrambleKeystream(lpn, data)
	}
	return data, done, nil
}

// ReadToHost reads a page and ships it over the host link.
func (d *Device) ReadToHost(lpn uint64, at sim.Time) ([]byte, sim.Time, error) {
	data, ready, err := d.Read(lpn, at)
	if err != nil {
		return nil, 0, err
	}
	done := d.host.Transfer(int64(len(data)), ready)
	return data, done, nil
}

// readOperand reads an operand page for reallocation, descrambling if the
// page was stored scrambled (the firmware path §4.3.2 describes).
func (d *Device) readOperand(lpn uint64, at sim.Time) ([]byte, sim.Time, error) {
	data, done, err := d.ftl.Read(lpn, at)
	if err != nil {
		return nil, 0, err
	}
	if d.cfg.Scramble && !d.plain[lpn] {
		scrambleKeystream(lpn, data)
		d.stats.DescrambledOps++
		d.tele.cDescramble.Add(1)
	}
	return data, done, nil
}

// DrainTime reports when all in-flight flash work completes.
func (d *Device) DrainTime() sim.Time { return d.array.DrainTime() }

// ResetTiming idles every modeled resource without touching data.
func (d *Device) ResetTiming() {
	d.array.ResetTiming()
	d.host.Reset()
}
