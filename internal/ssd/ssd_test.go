package ssd

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"parabit/internal/bitvec"
	"parabit/internal/latch"
	"parabit/internal/nvme"
	"parabit/internal/sim"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randPage(d *Device, seed int64) []byte {
	b := make([]byte, d.PageSize())
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func golden(op latch.Op, m, n []byte) []byte {
	vm, vn := bitvec.FromBytes(m), bitvec.FromBytes(n)
	var out *bitvec.Vector
	switch op {
	case latch.OpAnd:
		out = bitvec.And(vn, vm)
	case latch.OpOr:
		out = bitvec.Or(vn, vm)
	case latch.OpXor:
		out = bitvec.Xor(vn, vm)
	case latch.OpNand:
		out = bitvec.Nand(vn, vm)
	case latch.OpNor:
		out = bitvec.Nor(vn, vm)
	case latch.OpXnor:
		out = bitvec.Xnor(vn, vm)
	case latch.OpNotLSB:
		out = bitvec.Not(vm)
	case latch.OpNotMSB:
		out = bitvec.Not(vn)
	default:
		panic("bad op")
	}
	return out.Bytes()
}

func TestWriteReadScrambled(t *testing.T) {
	d := newDevice(t)
	data := randPage(d, 1)
	if _, err := d.Write(3, data, 0); err != nil {
		t.Fatal(err)
	}
	// Controller-level read returns descrambled data.
	got, _, err := d.Read(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("descrambled read differs from written data")
	}
	// The flash itself must hold scrambled (different) bytes.
	addr, _ := d.FTL().Lookup(3)
	raw, _, _ := d.Array().Read(addr, 0)
	if bytes.Equal(raw, data) {
		t.Fatal("flash holds plaintext despite scrambling enabled")
	}
}

func TestOperandWritesAreUnscrambled(t *testing.T) {
	d := newDevice(t)
	data := randPage(d, 2)
	if _, err := d.WriteOperand(4, data, 0); err != nil {
		t.Fatal(err)
	}
	addr, _ := d.FTL().Lookup(4)
	raw, _, _ := d.Array().Read(addr, 0)
	if !bytes.Equal(raw, data) {
		t.Fatal("operand page was scrambled")
	}
}

func TestBitwisePreAllocAllOps(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 3), randPage(d, 4)
	if _, err := d.WriteOperandPair(0, 1, m, n, 0); err != nil {
		t.Fatal(err)
	}
	for _, op := range latch.Ops {
		r, err := d.Bitwise(op, 0, 1, SchemePreAlloc, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if !bytes.Equal(r.Data, golden(op, m, n)) {
			t.Fatalf("%v result wrong", op)
		}
	}
	if d.Stats().Fallbacks != 0 {
		t.Fatalf("pre-allocated operands caused %d fallbacks", d.Stats().Fallbacks)
	}
}

func TestBitwisePreAllocTiming(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 5), randPage(d, 6)
	d.WriteOperandPair(0, 1, m, n, 0)
	d.ResetTiming()
	r, err := d.Bitwise(latch.OpXor, 0, 1, SchemePreAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: XOR without reallocation takes 100 µs of sensing.
	if r.Done != sim.Time(100*sim.Microsecond) {
		t.Fatalf("XOR done at %v, want 100µs", r.Done)
	}
	d.ResetTiming()
	r, _ = d.Bitwise(latch.OpAnd, 0, 1, SchemePreAlloc, 0)
	if r.Done != sim.Time(25*sim.Microsecond) {
		t.Fatalf("AND done at %v, want 25µs", r.Done)
	}
}

func TestBitwiseReAllocAllOps(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 7), randPage(d, 8)
	// Operands written independently (not co-located), scrambled even.
	if _, err := d.Write(0, m, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(1, n, 0); err != nil {
		t.Fatal(err)
	}
	for _, op := range latch.Ops {
		r, err := d.Bitwise(op, 0, 1, SchemeReAlloc, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if !bytes.Equal(r.Data, golden(op, m, n)) {
			t.Fatalf("%v result wrong (scrambled operands must be descrambled in realloc)", op)
		}
	}
	s := d.Stats()
	if s.Reallocations != int64(len(latch.Ops)) {
		t.Fatalf("reallocations = %d, want %d", s.Reallocations, len(latch.Ops))
	}
	if s.DescrambledOps == 0 {
		t.Fatal("no descrambles recorded for scrambled operands")
	}
}

func TestBitwiseReAllocTiming(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 9), randPage(d, 10)
	d.WriteOperand(0, m, 0)
	d.WriteOperand(1, n, 0)
	d.ResetTiming()
	r, err := d.Bitwise(latch.OpNotMSB, 0, 1, SchemeReAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ReAlloc NOT-MSB ≈ operand reads + paired program + 2-SRO sense.
	// Reads overlap across planes (~25-50µs), programs serialize
	// (2x640µs) plus transfers, sense 50µs: expect ~1.4ms, and
	// definitely > 1.28ms of programming.
	if r.Done < sim.Time(1280*sim.Microsecond) || r.Done > sim.Time(1600*sim.Microsecond) {
		t.Fatalf("ReAlloc NOT-MSB done at %v, want ≈1.4ms", r.Done)
	}
}

func TestBitwiseLocFree(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 11), randPage(d, 12)
	if _, err := d.WriteOperandLSBAligned(0, 1, m, n, 0); err != nil {
		t.Fatal(err)
	}
	for _, op := range latch.BinaryOps {
		r, err := d.Bitwise(op, 0, 1, SchemeLocFree, 0)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if !bytes.Equal(r.Data, golden(op, m, n)) {
			t.Fatalf("%v locfree result wrong", op)
		}
	}
	if d.Stats().Fallbacks != 0 {
		t.Fatalf("aligned operands caused %d fallbacks", d.Stats().Fallbacks)
	}
	if d.Stats().Reallocations != 0 {
		t.Fatal("locfree performed reallocations")
	}
}

func TestLocFreeTiming(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 13), randPage(d, 14)
	d.WriteOperandLSBAligned(0, 1, m, n, 0)
	d.ResetTiming()
	r, _ := d.Bitwise(latch.OpAnd, 0, 1, SchemeLocFree, 0)
	if r.Done != sim.Time(50*sim.Microsecond) {
		t.Fatalf("locfree AND done at %v, want 50µs (2 SROs)", r.Done)
	}
}

func TestLocFreeFallbackWhenMisaligned(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 15), randPage(d, 16)
	// Striped single writes land on different planes.
	d.WriteOperand(0, m, 0)
	d.WriteOperand(1, n, 0)
	r, err := d.Bitwise(latch.OpAnd, 0, 1, SchemeLocFree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, golden(latch.OpAnd, m, n)) {
		t.Fatal("fallback result wrong")
	}
	if d.Stats().Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", d.Stats().Fallbacks)
	}
}

func TestPreAllocFallbackWhenUnpaired(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 17), randPage(d, 18)
	d.WriteOperand(0, m, 0)
	d.WriteOperand(1, n, 0)
	r, err := d.Bitwise(latch.OpOr, 0, 1, SchemePreAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, golden(latch.OpOr, m, n)) {
		t.Fatal("fallback result wrong")
	}
	if d.Stats().Fallbacks != 1 || d.Stats().Reallocations != 1 {
		t.Fatalf("stats %+v", d.Stats())
	}
}

func TestReduceCorrectAllSchemes(t *testing.T) {
	const k = 6
	for _, scheme := range Schemes {
		d := newDevice(t)
		operands := make([][]byte, k)
		lpns := make([]uint64, k)
		for i := range operands {
			operands[i] = randPage(d, int64(100+i))
			lpns[i] = uint64(i)
		}
		// Lay out per scheme.
		switch scheme {
		case SchemePreAlloc:
			for i := 0; i+1 < k; i += 2 {
				if _, err := d.WriteOperandPair(lpns[i], lpns[i+1], operands[i], operands[i+1], 0); err != nil {
					t.Fatal(err)
				}
			}
		case SchemeLocFree:
			for i := 0; i+1 < k; i += 2 {
				if _, err := d.WriteOperandLSBAligned(lpns[i], lpns[i+1], operands[i], operands[i+1], 0); err != nil {
					t.Fatal(err)
				}
			}
		case SchemeFlashCosmos:
			if _, err := d.WriteOperandMWSGroup(lpns, operands, 0); err != nil {
				t.Fatal(err)
			}
		default:
			for i := range lpns {
				if _, err := d.WriteOperand(lpns[i], operands[i], 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		r, err := d.Reduce(latch.OpAnd, lpns, scheme, 0)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		want := operands[0]
		for _, o := range operands[1:] {
			want = golden(latch.OpAnd, want, o)
		}
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("%v: reduction wrong", scheme)
		}
	}
}

func TestReduceSchemeCostOrdering(t *testing.T) {
	// The §5.3.2 ordering on a k-ary AND reduction:
	// LocFree < PreAlloc < ReAlloc in completion time, and
	// reallocation counts 0 / (k/2-1) / (k-1).
	const k = 8
	times := map[Scheme]sim.Time{}
	reallocs := map[Scheme]int64{}
	for _, scheme := range Schemes {
		d := newDevice(t)
		lpns := make([]uint64, k)
		for i := range lpns {
			lpns[i] = uint64(i)
		}
		pages := make([][]byte, k)
		for i := range pages {
			pages[i] = randPage(d, int64(200+i))
		}
		switch scheme {
		case SchemePreAlloc:
			for i := 0; i+1 < k; i += 2 {
				d.WriteOperandPair(lpns[i], lpns[i+1], pages[i], pages[i+1], 0)
			}
		case SchemeLocFree:
			for i := 0; i+1 < k; i += 2 {
				d.WriteOperandLSBAligned(lpns[i], lpns[i+1], pages[i], pages[i+1], 0)
			}
		default:
			for i := range lpns {
				d.WriteOperand(lpns[i], pages[i], 0)
			}
		}
		d.ResetTiming()
		r, err := d.Reduce(latch.OpAnd, lpns, scheme, 0)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		times[scheme] = r.Done
		reallocs[scheme] = d.Stats().Reallocations
	}
	if !(times[SchemeLocFree] < times[SchemePreAlloc] && times[SchemePreAlloc] < times[SchemeReAlloc]) {
		t.Fatalf("time ordering violated: locfree=%v prealloc=%v realloc=%v",
			times[SchemeLocFree], times[SchemePreAlloc], times[SchemeReAlloc])
	}
	if reallocs[SchemeLocFree] != 0 {
		t.Fatalf("locfree reallocs = %d", reallocs[SchemeLocFree])
	}
	if reallocs[SchemeReAlloc] != k-1 {
		t.Fatalf("realloc reallocs = %d, want %d", reallocs[SchemeReAlloc], k-1)
	}
	if reallocs[SchemePreAlloc] != k/2-1 {
		t.Fatalf("prealloc reallocs = %d, want %d", reallocs[SchemePreAlloc], k/2-1)
	}
}

func TestReduceOperandCounts(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Reduce(latch.OpAnd, nil, SchemeReAlloc, 0); !errors.Is(err, ErrNeedOperands) {
		t.Fatalf("empty reduce err = %v", err)
	}
	// A single-operand reduce is the identity: a plain read, not an error.
	page := randPage(d, 77)
	d.WriteOperand(9, page, 0)
	res, err := d.Reduce(latch.OpAnd, []uint64{9}, SchemeReAlloc, 0)
	if err != nil {
		t.Fatalf("single-operand reduce err = %v", err)
	}
	if !bytes.Equal(res.Data, page) {
		t.Fatal("single-operand reduce is not the identity")
	}
}

func TestExecuteFormula(t *testing.T) {
	// (A AND B) XOR (C AND D): two terms, one combine.
	d := newDevice(t)
	pages := make([][]byte, 4)
	for i := range pages {
		pages[i] = randPage(d, int64(300+i))
	}
	d.WriteOperandPair(0, 1, pages[0], pages[1], 0)
	d.WriteOperandPair(2, 3, pages[2], pages[3], 0)
	f := nvme.Formula{
		Terms: []nvme.Term{
			{M: nvme.Operand{LBA: 0, Length: d.PageSize()}, N: nvme.Operand{LBA: 1, Length: d.PageSize()}, Op: latch.OpAnd},
			{M: nvme.Operand{LBA: 2, Length: d.PageSize()}, N: nvme.Operand{LBA: 3, Length: d.PageSize()}, Op: latch.OpAnd},
		},
		Combine: []latch.Op{latch.OpXor},
	}
	res, err := d.ExecuteFormula(f, SchemePreAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 1 {
		t.Fatalf("result pages = %d", len(res.Pages))
	}
	want := golden(latch.OpXor, golden(latch.OpAnd, pages[0], pages[1]), golden(latch.OpAnd, pages[2], pages[3]))
	if !bytes.Equal(res.Pages[0], want) {
		t.Fatal("formula result wrong")
	}
	if res.HostDone <= res.Done {
		t.Fatal("host transfer not accounted")
	}
}

func TestExecuteFormulaMultiPage(t *testing.T) {
	// One term with 2-page operands -> two sub-operations -> two result
	// pages, exercised across two planes in parallel.
	d := newDevice(t)
	ps := d.PageSize()
	m0, m1 := randPage(d, 400), randPage(d, 401)
	n0, n1 := randPage(d, 402), randPage(d, 403)
	d.WriteOperandPair(10, 12, m0, n0, 0)
	d.WriteOperandPair(11, 13, m1, n1, 0)
	f := nvme.Formula{Terms: []nvme.Term{{
		M:  nvme.Operand{LBA: 10, Length: 2 * ps},
		N:  nvme.Operand{LBA: 12, Length: 2 * ps},
		Op: latch.OpXor,
	}}}
	res, err := d.ExecuteFormula(f, SchemePreAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) != 2 {
		t.Fatalf("result pages = %d, want 2", len(res.Pages))
	}
	if !bytes.Equal(res.Pages[0], golden(latch.OpXor, m0, n0)) ||
		!bytes.Equal(res.Pages[1], golden(latch.OpXor, m1, n1)) {
		t.Fatal("multi-page formula wrong")
	}
}

func TestShipToHost(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 20), randPage(d, 21)
	d.WriteOperandPair(0, 1, m, n, 0)
	r, _ := d.Bitwise(latch.OpAnd, 0, 1, SchemePreAlloc, 0)
	d.ShipToHost(&r)
	if r.HostDone <= r.Done {
		t.Fatal("host transfer time missing")
	}
	if d.Stats().ResultBytes != int64(d.PageSize()) {
		t.Fatalf("result bytes = %d", d.Stats().ResultBytes)
	}
}

func TestInternalPoolReclaim(t *testing.T) {
	d := newDevice(t)
	m, n := randPage(d, 22), randPage(d, 23)
	d.WriteOperand(0, m, 0)
	d.WriteOperand(1, n, 0)
	before := d.nextInternal
	if _, err := d.Bitwise(latch.OpAnd, 0, 1, SchemeReAlloc, 0); err != nil {
		t.Fatal(err)
	}
	if d.nextInternal == before {
		t.Fatal("realloc did not consume internal pages")
	}
	d.ReclaimInternal()
	if d.nextInternal != uint64(d.FTL().LogicalPages())-1 {
		t.Fatal("reclaim did not reset the pool")
	}
}

func TestUserCannotTouchInternalRange(t *testing.T) {
	d := newDevice(t)
	data := randPage(d, 24)
	if _, err := d.Write(d.UserPages(), data, 0); err == nil {
		t.Fatal("write into controller-reserved range accepted")
	}
}

func TestUnmappedOperandRejected(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Bitwise(latch.OpAnd, 50, 51, SchemeReAlloc, 0); err == nil {
		t.Fatal("bitwise on unmapped operands accepted")
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemePreAlloc.String() != "ParaBit" ||
		SchemeReAlloc.String() != "ParaBit-ReAlloc" ||
		SchemeLocFree.String() != "ParaBit-LocFree" ||
		SchemeFlashCosmos.String() != "Flash-Cosmos" {
		t.Fatal("scheme names wrong")
	}
}

// TestSchemeRegistryRoundTrip pins the registry contract: every scheme's
// String() parses back to itself (case-insensitively), Schemes covers the
// whole table in declaration order, and unknown names are refused.
func TestSchemeRegistryRoundTrip(t *testing.T) {
	if len(Schemes) != len(schemeNames) {
		t.Fatalf("Schemes lists %d of %d registry entries", len(Schemes), len(schemeNames))
	}
	for i, sc := range Schemes {
		if int(sc) != i {
			t.Fatalf("Schemes[%d] = %v, want declaration order", i, sc)
		}
		got, err := ParseScheme(sc.String())
		if err != nil || got != sc {
			t.Errorf("ParseScheme(%q) = %v, %v", sc.String(), got, err)
		}
		got, err = ParseScheme(strings.ToUpper(sc.String()))
		if err != nil || got != sc {
			t.Errorf("ParseScheme upper-case of %q = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := ParseScheme("no-such-scheme"); err == nil {
		t.Error("unknown scheme name accepted")
	}
}

func TestParallelWaveAcrossPlanes(t *testing.T) {
	// Pairs spread over all planes must compute in one wave: total time
	// ≈ single-op latency, not N x single-op.
	d := newDevice(t)
	g := d.Config().Geometry
	numPairs := g.Planes()
	lpn := uint64(0)
	for i := 0; i < numPairs; i++ {
		m, n := randPage(d, int64(i*2)), randPage(d, int64(i*2+1))
		if _, err := d.WriteOperandPair(lpn, lpn+1, m, n, 0); err != nil {
			t.Fatal(err)
		}
		lpn += 2
	}
	d.ResetTiming()
	var latest sim.Time
	for i := 0; i < numPairs; i++ {
		r, err := d.Bitwise(latch.OpAnd, uint64(i*2), uint64(i*2+1), SchemePreAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Done > latest {
			latest = r.Done
		}
	}
	if latest != sim.Time(25*sim.Microsecond) {
		t.Fatalf("wave of %d ANDs completed at %v, want 25µs (full parallelism)", numPairs, latest)
	}
}

// TestLocFreeBothOrientations is the regression test for the swapped
// MSB/LSB orientation: location-free sensing must fire whether the first
// operand is the MSB-resident page and the second the LSB-resident one or
// vice versa. The ParaBit two-input ops are commutative and the NOT latch
// sequences act on resident pages, so neither orientation needs the
// reallocation fallback.
func TestLocFreeBothOrientations(t *testing.T) {
	d := newDevice(t)
	// Paired writes stripe round-robin over the planes; keep writing pairs
	// until one lands on the same plane as the first, giving us an MSB page
	// (first pair) and an LSB page (later pair) co-resident on one plane in
	// different wordlines.
	firstL, firstM := randPage(d, 41), randPage(d, 42)
	if _, err := d.WriteOperandPair(0, 1, firstL, firstM, 0); err != nil {
		t.Fatal(err)
	}
	msbAddr, _ := d.FTL().Lookup(1)
	var lsbLPN uint64
	var lsbData []byte
	found := false
	for i := 1; i <= d.cfg.Geometry.Planes(); i++ {
		l, m := randPage(d, int64(100+2*i)), randPage(d, int64(101+2*i))
		lpnL, lpnM := uint64(2*i), uint64(2*i+1)
		if _, err := d.WriteOperandPair(lpnL, lpnM, l, m, 0); err != nil {
			t.Fatal(err)
		}
		addr, _ := d.FTL().Lookup(lpnL)
		if addr.PlaneAddr == msbAddr.PlaneAddr {
			lsbLPN, lsbData, found = lpnL, l, true
			break
		}
	}
	if !found {
		t.Fatal("no pair wrapped back onto the first pair's plane")
	}
	for _, op := range latch.BinaryOps {
		want := golden(op, lsbData, firstM)
		// Matched orientation: M is the MSB-resident page, N the LSB.
		r, err := d.Bitwise(op, 1, lsbLPN, SchemeLocFree, 0)
		if err != nil {
			t.Fatalf("%v matched: %v", op, err)
		}
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("%v matched orientation result wrong", op)
		}
		// Swapped orientation: first operand LSB-resident, second MSB.
		r, err = d.Bitwise(op, lsbLPN, 1, SchemeLocFree, 0)
		if err != nil {
			t.Fatalf("%v swapped: %v", op, err)
		}
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("%v swapped orientation result wrong", op)
		}
	}
	if s := d.Stats(); s.Fallbacks != 0 || s.Reallocations != 0 {
		t.Fatalf("mixed-kind same-plane operands must sense location-free both ways: %+v", s)
	}
}
