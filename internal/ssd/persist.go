package ssd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"parabit/internal/binio"
	"parabit/internal/flash"
	"parabit/internal/persist"
	"parabit/internal/sim"
)

// deviceSection tags the device-level part of a snapshot body.
const deviceSectionMagic = 0x31564453 // "SDV1"

// RecoveryInfo summarizes what Open did to bring a device back.
type RecoveryInfo struct {
	// Epoch is the snapshot epoch the mount started from.
	Epoch uint64
	// ReplayedRecords counts committed journal records re-executed on top
	// of the snapshot.
	ReplayedRecords int64
	// SkippedIntents counts journaled intents with no commit — operations
	// in flight at the crash that were never acknowledged.
	SkippedIntents int64
	// TornBytes is the length of the truncated torn journal tail.
	TornBytes int64
	// RecoveryTime is the simulated time the replayed operations took.
	RecoveryTime sim.Duration
}

// Create builds a fresh device (like New) backed by a new persistent
// store in dir: every acknowledged host write is journaled before it is
// acknowledged and the journal compacts into snapshots as it grows.
// dir must not already hold a store.
func Create(dir string, cfg Config, snapshotEvery int) (*Device, error) {
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	st, err := persist.Create(persist.Config{Dir: dir, SnapshotEvery: snapshotEvery}, d.writeSnapshot)
	if err != nil {
		return nil, err
	}
	d.store = st
	return d, nil
}

// Open remounts a persisted device from dir: it rebuilds the device
// from the current snapshot, replays the committed journal tail
// (re-executing each journaled write at simulated time zero, faults
// detached), audits the FTL's invariants, and rotates to a fresh epoch.
// A torn final journal record — the append a crash interrupted — is
// truncated, never fatal. Acknowledged writes come back byte-identical;
// unacknowledged ones stay unmapped and read back as explicit errors.
func Open(dir string, snapshotEvery int) (*Device, RecoveryInfo, error) {
	rec, err := persist.OpenDir(dir)
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	d, err := deviceFromSnapshot(rec.Snapshot())
	if err != nil {
		return nil, RecoveryInfo{}, err
	}
	info := RecoveryInfo{Epoch: rec.Epoch(), TornBytes: rec.TornBytes()}
	now := sim.Time(0)
	for _, e := range rec.Entries() {
		if !e.Committed {
			info.SkippedIntents++
			continue
		}
		done, aerr := d.applyRecord(e.Record, now)
		if aerr != nil {
			return nil, info, fmt.Errorf("%w: replay record %d (%s): %v",
				persist.ErrCorrupt, e.Record.Seq, e.Record.Op, aerr)
		}
		if done > now {
			now = done
		}
		info.ReplayedRecords++
	}
	if now < d.array.DrainTime() {
		now = d.array.DrainTime()
	}
	if err := d.ftl.CheckInvariants(); err != nil {
		return nil, info, fmt.Errorf("%w: post-replay audit: %v", persist.ErrCorrupt, err)
	}
	info.RecoveryTime = sim.Duration(now)
	// Recovery replay consumed simulated time on the array's resources;
	// a remounted device starts its service life idle at t=0.
	d.ResetTiming()
	st, err := rec.Resume(persist.Config{Dir: dir, SnapshotEvery: snapshotEvery},
		d.writeSnapshot, info.RecoveryTime)
	if err != nil {
		return nil, info, err
	}
	d.store = st
	return d, info, nil
}

// Close shuts a persistent device down cleanly: a final compaction
// snapshot (so the next Open replays nothing) and the journal handle
// released. After a power cut it releases the handle without writing —
// the on-disk state stays exactly as the crash left it. On a
// non-persistent device Close is a no-op. The caller must have drained
// in-flight commands (sched.Close does both).
func (d *Device) Close() error {
	if d.store == nil {
		return nil
	}
	return d.store.Close(d.writeSnapshot)
}

// Crash abandons the persistence store without a final snapshot: the
// on-disk journal stays exactly as the last acknowledged append left
// it, as if the process died. A later Open recovers from that state.
// No-op for in-memory devices.
func (d *Device) Crash() {
	if d.store != nil {
		d.store.Abandon()
	}
}

// Persistent reports whether the device is backed by an on-disk store.
func (d *Device) Persistent() bool { return d.store != nil }

// PersistStats returns the persistence counters and whether the device
// is persistent at all.
func (d *Device) PersistStats() (persist.Stats, bool) {
	if d.store == nil {
		return persist.Stats{}, false
	}
	return d.store.Stats(), true
}

// SetFaultInjector installs a structural-fault injector on the flash
// array and, when the device is persistent and the injector also
// decides power cuts, wires it into the journal's boundary hooks so a
// single dead-device state governs both sides. nil detaches both.
func (d *Device) SetFaultInjector(fi flash.FaultInjector) {
	d.array.SetFaultInjector(fi)
	if d.store == nil {
		return
	}
	if ci, ok := fi.(persist.CutInjector); ok {
		d.store.SetCutInjector(ci)
	} else {
		d.store.SetCutInjector(nil)
	}
}

// journaled runs one host write under the write-ahead protocol: intent
// append, execution, commit append, then (maybe) a compaction snapshot.
// The operation is acknowledged — journaled returns nil — only after
// the commit record is durable, which is exactly the set of operations
// mount-time replay reapplies. A power cut during the compaction
// snapshot does not fail the (already durable) write.
func (d *Device) journaled(op persist.Op, plane int64, lpns []uint64, pages [][]byte,
	fn func() (sim.Time, error)) (sim.Time, error) {
	if d.store == nil {
		return fn()
	}
	seq, err := d.store.AppendIntent(persist.Record{Op: op, Plane: plane, LPNs: lpns, Pages: pages})
	if err != nil {
		return 0, err
	}
	done, err := fn()
	if err != nil {
		return 0, err
	}
	if err := d.store.AppendCommit(seq); err != nil {
		return 0, err
	}
	if err := d.maybeSnapshot(); err != nil {
		return 0, err
	}
	return done, nil
}

// maybeSnapshot compacts the journal once it crosses the configured
// length. ErrPowerCut is swallowed: the triggering write is already
// durable, and the death is observed by whatever runs next.
func (d *Device) maybeSnapshot() error {
	if !d.store.ShouldSnapshot() {
		return nil
	}
	if err := d.store.Snapshot(d.writeSnapshot); err != nil && !errors.Is(err, persist.ErrPowerCut) {
		return err
	}
	return nil
}

// applyRecord re-executes one committed journal record during replay.
// Record shapes were validated at decode time; everything deeper (LPN
// ranges, page sizes, geometry fits) re-runs the same checks the
// original execution passed, so any failure here means the journal does
// not describe this device.
func (d *Device) applyRecord(rec persist.Record, at sim.Time) (sim.Time, error) {
	switch rec.Op {
	case persist.OpWrite:
		return d.writeCore(rec.LPNs[0], rec.Pages[0], at)
	case persist.OpWriteOperand:
		return d.writeOperandCore(rec.LPNs[0], rec.Pages[0], at)
	case persist.OpWritePair:
		return d.writeOperandPairCore(rec.LPNs[0], rec.LPNs[1], rec.Pages[0], rec.Pages[1], at)
	case persist.OpWriteLSBPair:
		return d.writeOperandLSBAlignedCore(rec.LPNs[0], rec.LPNs[1], rec.Pages[0], rec.Pages[1], at)
	case persist.OpWriteLSBGroup:
		return d.writeOperandLSBGroupCore(rec.LPNs, rec.Pages, at)
	case persist.OpWriteMWSGroup:
		return d.writeOperandMWSGroupCore(rec.LPNs, rec.Pages, at)
	case persist.OpWriteOnPlane:
		return d.writeOperandOnPlaneCore(int(rec.Plane), rec.LPNs[0], rec.Pages[0], at)
	case persist.OpWriteTriple:
		return d.writeOperandTripleCore(
			[3]uint64{rec.LPNs[0], rec.LPNs[1], rec.LPNs[2]},
			[3][]byte{rec.Pages[0], rec.Pages[1], rec.Pages[2]}, at)
	case persist.OpReclaimInternal:
		d.reclaimInternalCore()
		return at, nil
	}
	return 0, fmt.Errorf("ssd: unknown journal op %d", rec.Op)
}

// writeSnapshot serializes the complete device state: the configuration
// (so Open needs no out-of-band config), the flash array contents, the
// FTL translation state, and the controller's own bookkeeping.
func (d *Device) writeSnapshot(w io.Writer) error {
	cfgJSON, err := json.Marshal(d.cfg)
	if err != nil {
		return fmt.Errorf("ssd: marshal config: %w", err)
	}
	b := binio.NewWriter(w)
	b.Bytes(cfgJSON)
	if err := b.Err(); err != nil {
		return err
	}
	if err := d.array.WriteState(w); err != nil {
		return err
	}
	if err := d.ftl.WriteState(w); err != nil {
		return err
	}
	b.U32(deviceSectionMagic)
	b.U64(d.nextInternal)
	plains := make([]uint64, 0, len(d.plain))
	for lpn := range d.plain {
		plains = append(plains, lpn)
	}
	sort.Slice(plains, func(i, j int) bool { return plains[i] < plains[j] })
	b.U64(uint64(len(plains)))
	for _, lpn := range plains {
		b.U64(lpn)
	}
	for _, v := range []int64{
		d.stats.BitwiseOps, d.stats.Reallocations, d.stats.ReallocPages,
		d.stats.Fallbacks, d.stats.ResultBytes, d.stats.DescrambledOps,
	} {
		b.I64(v)
	}
	return b.Err()
}

// deviceFromSnapshot rebuilds a device from a verified snapshot body.
func deviceFromSnapshot(body []byte) (*Device, error) {
	r := bytes.NewReader(body)
	b := binio.NewReader(r, 1<<24)
	cfgJSON := b.Bytes()
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: config header: %v", persist.ErrCorrupt, err)
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return nil, fmt.Errorf("%w: config: %v", persist.ErrCorrupt, err)
	}
	d, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: config: %v", persist.ErrCorrupt, err)
	}
	if err := d.array.ReadState(r); err != nil {
		return nil, fmt.Errorf("%w: array: %v", persist.ErrCorrupt, err)
	}
	if err := d.ftl.ReadState(r); err != nil {
		return nil, fmt.Errorf("%w: ftl: %v", persist.ErrCorrupt, err)
	}
	if m := b.U32(); b.Err() != nil || m != deviceSectionMagic {
		return nil, fmt.Errorf("%w: device section magic", persist.ErrCorrupt)
	}
	logical := uint64(d.ftl.LogicalPages())
	next := b.U64()
	if b.Err() == nil && (next >= logical || next+1 < d.lowInternal) {
		return nil, fmt.Errorf("%w: internal cursor %d", persist.ErrCorrupt, next)
	}
	n := b.U64()
	if b.Err() != nil {
		return nil, fmt.Errorf("%w: device section: %v", persist.ErrCorrupt, b.Err())
	}
	if n > logical {
		return nil, fmt.Errorf("%w: %d plain entries", persist.ErrCorrupt, n)
	}
	plain := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		lpn := b.U64()
		if b.Err() != nil {
			return nil, fmt.Errorf("%w: device section: %v", persist.ErrCorrupt, b.Err())
		}
		if lpn >= logical {
			return nil, fmt.Errorf("%w: plain lpn %d", persist.ErrCorrupt, lpn)
		}
		plain[lpn] = true
	}
	var st OpStats
	for _, p := range []*int64{
		&st.BitwiseOps, &st.Reallocations, &st.ReallocPages,
		&st.Fallbacks, &st.ResultBytes, &st.DescrambledOps,
	} {
		*p = b.I64()
	}
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("%w: device section: %v", persist.ErrCorrupt, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", persist.ErrCorrupt, r.Len())
	}
	d.nextInternal = next
	d.plain = plain
	d.stats = st
	return d, nil
}
