package ssd

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/plan"
	"parabit/internal/sim"
)

// Query-planner timing constants. Planning is controller firmware walking
// a small tree; a cache hit is one page fetched from controller DRAM.
// Both are orders of magnitude below a 25 µs sense, which is the point:
// a hit removes flash work entirely, and planning overhead must not eat
// the fusion win.
const (
	// planStepCost is the modeled firmware time to plan one step.
	planStepCost = 300 * sim.Nanosecond
	// cacheFetchCost is the modeled DRAM fetch of one cached result page.
	cacheFetchCost = 2 * sim.Microsecond
)

// QueryStats counts query-planner activity.
type QueryStats struct {
	// Queries executed, plan steps run, and how many of those steps were
	// fused chains (with the operands they covered).
	Queries       int64
	PlanSteps     int64
	FusedChains   int64
	FusedOperands int64
	// NVMeRoundTrips counts queries that travelled the §4.3.1 command
	// encoding (wire-expressible shapes).
	NVMeRoundTrips int64
	// Cache is the controller-DRAM result cache's counters.
	Cache plan.CacheStats
}

// QueryStats returns a snapshot of planner counters.
func (d *Device) QueryStats() QueryStats {
	st := d.qstats
	if d.qcache != nil {
		st.Cache = d.qcache.Stats()
	}
	return st
}

// ExecuteQuery plans and runs a bitmap-query expression (§4.2's chained
// operations generalized to whole expression trees):
//
//  1. Wire-expressible queries ride the §4.3.1 NVMe Formula encoding —
//     encode, device-side parse, lift back — so the executed query is the
//     one that survived the command round-trip.
//  2. The plan compiler flattens and fuses associative chains into
//     validated latch control programs and shares structurally equal
//     sub-queries (internal/plan).
//  3. Steps execute in dependency order. Fused steps over flash-resident
//     operands run as chained reductions; buffered intermediates fold via
//     the reallocation path. Each non-trivial step result lands in the
//     controller-DRAM cache, priced by its measured recompute time, and
//     later queries reuse it while the FTL mapping versions of every
//     operand it depends on are unchanged.
//
// The result is bit-exact with the software evaluation of the expression
// over current page contents.
func (d *Device) ExecuteQuery(e *plan.Expr, scheme Scheme, at sim.Time) (BitwiseResult, error) {
	if e == nil {
		return BitwiseResult{}, fmt.Errorf("ssd: nil query expression")
	}
	norm, err := plan.Normalize(e)
	if err != nil {
		return BitwiseResult{}, err
	}
	if wired, ok, err := plan.RoundTrip(norm, d.PageSize()); err != nil {
		return BitwiseResult{}, err
	} else if ok {
		d.qstats.NVMeRoundTrips++
		d.tele.cQRoundTrip.Add(1)
		norm = wired
	}
	p, err := plan.Compile(norm)
	if err != nil {
		return BitwiseResult{}, err
	}
	d.qstats.Queries++
	d.qstats.PlanSteps += int64(len(p.Steps))
	d.qstats.FusedChains += int64(p.FusedChains)
	d.qstats.FusedOperands += int64(p.FusedOperands)
	d.tele.cQPlans.Add(1)
	d.tele.cQSteps.Add(int64(len(p.Steps)))
	d.tele.cQFused.Add(int64(p.FusedChains))

	// Planning runs in controller firmware before any flash work issues.
	start := at.Add(sim.Duration(len(p.Steps)) * planStepCost)
	if d.tele.sink != nil {
		d.tele.qTrack.Span("plan", at, start)
	}

	results := make([]BitwiseResult, len(p.Steps))
	for i, st := range p.Steps {
		r, err := d.execStep(p, results, st, scheme, start)
		if err != nil {
			return BitwiseResult{}, fmt.Errorf("ssd: query step %d (%s %s): %w", i, st.Kind, st.Key, err)
		}
		results[i] = r
	}
	return results[p.Root()], nil
}

// execStep runs one plan step, consulting and feeding the result cache.
func (d *Device) execStep(p *plan.Plan, results []BitwiseResult, st plan.Step, scheme Scheme, at sim.Time) (BitwiseResult, error) {
	cacheable := d.qcache != nil && st.Kind != plan.StepRead
	if cacheable {
		if data, ok := d.qcache.Get(st.Key, d.ftl.Version); ok {
			d.tele.cQCacheHit.Add(1)
			if d.tele.sink != nil {
				d.tele.qTrack.Instant("cache-hit", at)
			}
			return BitwiseResult{Data: data, Done: at.Add(cacheFetchCost)}, nil
		}
		d.tele.cQCacheMiss.Add(1)
	}
	r, err := d.computeStep(results, st, scheme, at)
	if err != nil {
		return BitwiseResult{}, err
	}
	if cacheable {
		before := d.qcache.Stats().Evictions
		d.qcache.Put(st.Key, r.Data, st.Leaves, d.ftl.Version, r.Done.Sub(at).Seconds())
		if evicted := d.qcache.Stats().Evictions - before; evicted > 0 {
			d.tele.cQCacheEvict.Add(evicted)
			if d.tele.sink != nil {
				d.tele.qTrack.Instant("cache-evict", r.Done)
			}
		}
	}
	return r, nil
}

// computeStep executes one step on the flash path.
func (d *Device) computeStep(results []BitwiseResult, st plan.Step, scheme Scheme, at sim.Time) (BitwiseResult, error) {
	argOf := func(r plan.Ref) BitwiseResult { return results[r.Step] }
	switch st.Kind {
	case plan.StepRead:
		data, done, err := d.Read(st.Args[0].LPN, at)
		if err != nil {
			return BitwiseResult{}, err
		}
		return BitwiseResult{Data: data, Done: done}, nil

	case plan.StepNot:
		a := st.Args[0]
		if a.Leaf {
			return d.Bitwise(latch.OpNotLSB, a.LPN, a.LPN, scheme, at)
		}
		buf := argOf(a)
		return d.senseAfterReallocBuffered(latch.OpNotLSB, buf.Data, buf.Done, -1, buf.Data, buf.Done, at)

	case plan.StepOp:
		a, b := st.Args[0], st.Args[1]
		switch {
		case a.Leaf && b.Leaf:
			return d.Bitwise(st.Op, a.LPN, b.LPN, scheme, at)
		case a.Leaf:
			// The ops are commutative: fold the buffered side first.
			buf := argOf(b)
			return d.senseAfterReallocBuffered(st.Op, buf.Data, buf.Done, int64(a.LPN), nil, 0, at)
		case b.Leaf:
			buf := argOf(a)
			return d.senseAfterReallocBuffered(st.Op, buf.Data, buf.Done, int64(b.LPN), nil, 0, at)
		default:
			ra, rb := argOf(a), argOf(b)
			return d.senseAfterReallocBuffered(st.Op, ra.Data, ra.Done, -1, rb.Data, rb.Done, at)
		}

	case plan.StepFused:
		var leaves []uint64
		var bufs []BitwiseResult
		for _, r := range st.Args {
			if r.Leaf {
				leaves = append(leaves, r.LPN)
			} else {
				bufs = append(bufs, argOf(r))
			}
		}
		var acc BitwiseResult
		haveAcc := false
		if len(leaves) >= 2 {
			// The fused chain proper: flash-resident operands fold in one
			// chained operation (SchemeLocFree) or the scheme's chained
			// reduction.
			r, err := d.Reduce(st.Op, leaves, scheme, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			if d.tele.sink != nil {
				d.tele.qTrack.Span("fuse/"+st.Op.String(), at, r.Done)
			}
			acc, haveAcc = r, true
			leaves = nil
		}
		for _, buf := range bufs {
			if !haveAcc {
				acc, haveAcc = buf, true
				continue
			}
			r, err := d.senseAfterReallocBuffered(st.Op, acc.Data, acc.Done, -1, buf.Data, buf.Done, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			acc = r
		}
		for _, lpn := range leaves {
			// At most one flash-resident operand remains here (a lone leaf
			// among buffered intermediates).
			r, err := d.senseAfterReallocBuffered(st.Op, acc.Data, acc.Done, int64(lpn), nil, 0, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			acc = r
		}
		return acc, nil
	}
	return BitwiseResult{}, fmt.Errorf("ssd: unknown plan step kind %v", st.Kind)
}
