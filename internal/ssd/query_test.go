package ssd

import (
	"bytes"
	"fmt"
	"testing"

	"parabit/internal/faults"
	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/plan"
	"parabit/internal/sim"
)

// refEval evaluates an expression against a test-side content map — the
// software reference every query result must match bit-exactly.
func refEval(t *testing.T, e *plan.Expr, content map[uint64][]byte) []byte {
	t.Helper()
	out, err := e.Eval(func(lpn uint64) ([]byte, error) {
		p, ok := content[lpn]
		if !ok {
			return nil, fmt.Errorf("no reference content for lpn %d", lpn)
		}
		return p, nil
	})
	if err != nil {
		t.Fatalf("reference eval: %v", err)
	}
	return out
}

func mustParse(t *testing.T, s string) *plan.Expr {
	t.Helper()
	e, err := plan.Parse(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return e
}

func TestQueryMatchesSoftwareReference(t *testing.T) {
	d := newDevice(t)
	content := map[uint64][]byte{}
	for lpn := uint64(1); lpn <= 8; lpn++ {
		content[lpn] = randPage(d, int64(1000+lpn))
		if _, err := d.WriteOperand(lpn, content[lpn], 0); err != nil {
			t.Fatal(err)
		}
	}
	queries := []string{
		"1 & 2",
		"1 & 2 & 3 & 4",
		"(1 | 2) ^ (3 & 4)",
		"!(1 ^ 2) | (5 ~& 6)",
		"(1 ~| 7) ~^ (2 & 8)",
		"((1 & 2 & 3 & 4 & 5 & 6 & 7) | 8) ^ 2",
		"1 | 2 | 3 | 4 | 5",
		"1 ^ 2 ^ 3",
	}
	for _, scheme := range Schemes {
		for _, q := range queries {
			e := mustParse(t, q)
			res, err := d.ExecuteQuery(e, scheme, 0)
			if err != nil {
				t.Fatalf("%v %q: %v", scheme, q, err)
			}
			if !bytes.Equal(res.Data, refEval(t, e, content)) {
				t.Errorf("%v %q: result differs from software reference", scheme, q)
			}
		}
	}
	st := d.QueryStats()
	if st.Queries != int64(len(Schemes)*len(queries)) {
		t.Errorf("Queries = %d, want %d", st.Queries, len(Schemes)*len(queries))
	}
	if st.FusedChains == 0 {
		t.Error("no fused chains across chained queries")
	}
	if st.NVMeRoundTrips == 0 {
		t.Error("no query travelled the NVMe encoding")
	}
}

func TestQueryLeafIsARead(t *testing.T) {
	d := newDevice(t)
	page := randPage(d, 42)
	if _, err := d.WriteOperand(5, page, 0); err != nil {
		t.Fatal(err)
	}
	res, err := d.ExecuteQuery(plan.Leaf(5), SchemeLocFree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, page) {
		t.Fatal("leaf query is not a plain read")
	}
	// Plain reads must not occupy the result cache.
	if st := d.QueryStats(); st.Cache.Entries != 0 {
		t.Errorf("cache entries = %d after a leaf query", st.Cache.Entries)
	}
}

func TestQueryCacheHitIsFasterAndExact(t *testing.T) {
	d := newDevice(t)
	content := map[uint64][]byte{}
	for lpn := uint64(1); lpn <= 3; lpn++ {
		content[lpn] = randPage(d, int64(lpn))
		if _, err := d.WriteOperand(lpn, content[lpn], 0); err != nil {
			t.Fatal(err)
		}
	}
	e := mustParse(t, "1 & 2 & 3")
	first, err := d.ExecuteQuery(e, SchemeReAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := d.ExecuteQuery(e, SchemeReAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Data, second.Data) || !bytes.Equal(first.Data, refEval(t, e, content)) {
		t.Fatal("cached result differs from reference")
	}
	st := d.QueryStats()
	if st.Cache.Hits == 0 {
		t.Fatal("second identical query did not hit the cache")
	}
	if second.Done >= first.Done {
		t.Errorf("cache hit not faster: first %v, second %v", first.Done, second.Done)
	}
}

func TestQueryCacheInvalidatedOnOverwrite(t *testing.T) {
	d := newDevice(t)
	content := map[uint64][]byte{}
	for lpn := uint64(1); lpn <= 3; lpn++ {
		content[lpn] = randPage(d, int64(10+lpn))
		if _, err := d.WriteOperand(lpn, content[lpn], 0); err != nil {
			t.Fatal(err)
		}
	}
	e := mustParse(t, "(1 & 2) | 3")
	if _, err := d.ExecuteQuery(e, SchemeReAlloc, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite one operand: every cached intermediate depending on it
	// must die, and the re-run must see the new bytes.
	content[2] = randPage(d, 999)
	if _, err := d.WriteOperand(2, content[2], 0); err != nil {
		t.Fatal(err)
	}
	res, err := d.ExecuteQuery(e, SchemeReAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, refEval(t, e, content)) {
		t.Fatal("query served a stale intermediate after operand overwrite")
	}
	if st := d.QueryStats(); st.Cache.Invalidations == 0 {
		t.Error("overwrite did not invalidate any cache entry")
	}
}

// tinyConfig is a 2-plane, 8-block device small enough to fill a plane
// with a handful of writes, so tests can trigger garbage collection at a
// chosen instant.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: 2,
		BlocksPerPlane: 8, WordlinesPerBlock: 4, PageSize: 64, CellBits: 2,
	}
	return cfg
}

// fillPlaneForGC arranges the given plane so that the next block-opening
// write there runs garbage collection with the block holding victimLPNs
// as the victim: the victims' block also gets two filler pages that are
// then overwritten (leaving it the least-valid full block), and further
// fillers eat free blocks down to the GC threshold. Returns the content
// written for the victim LPNs and the advanced sim time.
func fillPlaneForGC(t *testing.T, d *Device, planeIdx int, victimLPNs []uint64, content map[uint64][]byte) sim.Time {
	t.Helper()
	at := sim.Time(0)
	write := func(lpn uint64, seed int64) {
		t.Helper()
		page := randPage(d, seed)
		done, err := d.WriteOperandOnPlane(planeIdx, lpn, page, at)
		if err != nil {
			t.Fatalf("fill write lpn %d: %v", lpn, err)
		}
		content[lpn] = page
		at = done
	}
	for i, lpn := range victimLPNs {
		write(lpn, int64(3000+i))
	}
	// Finish the victims' block with fillers, then overwrite them so the
	// block becomes the least-valid GC victim.
	filler := uint64(40)
	seed := int64(4000)
	wpb := d.cfg.Geometry.WordlinesPerBlock
	for i := len(victimLPNs); i < wpb; i++ {
		write(filler, seed)
		filler++
		seed++
	}
	for f := uint64(40); f < filler; f++ {
		write(f, seed)
		seed++
	}
	// Each operand write consumes one wordline. Fill with distinct live
	// pages until exactly GCFreeBlockLow free blocks remain and the
	// active block just closed; the next block-opening write on this
	// plane then collects, with the victims' block (least valid) as
	// victim.
	geo := d.cfg.Geometry
	total := (geo.BlocksPerPlane - d.cfg.FTL.GCFreeBlockLow) * wpb
	written := wpb + (wpb - len(victimLPNs)) // victims' block + the overwrites
	for ; written < total; written++ {
		write(filler, seed)
		filler++
		seed++
	}
	return at
}

func TestQueryCacheInvalidatedByGC(t *testing.T) {
	d, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	content := map[uint64][]byte{}
	at := fillPlaneForGC(t, d, 1, []uint64{10, 11}, content)

	e := mustParse(t, "10 & 11")
	if _, err := d.ExecuteQuery(e, SchemeLocFree, at); err != nil {
		t.Fatal(err)
	}
	before := d.FTL().Stats().GCRuns
	addrBefore, _ := d.FTL().Lookup(10)
	// One more write on the full plane opens a block and must collect —
	// with the operands' block as victim, migrating them and erasing it.
	page := randPage(d, 7777)
	done, err := d.WriteOperandOnPlane(1, 90, page, at)
	if err != nil {
		t.Fatal(err)
	}
	content[90] = page
	if d.FTL().Stats().GCRuns == before {
		t.Fatal("trigger write did not run GC; the fill arithmetic is off")
	}
	if addrAfter, _ := d.FTL().Lookup(10); addrAfter == addrBefore {
		t.Fatal("GC did not migrate the cached query's operand")
	}
	res, err := d.ExecuteQuery(e, SchemeLocFree, done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, refEval(t, e, content)) {
		t.Fatal("query served a stale intermediate after GC migration")
	}
	if st := d.QueryStats(); st.Cache.Invalidations == 0 {
		t.Error("GC migration did not invalidate the cached intermediate")
	}
}

func TestQueryCacheInvalidatedByProgramFaultRetirement(t *testing.T) {
	d := newDevice(t)
	geo := d.cfg.Geometry
	content := map[uint64][]byte{}
	for lpn := uint64(1); lpn <= 2; lpn++ {
		content[lpn] = randPage(d, int64(20+lpn))
		if _, err := d.WriteOperandOnPlane(0, lpn, content[lpn], 0); err != nil {
			t.Fatal(err)
		}
	}
	e := mustParse(t, "1 & 2")
	if _, err := d.ExecuteQuery(e, SchemeLocFree, 0); err != nil {
		t.Fatal(err)
	}
	// Arm a stuck block over the operands' (still active) block: the next
	// program there fails, the FTL retires the block and migrates the
	// operands, and the cached intermediate must not survive that.
	addr, ok := d.FTL().Lookup(1)
	if !ok {
		t.Fatal("operand 1 unmapped")
	}
	eng, err := faults.NewEngine(faults.Plan{Rules: []faults.Rule{{
		Type:  faults.RuleStuckBlock,
		Plane: geo.PlaneIndex(addr.PlaneAddr),
		Block: addr.Block,
	}}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	d.Array().SetFaultInjector(eng)
	page := randPage(d, 31)
	done, err := d.WriteOperandOnPlane(0, 3, page, 0)
	if err != nil {
		t.Fatalf("re-steered write failed: %v", err)
	}
	content[3] = page
	d.Array().SetFaultInjector(nil)
	if d.FTL().Stats().BlocksRetired == 0 {
		t.Fatal("stuck block was not retired; fault did not fire")
	}
	res, err := d.ExecuteQuery(e, SchemeLocFree, done)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, refEval(t, e, content)) {
		t.Fatal("query served a stale intermediate after block retirement")
	}
	if st := d.QueryStats(); st.Cache.Invalidations == 0 {
		t.Error("retirement migration did not invalidate the cached intermediate")
	}
}

// TestReduceLocFreeGCMidReduce is the regression test for folding stale
// wordline addresses: the parking write between two plane runs triggers
// garbage collection that migrates the second run's operands and erases
// their block. The reduction must re-resolve layouts after parking; the
// pre-fix code chained the pre-migration addresses and sensed erased
// cells.
func TestReduceLocFreeGCMidReduce(t *testing.T) {
	d, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	content := map[uint64][]byte{}
	// Run 1 on plane 0.
	for i, lpn := range []uint64{1, 2} {
		page := randPage(d, int64(100+i))
		if _, err := d.WriteOperandOnPlane(0, lpn, page, 0); err != nil {
			t.Fatal(err)
		}
		content[lpn] = page
	}
	// Run 2 on plane 1, with the plane primed so the parking write's
	// block allocation collects the operands' block.
	at := fillPlaneForGC(t, d, 1, []uint64{10, 11}, content)

	before := d.FTL().Stats().GCRuns
	res, err := d.Reduce(latch.OpAnd, []uint64{1, 2, 10, 11}, SchemeLocFree, at)
	if err != nil {
		t.Fatal(err)
	}
	if d.FTL().Stats().GCRuns == before {
		t.Fatal("reduce did not trigger GC; the regression scenario did not arm")
	}
	want := make([]byte, d.PageSize())
	for i := range want {
		want[i] = content[1][i] & content[2][i] & content[10][i] & content[11][i]
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("reduce folded stale wordline addresses after mid-reduce GC")
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReduceLocFreeRetirementMidReduce drives the same re-resolution path
// through the fault layer: a stuck block makes the parking write itself
// fail, retiring the active block that holds the second run's operands.
func TestReduceLocFreeRetirementMidReduce(t *testing.T) {
	d := newDevice(t)
	geo := d.cfg.Geometry
	content := map[uint64][]byte{}
	for i, lpn := range []uint64{1, 2} {
		page := randPage(d, int64(200+i))
		if _, err := d.WriteOperandOnPlane(0, lpn, page, 0); err != nil {
			t.Fatal(err)
		}
		content[lpn] = page
	}
	for i, lpn := range []uint64{10, 11} {
		page := randPage(d, int64(300+i))
		if _, err := d.WriteOperandOnPlane(1, lpn, page, 0); err != nil {
			t.Fatal(err)
		}
		content[lpn] = page
	}
	// The parking write between runs targets plane 1's active block —
	// the block still holding operands 10 and 11. Making it stuck fails
	// that write, retires the block, and migrates the operands while the
	// reduction is mid-flight.
	addr, ok := d.FTL().Lookup(10)
	if !ok {
		t.Fatal("operand 10 unmapped")
	}
	eng, err := faults.NewEngine(faults.Plan{Rules: []faults.Rule{{
		Type:  faults.RuleStuckBlock,
		Plane: geo.PlaneIndex(addr.PlaneAddr),
		Block: addr.Block,
	}}}, geo)
	if err != nil {
		t.Fatal(err)
	}
	d.Array().SetFaultInjector(eng)
	defer d.Array().SetFaultInjector(nil)

	res, err := d.Reduce(latch.OpAnd, []uint64{1, 2, 10, 11}, SchemeLocFree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.FTL().Stats().BlocksRetired == 0 {
		t.Fatal("parking write did not retire the stuck block")
	}
	want := make([]byte, d.PageSize())
	for i := range want {
		want[i] = content[1][i] & content[2][i] & content[10][i] & content[11][i]
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("reduce folded stale wordline addresses after mid-reduce retirement")
	}
	if err := d.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
