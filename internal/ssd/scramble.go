package ssd

// The data scrambler. Real SSDs whiten data before programming to avoid
// worst-case cell patterns; §4.3.2 notes this complicates ParaBit, whose
// latching-circuit operations see raw cell contents. The firmware
// therefore disables scrambling when operands are allocated or
// reallocated and re-applies it when results are restored to normal
// storage. This file models a per-page keystream scrambler so the device
// can demonstrate exactly that behaviour (and tests can show the garbage
// ParaBit would compute on scrambled operands).

// scrambleKeystream XORs data in place with a keystream derived from the
// logical page number. XOR is an involution, so the same call descrambles.
func scrambleKeystream(lpn uint64, data []byte) {
	// SplitMix64-style stream seeded by the LPN; one 64-bit word per
	// 8 bytes keeps it cheap and reproducible.
	state := lpn*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for i := 0; i < len(data); i += 8 {
		state += 0x9E3779B97F4A7C15
		z := state
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		for j := 0; j < 8 && i+j < len(data); j++ {
			data[i+j] ^= byte(z >> (8 * j))
		}
	}
}
