package ssd

import (
	"fmt"

	"parabit/internal/flash"
	"parabit/internal/ftl"
	"parabit/internal/latch"
	"parabit/internal/nvme"
	"parabit/internal/sim"
)

// BitwiseResult is the outcome of an in-SSD bitwise operation: the result
// page in the controller buffer, when it became available, and when it
// finished crossing the host link (if requested).
type BitwiseResult struct {
	Data []byte
	// ResultLPN is where the result was persisted when the caller asked
	// for a stored result (chained operations); 0 when not stored.
	ResultLPN uint64
	Stored    bool
	Done      sim.Time // result in controller buffer
	HostDone  sim.Time // result delivered to host (0 if not shipped)
}

// operandLoc resolves an operand's physical placement.
func (d *Device) operandLoc(lpn uint64) (flash.PageAddr, error) {
	addr, ok := d.ftl.Lookup(lpn)
	if !ok {
		return flash.PageAddr{}, fmt.Errorf("ssd: operand %d: %w", lpn, ftl.ErrUnmapped)
	}
	return addr, nil
}

// coLocated reports whether two operands share a wordline as LSB/MSB.
func coLocated(a, b flash.PageAddr) bool {
	return a.WordlineAddr == b.WordlineAddr && a.Kind != b.Kind
}

// lsbAligned reports whether two operands are LSB pages on one plane.
func lsbAligned(a, b flash.PageAddr) bool {
	return a.PlaneAddr == b.PlaneAddr &&
		a.Kind == flash.LSBPage && b.Kind == flash.LSBPage &&
		a.WordlineAddr != b.WordlineAddr
}

// reallocate implements the Operands ReAllocation module (§4.3.2): read
// both operands into the controller buffer (descrambling as needed) and
// program them, unscrambled, into the LSB and MSB pages of one fresh
// wordline. Returns the wordline, the data, and the completion time.
func (d *Device) reallocate(lpnM, lpnN uint64, at sim.Time) (flash.WordlineAddr, []byte, []byte, sim.Time, error) {
	dataM, doneM, err := d.readOperand(lpnM, at)
	if err != nil {
		return flash.WordlineAddr{}, nil, nil, 0, err
	}
	dataN, doneN, err := d.readOperand(lpnN, at)
	if err != nil {
		return flash.WordlineAddr{}, nil, nil, 0, err
	}
	ready := sim.Max(doneM, doneN)
	newM, err := d.allocInternal()
	if err != nil {
		return flash.WordlineAddr{}, nil, nil, 0, err
	}
	newN, err := d.allocInternal()
	if err != nil {
		return flash.WordlineAddr{}, nil, nil, 0, err
	}
	wl, done, err := d.ftl.WritePairedRelocation(newM, newN, dataM, dataN, ready)
	if err != nil {
		return flash.WordlineAddr{}, nil, nil, 0, err
	}
	d.plain[newM] = true
	d.plain[newN] = true
	d.stats.Reallocations++
	d.stats.ReallocPages += 2
	d.tele.cRealloc.Add(1)
	d.tele.cReallocPg.Add(2)
	return wl, dataM, dataN, done, nil
}

// Bitwise executes one two-operand operation under the given scheme. The
// first operand plays the paper's M (LSB or MSB depending on layout), the
// second N. The result stays in the controller buffer.
func (d *Device) Bitwise(op latch.Op, lpnM, lpnN uint64, scheme Scheme, at sim.Time) (BitwiseResult, error) {
	addrM, err := d.operandLoc(lpnM)
	if err != nil {
		return BitwiseResult{}, err
	}
	addrN, err := d.operandLoc(lpnN)
	if err != nil {
		return BitwiseResult{}, err
	}
	switch scheme {
	case SchemePreAlloc:
		if coLocated(addrM, addrN) {
			return d.senseCoLocated(op, addrM, addrN, at)
		}
		// Pre-allocation missed (operands arrived unpaired): fall back to
		// reallocation, as the controller must.
		d.stats.Fallbacks++
		d.noteFallback(SchemePreAlloc)
		return d.senseAfterRealloc(op, lpnM, lpnN, at)
	case SchemeReAlloc:
		return d.senseAfterRealloc(op, lpnM, lpnN, at)
	case SchemeLocFree:
		if lsbAligned(addrM, addrN) {
			res, err := d.array.BitwiseSenseLocFreeLSB(op, addrM.WordlineAddr, addrN.WordlineAddr, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			d.stats.BitwiseOps++
			d.noteOp(op, SchemeLocFree, at, res.Ready)
			return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
		}
		if addrM.Kind == flash.MSBPage && addrN.Kind == flash.LSBPage &&
			addrM.PlaneAddr == addrN.PlaneAddr {
			res, err := d.array.BitwiseSenseLocFree(op, addrM.WordlineAddr, addrN.WordlineAddr, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			d.stats.BitwiseOps++
			d.noteOp(op, SchemeLocFree, at, res.Ready)
			return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
		}
		if addrM.Kind == flash.LSBPage && addrN.Kind == flash.MSBPage &&
			addrM.PlaneAddr == addrN.PlaneAddr {
			// Swapped orientation: the sense primitive always pulls the MSB
			// from its first wordline and the LSB from its second, so feed
			// it the wordlines exchanged. The op passes through unchanged:
			// the latch sequences act on resident pages (OpNotLSB inverts
			// whatever sits in an LSB slot — here the first operand), and
			// the two-input ops are commutative, so no fallback to
			// reallocation is needed.
			res, err := d.array.BitwiseSenseLocFree(op, addrN.WordlineAddr, addrM.WordlineAddr, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			d.stats.BitwiseOps++
			d.noteOp(op, SchemeLocFree, at, res.Ready)
			return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
		}
		d.stats.Fallbacks++
		d.noteFallback(SchemeLocFree)
		return d.senseAfterRealloc(op, lpnM, lpnN, at)
	case SchemeFlashCosmos:
		return d.bitwiseFlashCosmos(op, lpnM, lpnN, addrM, addrN, at)
	}
	return BitwiseResult{}, fmt.Errorf("ssd: unknown scheme %v", scheme)
}

// senseCoLocated runs the basic ParaBit sense on a shared wordline. The
// operand stored in the LSB page is the operation's first input.
func (d *Device) senseCoLocated(op latch.Op, a, b flash.PageAddr, at sim.Time) (BitwiseResult, error) {
	res, err := d.array.BitwiseSense(op, a.WordlineAddr, at)
	if err != nil {
		return BitwiseResult{}, err
	}
	d.stats.BitwiseOps++
	d.noteOp(op, SchemePreAlloc, at, res.Ready)
	return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
}

// senseAfterRealloc reallocates then senses.
func (d *Device) senseAfterRealloc(op latch.Op, lpnM, lpnN uint64, at sim.Time) (BitwiseResult, error) {
	wl, _, _, done, err := d.reallocate(lpnM, lpnN, at)
	if err != nil {
		return BitwiseResult{}, err
	}
	res, err := d.array.BitwiseSense(op, wl, done)
	if err != nil {
		return BitwiseResult{}, err
	}
	d.stats.BitwiseOps++
	d.noteOp(op, SchemeReAlloc, at, res.Ready)
	return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
}

// senseAfterReallocBuffered is the chained-step variant: the first
// operand's data already sits in the controller buffer (a previous step's
// result), so reallocation reads only the flash-resident second operand
// (or nothing, when that too is buffered) before the paired program and
// sense. readLPN < 0 means bufN supplies the second operand.
func (d *Device) senseAfterReallocBuffered(op latch.Op, bufM []byte, readyM sim.Time,
	readLPN int64, bufN []byte, readyN sim.Time, at sim.Time) (BitwiseResult, error) {
	dataN, ready := bufN, sim.Max(readyM, readyN)
	if readLPN >= 0 {
		var doneN sim.Time
		var err error
		dataN, doneN, err = d.readOperand(uint64(readLPN), at)
		if err != nil {
			return BitwiseResult{}, err
		}
		ready = sim.Max(readyM, doneN)
	}
	newM, err := d.allocInternal()
	if err != nil {
		return BitwiseResult{}, err
	}
	newN, err := d.allocInternal()
	if err != nil {
		return BitwiseResult{}, err
	}
	wl, done, err := d.ftl.WritePairedRelocation(newM, newN, bufM, dataN, ready)
	if err != nil {
		return BitwiseResult{}, err
	}
	d.plain[newM] = true
	d.plain[newN] = true
	d.stats.Reallocations++
	d.stats.ReallocPages += 2
	d.tele.cRealloc.Add(1)
	d.tele.cReallocPg.Add(2)
	res, err := d.array.BitwiseSense(op, wl, done)
	if err != nil {
		return BitwiseResult{}, err
	}
	d.stats.BitwiseOps++
	d.noteOp(op, SchemeReAlloc, at, res.Ready)
	return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
}

// storeResult persists a controller-buffer result page into the internal
// pool (unscrambled), so it can serve as an operand for a chained
// operation. Returns the LPN and program completion time.
func (d *Device) storeResult(data []byte, at sim.Time) (uint64, sim.Time, error) {
	lpn, err := d.allocInternal()
	if err != nil {
		return 0, 0, err
	}
	done, err := d.ftl.WriteRelocation(lpn, data, at)
	if err != nil {
		return 0, 0, err
	}
	d.plain[lpn] = true
	return lpn, done, nil
}

// Reduce folds k operand pages with one associative operation (AND, OR
// or XOR): the paper's chained use (bitmap index reduction, multi-channel
// segmentation, multi-image encryption).
//
//   - SchemePreAlloc assumes consecutive operand pairs are co-located
//     (the layout WriteOperandPair produces): pairs sense directly and in
//     parallel, then pair results combine with serialized reallocation
//     steps — the paper's "ParaBit" execution, which halves reallocations
//     versus ReAlloc.
//   - SchemeReAlloc reallocates at every step.
//   - SchemeLocFree senses without reallocating. When all operands are
//     aligned LSB pages on one plane (the WriteOperandLSBGroup layout),
//     the whole reduction is a single chained operation per §4.2: AND/OR
//     accumulate in the latches at one extra sense per operand, the XOR
//     family pays a buffer round-trip per step. Misaligned operands fall
//     back to pairwise execution with plane-aligned result parking.
//   - SchemeFlashCosmos collapses each block-colocated operand group (the
//     WriteOperandMWSGroup layout) into one multi-wordline sense per
//     sense-margin-sized chunk; same-plane chunk results chain through
//     the latches, cross-plane partials combine with buffered
//     reallocation steps, strays and the XOR family fall back to the
//     pairwise paths.
func (d *Device) Reduce(op latch.Op, lpns []uint64, scheme Scheme, at sim.Time) (BitwiseResult, error) {
	if len(lpns) == 0 {
		return BitwiseResult{}, ErrNeedOperands
	}
	if len(lpns) == 1 {
		// A fold over one operand is the operand: planner-generated
		// degenerate expressions (e.g. a chain whose other arms were
		// cached) resolve to a plain read, not an error.
		data, done, err := d.Read(lpns[0], at)
		if err != nil {
			return BitwiseResult{}, err
		}
		return BitwiseResult{Data: data, Done: done}, nil
	}
	switch op {
	case latch.OpAnd, latch.OpOr, latch.OpXor:
	default:
		return BitwiseResult{}, fmt.Errorf("ssd: reduce needs an associative op, got %v", op)
	}
	switch scheme {
	case SchemePreAlloc:
		return d.reducePreAlloc(op, lpns, at)
	case SchemeReAlloc:
		return d.reduceSerial(op, lpns, at)
	case SchemeLocFree:
		return d.reduceLocFree(op, lpns, at)
	case SchemeFlashCosmos:
		return d.reduceFlashCosmos(op, lpns, at)
	}
	return BitwiseResult{}, fmt.Errorf("ssd: unknown scheme %v", scheme)
}

// reduceLocFree reduces via chained location-free sensing. If all
// operands sit in LSB pages of one plane, one chained operation does the
// whole fold; otherwise same-plane runs chain and the partial results are
// parked aligned with the next run.
//
// Layouts are resolved per run, immediately before sensing. The parking
// writes between runs go through the FTL's fault-aware program path, and
// a program fault (bad-block retirement), garbage collection, or block
// reclaim triggered there migrates mapped pages — including this
// reduction's own operands. A WordlineAddr captured before such a
// migration is stale: the victim block is erased after its valid pages
// move, so folding against it senses erased cells. Operands a migration
// pushed out of a run's chain (off-plane, or no longer LSB) fold through
// the buffered reallocation path instead.
func (d *Device) reduceLocFree(op latch.Op, lpns []uint64, at sim.Time) (BitwiseResult, error) {
	// Pre-scan for run grouping and the fallback decision only; the
	// wordline addresses seen here are NOT reused for sensing.
	planes := make([]flash.PlaneAddr, len(lpns))
	for i, lpn := range lpns {
		addr, err := d.operandLoc(lpn)
		if err != nil {
			return BitwiseResult{}, err
		}
		if addr.Kind != flash.LSBPage {
			d.stats.Fallbacks++
			d.noteFallback(SchemeLocFree)
			return d.reduceSerial(op, lpns, at)
		}
		planes[i] = addr.WordlineAddr.PlaneAddr
	}
	// Split into same-plane runs of LPNs, chain each, then park run
	// results aligned and chain again until one remains.
	type run struct {
		lpns  []uint64
		plane flash.PlaneAddr
	}
	var runs []run
	for i, lpn := range lpns {
		if i == 0 || planes[i] != runs[len(runs)-1].plane {
			runs = append(runs, run{plane: planes[i]})
		}
		runs[len(runs)-1].lpns = append(runs[len(runs)-1].lpns, lpn)
	}

	var acc BitwiseResult
	havePartial := false
	for _, r := range runs {
		ready := at
		parked := false
		var parkWL flash.WordlineAddr
		if havePartial {
			// Park the running result on this run's plane so it joins
			// the chain.
			lpn, err := d.allocInternal()
			if err != nil {
				return BitwiseResult{}, err
			}
			_, done, err := d.ftl.WriteLSBOnPlane(r.plane, lpn, acc.Data, sim.Max(acc.Done, at), false)
			if err != nil {
				return BitwiseResult{}, err
			}
			d.plain[lpn] = true
			ready = done
			// The write itself re-steers around program faults, but
			// verify where the page actually landed rather than trusting
			// the requested plane.
			if addr, ok := d.ftl.Lookup(lpn); ok &&
				addr.Kind == flash.LSBPage && addr.WordlineAddr.PlaneAddr == r.plane {
				parked, parkWL = true, addr.WordlineAddr
			}
		}
		// Resolve this run's layout NOW, after whatever maintenance the
		// parking write triggered: still-aligned operands chain, migrated
		// ones fold through the buffered path below.
		type located struct {
			lpn uint64
			wl  flash.WordlineAddr
		}
		var aligned []located
		var strays []uint64
		for _, lpn := range r.lpns {
			addr, err := d.operandLoc(lpn)
			if err != nil {
				return BitwiseResult{}, err
			}
			if addr.Kind == flash.LSBPage && addr.WordlineAddr.PlaneAddr == r.plane {
				aligned = append(aligned, located{lpn, addr.WordlineAddr})
			} else {
				strays = append(strays, lpn)
			}
		}
		var chain []flash.WordlineAddr
		if parked {
			chain = append(chain, parkWL)
		}
		for _, a := range aligned {
			chain = append(chain, a.wl)
		}
		if len(chain) >= 2 {
			res, err := d.array.BitwiseChainLSB(op, chain, ready)
			if err != nil {
				return BitwiseResult{}, err
			}
			d.stats.BitwiseOps++
			d.noteOp(op, SchemeLocFree, ready, res.Ready)
			if havePartial && !parked {
				// The chain ran without the partial (the parked page
				// landed off-plane): merge the two buffered halves.
				acc, err = d.senseAfterReallocBuffered(op, acc.Data, acc.Done, -1, res.Data, res.Ready, ready)
				if err != nil {
					return BitwiseResult{}, err
				}
			} else {
				acc = BitwiseResult{Data: res.Data, Done: res.Ready}
			}
			havePartial = true
		} else {
			// Too short to chain: a lone aligned operand folds like a
			// stray; a parked-but-alone partial is already in acc.
			for _, a := range aligned {
				strays = append(strays, a.lpn)
			}
		}
		if len(strays) > 0 && havePartial {
			d.stats.Fallbacks++
			d.noteFallback(SchemeLocFree)
		}
		for _, lpn := range strays {
			if !havePartial {
				data, done, err := d.Read(lpn, ready)
				if err != nil {
					return BitwiseResult{}, err
				}
				acc = BitwiseResult{Data: data, Done: done}
				havePartial = true
				continue
			}
			res, err := d.senseAfterReallocBuffered(op, acc.Data, acc.Done, int64(lpn), nil, 0, sim.Max(ready, acc.Done))
			if err != nil {
				return BitwiseResult{}, err
			}
			acc = res
		}
	}
	return acc, nil
}

// reducePreAlloc senses pre-paired operands in parallel, then serially
// combines pair results (each combine is a realloc + sense) — the
// execution the paper's "ParaBit" scheme uses, which halves reallocations
// versus ParaBit-ReAlloc (§5.3.2's 3179 ms vs 6137 ms bitmap split).
func (d *Device) reducePreAlloc(op latch.Op, lpns []uint64, at sim.Time) (BitwiseResult, error) {
	if len(lpns) == 2 {
		return d.Bitwise(op, lpns[0], lpns[1], SchemePreAlloc, at)
	}
	type partial struct {
		data []byte
		done sim.Time
	}
	var parts []partial
	// Phase 1: co-located pairs sense; results land in the controller
	// buffer (planes provide the parallelism, the buffer holds partials).
	i := 0
	for ; i+1 < len(lpns); i += 2 {
		r, err := d.Bitwise(op, lpns[i], lpns[i+1], SchemePreAlloc, at)
		if err != nil {
			return BitwiseResult{}, err
		}
		parts = append(parts, partial{data: r.Data, done: r.Done})
	}
	if i < len(lpns) { // odd operand left over joins the combine phase
		data, done, err := d.Read(lpns[i], at)
		if err != nil {
			return BitwiseResult{}, err
		}
		parts = append(parts, partial{data: data, done: done})
	}
	// Phase 2: serial combination of buffered partials, each a
	// program-pair-then-sense reallocation step.
	acc := parts[0]
	var last BitwiseResult
	for _, p := range parts[1:] {
		r, err := d.senseAfterReallocBuffered(op, acc.data, acc.done, -1, p.data, p.done, at)
		if err != nil {
			return BitwiseResult{}, err
		}
		last = r
		acc = partial{data: r.Data, done: r.Done}
	}
	return last, nil
}

// reduceSerial folds left-to-right with a reallocation at every step —
// the ParaBit-ReAlloc execution. The first step reads both operands from
// flash; after that the accumulator lives in the controller buffer, so
// each step reads only the next operand before the paired program,
// matching the paper's per-step cost (§5.3.2).
func (d *Device) reduceSerial(op latch.Op, lpns []uint64, at sim.Time) (BitwiseResult, error) {
	acc, err := d.Bitwise(op, lpns[0], lpns[1], SchemeReAlloc, at)
	if err != nil {
		return BitwiseResult{}, err
	}
	for _, next := range lpns[2:] {
		acc, err = d.senseAfterReallocBuffered(op, acc.Data, acc.Done, int64(next), nil, 0, acc.Done)
		if err != nil {
			return BitwiseResult{}, err
		}
	}
	return acc, nil
}

// ShipToHost moves a result page to the host over the host link.
func (d *Device) ShipToHost(r *BitwiseResult) {
	r.HostDone = d.host.Transfer(int64(len(r.Data)), r.Done)
	d.stats.ResultBytes += int64(len(r.Data))
	d.tele.cResult.Add(int64(len(r.Data)))
}

// FormulaResult is the outcome of ExecuteFormula.
type FormulaResult struct {
	// Pages holds the final result, one entry per sub-operation page.
	Pages [][]byte
	// Done is when the last result page reached the controller buffer.
	Done sim.Time
	// HostDone is when the last result byte reached the host.
	HostDone sim.Time
}

// ExecuteFormula runs a parsed bitwise formula end to end: each term's
// sub-operations execute under the scheme, term results combine with the
// extra-batch operations (always via reallocation, per Fig. 12), and the
// final pages ship to the host.
func (d *Device) ExecuteFormula(f nvme.Formula, scheme Scheme, at sim.Time) (FormulaResult, error) {
	batches, err := nvme.RoundTrip(f, d.PageSize())
	if err != nil {
		return FormulaResult{}, err
	}
	// Execute term batches; all sub-operations are independent and issue
	// at the start time (planes provide the parallelism).
	type pageResult struct {
		lpn  uint64
		data []byte
		done sim.Time
	}
	results := make([][]pageResult, len(batches))
	for bi, b := range batches {
		results[bi] = make([]pageResult, len(b.Subs))
		for si, sub := range b.Subs {
			r, err := d.Bitwise(b.Op, sub.M, sub.N, scheme, at)
			if err != nil {
				return FormulaResult{}, fmt.Errorf("batch %d sub %d: %w", bi, si, err)
			}
			pr := pageResult{data: r.Data, done: r.Done}
			if len(batches) > 1 {
				lpn, done, err := d.storeResult(r.Data, r.Done)
				if err != nil {
					return FormulaResult{}, err
				}
				pr.lpn, pr.done = lpn, done
			}
			results[bi][si] = pr
		}
	}
	// Combine batch results left-to-right with the extra-batch ops.
	acc := results[0]
	for bi := 1; bi < len(batches); bi++ {
		combineOp := batches[bi-1].Extra
		next := results[bi]
		if len(next) != len(acc) {
			return FormulaResult{}, fmt.Errorf("ssd: batch %d has %d sub-ops, accumulator has %d",
				bi, len(next), len(acc))
		}
		merged := make([]pageResult, len(acc))
		for si := range acc {
			start := sim.Max(acc[si].done, next[si].done)
			r, err := d.Bitwise(combineOp, acc[si].lpn, next[si].lpn, SchemeReAlloc, start)
			if err != nil {
				return FormulaResult{}, fmt.Errorf("combine %d sub %d: %w", bi, si, err)
			}
			pr := pageResult{data: r.Data, done: r.Done}
			if bi < len(batches)-1 {
				lpn, done, err := d.storeResult(r.Data, r.Done)
				if err != nil {
					return FormulaResult{}, err
				}
				pr.lpn, pr.done = lpn, done
			}
			merged[si] = pr
		}
		acc = merged
	}
	out := FormulaResult{Pages: make([][]byte, len(acc))}
	for si, pr := range acc {
		out.Pages[si] = pr.data
		if pr.done > out.Done {
			out.Done = pr.done
		}
		hostDone := d.host.Transfer(int64(len(pr.data)), pr.done)
		d.stats.ResultBytes += int64(len(pr.data))
		d.tele.cResult.Add(int64(len(pr.data)))
		if hostDone > out.HostDone {
			out.HostDone = hostDone
		}
	}
	return out, nil
}
