package ssd

import (
	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// Analytic per-wave cost model. The paper-scale experiments (hundreds of
// gigabytes of operands) cannot write real pages through the functional
// simulator; they instead compute wave counts and multiply by the per-wave
// latencies below. These functions are the single source of truth shared
// with the functional executor — TestAnalyticMatchesFunctional asserts the
// functional device reproduces them exactly at small scale.
//
// A "wave" is one all-planes-parallel operation: every plane senses one
// wordline, so a wave covers Geometry.WaveBytes() of each operand
// (8 MB on the paper's configuration).

// PairSenseLatency is the cost of one pre-allocated (co-located) ParaBit
// operation: the op's control-sequence SROs.
func PairSenseLatency(t flash.Timing, op latch.Op) sim.Duration {
	return t.BitwiseLatency(op)
}

// ReallocStepLatency is the cost of one reallocate-then-sense step:
// reading the operands still in flash (readOperands of them — 2 when both
// operands are flash-resident, 1 when the running result is already in
// the controller buffer), the paired LSB+MSB program, the data transfers
// across the channel, and the op's sense. Operand reads overlap across
// planes, so only the slowest (an LSB read, 1 SRO) plus its transfer gate
// the program.
func ReallocStepLatency(t flash.Timing, op latch.Op, readOperands int, pageSize int) sim.Duration {
	var readPhase sim.Duration
	if readOperands > 0 {
		// Parallel reads across planes: latency of one LSB read plus the
		// serialized channel transfers.
		readPhase = t.SenseSRO + sim.Duration(readOperands)*t.Transfer(pageSize)
	}
	// Two page programs on the target wordline (LSB then MSB), each
	// preceded by its channel transfer in.
	programPhase := 2 * (t.Transfer(pageSize) + t.ProgramPage)
	return readPhase + programPhase + t.BitwiseLatency(op)
}

// LocFreePairLatency is one location-free op over aligned LSB operands.
func LocFreePairLatency(t flash.Timing, op latch.Op) sim.Duration {
	return t.BitwiseLatencyLocFreeLSB(op)
}

// ChainWaveLatency is one wave of a location-free k-operand reduction:
// the chained sensing plus any buffer reloads (§4.2).
func ChainWaveLatency(t flash.Timing, op latch.Op, k int, pageSize int) sim.Duration {
	cost, err := flash.ChainCostLSB(op, k)
	if err != nil {
		panic(err)
	}
	d := sim.Duration(cost.SROs) * t.SenseSRO
	d += sim.Duration(cost.RegisterLoads) * t.Transfer(pageSize)
	return d
}

// ReducePlan is the analytic execution plan of a k-operand reduction over
// a bulk working set.
type ReducePlan struct {
	Scheme Scheme
	Op     latch.Op
	// K is the operand count per reduction chain.
	K int
	// Waves is how many all-planes waves one pass over the chain's
	// operand columns takes (column bytes / wave bytes).
	Waves float64
	// SenseSeconds is the parallel-sense phase (pre-allocated pairs or
	// location-free chains).
	SenseSeconds float64
	// CombineSeconds is the serial combine phase (reallocation steps).
	CombineSeconds float64
	// TotalSeconds is the in-SSD compute time.
	TotalSeconds float64
	// Reallocations counts realloc steps per chain (endurance input).
	Reallocations int
	// ReallocBytes is the flash volume written by reallocation across the
	// whole working set.
	ReallocBytes int64
}

// PlanReduce computes the analytic plan for reducing K operand columns of
// columnBytes each (one output column of the same size), on a device with
// the given geometry and timing. It mirrors Device.Reduce's execution:
//
//   - PreAlloc: ceil(K/2) co-located pair senses run fully parallel
//     (their wave counts add across the device but pairs of different
//     columns overlap — the senses for all pairs take
//     ceil(K/2)*waves*senseLatency/1 in the worst serialized case; since
//     every wave occupies all planes, waves serialize device-wide), then
//     K/2-1 serial combine steps of `waves` waves each.
//   - ReAlloc: K-1 serial realloc steps (first reads 2 operands, the rest
//     read 1), each `waves` waves.
//   - LocFree: `waves` chained waves, no reallocation.
//   - FlashCosmos: one multi-wordline sense per MaxMWSOperands-sized
//     chunk plus buffered combine steps between chunks; the XOR family
//     (no MWS form) is priced as its LocFree fallback.
func PlanReduce(geo flash.Geometry, t flash.Timing, scheme Scheme, op latch.Op, k int, columnBytes int64) ReducePlan {
	waves := float64(columnBytes) / float64(geo.WaveBytes())
	if waves < 1 {
		waves = 1
	}
	p := ReducePlan{Scheme: scheme, Op: op, K: k, Waves: waves}
	switch scheme {
	case SchemePreAlloc:
		pairs := k / 2
		odd := k%2 == 1
		p.SenseSeconds = float64(pairs) * waves * PairSenseLatency(t, op).Seconds()
		combines := pairs - 1
		if odd {
			combines++
		}
		if k == 2 {
			combines = 0
		}
		// Combine inputs are buffered partials: no operand reads.
		p.CombineSeconds = float64(combines) * waves *
			ReallocStepLatency(t, op, 0, geo.PageSize).Seconds()
		p.Reallocations = combines
	case SchemeReAlloc:
		steps := k - 1
		first := ReallocStepLatency(t, op, 2, geo.PageSize).Seconds()
		rest := ReallocStepLatency(t, op, 1, geo.PageSize).Seconds()
		p.CombineSeconds = waves * (first + float64(steps-1)*rest)
		p.Reallocations = steps
	case SchemeLocFree:
		if k == 2 {
			p.SenseSeconds = waves * LocFreePairLatency(t, op).Seconds()
		} else {
			p.SenseSeconds = waves * ChainWaveLatency(t, op, k, geo.PageSize).Seconds()
		}
	case SchemeFlashCosmos:
		if !latch.MWSComputable(op) {
			// No MWS form: the executor falls back to the LocFree paths
			// wholesale, and the plan prices that honestly.
			p = PlanReduce(geo, t, SchemeLocFree, op, k, columnBytes)
			p.Scheme = SchemeFlashCosmos
			return p
		}
		// One multi-wordline sense per MaxMWSOperands-sized chunk. The
		// group lays out in one block (WriteOperandMWSGroup), so chunk
		// results chain through the plane's latches: the senses serialize
		// on the plane's sense unit but no program separates them. A lone
		// leftover operand has no sense of its own: it folds in one extra
		// realloc step that reads it from flash.
		var sense sim.Duration
		lone := false
		for rem := k; rem > 0; {
			c := rem
			if c > latch.MaxMWSOperands {
				c = latch.MaxMWSOperands
			}
			if c < 2 {
				lone = true
				break
			}
			sense += t.MWSLatency(c)
			rem -= c
		}
		p.SenseSeconds = waves * sense.Seconds()
		if lone {
			p.CombineSeconds = waves * ReallocStepLatency(t, op, 1, geo.PageSize).Seconds()
			p.Reallocations = 1
		}
	}
	p.TotalSeconds = p.SenseSeconds + p.CombineSeconds
	p.ReallocBytes = int64(float64(p.Reallocations) * 2 * float64(columnBytes))
	return p
}
