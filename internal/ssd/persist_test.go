package ssd

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"parabit/internal/ftl"
	"parabit/internal/latch"
	"parabit/internal/persist"
)

// TestPersistRoundTrip writes through every journaled layout, closes
// cleanly, remounts and requires byte-identical reads, identical
// controller counters and a clean FTL audit. Clean close compacts, so
// the mount replays zero records.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, SmallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Persistent() {
		t.Fatal("Create built a non-persistent device")
	}

	written := map[uint64][]byte{}
	host := randPage(d, 1)
	if _, err := d.Write(0, host, 0); err != nil {
		t.Fatal(err)
	}
	written[0] = host
	op := randPage(d, 2)
	if _, err := d.WriteOperand(1, op, 0); err != nil {
		t.Fatal(err)
	}
	written[1] = op
	a, b := randPage(d, 3), randPage(d, 4)
	if _, err := d.WriteOperandPair(2, 3, a, b, 0); err != nil {
		t.Fatal(err)
	}
	written[2], written[3] = a, b
	g0, g1, g2 := randPage(d, 5), randPage(d, 6), randPage(d, 7)
	if _, err := d.WriteOperandLSBGroup([]uint64{4, 5, 6}, [][]byte{g0, g1, g2}, 0); err != nil {
		t.Fatal(err)
	}
	written[4], written[5], written[6] = g0, g1, g2
	m0, m1 := randPage(d, 8), randPage(d, 9)
	if _, err := d.WriteOperandMWSGroup([]uint64{7, 8}, [][]byte{m0, m1}, 0); err != nil {
		t.Fatal(err)
	}
	written[7], written[8] = m0, m1
	pl := randPage(d, 10)
	if _, err := d.WriteOperandOnPlane(1, 9, pl, 0); err != nil {
		t.Fatal(err)
	}
	written[9] = pl
	// A bitwise op (reallocation path) populates the controller stats and
	// internal pool, then the reclaim gets journaled too.
	if _, err := d.Bitwise(latch.OpAnd, 1, 4, SchemeReAlloc, 0); err != nil {
		t.Fatal(err)
	}
	d.ReclaimInternal()
	preStats := d.Stats()

	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 0 || info.TornBytes != 0 {
		t.Fatalf("clean close still replayed: %+v", info)
	}
	for lpn, want := range written {
		got, _, err := re.Read(lpn, 0)
		if err != nil {
			t.Fatalf("read %d after remount: %v", lpn, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpn %d differs after remount", lpn)
		}
	}
	if re.Stats() != preStats {
		t.Fatalf("controller stats drifted: %+v -> %+v", preStats, re.Stats())
	}
	if err := re.FTL().CheckInvariants(); err != nil {
		t.Fatalf("post-remount audit: %v", err)
	}
	// The remounted device still computes: ParaBit results survive the
	// reload of the pair layout.
	res, err := re.Bitwise(latch.OpXor, 2, 3, SchemePreAlloc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, golden(latch.OpXor, a, b)) {
		t.Fatal("bitwise result wrong after remount")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistCrashReplaysJournal crashes without a final snapshot: the
// mount must rebuild every acknowledged write from the journal alone.
func TestPersistCrashReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, SmallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pages := map[uint64][]byte{}
	for lpn := uint64(0); lpn < 6; lpn++ {
		p := randPage(d, int64(lpn)+20)
		if _, err := d.Write(lpn, p, 0); err != nil {
			t.Fatal(err)
		}
		pages[lpn] = p
	}
	// Overwrite one page so replay must preserve last-write-wins order.
	over := randPage(d, 99)
	if _, err := d.Write(2, over, 0); err != nil {
		t.Fatal(err)
	}
	pages[2] = over
	d.Crash()

	re, info, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 7 {
		t.Fatalf("replayed %d records, want 7", info.ReplayedRecords)
	}
	for lpn, want := range pages {
		got, _, err := re.Read(lpn, 0)
		if err != nil {
			t.Fatalf("read %d: %v", lpn, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("lpn %d differs after crash recovery", lpn)
		}
	}
	// A page never written stays explicitly unmapped — no ghost data.
	if _, _, err := re.Read(17, 0); !errors.Is(err, ftl.ErrUnmapped) {
		t.Fatalf("unwritten lpn read: %v, want ErrUnmapped", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistSnapshotCompaction drives enough commits to trigger
// automatic rotation and proves the post-rotation mount needs only the
// journal tail.
func TestPersistSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, SmallConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 19; i++ {
		if _, err := d.Write(uint64(i%4), randPage(d, int64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := d.PersistStats()
	if !ok || st.Snapshots < 2 {
		t.Fatalf("19 writes at SnapshotEvery=8 took %d snapshots, want >=2", st.Snapshots)
	}
	last := randPage(d, 77)
	if _, err := d.Write(3, last, 0); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	re, info, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords == 0 || info.ReplayedRecords >= 20 {
		t.Fatalf("replayed %d records: compaction should leave only the tail", info.ReplayedRecords)
	}
	got, _, err := re.Read(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, last) {
		t.Fatal("post-compaction write lost")
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistTornJournalTail appends garbage (a torn frame) to the
// journal of a crashed device: the mount truncates it and recovers
// everything before it.
func TestPersistTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, SmallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	page := randPage(d, 5)
	if _, err := d.Write(1, page, 0); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	jpath := filepath.Join(dir, "journal-1.log")
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x21, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	re, info, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	if info.TornBytes != 6 {
		t.Fatalf("torn bytes %d, want 6", info.TornBytes)
	}
	got, _, err := re.Read(1, 0)
	if err != nil || !bytes.Equal(got, page) {
		t.Fatalf("acked write lost under torn tail: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistOpenRejectsCorruptSnapshot flips one snapshot body byte
// and requires ErrCorrupt — never a silently different device.
func TestPersistOpenRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, SmallConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, randPage(d, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.bin"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v (%v)", snaps, err)
	}
	raw, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x04
	if err := os.WriteFile(snaps[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, 0); !errors.Is(err, persist.ErrCorrupt) {
		t.Fatalf("corrupt snapshot mounted: %v", err)
	}
}

// TestPersistTLCTripleRoundTrip covers the TLC triple layout through a
// crash-recovery cycle.
func TestPersistTLCTripleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(dir, SmallTLCConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p0, p1, p2 := randPage(d, 1), randPage(d, 2), randPage(d, 3)
	if _, err := d.WriteOperandTriple([3]uint64{0, 1, 2}, [3][]byte{p0, p1, p2}, 0); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	re, info, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.ReplayedRecords != 1 {
		t.Fatalf("replayed %d, want 1", info.ReplayedRecords)
	}
	for lpn, want := range map[uint64][]byte{0: p0, 1: p1, 2: p2} {
		got, _, err := re.Read(lpn, 0)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("triple page %d lost: %v", lpn, err)
		}
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}
