package ssd

import (
	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// Flash-Cosmos execution (SchemeFlashCosmos): an N-operand AND/OR
// reduction over operands colocated in one block collapses into a single
// multi-wordline sense — the NAND string computes the fold, so the
// latency is one (slightly longer) read regardless of operand count,
// where the pairwise schemes pay one sense or one reallocation per
// operand. Whenever the single sense is ruled out — the op's algebra has
// no MWS form, operands missed colocation, the operand count exceeds the
// per-sense cap, or maintenance migrated pages mid-reduction — execution
// degrades to the pairwise paths below instead of erroring.

// blockKey identifies the NAND block an MWS selects wordlines of.
type blockKey struct {
	plane flash.PlaneAddr
	block int
}

// mwsPair reports whether two operands can feed one two-wordline MWS:
// LSB pages of distinct wordlines colocated in one block.
func mwsPair(a, b flash.PageAddr) bool {
	return a.Kind == flash.LSBPage && b.Kind == flash.LSBPage &&
		a.PlaneAddr == b.PlaneAddr && a.Block == b.Block &&
		a.WordlineAddr != b.WordlineAddr
}

// bitwiseFlashCosmos executes one two-operand operation under the
// Flash-Cosmos scheme: a two-wordline MWS when the operands are
// colocated and the op has an MWS form, the LocFree pairwise path
// otherwise.
func (d *Device) bitwiseFlashCosmos(op latch.Op, lpnM, lpnN uint64,
	addrM, addrN flash.PageAddr, at sim.Time) (BitwiseResult, error) {
	if d.cfg.Geometry.CellBits == 2 && latch.MWSComputable(op) && mwsPair(addrM, addrN) {
		res, err := d.array.BitwiseSenseMWS(op,
			[]flash.WordlineAddr{addrM.WordlineAddr, addrN.WordlineAddr}, at)
		if err != nil {
			return BitwiseResult{}, err
		}
		d.stats.BitwiseOps++
		d.noteOp(op, SchemeFlashCosmos, at, res.Ready)
		return BitwiseResult{Data: res.Data, Done: res.Ready}, nil
	}
	// Colocation missed, or the op's algebra has no single-sense form:
	// the documented fallback is the pairwise location-free execution.
	d.stats.Fallbacks++
	d.noteFallback(SchemeFlashCosmos)
	return d.Bitwise(op, lpnM, lpnN, SchemeLocFree, at)
}

// reduceFlashCosmos reduces via multi-wordline senses: operands bucketed
// by block, one MWS per MaxMWSOperands-sized chunk. Chunks that share a
// plane chain through the plane's latches in one array call (no program
// between chunks, like the location-free chain), so a k-operand group
// costs ceil(k/MaxMWSOperands) serialized senses; only cross-plane
// partials combine with buffered reallocation steps. Operands outside
// any viable chunk (lone residents of a block, non-LSB pages, pages a
// mid-reduction migration moved) fold through the buffered pairwise
// path, counted as scheme fallbacks.
//
// Like reduceLocFree, placement is resolved twice: a pre-scan buckets
// operands by their current block, and every plane run re-resolves its
// operands immediately before sensing — the cross-plane combine writes
// between runs go through the FTL's fault-aware program path, and the
// garbage collection or bad-block retirement they trigger migrates
// mapped pages, including this reduction's own operands.
func (d *Device) reduceFlashCosmos(op latch.Op, lpns []uint64, at sim.Time) (BitwiseResult, error) {
	if !latch.MWSComputable(op) || d.cfg.Geometry.CellBits != 2 {
		// The XOR family has no multi-wordline sense form (and only MLC
		// strings have the MWS mode here): whole-reduction fallback.
		d.stats.Fallbacks++
		d.noteFallback(SchemeFlashCosmos)
		return d.reduceLocFree(op, lpns, at)
	}
	// Pre-scan: bucket operands by current block, preserving
	// first-appearance order. Addresses seen here drive grouping only and
	// are never sensed from.
	var order []blockKey
	groups := make(map[blockKey][]uint64)
	var strays []uint64
	for _, lpn := range lpns {
		addr, err := d.operandLoc(lpn)
		if err != nil {
			return BitwiseResult{}, err
		}
		if addr.Kind != flash.LSBPage {
			strays = append(strays, lpn)
			continue
		}
		key := blockKey{addr.PlaneAddr, addr.Block}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], lpn)
	}

	var acc BitwiseResult
	havePartial := false
	// fold merges a buffered chunk result into the accumulator: the first
	// result becomes the accumulator, later ones combine with a buffered
	// reallocation step (partials cannot rejoin an MWS — a sealed operand
	// block has no room for them).
	fold := func(data []byte, done sim.Time) error {
		if !havePartial {
			acc = BitwiseResult{Data: data, Done: done}
			havePartial = true
			return nil
		}
		r, err := d.senseAfterReallocBuffered(op, acc.Data, acc.Done, -1, data, done, sim.Max(acc.Done, done))
		if err != nil {
			return err
		}
		acc = r
		return nil
	}
	// Split each block's group into sense-margin-sized chunks and gather
	// the chunks into per-plane runs: every chunk of a run senses on the
	// same plane, so its results can accumulate in that plane's latches.
	type planeRun struct {
		plane  flash.PlaneAddr
		chunks [][]uint64
	}
	runIdx := make(map[flash.PlaneAddr]int)
	var runs []*planeRun
	for _, key := range order {
		g := groups[key]
		if len(g) < 2 {
			strays = append(strays, g...)
			continue
		}
		idx, ok := runIdx[key.plane]
		if !ok {
			idx = len(runs)
			runIdx[key.plane] = idx
			runs = append(runs, &planeRun{plane: key.plane})
		}
		for len(g) > 0 {
			n := len(g)
			if n > latch.MaxMWSOperands {
				n = latch.MaxMWSOperands
			}
			chunk := g[:n]
			g = g[n:]
			if n < 2 {
				strays = append(strays, chunk...)
				continue
			}
			runs[idx].chunks = append(runs[idx].chunks, chunk)
		}
	}
	for _, r := range runs {
		// Re-resolve the run NOW, after whatever maintenance earlier
		// cross-plane combines triggered: still-colocated chunks sense
		// together, migrated operands fold through the buffered path.
		// A migration may also have moved a whole chunk off this run's
		// plane, so resolved chunks re-bucket by their actual plane.
		chunkPlanes := make(map[flash.PlaneAddr][][]flash.WordlineAddr)
		var planeOrder []flash.PlaneAddr
		for _, chunk := range r.chunks {
			wls := make([]flash.WordlineAddr, 0, len(chunk))
			var moved []uint64
			for i, lpn := range chunk {
				addr, err := d.operandLoc(lpn)
				if err != nil {
					return BitwiseResult{}, err
				}
				if addr.Kind == flash.LSBPage && (i == 0 || (len(wls) > 0 &&
					addr.PlaneAddr == wls[0].PlaneAddr && addr.Block == wls[0].Block)) {
					wls = append(wls, addr.WordlineAddr)
				} else {
					moved = append(moved, lpn)
				}
			}
			if len(wls) < 2 {
				// The chunk scattered: everything folds pairwise.
				strays = append(strays, chunk...)
				continue
			}
			pl := wls[0].PlaneAddr
			if _, ok := chunkPlanes[pl]; !ok {
				planeOrder = append(planeOrder, pl)
			}
			chunkPlanes[pl] = append(chunkPlanes[pl], wls)
			strays = append(strays, moved...)
		}
		for _, pl := range planeOrder {
			chunks := chunkPlanes[pl]
			var res flash.SenseResult
			var err error
			if len(chunks) == 1 {
				res, err = d.array.BitwiseSenseMWS(op, chunks[0], at)
			} else {
				res, err = d.array.BitwiseChainMWS(op, chunks, at)
			}
			if err != nil {
				return BitwiseResult{}, err
			}
			d.stats.BitwiseOps++
			d.noteOp(op, SchemeFlashCosmos, at, res.Ready)
			if err := fold(res.Data, res.Ready); err != nil {
				return BitwiseResult{}, err
			}
		}
	}
	// Strays missed the single-sense layout: the pairwise fallback, one
	// buffered reallocation step each.
	if len(strays) > 0 {
		d.stats.Fallbacks++
		d.noteFallback(SchemeFlashCosmos)
	}
	for _, lpn := range strays {
		if !havePartial {
			data, done, err := d.Read(lpn, at)
			if err != nil {
				return BitwiseResult{}, err
			}
			acc = BitwiseResult{Data: data, Done: done}
			havePartial = true
			continue
		}
		res, err := d.senseAfterReallocBuffered(op, acc.Data, acc.Done, int64(lpn), nil, 0, sim.Max(at, acc.Done))
		if err != nil {
			return BitwiseResult{}, err
		}
		acc = res
	}
	return acc, nil
}
