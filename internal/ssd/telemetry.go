package ssd

import (
	"parabit/internal/latch"
	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

// teleOps / teleSchemes size the tagged-counter tables; they mirror
// latch.Ops and the scheme registry (checked in the tests).
const (
	teleOps     = 8
	teleSchemes = len(schemeNames)
)

// opSchemeName / fallbackName are built once at init so that tagging a
// bitwise operation never concatenates strings on the hot path.
var (
	opSchemeName   [teleOps][teleSchemes]string
	opSchemeSpan   [teleOps][teleSchemes]string
	fallbackName   [teleSchemes]string
	tripleOpName   = "ssd.bitwise.triple"
	bitwiseOpsName = "ssd.bitwise.ops"
)

func init() {
	for _, op := range latch.Ops {
		for si, sc := range Schemes {
			opSchemeName[op][si] = "ssd.op." + op.String() + "." + sc.String()
			opSchemeSpan[op][si] = op.String() + "/" + sc.String()
		}
	}
	for si, sc := range Schemes {
		fallbackName[si] = "ssd.fallbacks." + sc.String()
	}
}

// devTele holds the device's telemetry handles. The zero value (all nil)
// is the disabled state: every handle method is a free no-op, and noteOp
// bails on the nil sink before building anything.
type devTele struct {
	sink        *telemetry.Sink
	opTrack     *telemetry.Track
	cOps        *telemetry.Counter
	cRealloc    *telemetry.Counter
	cReallocPg  *telemetry.Counter
	cDescramble *telemetry.Counter
	cResult     *telemetry.Counter
	// Query-planner stages: the qTrack lane carries plan spans, fuse
	// spans and cache hit/evict instants.
	qTrack       *telemetry.Track
	cQPlans      *telemetry.Counter
	cQSteps      *telemetry.Counter
	cQFused      *telemetry.Counter
	cQCacheHit   *telemetry.Counter
	cQCacheMiss  *telemetry.Counter
	cQCacheEvict *telemetry.Counter
	cQRoundTrip  *telemetry.Counter
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink to the
// device and everything below it: the FTL's maintenance events, every
// plane's sense path, every channel bus, and the host link each get their
// own trace lane when the sink records a trace, and controller-level
// counters (bitwise ops tagged by op and scheme, scheme fallbacks,
// reallocations, descrambles) mirror into the sink's registry.
func (d *Device) SetTelemetry(s *telemetry.Sink) {
	d.ftl.SetTelemetry(s)
	if d.store != nil {
		d.store.SetTelemetry(s)
	}
	d.tele = devTele{
		sink:         s,
		cOps:         s.Counter(bitwiseOpsName),
		cRealloc:     s.Counter("ssd.reallocations"),
		cReallocPg:   s.Counter("ssd.realloc.pages"),
		cDescramble:  s.Counter("ssd.descrambled_reads"),
		cResult:      s.Counter("ssd.result_bytes"),
		cQPlans:      s.Counter("ssd.query.plans"),
		cQSteps:      s.Counter("ssd.query.steps"),
		cQFused:      s.Counter("ssd.query.fused_chains"),
		cQCacheHit:   s.Counter("ssd.query.cache.hits"),
		cQCacheMiss:  s.Counter("ssd.query.cache.misses"),
		cQCacheEvict: s.Counter("ssd.query.cache.evictions"),
		cQRoundTrip:  s.Counter("ssd.query.nvme_roundtrips"),
	}
	tr := s.Trace()
	if tr == nil {
		d.array.InstrumentResources(nil)
		d.host.InstrumentBus(nil)
		return
	}
	d.tele.opTrack = tr.Track("ssd", "bitwise")
	d.tele.qTrack = tr.Track("ssd", "query")
	// One occupancy lane per plane and per channel, registered eagerly so
	// the lanes exist even before any traffic reaches them.
	d.array.InstrumentResources(func(name string) sim.ReserveObserver {
		tk := tr.Track("flash", name)
		return func(label string, start, end sim.Time) {
			tk.Span(label, start, end)
		}
	})
	hostTk := tr.Track("host", "link")
	d.host.InstrumentBus(func(label string, start, end sim.Time) {
		hostTk.Span(label, start, end)
	})
}

// noteOp tags one completed bitwise operation with its op and execution
// scheme: a per-combination counter (registered lazily, so the summary
// shows only combinations that actually ran) and a span on the device's
// bitwise lane. A fallback executes as SchemeReAlloc and is tagged so.
func (d *Device) noteOp(op latch.Op, scheme Scheme, start, done sim.Time) {
	d.tele.cOps.Add(1)
	if d.tele.sink == nil || int(op) >= teleOps || int(scheme) >= teleSchemes {
		return
	}
	d.tele.sink.Counter(opSchemeName[op][scheme]).Add(1)
	d.tele.opTrack.Span(opSchemeSpan[op][scheme], start, done)
}

// noteFallback tags one scheme-precondition miss.
func (d *Device) noteFallback(scheme Scheme) {
	if d.tele.sink == nil || int(scheme) >= teleSchemes {
		return
	}
	d.tele.sink.Counter(fallbackName[scheme]).Add(1)
}
