// Package ssd assembles the ParaBit SSD: the flash array, the FTL, the
// host link, the data scrambler, and the controller modules of the
// paper's Fig. 9 — command parsing (via internal/nvme), operand
// reallocation, and parallel read. It exposes the three evaluated
// schemes:
//
//   - ParaBit (pre-allocation): operands were written co-located into the
//     LSB and MSB pages of shared wordlines, so the first operation of a
//     reduction senses directly; intermediate results still reallocate.
//   - ParaBit-ReAlloc: operands live wherever the FTL put them; every
//     operation first reallocates its two operands into shared wordlines.
//   - ParaBit-LocFree: operands live in LSB pages of aligned wordlines on
//     one plane; operations sense both wordlines through the (slightly
//     extended) latching circuit and never reallocate.
package ssd

import (
	"fmt"
	"strings"

	"parabit/internal/flash"
	"parabit/internal/ftl"
	"parabit/internal/interconnect"
)

// Scheme selects how the device executes bitwise operations.
type Scheme uint8

const (
	// SchemePreAlloc is the paper's "ParaBit": operands pre-allocated to
	// shared MLC cells.
	SchemePreAlloc Scheme = iota
	// SchemeReAlloc is "ParaBit-ReAlloc": reallocate before every
	// operation.
	SchemeReAlloc
	// SchemeLocFree is "ParaBit-LocFree": location-free sensing over
	// aligned LSB pages, requiring the added inverter hardware.
	SchemeLocFree
	// SchemeFlashCosmos is the Flash-Cosmos extension: N-operand AND/OR
	// reductions in ONE multi-wordline sense over operands colocated in a
	// single block (ESP-programmed for margin), with a pairwise LocFree
	// fallback whenever colocation, the operand cap, or the op's algebra
	// rules the single sense out.
	SchemeFlashCosmos
)

// schemeNames is the one scheme registry: every consumer — String,
// Schemes, ParseScheme, the telemetry tables, the op x scheme test
// matrices, the bench -scheme flag — derives from it, so adding a scheme
// is one line here plus its dispatch arms.
var schemeNames = [...]string{
	SchemePreAlloc:    "ParaBit",
	SchemeReAlloc:     "ParaBit-ReAlloc",
	SchemeLocFree:     "ParaBit-LocFree",
	SchemeFlashCosmos: "Flash-Cosmos",
}

func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Schemes lists every scheme for experiment sweeps and test matrices, in
// declaration order.
var Schemes = func() []Scheme {
	out := make([]Scheme, len(schemeNames))
	for i := range out {
		out[i] = Scheme(i)
	}
	return out
}()

// ParseScheme resolves a scheme by its String() name, case-insensitively;
// bench flags and config files use it so scheme spellings live in one
// place.
func ParseScheme(name string) (Scheme, error) {
	for i, n := range schemeNames {
		if strings.EqualFold(name, n) {
			return Scheme(i), nil
		}
	}
	return 0, fmt.Errorf("ssd: unknown scheme %q (want one of %s)", name, strings.Join(schemeNames[:], ", "))
}

// Config parameterizes the device.
type Config struct {
	Geometry flash.Geometry
	Timing   flash.Timing
	FTL      ftl.Config
	// HostLinkGBps is the effective SSD-to-host bandwidth; the paper's
	// measured PCIe Gen3 x4 value is the default.
	HostLinkGBps float64
	// Scramble enables the data scrambler on normal host writes
	// (§4.3.2). Operand and reallocation writes always bypass it.
	Scramble bool
	// ECCSectorBytes, when nonzero, installs a SEC-DED codec over
	// sectors of this size on the baseline read path; combined with a
	// noise model it gives §5.8's configuration (raw errors corrected on
	// ordinary reads, uncorrected on ParaBit results).
	ECCSectorBytes int
	// QueryCacheBytes bounds the controller-DRAM result cache the query
	// planner keeps hot intermediates in. 0 selects the default of 64
	// pages; negative values disable the cache.
	QueryCacheBytes int64
}

// queryCacheBytes resolves the cache size policy.
func (c Config) queryCacheBytes() int64 {
	if c.QueryCacheBytes < 0 {
		return 0
	}
	if c.QueryCacheBytes == 0 {
		return 64 * int64(c.Geometry.PageSize)
	}
	return c.QueryCacheBytes
}

// DefaultConfig returns the paper's evaluated 512 GB SSD.
func DefaultConfig() Config {
	return Config{
		Geometry:     flash.Default(),
		Timing:       flash.DefaultTiming(),
		FTL:          ftl.DefaultConfig(),
		HostLinkGBps: 3.19,
		Scramble:     true,
	}
}

// SmallConfig returns a functionally identical but tiny device for tests
// and examples.
func SmallConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry = flash.Small()
	return cfg
}

// SmallTLCConfig returns a tiny TLC device for the §4.4.1 extension:
// three pages per wordline with TLC timing.
func SmallTLCConfig() Config {
	cfg := DefaultConfig()
	cfg.Geometry = flash.SmallTLC()
	cfg.Timing = flash.TLCTiming()
	return cfg
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if err := c.Timing.Validate(); err != nil {
		return err
	}
	if c.HostLinkGBps <= 0 {
		return fmt.Errorf("ssd: host link bandwidth %v GB/s", c.HostLinkGBps)
	}
	return nil
}

func (c Config) hostLink() *interconnect.Link {
	return interconnect.NewLink("ssd-host", c.HostLinkGBps, 0)
}
