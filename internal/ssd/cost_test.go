package ssd

import (
	"math"
	"testing"

	"parabit/internal/flash"
	"parabit/internal/ftl"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// narrowConfig builds a device whose geometry saturates with single-page
// operations, so the functional executor runs in the same serialized
// regime the analytic model assumes.
func narrowConfig(planes int) Config {
	cfg := DefaultConfig()
	cfg.Geometry = flash.Geometry{
		Channels: 1, ChipsPerChannel: 1, DiesPerChip: 1, PlanesPerDie: planes,
		BlocksPerPlane: 128, WordlinesPerBlock: 32, PageSize: 256, CellBits: 2,
	}
	cfg.FTL = ftl.DefaultConfig()
	return cfg
}

func seconds(t sim.Time) float64 { return sim.Duration(t).Seconds() }

func approxEqual(a, b, tolFrac float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tolFrac*math.Max(math.Abs(a), math.Abs(b))
}

// TestAnalyticMatchesFunctionalReAlloc: a k-ary ReAlloc reduction on a
// 2-plane device (operand reads overlap planes like the analytic model
// assumes) must land on PlanReduce's prediction.
func TestAnalyticMatchesFunctionalReAlloc(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		cfg := narrowConfig(2)
		d := MustNew(cfg)
		lpns := make([]uint64, k)
		for i := range lpns {
			lpns[i] = uint64(i)
			if _, err := d.WriteOperand(lpns[i], randPage(d, int64(i)), 0); err != nil {
				t.Fatal(err)
			}
		}
		d.ResetTiming()
		r, err := d.Reduce(latch.OpAnd, lpns, SchemeReAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanReduce(cfg.Geometry, cfg.Timing, SchemeReAlloc, latch.OpAnd, k, int64(cfg.Geometry.PageSize))
		// The analytic wave count for a single page on a 2-plane device
		// is still 1 (columns smaller than a wave clamp to one wave).
		if got, want := seconds(r.Done), plan.TotalSeconds; !approxEqual(got, want, 0.02) {
			t.Errorf("k=%d: functional %.6fs vs analytic %.6fs", k, got, want)
		}
	}
}

// TestAnalyticMatchesFunctionalPreAllocPair: the k=2 pre-allocated case
// is a pure sense.
func TestAnalyticMatchesFunctionalPreAllocPair(t *testing.T) {
	for _, op := range []latch.Op{latch.OpAnd, latch.OpOr, latch.OpXor} {
		cfg := narrowConfig(1)
		d := MustNew(cfg)
		if _, err := d.WriteOperandPair(0, 1, randPage(d, 1), randPage(d, 2), 0); err != nil {
			t.Fatal(err)
		}
		d.ResetTiming()
		r, err := d.Reduce(op, []uint64{0, 1}, SchemePreAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanReduce(cfg.Geometry, cfg.Timing, SchemePreAlloc, op, 2, int64(cfg.Geometry.PageSize))
		if got, want := seconds(r.Done), plan.TotalSeconds; !approxEqual(got, want, 0.001) {
			t.Errorf("%v: functional %.6fs vs analytic %.6fs", op, got, want)
		}
	}
}

// TestAnalyticMatchesFunctionalPreAllocChain: on a single plane the pair
// senses serialize exactly as the saturated analytic model assumes.
func TestAnalyticMatchesFunctionalPreAllocChain(t *testing.T) {
	for _, k := range []int{4, 6} {
		cfg := narrowConfig(1)
		d := MustNew(cfg)
		lpns := make([]uint64, k)
		for i := 0; i < k; i += 2 {
			lpns[i], lpns[i+1] = uint64(i), uint64(i+1)
			if _, err := d.WriteOperandPair(lpns[i], lpns[i+1], randPage(d, int64(i)), randPage(d, int64(i+1)), 0); err != nil {
				t.Fatal(err)
			}
		}
		d.ResetTiming()
		r, err := d.Reduce(latch.OpAnd, lpns, SchemePreAlloc, 0)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanReduce(cfg.Geometry, cfg.Timing, SchemePreAlloc, latch.OpAnd, k, int64(cfg.Geometry.PageSize))
		if got, want := seconds(r.Done), plan.TotalSeconds; !approxEqual(got, want, 0.02) {
			t.Errorf("k=%d: functional %.6fs vs analytic %.6fs", k, got, want)
		}
	}
}

// TestAnalyticMatchesFunctionalLocFree: chained reduction on one plane.
func TestAnalyticMatchesFunctionalLocFree(t *testing.T) {
	for _, tc := range []struct {
		op latch.Op
		k  int
	}{
		{latch.OpAnd, 2}, {latch.OpAnd, 5}, {latch.OpOr, 4},
		{latch.OpXor, 2}, {latch.OpXor, 4},
	} {
		cfg := narrowConfig(1)
		d := MustNew(cfg)
		lpns := make([]uint64, tc.k)
		data := make([][]byte, tc.k)
		for i := range lpns {
			lpns[i] = uint64(i)
			data[i] = randPage(d, int64(i))
		}
		if _, err := d.WriteOperandLSBGroup(lpns, data, 0); err != nil {
			t.Fatal(err)
		}
		d.ResetTiming()
		r, err := d.Reduce(tc.op, lpns, SchemeLocFree, 0)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanReduce(cfg.Geometry, cfg.Timing, SchemeLocFree, tc.op, tc.k, int64(cfg.Geometry.PageSize))
		if got, want := seconds(r.Done), plan.TotalSeconds; !approxEqual(got, want, 0.001) {
			t.Errorf("%v k=%d: functional %.6fs vs analytic %.6fs", tc.op, tc.k, got, want)
		}
	}
}

// TestAnalyticMatchesFunctionalFlashCosmos: block-colocated MWS groups on
// one plane — whole-chunk folds (k ≤ 8), multi-chunk folds with a
// combine, and the lone-leftover shape — must land on PlanReduce's
// Flash-Cosmos prediction.
func TestAnalyticMatchesFunctionalFlashCosmos(t *testing.T) {
	for _, tc := range []struct {
		op latch.Op
		k  int
	}{
		{latch.OpAnd, 2}, {latch.OpAnd, 5}, {latch.OpAnd, 8},
		{latch.OpOr, 8}, {latch.OpAnd, 11}, {latch.OpOr, 9},
	} {
		cfg := narrowConfig(1)
		d := MustNew(cfg)
		lpns := make([]uint64, tc.k)
		data := make([][]byte, tc.k)
		for i := range lpns {
			lpns[i] = uint64(i)
			data[i] = randPage(d, int64(i))
		}
		if _, err := d.WriteOperandMWSGroup(lpns, data, 0); err != nil {
			t.Fatal(err)
		}
		d.ResetTiming()
		r, err := d.Reduce(tc.op, lpns, SchemeFlashCosmos, 0)
		if err != nil {
			t.Fatal(err)
		}
		plan := PlanReduce(cfg.Geometry, cfg.Timing, SchemeFlashCosmos, tc.op, tc.k, int64(cfg.Geometry.PageSize))
		if got, want := seconds(r.Done), plan.TotalSeconds; !approxEqual(got, want, 0.02) {
			t.Errorf("%v k=%d: functional %.6fs vs analytic %.6fs", tc.op, tc.k, got, want)
		}
		// The colocated layout realizes pure MWS folds except for a lone
		// leftover operand (k ≡ 1 mod 8), which rides the pairwise path
		// and is honestly counted as a fallback.
		var wantFallbacks int64
		if tc.k > latch.MaxMWSOperands && tc.k%latch.MaxMWSOperands == 1 {
			wantFallbacks = 1
		}
		if f := d.Stats().Fallbacks; f != wantFallbacks {
			t.Errorf("%v k=%d: %d fallbacks on a colocated group, want %d", tc.op, tc.k, f, wantFallbacks)
		}
	}
}

// TestPlanReduceBitmapAnchors checks the §5.3.2 bitmap case study
// anchors on the paper-scale geometry: 360 day-columns of 100 MB (800 M
// users) reduce in ≈6.1 s under ReAlloc and ≈3.2 s under ParaBit.
func TestPlanReduceBitmapAnchors(t *testing.T) {
	geo := flash.Default()
	tm := flash.DefaultTiming()
	column := int64(800_000_000 / 8) // 100 MB of user bits
	re := PlanReduce(geo, tm, SchemeReAlloc, latch.OpAnd, 360, column)
	if re.TotalSeconds < 5.5 || re.TotalSeconds > 7.0 {
		t.Errorf("ReAlloc bitmap = %.2fs, paper reports 6.137s", re.TotalSeconds)
	}
	pre := PlanReduce(geo, tm, SchemePreAlloc, latch.OpAnd, 360, column)
	if pre.TotalSeconds < 2.7 || pre.TotalSeconds > 3.7 {
		t.Errorf("ParaBit bitmap = %.2fs, paper reports 3.179s", pre.TotalSeconds)
	}
	if ratio := pre.TotalSeconds / re.TotalSeconds; ratio < 0.45 || ratio > 0.6 {
		t.Errorf("ParaBit/ReAlloc = %.2f, want ≈0.52", ratio)
	}
	lf := PlanReduce(geo, tm, SchemeLocFree, latch.OpAnd, 360, column)
	if lf.TotalSeconds >= pre.TotalSeconds/5 {
		t.Errorf("LocFree bitmap = %.2fs, expected well under ParaBit's %.2fs", lf.TotalSeconds, pre.TotalSeconds)
	}
	if lf.Reallocations != 0 || re.Reallocations != 359 || pre.Reallocations != 179 {
		t.Errorf("realloc counts: lf=%d re=%d pre=%d", lf.Reallocations, re.Reallocations, pre.Reallocations)
	}
}

// TestReallocStepMatchesPaperScale: one realloc step on 8 KB pages is
// ≈1.35 ms (sense-read + two programs + transfers + sense), the per-step
// figure behind the paper's 6137 ms bitmap number.
func TestReallocStepMatchesPaperScale(t *testing.T) {
	tm := flash.DefaultTiming()
	step := ReallocStepLatency(tm, latch.OpAnd, 1, 8192).Seconds() * 1000
	if step < 1.3 || step > 1.45 {
		t.Errorf("realloc step = %.3f ms, want ≈1.35", step)
	}
}
