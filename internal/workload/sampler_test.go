package workload

import (
	"math/rand"
	"testing"
)

func TestDaySamplerUniform(t *testing.T) {
	spec := CustomBitmap(1000, 10, 0)
	sample := spec.DaySampler(rand.New(rand.NewSource(1)))
	counts := make([]int, spec.Days())
	const draws = 20000
	for i := 0; i < draws; i++ {
		d := sample()
		if d < 0 || d >= spec.Days() {
			t.Fatalf("sample %d out of range", d)
		}
		counts[d]++
	}
	for d, n := range counts {
		if n < draws/spec.Days()/2 || n > draws/spec.Days()*2 {
			t.Fatalf("uniform sampler skewed: day %d drawn %d of %d", d, n, draws)
		}
	}
}

func TestDaySamplerZipfSkewsHot(t *testing.T) {
	spec := CustomBitmap(1000, 30, 1.5)
	sample := spec.DaySampler(rand.New(rand.NewSource(2)))
	counts := make([]int, spec.Days())
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[sample()]++
	}
	// Day 0 is the hot column: it must dominate the tail decisively.
	if counts[0] < 4*counts[spec.Days()-1] && counts[spec.Days()-1] > 0 {
		t.Fatalf("skew 1.5 not hot-skewed: day0=%d tail=%d", counts[0], counts[spec.Days()-1])
	}
	if counts[0] < draws/10 {
		t.Fatalf("hot day drew only %d of %d", counts[0], draws)
	}
}

func TestDaySamplerDeterministic(t *testing.T) {
	spec := CustomBitmap(1000, 15, 1.2)
	a := spec.DaySampler(rand.New(rand.NewSource(9)))
	b := spec.DaySampler(rand.New(rand.NewSource(9)))
	for i := 0; i < 100; i++ {
		if x, y := a(), b(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestCustomBitmapSpecVolumes(t *testing.T) {
	spec := CustomBitmap(1<<20, 7, 1.1)
	if spec.Days() != 7 {
		t.Fatalf("days = %d", spec.Days())
	}
	if spec.ColumnBytes() != 1<<17 {
		t.Fatalf("column bytes = %d", spec.ColumnBytes())
	}
	if spec.HotSkew != 1.1 {
		t.Fatalf("skew = %v", spec.HotSkew)
	}
}
