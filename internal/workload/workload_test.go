package workload

import (
	"math"
	"testing"

	"parabit/internal/bitvec"
)

func TestSegmentationPaperVolumes(t *testing.T) {
	// §3: 200,000 images at 0.72 MB each = 140 GB (sic: 0.72e6 x 2e5 =
	// 144e9, the paper rounds to "140GB"); output a third of that.
	s := PaperSegmentation(200_000)
	perImage := float64(s.InputBytes()) / float64(s.NumImages)
	if perImage != 720_000 {
		t.Errorf("per-image bytes = %.0f, want 720000 (0.72 MB)", perImage)
	}
	if got := float64(s.InputBytes()) / 1e9; math.Abs(got-144) > 0.1 {
		t.Errorf("input = %.1f GB, want 144 (paper's '140GB')", got)
	}
	if s.OutputBytes()*3 != s.InputBytes() {
		t.Error("output is not a third of input")
	}
	k, col := s.OperandColumns()
	if k != 3 || col*3 != s.InputBytes() {
		t.Errorf("columns: k=%d col=%d", k, col)
	}
	// Two ANDs per pixel per color.
	if s.ANDBits() != 2*s.Pixels()*4 {
		t.Errorf("AND bits = %d", s.ANDBits())
	}
}

func TestSegmentationFunctionalGolden(t *testing.T) {
	spec := SegmentationSpec{NumImages: 2, Width: 16, Height: 8, Levels: 64, Colors: 4}
	d, err := GenerateSegmentation(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Golden equals the bulk AND of the three planes.
	want := bitvec.And(bitvec.And(d.Planes[0], d.Planes[1]), d.Planes[2])
	if !d.Golden.Equal(want) {
		t.Fatal("golden disagrees with bulk AND of the planes")
	}
	// Non-degenerate: some hits, some misses.
	if d.Golden.PopCount() == 0 || d.Golden.PopCount() == d.Golden.Len() {
		t.Fatalf("degenerate recognition result: %d/%d", d.Golden.PopCount(), d.Golden.Len())
	}
}

func TestSegmentationRejectsBadSpec(t *testing.T) {
	if _, err := GenerateSegmentation(SegmentationSpec{}, 1); err == nil {
		t.Fatal("zero spec accepted")
	}
	if _, err := GenerateSegmentation(SegmentationSpec{NumImages: 1, Width: 4, Height: 4, Levels: 8, Colors: 9}, 1); err == nil {
		t.Fatal("9 colors accepted (bit packing caps at 8)")
	}
}

func TestBitmapPaperVolumes(t *testing.T) {
	// §5.3.2: 800 M users, 12 months -> 360 columns of 100 MB = 33.99 GB
	// (paper says "33.99GB"; 360 x 1e8 = 3.6e10 = 36 GB decimal — the
	// paper's figure matches 360 x 800e6/8 / 2^30 GiB ≈ 33.5, so we
	// check the byte count directly).
	s := PaperBitmap(12)
	if s.Days() != 360 {
		t.Errorf("days = %d", s.Days())
	}
	if s.ColumnBytes() != 100_000_000 {
		t.Errorf("column = %d bytes, want 1e8", s.ColumnBytes())
	}
	if got := float64(s.InputBytes()) / (1 << 30); math.Abs(got-33.5) > 0.2 {
		t.Errorf("input = %.2f GiB, want ≈33.5 (paper: 33.99 GB)", got)
	}
	if s.OutputBytes() != s.ColumnBytes() {
		t.Error("output should be one column")
	}
}

func TestBitmapFunctionalGolden(t *testing.T) {
	spec := BitmapSpec{Users: 500, Months: 2, DaysPerMonth: 5}
	d, err := GenerateBitmap(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Columns) != 10 {
		t.Fatalf("%d columns", len(d.Columns))
	}
	want := d.Columns[0].Clone()
	for _, c := range d.Columns[1:] {
		bitvec.AndInto(want, want, c)
	}
	if !d.Golden.Equal(want) || d.ActiveCount != want.PopCount() {
		t.Fatal("golden/count wrong")
	}
	// The power-user model should leave a small non-empty core.
	if d.ActiveCount == 0 || d.ActiveCount > 250 {
		t.Fatalf("always-active count = %d of 500, want small non-zero", d.ActiveCount)
	}
}

func TestBitmapRejectsBadSpec(t *testing.T) {
	if _, err := GenerateBitmap(BitmapSpec{}, 1); err == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestEncryptionPaperVolumes(t *testing.T) {
	// §5.3.3: 100,000 images at 800x600x3 channels x 8 bits = 1.44 MB
	// each, "140GB" total.
	s := PaperEncryption(100_000)
	if s.ImageBytes() != 1_440_000 {
		t.Errorf("image = %d bytes, want 1.44e6", s.ImageBytes())
	}
	if got := float64(s.InputBytes()) / 1e9; math.Abs(got-144) > 0.1 {
		t.Errorf("input = %.1f GB", got)
	}
}

func TestEncryptionFunctionalGolden(t *testing.T) {
	spec := EncryptionSpec{NumImages: 3, Width: 8, Height: 4, BitsPerChannel: 8, Channels: 3}
	d, err := GenerateEncryption(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range d.Images {
		// Decrypting recovers the original.
		if !bitvec.Xor(d.Ciphers[i], d.Key).Equal(img) {
			t.Fatalf("image %d: cipher XOR key != original", i)
		}
		// Cipher differs from plaintext (overwhelmingly likely).
		if d.Ciphers[i].Equal(img) {
			t.Fatalf("image %d: cipher equals plaintext", i)
		}
	}
}

func TestEncryptionRejectsBadSpec(t *testing.T) {
	if _, err := GenerateEncryption(EncryptionSpec{}, 1); err == nil {
		t.Fatal("zero spec accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a, _ := GenerateBitmap(BitmapSpec{Users: 100, Months: 1, DaysPerMonth: 3}, 7)
	b, _ := GenerateBitmap(BitmapSpec{Users: 100, Months: 1, DaysPerMonth: 3}, 7)
	if !a.Golden.Equal(b.Golden) {
		t.Fatal("same seed, different bitmap data")
	}
	c, _ := GenerateBitmap(BitmapSpec{Users: 100, Months: 1, DaysPerMonth: 3}, 8)
	if a.Golden.Equal(c.Golden) && a.Columns[0].Equal(c.Columns[0]) {
		t.Fatal("different seeds produced identical data")
	}
}
