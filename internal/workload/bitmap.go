package workload

import (
	"fmt"
	"math/rand"

	"parabit/internal/bitvec"
)

// BitmapSpec parameterizes the bitmap-index case study (§5.3.2): count
// the users active on every day of the past Months months.
type BitmapSpec struct {
	Users  int64
	Months int
	// DaysPerMonth fixes the column count (30 in the paper's 33.99 GB
	// at 12 months over 800 M users).
	DaysPerMonth int
	// HotSkew shapes which day columns queries touch when the bitmap is
	// served live: the s parameter of a Zipf distribution over columns
	// (day 0 hottest). Values <= 1 mean uniform — every column equally
	// likely. The paper's batch experiment reduces over every column, so
	// only the serving layer reads this.
	HotSkew float64
}

// PaperBitmap returns the paper-scale configuration: 800 million users,
// m months (1-12 in Fig. 14b).
func PaperBitmap(months int) BitmapSpec {
	return BitmapSpec{Users: 800_000_000, Months: months, DaysPerMonth: 30}
}

// CustomBitmap returns a serving-sized configuration: users and day count
// free, query skew set by the Zipf s parameter (<= 1 for uniform).
func CustomBitmap(users int64, days int, skew float64) BitmapSpec {
	return BitmapSpec{Users: users, Months: 1, DaysPerMonth: days, HotSkew: skew}
}

// DaySampler returns a sampler over day-column indices following the
// spec's HotSkew: Zipf-distributed (day 0 hottest) when HotSkew > 1,
// uniform otherwise. Deterministic for a seeded rng.
func (s BitmapSpec) DaySampler(rng *rand.Rand) func() int {
	days := s.Days()
	if s.HotSkew > 1 {
		z := rand.NewZipf(rng, s.HotSkew, 1, uint64(days-1))
		return func() int { return int(z.Uint64()) }
	}
	return func() int { return rng.Intn(days) }
}

// Days returns the number of day columns (reduction operands).
func (s BitmapSpec) Days() int { return s.Months * s.DaysPerMonth }

// ColumnBytes returns one day column's size: one bit per user.
func (s BitmapSpec) ColumnBytes() int64 { return (s.Users + 7) / 8 }

// InputBytes returns the whole working set (33.99 GB at 12 months).
func (s BitmapSpec) InputBytes() int64 { return int64(s.Days()) * s.ColumnBytes() }

// OutputBytes returns the result column (800 M bits = 100 MB).
func (s BitmapSpec) OutputBytes() int64 { return s.ColumnBytes() }

// ANDBits returns total single-bit AND operations ((days-1) per user).
func (s BitmapSpec) ANDBits() int64 { return int64(s.Days()-1) * s.Users }

// BitmapData is a functional instance: day columns plus the golden
// always-active vector and its population count.
type BitmapData struct {
	Spec    BitmapSpec
	Columns []*bitvec.Vector
	Golden  *bitvec.Vector
	// ActiveCount is the answer the application wants: how many users
	// were active every day.
	ActiveCount int
}

// GenerateBitmap builds a synthetic activity matrix. Per-user activity
// probability is drawn once per user and applied per day, giving a
// heavy-tailed "power user" population so the every-day intersection is
// small but non-empty, like real engagement data.
func GenerateBitmap(spec BitmapSpec, seed int64) (*BitmapData, error) {
	if spec.Users <= 0 || spec.Months <= 0 || spec.DaysPerMonth <= 0 {
		return nil, fmt.Errorf("workload: bad bitmap spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	users := int(spec.Users)
	days := spec.Days()
	d := &BitmapData{Spec: spec, Columns: make([]*bitvec.Vector, days)}
	for c := range d.Columns {
		d.Columns[c] = bitvec.New(users)
	}
	for u := 0; u < users; u++ {
		// Mostly casual users, some daily-active.
		pActive := rng.Float64()
		if rng.Float64() < 0.1 {
			pActive = 0.95 + 0.05*rng.Float64()
		}
		for c := 0; c < days; c++ {
			if rng.Float64() < pActive {
				d.Columns[c].Set(u, true)
			}
		}
	}
	d.Golden = d.Columns[0].Clone()
	for _, col := range d.Columns[1:] {
		bitvec.AndInto(d.Golden, d.Golden, col)
	}
	d.ActiveCount = d.Golden.PopCount()
	return d, nil
}
