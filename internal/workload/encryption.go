package workload

import (
	"fmt"
	"math/rand"

	"parabit/internal/bitvec"
)

// EncryptionSpec parameterizes the image-encryption case study (§5.3.3):
// Cipher(x) = Ori(x) XOR Key(x) over full-depth images.
type EncryptionSpec struct {
	NumImages int
	Width     int
	Height    int
	// BitsPerChannel is 8 in the paper (1.44 MB per 800x600 RGB image,
	// 140 GB at ~100,000 images).
	BitsPerChannel int
	Channels       int
}

// PaperEncryption returns the paper-scale configuration for a given
// image count (5,000-100,000 in Fig. 14c).
func PaperEncryption(numImages int) EncryptionSpec {
	return EncryptionSpec{NumImages: numImages, Width: 800, Height: 600, BitsPerChannel: 8, Channels: 3}
}

// ImageBytes returns one image's size.
func (s EncryptionSpec) ImageBytes() int64 {
	return int64(s.Width) * int64(s.Height) * int64(s.Channels) * int64(s.BitsPerChannel) / 8
}

// InputBytes returns the original-image working set.
func (s EncryptionSpec) InputBytes() int64 { return int64(s.NumImages) * s.ImageBytes() }

// XORBits returns total single-bit XOR operations (one per data bit).
func (s EncryptionSpec) XORBits() int64 { return s.InputBytes() * 8 }

// EncryptionData is a functional instance: images, the key image, and
// golden ciphertexts.
type EncryptionData struct {
	Spec    EncryptionSpec
	Images  []*bitvec.Vector
	Key     *bitvec.Vector
	Ciphers []*bitvec.Vector
}

// GenerateEncryption builds synthetic images and one key image.
func GenerateEncryption(spec EncryptionSpec, seed int64) (*EncryptionData, error) {
	if spec.NumImages <= 0 || spec.Width <= 0 || spec.Height <= 0 ||
		spec.BitsPerChannel <= 0 || spec.Channels <= 0 {
		return nil, fmt.Errorf("workload: bad encryption spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	n := int(spec.ImageBytes())
	d := &EncryptionData{Spec: spec}
	keyBytes := make([]byte, n)
	rng.Read(keyBytes)
	d.Key = bitvec.FromBytes(keyBytes)
	for i := 0; i < spec.NumImages; i++ {
		img := make([]byte, n)
		rng.Read(img)
		v := bitvec.FromBytes(img)
		d.Images = append(d.Images, v)
		d.Ciphers = append(d.Ciphers, bitvec.Xor(v, d.Key))
	}
	return d, nil
}
