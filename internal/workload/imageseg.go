// Package workload implements the paper's three case-study workloads
// (§5.3): YUV-class image segmentation, bitmap index reduction, and
// XOR image encryption. Each workload has two faces:
//
//   - a Spec with the paper-scale parameters and the derived data
//     volumes and operation structure, consumed by the analytic
//     experiment drivers; and
//   - a functional generator that produces synthetic operand data plus
//     the golden result at any scale, consumed by the examples and the
//     end-to-end tests that run real data through the simulated SSD.
//
// Synthetic data substitutes for the paper's proprietary image sets; the
// evaluation depends only on data volumes and operation counts, which
// the specs reproduce exactly.
package workload

import (
	"fmt"
	"math/rand"

	"parabit/internal/bitvec"
)

// SegmentationSpec parameterizes the image-segmentation case study
// (§3 and §5.3.1): color recognition over YUV class bit-planes.
type SegmentationSpec struct {
	NumImages int
	Width     int
	Height    int
	// Levels is the per-channel YUV discretization (256 in §5.3.1).
	Levels int
	// Colors is the number of recognized colors; each contributes one
	// class bit per channel per pixel (4 in the paper, giving the 4-bit
	// channel encoding and the 0.72 MB/image footprint).
	Colors int
}

// PaperSegmentation returns the paper-scale configuration for a given
// image count (10,000-200,000 in Fig. 4/14a).
func PaperSegmentation(numImages int) SegmentationSpec {
	return SegmentationSpec{NumImages: numImages, Width: 800, Height: 600, Levels: 256, Colors: 4}
}

// Pixels returns total pixels across images.
func (s SegmentationSpec) Pixels() int64 {
	return int64(s.NumImages) * int64(s.Width) * int64(s.Height)
}

// ChannelPlaneBytes returns the size of one channel's class bit-plane:
// Colors bits per pixel.
func (s SegmentationSpec) ChannelPlaneBytes() int64 {
	return s.Pixels() * int64(s.Colors) / 8
}

// InputBytes returns the preprocessed working set: three channel planes
// (the paper's 0.72 MB per image, 140 GB at 200,000 images).
func (s SegmentationSpec) InputBytes() int64 { return 3 * s.ChannelPlaneBytes() }

// OutputBytes returns the recognition result size: one class plane
// (a third of the input, as §5.3.1 notes).
func (s SegmentationSpec) OutputBytes() int64 { return s.ChannelPlaneBytes() }

// OperandColumns returns the reduction shape: K operand columns of
// ColumnBytes each, combined with AND (Y AND U AND V per pixel-color).
func (s SegmentationSpec) OperandColumns() (k int, columnBytes int64) {
	return 3, s.ChannelPlaneBytes()
}

// ANDBits returns the total single-bit AND operations the recognition
// performs (two per pixel per color) — the PIM/ISC compute volume.
func (s SegmentationSpec) ANDBits() int64 {
	return 2 * s.Pixels() * int64(s.Colors)
}

// ColorClass is a per-channel value range for one recognized color, in
// the spirit of the paper's orange example (Y_Class/U_Class/V_Class).
type ColorClass struct {
	YLo, YHi int // inclusive level range on Y
	ULo, UHi int
	VLo, VHi int
}

// SegmentationData is a functional instance: channel class planes and
// the golden recognition result.
type SegmentationData struct {
	Spec SegmentationSpec
	// Planes are the three operand columns (Y, U, V): bit i*Colors+c of
	// a plane says whether pixel i's channel value falls in color c's
	// class.
	Planes [3]*bitvec.Vector
	// Golden is Planes[0] AND Planes[1] AND Planes[2].
	Golden *bitvec.Vector
}

// GenerateSegmentation builds a synthetic segmentation instance: random
// pixel values classified against Colors random-but-wide class ranges so
// the result is a non-trivial mix of hits and misses.
func GenerateSegmentation(spec SegmentationSpec, seed int64) (*SegmentationData, error) {
	if spec.NumImages <= 0 || spec.Width <= 0 || spec.Height <= 0 ||
		spec.Levels <= 1 || spec.Colors <= 0 || spec.Colors > 8 {
		return nil, fmt.Errorf("workload: bad segmentation spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(seed))
	classes := make([]ColorClass, spec.Colors)
	for c := range classes {
		span := spec.Levels / 2
		classes[c] = ColorClass{
			YLo: rng.Intn(spec.Levels - span), ULo: rng.Intn(spec.Levels - span), VLo: rng.Intn(spec.Levels - span),
		}
		classes[c].YHi = classes[c].YLo + span
		classes[c].UHi = classes[c].ULo + span
		classes[c].VHi = classes[c].VLo + span
	}
	pixels := int(spec.Pixels())
	bits := pixels * spec.Colors
	d := &SegmentationData{Spec: spec}
	for p := range d.Planes {
		d.Planes[p] = bitvec.New(bits)
	}
	d.Golden = bitvec.New(bits)
	for i := 0; i < pixels; i++ {
		y, u, v := rng.Intn(spec.Levels), rng.Intn(spec.Levels), rng.Intn(spec.Levels)
		for c, cl := range classes {
			bit := i*spec.Colors + c
			yIn := y >= cl.YLo && y <= cl.YHi
			uIn := u >= cl.ULo && u <= cl.UHi
			vIn := v >= cl.VLo && v <= cl.VHi
			d.Planes[0].Set(bit, yIn)
			d.Planes[1].Set(bit, uIn)
			d.Planes[2].Set(bit, vIn)
			d.Golden.Set(bit, yIn && uIn && vIn)
		}
	}
	return d, nil
}
