// Package wallclock is the single sanctioned gateway to the host's
// real clock. Simulation packages under internal/ must never read wall
// time — all latency there flows through internal/sim's virtual clock,
// and the simtime analyzer enforces that. Reporting tools (cmd/...)
// that want to print how long a run took on the host use this package
// instead of calling time.Now directly, which keeps every wall-clock
// read greppable in one place.
package wallclock

import "time"

// Stamp is an opaque wall-clock reading taken by Start.
type Stamp struct{ t time.Time }

// Start records the current wall-clock time.
func Start() Stamp { return Stamp{t: time.Now()} }

// Elapsed reports the wall-clock time since the stamp was taken.
func (s Stamp) Elapsed() time.Duration { return time.Since(s.t) }
