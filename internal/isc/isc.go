// Package isc models the in-storage-computing baseline of the paper's
// evaluation (§5.1): the Cosmos OpenSSD platform, whose Zynq-7000 FPGA
// computes bitwise operations in 6-input LUTs. The FPGA runs at 100 MHz
// and the paper's configuration lets each LUT evaluate five two-input
// bitwise operations at once, so one cycle produces
// LUTs x 5 result bits — about 136 KB of results every 10 ns, which is why
// ISC wins the raw 8 MB-operand latency comparison in Fig. 13(b).
//
// Data still has to reach the FPGA: the attached 970 PRO streams operands
// over the measured 3.35 GB/s path, and that movement dominates every
// case study (Fig. 4, Fig. 14).
package isc

import (
	"fmt"
	"math"

	"parabit/internal/interconnect"
	"parabit/internal/latch"
	"parabit/internal/sim"
)

// Config describes the FPGA fabric.
type Config struct {
	LUTs      int     // available 6-input LUTs
	OpsPerLUT int     // two-input bitwise results per LUT per cycle
	ClockHz   float64 // fabric clock
	// BRAMBits bounds on-chip operand staging; larger working sets stream.
	BRAMBits int64
	// ChunkBytes is the operand staging granularity: bulk data streams
	// through BRAM in chunks of this size (half the BRAM, double-buffered).
	ChunkBytes int64
	// ChunkSetup is the per-chunk DMA/descriptor overhead on the real
	// platform. Fig. 13's op-latency comparison excludes it (operands
	// pre-staged); the case-study compute times include it — it is what
	// makes the paper's measured ISC compute seconds-scale despite the
	// fabric's enormous raw throughput.
	ChunkSetup sim.Duration
}

// DefaultConfig returns the paper's Cosmos configuration: 218,600 LUTs,
// five ops per LUT, 100 MHz, 19.2 Mb BRAM.
func DefaultConfig() Config {
	return Config{
		LUTs:       218600,
		OpsPerLUT:  5,
		ClockHz:    100e6,
		BRAMBits:   19_200_000,
		ChunkBytes: 1_200_000, // 9.6 Mb: half the BRAM, double-buffered
		// Calibrated so the motivation study's AND compute over the
		// 140 GB working set lands at the paper's ≈0.69 s (§3: movement
		// is 60.2x the AND time).
		ChunkSetup: sim.Duration(5.9 * 1000),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.LUTs <= 0 || c.OpsPerLUT <= 0 || c.ClockHz <= 0 || c.BRAMBits <= 0 ||
		c.ChunkBytes <= 0 || c.ChunkSetup < 0 {
		return fmt.Errorf("isc: invalid config %+v", c)
	}
	return nil
}

// Device is the ISC platform: FPGA fabric plus the SSD-to-FPGA link.
type Device struct {
	cfg  Config
	link *interconnect.Link
}

// New builds a device; a nil link defaults to the calibrated SSD-to-FPGA
// path.
func New(cfg Config, link *interconnect.Link) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if link == nil {
		link = interconnect.PCIeGen3x4ToFPGA()
	}
	return &Device{cfg: cfg, link: link}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Link returns the SSD-to-FPGA interconnect.
func (d *Device) Link() *interconnect.Link { return d.link }

// CycleTime returns one fabric clock period.
func (d *Device) CycleTime() sim.Duration {
	return sim.Duration(math.Round(1e9 / d.cfg.ClockHz))
}

// BitsPerCycle returns result bits produced per cycle across the fabric.
func (d *Device) BitsPerCycle() int64 {
	return int64(d.cfg.LUTs) * int64(d.cfg.OpsPerLUT)
}

// OpLatency returns the fabric latency of one bulk bitwise operation over
// operands of n bytes each. Every two-input operation is a single LUT
// configuration, so the op type does not change the cost — the property
// Fig. 13(a) shows ("only one process cycle is required").
func (d *Device) OpLatency(op latch.Op, n int64) sim.Duration {
	_ = op // any two-input boolean function fits one LUT pass
	bits := n * 8
	cycles := (bits + d.BitsPerCycle() - 1) / d.BitsPerCycle()
	if cycles < 1 {
		cycles = 1
	}
	return sim.Duration(cycles) * d.CycleTime()
}

// MovementSeconds returns the time to stream n bytes from flash to the
// FPGA.
func (d *Device) MovementSeconds(n int64) float64 { return d.link.BulkSeconds(n) }

// Plan mirrors pim.Plan for the ISC execution of a bulk workload.
type Plan struct {
	MoveBytes    int64
	MoveSeconds  float64
	ComputeSecs  float64
	TotalSeconds float64
}

// PlanBulk plans numOps bulk operations of operandBytes each with
// moveBytes of input streamed from flash. Unlike OpLatency, bulk compute
// pays the per-chunk BRAM staging overhead: operands pass through the
// FPGA's block RAM in ChunkBytes pieces, each costing ChunkSetup of DMA
// and descriptor handling on top of the fabric time.
func (d *Device) PlanBulk(op latch.Op, numOps int64, operandBytes int64, moveBytes int64) Plan {
	fabric := sim.Duration(numOps) * d.OpLatency(op, operandBytes)
	totalInput := numOps * operandBytes
	chunks := (totalInput + d.cfg.ChunkBytes - 1) / d.cfg.ChunkBytes
	staging := sim.Duration(chunks) * d.cfg.ChunkSetup
	p := Plan{
		MoveBytes:   moveBytes,
		MoveSeconds: d.MovementSeconds(moveBytes),
		ComputeSecs: (fabric + staging).Seconds(),
	}
	p.TotalSeconds = p.MoveSeconds + p.ComputeSecs
	return p
}
