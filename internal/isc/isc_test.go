package isc

import (
	"math"
	"testing"

	"parabit/internal/latch"
	"parabit/internal/sim"
)

func dev() *Device { return New(DefaultConfig(), nil) }

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.LUTs != 218600 {
		t.Errorf("LUTs = %d, want 218600 (Zynq-7000, §5.1)", c.LUTs)
	}
	if c.OpsPerLUT != 5 {
		t.Errorf("ops/LUT = %d, want 5", c.OpsPerLUT)
	}
	if c.ClockHz != 100e6 {
		t.Errorf("clock = %v, want 100 MHz", c.ClockHz)
	}
}

func TestSingleOpIsOneCycle(t *testing.T) {
	// Fig. 13(a): "For ISC, bitwise operation is also performed at ns
	// level while only one process cycle is required."
	d := dev()
	for _, op := range latch.Ops {
		if got := d.OpLatency(op, 8); got != 10*sim.Nanosecond {
			t.Errorf("%v on 8 bytes = %v, want one 10ns cycle", op, got)
		}
	}
}

func TestOpTypeIrrelevant(t *testing.T) {
	d := dev()
	base := d.OpLatency(latch.OpAnd, 8<<20)
	for _, op := range latch.Ops {
		if d.OpLatency(op, 8<<20) != base {
			t.Errorf("%v has different latency than AND", op)
		}
	}
}

func Test8MBFastestOfAllSchemes(t *testing.T) {
	// Fig. 13(b): "ISC w/ 8MB achieves the best performance" — sub-µs,
	// faster than PIM's tens of µs and ParaBit's 25-100 µs.
	d := dev()
	got := d.OpLatency(latch.OpXor, 8<<20)
	if got >= 1*sim.Microsecond {
		t.Errorf("8 MB op = %v, want < 1µs", got)
	}
	// 8 MB = 67.1 Mbit at 1.093 Mbit/cycle -> 62 cycles -> 620 ns.
	if got != 620*sim.Nanosecond {
		t.Errorf("8 MB op = %v, want 620ns", got)
	}
}

func TestBitsPerCycle(t *testing.T) {
	d := dev()
	if got := d.BitsPerCycle(); got != 218600*5 {
		t.Errorf("bits/cycle = %d", got)
	}
}

func TestMovementCalibration(t *testing.T) {
	// Fig. 4: 140 GB to the FPGA in ≈41.8 s.
	d := dev()
	if got := d.MovementSeconds(140e9); math.Abs(got-41.8) > 0.1 {
		t.Errorf("movement = %.2f s", got)
	}
}

func TestMotivationRatio(t *testing.T) {
	// §3: ISC movement (41.8 s) is 60.2x its AND compute time on the
	// motivation workload, implying ≈0.694 s of compute while streaming
	// the 140 GB working set through BRAM-sized chunks.
	d := dev()
	p := d.PlanBulk(latch.OpAnd, 1, 140e9, 140e9)
	implied := d.MovementSeconds(140e9) / 60.2
	if math.Abs(p.ComputeSecs-implied) > 0.1 {
		t.Errorf("bulk compute %.3fs, paper-implied %.3fs", p.ComputeSecs, implied)
	}
	if ratio := p.MoveSeconds / p.ComputeSecs; math.Abs(ratio-60.2) > 6 {
		t.Errorf("movement/compute = %.1fx, want ≈60.2x", ratio)
	}
}

func TestFig13ExcludesStaging(t *testing.T) {
	// Fig. 13's op latency is fabric-only (operands pre-staged); a single
	// 8 MB op must stay sub-µs even though PlanBulk charges staging.
	d := dev()
	if got := d.OpLatency(latch.OpAnd, 8<<20); got >= 1*sim.Microsecond {
		t.Errorf("fabric 8 MB op = %v", got)
	}
	p := d.PlanBulk(latch.OpAnd, 1, 8<<20, 0)
	if p.ComputeSecs <= d.OpLatency(latch.OpAnd, 8<<20).Seconds() {
		t.Error("bulk plan did not charge staging overhead")
	}
}

func TestPlanBulkTotals(t *testing.T) {
	d := dev()
	p := d.PlanBulk(latch.OpXor, 10, 8<<20, 1e9)
	if p.TotalSeconds != p.MoveSeconds+p.ComputeSecs {
		t.Errorf("plan inconsistent: %+v", p)
	}
}

func TestCycleTime(t *testing.T) {
	if got := dev().CycleTime(); got != 10*sim.Nanosecond {
		t.Errorf("cycle = %v", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LUTs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	New(cfg, nil)
}
