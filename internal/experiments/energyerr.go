package experiments

import (
	"fmt"
)

func init() {
	register("fig16", "Energy consumption of ParaBit schemes", Fig16)
	register("fig17", "Bit errors vs P/E cycles and sensing count", Fig17)
}

// Fig16 renders the normalized per-operation energies.
func Fig16(env *Env) Result {
	r := Result{
		Name:   "Figure 16: per-operation energy, normalized",
		Header: "op\tParaBit/MSB-read\tLocFree/MSB-read\tReAlloc/write-pair\tParaBit µJ\tReAlloc µJ",
	}
	for _, row := range env.Energy.Fig16() {
		r.Rows = append(r.Rows, []string{
			row.Op.String(),
			fmt.Sprintf("%.2f", row.ParaBitVsRead),
			fmt.Sprintf("%.2f", row.LocFreeVsRead),
			fmt.Sprintf("%.4f", row.ReAllocVsWrite),
			fmt.Sprintf("%.2f", row.ParaBitJoules*1e6),
			fmt.Sprintf("%.2f", row.ReAllocJoules*1e6),
		})
	}
	r.Notes = append(r.Notes,
		"paper anchors: ReAlloc consumes up to 2.65% more than the baseline write; ParaBit's worst case is ≈2x the baseline MSB read")
	return r
}

// Fig17 renders the error study: per-wordline raw bit errors across P/E
// cycling and sensing counts, plus application-level error rates.
func Fig17(env *Env) Result {
	const (
		trials       = 2000
		wordlineBits = 2 * 8192 * 8
	)
	r := Result{
		Name:   "Figure 17: bit errors per wordline (avg/max over sampled WLs)",
		Header: "P/E cycles\t1 sensing\t4 sensings\t7 sensings",
	}
	for _, pe := range []int{1000, 2000, 3000, 4000, 5000} {
		row := []string{fmt.Sprintf("%d", pe)}
		for _, sros := range []int{1, 4, 7} {
			s := env.Rel.SampleWordlines(trials, wordlineBits, pe, sros)
			row = append(row, fmt.Sprintf("%.3f/%d", s.Mean, s.Max))
		}
		r.Rows = append(r.Rows, row)
	}
	// Application-level error rates (right panel): the sensing count of
	// each case study's dominant operation at end-of-life wear.
	apps := []struct {
		name string
		sros int
	}{
		{"bitmap (AND, 1 SRO)", 1},
		{"segmentation (AND, 1 SRO)", 1},
		{"encryption (XOR, 7th sensing)", 7},
	}
	for _, a := range apps {
		rate := env.Rel.ApplicationErrorRate(5000, a.sros)
		r.Rows = append(r.Rows, []string{
			"app: " + a.name,
			fmt.Sprintf("%.5f%%", rate*100), "", "",
		})
	}
	r.Notes = append(r.Notes,
		"paper anchors at 5K P/E, 7th sensing: avg 0.945 / max 5 errors per WL; worst app-level rate 0.00149% (XOR encryption)")
	return r
}
