package experiments

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/ssd"
	"parabit/internal/workload"
)

func init() {
	register("ext-tlc", "Extension (§4.4.1): TLC three-operand ParaBit", ExtTLC)
}

// TLC timing assumptions for the extension analysis: TLC parts of the
// paper's era sense slower and program much slower than MLC. One TLC
// wordline holds three pages, so a three-operand workload co-locates
// entirely in one cell and AND3 is a single sense at VREAD1 (§4.4.1).
const (
	tlcSenseUs   = 60.0   // per SRO
	tlcProgramUs = 2000.0 // per page program
)

// ExtTLC compares three-operand AND executions on the segmentation
// workload (whose recognition is exactly Y AND U AND V): MLC ParaBit
// (pair + realloc combine), MLC location-free chaining, and TLC with all
// three operands co-located in one cell.
func ExtTLC(env *Env) Result {
	spec := workload.PaperSegmentation(200_000)
	_, column := spec.OperandColumns()
	waves := float64(column) / float64(env.Geo.WaveBytes())

	// MLC executions from the calibrated model.
	mlcPre := ssd.PlanReduce(env.Geo, env.Timing, ssd.SchemePreAlloc, latch.OpAnd, 3, column)
	mlcLF := ssd.PlanReduce(env.Geo, env.Timing, ssd.SchemeLocFree, latch.OpAnd, 3, column)

	// TLC: one sense per wave (AND3 = 1 SRO), no combine, no realloc.
	// Same plane count; TLC page size matches MLC's here, so the wave
	// count is unchanged while each wave needs a single (slower) sense.
	tlcSeconds := waves * tlcSenseUs / 1e6
	seq := latch.TLCForOp(latch.TLCAnd3)

	r := Result{
		Name:   "Extension §4.4.1: 3-operand AND on TLC vs MLC (segmentation, 200k images)",
		Header: "execution\tSROs/wave\treallocs\tcompute\tvs MLC ParaBit",
	}
	r.Rows = append(r.Rows,
		[]string{"MLC ParaBit (pair+combine)", "1 + realloc", fmt.Sprintf("%d", mlcPre.Reallocations),
			secs(mlcPre.TotalSeconds), "1.00x"},
		[]string{"MLC LocFree (chained)", "3", "0",
			secs(mlcLF.TotalSeconds), fmt.Sprintf("%.2fx", mlcPre.TotalSeconds/mlcLF.TotalSeconds)},
		[]string{"TLC co-located (AND3)", fmt.Sprintf("%d", seq.SROs()), "0",
			secs(tlcSeconds), fmt.Sprintf("%.2fx", mlcPre.TotalSeconds/tlcSeconds)},
	)
	r.Notes = append(r.Notes,
		fmt.Sprintf("TLC assumptions: %0.f µs senses, %0.f µs programs (typical planar TLC); AND3 is the paper's own §4.4.1 example", tlcSenseUs, tlcProgramUs),
		"TLC pre-allocation writes all three operands into one wordline, so the recognition needs no combine step at all",
	)
	return r
}
