package experiments

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/ssd"
	"parabit/internal/workload"
)

func init() {
	register("fig14a", "Case study: image segmentation breakdown", Fig14a)
	register("fig14b", "Case study: bitmap indices breakdown", Fig14b)
	register("fig14c", "Case study: image encryption breakdown", Fig14c)
	register("fig15", "Location-free ParaBit comparison", Fig15)
	register("endurance", "§5.4 endurance: effective TBW per case study", Endurance)
	register("compression", "§5.7 compression break-even vs PIM", Compression)
}

// Breakdown is one scheme's execution-time split for a case study — the
// stacked bars of Fig. 14.
type Breakdown struct {
	Scheme string
	// OpeMove is operand movement from the SSD (PIM/ISC only).
	OpeMove float64
	// Bitwise is compute time (in DRAM, FPGA or flash).
	Bitwise float64
	// ResMove is result movement to the host (ParaBit schemes).
	ResMove float64
	// Total executes the phases back to back; TotalPipe overlaps compute
	// with result movement (the paper's "+Res-Move" pipelining).
	Total     float64
	TotalPipe float64
	// ReallocGB is the logical operand volume reallocated (endurance
	// input, §5.4).
	ReallocGB float64
}

func (b *Breakdown) finish(waves float64) {
	b.Total = b.OpeMove + b.Bitwise + b.ResMove
	b.TotalPipe = b.OpeMove + pipeline(b.Bitwise, b.ResMove, waves)
}

// reduceStudy computes the five-scheme breakdown for a k-column AND/XOR
// reduction workload: input volume moves to PIM/ISC, or the reduction
// runs in-flash with only the output column shipped to the host.
func reduceStudy(env *Env, op latch.Op, k int, columnBytes, inputBytes, outputBytes int64, pimOps int64) []Breakdown {
	waves := float64(columnBytes) / float64(env.Geo.WaveBytes())
	if waves < 1 {
		waves = 1
	}
	var out []Breakdown

	pimPlan := env.PIM.PlanBulk(op, pimOps, columnBytes, inputBytes)
	b := Breakdown{Scheme: "PIM", OpeMove: pimPlan.MoveSeconds, Bitwise: pimPlan.ComputeSecs}
	b.finish(waves)
	out = append(out, b)

	iscPlan := env.ISC.PlanBulk(op, 1, inputBytes, inputBytes)
	b = Breakdown{Scheme: "ISC", OpeMove: iscPlan.MoveSeconds, Bitwise: iscPlan.ComputeSecs}
	b.finish(waves)
	out = append(out, b)

	resMove := env.Host.BulkSeconds(outputBytes)
	for _, scheme := range []ssd.Scheme{ssd.SchemeReAlloc, ssd.SchemePreAlloc, ssd.SchemeLocFree} {
		plan := ssd.PlanReduce(env.Geo, env.Timing, scheme, op, k, columnBytes)
		b = Breakdown{
			Scheme:    scheme.String(),
			Bitwise:   plan.TotalSeconds,
			ResMove:   resMove,
			ReallocGB: float64(plan.ReallocBytes) / 1e9,
		}
		b.finish(waves)
		out = append(out, b)
	}
	return out
}

// SegmentationStudy is the §5.3.1 workload: AND across the three channel
// class planes. Per the Re(m) formula the PIM/ISC compute uses three AND
// passes.
func SegmentationStudy(env *Env, images int) []Breakdown {
	spec := workload.PaperSegmentation(images)
	k, column := spec.OperandColumns()
	return reduceStudy(env, latch.OpAnd, k, column, spec.InputBytes(), spec.OutputBytes(), 3)
}

// BitmapStudy is the §5.3.2 workload: AND across 30xmonths day columns of
// 800M user bits; only the result column returns to the host.
func BitmapStudy(env *Env, months int) []Breakdown {
	spec := workload.PaperBitmap(months)
	return reduceStudy(env, latch.OpAnd, spec.Days(), spec.ColumnBytes(),
		spec.InputBytes(), spec.OutputBytes(), int64(spec.Days()-1))
}

// EncryptionStudy is the §5.3.3 workload: Cipher = Ori XOR Key. PIM/ISC
// move the originals out, XOR them, and write ciphertext back to storage;
// ParaBit encrypts in place (no host movement). The basic and ReAlloc
// ParaBit schemes coincide: both read the original and program it paired
// with the key image before the XOR sense. LocFree senses the aligned
// original and key directly and programs the ciphertext.
func EncryptionStudy(env *Env, images int) []Breakdown {
	spec := workload.PaperEncryption(images)
	input := spec.InputBytes()
	waves := float64(input) / float64(env.Geo.WaveBytes())
	if waves < 1 {
		waves = 1
	}
	tm := env.Timing
	ps := env.Geo.PageSize

	var out []Breakdown
	pimPlan := env.PIM.PlanBulk(latch.OpXor, 1, input, input)
	b := Breakdown{Scheme: "PIM", OpeMove: pimPlan.MoveSeconds, Bitwise: pimPlan.ComputeSecs,
		ResMove: env.Host.BulkSeconds(input)} // ciphertext written back
	b.finish(waves)
	out = append(out, b)

	iscPlan := env.ISC.PlanBulk(latch.OpXor, 1, input, input)
	b = Breakdown{Scheme: "ISC", OpeMove: iscPlan.MoveSeconds, Bitwise: iscPlan.ComputeSecs,
		ResMove: float64(input) / env.ISC.Link().BytesPerSecond()}
	b.finish(waves)
	out = append(out, b)

	// ParaBit / ParaBit-ReAlloc: per wave, read the original (LSB), pair
	// it with the key image on a fresh wordline, sense the XOR; the
	// ciphertext program overlaps the next wave's reallocation.
	reWave := ssd.ReallocStepLatency(tm, latch.OpXor, 1, ps).Seconds()
	for _, name := range []string{"ParaBit-ReAlloc", "ParaBit"} {
		b = Breakdown{Scheme: name, Bitwise: waves * reWave,
			ReallocGB: float64(input) / 1e9} // logical operand volume rewritten
		b.finish(waves)
		out = append(out, b)
	}

	// LocFree: XOR sense over the aligned original and key, then program
	// the ciphertext — no reallocation.
	lfWave := (ssd.LocFreePairLatency(tm, latch.OpXor) +
		tm.Transfer(ps) + tm.ProgramPage).Seconds()
	b = Breakdown{Scheme: "ParaBit-LocFree", Bitwise: waves * lfWave}
	b.finish(waves)
	out = append(out, b)
	return out
}

func breakdownResult(name string, rows []Breakdown, notes ...string) Result {
	r := Result{
		Name:   name,
		Header: "scheme\tope-move\tbitwise\tres-move\ttotal\ttotal+pipelined",
		Notes:  notes,
	}
	for _, b := range rows {
		r.Rows = append(r.Rows, []string{
			b.Scheme, secs(b.OpeMove), secs(b.Bitwise), secs(b.ResMove),
			secs(b.Total), secs(b.TotalPipe),
		})
	}
	return r
}

// Fig14a renders the segmentation breakdown at the paper's image counts.
func Fig14a(env *Env) Result {
	var rows []Breakdown
	var notes []string
	for _, n := range []int{10_000, 200_000} {
		for _, b := range SegmentationStudy(env, n) {
			b.Scheme = fmt.Sprintf("%-7d %s", n, b.Scheme)
			rows = append(rows, b)
		}
	}
	full := SegmentationStudy(env, 200_000)
	pimTotal := full[0].Total
	iscTotal := full[1].Total
	notes = append(notes,
		fmt.Sprintf("200k images: ParaBit+Res-Move = %s of PIM (paper 32.3%%), %s of ISC (paper 34.4%%)",
			pct(full[3].TotalPipe/pimTotal), pct(full[3].TotalPipe/iscTotal)),
		fmt.Sprintf("ParaBit AND cost is %s of ParaBit-ReAlloc (paper: reduced by 51.7%%)",
			pct(full[3].Bitwise/full[2].Bitwise)),
	)
	return breakdownResult("Figure 14(a): image segmentation", rows, notes...)
}

// Fig14b renders the bitmap breakdown across months.
func Fig14b(env *Env) Result {
	var rows []Breakdown
	for _, m := range []int{1, 6, 12} {
		for _, b := range BitmapStudy(env, m) {
			b.Scheme = fmt.Sprintf("m=%-2d %s", m, b.Scheme)
			rows = append(rows, b)
		}
	}
	full := BitmapStudy(env, 12)
	notes := []string{
		fmt.Sprintf("m=12: PIM AND %s (paper 353ms), ParaBit-ReAlloc %s (paper 6137ms), ParaBit %s (paper 3179ms)",
			ms(full[0].Bitwise), ms(full[2].Bitwise), ms(full[3].Bitwise)),
		fmt.Sprintf("data movement reduced to %s of PIM's (paper ≈0.3%%)",
			pct(full[3].ResMove/full[0].OpeMove)),
	}
	return breakdownResult("Figure 14(b): bitmap indices", rows, notes...)
}

// Fig14c renders the encryption breakdown across image counts.
func Fig14c(env *Env) Result {
	var rows []Breakdown
	for _, n := range []int{5_000, 100_000} {
		for _, b := range EncryptionStudy(env, n) {
			b.Scheme = fmt.Sprintf("%-6d %s", n, b.Scheme)
			rows = append(rows, b)
		}
	}
	full := EncryptionStudy(env, 100_000)
	notes := []string{
		fmt.Sprintf("100k images: ParaBit-ReAlloc = %s of PIM, %s of ISC (paper 23.3%% / 25.3%%)",
			pct(full[2].Total/full[0].Total), pct(full[2].Total/full[1].Total)),
		fmt.Sprintf("PIM spends %s of its time on XOR (paper <3.5%%)",
			pct(full[0].Bitwise/full[0].Total)),
	}
	return breakdownResult("Figure 14(c): image encryption", rows, notes...)
}

// Fig15 renders the location-free comparison: per-op 8 MB latencies and
// the three case-study totals.
func Fig15(env *Env) Result {
	r := Result{
		Name:   "Figure 15: ParaBit vs ParaBit-ReAlloc vs ParaBit-LocFree",
		Header: "item\tParaBit-ReAlloc\tParaBit\tParaBit-LocFree",
	}
	for _, op := range latch.BinaryOps {
		ra := reallocSingleOp(env.Timing, env.Geo, op).Seconds()
		pb := ssd.PairSenseLatency(env.Timing, op).Seconds()
		lf := ssd.LocFreePairLatency(env.Timing, op).Seconds()
		r.Rows = append(r.Rows, []string{"8MB " + op.String(), us(ra), us(pb), us(lf)})
	}
	seg := SegmentationStudy(env, 200_000)
	bm := BitmapStudy(env, 12)
	enc := EncryptionStudy(env, 100_000)
	for _, cs := range []struct {
		name string
		rows []Breakdown
	}{
		{"segmentation total", seg}, {"bitmap total", bm}, {"encryption total", enc},
	} {
		r.Rows = append(r.Rows, []string{
			cs.name,
			secs(cs.rows[2].TotalPipe), secs(cs.rows[3].TotalPipe), secs(cs.rows[4].TotalPipe),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("bitmap: LocFree = %s of ReAlloc, %s of ParaBit (paper 5.23%% / 10.1%%)",
			pct(bm[4].TotalPipe/bm[2].TotalPipe), pct(bm[4].TotalPipe/bm[3].TotalPipe)),
		fmt.Sprintf("encryption: LocFree = %s of ReAlloc (paper 57.1%%)",
			pct(enc[4].TotalPipe/enc[2].TotalPipe)),
	)
	return r
}

// Endurance computes §5.4's effective TBW: the device's 600 TBW rating
// scaled by the share of writes that are host data rather than
// pre-computation reallocation.
func Endurance(env *Env) Result {
	const ratedTBW = 600.0
	r := Result{
		Name:   "§5.4 endurance: effective TBW under exclusive use",
		Header: "workload\thost data\treallocated\teffective TBW\tpaper",
	}
	rows := []struct {
		name    string
		inputGB float64
		realloc float64
		paper   string
	}{}
	bm := BitmapStudy(env, 12)
	bmSpec := workload.PaperBitmap(12)
	rows = append(rows, struct {
		name    string
		inputGB float64
		realloc float64
		paper   string
	}{"bitmap (m=12)", float64(bmSpec.InputBytes()) / 1e9, bm[2].ReallocGB, "200.67"})
	seg := SegmentationStudy(env, 200_000)
	segSpec := workload.PaperSegmentation(200_000)
	rows = append(rows, struct {
		name    string
		inputGB float64
		realloc float64
		paper   string
	}{"segmentation (200k)", float64(segSpec.InputBytes()) / 1e9, seg[2].ReallocGB, "257.51"})
	enc := EncryptionStudy(env, 100_000)
	encSpec := workload.PaperEncryption(100_000)
	rows = append(rows, struct {
		name    string
		inputGB float64
		realloc float64
		paper   string
	}{"encryption (100k)", float64(encSpec.InputBytes()) / 1e9, enc[2].ReallocGB, "300"})
	for _, row := range rows {
		eff := ratedTBW * row.inputGB / (row.inputGB + row.realloc)
		r.Rows = append(r.Rows, []string{
			row.name,
			fmt.Sprintf("%.1fGB", row.inputGB),
			fmt.Sprintf("%.1fGB", row.realloc),
			fmt.Sprintf("%.1f", eff),
			row.paper,
		})
	}
	r.Notes = append(r.Notes, "rated TBW 600 (Samsung 970 PRO 512GB); reallocated volume from the ReAlloc execution")
	return r
}

// CompressionBreakEven finds the compression ratio at which PIM (moving
// compressed data) ties ParaBit-LocFree for the segmentation study.
func CompressionBreakEven(env *Env, images int) float64 {
	seg := SegmentationStudy(env, images)
	pim := seg[0]
	lf := seg[4]
	// PIM(r) = r*move + compute = LocFree total.
	return (lf.TotalPipe - pim.Bitwise) / pim.OpeMove
}

// Compression renders §5.7.
func Compression(env *Env) Result {
	r := Result{
		Name:   "§5.7 compression: break-even ratio where compressed-PIM ties ParaBit-LocFree",
		Header: "workload\tbreak-even\tpaper",
	}
	be := CompressionBreakEven(env, 200_000)
	r.Rows = append(r.Rows, []string{"segmentation (200k)", pct(be), "30.1%"})
	bm := BitmapStudy(env, 12)
	verdict := "LocFree always wins (paper agrees)"
	if bm[4].TotalPipe >= bm[0].Bitwise {
		verdict = "PIM compute alone beats LocFree"
	}
	r.Rows = append(r.Rows, []string{"bitmap (m=12)", verdict, "always wins"})
	r.Notes = append(r.Notes, "bitmap: LocFree total is below PIM's compute time alone, so no compression ratio can rescue PIM")
	return r
}
