package experiments

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func within(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tolFrac {
		t.Errorf("%s = %.4g, want %.4g (±%.0f%%)", name, got, want, tolFrac*100)
	}
}

func TestFig4Anchors(t *testing.T) {
	env := DefaultEnv()
	pts := MotivationSeries(env, []int{200_000})
	p := pts[0]
	within(t, "PIM movement", p.PIMMoveSecs, 43.9, 0.05)
	within(t, "ISC movement", p.ISCMoveSecs, 41.8, 0.05)
	within(t, "PIM move/op ratio", p.PIMMoveSecs/p.PIMOpSecs, 30.7, 0.15)
	within(t, "ISC move/op ratio", p.ISCMoveSecs/p.ISCOpSecs, 60.2, 0.15)
}

func TestFig4Monotone(t *testing.T) {
	env := DefaultEnv()
	pts := MotivationSeries(env, []int{10_000, 50_000, 100_000, 200_000})
	for i := 1; i < len(pts); i++ {
		if pts[i].PIMMoveSecs <= pts[i-1].PIMMoveSecs {
			t.Error("PIM movement not monotone in image count")
		}
		// Movement always dominates compute on both baselines.
		if pts[i].PIMMoveSecs < 10*pts[i].PIMOpSecs {
			t.Error("PIM movement does not dominate compute")
		}
		if pts[i].ISCMoveSecs < 10*pts[i].ISCOpSecs {
			t.Error("ISC movement does not dominate compute")
		}
	}
}

func TestFig13aShape(t *testing.T) {
	env := DefaultEnv()
	r := Fig13a(env)
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// XOR row: ParaBit = 100µs.
	for _, row := range r.Rows {
		if row[0] == "XOR" && row[3] != "100.0µs" {
			t.Errorf("ParaBit XOR = %s, want 100.0µs", row[3])
		}
		if row[0] == "AND" && row[3] != "25.0µs" {
			t.Errorf("ParaBit AND = %s, want 25.0µs", row[3])
		}
	}
}

func TestFig13bNotMSBAnchor(t *testing.T) {
	// §5.2: ReAlloc NOT-MSB ≈ 25.8x slower than PIM w/8MB NOT.
	env := DefaultEnv()
	ra := reallocSingleOp(env.Timing, env.Geo, 7 /* OpNotMSB */).Seconds()
	pim := env.PIM.OpLatency(7, 8<<20).Seconds()
	within(t, "ReAlloc/PIM NOT-MSB ratio", ra/pim, 25.8, 0.1)
}

func TestCrossoverNearPaper(t *testing.T) {
	env := DefaultEnv()
	width, _ := CrossoverPoint(env)
	// Paper: 206.4 MB.
	within(t, "crossover wave width", float64(width)/1e6, 206.4, 0.15)
}

func TestSegmentationAnchors(t *testing.T) {
	env := DefaultEnv()
	rows := SegmentationStudy(env, 200_000)
	pim, isc, ra, pb, lf := rows[0], rows[1], rows[2], rows[3], rows[4]

	// Paper: ParaBit+Res-Move totals 32.3% of PIM and 34.4% of ISC.
	within(t, "ParaBit/PIM", pb.TotalPipe/pim.Total, 0.323, 0.05)
	within(t, "ParaBit/ISC", pb.TotalPipe/isc.Total, 0.344, 0.05)
	// Paper: ReAlloc+Res-Move totals 37.3% / 39.8%.
	within(t, "ReAlloc/PIM", ra.TotalPipe/pim.Total, 0.373, 0.12)
	// Paper: ParaBit reduces AND cost by 51.7% vs ReAlloc.
	within(t, "ParaBit AND vs ReAlloc", pb.Bitwise/ra.Bitwise, 0.483, 0.08)
	// Paper: movement reduced to 33.3% / 35.0% (result vs operand moves).
	within(t, "ResMove/PIM-move", pb.ResMove/pim.OpeMove, 0.333, 0.03)
	within(t, "ResMove/ISC-move", pb.ResMove/isc.OpeMove, 0.350, 0.03)
	// §5.5: LocFree ≈ ParaBit for segmentation (result movement bound).
	within(t, "LocFree vs ParaBit total", lf.TotalPipe/pb.TotalPipe, 1.0, 0.1)
}

func TestBitmapAnchors(t *testing.T) {
	env := DefaultEnv()
	rows := BitmapStudy(env, 12)
	pim, _, ra, pb, lf := rows[0], rows[1], rows[2], rows[3], rows[4]

	// Paper: PIM 353ms, ReAlloc 6137ms, ParaBit 3179ms of AND time.
	within(t, "PIM AND", pim.Bitwise, 0.353, 0.10)
	within(t, "ReAlloc AND", ra.Bitwise, 6.137, 0.10)
	within(t, "ParaBit AND", pb.Bitwise, 3.179, 0.10)
	// Paper: data movement reduced to ≈0.3%.
	within(t, "movement ratio", pb.ResMove/pim.OpeMove, 0.003, 0.15)
	// LocFree is the clear winner with no reallocation.
	if lf.TotalPipe > 0.15*ra.TotalPipe {
		t.Errorf("LocFree total %.3fs not well below ReAlloc %.3fs", lf.TotalPipe, ra.TotalPipe)
	}
}

func TestBitmapMonotoneInMonths(t *testing.T) {
	env := DefaultEnv()
	prev := 0.0
	for _, m := range []int{1, 3, 6, 12} {
		rows := BitmapStudy(env, m)
		if rows[3].Bitwise <= prev {
			t.Errorf("ParaBit bitmap time not monotone at m=%d", m)
		}
		prev = rows[3].Bitwise
	}
}

func TestEncryptionAnchors(t *testing.T) {
	env := DefaultEnv()
	rows := EncryptionStudy(env, 100_000)
	pim, isc, ra, pb, lf := rows[0], rows[1], rows[2], rows[3], rows[4]

	// ParaBit and ReAlloc coincide (§5.3.3).
	if ra.Total != pb.Total {
		t.Errorf("ParaBit %.3fs != ReAlloc %.3fs", pb.Total, ra.Total)
	}
	// Paper: ReAlloc reduces execution to 23.3% / 25.3% of PIM / ISC.
	within(t, "ReAlloc/PIM", ra.Total/pim.Total, 0.233, 0.25)
	within(t, "ReAlloc/ISC", ra.Total/isc.Total, 0.253, 0.25)
	// Paper: PIM spends <3.5% on XOR.
	if share := pim.Bitwise / pim.Total; share > 0.035 {
		t.Errorf("PIM XOR share = %.1f%%, paper <3.5%%", share*100)
	}
	// Fig. 15: LocFree ≈ 57.1% of ReAlloc.
	within(t, "LocFree/ReAlloc", lf.TotalPipe/ra.TotalPipe, 0.571, 0.15)
}

func TestEnduranceAnchors(t *testing.T) {
	env := DefaultEnv()
	r := Endurance(env)
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Effective TBW ≈ paper's 200.67 / 257.51 / 300.
	wants := []float64{200.67, 257.51, 300}
	for i, row := range r.Rows {
		var got float64
		if _, err := sscanf(row[3], &got); err != nil {
			t.Fatalf("row %d TBW cell %q", i, row[3])
		}
		within(t, "TBW "+row[0], got, wants[i], 0.07)
	}
}

// sscanf parses a float cell.
func sscanf(s string, out *float64) (int, error) {
	var v float64
	n, err := fmtSscan(s, &v)
	*out = v
	return n, err
}

func TestCompressionBreakEvenAnchor(t *testing.T) {
	env := DefaultEnv()
	be := CompressionBreakEven(env, 200_000)
	// Paper: 30.1%.
	within(t, "compression break-even", be, 0.301, 0.05)
}

func TestFig16RendersAllOps(t *testing.T) {
	r := Fig16(DefaultEnv())
	if len(r.Rows) != 8 {
		t.Fatalf("%d rows", len(r.Rows))
	}
}

func TestFig17Renders(t *testing.T) {
	r := Fig17(DefaultEnv())
	if len(r.Rows) != 5+3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The 5K P/E row's 7-sensing column should read ≈0.945/≈5.
	last := r.Rows[4]
	if !strings.HasPrefix(last[0], "5000") {
		t.Fatalf("last P/E row is %q", last[0])
	}
	var mean float64
	var maxN int
	if _, err := fmtSscanSlash(last[3], &mean, &maxN); err != nil {
		t.Fatalf("cell %q: %v", last[3], err)
	}
	within(t, "mean errors", mean, 0.945, 0.12)
	if maxN < 3 || maxN > 9 {
		t.Errorf("max errors = %d, want ≈5", maxN)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"compression", "crossover", "endurance",
		"ext-energy", "ext-gc", "ext-scale", "ext-tlc",
		"fig13a", "fig13b", "fig14a", "fig14b", "fig14c",
		"fig15", "fig16", "fig17", "fig4",
	}
	ds := Drivers()
	if len(ds) != len(want) {
		t.Fatalf("%d drivers registered, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.ID != want[i] {
			t.Errorf("driver %d = %s, want %s", i, d.ID, want[i])
		}
	}
	if _, ok := Lookup("fig15"); !ok {
		t.Error("Lookup failed for fig15")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup found a ghost")
	}
}

func TestAllDriversRunAndRender(t *testing.T) {
	env := DefaultEnv()
	for _, d := range Drivers() {
		r := d.Run(env)
		table := r.Table()
		if len(r.Rows) == 0 {
			t.Errorf("%s: no rows", d.ID)
		}
		if !strings.Contains(table, "==") || len(table) < 50 {
			t.Errorf("%s: table render suspicious:\n%s", d.ID, table)
		}
	}
}

func TestPipelineHelper(t *testing.T) {
	// Long phase dominates, plus one wave of the short phase.
	if got := pipeline(10, 2, 4); got != 10.5 {
		t.Errorf("pipeline(10,2,4) = %v", got)
	}
	if got := pipeline(2, 10, 4); got != 10.5 {
		t.Errorf("pipeline(2,10,4) = %v", got)
	}
	if got := pipeline(10, 2, 0.5); got != 12.0 {
		t.Errorf("pipeline with <1 wave = %v", got)
	}
}

// fmtSscan and fmtSscanSlash are tiny parsing helpers for table cells.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscanf(s, "%f", v)
}

func fmtSscanSlash(s string, mean *float64, max *int) (int, error) {
	return fmt.Sscanf(s, "%f/%d", mean, max)
}
