package experiments

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/workload"
)

func init() {
	register("fig4", "Motivation: data movement vs bitwise time in PIM and ISC", Fig4)
}

// MotivationPoint is one image-count configuration of the Fig. 4 study.
type MotivationPoint struct {
	Images      int
	InputGB     float64
	PIMMoveSecs float64
	PIMOpSecs   float64
	ISCMoveSecs float64
	ISCOpSecs   float64
}

// MotivationSeries computes the Fig. 4 series: for each image count, the
// time PIM and ISC spend moving the segmentation working set from the SSD
// versus computing the recognition ANDs. Per the paper's Re(m) formula
// the recognition is three conjuncts per pixel-color, i.e. three bulk AND
// passes over the channel planes.
func MotivationSeries(env *Env, imageCounts []int) []MotivationPoint {
	out := make([]MotivationPoint, 0, len(imageCounts))
	for _, n := range imageCounts {
		spec := workload.PaperSegmentation(n)
		_, column := spec.OperandColumns()
		const andPasses = 3
		pimPlan := env.PIM.PlanBulk(latch.OpAnd, andPasses, column, spec.InputBytes())
		iscPlan := env.ISC.PlanBulk(latch.OpAnd, 1, spec.InputBytes(), spec.InputBytes())
		out = append(out, MotivationPoint{
			Images:      n,
			InputGB:     float64(spec.InputBytes()) / 1e9,
			PIMMoveSecs: pimPlan.MoveSeconds,
			PIMOpSecs:   pimPlan.ComputeSecs,
			ISCMoveSecs: iscPlan.MoveSeconds,
			ISCOpSecs:   iscPlan.ComputeSecs,
		})
	}
	return out
}

// Fig4 renders the motivation study (10,000-200,000 images).
func Fig4(env *Env) Result {
	points := MotivationSeries(env, []int{10_000, 50_000, 100_000, 200_000})
	r := Result{
		Name:   "Figure 4: execution time of data movement and bitwise ops in PIM and ISC",
		Header: "images\tinput\tPIM move\tPIM AND\tPIM move/AND\tISC move\tISC AND\tISC move/AND",
	}
	for _, p := range points {
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", p.Images),
			fmt.Sprintf("%.1fGB", p.InputGB),
			secs(p.PIMMoveSecs), secs(p.PIMOpSecs),
			fmt.Sprintf("%.1fx", p.PIMMoveSecs/p.PIMOpSecs),
			secs(p.ISCMoveSecs), secs(p.ISCOpSecs),
			fmt.Sprintf("%.1fx", p.ISCMoveSecs/p.ISCOpSecs),
		})
	}
	r.Notes = append(r.Notes,
		"paper anchors at 200k images: PIM 43.9s movement (30.7x its AND time), ISC 41.8s (60.2x)")
	return r
}
