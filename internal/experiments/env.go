// Package experiments implements one driver per table and figure of the
// paper's evaluation (§3 and §5). Each driver computes its results from
// the calibrated models — the flash/SSD cost model (internal/ssd), the
// Ambit PIM and Cosmos ISC baselines, the interconnect, energy and
// reliability models — at the paper's full scale, and formats them as the
// rows/series the paper reports. EXPERIMENTS.md records paper-vs-measured
// for every driver.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"parabit/internal/energy"
	"parabit/internal/flash"
	"parabit/internal/interconnect"
	"parabit/internal/isc"
	"parabit/internal/pim"
	"parabit/internal/reliability"
)

// Env bundles the configured models every driver draws on.
type Env struct {
	Geo    flash.Geometry
	Timing flash.Timing
	PIM    *pim.Device
	ISC    *isc.Device
	// Host is the SSD-to-DRAM link ParaBit ships results over.
	Host   *interconnect.Link
	Energy *energy.Model
	Rel    *reliability.Model
}

// DefaultEnv returns the paper's evaluation setup (§5.1).
func DefaultEnv() *Env {
	geo := flash.Default()
	tm := flash.DefaultTiming()
	return &Env{
		Geo:    geo,
		Timing: tm,
		PIM:    pim.New(pim.DefaultConfig(), nil),
		ISC:    isc.New(isc.DefaultConfig(), nil),
		Host:   interconnect.PCIeGen3x4ToDRAM(),
		Energy: energy.NewModel(energy.DefaultParams(), tm, geo.PageSize),
		Rel:    reliability.NewModel(2021),
	}
}

// Result is what every driver returns: a name, a formatted table, and
// the raw series for programmatic checks.
type Result struct {
	Name   string
	Header string
	Rows   [][]string
	// Notes carries calibration caveats printed under the table.
	Notes []string
}

// Table renders the result as an aligned text table.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	all := append([][]string{strings.Split(r.Header, "\t")}, r.Rows...)
	widths := make([]int, 0)
	runeLen := func(s string) int { return len([]rune(s)) }
	for _, row := range all {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	for ri, row := range all {
		for i, cell := range row {
			pad := widths[i] - runeLen(cell)
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", pad+2))
		}
		b.WriteString("\n")
		if ri == 0 {
			for _, w := range widths {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteString("\n")
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated rows (header first). Cells
// containing commas or quotes are quoted.
func (r Result) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(strings.Split(r.Header, "\t"))
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// Driver is a named experiment.
type Driver struct {
	ID    string // e.g. "fig13a"
	Title string
	Run   func(*Env) Result
}

var registry []Driver

func register(id, title string, run func(*Env) Result) {
	registry = append(registry, Driver{ID: id, Title: title, Run: run})
}

// Drivers returns every registered experiment, sorted by ID.
func Drivers() []Driver {
	out := append([]Driver(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds a driver by ID.
func Lookup(id string) (Driver, bool) {
	for _, d := range registry {
		if d.ID == id {
			return d, true
		}
	}
	return Driver{}, false
}

// Formatting helpers shared by the drivers.

func secs(v float64) string { return fmt.Sprintf("%.3fs", v) }

func ms(v float64) string { return fmt.Sprintf("%.1fms", v*1e3) }

func us(v float64) string { return fmt.Sprintf("%.1fµs", v*1e6) }

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// pipeline returns the completion time of two overlapped phases that are
// striped over many waves: the longer phase dominates, plus one wave of
// the shorter to fill the pipe.
func pipeline(a, b float64, waves float64) float64 {
	long, short := a, b
	if b > a {
		long, short = b, a
	}
	if waves < 1 {
		waves = 1
	}
	return long + short/waves
}
