package experiments

import (
	"fmt"

	"parabit/internal/latch"
	"parabit/internal/ssd"
	"parabit/internal/workload"
)

func init() {
	register("ext-energy", "Extension: system-level energy of the case studies", ExtEnergy)
}

// System-level energy constants for the extension analysis. Fig. 16 only
// compares per-operation flash energies; at system level the data
// movement the motivation study measures costs energy too. Published
// figures for PCIe-era systems put end-to-end I/O transfer energy at
// ~10 pJ/bit and DRAM access around 4 pJ/bit; both are order-of-magnitude
// constants, which suffices because the result is a ~40x gap.
const (
	linkPJPerBit = 10.0
	dramPJPerBit = 4.0
)

// ExtEnergy estimates total energy for the bitmap case study (m=12) under
// the PIM baseline and the ParaBit schemes: movement + compute.
func ExtEnergy(env *Env) Result {
	spec := workload.PaperBitmap(12)
	inputBits := float64(spec.InputBytes()) * 8
	outputBits := float64(spec.OutputBytes()) * 8
	waves := float64(spec.ColumnBytes()) / float64(env.Geo.WaveBytes())

	// PIM: move everything over the link, touch it in DRAM (read operands
	// + write results per chunk op; approximate as 3 DRAM accesses/bit).
	pimMove := inputBits * linkPJPerBit * 1e-12
	pimCompute := inputBits * 3 * dramPJPerBit * 1e-12

	// ParaBit: in-flash ops plus the result column over the link.
	perOp := func(scheme ssd.Scheme) float64 {
		switch scheme {
		case ssd.SchemePreAlloc:
			// 180 pair senses + 179 realloc-combines per column-set.
			pairs := float64(spec.Days() / 2)
			combines := pairs - 1
			return waves * (pairs*env.Energy.ParaBitEnergy(latch.OpAnd) +
				combines*env.Energy.ReAllocEnergy(latch.OpAnd))
		case ssd.SchemeReAlloc:
			steps := float64(spec.Days() - 1)
			return waves * steps * env.Energy.ReAllocEnergy(latch.OpAnd)
		default: // LocFree: one chained op, ~1 sense per operand per wave.
			return waves * float64(spec.Days()) *
				(env.Energy.ParaBitEnergy(latch.OpAnd))
		}
	}
	resMove := outputBits * linkPJPerBit * 1e-12

	r := Result{
		Name:   "Extension: bitmap (m=12) system energy, movement + compute",
		Header: "execution\tmovement\tcompute\ttotal\tvs PIM",
	}
	pimTotal := pimMove + pimCompute
	r.Rows = append(r.Rows, []string{"PIM",
		fmt.Sprintf("%.2fJ", pimMove), fmt.Sprintf("%.2fJ", pimCompute),
		fmt.Sprintf("%.2fJ", pimTotal), "1.00x"})
	for _, scheme := range []ssd.Scheme{ssd.SchemeReAlloc, ssd.SchemePreAlloc, ssd.SchemeLocFree} {
		compute := perOp(scheme)
		total := resMove + compute
		r.Rows = append(r.Rows, []string{scheme.String(),
			fmt.Sprintf("%.4fJ", resMove), fmt.Sprintf("%.4fJ", compute),
			fmt.Sprintf("%.4fJ", total), fmt.Sprintf("%.3fx", total/pimTotal)})
	}
	r.Notes = append(r.Notes,
		"link energy ~10 pJ/bit, DRAM ~4 pJ/bit (order-of-magnitude constants); flash op energies from the Fig. 16 model",
		"moving 36 GB costs joules; sensing it in place costs millijoules — the energy form of the paper's motivation")
	return r
}
