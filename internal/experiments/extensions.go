package experiments

import (
	"fmt"
	"math/rand"

	"parabit/internal/flash"
	"parabit/internal/ftl"
	"parabit/internal/latch"
	"parabit/internal/ssd"
	"parabit/internal/workload"
)

func init() {
	register("ext-scale", "Extension (§4.4.2): all-flash-array scaling", ExtScale)
	register("ext-gc", "Extension: GC and write amplification under ParaBit traffic", ExtGC)
}

// ExtScale quantifies §4.4.2's scalability claim: ParaBit's wave width —
// and with it every in-flash compute time — scales linearly with the
// number of SSDs in an all-flash array, while the PIM baseline is fixed
// by its DRAM geometry. The table sweeps array sizes on the m=12 bitmap
// reduction and marks where each ParaBit scheme overtakes PIM's 353 ms
// of in-DRAM compute.
func ExtScale(env *Env) Result {
	spec := workload.PaperBitmap(12)
	pimSecs := env.PIM.PlanBulk(latch.OpAnd, int64(spec.Days()-1), spec.ColumnBytes(), 0).ComputeSecs
	r := Result{
		Name:   "Extension §4.4.2: bitmap (m=12) AND time vs all-flash-array size",
		Header: "SSDs\twave width\tParaBit\tLocFree\tbeats PIM (353ms)?",
	}
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		geo := env.Geo
		geo.Channels *= n // n devices = n x the channels/planes
		pre := ssd.PlanReduce(geo, env.Timing, ssd.SchemePreAlloc, latch.OpAnd, spec.Days(), spec.ColumnBytes())
		lf := ssd.PlanReduce(geo, env.Timing, ssd.SchemeLocFree, latch.OpAnd, spec.Days(), spec.ColumnBytes())
		verdict := "LocFree"
		if pre.TotalSeconds < pimSecs {
			verdict = "both"
		} else if lf.TotalSeconds >= pimSecs {
			verdict = "neither"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0fMB", float64(geo.WaveBytes())/1e6),
			secs(pre.TotalSeconds),
			secs(lf.TotalSeconds),
			verdict,
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("PIM in-DRAM compute is fixed at %s regardless of storage scale", ms(pimSecs)),
		"LocFree outruns PIM's compute on a single SSD; the pre-allocated scheme needs ~9 devices to amortize its serialized combines")
	return r
}

// ExtGC characterizes the FTL under sustained ParaBit-ReAlloc traffic at
// several overprovisioning levels: the write-amplification cost behind
// §5.4's endurance numbers, measured on the functional simulator.
func ExtGC(env *Env) Result {
	r := Result{
		Name:   "Extension: write amplification under ReAlloc traffic (functional FTL)",
		Header: "overprovision\thost pages\tGC runs\tpages moved\twrite amplification",
	}
	for _, op := range []float64{0.07, 0.15, 0.28} {
		cfg := ssd.SmallConfig()
		cfg.FTL = ftl.Config{OverprovisionPct: op, GCFreeBlockLow: 2}
		dev, err := ssd.New(cfg)
		if err != nil {
			r.Rows = append(r.Rows, []string{pct(op), "error", err.Error(), "", ""})
			continue
		}
		// Steady overwrite traffic across half the logical space plus
		// continuous ReAlloc operations churning the internal pool.
		rng := rand.New(rand.NewSource(42))
		page := make([]byte, dev.PageSize())
		hot := int(dev.UserPages() / 2)
		// Over two device-capacities of traffic so garbage collection
		// actually runs at every overprovisioning level.
		writes := int(dev.FTL().LogicalPages()) * 2
		for i := 0; i < writes; i++ {
			rng.Read(page[:16])
			if _, err := dev.Write(uint64(rng.Intn(hot)), page, 0); err != nil {
				break
			}
			if i%64 == 0 && i > 0 {
				a, b := uint64(rng.Intn(hot)), uint64(rng.Intn(hot))
				if a != b {
					// Operands may be unmapped early on; ignore those.
					_, _ = dev.Bitwise(latch.OpXor, a, b, ssd.SchemeReAlloc, 0)
				}
			}
			if i%2048 == 0 {
				dev.ReclaimInternal()
			}
		}
		s := dev.FTL().Stats()
		r.Rows = append(r.Rows, []string{
			pct(op),
			fmt.Sprintf("%d", s.HostPagesWritten),
			fmt.Sprintf("%d", s.GCRuns),
			fmt.Sprintf("%d", s.GCPagesMoved),
			fmt.Sprintf("%.2f", s.WriteAmplification()),
		})
	}
	r.Notes = append(r.Notes,
		"more overprovisioning -> emptier GC victims -> lower write amplification; the realloc traffic itself adds the §5.4 endurance cost on top")
	return r
}

// ensure flash import is used even if geometry access changes.
var _ = flash.Default
