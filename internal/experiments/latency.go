package experiments

import (
	"fmt"

	"parabit/internal/flash"
	"parabit/internal/latch"
	"parabit/internal/sim"
	"parabit/internal/ssd"
)

func init() {
	register("fig13a", "Single bitwise operation latency across schemes", Fig13a)
	register("fig13b", "Bitwise operation latency with two 8 MB operands", Fig13b)
	register("crossover", "§5.2 crossover: SSD wave width where ReAlloc beats PIM", Crossover)
}

// reallocSingleOp returns the latency of one ParaBit-ReAlloc operation
// with flash-resident operands: the general case reads both operands (an
// LSB and an MSB page for a co-location realloc), programs the pair, and
// senses. NOT ops have one operand: one read, one program.
func reallocSingleOp(t flash.Timing, geo flash.Geometry, op latch.Op) sim.Duration {
	switch op {
	case latch.OpNotLSB:
		return t.ReadLatency(flash.LSBPage) + t.Transfer(geo.PageSize) +
			t.Transfer(geo.PageSize) + t.ProgramPage + t.BitwiseLatency(op)
	case latch.OpNotMSB:
		return t.ReadLatency(flash.MSBPage) + t.Transfer(geo.PageSize) +
			t.Transfer(geo.PageSize) + t.ProgramPage + t.BitwiseLatency(op)
	default:
		return ssd.ReallocStepLatency(t, op, 2, geo.PageSize)
	}
}

// Fig13a compares one operation (one DRAM row / one LUT pass / one flash
// wordline) across PIM, ISC, ParaBit and ParaBit-ReAlloc.
func Fig13a(env *Env) Result {
	r := Result{
		Name:   "Figure 13(a): latency of one bitwise operation",
		Header: "op\tPIM\tISC\tParaBit\tParaBit-ReAlloc",
	}
	for _, op := range latch.Ops {
		pimLat := env.PIM.OpLatency(op, int64(env.PIM.Config().RowBufferBytes))
		iscLat := env.ISC.OpLatency(op, 8) // one word through one LUT pass
		pb := env.Timing.BitwiseLatency(op)
		ra := reallocSingleOp(env.Timing, env.Geo, op)
		r.Rows = append(r.Rows, []string{
			op.String(),
			fmt.Sprintf("%dns", int64(pimLat)),
			fmt.Sprintf("%dns", int64(iscLat)),
			us(pb.Seconds()),
			us(ra.Seconds()),
		})
	}
	r.Notes = append(r.Notes,
		"paper: PIM and ISC complete at ns level; ParaBit XNOR/XOR take 100µs of sensing; ReAlloc is dominated by the 640µs program(s)")
	return r
}

// Fig13b compares bulk operations over two 8 MB operands: the SSD's full
// wave width.
func Fig13b(env *Env) Result {
	const operand = 8 << 20
	r := Result{
		Name:   "Figure 13(b): latency with two 8 MB operands",
		Header: "op\tPIM w/8MB\tISC w/8MB\tParaBit w/8MB\tParaBit-ReAlloc\tLocFree w/8MB",
	}
	for _, op := range latch.Ops {
		pimLat := env.PIM.OpLatency(op, operand)
		iscLat := env.ISC.OpLatency(op, operand)
		pb := ssd.PairSenseLatency(env.Timing, op)
		ra := reallocSingleOp(env.Timing, env.Geo, op)
		lf := ssd.LocFreePairLatency(env.Timing, op)
		r.Rows = append(r.Rows, []string{
			op.String(),
			us(pimLat.Seconds()),
			us(iscLat.Seconds()),
			us(pb.Seconds()),
			us(ra.Seconds()),
			us(lf.Seconds()),
		})
	}
	r.Notes = append(r.Notes,
		"ISC is fastest at 8 MB (fabric-only); ParaBit's wave computes in its sense time; ReAlloc NOT-MSB is ≈25.8x slower than PIM's 8 MB NOT (paper §5.2)",
	)
	return r
}

// CrossoverPoint sweeps SSD wave width (operand size processed in one
// wave) to find where a single ReAlloc NOT-MSB wave beats PIM's serial
// chunk processing of the same volume — the paper's 206.4 MB figure.
func CrossoverPoint(env *Env) (widthBytes int64, reallocSecs float64) {
	ra := reallocSingleOp(env.Timing, env.Geo, latch.OpNotMSB).Seconds()
	// PIM time grows linearly with volume; find equality.
	perByte := env.PIM.OpLatency(latch.OpNotMSB, 1<<20).Seconds() / float64(1<<20)
	return int64(ra / perByte), ra
}

// Crossover renders the sweep.
func Crossover(env *Env) Result {
	width, ra := CrossoverPoint(env)
	r := Result{
		Name:   "§5.2 crossover: wave width where one ReAlloc NOT-MSB wave matches PIM",
		Header: "wave width\tReAlloc NOT-MSB wave\tPIM NOT same volume\twinner",
	}
	for _, w := range []int64{8 << 20, 64 << 20, 128 << 20, width, 256 << 20, 512 << 20} {
		pimSecs := env.PIM.OpLatency(latch.OpNotMSB, w).Seconds()
		winner := "PIM"
		if ra <= pimSecs {
			winner = "ParaBit-ReAlloc"
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%.1fMB", float64(w)/1e6),
			us(ra), us(pimSecs), winner,
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("measured crossover at %.1f MB; paper reports 206.4 MB", float64(width)/1e6))
	return r
}
