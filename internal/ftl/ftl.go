// Package ftl implements the flash translation layer of the simulated SSD:
// a page-mapping table, channel-striped data allocation, greedy garbage
// collection, erase-count wear leveling, and the write accounting that the
// paper's endurance study (§5.4) draws on.
//
// Beyond a standard FTL, two allocation modes exist for ParaBit:
//
//   - WritePaired places two logical pages into the LSB and MSB pages of
//     one physical wordline, the co-located layout basic ParaBit computes
//     on (§4.1, §4.3.3).
//   - The allocator's striping walks planes channel-first, so consecutive
//     logical pages spread across channels and a full-device wave touches
//     every plane — the parallelism §5.1 exploits.
package ftl

import (
	"errors"
	"fmt"

	"parabit/internal/flash"
	"parabit/internal/sim"
	"parabit/internal/telemetry"
)

// Config parameterizes the FTL.
type Config struct {
	// OverprovisionPct is the fraction of physical capacity hidden from
	// the logical space (e.g. 0.07 for 7 %).
	OverprovisionPct float64
	// GCFreeBlockLow triggers garbage collection on a plane when its free
	// block count drops below this value.
	GCFreeBlockLow int
	// ReadReclaimThreshold migrates a block's valid pages once it has
	// absorbed this many senses since its last erase, bounding read
	// disturb (the refresh policy real MLC management pairs with the
	// §5.8 error behaviour). Zero disables read reclaim.
	ReadReclaimThreshold int
	// StaticWLDelta triggers static wear leveling: when a plane's
	// erase-count spread (max sealed block vs min free block) exceeds
	// this, the coldest sealed block migrates into the most-worn free
	// block so cold data stops pinning young blocks. Zero disables it.
	StaticWLDelta int
}

// DefaultConfig returns a 7 % overprovisioned FTL that collects garbage
// when a plane has fewer than 2 free blocks.
func DefaultConfig() Config {
	return Config{OverprovisionPct: 0.07, GCFreeBlockLow: 2}
}

// FTL errors.
var (
	// ErrDeviceFull reports that allocation failed even after GC.
	ErrDeviceFull = errors.New("ftl: device full")
	// ErrUnmapped reports a read of a never-written logical page.
	ErrUnmapped = errors.New("ftl: logical page not mapped")
	// ErrLogicalRange reports a logical page beyond the exported capacity.
	ErrLogicalRange = errors.New("ftl: logical page out of range")
)

// Stats tracks write-amplification inputs and the maintenance-event
// counters (GC, read reclaim, static wear leveling) the telemetry layer
// surfaces as gauges.
type Stats struct {
	HostPagesWritten  int64 // pages written on behalf of the host
	ExtraPagesWritten int64 // pages written for GC relocation or ParaBit reallocation
	GCRuns            int64
	GCPagesMoved      int64
	PaddedPages       int64 // MSB slots skipped to keep paired writes aligned
	ReadReclaims      int64 // blocks refreshed for read-disturb exposure
	ReclaimPagesMoved int64 // valid pages migrated by read reclaim
	StaticWLMoves     int64 // cold blocks migrated by static wear leveling
	WLPagesMoved      int64 // valid pages migrated by static wear leveling
	ProgramFails      int64 // program-status failures absorbed
	EraseFails        int64 // erase-status failures absorbed
	BlocksRetired     int64 // blocks pulled from circulation as bad
	RetirePagesMoved  int64 // valid pages migrated off retiring blocks
	ResteeredWrites   int64 // writes re-issued on a fresh block after a program failure
}

// WriteAmplification returns (host+extra)/host, or 1 when nothing was
// written.
func (s Stats) WriteAmplification() float64 {
	if s.HostPagesWritten == 0 {
		return 1
	}
	return float64(s.HostPagesWritten+s.ExtraPagesWritten) / float64(s.HostPagesWritten)
}

type planeAlloc struct {
	addr     flash.PlaneAddr
	active   int // block being filled, -1 when none
	nextWL   int // next wordline in the active block
	nextKind flash.PageKind
	free     []int // erased block indexes
	valid    []int // valid page count per block
	full     []int // filled, non-free blocks (GC candidates)
	bad      []int // retired blocks, permanently out of circulation
}

// FTL maps logical page numbers to physical pages on a flash.Array.
//
// The FTL carries no lock of its own: it relies on external
// synchronization. All access runs under the command scheduler's mutex —
// via dispatched commands or sched.Exclusive — which is why none of its
// fields carry guarded-by annotations. Touching an FTL from outside the
// scheduler while commands are in flight races.
type FTL struct {
	cfg   Config
	array *flash.Array
	geo   flash.Geometry
	l2p   map[uint64]uint64 // LPN -> PPN
	p2l   map[uint64]uint64 // PPN -> LPN, for GC relocation
	// vers counts mapping changes per LPN: every overwrite, trim,
	// GC/reclaim/wear-leveling migration and bad-block retirement bumps
	// the page's version. Cached derived results (the query planner's
	// controller-DRAM cache) snapshot operand versions and revalidate
	// against them, so any event that could have changed — or moved —
	// an operand invalidates dependents.
	vers   map[uint64]uint64
	planes []*planeAlloc
	order  []int // striping order: channel varies fastest
	cursor int   // round-robin position in order
	stats  Stats

	// Telemetry handles; all nil (free no-ops) until SetTelemetry runs.
	gcTrack, reclaimTrack, wlTrack, retireTrack                 *telemetry.Track
	cGCRuns, cGCPages, cReclaims, cReclaimPages, cWLMoves, cPad *telemetry.Counter
	cProgFails, cEraseFails, cRetired, cResteer                 *telemetry.Counter
}

// SetTelemetry attaches (or, with nil, detaches) a telemetry sink. GC
// runs, read reclaims and static wear-leveling migrations become spans on
// their own lanes when the sink records a trace, and the maintenance
// counters mirror into the sink's registry.
func (f *FTL) SetTelemetry(s *telemetry.Sink) {
	tr := s.Trace()
	f.gcTrack = tr.Track("ftl", "gc")
	f.reclaimTrack = tr.Track("ftl", "read-reclaim")
	f.wlTrack = tr.Track("ftl", "static-wl")
	f.cGCRuns = s.Counter("ftl.gc.runs")
	f.cGCPages = s.Counter("ftl.gc.pages_moved")
	f.cReclaims = s.Counter("ftl.read_reclaim.runs")
	f.cReclaimPages = s.Counter("ftl.read_reclaim.pages_moved")
	f.cWLMoves = s.Counter("ftl.static_wl.moves")
	f.cPad = s.Counter("ftl.padded_pages")
	f.retireTrack = tr.Track("ftl", "retirement")
	f.cProgFails = s.Counter("ftl.faults.program_fails")
	f.cEraseFails = s.Counter("ftl.faults.erase_fails")
	f.cRetired = s.Counter("ftl.bad_blocks.retired")
	f.cResteer = s.Counter("ftl.faults.resteered_writes")
}

// New builds an FTL over an erased array.
func New(array *flash.Array, cfg Config) *FTL {
	geo := array.Geometry()
	f := &FTL{
		cfg:    cfg,
		array:  array,
		geo:    geo,
		l2p:    make(map[uint64]uint64),
		p2l:    make(map[uint64]uint64),
		vers:   make(map[uint64]uint64),
		planes: make([]*planeAlloc, geo.Planes()),
	}
	for i := range f.planes {
		pa := &planeAlloc{addr: geo.PlaneAt(i), active: -1}
		pa.free = make([]int, geo.BlocksPerPlane)
		for b := range pa.free {
			pa.free[b] = b
		}
		pa.valid = make([]int, geo.BlocksPerPlane)
		f.planes[i] = pa
	}
	// Striping visits channels round-robin before reusing one, so
	// consecutive logical pages transfer over different buses and a
	// device-wide wave engages every channel (§5.1 parallelism).
	perChannel := geo.PlanesPerChannel()
	f.order = make([]int, geo.Planes())
	for i := range f.order {
		ch := i % geo.Channels
		within := i / geo.Channels
		f.order[i] = ch*perChannel + within
	}
	return f
}

// Array returns the underlying flash array.
func (f *FTL) Array() *flash.Array { return f.array }

// Stats returns a copy of the accumulated counters.
func (f *FTL) Stats() Stats { return f.stats }

// LogicalPages returns the exported logical capacity in pages.
func (f *FTL) LogicalPages() int64 {
	return int64(float64(f.geo.TotalPages()) * (1 - f.cfg.OverprovisionPct))
}

// PageSize returns the page size in bytes.
func (f *FTL) PageSize() int { return f.geo.PageSize }

func (f *FTL) checkLPN(lpn uint64) error {
	if int64(lpn) >= f.LogicalPages() {
		return fmt.Errorf("%w: %d >= %d", ErrLogicalRange, lpn, f.LogicalPages())
	}
	return nil
}

// Lookup returns the physical location of a logical page.
func (f *FTL) Lookup(lpn uint64) (flash.PageAddr, bool) {
	ppn, ok := f.l2p[lpn]
	if !ok {
		return flash.PageAddr{}, false
	}
	return f.geo.PageAt(ppn), true
}

// Read returns the content of a logical page and the completion time.
// When read reclaim is configured and the page's block has crossed the
// disturb threshold, the block's valid pages migrate after the read.
func (f *FTL) Read(lpn uint64, at sim.Time) ([]byte, sim.Time, error) {
	if err := f.checkLPN(lpn); err != nil {
		return nil, 0, err
	}
	addr, ok := f.Lookup(lpn)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %d", ErrUnmapped, lpn)
	}
	data, done, err := f.array.Read(addr, at)
	if err != nil {
		return nil, 0, err
	}
	if f.cfg.ReadReclaimThreshold > 0 &&
		f.array.ReadCount(addr.PlaneAddr, addr.Block) >= f.cfg.ReadReclaimThreshold {
		// Reclaim failure is not a read failure: the data is valid and
		// the next read retries the refresh.
		_ = f.reclaimBlock(addr.PlaneAddr, addr.Block, done)
	}
	return data, done, nil
}

// reclaimBlock migrates a block's valid pages and erases it, resetting
// its read-disturb exposure.
func (f *FTL) reclaimBlock(plane flash.PlaneAddr, blockIdx int, at sim.Time) error {
	pa := f.planes[f.geo.PlaneIndex(plane)]
	// Only full (sealed) blocks are reclaimable; an active block's
	// exposure resolves when it seals and later collects.
	idx := -1
	for i, b := range pa.full {
		if b == blockIdx {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("ftl: block %d not reclaimable", blockIdx)
	}
	f.stats.ReadReclaims++
	f.cReclaims.Add(1)
	now := at
	for wl := 0; wl < f.geo.WordlinesPerBlock && pa.valid[blockIdx] > 0; wl++ {
		for kind := flash.LSBPage; int(kind) < f.geo.CellBits; kind++ {
			addr := flash.PageAddr{
				WordlineAddr: flash.WordlineAddr{PlaneAddr: plane, Block: blockIdx, WL: wl},
				Kind:         kind,
			}
			lpn, ok := f.p2l[f.geo.PPN(addr)]
			if !ok {
				continue
			}
			data, readDone, err := f.array.Read(addr, now)
			if err != nil {
				return fmt.Errorf("ftl: reclaim read: %w", err)
			}
			target := f.relocationTarget(pa)
			if target == nil {
				return ErrDeviceFull
			}
			done, err := f.writeTo(target, lpn, data, readDone, false)
			if err != nil {
				return fmt.Errorf("ftl: reclaim write: %w", err)
			}
			now = done
			f.stats.ExtraPagesWritten++
			f.stats.ReclaimPagesMoved++
			f.cReclaimPages.Add(1)
		}
	}
	pa.full = append(pa.full[:idx], pa.full[idx+1:]...)
	end, err := f.array.Erase(plane, blockIdx, now)
	if err != nil {
		if flash.IsEraseFault(err) {
			// Worn out rather than wedged: the data is already refreshed
			// elsewhere, so the block retires and the reclaim succeeded.
			f.stats.EraseFails++
			f.cEraseFails.Add(1)
			if _, rerr := f.retireBlock(pa, blockIdx, now); rerr != nil {
				return fmt.Errorf("ftl: reclaim retire: %w", rerr)
			}
			f.reclaimTrack.Span("read-reclaim", at, now)
			return nil
		}
		// Transient failure: seal the drained block again so the next
		// reclaim or GC pass retries the erase.
		pa.full = append(pa.full, blockIdx)
		return fmt.Errorf("ftl: reclaim erase: %w", err)
	}
	pa.free = append(pa.free, blockIdx)
	f.reclaimTrack.Span("read-reclaim", at, end)
	return nil
}

// invalidate drops the mapping for lpn, if any, releasing the old page.
func (f *FTL) invalidate(lpn uint64) {
	ppn, ok := f.l2p[lpn]
	if !ok {
		return
	}
	f.vers[lpn]++
	delete(f.l2p, lpn)
	delete(f.p2l, ppn)
	addr := f.geo.PageAt(ppn)
	pa := f.planes[f.geo.PlaneIndex(addr.PlaneAddr)]
	pa.valid[addr.Block]--
}

func (f *FTL) mapPage(lpn uint64, addr flash.PageAddr) {
	f.vers[lpn]++
	ppn := f.geo.PPN(addr)
	f.l2p[lpn] = ppn
	f.p2l[ppn] = lpn
	pa := f.planes[f.geo.PlaneIndex(addr.PlaneAddr)]
	pa.valid[addr.Block]++
}

// Version returns the mapping version of a logical page: 0 until the page
// is first mapped, then incremented on every overwrite, trim or internal
// migration (GC, read reclaim, static wear leveling, bad-block
// retirement). Consumers caching results derived from the page compare
// versions to detect both data changes and physical moves.
func (f *FTL) Version(lpn uint64) uint64 { return f.vers[lpn] }

// Trim invalidates a logical page without writing.
func (f *FTL) Trim(lpn uint64) { f.invalidate(lpn) }

// nextPlane advances the striping cursor.
func (f *FTL) nextPlane() *planeAlloc {
	pa := f.planes[f.order[f.cursor]]
	f.cursor = (f.cursor + 1) % len(f.order)
	return pa
}

// maybeStaticWL runs static wear leveling on a plane: if the wear spread
// between the most-worn free block and the least-worn sealed block
// exceeds the configured delta, the cold block's pages migrate into the
// worn block, and the cold (young) block joins the free pool where the
// dynamic allocator will reuse it. This is what keeps write-once data
// from permanently sheltering young blocks.
func (f *FTL) maybeStaticWL(pa *planeAlloc, at sim.Time) {
	if f.cfg.StaticWLDelta <= 0 || len(pa.free) == 0 || len(pa.full) == 0 {
		return
	}
	// Most-worn free block.
	wornIdx := 0
	for i, b := range pa.free {
		if f.array.EraseCount(pa.addr, b) > f.array.EraseCount(pa.addr, pa.free[wornIdx]) {
			wornIdx = i
		}
	}
	// Coldest (least-worn) sealed block.
	coldIdx := 0
	for i, b := range pa.full {
		if f.array.EraseCount(pa.addr, b) < f.array.EraseCount(pa.addr, pa.full[coldIdx]) {
			coldIdx = i
		}
	}
	worn := pa.free[wornIdx]
	cold := pa.full[coldIdx]
	if f.array.EraseCount(pa.addr, worn)-f.array.EraseCount(pa.addr, cold) < f.cfg.StaticWLDelta {
		return
	}
	// Migrate the cold block's valid pages into the worn block directly.
	pa.free = append(pa.free[:wornIdx], pa.free[wornIdx+1:]...)
	now := at
	dst := 0 // next page slot (linear) in the worn block
	// abort restores the plane lists after a mid-migration failure: the
	// worn block is sealed only if it absorbed any programs (it is still
	// erased otherwise and can rejoin the free pool), and the cold block
	// leaves pa.full once it holds no valid data — a failure must not
	// leave a drained cold block sealed alongside the half-sealed worn
	// block. A program-status failure retires the worn destination
	// outright (migrating back whatever already landed on it) instead of
	// returning a known-bad block to circulation.
	abort := func(err error) {
		if flash.IsProgramFault(err) {
			f.stats.ProgramFails++
			f.cProgFails.Add(1)
			// retireBlock seals worn back into full itself if the
			// retirement cannot complete.
			_, _ = f.retireBlock(pa, worn, now)
		} else if dst > 0 {
			pa.full = append(pa.full, worn)
		} else {
			pa.free = append(pa.free, worn)
		}
		if pa.valid[cold] == 0 {
			if _, err := f.array.Erase(pa.addr, cold, now); err == nil {
				pa.full = append(pa.full[:coldIdx], pa.full[coldIdx+1:]...)
				pa.free = append(pa.free, cold)
			}
		}
	}
	writeSlot := func(lpn uint64, data []byte) error {
		kind := flash.PageKind(dst % f.geo.CellBits)
		wl := dst / f.geo.CellBits
		addr := flash.PageAddr{
			WordlineAddr: flash.WordlineAddr{PlaneAddr: pa.addr, Block: worn, WL: wl},
			Kind:         kind,
		}
		end, err := f.array.Program(addr, data, now)
		if err != nil {
			return err
		}
		f.invalidate(lpn)
		f.mapPage(lpn, addr)
		now = end
		dst++
		return nil
	}
	for wl := 0; wl < f.geo.WordlinesPerBlock && pa.valid[cold] > 0; wl++ {
		for kind := flash.LSBPage; int(kind) < f.geo.CellBits; kind++ {
			addr := flash.PageAddr{
				WordlineAddr: flash.WordlineAddr{PlaneAddr: pa.addr, Block: cold, WL: wl},
				Kind:         kind,
			}
			lpn, ok := f.p2l[f.geo.PPN(addr)]
			if !ok {
				// Invalid source pages migrate nowhere; the destination
				// cursor stays put and the block compacts.
				continue
			}
			// Pad only to keep the page kind aligned: an LSB-resident
			// page must land in an LSB slot (and so on), both to respect
			// LSB-before-MSB program order for the data and to keep
			// ParaBit's aligned-LSB operand layouts intact across the
			// migration. Because the source walks slots in linear order,
			// dst never overtakes the source cursor, so the worn block
			// always has room.
			for dst%f.geo.CellBits != int(kind) {
				if err := writeSlotPad(f, pa, worn, &dst, &now); err != nil {
					abort(err)
					return
				}
			}
			data, readDone, err := f.array.Read(addr, now)
			if err != nil {
				abort(err)
				return
			}
			now = readDone
			if err := writeSlot(lpn, data); err != nil {
				abort(err)
				return
			}
			f.stats.ExtraPagesWritten++
			f.stats.WLPagesMoved++
		}
	}
	// The worn block now holds the cold data (sealed, unless the cold
	// block turned out to hold none and the worn block is still erased);
	// the young cold block is erased into the free pool. If the erase
	// fails the cold block stays sealed — it is all garbage now, so GC
	// will retry.
	if dst == 0 {
		pa.free = append(pa.free, worn)
		if _, err := f.array.Erase(pa.addr, cold, now); err == nil {
			pa.full = append(pa.full[:coldIdx], pa.full[coldIdx+1:]...)
			pa.free = append(pa.free, cold)
		}
		return
	}
	if _, err := f.array.Erase(pa.addr, cold, now); err == nil {
		pa.full[coldIdx] = worn
		pa.free = append(pa.free, cold)
	} else {
		pa.full = append(pa.full, worn)
	}
	f.stats.StaticWLMoves++
	f.cWLMoves.Add(1)
	f.wlTrack.Span("static-wl", at, now)
}

// writeSlotPad programs a filler page to keep destination program order.
func writeSlotPad(f *FTL, pa *planeAlloc, worn int, dst *int, now *sim.Time) error {
	kind := flash.PageKind(*dst % f.geo.CellBits)
	wl := *dst / f.geo.CellBits
	addr := flash.PageAddr{
		WordlineAddr: flash.WordlineAddr{PlaneAddr: pa.addr, Block: worn, WL: wl},
		Kind:         kind,
	}
	end, err := f.array.Program(addr, make([]byte, f.geo.PageSize), *now)
	if err != nil {
		return err
	}
	*now = end
	*dst++
	f.stats.PaddedPages++
	f.cPad.Add(1)
	return nil
}

// takeFreeBlock removes and returns the free block with the lowest erase
// count (wear leveling). Returns -1 when no free block exists.
func (f *FTL) takeFreeBlock(pa *planeAlloc) int {
	if len(pa.free) == 0 {
		return -1
	}
	best := 0
	bestErases := f.array.EraseCount(pa.addr, pa.free[0])
	for i, b := range pa.free[1:] {
		if e := f.array.EraseCount(pa.addr, b); e < bestErases {
			best, bestErases = i+1, e
		}
	}
	blk := pa.free[best]
	pa.free = append(pa.free[:best], pa.free[best+1:]...)
	return blk
}

// allocSlot reserves the next page slot on a plane, opening a new block
// when the active block fills. With allowGC set, dropping below the free
// headroom runs garbage collection first; relocation writes issued *by* GC
// pass allowGC=false so collection never recurses. at is when the
// allocation is requested; the returned time reflects any GC the
// allocation had to wait for.
func (f *FTL) allocSlot(pa *planeAlloc, at sim.Time, allowGC bool) (flash.PageAddr, sim.Time, error) {
	ready := at
	if pa.active < 0 {
		if allowGC {
			var gcErr error
			for len(pa.free) <= f.cfg.GCFreeBlockLow && len(pa.full) > 0 {
				before := len(pa.free)
				ready, gcErr = f.collectPlane(pa, ready)
				// Stop when collection fails or frees nothing net (every
				// remaining victim is fully valid): further passes would
				// only shuffle pages forever.
				if gcErr != nil || len(pa.free) <= before {
					break
				}
			}
			// Keep one free block in reserve so GC relocation always has
			// somewhere to write; without it the plane can wedge with
			// garbage present but unreachable. An injected fault that
			// stopped GC must not be flattened into "device full" — a
			// transient plane outage is retryable, a dead plane is not,
			// and neither means the capacity is gone.
			if len(pa.free) < 2 && len(pa.full) > 0 {
				if gcErr != nil && flash.AsFaultError(gcErr) != nil {
					return flash.PageAddr{}, 0, gcErr
				}
				return flash.PageAddr{}, 0, ErrDeviceFull
			}
			f.maybeStaticWL(pa, ready)
		}
		blk := f.takeFreeBlock(pa)
		if blk < 0 {
			return flash.PageAddr{}, 0, ErrDeviceFull
		}
		pa.active = blk
		pa.nextWL = 0
		pa.nextKind = flash.LSBPage
	}
	addr := flash.PageAddr{
		WordlineAddr: flash.WordlineAddr{PlaneAddr: pa.addr, Block: pa.active, WL: pa.nextWL},
		Kind:         pa.nextKind,
	}
	pa.nextKind++
	if int(pa.nextKind) == f.geo.CellBits {
		pa.nextKind = flash.LSBPage
		pa.nextWL++
		if pa.nextWL == f.geo.WordlinesPerBlock {
			pa.full = append(pa.full, pa.active)
			pa.active = -1
		}
	}
	return addr, ready, nil
}

// padToFreshWordline discards remaining page slots of a partially
// allocated wordline so the next allocation starts at a fresh one's LSB.
func (f *FTL) padToFreshWordline(pa *planeAlloc, at sim.Time) error {
	for pa.active >= 0 && pa.nextKind != flash.LSBPage {
		if _, _, err := f.allocSlot(pa, at, true); err != nil {
			return err
		}
		f.stats.PaddedPages++
		f.cPad.Add(1)
	}
	return nil
}

// undoAlloc rolls the allocator cursor back onto addr after its program
// failed. The fault check fires before any cell mutates, so the physical
// page is still erased and programmable; without the rollback the
// allocator would leak the slot and later hand out the wordline's MSB
// with its LSB unprogrammed — an ordering violation the array rejects.
// Only the slot whose program failed may be undone: earlier siblings of a
// multi-page attempt are physically programmed and must stay consumed.
func (f *FTL) undoAlloc(pa *planeAlloc, addr flash.PageAddr) {
	if pa.active != addr.Block {
		// The failed slot sealed the block; un-seal it.
		for i, b := range pa.full {
			if b == addr.Block {
				pa.full = append(pa.full[:i], pa.full[i+1:]...)
				break
			}
		}
		pa.active = addr.Block
	}
	pa.nextWL = addr.WL
	pa.nextKind = addr.Kind
}

// retireBlock pulls blk out of circulation on pa: any valid pages it
// still holds migrate to healthy blocks (so no acknowledged data is
// lost), then the block joins the bad list for good. The block is first
// removed from whichever allocator list holds it; if the migration fails
// the block is sealed back into the full list so every page stays
// reachable and GC can retry later. Idempotent for already-bad blocks.
func (f *FTL) retireBlock(pa *planeAlloc, blk int, at sim.Time) (sim.Time, error) {
	for _, b := range pa.bad {
		if b == blk {
			return at, nil
		}
	}
	if pa.active == blk {
		pa.active = -1
	}
	for i, b := range pa.free {
		if b == blk {
			pa.free = append(pa.free[:i], pa.free[i+1:]...)
			break
		}
	}
	for i, b := range pa.full {
		if b == blk {
			pa.full = append(pa.full[:i], pa.full[i+1:]...)
			break
		}
	}
	now := at
	for wl := 0; wl < f.geo.WordlinesPerBlock && pa.valid[blk] > 0; wl++ {
		for kind := flash.LSBPage; int(kind) < f.geo.CellBits; kind++ {
			addr := flash.PageAddr{
				WordlineAddr: flash.WordlineAddr{PlaneAddr: pa.addr, Block: blk, WL: wl},
				Kind:         kind,
			}
			lpn, ok := f.p2l[f.geo.PPN(addr)]
			if !ok {
				continue
			}
			data, readDone, err := f.array.Read(addr, now)
			if err != nil {
				pa.full = append(pa.full, blk)
				return now, fmt.Errorf("ftl: retire read: %w", err)
			}
			target := f.relocationTarget(pa)
			if target == nil {
				pa.full = append(pa.full, blk)
				return now, ErrDeviceFull
			}
			done, err := f.writeTo(target, lpn, data, readDone, false)
			if err != nil {
				pa.full = append(pa.full, blk)
				return now, fmt.Errorf("ftl: retire write: %w", err)
			}
			now = done
			f.stats.ExtraPagesWritten++
			f.stats.RetirePagesMoved++
		}
	}
	pa.bad = append(pa.bad, blk)
	f.stats.BlocksRetired++
	f.cRetired.Add(1)
	f.retireTrack.Span("retire", at, now)
	return now, nil
}

// withResteer runs one write attempt and, when it fails with an injected
// program fault, retires the failed block and re-issues the attempt on a
// fresh one — the datasheet contract for program-status failures. fn must
// be restartable: it may only map pages after every program it issues has
// succeeded, so a retried attempt never observes half-applied state. The
// attempt count is bounded by the plane's block count; every retry
// permanently removes one block, so the loop cannot spin.
func (f *FTL) withResteer(pa *planeAlloc, at sim.Time, fn func(at sim.Time) (sim.Time, error)) (sim.Time, error) {
	for attempt := 0; ; attempt++ {
		done, err := fn(at)
		if err == nil || !flash.IsProgramFault(err) || attempt >= f.geo.BlocksPerPlane {
			return done, err
		}
		fe := flash.AsFaultError(err)
		f.stats.ProgramFails++
		f.cProgFails.Add(1)
		now, rerr := f.retireBlock(pa, fe.Block, at)
		if rerr != nil {
			return 0, fmt.Errorf("ftl: retire block %d after program fault: %w", fe.Block, rerr)
		}
		f.stats.ResteeredWrites++
		f.cResteer.Add(1)
		at = now
	}
}

// writeTo programs data at a fresh slot on pa and maps it to lpn. The old
// copy is invalidated only after the program succeeds, so a failed or
// faulted write never loses the previously acknowledged version.
func (f *FTL) writeTo(pa *planeAlloc, lpn uint64, data []byte, at sim.Time, allowGC bool) (sim.Time, error) {
	return f.withResteer(pa, at, func(at sim.Time) (sim.Time, error) {
		addr, ready, err := f.allocSlot(pa, at, allowGC)
		if err != nil {
			return 0, err
		}
		done, err := f.array.Program(addr, data, ready)
		if err != nil {
			f.undoAlloc(pa, addr)
			return 0, fmt.Errorf("ftl: program %v: %w", addr, err)
		}
		f.invalidate(lpn)
		f.mapPage(lpn, addr)
		return done, nil
	})
}

// writeStriped programs one page at the round-robin cursor's plane,
// retrying the remaining planes when the first choice is wedged (no free
// or active block even after GC) or faulted (a dead or transiently
// unresponsive plane, or a failed retirement). A single broken plane must
// not fail the whole device while its siblings still have room; only when
// every plane rejects the write does the error surface — and if any
// rejection was transient, that error is preferred so the layer above
// knows a later retry can still succeed.
func (f *FTL) writeStriped(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	var firstErr, transientErr error
	for i, n := 0, len(f.order); i < n; i++ {
		idx := f.cursor
		pa := f.planes[f.order[idx]]
		f.cursor = (idx + 1) % n
		done, err := f.writeTo(pa, lpn, data, at, true)
		if err == nil {
			return done, nil
		}
		// Wedged or faulted planes fall through to the next candidate;
		// anything else (a programming bug, a bad LPN) surfaces at once. A
		// power cut is device-wide, not per-plane: trying siblings would
		// only burn injection counters on a dead device.
		if flash.IsPowerCut(err) {
			return 0, err
		}
		if !errors.Is(err, ErrDeviceFull) && flash.AsFaultError(err) == nil {
			return 0, err
		}
		if transientErr == nil && flash.IsTransientFault(err) {
			transientErr = err
		}
		if firstErr == nil {
			firstErr = err
		}
		// GC relocation inside the failed attempt shares the round-robin
		// cursor and may have wrapped it back onto the plane just tried;
		// park it one past that plane so the retry visits each remaining
		// plane exactly once instead of hammering the wedged one.
		f.cursor = (idx + 1) % n
	}
	if transientErr != nil {
		return 0, transientErr
	}
	return 0, firstErr
}

// Write stores one logical page, striping across planes.
func (f *FTL) Write(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	if err := f.checkLPN(lpn); err != nil {
		return 0, err
	}
	done, err := f.writeStriped(lpn, data, at)
	if err != nil {
		return 0, err
	}
	f.stats.HostPagesWritten++
	return done, nil
}

// WritePaired stores two logical pages into the LSB and MSB pages of one
// fresh wordline, the co-located layout basic ParaBit operates on. If the
// current allocation point is mid-wordline, the dangling MSB slot is
// skipped (and counted as padding write amplification).
func (f *FTL) WritePaired(lpnLSB, lpnMSB uint64, dataLSB, dataMSB []byte, at sim.Time) (flash.WordlineAddr, sim.Time, error) {
	if err := f.checkLPN(lpnLSB); err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	if err := f.checkLPN(lpnMSB); err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	pa := f.nextPlane()
	var wlAddr flash.WordlineAddr
	done, err := f.withResteer(pa, at, func(at sim.Time) (sim.Time, error) {
		// Align to a fresh wordline: discard dangling sibling slots.
		if err := f.padToFreshWordline(pa, at); err != nil {
			return 0, err
		}
		addrL, ready, err := f.allocSlot(pa, at, true)
		if err != nil {
			return 0, err
		}
		doneL, err := f.array.Program(addrL, dataLSB, ready)
		if err != nil {
			f.undoAlloc(pa, addrL)
			return 0, fmt.Errorf("ftl: paired LSB program: %w", err)
		}
		addrM, _, err := f.allocSlot(pa, at, true)
		if err != nil {
			return 0, err
		}
		doneM, err := f.array.Program(addrM, dataMSB, doneL)
		if err != nil {
			f.undoAlloc(pa, addrM)
			return 0, fmt.Errorf("ftl: paired MSB program: %w", err)
		}
		if addrL.WordlineAddr != addrM.WordlineAddr {
			// allocSlot hands out LSB then MSB of one wordline by
			// construction; anything else is an allocator bug.
			panic(fmt.Sprintf("ftl: paired pages split across wordlines: %v vs %v", addrL, addrM))
		}
		f.invalidate(lpnLSB)
		f.invalidate(lpnMSB)
		f.mapPage(lpnLSB, addrL)
		f.mapPage(lpnMSB, addrM)
		wlAddr = addrL.WordlineAddr
		return doneM, nil
	})
	if err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	f.stats.HostPagesWritten += 2
	return wlAddr, done, nil
}

// WriteRelocation is Write for device-initiated writes (operand
// reallocation); it charges ExtraPagesWritten instead of host writes.
func (f *FTL) WriteRelocation(lpn uint64, data []byte, at sim.Time) (sim.Time, error) {
	if err := f.checkLPN(lpn); err != nil {
		return 0, err
	}
	done, err := f.writeStriped(lpn, data, at)
	if err != nil {
		return 0, err
	}
	f.stats.ExtraPagesWritten++
	return done, nil
}

// WritePairedRelocation is WritePaired charged to reallocation.
func (f *FTL) WritePairedRelocation(lpnLSB, lpnMSB uint64, dataLSB, dataMSB []byte, at sim.Time) (flash.WordlineAddr, sim.Time, error) {
	wl, done, err := f.WritePaired(lpnLSB, lpnMSB, dataLSB, dataMSB, at)
	if err != nil {
		return wl, done, err
	}
	f.stats.HostPagesWritten -= 2
	f.stats.ExtraPagesWritten += 2
	return wl, done, nil
}

// WriteTriple stores three logical pages into the LSB, CSB and TOP pages
// of one TLC wordline — the co-located layout the §4.4.1 extension's
// three-operand operations compute on. Only valid on TLC arrays.
func (f *FTL) WriteTriple(lpns [3]uint64, data [3][]byte, at sim.Time) (flash.WordlineAddr, sim.Time, error) {
	if f.geo.CellBits != 3 {
		return flash.WordlineAddr{}, 0, fmt.Errorf("ftl: triple write on %d-bit cells", f.geo.CellBits)
	}
	for _, lpn := range lpns {
		if err := f.checkLPN(lpn); err != nil {
			return flash.WordlineAddr{}, 0, err
		}
	}
	pa := f.nextPlane()
	var wl flash.WordlineAddr
	done, err := f.withResteer(pa, at, func(at sim.Time) (sim.Time, error) {
		if err := f.padToFreshWordline(pa, at); err != nil {
			return 0, err
		}
		var addrs [3]flash.PageAddr
		now := at
		for i := 0; i < 3; i++ {
			addr, ready, err := f.allocSlot(pa, now, true)
			if err != nil {
				return 0, err
			}
			end, err := f.array.Program(addr, data[i], ready)
			if err != nil {
				f.undoAlloc(pa, addr)
				return 0, fmt.Errorf("ftl: triple program: %w", err)
			}
			if i == 0 {
				wl = addr.WordlineAddr
			} else if addr.WordlineAddr != wl {
				panic(fmt.Sprintf("ftl: triple split across wordlines: %v vs %v", addr.WordlineAddr, wl))
			}
			addrs[i] = addr
			now = end
		}
		for i, lpn := range lpns {
			f.invalidate(lpn)
			f.mapPage(lpn, addrs[i])
		}
		return now, nil
	})
	if err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	f.stats.HostPagesWritten += 3
	return wl, done, nil
}

// WriteLSBPair stores two logical pages into the LSB pages of two
// wordlines on the same plane — the all-LSB aligned layout location-free
// ParaBit computes on (§5.5). Each wordline's MSB slot is left
// unprogrammed (counted as padding), halving density like SLC-mode use.
// Returns the two wordlines (first operand M, second operand N).
func (f *FTL) WriteLSBPair(lpnM, lpnN uint64, dataM, dataN []byte, at sim.Time) (m, n flash.WordlineAddr, done sim.Time, err error) {
	if err = f.checkLPN(lpnM); err != nil {
		return
	}
	if err = f.checkLPN(lpnN); err != nil {
		return
	}
	pa := f.nextPlane()
	writeLSB := func(lpn uint64, data []byte, when sim.Time) (flash.WordlineAddr, sim.Time, error) {
		var wl flash.WordlineAddr
		end, err := f.withResteer(pa, when, func(at sim.Time) (sim.Time, error) {
			// Skip dangling sibling slots so we land on a fresh wordline's LSB.
			if err := f.padToFreshWordline(pa, at); err != nil {
				return 0, err
			}
			addr, ready, err := f.allocSlot(pa, at, true)
			if err != nil {
				return 0, err
			}
			end, err := f.array.Program(addr, data, ready)
			if err != nil {
				f.undoAlloc(pa, addr)
				return 0, fmt.Errorf("ftl: lsb-pair program: %w", err)
			}
			f.invalidate(lpn)
			f.mapPage(lpn, addr)
			wl = addr.WordlineAddr
			// Pad this wordline's remaining slots so nothing else lands next
			// to the operand (and the layout stays pure LSB).
			return end, f.padToFreshWordline(pa, end)
		})
		return wl, end, err
	}
	m, done, err = writeLSB(lpnM, dataM, at)
	if err != nil {
		return
	}
	n, done, err = writeLSB(lpnN, dataN, done)
	if err != nil {
		return
	}
	if m.PlaneAddr != n.PlaneAddr {
		panic(fmt.Sprintf("ftl: lsb pair split across planes: %v vs %v", m, n))
	}
	f.stats.HostPagesWritten += 2
	return
}

// WriteLSBGroup stores k logical pages into LSB pages of one plane — the
// aligned layout a location-free chained reduction senses in a single
// operation. Returns one wordline per page, all on the same plane.
func (f *FTL) WriteLSBGroup(lpns []uint64, data [][]byte, at sim.Time) ([]flash.WordlineAddr, sim.Time, error) {
	if len(lpns) != len(data) || len(lpns) == 0 {
		return nil, 0, fmt.Errorf("ftl: group of %d lpns with %d pages", len(lpns), len(data))
	}
	for _, lpn := range lpns {
		if err := f.checkLPN(lpn); err != nil {
			return nil, 0, err
		}
	}
	pa := f.nextPlane()
	wls := make([]flash.WordlineAddr, len(lpns))
	now := at
	for i, lpn := range lpns {
		end, err := f.withResteer(pa, now, func(at sim.Time) (sim.Time, error) {
			if err := f.padToFreshWordline(pa, at); err != nil {
				return 0, err
			}
			addr, ready, err := f.allocSlot(pa, at, true)
			if err != nil {
				return 0, err
			}
			end, err := f.array.Program(addr, data[i], ready)
			if err != nil {
				f.undoAlloc(pa, addr)
				return 0, fmt.Errorf("ftl: lsb-group program: %w", err)
			}
			f.invalidate(lpn)
			f.mapPage(lpn, addr)
			wls[i] = addr.WordlineAddr
			return end, f.padToFreshWordline(pa, end)
		})
		if err != nil {
			return nil, 0, err
		}
		now = end
		f.stats.HostPagesWritten++
	}
	return wls, now, nil
}

// sealActive closes a partially filled active block so the next
// allocation opens a fresh one. The skipped wordlines are counted as
// padding and become reclaimable dead space once GC picks the block up.
// The Flash-Cosmos group write uses it when the active block lacks room
// for a whole operand group: colocation buys single-sense reductions at
// the price of some allocator slack.
func (f *FTL) sealActive(pa *planeAlloc) {
	if pa.active < 0 {
		return
	}
	skipped := int64(f.geo.WordlinesPerBlock-pa.nextWL) * int64(f.geo.CellBits)
	if pa.nextKind != flash.LSBPage {
		skipped -= int64(pa.nextKind)
	}
	f.stats.PaddedPages += skipped
	f.cPad.Add(skipped)
	pa.full = append(pa.full, pa.active)
	pa.active = -1
}

// WriteMWSGroup stores k logical pages into the LSB pages of k
// consecutive wordlines of ONE block — the intra-block colocation a
// Flash-Cosmos multi-wordline sense requires — programming each with
// enhanced SLC programming (the slower, tighter program that preserves
// the MWS sense margin). MSB slots pad as in the other LSB layouts.
// Returns one wordline per page, all in the same block. Callers that
// cannot satisfy the group's constraints (more operands than a block has
// wordlines) get an error and fall back to pairwise placement.
func (f *FTL) WriteMWSGroup(lpns []uint64, data [][]byte, at sim.Time) ([]flash.WordlineAddr, sim.Time, error) {
	if len(lpns) != len(data) || len(lpns) == 0 {
		return nil, 0, fmt.Errorf("ftl: MWS group of %d lpns with %d pages", len(lpns), len(data))
	}
	if len(lpns) > f.geo.WordlinesPerBlock {
		return nil, 0, fmt.Errorf("ftl: MWS group of %d operands exceeds the %d wordlines of a block", len(lpns), f.geo.WordlinesPerBlock)
	}
	for _, lpn := range lpns {
		if err := f.checkLPN(lpn); err != nil {
			return nil, 0, err
		}
	}
	pa := f.nextPlane()
	wls := make([]flash.WordlineAddr, len(lpns))
	// The whole group programs inside one re-steer attempt and maps only
	// after every program succeeded: a program fault retires the group's
	// block (migrating nothing of ours — unmapped pages are garbage) and
	// the restart re-places the entire group on a fresh block, so partial
	// groups are never visible.
	done, err := f.withResteer(pa, at, func(at sim.Time) (sim.Time, error) {
		if err := f.padToFreshWordline(pa, at); err != nil {
			return 0, err
		}
		if pa.active >= 0 && f.geo.WordlinesPerBlock-pa.nextWL < len(lpns) {
			f.sealActive(pa)
		}
		now := at
		addrs := make([]flash.PageAddr, len(lpns))
		for i := range lpns {
			// GC may only run before the first program: once the group has
			// a block, allocation stays inside it.
			addr, ready, err := f.allocSlot(pa, now, i == 0)
			if err != nil {
				return 0, err
			}
			if i > 0 && addr.WordlineAddr.Block != addrs[0].Block {
				panic(fmt.Sprintf("ftl: MWS group split across blocks: %v vs %v", addrs[0], addr))
			}
			end, err := f.array.ProgramESP(addr, data[i], ready)
			if err != nil {
				f.undoAlloc(pa, addr)
				return 0, fmt.Errorf("ftl: mws-group program: %w", err)
			}
			addrs[i] = addr
			now = end
			if err := f.padToFreshWordline(pa, now); err != nil {
				return 0, err
			}
		}
		for i, lpn := range lpns {
			f.invalidate(lpn)
			f.mapPage(lpn, addrs[i])
			wls[i] = addrs[i].WordlineAddr
		}
		return now, nil
	})
	if err != nil {
		return nil, 0, err
	}
	f.stats.HostPagesWritten += int64(len(lpns))
	return wls, done, nil
}

// WriteLSBOnPlane stores one page into an LSB slot of a specific plane
// (padding the MSB slot). With host set the write counts as host data;
// otherwise it is charged as a device-initiated relocation. The
// location-free executor uses it to park an intermediate result aligned
// with the next operand; the column store uses it to pin query columns
// to planes.
func (f *FTL) WriteLSBOnPlane(plane flash.PlaneAddr, lpn uint64, data []byte, at sim.Time, host bool) (flash.WordlineAddr, sim.Time, error) {
	if err := f.checkLPN(lpn); err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	if err := f.array.Geometry().CheckPlane(plane); err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	pa := f.planes[f.array.Geometry().PlaneIndex(plane)]
	var wl flash.WordlineAddr
	end, err := f.withResteer(pa, at, func(at sim.Time) (sim.Time, error) {
		if err := f.padToFreshWordline(pa, at); err != nil {
			return 0, err
		}
		addr, ready, err := f.allocSlot(pa, at, true)
		if err != nil {
			return 0, err
		}
		end, err := f.array.Program(addr, data, ready)
		if err != nil {
			f.undoAlloc(pa, addr)
			return 0, fmt.Errorf("ftl: lsb-on-plane program: %w", err)
		}
		f.invalidate(lpn)
		f.mapPage(lpn, addr)
		wl = addr.WordlineAddr
		return end, f.padToFreshWordline(pa, end)
	})
	if err != nil {
		return flash.WordlineAddr{}, 0, err
	}
	if host {
		f.stats.HostPagesWritten++
	} else {
		f.stats.ExtraPagesWritten++
	}
	return wl, end, nil
}

// collectPlane garbage-collects one plane: pick the full block with the
// fewest valid pages, relocate them, erase. Returns when the plane is
// usable again.
func (f *FTL) collectPlane(pa *planeAlloc, at sim.Time) (sim.Time, error) {
	if len(pa.full) == 0 {
		if len(pa.free) == 0 {
			return at, ErrDeviceFull
		}
		return at, nil
	}
	// Victim: fewest valid pages among full blocks.
	vi := 0
	for i, b := range pa.full[1:] {
		if pa.valid[b] < pa.valid[pa.full[vi]] {
			vi = i + 1
		}
	}
	victim := pa.full[vi]
	pa.full = append(pa.full[:vi], pa.full[vi+1:]...)
	f.stats.GCRuns++
	f.cGCRuns.Add(1)

	now := at
	// Relocate valid pages. Walk the victim's pages via the reverse map.
	for wl := 0; wl < f.geo.WordlinesPerBlock && pa.valid[victim] > 0; wl++ {
		for kind := flash.LSBPage; int(kind) < f.geo.CellBits; kind++ {
			addr := flash.PageAddr{
				WordlineAddr: flash.WordlineAddr{PlaneAddr: pa.addr, Block: victim, WL: wl},
				Kind:         kind,
			}
			lpn, ok := f.p2l[f.geo.PPN(addr)]
			if !ok {
				continue
			}
			data, readDone, err := f.array.Read(addr, now)
			if err != nil {
				return now, fmt.Errorf("ftl: gc read: %w", err)
			}
			target := f.relocationTarget(pa)
			if target == nil {
				return now, ErrDeviceFull
			}
			done, err := f.writeTo(target, lpn, data, readDone, false)
			if err != nil {
				return now, fmt.Errorf("ftl: gc write: %w", err)
			}
			now = done
			f.stats.ExtraPagesWritten++
			f.stats.GCPagesMoved++
			f.cGCPages.Add(1)
		}
	}
	end, err := f.array.Erase(pa.addr, victim, now)
	if err != nil {
		if flash.IsEraseFault(err) {
			// The victim wore out: its valid pages are already relocated,
			// so retire it and report the pass as successful — the plane
			// lost a block, not its data.
			f.stats.EraseFails++
			f.cEraseFails.Add(1)
			now, err = f.retireBlock(pa, victim, now)
			if err != nil {
				return now, fmt.Errorf("ftl: gc retire: %w", err)
			}
			f.gcTrack.Span("gc", at, now)
			return now, nil
		}
		// A transient (or otherwise non-retiring) erase failure leaves the
		// drained victim sealed so nothing dangles; the next GC pass
		// retries the erase.
		pa.full = append(pa.full, victim)
		return now, fmt.Errorf("ftl: gc erase: %w", err)
	}
	pa.free = append(pa.free, victim)
	f.gcTrack.Span("gc", at, end)
	return end, nil
}

// relocationTarget picks a plane for a GC-relocated page: preferably not
// the plane under collection, and one with room left — an open active
// block or a spare free block. Returns nil when the device is truly full.
func (f *FTL) relocationTarget(victim *planeAlloc) *planeAlloc {
	var fallback *planeAlloc
	for range f.planes {
		pa := f.planes[f.order[f.cursor]]
		f.cursor = (f.cursor + 1) % len(f.order)
		if pa.active < 0 && len(pa.free) == 0 {
			continue
		}
		if pa == victim {
			fallback = pa
			continue
		}
		return pa
	}
	return fallback
}

// FreeBlocks reports the total free (erased, unallocated) blocks.
func (f *FTL) FreeBlocks() int {
	n := 0
	for _, pa := range f.planes {
		n += len(pa.free)
	}
	return n
}

// MappedPages reports how many logical pages currently hold data.
func (f *FTL) MappedPages() int { return len(f.l2p) }

// BadBlocks reports the total blocks retired from circulation.
func (f *FTL) BadBlocks() int {
	n := 0
	for _, pa := range f.planes {
		n += len(pa.bad)
	}
	return n
}

// CheckInvariants verifies the FTL's internal bookkeeping and returns the
// first violation found, or nil. The invariants it asserts are the ones
// every allocation path (striped writes, paired writes, GC, read reclaim,
// static wear leveling) must preserve:
//
//   - l2p and p2l are inverse maps of each other;
//   - on every plane, each block appears in exactly one of the free list,
//     the active slot, the full list, or the retired bad list (and never
//     twice);
//   - a block's valid-page counter equals the number of p2l entries that
//     point into it, and free and retired blocks hold no valid pages.
//
// Tests — in particular the concurrent scheduler stress tests — call it
// after hammering a device to prove the shared state stayed coherent.
func (f *FTL) CheckInvariants() error {
	for lpn, ppn := range f.l2p {
		back, ok := f.p2l[ppn]
		if !ok || back != lpn {
			return fmt.Errorf("ftl: l2p[%d]=%d but p2l[%d]=%d (ok=%v)", lpn, ppn, ppn, back, ok)
		}
	}
	for ppn, lpn := range f.p2l {
		fwd, ok := f.l2p[lpn]
		if !ok || fwd != ppn {
			return fmt.Errorf("ftl: p2l[%d]=%d but l2p[%d]=%d (ok=%v)", ppn, lpn, lpn, fwd, ok)
		}
	}
	// Valid-page counts per (plane, block) from the reverse map.
	counts := make(map[int][]int, len(f.planes))
	for i := range f.planes {
		counts[i] = make([]int, f.geo.BlocksPerPlane)
	}
	for ppn := range f.p2l {
		addr := f.geo.PageAt(ppn)
		counts[f.geo.PlaneIndex(addr.PlaneAddr)][addr.Block]++
	}
	for i, pa := range f.planes {
		where := make(map[int]string, f.geo.BlocksPerPlane)
		note := func(b int, list string) error {
			if prev, dup := where[b]; dup {
				return fmt.Errorf("ftl: plane %d block %d in both %s and %s", i, b, prev, list)
			}
			where[b] = list
			return nil
		}
		for _, b := range pa.free {
			if err := note(b, "free"); err != nil {
				return err
			}
		}
		if pa.active >= 0 {
			if err := note(pa.active, "active"); err != nil {
				return err
			}
		}
		for _, b := range pa.full {
			if err := note(b, "full"); err != nil {
				return err
			}
		}
		for _, b := range pa.bad {
			if err := note(b, "bad"); err != nil {
				return err
			}
		}
		for b := 0; b < f.geo.BlocksPerPlane; b++ {
			if _, ok := where[b]; !ok {
				return fmt.Errorf("ftl: plane %d block %d on no list", i, b)
			}
			if pa.valid[b] != counts[i][b] {
				return fmt.Errorf("ftl: plane %d block %d valid=%d but %d mapped pages",
					i, b, pa.valid[b], counts[i][b])
			}
			if (where[b] == "free" || where[b] == "bad") && pa.valid[b] != 0 {
				return fmt.Errorf("ftl: plane %d %s block %d holds %d valid pages", i, where[b], b, pa.valid[b])
			}
		}
	}
	return nil
}
